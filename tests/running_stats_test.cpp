#include "src/stats/running_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace burst {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.cov(), std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MatchesNaiveTwoPass) {
  RunningStats rs;
  std::vector<double> xs;
  double seedish = 0.37;
  for (int i = 0; i < 5000; ++i) {
    seedish = std::fmod(seedish * 997.13 + 0.113, 13.0);
    xs.push_back(seedish);
    rs.add(seedish);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-9 * var);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
  // Welford must survive values with a large common offset.
  RunningStats rs;
  for (double x : {1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0}) rs.add(x);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-6);
}

TEST(RunningStats, CovZeroMeanGuard) {
  RunningStats rs;
  rs.add(-1.0);
  rs.add(1.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);  // mean == 0 -> defined as 0
}

TEST(RunningStats, CovAllZeroSamplesIsZeroNotNan) {
  // The huge-N sweep can legitimately produce an all-idle series (no
  // arrivals in any bin); its c.o.v. is 0 by convention, never NaN.
  RunningStats rs;
  for (int i = 0; i < 100; ++i) rs.add(0.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
  EXPECT_FALSE(std::isnan(rs.cov()));
}

TEST(RunningStats, CountSurvives32BitBoundary) {
  // Per-flow accumulators are uint64 throughout: merging a serialized
  // accumulator holding 2^32 - 1 samples with a live one must cross the
  // 32-bit boundary exactly, not wrap to a small count.
  const std::uint64_t big_n = 4294967295ULL;  // 2^32 - 1
  RunningStats big = RunningStats::from_moments(big_n, 5.0, 0.0, 5.0, 5.0);
  RunningStats small;
  small.add(5.0);
  small.add(5.0);
  small.add(5.0);
  big.merge(small);
  EXPECT_EQ(big.count(), 4294967298ULL);  // 2^32 + 2, exact
  EXPECT_NEAR(big.mean(), 5.0, 1e-9);
  EXPECT_NEAR(big.variance(), 0.0, 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i)) * 10.0 + 3.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);  // copies
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

class PoissonCovTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(PoissonCovTest, AnalyticFormula) {
  const auto [n, lambda, window] = GetParam();
  const double expected = 1.0 / std::sqrt(n * lambda * window);
  EXPECT_NEAR(poisson_aggregate_cov(n, lambda, window), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PoissonCovTest,
    ::testing::Values(std::tuple{1, 100.0, 0.08}, std::tuple{20, 100.0, 0.08},
                      std::tuple{60, 100.0, 0.08}, std::tuple{38, 10.0, 0.044}));

TEST(PoissonCov, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(poisson_aggregate_cov(0, 100.0, 0.08), 0.0);
  EXPECT_DOUBLE_EQ(poisson_aggregate_cov(10, 0.0, 0.08), 0.0);
}

}  // namespace
}  // namespace burst
