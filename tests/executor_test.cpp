#include "src/run/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace burst {
namespace {

TEST(Executor, RunsEveryTaskExactlyOnce) {
  Executor ex(4);
  std::vector<std::atomic<int>> hits(1000);
  ex.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, SingleThreadWorks) {
  Executor ex(1);
  EXPECT_EQ(ex.num_threads(), 1u);
  std::vector<int> out(64, 0);
  ex.run(out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(Executor, ZeroTasksIsANoOp) {
  Executor ex(2);
  bool ran = false;
  ex.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Executor, ReusableAcrossBatches) {
  Executor ex(3);
  std::atomic<int> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    ex.run(100, [&](std::size_t) { sum.fetch_add(1); });
  }
  EXPECT_EQ(sum.load(), 500);
}

TEST(Executor, ProgressReachesTotalAndIsMonotone) {
  Executor ex(4);
  std::size_t last_done = 0;
  std::size_t calls = 0;
  bool monotone = true;
  ex.run(
      200, [](std::size_t) {},
      [&](const ExecutorProgress& p) {
        // Serialized by contract, so plain variables are fine here.
        if (p.done <= last_done) monotone = false;
        last_done = p.done;
        ++calls;
        EXPECT_EQ(p.total, 200u);
        EXPECT_GE(p.elapsed_s, 0.0);
        EXPECT_GE(p.eta_s, 0.0);
      });
  EXPECT_TRUE(monotone);
  EXPECT_EQ(calls, 200u);
  EXPECT_EQ(last_done, 200u);
}

TEST(Executor, CancelSkipsRemainingTasks) {
  Executor ex(2);
  std::atomic<int> executed{0};
  ex.run(
      10000,
      [&](std::size_t) { executed.fetch_add(1); },
      [&](const ExecutorProgress& p) {
        if (p.done == 10) ex.cancel();
      });
  EXPECT_TRUE(ex.cancelled());
  // Everything was accounted for, but most tasks were skipped.
  EXPECT_LT(executed.load(), 10000);
  // And the next batch starts with cancellation cleared.
  std::atomic<int> second{0};
  ex.run(50, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_FALSE(ex.cancelled());
  EXPECT_EQ(second.load(), 50);
}

TEST(Executor, FirstTaskExceptionIsRethrown) {
  Executor ex(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      ex.run(100,
             [&](std::size_t i) {
               executed.fetch_add(1);
               if (i == 13) throw std::runtime_error("boom");
             }),
      std::runtime_error);
  // The batch still drained: a throwing task must not hang run().
  EXPECT_GT(executed.load(), 0);
}

TEST(Executor, DefaultThreadCountUsesHardware) {
  Executor ex;
  EXPECT_GE(ex.num_threads(), 1u);
}

}  // namespace
}  // namespace burst
