#include "src/transport/rto_estimator.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

RtoConfig fine_config() {
  RtoConfig cfg;
  cfg.granularity = 0.0;  // exact, for arithmetic checks
  cfg.min_rto = 0.0;
  cfg.max_rto = 64.0;
  cfg.initial_rto = 3.0;
  return cfg;
}

TEST(RtoEstimator, InitialRtoBeforeSamples) {
  RtoEstimator e{RtoConfig{}};
  EXPECT_FALSE(e.has_sample());
  EXPECT_DOUBLE_EQ(e.rto(), 3.0);
}

TEST(RtoEstimator, FirstSampleSetsSrttAndVar) {
  RtoEstimator e(fine_config());
  e.sample(0.1);
  EXPECT_TRUE(e.has_sample());
  EXPECT_DOUBLE_EQ(e.srtt(), 0.1);
  EXPECT_DOUBLE_EQ(e.rttvar(), 0.05);
  EXPECT_DOUBLE_EQ(e.rto(), 0.1 + 4 * 0.05);
}

TEST(RtoEstimator, JacobsonUpdateArithmetic) {
  RtoEstimator e(fine_config());
  e.sample(0.1);
  e.sample(0.2);
  // rttvar = 0.75*0.05 + 0.25*|0.1-0.2| = 0.0625
  // srtt   = 0.875*0.1 + 0.125*0.2     = 0.1125
  EXPECT_NEAR(e.rttvar(), 0.0625, 1e-12);
  EXPECT_NEAR(e.srtt(), 0.1125, 1e-12);
}

TEST(RtoEstimator, ConvergesToConstantRtt) {
  RtoEstimator e(fine_config());
  for (int i = 0; i < 200; ++i) e.sample(0.08);
  EXPECT_NEAR(e.srtt(), 0.08, 1e-6);
  EXPECT_NEAR(e.rttvar(), 0.0, 1e-4);
}

TEST(RtoEstimator, GranularityRoundsUp) {
  RtoConfig cfg;
  cfg.granularity = 0.1;
  cfg.min_rto = 0.0;
  RtoEstimator e(cfg);
  e.sample(0.08);  // srtt+4var = 0.08+0.16 = 0.24 -> rounds to 0.3
  EXPECT_DOUBLE_EQ(e.rto(), 0.3);
}

TEST(RtoEstimator, MinRtoClamps) {
  RtoEstimator e{RtoConfig{}};  // default min_rto = 0.2
  e.sample(0.001);
  EXPECT_GE(e.rto(), 0.2);
}

TEST(RtoEstimator, MaxRtoClamps) {
  RtoConfig cfg = fine_config();
  cfg.max_rto = 1.0;
  RtoEstimator e(cfg);
  e.sample(10.0);
  EXPECT_DOUBLE_EQ(e.rto(), 1.0);
}

TEST(RtoEstimator, BackoffDoublesAndResets) {
  RtoEstimator e(fine_config());
  e.sample(0.1);
  const Time base = e.rto();
  e.backoff();
  EXPECT_DOUBLE_EQ(e.rto(), 2 * base);
  e.backoff();
  EXPECT_DOUBLE_EQ(e.rto(), 4 * base);
  EXPECT_EQ(e.backoff_factor(), 4);
  e.reset_backoff();
  EXPECT_DOUBLE_EQ(e.rto(), base);
}

TEST(RtoEstimator, BackoffCappedByMaxRto) {
  RtoConfig cfg = fine_config();
  cfg.max_rto = 2.0;
  RtoEstimator e(cfg);
  e.sample(0.5);  // rto = 1.5
  for (int i = 0; i < 10; ++i) e.backoff();
  EXPECT_DOUBLE_EQ(e.rto(), 2.0);
}

TEST(RtoEstimator, BackoffFactorSaturates) {
  RtoEstimator e(fine_config());
  for (int i = 0; i < 20; ++i) e.backoff();
  EXPECT_EQ(e.backoff_factor(), 64);
}

}  // namespace
}  // namespace burst
