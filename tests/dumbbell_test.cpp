#include "src/core/dumbbell.hpp"

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {
namespace {

Scenario small(Transport t = Transport::kReno) {
  Scenario s = Scenario::paper_default();
  s.num_clients = 4;
  s.duration = 5.0;
  s.transport = t;
  return s;
}

TEST(Dumbbell, WiresAllClients) {
  Simulator sim(1);
  Dumbbell net(sim, small());
  EXPECT_EQ(net.num_clients(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(net.tcp_sender(i), nullptr);
    EXPECT_NE(net.tcp_sink(i), nullptr);
    EXPECT_EQ(net.udp_sink(i), nullptr);
  }
}

TEST(Dumbbell, UdpVariantHasUdpAgents) {
  Simulator sim(1);
  Dumbbell net(sim, small(Transport::kUdp));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(net.tcp_sender(i), nullptr);
    EXPECT_NE(net.udp_sink(i), nullptr);
  }
}

TEST(Dumbbell, TransportSelection) {
  Simulator sim(1);
  {
    Dumbbell net(sim, small(Transport::kVegas));
    EXPECT_NE(dynamic_cast<TcpVegas*>(net.tcp_sender(0)), nullptr);
  }
}

TEST(Dumbbell, TrafficFlowsEndToEnd) {
  Simulator sim(1);
  Scenario sc = small();
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  EXPECT_GT(net.total_generated(), 100u);
  EXPECT_GT(net.total_delivered(), 100u);
  EXPECT_EQ(net.routing_errors(), 0u);
  // 4 clients cannot congest the 32 Mbps bottleneck: nothing dropped.
  EXPECT_EQ(net.bottleneck_queue().stats().drops, 0u);
}

TEST(Dumbbell, DeliveredNeverExceedsGenerated) {
  Simulator sim(2);
  Scenario sc = small();
  sc.num_clients = 45;  // congested
  sc.duration = 3.0;
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  EXPECT_LE(net.total_delivered(), net.total_generated());
  EXPECT_GT(net.bottleneck_queue().stats().drops, 0u);
}

TEST(Dumbbell, PerFlowDeliveredSumsToTotal) {
  Simulator sim(3);
  Scenario sc = small();
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  const auto per_flow = net.per_flow_delivered();
  ASSERT_EQ(per_flow.size(), 4u);
  double sum = 0.0;
  for (double d : per_flow) sum += d;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(net.total_delivered()));
}

TEST(Dumbbell, RedScenarioUsesRedQueue) {
  Simulator sim(1);
  Scenario sc = small();
  sc.gateway = GatewayQueue::kRed;
  Dumbbell net(sim, sc);
  // RedQueue exposes avg(); a DropTailQueue would not dynamic_cast.
  EXPECT_NE(dynamic_cast<RedQueue*>(&net.bottleneck_queue()), nullptr);
}

TEST(Dumbbell, BottleneckLinkParametersFollowScenario) {
  Simulator sim(1);
  Scenario sc = small();
  Dumbbell net(sim, sc);
  EXPECT_DOUBLE_EQ(net.bottleneck_link().bandwidth_bps(), sc.bottleneck_bw_bps);
  EXPECT_DOUBLE_EQ(net.bottleneck_link().prop_delay(), sc.bottleneck_delay);
}

TEST(Dumbbell, AckPathDoesNotCongest) {
  Simulator sim(4);
  Scenario sc = small();
  sc.num_clients = 50;
  sc.duration = 3.0;
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  // All drops happen at the bottleneck: client/reverse queues never drop.
  std::uint64_t total_gw_drops = net.bottleneck_queue().stats().drops;
  EXPECT_GT(total_gw_drops, 0u);
  EXPECT_EQ(net.routing_errors(), 0u);
}

}  // namespace
}  // namespace burst
