#include "src/stats/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/random.hpp"

namespace burst {
namespace {

TEST(Correlation, AutocorrLagZeroIsOne) {
  std::vector<double> xs{1, 3, 2, 5, 4, 6, 2, 8};
  EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Correlation, AutocorrPeriodicSignal) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(autocorrelation(xs, 1), -0.9);  // alternating
  EXPECT_GT(autocorrelation(xs, 2), 0.9);
}

TEST(Correlation, AutocorrIidNearZero) {
  Random rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
  for (int lag : {1, 2, 5, 10}) {
    EXPECT_NEAR(autocorrelation(xs, lag), 0.0, 0.03) << "lag " << lag;
  }
}

TEST(Correlation, AutocorrDegenerate) {
  EXPECT_DOUBLE_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 1.0, 1.0}, 1), 0.0);  // zero var
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);       // lag too big
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, -1), 0.0);
}

TEST(Correlation, PearsonPerfectAndInverse) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> up{2, 4, 6, 8, 10};
  std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Correlation, PearsonIndependentNearZero) {
  Random rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Correlation, PearsonDegenerate) {
  EXPECT_DOUBLE_EQ(pearson({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({1.0, 2.0}, {3.0}), 0.0);  // length mismatch
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Correlation, MeanPairwiseSyntheticGroups) {
  // Three copies of the same signal (plus tiny jitter): near 1.
  Random rng(9);
  std::vector<double> base;
  for (int i = 0; i < 5000; ++i) base.push_back(std::sin(i * 0.1));
  std::vector<std::vector<double>> correlated;
  for (int k = 0; k < 3; ++k) {
    auto copy = base;
    for (auto& v : copy) v += 0.01 * rng.uniform();
    correlated.push_back(std::move(copy));
  }
  EXPECT_GT(mean_pairwise_correlation(correlated), 0.95);

  std::vector<std::vector<double>> independent;
  for (int k = 0; k < 3; ++k) {
    std::vector<double> xs;
    for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform());
    independent.push_back(std::move(xs));
  }
  EXPECT_NEAR(mean_pairwise_correlation(independent), 0.0, 0.05);
}

TEST(Correlation, MeanPairwiseDegenerate) {
  EXPECT_DOUBLE_EQ(mean_pairwise_correlation({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_pairwise_correlation({{1.0, 2.0}}), 0.0);
}

}  // namespace
}  // namespace burst
