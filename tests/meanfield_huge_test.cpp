// Slow-suite huge-N checks for the mean-field mode (ctest -L slow).
//
// At N=10^4 the dumbbell must still conserve packets exactly (every
// queue's arrivals split into drops + departures + still-queued) and
// reproduce bit-identical results under the same seed. The N=10^5 smoke
// run pins the struct-of-arrays memory story: bytes/flow stays under the
// fig_meanfield budget and process RSS stays bounded.
#include <gtest/gtest.h>

#include <cstdint>

#ifdef __linux__
#include <fstream>
#include <sstream>
#include <string>
#endif

#include "src/core/scenario.hpp"
#include "src/net/link.hpp"
#include "src/net/queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/builder.hpp"
#include "src/topo/spec.hpp"
#include "src/transport/flow_arena.hpp"

namespace burst {
namespace {

Scenario huge_scenario(int clients, Time duration) {
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.meanfield_base = 60;
  sc.num_clients = clients;
  sc.duration = duration;
  return sc;
}

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
};

RunResult run_and_check_conservation(const Scenario& sc) {
  Simulator sim(sc.seed);
  TopoNet net(sim, make_dumbbell_spec(sc));
  net.start_sources();
  sim.run(sc.duration);

  EXPECT_EQ(net.routing_errors(), 0u);

  // Per-queue conservation: every packet offered to a queue is either
  // dropped, handed to the transmitter, or still sitting in the buffer.
  // Statements: 0 = bottleneck, 1 = reverse, 2 = up links, 3 = down.
  std::uint64_t up_departures = 0;
  for (int statement : {0, 1, 2, 3}) {
    const int members = statement >= 2 ? sc.num_clients : 1;
    for (int m = 0; m < members; ++m) {
      const Queue& q = net.link(statement, m).queue();
      const QueueStats& s = q.stats();
      EXPECT_EQ(s.arrivals, s.drops + s.departures + q.len())
          << "statement " << statement << " member " << m;
      if (statement == 2) up_departures += s.departures;
    }
  }

  // Path conservation, as inequalities because packets can be mid-wire:
  // data flows client -> up link -> gateway (bottleneck) -> server sink.
  const QueueStats& btl = net.measured_queue().stats();
  EXPECT_LE(btl.arrivals, up_departures);
  EXPECT_LE(net.total_delivered(), btl.departures);
  EXPECT_LE(net.total_delivered(), net.total_generated());
  EXPECT_GT(net.total_delivered(), 0u);

  RunResult r;
  r.events = sim.events_run();
  r.generated = net.total_generated();
  r.delivered = net.total_delivered();
  return r;
}

TEST(MeanfieldHuge, ConservationAndSeedStabilityAt10k) {
  const Scenario sc = huge_scenario(10000, 2.0);
  const RunResult a = run_and_check_conservation(sc);
  const RunResult b = run_and_check_conservation(sc);
  // Same seed, same scenario: the runs must be bit-identical.
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
}

#ifdef __linux__
std::size_t vm_rss_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream in(line.substr(6));
      std::size_t kib = 0;
      in >> kib;
      return kib;
    }
  }
  return 0;
}
#endif

TEST(MeanfieldHuge, SmokeAt100kStaysWithinMemoryBudget) {
  const int clients = 100000;
  const Scenario sc = huge_scenario(clients, 0.5);

  // Same per-flow ceiling as fig_meanfield: if per-flow transport state
  // grows past 2 KiB, construction must throw rather than creep.
  constexpr std::size_t kBudgetPerFlowBytes = 2048;
  FlowArena::set_default_budget_bytes(
      (static_cast<std::size_t>(clients) + 1) * kBudgetPerFlowBytes);

  Simulator sim(sc.seed);
  TopoNet net(sim, make_dumbbell_spec(sc));
  FlowArena::set_default_budget_bytes(0);

  const double bytes_per_flow =
      static_cast<double>(net.flow_arena().bytes_reserved()) / clients;
  EXPECT_GT(bytes_per_flow, 0.0);
  EXPECT_LE(bytes_per_flow, static_cast<double>(kBudgetPerFlowBytes));

  net.start_sources();
  sim.run(sc.duration);
  EXPECT_GT(net.total_delivered(), 0u);
  EXPECT_EQ(net.routing_errors(), 0u);

#ifdef __linux__
  // Whole-process ceiling (arena + nodes + links + scheduler). The run
  // measures ~hundreds of MiB; 2 GiB flags an order-of-magnitude leak
  // without being machine-sensitive.
  const std::size_t rss = vm_rss_kib();
  ASSERT_GT(rss, 0u);
  EXPECT_LT(rss, 2u * 1024u * 1024u) << "VmRSS " << rss << " KiB";
#endif
}

}  // namespace
}  // namespace burst
