// Randomized differential test: the two-tier Scheduler (heap + timing
// wheel) against a naive reference model (sorted map), over thousands of
// interleaved schedule / soft-schedule / reserve / cancel / run
// operations.
//
// The model mirrors the full ordering contract: events pop by
// (at, tie_time, seq), where seq is the scheduler's monotone insertion
// counter — consumed by schedule_at(), schedule_soft_at() AND
// reserve_order() alike — so the fused-event machinery (explicit tie
// times, ranks reserved early and redeemed later; see SimplexLink) and
// the wheel-parked soft-deadline class are exercised against the same
// oracle as plain FIFO scheduling. The model also predicts exactly which
// cancels are stale (target already fired or cancelled), pinning
// Scheduler::stale_cancels() — well-behaved components must never rely
// on the generation-tag no-op.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"

namespace burst {
namespace {

using Key = std::tuple<Time, Time, std::uint64_t>;  // (at, tie_time, seq)

struct Reference {
  std::map<Key, int> pending;  // key -> label
  std::map<EventId, Key> by_id;

  void schedule(Key key, EventId id, int label) {
    pending[key] = label;
    by_id[id] = key;
  }
  bool is_pending(EventId id) const {
    auto it = by_id.find(id);
    return it != by_id.end() && pending.count(it->second) > 0;
  }
  void cancel(EventId id) {
    auto it = by_id.find(id);
    if (it != by_id.end()) pending.erase(it->second);
  }
  int pop() {
    auto it = pending.begin();
    const int label = it->second;
    pending.erase(it);
    return label;
  }
};

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, MatchesReferenceModel) {
  Random rng(GetParam());
  Scheduler sched;
  Reference ref;
  std::vector<EventId> live_ids;
  // (order, tie_time) pairs reserved but not yet redeemed.
  std::vector<std::pair<std::uint64_t, Time>> reservations;
  std::vector<int> fired;  // labels, in execution order
  Time now = 0.0;
  // Mirrors the scheduler's internal seq counter (starts at 1); validated
  // against reserve_order()'s return values below.
  std::uint64_t model_seq = 1;
  std::uint64_t expected_stale = 0;
  int next_label = 0;

  auto make_fn = [&fired](int label) {
    return [&fired, label] { fired.push_back(label); };
  };

  for (int step = 0; step < 5000; ++step) {
    const double op = rng.uniform();
    if (op < 0.25) {
      // Plain schedule: tie_time == "now", the Simulator default — FIFO.
      const Time at = now + rng.uniform(0.0, 10.0);
      const int label = next_label++;
      const std::uint64_t seq = model_seq++;
      const EventId id = sched.schedule_at(at, make_fn(label), now);
      ref.schedule({at, now, seq}, id, label);
      live_ids.push_back(id);
    } else if (op < 0.40) {
      // Soft-deadline schedule: may park in the timing wheel, but must
      // pop in exactly the (at, tie_time, seq) order of the plain path.
      // Mix near deadlines (sub-tick -> heap) with far ones (wheel).
      const Time at =
          now + (rng.uniform() < 0.3 ? rng.uniform(0.0, 1e-3)
                                     : rng.uniform(0.0, 30.0));
      const int label = next_label++;
      const std::uint64_t seq = model_seq++;
      const EventId id = sched.schedule_soft_at(at, make_fn(label), now);
      ref.schedule({at, now, seq}, id, label);
      live_ids.push_back(id);
    } else if (op < 0.50) {
      // Fused-style schedule: an explicit virtual insertion instant in
      // the past splices the event ahead of same-time FIFO peers.
      const Time at = now + rng.uniform(0.0, 10.0);
      const Time tie = rng.uniform(0.0, now == 0.0 ? 1e-9 : now);
      const int label = next_label++;
      const std::uint64_t seq = model_seq++;
      const EventId id = sched.schedule_at(at, make_fn(label), tie);
      ref.schedule({at, tie, seq}, id, label);
      live_ids.push_back(id);
    } else if (op < 0.55) {
      // Reserve a rank now, redeem it later (possibly much later).
      const std::uint64_t order = sched.reserve_order();
      EXPECT_EQ(order, model_seq);  // the counters must track in lockstep
      ++model_seq;
      reservations.emplace_back(order, now);
    } else if (op < 0.62 && !reservations.empty()) {
      // Redeem the oldest reservation: the event must sort as if it had
      // been inserted back when the rank was reserved.
      const auto [order, tie] = reservations.front();
      reservations.erase(reservations.begin());
      const Time at = now + rng.uniform(0.0, 10.0);
      const int label = next_label++;
      const EventId id =
          sched.schedule_at_reserved(at, tie, order, make_fn(label));
      ref.schedule({at, tie, order}, id, label);
      live_ids.push_back(id);
    } else if (op < 0.72 && !live_ids.empty()) {
      // Cancel a random id (possibly already fired -> no-op both sides).
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const EventId id = live_ids[idx];
      EXPECT_EQ(sched.pending(id), ref.is_pending(id));
      if (!sched.pending(id)) ++expected_stale;  // fired/cancelled target
      ref.cancel(id);
      sched.cancel(id);
    } else if (!sched.empty()) {
      // Run one event; the model must agree on which one.
      ASSERT_FALSE(ref.pending.empty());
      const Time t = sched.next_time();
      EXPECT_GE(t, now);
      now = t;
      const int expected = ref.pop();
      auto ready = sched.take_next();
      EXPECT_DOUBLE_EQ(ready.at, t);
      ready.fn();
      ASSERT_FALSE(fired.empty());
      EXPECT_EQ(fired.back(), expected)
          << "scheduler popped a different event than the model at t=" << t;
    }
    EXPECT_EQ(sched.size(), ref.pending.size());
  }
  // Drain; execution order must match the model to the end.
  while (!sched.empty()) {
    ASSERT_FALSE(ref.pending.empty());
    const int expected = ref.pop();
    sched.take_next().fn();
    EXPECT_EQ(fired.back(), expected);
  }
  EXPECT_TRUE(ref.pending.empty());
  // Every stale cancel was predicted by the model: the counter is exact,
  // so a component double-cancelling (see the traffic sources) shows up.
  EXPECT_EQ(sched.stale_cancels(), expected_stale);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace burst
