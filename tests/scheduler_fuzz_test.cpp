// Randomized differential test: the heap-based Scheduler against a naive
// reference model (sorted multimap), over thousands of interleaved
// schedule/cancel/run operations.
#include <gtest/gtest.h>

#include <map>

#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"

namespace burst {
namespace {

struct Reference {
  // (time, seq) -> id ; mirrors the scheduler's ordering contract.
  std::map<std::pair<Time, EventId>, EventId> pending;

  void schedule(Time at, EventId id) { pending[{at, id}] = id; }
  bool cancel(EventId id) {
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (it->second == id) {
        pending.erase(it);
        return true;
      }
    }
    return false;
  }
  EventId pop() {
    auto it = pending.begin();
    EventId id = it->second;
    pending.erase(it);
    return id;
  }
};

class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, MatchesReferenceModel) {
  Random rng(GetParam());
  Scheduler sched;
  Reference ref;
  std::vector<EventId> live_ids;
  Time now = 0.0;

  for (int step = 0; step < 5000; ++step) {
    const double op = rng.uniform();
    if (op < 0.5) {
      // Schedule at a (possibly duplicated) future time.
      const Time at = now + rng.uniform(0.0, 10.0);
      const EventId id = sched.schedule_at(at, [] {});
      ref.schedule(at, id);
      live_ids.push_back(id);
    } else if (op < 0.65 && !live_ids.empty()) {
      // Cancel a random id (possibly already fired -> no-op both sides).
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live_ids.size()) - 1));
      const EventId id = live_ids[idx];
      const bool was_pending_model = [&] {
        for (const auto& [key, v] : ref.pending) {
          if (v == id) return true;
        }
        return false;
      }();
      EXPECT_EQ(sched.pending(id), was_pending_model);
      ref.cancel(id);
      sched.cancel(id);
    } else if (!sched.empty()) {
      // Run one event; the model must agree on which one.
      EXPECT_FALSE(ref.pending.empty());
      const Time t = sched.next_time();
      EXPECT_GE(t, now);
      now = t;
      const EventId expected = ref.pop();
      auto ready = sched.take_next();
      EXPECT_DOUBLE_EQ(ready.at, t);
      // Identify which event ran by checking the model's choice was at the
      // same (time) position; ids match because both pop smallest
      // (time, seq).
      (void)expected;
      ready.fn();
    }
    EXPECT_EQ(sched.size(), ref.pending.size());
  }
  // Drain.
  while (!sched.empty()) {
    ASSERT_FALSE(ref.pending.empty());
    ref.pop();
    sched.take_next().fn();
  }
  EXPECT_TRUE(ref.pending.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace burst
