#include "src/transport/udp.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"

namespace burst {
namespace {

struct UdpHarness {
  Simulator sim{1};
  Node a{0}, b{1};
  SimplexLink ab{sim, std::make_unique<DropTailQueue>(5), 1e6, 0.010};
  UdpSender sender{sim, a, 0, 1};
  UdpSink sink{sim, b, 0, 0};

  UdpHarness() {
    ab.set_receiver([this](const Packet& p) { b.receive(p); });
    a.add_route(Node::kDefaultRoute, &ab);
  }
};

TEST(Udp, TransmitsImmediately) {
  UdpHarness h;
  h.sender.app_send(1);
  EXPECT_EQ(h.sender.packets_sent(), 1u);
  h.sim.run();
  EXPECT_EQ(h.sink.packets_received(), 1u);
  EXPECT_EQ(h.sink.bytes_received(), 1040u);
}

TEST(Udp, NoRetransmissionOnLoss) {
  UdpHarness h;
  // Queue capacity 5 + 1 in flight: a burst of 10 loses 4.
  h.sender.app_send(10);
  h.sim.run();
  EXPECT_EQ(h.sender.packets_sent(), 10u);
  EXPECT_EQ(h.sink.packets_received(), 6u);
  EXPECT_EQ(h.ab.queue().stats().drops, 4u);
  // And nothing further happens: UDP never recovers the loss.
  h.sim.run(100.0);
  EXPECT_EQ(h.sink.packets_received(), 6u);
}

TEST(Udp, SenderIgnoresIncomingPackets) {
  UdpHarness h;
  Packet bogus;
  bogus.type = PacketType::kAck;
  h.sender.handle(bogus);  // must be a no-op
  EXPECT_EQ(h.sender.packets_sent(), 0u);
}

TEST(Udp, SinkIgnoresAcks) {
  UdpHarness h;
  Packet ack;
  ack.type = PacketType::kAck;
  h.sink.handle(ack);
  EXPECT_EQ(h.sink.packets_received(), 0u);
}

TEST(Udp, SequencesIncrease) {
  UdpHarness h;
  std::vector<std::int64_t> seqs;
  h.ab.queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    seqs.push_back(p.seq);
  });
  h.sender.app_send(3);
  h.sim.run();
  EXPECT_EQ(seqs, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(Udp, CustomPayloadSize) {
  Simulator sim;
  Node a(0), b(1);
  SimplexLink ab(sim, std::make_unique<DropTailQueue>(10), 1e6, 0.0);
  ab.set_receiver([&b](const Packet& p) { b.receive(p); });
  a.add_route(Node::kDefaultRoute, &ab);
  UdpSender s(sim, a, 0, 1, 512);
  UdpSink k(sim, b, 0, 0);
  s.app_send(1);
  sim.run();
  EXPECT_EQ(k.bytes_received(), 512u + kHeaderBytes);
}

}  // namespace
}  // namespace burst
