// TimingWheel unit tests plus the heap-vs-wheel differential fuzz: the
// same random schedule/cancel/advance script driven through a pure-heap
// scheduler (schedule_at) and a wheel-routed one (schedule_soft_at) must
// fire the identical (time, label) sequence — the wheel is a storage
// optimization, never an ordering change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/timing_wheel.hpp"

namespace burst {
namespace {

using Entry = TimingWheel::Entry;

// Drains the wheel through pop_earliest, asserting the surrender-order
// invariant (each batch's minimum `at` is >= every previously surrendered
// entry's `at`), and returns all entries in surrender order.
std::vector<Entry> drain(TimingWheel& wheel) {
  std::vector<Entry> out;
  Time last_batch_max = -1.0;
  std::vector<Entry> batch;
  while (!wheel.empty()) {
    batch.clear();
    wheel.pop_earliest(batch);
    EXPECT_FALSE(batch.empty());
    Time batch_min = kTimeNever;
    Time batch_max = -1.0;
    for (const Entry& e : batch) {
      batch_min = std::min(batch_min, e.at);
      batch_max = std::max(batch_max, e.at);
    }
    // A batch is one level-0 tick; ticks surrender in increasing order,
    // so no later batch may contain an earlier `at`.
    if (last_batch_max >= 0.0) {
      EXPECT_GE(batch_min, last_batch_max)
          << "bucket surrendered out of tick order";
    }
    last_batch_max = std::max(last_batch_max, batch_max);
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

TEST(TimingWheel, SingleEntryRoundTrips) {
  TimingWheel wheel(1e-3);
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.min_at_bound(), kTimeNever);
  ASSERT_TRUE(wheel.accepts(0.5));
  wheel.insert({0.5, 0.1, 7, 42});
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_LE(wheel.min_at_bound(), 0.5);
  std::vector<Entry> out;
  wheel.pop_earliest(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].at, 0.5);
  EXPECT_DOUBLE_EQ(out[0].tie_time, 0.1);
  EXPECT_EQ(out[0].seq, 7u);
  EXPECT_EQ(out[0].sched_slot, 42u);
  EXPECT_TRUE(wheel.empty());
}

TEST(TimingWheel, RejectsCurrentTick) {
  TimingWheel wheel(1e-3);
  // Tick 0 is the cursor's tick: not strictly in the future.
  EXPECT_FALSE(wheel.accepts(0.0));
  EXPECT_FALSE(wheel.accepts(0.9e-3));
  EXPECT_TRUE(wheel.accepts(1.1e-3));
}

TEST(TimingWheel, SurrendersInTickOrderAcrossLevels) {
  // Spread entries over ~5 decades of ticks so every level (and the far
  // list) is populated: granularity 1 µs puts t=2000 s past 64^5 ticks.
  TimingWheel wheel(1e-6);
  Random rng(99);
  std::vector<Time> ats;
  for (int i = 0; i < 2000; ++i) {
    const double mag = rng.uniform(0.0, 9.0);  // 1e-5 .. 1e4 seconds
    const Time at = 1e-5 * std::pow(10.0, mag);
    if (!wheel.accepts(at)) continue;
    wheel.insert({at, 0.0, static_cast<std::uint64_t>(i),
                  static_cast<std::uint32_t>(i)});
    ats.push_back(at);
  }
  ASSERT_GT(ats.size(), 1900u);
  const std::vector<Entry> out = drain(wheel);
  ASSERT_EQ(out.size(), ats.size());
  // Same multiset of times, and coarse levels actually cascaded.
  std::vector<Time> drained;
  for (const Entry& e : out) drained.push_back(e.at);
  std::sort(ats.begin(), ats.end());
  std::vector<Time> sorted = drained;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, ats);
  EXPECT_GT(wheel.cascades(), 0u);
}

TEST(TimingWheel, RemoveUnlinksAndFreesSlot) {
  TimingWheel wheel(1e-3);
  const std::uint32_t a = wheel.insert({0.25, 0.0, 1, 10});
  const std::uint32_t b = wheel.insert({0.25, 0.0, 2, 11});
  const std::uint32_t c = wheel.insert({0.75, 0.0, 3, 12});
  (void)a;
  (void)c;
  wheel.remove(b);
  EXPECT_EQ(wheel.size(), 2u);
  const std::vector<Entry> out = drain(wheel);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].sched_slot, 10u);
  EXPECT_EQ(out[1].sched_slot, 12u);
}

TEST(TimingWheel, RemoveHeadOfBucket) {
  TimingWheel wheel(1e-3);
  wheel.insert({0.25, 0.0, 1, 10});
  // Most-recent insert is the list head; removing it must keep the rest.
  const std::uint32_t head = wheel.insert({0.2504, 0.0, 2, 11});
  wheel.remove(head);
  const std::vector<Entry> out = drain(wheel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sched_slot, 10u);
}

TEST(TimingWheel, MinAtBoundNeverExceedsResidentMin) {
  TimingWheel wheel(1e-3);
  Random rng(7);
  std::vector<std::pair<Time, std::uint32_t>> live;  // (at, node)
  for (int i = 0; i < 500; ++i) {
    const Time at = rng.uniform(1e-3, 50.0);
    if (!wheel.accepts(at)) continue;
    live.emplace_back(at, wheel.insert({at, 0.0,
                                        static_cast<std::uint64_t>(i), 0}));
    if (live.size() > 3 && rng.uniform() < 0.3) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(live.size()) - 1));
      wheel.remove(live[idx].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    Time true_min = kTimeNever;
    for (const auto& [t, n] : live) true_min = std::min(true_min, t);
    // The bound may be stale-low after removals, never high: a high bound
    // would let the scheduler pop the heap past a wheel resident.
    EXPECT_LE(wheel.min_at_bound(), true_min);
  }
}

TEST(TimingWheel, FarListRefillsWhenLevelsDrain) {
  // Granularity 1 ns: 64^5 ticks ~= 1.07 s, so seconds-scale deadlines
  // land in the far list and must re-bucket when the levels empty.
  TimingWheel wheel(1e-9);
  wheel.insert({2.0, 0.0, 1, 1});
  wheel.insert({5.0, 0.0, 2, 2});
  wheel.insert({0.5, 0.0, 3, 3});  // in-level
  std::vector<Entry> out;
  wheel.pop_earliest(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].at, 0.5);
  const std::vector<Entry> rest = drain(wheel);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_DOUBLE_EQ(rest[0].at, 2.0);
  EXPECT_DOUBLE_EQ(rest[1].at, 5.0);
}

// ---------------------------------------------------------------------------
// Differential fuzz: heap-only vs wheel-routed scheduler.

class HeapWheelDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HeapWheelDifferential, IdenticalFireSequences) {
  // Two schedulers, one script. `exact` routes everything to the heap;
  // `soft` routes the same events through schedule_soft_at (wheel for
  // far-future deadlines). Their pop sequences must match event for
  // event, including same-instant FIFO ties.
  Random rng(GetParam());
  Scheduler exact;
  Scheduler soft;
  std::vector<std::pair<EventId, EventId>> ids;  // (exact, soft)
  std::vector<std::pair<Time, int>> fired_exact;
  std::vector<std::pair<Time, int>> fired_soft;
  Time now = 0.0;
  int next_label = 0;

  for (int step = 0; step < 8000; ++step) {
    const double op = rng.uniform();
    if (op < 0.55) {
      // Deadlines from sub-tick to far future; a burst of duplicates at
      // the same instant exercises cross-structure FIFO ties.
      Time at;
      const double kind = rng.uniform();
      if (kind < 0.2) {
        at = now + rng.uniform(0.0, 1e-4);
      } else if (kind < 0.9) {
        at = now + rng.uniform(0.0, 5.0);
      } else {
        at = now + rng.uniform(0.0, 500.0);
      }
      const int reps = rng.uniform() < 0.1 ? 3 : 1;
      for (int r = 0; r < reps; ++r) {
        const int label = next_label++;
        const EventId e = exact.schedule_at(
            at, [&fired_exact, at, label] {
              fired_exact.emplace_back(at, label);
            },
            now);
        const EventId s = soft.schedule_soft_at(
            at, [&fired_soft, at, label] {
              fired_soft.emplace_back(at, label);
            },
            now);
        ids.emplace_back(e, s);
      }
    } else if (op < 0.70 && !ids.empty()) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1));
      EXPECT_EQ(exact.pending(ids[idx].first), soft.pending(ids[idx].second));
      exact.cancel(ids[idx].first);
      soft.cancel(ids[idx].second);
    } else if (!exact.empty()) {
      ASSERT_FALSE(soft.empty());
      const Time te = exact.next_time();
      const Time ts = soft.next_time();
      EXPECT_DOUBLE_EQ(te, ts);
      now = te;
      exact.take_next().fn();
      soft.take_next().fn();
      ASSERT_FALSE(fired_exact.empty());
      ASSERT_FALSE(fired_soft.empty());
      EXPECT_EQ(fired_exact.back(), fired_soft.back())
          << "backends diverged at t=" << now;
    }
    EXPECT_EQ(exact.size(), soft.size());
  }
  while (!exact.empty()) {
    ASSERT_FALSE(soft.empty());
    exact.take_next().fn();
    soft.take_next().fn();
    EXPECT_EQ(fired_exact.back(), fired_soft.back());
  }
  EXPECT_TRUE(soft.empty());
  EXPECT_EQ(fired_exact, fired_soft);
  // The script must actually have exercised the wheel.
  EXPECT_GT(soft.scheduled_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapWheelDifferential,
                         ::testing::Values(11u, 27u, 301u, 4096u));

}  // namespace
}  // namespace burst
