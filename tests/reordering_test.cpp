// Behavior under packet *reordering* (as opposed to loss): spurious dup
// ACKs must not break reliability, and SACK must not mis-mark data.
// A hand-driven two-node setup delivers selected packets out of order.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_sack.hpp"
#include "src/transport/tcp_sink.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {
namespace {

// Harness whose forward path swaps each k-th packet with its successor,
// introducing reordering without loss.
struct ReorderHarness {
  Simulator sim{1};
  Node a{0}, b{1};
  SimplexLink ba{sim, std::make_unique<DropTailQueue>(10000), 10e6, 0.010};
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpSink> sink;

  int swap_every;          // swap packet i with i+1 when i % swap_every == 0
  std::int64_t count = 0;
  std::deque<Packet> held;

  explicit ReorderHarness(int swap_every_n, TcpSinkConfig sink_cfg = {})
      : swap_every(swap_every_n) {
    ba.set_receiver([this](const Packet& p) { a.receive(p); });
    b.add_route(Node::kDefaultRoute, &ba);
    sink = std::make_unique<TcpSink>(sim, b, 0, 0, sink_cfg);
    // Forward "link": direct delivery with fixed latency, but hold every
    // swap_every-th data packet back one packet.
    a.add_route(Node::kDefaultRoute, nullptr);  // replaced below
  }

  // Installs the reordering forward path; must be called after the sender
  // exists (gmock-free manual wiring).
  void wire(TcpSender* s) {
    sender.reset(s);
    // Intercept at the node level: replace the route with a tiny shim link
    // that delivers through our reordering function.
    static_link = std::make_unique<SimplexLink>(
        sim, std::make_unique<DropTailQueue>(10000), 10e6, 0.010);
    static_link->set_receiver([this](const Packet& p) { deliver(p); });
    a.add_route(Node::kDefaultRoute, static_link.get());
  }

  void deliver(const Packet& p) {
    if (p.type != PacketType::kData) {
      b.receive(p);
      return;
    }
    ++count;
    if (swap_every > 0 && count % swap_every == 0) {
      held.push_back(p);  // hold this one until the next data packet
      return;
    }
    b.receive(p);
    while (!held.empty()) {
      b.receive(held.front());
      held.pop_front();
    }
  }

  void flush_held() {
    while (!held.empty()) {
      b.receive(held.front());
      held.pop_front();
    }
  }

  std::unique_ptr<SimplexLink> static_link;
};

TEST(Reordering, RenoSurvivesMildReordering) {
  ReorderHarness h(7);
  auto* s = new TcpReno(h.sim, h.a, 0, 1);
  h.wire(s);
  s->app_send(300);
  h.sim.run(60.0);
  h.flush_held();
  h.sim.run(120.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 300);
  // Reordering by one position creates at most 1-2 dup ACKs per event:
  // below the dupack threshold, so no spurious timeouts are *required*.
  EXPECT_EQ(h.sink->stats().out_of_order,
            h.sink->stats().out_of_order);  // smoke: counter exists
  EXPECT_GT(h.sink->stats().out_of_order, 0u);
}

TEST(Reordering, SpuriousRetransmissionsAreBounded) {
  ReorderHarness h(5);
  auto* s = new TcpReno(h.sim, h.a, 0, 1);
  h.wire(s);
  s->app_send(500);
  h.sim.run(120.0);
  h.flush_held();
  h.sim.run(240.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 500);
  // One-position reordering generates < 3 dupacks per event; only the
  // occasional coincidence can trigger fast retransmit. Allow a small
  // number of spurious retransmissions, not a flood.
  EXPECT_LT(s->stats().retransmits, 50u);
}

TEST(Reordering, SackHandlesReorderingWithoutFalseHoles) {
  TcpSinkConfig cfg;
  cfg.sack = true;
  ReorderHarness h(6, cfg);
  auto* s = new TcpSack(h.sim, h.a, 0, 1);
  h.wire(s);
  s->app_send(400);
  h.sim.run(120.0);
  h.flush_held();
  h.sim.run(240.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 400);
  EXPECT_EQ(s->scoreboard_size(), 0u);
  EXPECT_LT(s->stats().retransmits, 50u);
}

TEST(Reordering, VegasFineCheckToleratesReordering) {
  ReorderHarness h(6);
  auto* s = new TcpVegas(h.sim, h.a, 0, 1);
  h.wire(s);
  s->app_send(400);
  h.sim.run(120.0);
  h.flush_held();
  h.sim.run(240.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 400);
  EXPECT_EQ(s->stats().timeouts, 0u);  // reordering must not cause RTOs
}

}  // namespace
}  // namespace burst
