#include "src/stats/time_series.hpp"

#include <gtest/gtest.h>

#include "src/sim/random.hpp"

namespace burst {
namespace {

TEST(TimeSeries, AggregateSumsBlocks) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7};
  auto agg = aggregate_series(xs, 2);
  EXPECT_EQ(agg, (std::vector<double>{3, 7, 11}));  // tail 7 discarded
}

TEST(TimeSeries, AggregateByOneIsIdentity) {
  std::vector<double> xs{1, 2, 3};
  EXPECT_EQ(aggregate_series(xs, 1), xs);
}

TEST(TimeSeries, AggregateInvalidBlock) {
  std::vector<double> xs{1, 2, 3};
  EXPECT_TRUE(aggregate_series(xs, 0).empty());
  EXPECT_TRUE(aggregate_series(xs, -2).empty());
}

TEST(TimeSeries, ToDoubles) {
  std::vector<std::uint64_t> xs{1, 2, 3};
  EXPECT_EQ(to_doubles(xs), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TimeSeries, SeriesStats) {
  auto rs = series_stats({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(rs.mean(), 4.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 4.0);
}

TEST(TimeSeries, CovFallsAsSqrtMForIidCounts) {
  // iid counts: cov at aggregation m scales as 1/sqrt(m).
  Random rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) {
    // Poisson-ish iid: number of exponential events in a unit window,
    // approximated by rounding an exponential sum; simpler: Bernoulli sums.
    int c = 0;
    for (int k = 0; k < 10; ++k) c += rng.bernoulli(0.5) ? 1 : 0;
    xs.push_back(static_cast<double>(c));
  }
  auto covs = cov_across_scales(xs, {1, 4, 16, 64});
  for (std::size_t i = 1; i < covs.size(); ++i) {
    EXPECT_NEAR(covs[i - 1] / covs[i], 2.0, 0.4);  // sqrt(4) per step
  }
}

TEST(TimeSeries, CovScalesAllZeroSeriesIsZeroNotNan) {
  // An idle trace (every bin zero) has mean 0 at every scale; the
  // guarded cov convention makes each entry 0 instead of NaN.
  std::vector<double> xs(1024, 0.0);
  auto covs = cov_across_scales(xs, {1, 4, 16});
  ASSERT_EQ(covs.size(), 3u);
  for (double c : covs) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(TimeSeries, CovScalesEmptyInput) {
  EXPECT_TRUE(cov_across_scales({}, {}).empty());
  auto covs = cov_across_scales({1.0, 2.0}, {8});
  ASSERT_EQ(covs.size(), 1u);
  EXPECT_DOUBLE_EQ(covs[0], 0.0);  // not enough data -> degenerate 0
}

}  // namespace
}  // namespace burst
