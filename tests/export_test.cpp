// CSV / JSON export round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/core/report.hpp"

namespace burst {
namespace {

TEST(Export, WriteSweepCsv) {
  SweepSeries a{"Reno", {}};
  SweepSeries b{"Vegas", {}};
  for (int n : {10, 20}) {
    SweepPoint p;
    p.num_clients = n;
    p.result.cov = n / 100.0;
    a.points.push_back(p);
    p.result.cov = n / 200.0;
    b.points.push_back(p);
  }
  const std::string path = ::testing::TempDir() + "/burst_sweep.csv";
  write_sweep_csv(path, {a, b},
                  [](const ExperimentResult& r) { return r.cov; });
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "clients,Reno,Vegas");
  std::getline(f, line);
  EXPECT_EQ(line, "10,0.1,0.05");
  std::getline(f, line);
  EXPECT_EQ(line, "20,0.2,0.1");
  std::remove(path.c_str());
}

TEST(Export, WriteSweepCsvEmpty) {
  const std::string path = ::testing::TempDir() + "/burst_sweep_empty.csv";
  write_sweep_csv(path, {},
                  [](const ExperimentResult& r) { return r.cov; });
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "clients");
  std::remove(path.c_str());
}

TEST(Export, JsonContainsHeadlineFields) {
  ExperimentResult r;
  r.scenario = Scenario::paper_default();
  r.scenario.num_clients = 42;
  r.cov = 0.125;
  r.delivered = 1234;
  r.loss_pct = 2.5;
  r.timeouts = 7;
  const std::string j = to_json(r);
  EXPECT_NE(j.find("\"scenario\":\"Reno N=42\""), std::string::npos);
  EXPECT_NE(j.find("\"cov\":0.125"), std::string::npos);
  EXPECT_NE(j.find("\"delivered\":1234"), std::string::npos);
  EXPECT_NE(j.find("\"loss_pct\":2.5"), std::string::npos);
  EXPECT_NE(j.find("\"timeouts\":7"), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  // Balanced quotes (crude well-formedness check).
  EXPECT_EQ(std::count(j.begin(), j.end(), '"') % 2, 0);
}

}  // namespace
}  // namespace burst
