#include "src/transport/tcp_newreno.hpp"

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TEST(TcpNewReno, DeliversReliably) {
  TcpHarness h;
  auto* s = h.make_sender<TcpNewReno>();
  s->app_send(100);
  h.sim.run();
  EXPECT_EQ(h.sink->rcv_nxt(), 100);
}

TEST(TcpNewReno, SurvivesBurstLossWithoutTimeoutMoreOftenThanReno) {
  // Multiple drops in one window: classic Reno usually needs a timeout,
  // NewReno retransmits on partial ACKs. Compare timeout counts across a
  // set of seeds; NewReno must never be worse in aggregate.
  std::uint64_t reno_timeouts = 0, newreno_timeouts = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LinkParams fwd;
    fwd.queue_capacity = 5;
    {
      TcpHarness h(seed, fwd);
      auto* s = h.make_sender<TcpReno>();
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(25);
      h.sim.run(60.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 40);
      reno_timeouts += s->stats().timeouts;
    }
    {
      TcpHarness h(seed, fwd);
      auto* s = h.make_sender<TcpNewReno>();
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(25);
      h.sim.run(60.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 40);
      newreno_timeouts += s->stats().timeouts;
    }
  }
  EXPECT_LE(newreno_timeouts, reno_timeouts);
}

TEST(TcpNewReno, PartialAckRetransmitsImmediately) {
  LinkParams fwd;
  fwd.queue_capacity = 4;
  TcpHarness h(2, fwd);
  auto* s = h.make_sender<TcpNewReno>();
  s->app_send(10);
  h.sim.run(1.0);
  const auto rexmits0 = s->stats().retransmits;
  s->app_send(20);  // burst with multiple drops
  h.sim.run(60.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 30);
  EXPECT_GT(s->stats().retransmits, rexmits0);
}

TEST(TcpNewReno, RecoveryEndsAtRecoverPoint) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpNewReno>();
  s->app_send(12);
  h.sim.run(1.0);
  s->app_send(20);
  h.sim.run(60.0);
  EXPECT_FALSE(s->in_fast_recovery());
  EXPECT_EQ(h.sink->rcv_nxt(), 32);
}

TEST(TcpNewReno, HeavyLossProperty) {
  for (std::size_t cap : {1u, 3u, 6u}) {
    LinkParams fwd;
    fwd.queue_capacity = cap;
    TcpHarness h(11, fwd);
    auto* s = h.make_sender<TcpNewReno>();
    s->app_send(200);
    h.sim.run(300.0);
    EXPECT_EQ(h.sink->rcv_nxt(), 200) << "cap " << cap;
  }
}

}  // namespace
}  // namespace burst
