// TcpSink behavior in isolation: acks, out-of-order buffering, delayed
// acks. We drive the sink directly with hand-built packets and capture
// the acks it injects into its node.
#include "src/transport/tcp_sink.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/sim/simulator.hpp"

namespace burst {
namespace {

struct SinkHarness {
  Simulator sim{1};
  Node server{1};
  // Loopback link capturing everything the sink transmits.
  SimplexLink out{sim, std::make_unique<DropTailQueue>(1000), 1e9, 0.0};
  std::vector<Packet> acks;
  std::unique_ptr<TcpSink> sink;

  explicit SinkHarness(TcpSinkConfig cfg = {}) {
    out.set_receiver([this](const Packet& p) { acks.push_back(p); });
    server.add_route(Node::kDefaultRoute, &out);
    sink = std::make_unique<TcpSink>(sim, server, 0, 0, cfg);
  }

  Packet data(std::int64_t seq, Time ts = 0.0, bool rexmit = false) {
    Packet p;
    p.type = PacketType::kData;
    p.flow = 0;
    p.src = 0;
    p.dst = 1;
    p.seq = seq;
    p.size_bytes = 1040;
    p.ts_echo = ts;
    p.retransmit = rexmit;
    return p;
  }
};

TEST(TcpSink, AcksEachInOrderPacketImmediately) {
  SinkHarness h;
  h.sink->handle(h.data(0));
  h.sink->handle(h.data(1));
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[0].ack, 1);
  EXPECT_EQ(h.acks[1].ack, 2);
  EXPECT_EQ(h.acks[0].type, PacketType::kAck);
  EXPECT_EQ(h.acks[0].size_bytes, kAckBytes);
}

TEST(TcpSink, EchoesTimestampAndRetransmitFlag) {
  SinkHarness h;
  h.sink->handle(h.data(0, 0.123, true));
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_DOUBLE_EQ(h.acks[0].ts_echo, 0.123);
  EXPECT_TRUE(h.acks[0].retransmit);
}

TEST(TcpSink, OutOfOrderGeneratesDupAcks) {
  SinkHarness h;
  h.sink->handle(h.data(0));
  h.sink->handle(h.data(2));  // gap at 1
  h.sink->handle(h.data(3));
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 3u);
  EXPECT_EQ(h.acks[0].ack, 1);
  EXPECT_EQ(h.acks[1].ack, 1);  // dup
  EXPECT_EQ(h.acks[2].ack, 1);  // dup
  EXPECT_EQ(h.sink->stats().dup_acks_sent, 2u);
  EXPECT_EQ(h.sink->stats().out_of_order, 2u);
}

TEST(TcpSink, GapFillAcksCumulatively) {
  SinkHarness h;
  h.sink->handle(h.data(0));
  h.sink->handle(h.data(2));
  h.sink->handle(h.data(3));
  h.sink->handle(h.data(1));  // fills the hole
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 4u);
  EXPECT_EQ(h.acks[3].ack, 4);  // jumps over the buffered 2,3
  EXPECT_EQ(h.sink->rcv_nxt(), 4);
}

TEST(TcpSink, DuplicateDataReAcked) {
  SinkHarness h;
  h.sink->handle(h.data(0));
  h.sink->handle(h.data(0));  // duplicate
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[1].ack, 1);
  EXPECT_EQ(h.sink->stats().duplicate_packets, 1u);
  EXPECT_EQ(h.sink->stats().unique_packets, 1u);
}

TEST(TcpSink, UniquePacketsCountOutOfOrderOnce) {
  SinkHarness h;
  h.sink->handle(h.data(2));
  h.sink->handle(h.data(2));
  h.sim.run();
  EXPECT_EQ(h.sink->stats().unique_packets, 1u);
  EXPECT_EQ(h.sink->stats().duplicate_packets, 1u);
}

TEST(TcpSink, DelayedAckCoalescesPairs) {
  TcpSinkConfig cfg;
  cfg.delayed_ack = true;
  SinkHarness h(cfg);
  h.sink->handle(h.data(0));
  h.sink->handle(h.data(1));
  h.sink->handle(h.data(2));
  h.sink->handle(h.data(3));
  h.sim.run();
  // 4 in-order packets -> 2 acks (one per pair), no timer needed.
  ASSERT_EQ(h.acks.size(), 2u);
  EXPECT_EQ(h.acks[0].ack, 2);
  EXPECT_EQ(h.acks[1].ack, 4);
}

TEST(TcpSink, DelayedAckTimerFiresForLonePacket) {
  TcpSinkConfig cfg;
  cfg.delayed_ack = true;
  cfg.delack_interval = 0.1;
  SinkHarness h(cfg);
  h.sink->handle(h.data(0));
  h.sim.run(0.05);
  EXPECT_TRUE(h.acks.empty());  // still held
  h.sim.run(0.2);
  ASSERT_EQ(h.acks.size(), 1u);
  EXPECT_EQ(h.acks[0].ack, 1);
}

TEST(TcpSink, DelayedAckEchoesOlderTimestamp) {
  TcpSinkConfig cfg;
  cfg.delayed_ack = true;
  SinkHarness h(cfg);
  h.sink->handle(h.data(0, 0.100));
  h.sink->handle(h.data(1, 0.150));
  h.sim.run();
  ASSERT_EQ(h.acks.size(), 1u);
  // RFC 7323: echo the timestamp of the oldest unacknowledged segment.
  EXPECT_DOUBLE_EQ(h.acks[0].ts_echo, 0.100);
}

TEST(TcpSink, DelayedAckDisabledOnOutOfOrder) {
  TcpSinkConfig cfg;
  cfg.delayed_ack = true;
  SinkHarness h(cfg);
  h.sink->handle(h.data(0));  // delack armed
  h.sink->handle(h.data(2));  // out of order: must ack immediately
  h.sim.run(0.01);
  // The pending delack is flushed by the immediate dup ack.
  ASSERT_GE(h.acks.size(), 1u);
  EXPECT_EQ(h.acks.back().ack, 1);
  h.sim.run();
  EXPECT_EQ(h.acks.size(), 1u);  // and no extra timer ack later
}

TEST(TcpSink, IgnoresAcks) {
  SinkHarness h;
  Packet a;
  a.type = PacketType::kAck;
  h.sink->handle(a);
  h.sim.run();
  EXPECT_TRUE(h.acks.empty());
  EXPECT_EQ(h.sink->stats().data_arrivals, 0u);
}

}  // namespace
}  // namespace burst
