// Self-configuring RED (the paper's reference [5]): max_p adapts so the
// average queue settles between the thresholds.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/net/red_queue.hpp"

namespace burst {
namespace {

RedConfig adaptive_config() {
  RedConfig cfg;
  cfg.min_th = 5;
  cfg.max_th = 15;
  cfg.max_p = 0.1;
  cfg.weight = 0.02;
  cfg.capacity = 1000;
  cfg.adaptive = true;
  cfg.adapt_interval = 0.1;
  return cfg;
}

TEST(AdaptiveRed, MaxPDecreasesWhenQueueTooEmpty) {
  RedQueue q(adaptive_config(), Random(1));
  // Light load: queue always ~0, avg < min_th.
  for (int i = 0; i < 100; ++i) {
    q.enqueue(Packet{.size_bytes = 1040}, i * 0.05);
    q.dequeue(i * 0.05);
  }
  EXPECT_LT(q.max_p(), 0.1);
  EXPECT_GE(q.max_p(), adaptive_config().min_max_p);
}

TEST(AdaptiveRed, MaxPIncreasesWhenQueuePinnedHigh) {
  RedConfig cfg = adaptive_config();
  RedQueue q(cfg, Random(1));
  // Keep 30 packets buffered (above max_th=15) while time passes.
  for (int i = 0; i < 30; ++i) q.enqueue(Packet{.size_bytes = 1040}, 0.0);
  for (int i = 0; i < 200; ++i) {
    q.enqueue(Packet{.size_bytes = 1040}, i * 0.05);
    // No dequeue: occupancy stays high (enqueues above max_th are dropped,
    // but avg keeps tracking the standing queue).
  }
  EXPECT_GT(q.max_p(), 0.1);
  EXPECT_LE(q.max_p(), cfg.max_max_p);
}

TEST(AdaptiveRed, StaticRedKeepsMaxP) {
  RedConfig cfg = adaptive_config();
  cfg.adaptive = false;
  RedQueue q(cfg, Random(1));
  for (int i = 0; i < 100; ++i) {
    q.enqueue(Packet{.size_bytes = 1040}, i * 0.05);
    q.dequeue(i * 0.05);
  }
  EXPECT_DOUBLE_EQ(q.max_p(), 0.1);
}

TEST(AdaptiveRed, AdjustmentRespectsInterval) {
  RedConfig cfg = adaptive_config();
  cfg.adapt_interval = 10.0;  // no adjustment inside the test horizon
  RedQueue q(cfg, Random(1));
  for (int i = 0; i < 100; ++i) {
    q.enqueue(Packet{.size_bytes = 1040}, i * 0.01);
    q.dequeue(i * 0.01);
  }
  EXPECT_DOUBLE_EQ(q.max_p(), 0.1);
}

TEST(AdaptiveRed, EndToEndKeepsQueueBetweenThresholds) {
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kReno;
  sc.gateway = GatewayQueue::kRed;
  sc.adaptive_red = true;
  sc.num_clients = 45;
  sc.duration = 10.0;
  const auto adaptive = run_experiment(sc);
  Scenario st = sc;
  st.adaptive_red = false;
  const auto fixed = run_experiment(st);
  // Both must deliver comparable volume; adaptive RED must not collapse.
  EXPECT_GT(adaptive.delivered, fixed.delivered * 9 / 10);
  EXPECT_EQ(adaptive.routing_errors, 0u);
}

}  // namespace
}  // namespace burst
