#include "src/stats/meanfield.hpp"

#include <gtest/gtest.h>

#include "src/core/scenario.hpp"

namespace burst {
namespace {

MeanfieldParams scaled_paper_params(int clients) {
  Scenario sc = Scenario::paper_default();
  sc.gateway = GatewayQueue::kRed;
  sc.meanfield_base = 60;
  sc.num_clients = clients;
  MeanfieldParams p;
  p.capacity_pps = sc.bottleneck_pps();
  p.base_rtt = sc.rtt_prop();
  p.num_flows = clients;
  p.red_min_th = sc.scaled_red_min_th();
  p.red_max_th = sc.scaled_red_max_th();
  p.red_max_p = sc.red_max_p;
  p.max_window = sc.advertised_window;
  return p;
}

TEST(Meanfield, RejectsInvalidParams) {
  MeanfieldParams p;  // all zero
  EXPECT_FALSE(red_meanfield_fixed_point(p).converged);
  p = scaled_paper_params(1000);
  p.red_max_th = p.red_min_th;  // degenerate profile
  EXPECT_FALSE(red_meanfield_fixed_point(p).converged);
  p = scaled_paper_params(1000);
  p.red_max_p = 0.0;
  EXPECT_FALSE(red_meanfield_fixed_point(p).converged);
}

TEST(Meanfield, FixedPointSatisfiesAllFourRelations) {
  const MeanfieldParams p = scaled_paper_params(1000);
  const MeanfieldFixedPoint fp = red_meanfield_fixed_point(p);
  ASSERT_TRUE(fp.converged);
  // x* must land inside the linear RED region for the paper profile.
  EXPECT_GT(fp.queue_pkts, p.red_min_th);
  EXPECT_LT(fp.queue_pkts, p.red_max_th);
  // Plug x* back into each relation.
  const double rtt = p.base_rtt + fp.queue_pkts / p.capacity_pps;
  EXPECT_NEAR(fp.rtt, rtt, 1e-9 * rtt);
  const double w = p.capacity_pps * rtt / p.num_flows;
  EXPECT_NEAR(fp.window_pkts, w, 1e-9 * w);
  const double prob = 1.5 / (w * w);
  EXPECT_NEAR(fp.drop_prob, prob, 1e-9 * prob);
  const double x = p.red_min_th +
                   prob * (p.red_max_th - p.red_min_th) / p.red_max_p;
  EXPECT_NEAR(fp.queue_pkts, x, 1e-6 * x);
}

TEST(Meanfield, FixedPointScalesLinearlyWithN) {
  // Under proportional (mean-field) scaling the normalized occupancy
  // x*/N is an invariant of the limit: doubling N, capacity, and
  // thresholds together exactly doubles x*.
  const MeanfieldFixedPoint a = red_meanfield_fixed_point(
      scaled_paper_params(1000));
  const MeanfieldFixedPoint b = red_meanfield_fixed_point(
      scaled_paper_params(10000));
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.queue_pkts / 1000.0, b.queue_pkts / 10000.0,
              1e-6 * (a.queue_pkts / 1000.0));
  // Per-flow window and drop probability are N-invariant.
  EXPECT_NEAR(a.window_pkts, b.window_pkts, 1e-6 * a.window_pkts);
  EXPECT_NEAR(a.drop_prob, b.drop_prob, 1e-6 * a.drop_prob);
}

TEST(Meanfield, WindowLimitedRegimeLeavesQueueEmpty) {
  MeanfieldParams p = scaled_paper_params(1000);
  p.max_window = 1.0;  // 1-packet windows cannot fill the scaled pipe
  const MeanfieldFixedPoint fp = red_meanfield_fixed_point(p);
  ASSERT_TRUE(fp.converged);
  EXPECT_DOUBLE_EQ(fp.queue_pkts, 0.0);
  EXPECT_DOUBLE_EQ(fp.drop_prob, 0.0);
  EXPECT_DOUBLE_EQ(fp.window_pkts, 1.0);
  EXPECT_DOUBLE_EQ(fp.rtt, p.base_rtt);
}

TEST(Meanfield, ScenarioScalingIsExactAtBaseAndOffByDefault) {
  Scenario sc = Scenario::paper_default();
  // Off by default: scaled accessors return the raw Table 1 values.
  EXPECT_EQ(sc.meanfield_base, 0);
  EXPECT_DOUBLE_EQ(sc.meanfield_factor(), 1.0);
  EXPECT_DOUBLE_EQ(sc.scaled_bottleneck_bw_bps(), sc.bottleneck_bw_bps);
  EXPECT_EQ(sc.scaled_gateway_buffer(), sc.gateway_buffer);
  EXPECT_DOUBLE_EQ(sc.scaled_red_min_th(), sc.red_min_th);
  EXPECT_DOUBLE_EQ(sc.scaled_red_max_th(), sc.red_max_th);
  // At N == base the factor is exactly 1.0, so the scaled scenario is
  // bit-identical to the unscaled one (the identity-hash guarantee).
  sc.meanfield_base = 60;
  sc.num_clients = 60;
  EXPECT_DOUBLE_EQ(sc.meanfield_factor(), 1.0);
  EXPECT_DOUBLE_EQ(sc.scaled_bottleneck_bw_bps(), sc.bottleneck_bw_bps);
  EXPECT_EQ(sc.scaled_gateway_buffer(), sc.gateway_buffer);
  EXPECT_DOUBLE_EQ(sc.scaled_red_min_th(), sc.red_min_th);
  EXPECT_DOUBLE_EQ(sc.scaled_red_max_th(), sc.red_max_th);
  // Away from the base everything capacity-side scales proportionally.
  sc.num_clients = 600;
  EXPECT_DOUBLE_EQ(sc.meanfield_factor(), 10.0);
  EXPECT_DOUBLE_EQ(sc.scaled_bottleneck_bw_bps(), 10.0 * sc.bottleneck_bw_bps);
  EXPECT_EQ(sc.scaled_gateway_buffer(), 10u * sc.gateway_buffer);
  EXPECT_DOUBLE_EQ(sc.scaled_red_min_th(), 10.0 * sc.red_min_th);
  EXPECT_DOUBLE_EQ(sc.scaled_red_max_th(), 10.0 * sc.red_max_th);
  // Offered load and capacity scale together: utilization is invariant.
  Scenario base = Scenario::paper_default();
  base.num_clients = 60;
  EXPECT_NEAR(sc.utilization(), base.utilization(), 1e-12);
}

}  // namespace
}  // namespace burst
