#include "src/obs/profile.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace burst {
namespace {

// Burns wall time so the enclosing scope's self time is reliably nonzero
// even on coarse clocks.
void spin_for(std::chrono::microseconds d) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < d) {
  }
}

TEST(Profiler, ScopesAreNoOpsWhenUninstalled) {
  ASSERT_EQ(Profiler::current(), nullptr);
  {
    ProfileScope a(ProfilePhase::kDispatch);
    ProfileScope b(ProfilePhase::kQueue);
  }
  EXPECT_EQ(Profiler::current(), nullptr);
}

TEST(Profiler, InstallReturnsPreviousAndRestores) {
  Profiler outer, inner;
  Profiler* prev = Profiler::install(&outer);
  EXPECT_EQ(prev, nullptr);
  EXPECT_EQ(Profiler::current(), &outer);
  EXPECT_EQ(Profiler::install(&inner), &outer);
  EXPECT_EQ(Profiler::current(), &inner);
  Profiler::install(prev);
  EXPECT_EQ(Profiler::current(), nullptr);
}

TEST(Profiler, NestedScopesAttributeSelfTime) {
  Profiler prof;
  Profiler* prev = Profiler::install(&prof);
  {
    ProfileScope dispatch(ProfilePhase::kDispatch);
    spin_for(std::chrono::microseconds(500));
    {
      ProfileScope queue(ProfilePhase::kQueue);
      spin_for(std::chrono::microseconds(500));
    }
    spin_for(std::chrono::microseconds(500));
  }
  Profiler::install(prev);

  // Self-time attribution: the nested queue slice is NOT charged to
  // dispatch, and both phases saw their own spin.
  EXPECT_GE(prof.seconds(ProfilePhase::kDispatch), 900e-6);
  EXPECT_GE(prof.seconds(ProfilePhase::kQueue), 400e-6);
  EXPECT_GE(prof.total_seconds(), prof.seconds(ProfilePhase::kDispatch) +
                                      prof.seconds(ProfilePhase::kQueue));
}

TEST(Profiler, AbsorbSumsPerPhaseTotals) {
  Profiler a, b;
  Profiler* prev = Profiler::install(&a);
  {
    ProfileScope s(ProfilePhase::kTransport);
    spin_for(std::chrono::microseconds(300));
  }
  Profiler::install(&b);
  {
    ProfileScope s(ProfilePhase::kTransport);
    spin_for(std::chrono::microseconds(300));
  }
  Profiler::install(prev);

  const double ta = a.seconds(ProfilePhase::kTransport);
  const double tb = b.seconds(ProfilePhase::kTransport);
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.seconds(ProfilePhase::kTransport), ta + tb);
  EXPECT_GE(ta, 250e-6);
  EXPECT_GE(tb, 250e-6);
}

TEST(Profiler, ResetClearsTotals) {
  Profiler prof;
  Profiler* prev = Profiler::install(&prof);
  {
    ProfileScope s(ProfilePhase::kQueue);
    spin_for(std::chrono::microseconds(200));
  }
  Profiler::install(prev);
  EXPECT_GT(prof.total_seconds(), 0.0);
  prof.reset();
  EXPECT_DOUBLE_EQ(prof.total_seconds(), 0.0);
}

TEST(ProfilePhase, NamesAreStable) {
  EXPECT_EQ(to_string(ProfilePhase::kOther), "other");
  EXPECT_EQ(to_string(ProfilePhase::kDispatch), "dispatch");
  EXPECT_EQ(to_string(ProfilePhase::kTransport), "transport");
  EXPECT_EQ(to_string(ProfilePhase::kQueue), "queue");
}

}  // namespace
}  // namespace burst
