// Million-timer stress (ctest -L slow): a population of kLazy timers the
// size of a mean-field run, armed/re-armed/cancelled at random, with the
// simulation clock actually advancing. Exercises the timing wheel's
// cascade and far-list paths at scale; run under ASan in the sanitize CI
// job, where the linked-list surgery would surface use-after-free or
// leaked nodes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/timer.hpp"

namespace burst {
namespace {

TEST(TimerStressSlow, MillionLazyTimersFireExactly) {
  constexpr std::size_t kTimers = 1'000'000;
  Simulator sim;
  Random rng(2026);
  std::vector<std::uint64_t> fire_counts(kTimers, 0);
  std::vector<std::unique_ptr<Timer>> timers;
  timers.reserve(kTimers);
  std::uint64_t expected_fires = 0;

  // Every timer re-arms itself on fire, like an RTO that keeps running.
  for (std::size_t i = 0; i < kTimers; ++i) {
    auto* counter = &fire_counts[i];
    timers.push_back(std::make_unique<Timer>(
        sim, [counter] { ++*counter; }, Timer::Mode::kLazy));
  }
  // Arm the full population across a wide horizon: most sit far-future,
  // populating the wheel's coarse levels (and, at 1e6 ticks+, the far
  // list) rather than the heap.
  for (std::size_t i = 0; i < kTimers; ++i) {
    timers[i]->schedule(rng.uniform(1e-3, 300.0));
  }

  // Churn: push deadlines forward (the lazy fast path), shrink some
  // (forced re-arm), cancel a few — while time advances in slices so
  // armed events actually fire between mutations.
  Time now = 0.0;
  for (int round = 0; round < 10; ++round) {
    now += 2.0;
    sim.run(now);
    for (int k = 0; k < 200000; ++k) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(kTimers) - 1));
      const double op = rng.uniform();
      if (op < 0.70) {
        timers[idx]->schedule(rng.uniform(1e-3, 300.0));
      } else if (op < 0.85) {
        timers[idx]->schedule(rng.uniform(1e-6, 1e-3));  // likely shrink
      } else {
        timers[idx]->cancel();
      }
    }
  }

  // Freeze the population into a known state: cancel everything, then
  // give each timer exactly one final deadline inside the run window.
  for (auto& t : timers) t->cancel();
  for (std::size_t i = 0; i < kTimers; ++i) {
    fire_counts[i] = 0;
    timers[i]->schedule(rng.uniform(1e-3, 50.0));
    ++expected_fires;
  }
  sim.run(now + 400.0);

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kTimers; ++i) {
    ASSERT_EQ(fire_counts[i], 1u) << "timer " << i;
    total += fire_counts[i];
    EXPECT_FALSE(timers[i]->pending());
  }
  EXPECT_EQ(total, expected_fires);
  // The wheel must be fully drained; lazy self-disarm events may remain
  // armed, so drain the scheduler and confirm nothing fires again.
  sim.run(now + 2000.0);
  for (std::size_t i = 0; i < kTimers; ++i) {
    ASSERT_EQ(fire_counts[i], 1u);
  }
  EXPECT_EQ(sim.scheduler().wheel_size(), 0u);
}

TEST(TimerStressSlow, CancelStormLeavesSchedulerClean) {
  // Arm and hard-cancel in waves; every cancel hits a live event (Timer
  // guarantees it), so the stale counter stays zero and the scheduler
  // ends empty.
  constexpr std::size_t kTimers = 200'000;
  Simulator sim;
  Random rng(7);
  std::vector<std::unique_ptr<Timer>> timers;
  timers.reserve(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<Timer>(
        sim, [] {}, Timer::Mode::kExact));
  }
  for (int wave = 0; wave < 5; ++wave) {
    for (auto& t : timers) t->schedule(rng.uniform(1.0, 100.0));
    for (auto& t : timers) t->cancel();
    EXPECT_TRUE(sim.scheduler().empty());
  }
  EXPECT_EQ(sim.scheduler().stale_cancels(), 0u);
}

}  // namespace
}  // namespace burst
