#include "src/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/core/experiment.hpp"
#include "src/run/result_store.hpp"

namespace burst {
namespace {

TEST(Histogram, BinsOnInclusiveUpperBoundsWithOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);
  h.add(1.0);  // boundary: counts in the <= 1.0 bucket
  h.add(1.5);
  h.add(4.0);
  h.add(5.0);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(MetricsRegistry, SnapshotIsSortedByNameAndFindable) {
  MetricsRegistry reg;
  reg.add_counter("zebra.count", 3);
  reg.add_gauge("alpha.level", 0.5);
  Histogram& h = reg.histogram("mid.hist", {1.0, 2.0});
  h.add(1.5);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.points[0].name, "alpha.level");
  EXPECT_EQ(snap.points[1].name, "mid.hist");
  EXPECT_EQ(snap.points[2].name, "zebra.count");

  const MetricPoint* c = snap.find("zebra.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);

  const MetricPoint* hist = snap.find("mid.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_DOUBLE_EQ(hist->value, 1.0);  // sample count
  EXPECT_DOUBLE_EQ(hist->sum, 1.5);
  ASSERT_EQ(hist->buckets.size(), 3u);
  EXPECT_EQ(hist->buckets[1], 1u);

  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistry, HistogramRelookupReturnsSameInstance) {
  MetricsRegistry reg;
  Histogram& a = reg.histogram("q.len", {1.0, 2.0});
  Histogram& b = reg.histogram("q.len", {1.0, 2.0});
  EXPECT_EQ(&a, &b);
  a.add(0.5);
  EXPECT_EQ(b.count(), 1u);
}

// The snapshot a run produces is a pure function of the scenario: two
// identical runs yield equal (operator==) snapshots, and the counters
// agree with the top-level result fields they mirror.
TEST(MetricsExperiment, SnapshotIsDeterministicAndConsistent) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 15;
  sc.duration = 2.0;

  const ExperimentResult a = run_experiment(sc);
  const ExperimentResult b = run_experiment(sc);
  EXPECT_FALSE(a.metrics.points.empty());
  EXPECT_EQ(a.metrics, b.metrics);

  const MetricPoint* arrivals = a.metrics.find("queue.gateway.arrivals");
  ASSERT_NE(arrivals, nullptr);
  EXPECT_DOUBLE_EQ(arrivals->value, static_cast<double>(a.gw_arrivals));
  const MetricPoint* drops = a.metrics.find("queue.gateway.drops");
  ASSERT_NE(drops, nullptr);
  EXPECT_DOUBLE_EQ(drops->value, static_cast<double>(a.gw_drops));
  const MetricPoint* events = a.metrics.find("sched.events");
  ASSERT_NE(events, nullptr);
  EXPECT_DOUBLE_EQ(events->value, static_cast<double>(a.sim_events));

  // The PASTA queue-occupancy histogram saw every data arrival the queue
  // counted (its samples are taken from the bottleneck arrival tap).
  const MetricPoint* qlen =
      a.metrics.find("queue.gateway.len_at_arrival");
  ASSERT_NE(qlen, nullptr);
  EXPECT_EQ(qlen->kind, MetricKind::kHistogram);
  EXPECT_GT(qlen->value, 0.0);
}

// Schema v3: the snapshot survives the result store's JSON round trip
// bit for bit (the store keeps values serialized, so re-serialization
// must also be stable).
TEST(MetricsExperiment, SnapshotRoundTripsThroughResultJson) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  sc.duration = 2.0;
  const ExperimentResult r = run_experiment(sc);
  ASSERT_FALSE(r.metrics.points.empty());

  const std::string json = result_to_json(r);
  ExperimentResult parsed;
  ASSERT_TRUE(result_from_json(json, &parsed));
  EXPECT_EQ(parsed.metrics, r.metrics);
  EXPECT_EQ(result_to_json(parsed), json);
}

}  // namespace
}  // namespace burst
