#include "src/stats/binned_counter.hpp"

#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(BinnedCounter, CountsIntoCorrectBins) {
  BinnedCounter c(1.0);
  c.record(0.1);
  c.record(0.9);
  c.record(1.5);
  c.record(3.2);
  const auto& bins = c.bins();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0], 2u);
  EXPECT_EQ(bins[1], 1u);
  EXPECT_EQ(bins[2], 0u);
  EXPECT_EQ(bins[3], 1u);
}

TEST(BinnedCounter, WarmupEventsIgnored) {
  BinnedCounter c(1.0, /*start=*/5.0);
  c.record(4.9);  // ignored
  c.record(5.1);
  EXPECT_EQ(c.bins().size(), 1u);
  EXPECT_EQ(c.bins()[0], 1u);
}

TEST(BinnedCounter, StatsIncludeTrailingEmptyBins) {
  BinnedCounter c(1.0);
  c.record(0.5);
  // 10 bins total, one holds a count -> mean = 0.1.
  const auto rs = c.stats_until(10.0);
  EXPECT_EQ(rs.count(), 10u);
  EXPECT_NEAR(rs.mean(), 0.1, 1e-12);
}

TEST(BinnedCounter, StatsOfUniformCountsHaveZeroCov) {
  BinnedCounter c(1.0);
  for (int b = 0; b < 20; ++b) {
    for (int k = 0; k < 3; ++k) c.record(b + 0.1 * (k + 1));
  }
  const auto rs = c.stats_until(20.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.cov(), 0.0);
}

TEST(BinnedCounter, EndBoundaryExcludesPartialBin) {
  BinnedCounter c(1.0);
  c.record(0.5);
  c.record(1.5);
  // Until 1.7: only the first *complete* bin counts.
  const auto rs = c.stats_until(1.7);
  EXPECT_EQ(rs.count(), 1u);
}

TEST(BinnedCounter, PaperSpanBoundaryKeepsFinalBin) {
  // The paper's default span: (20.0 - 2.0) / 0.08 evaluates to
  // 224.999...97 in double, so a bare floor() reported 224 bins and
  // silently dropped the final one from every c.o.v. Exactly 225 complete
  // bins fit in [2, 20).
  BinnedCounter c(0.08, /*start=*/2.0);
  const auto rs = c.stats_until(20.0);
  EXPECT_EQ(rs.count(), 225u);
}

TEST(BinnedCounter, BoundaryAtExactMultipleCountsAllBins) {
  // 0.3 / 0.1 is 2.999...96 in double; the snap must still count all
  // three complete bins, and the per-bin data must land where expected.
  BinnedCounter c(0.1);
  c.record(0.05);
  c.record(0.25);
  const auto rs = c.stats_until(0.3);
  EXPECT_EQ(rs.count(), 3u);
  EXPECT_NEAR(rs.mean(), 2.0 / 3.0, 1e-12);
}

TEST(BinnedCounter, BoundarySnapDoesNotSwallowRealPartialBins) {
  // A genuinely partial final bin (well away from any boundary) is still
  // excluded after the snap fix.
  BinnedCounter c(0.08, 2.0);
  const auto rs = c.stats_until(19.96);  // 224.5 bin-widths past start
  EXPECT_EQ(rs.count(), 224u);
}

TEST(BinnedCounter, CompleteBinsDropsPartialFinalBin) {
  BinnedCounter c(1.0);
  c.record(0.5);
  c.record(1.5);
  c.record(2.5);
  ASSERT_EQ(c.bins().size(), 3u);  // raw view includes the partial bin
  // A horizon of 2.7 only covers two complete bins.
  const auto xs = c.complete_bins(2.7);
  ASSERT_EQ(xs.size(), 2u);
  EXPECT_EQ(xs[0], 1u);
  EXPECT_EQ(xs[1], 1u);
}

TEST(BinnedCounter, CompleteBinsPadsTrailingZeros) {
  BinnedCounter c(1.0);
  c.record(0.5);  // only the first bin was ever touched
  const auto xs = c.complete_bins(5.0);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_EQ(xs[0], 1u);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_EQ(xs[i], 0u);
}

TEST(BinnedCounter, CompleteBinsMatchesStatsUntilBoundary) {
  // complete_bins and stats_until must agree on the paper's snapped
  // boundary: 225 bins in [2, 20) at width 0.08.
  BinnedCounter c(0.08, /*start=*/2.0);
  for (int i = 0; i < 100; ++i) c.record(2.0 + 0.17 * i);
  const auto xs = c.complete_bins(20.0);
  EXPECT_EQ(xs.size(), 225u);
  RunningStats rs;
  for (const auto x : xs) rs.add(static_cast<double>(x));
  const auto ref = c.stats_until(20.0);
  EXPECT_EQ(rs.count(), ref.count());
  EXPECT_DOUBLE_EQ(rs.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(rs.variance(), ref.variance());
}

TEST(BinnedCounter, BinWidthAccessor) {
  BinnedCounter c(0.08);
  EXPECT_DOUBLE_EQ(c.bin_width(), 0.08);
}

TEST(BinnedCounter, PaperBinWidthPoissonCov) {
  // End-to-end: simulated Poisson arrivals binned at the paper's RTT width
  // reproduce the analytic c.o.v.
  Simulator sim(3);
  BinnedCounter c(0.08);
  Random rng = sim.rng().fork();
  Time t = 0.0;
  const double rate = 2000.0;  // 20 clients x 100 pps
  while (t < 400.0) {
    t += rng.exponential(1.0 / rate);
    c.record(t);
  }
  const double measured = c.stats_until(400.0).cov();
  const double analytic = poisson_aggregate_cov(20, 100.0, 0.08);
  EXPECT_NEAR(measured, analytic, 0.15 * analytic);
}

}  // namespace
}  // namespace burst
