#include "src/net/red_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace burst {
namespace {

Packet pkt(std::int64_t seq = 0) {
  Packet p;
  p.seq = seq;
  p.size_bytes = 1040;
  return p;
}

RedConfig small_config() {
  RedConfig cfg;
  cfg.min_th = 5;
  cfg.max_th = 15;
  cfg.max_p = 0.1;
  cfg.weight = 0.002;
  cfg.capacity = 50;
  return cfg;
}

TEST(RedQueue, NoDropsWhileAverageBelowMinTh) {
  RedQueue q(small_config(), Random(1));
  // With w=0.002 the average climbs very slowly; a short burst stays
  // below min_th and nothing is dropped.
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(q.enqueue(pkt(i), 0.0));
  EXPECT_EQ(q.stats().drops, 0u);
  EXPECT_LT(q.avg(), 5.0);
}

TEST(RedQueue, AverageTracksPersistentQueue) {
  RedConfig cfg = small_config();
  cfg.min_th = 100;  // disable early drops: this test checks EWMA tracking
  cfg.max_th = 200;
  RedQueue q(cfg, Random(1));
  // Hold the instantaneous queue at 10 by balancing arrivals/departures.
  for (int i = 0; i < 10; ++i) q.enqueue(pkt(), 0.0);
  for (int i = 0; i < 5000; ++i) {
    q.enqueue(pkt(), 0.0);
    q.dequeue(0.0);
  }
  EXPECT_NEAR(q.avg(), 10.0, 1.5);
}

TEST(RedQueue, DropsEverythingAboveMaxTh) {
  RedConfig cfg = small_config();
  RedQueue q(cfg, Random(1));
  // Saturate the EWMA well above max_th.
  for (int i = 0; i < 40; ++i) q.enqueue(pkt(), 0.0);
  for (int i = 0; i < 20000 && q.avg() < cfg.max_th; ++i) {
    q.enqueue(pkt(), 0.0);
    q.dequeue(0.0);
    q.enqueue(pkt(), 0.0);
  }
  ASSERT_GE(q.avg(), cfg.max_th);
  const auto drops_before = q.stats().drops;
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(q.enqueue(pkt(), 0.0));
  EXPECT_EQ(q.stats().drops, drops_before + 10);
  EXPECT_GT(q.stats().early_drops, 0u);
}

TEST(RedQueue, PhysicalCapacityStillEnforced) {
  RedConfig cfg = small_config();
  cfg.capacity = 8;
  cfg.min_th = 100;  // never early-drop
  cfg.max_th = 200;
  RedQueue q(cfg, Random(1));
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.enqueue(pkt(), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(), 0.0));
  EXPECT_EQ(q.stats().forced_drops, 1u);
}

// Property: with the average pinned inside [min_th, max_th), measured drop
// frequency grows with the average queue length.
class RedDropProbTest : public ::testing::TestWithParam<int> {};

TEST_P(RedDropProbTest, DropRateIncreasesWithOccupancy) {
  const int hold = GetParam();  // target instantaneous occupancy
  RedConfig cfg = small_config();
  cfg.capacity = 1000;
  RedQueue q(cfg, Random(42));
  for (int i = 0; i < hold; ++i) q.enqueue(pkt(), 0.0);
  // Warm the EWMA to ~hold.
  for (int i = 0; i < 5000; ++i) {
    if (q.enqueue(pkt(), 0.0)) q.dequeue(0.0);
  }
  std::uint64_t drops0 = q.stats().drops;
  std::uint64_t arrivals0 = q.stats().arrivals;
  for (int i = 0; i < 20000; ++i) {
    if (q.enqueue(pkt(), 0.0)) q.dequeue(0.0);
  }
  const double rate =
      static_cast<double>(q.stats().drops - drops0) /
      static_cast<double>(q.stats().arrivals - arrivals0);
  // pb at avg=hold is max_p*(hold-5)/10; the count mechanism makes the
  // realized rate higher; just require monotone bands.
  const double pb = cfg.max_p * (hold - cfg.min_th) / (cfg.max_th - cfg.min_th);
  EXPECT_GT(rate, 0.5 * pb);
  EXPECT_LT(rate, 8.0 * pb + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Occupancies, RedDropProbTest,
                         ::testing::Values(7, 9, 11, 13));

TEST(RedQueue, DropProbabilityMatchesHandComputedSequence) {
  // Floyd–Jacobson, pa = pb / (1 - count * pb) with `count` the packets
  // enqueued since the last drop (arriving packet excluded). With
  // min_th=5, max_th=15, max_p=0.1 and avg=10: pb = 0.1 * 5/10 = 0.05.
  RedQueue q(small_config(), Random(1));
  EXPECT_NEAR(q.drop_probability(10.0, 0), 0.05, 1e-15);        // = pb
  EXPECT_NEAR(q.drop_probability(10.0, 1), 0.05 / 0.95, 1e-15); // 1/19
  EXPECT_NEAR(q.drop_probability(10.0, 10), 0.1, 1e-15);        // pb/(1/2)
  EXPECT_NEAR(q.drop_probability(10.0, 18), 0.5, 1e-12);        // pb/(1/10)
  // At count = 1/pb - 1 = 19 the drop becomes certain (clamped at 1).
  EXPECT_DOUBLE_EQ(q.drop_probability(10.0, 19), 1.0);
  EXPECT_DOUBLE_EQ(q.drop_probability(10.0, 20), 1.0);  // denom <= 0
  // Fresh phase (count = -1) clamps to count = 0.
  EXPECT_NEAR(q.drop_probability(10.0, -1), 0.05, 1e-15);
  // pb endpoints: 0 at min_th, max_p at max_th.
  EXPECT_DOUBLE_EQ(q.drop_probability(5.0, 0), 0.0);
  EXPECT_NEAR(q.drop_probability(15.0, 0), 0.1, 1e-15);
}

TEST(RedQueue, InterDropGapBoundedByInversePb) {
  // Hold avg pinned at 10 with weight=1 (avg == instantaneous size on
  // every arrival) and max_p=1.0, so pb = 0.5 at occupancy 10. Then the
  // uniformized sequence is hand-computable: after a drop the first
  // candidate sees pa = 0.5 and the second pa = 0.5/(1-0.5) = 1 — a
  // certain drop. Gaps between early drops are therefore uniform on
  // {1, 2}: never two consecutive accepts, yet accepts do happen (the
  // pre-fix off-by-one made the *first* candidate certain, dropping 100%).
  RedConfig cfg = small_config();
  cfg.weight = 1.0;
  cfg.max_p = 1.0;
  cfg.capacity = 1000;
  RedQueue q(cfg, Random(7));
  while (q.len() < 10) q.enqueue(pkt(), 0.0);
  const std::uint64_t early0 = q.stats().early_drops;
  int accepted = 0, run_len = 0, max_run = 0;
  const int kArrivals = 2000;
  for (int i = 0; i < kArrivals; ++i) {
    if (q.enqueue(pkt(), 0.0)) {
      q.dequeue(0.0);  // hold occupancy at 10
      ++accepted;
      max_run = std::max(max_run, ++run_len);
    } else {
      run_len = 0;
    }
  }
  EXPECT_GT(accepted, 0);     // old off-by-one: everything dropped
  EXPECT_EQ(max_run, 1);      // pa hits 1 on the second candidate
  // Gap uniform on {1,2} -> acceptance rate 1/3; allow generous slack.
  EXPECT_NEAR(static_cast<double>(accepted) / kArrivals, 1.0 / 3.0, 0.05);
  EXPECT_GT(q.stats().early_drops, early0);
}

TEST(RedQueue, IdleDecayReducesAverage) {
  RedConfig cfg = small_config();
  cfg.mean_pkt_tx_time = 0.001;
  cfg.min_th = 100;  // disable drops: this test checks idle decay only
  cfg.max_th = 200;
  RedQueue q(cfg, Random(1));
  for (int i = 0; i < 20; ++i) q.enqueue(pkt(), 0.0);
  for (int i = 0; i < 3000; ++i) {
    q.enqueue(pkt(), static_cast<Time>(i) * 1e-4);
    q.dequeue(static_cast<Time>(i) * 1e-4);
  }
  const double avg_busy = q.avg();
  ASSERT_GT(avg_busy, 2.0);
  // Drain and go idle for a long time.
  while (q.dequeue(1.0).has_value()) {
  }
  q.enqueue(pkt(), 10.0);  // arrival after 9 idle seconds
  EXPECT_LT(q.avg(), 0.1 * avg_busy);
}

TEST(RedQueue, WakeFromIdleAppliesPureDecay) {
  // Floyd–Jacobson wake-from-idle is avg <- (1-w)^m * avg and nothing
  // else; the regular EWMA step must NOT also run (it would sample q = 0
  // and shave an extra factor (1-w) off the average on every wake). With
  // a large weight the whole trajectory is closed-form checkable.
  RedConfig cfg = small_config();
  cfg.weight = 0.25;
  cfg.mean_pkt_tx_time = 0.001;
  cfg.min_th = 1e6;  // never drop: this test checks the average only
  cfg.max_th = 2e6;
  cfg.capacity = 1000;
  RedQueue q(cfg, Random(1));
  // First arrival wakes from the initial idle state at m = 0: no-op.
  ASSERT_TRUE(q.enqueue(pkt(), 0.0));
  EXPECT_DOUBLE_EQ(q.avg(), 0.0);
  // Busy arrivals: avg <- (1-w)·avg + w·q with q the pre-enqueue size.
  double expected = 0.0;
  for (int size = 1; size <= 4; ++size) {
    ASSERT_TRUE(q.enqueue(pkt(), 0.0));
    expected = (1.0 - cfg.weight) * expected + cfg.weight * size;
  }
  ASSERT_DOUBLE_EQ(q.avg(), expected);
  // Drain to empty at t = 0.01; the queue books idle_since there.
  while (q.dequeue(0.01).has_value()) {
  }
  // Wake at t = 0.015: m = idle/mean_tx = 5 "virtual departures".
  const Time wake = 0.015;
  ASSERT_TRUE(q.enqueue(pkt(), wake));
  const double m = (wake - 0.01) / cfg.mean_pkt_tx_time;
  const double decayed = expected * std::pow(1.0 - cfg.weight, m);
  EXPECT_DOUBLE_EQ(q.avg(), decayed);
  // The pre-fix code stacked the EWMA step (sampling q = 0) on top:
  EXPECT_GT(q.avg(), (1.0 - cfg.weight) * decayed * 1.01);
}

TEST(RedQueue, WakeWithoutIdleEstimateFallsBackToEwma) {
  // mean_pkt_tx_time == 0 disables idle-time compensation; the wake
  // arrival then takes the plain EWMA step with the (empty) queue.
  RedConfig cfg = small_config();
  cfg.weight = 0.25;
  cfg.mean_pkt_tx_time = 0.0;
  cfg.min_th = 1e6;
  cfg.max_th = 2e6;
  RedQueue q(cfg, Random(1));
  for (int i = 0; i < 5; ++i) q.enqueue(pkt(), 0.0);
  const double avg_busy = q.avg();
  ASSERT_GT(avg_busy, 0.0);
  while (q.dequeue(0.0).has_value()) {
  }
  q.enqueue(pkt(), 1.0);
  EXPECT_DOUBLE_EQ(q.avg(), (1.0 - cfg.weight) * avg_busy);
}

TEST(RedQueue, FifoOrderPreserved) {
  RedQueue q(small_config(), Random(1));
  for (int i = 0; i < 4; ++i) q.enqueue(pkt(i), 0.0);
  for (int i = 0; i < 4; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(RedQueue, ConfigAccessor) {
  RedConfig cfg = small_config();
  RedQueue q(cfg, Random(1));
  EXPECT_DOUBLE_EQ(q.config().min_th, 5.0);
  EXPECT_DOUBLE_EQ(q.config().max_th, 15.0);
}

}  // namespace
}  // namespace burst
