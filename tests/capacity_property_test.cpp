// Property sweeps over bandwidths and loads: the simulator must obey the
// basic conservation laws of a work-conserving FIFO system.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace burst {
namespace {

class UdpCapacityLaw
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(UdpCapacityLaw, DeliveredIsMinOfOfferedAndCapacity) {
  const auto [bw_mbps, clients] = GetParam();
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kUdp;
  sc.bottleneck_bw_bps = bw_mbps * 1e6;
  sc.num_clients = clients;
  sc.duration = 10.0;
  const auto r = run_experiment(sc);
  const double offered = sc.offered_pps() * sc.duration;
  const double capacity = sc.bottleneck_pps() * sc.duration;
  const double expected = std::min(offered, capacity);
  EXPECT_NEAR(static_cast<double>(r.delivered), expected, 0.06 * expected)
      << "bw=" << bw_mbps << " clients=" << clients;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UdpCapacityLaw,
    ::testing::Combine(::testing::Values(8.0, 16.0, 32.0, 64.0),
                       ::testing::Values(10, 30, 50)));

class TcpGoodputLaw : public ::testing::TestWithParam<Transport> {};

TEST_P(TcpGoodputLaw, GoodputBoundedAndReasonable) {
  Scenario sc = Scenario::paper_default();
  sc.transport = GetParam();
  sc.num_clients = 50;
  sc.duration = 10.0;
  const auto r = run_experiment(sc);
  const double capacity = sc.bottleneck_pps() * sc.duration;
  // Hard bound: the bottleneck can't deliver more than its capacity.
  EXPECT_LE(static_cast<double>(r.delivered), 1.01 * capacity);
  // Efficiency floor: any sane TCP keeps the saturated pipe > 75% busy.
  EXPECT_GE(static_cast<double>(r.delivered), 0.75 * capacity);
}

INSTANTIATE_TEST_SUITE_P(AllTcp, TcpGoodputLaw,
                         ::testing::Values(Transport::kTahoe, Transport::kReno,
                                           Transport::kNewReno,
                                           Transport::kVegas,
                                           Transport::kSack));

class LossMonotoneInLoad : public ::testing::TestWithParam<Transport> {};

TEST_P(LossMonotoneInLoad, MoreClientsNeverLessCongestion) {
  // Weak monotonicity of gateway drops as offered load doubles.
  Scenario lo = Scenario::paper_default();
  lo.transport = GetParam();
  lo.num_clients = 30;
  lo.duration = 8.0;
  Scenario hi = lo;
  hi.num_clients = 60;
  const auto rl = run_experiment(lo);
  const auto rh = run_experiment(hi);
  EXPECT_GE(rh.gw_drops, rl.gw_drops);
  EXPECT_GE(rh.delay.mean(), rl.delay.mean());
}

INSTANTIATE_TEST_SUITE_P(AllTransports, LossMonotoneInLoad,
                         ::testing::Values(Transport::kUdp, Transport::kReno,
                                           Transport::kVegas));

}  // namespace
}  // namespace burst
