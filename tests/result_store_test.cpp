#include "src/run/result_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace burst {
namespace {

namespace fs = std::filesystem;

ExperimentResult sample_result() {
  ExperimentResult r;
  r.cov = 0.3141592653589793;
  r.poisson_cov = 1.0 / 3.0;
  r.mean_per_bin = 309.66666666666663;
  r.app_generated = 16211;
  r.delivered = 8487;
  r.gw_arrivals = 8989;
  r.gw_drops = 234;
  r.loss_pct = 2.6031816664812548;
  r.timeouts = 52;
  r.fast_retransmits = 81;
  r.dupacks = 1234;
  r.retransmits = 140;
  r.data_pkts_sent = 9000;
  r.timeout_dupack_ratio = 52.0 / 1234.0;
  r.fairness = 0.98765432109876543;
  r.routing_errors = 0;
  r.sim_events = 368516;
  r.peak_pending = 73;
  for (double d : {0.081, 0.0912, 0.1203, 0.0805}) r.delay.add(d);
  TraceSeries t("client 3");
  t.record(0.1, 1.0);
  t.record(0.2, 2.0);
  t.record(0.30000000000000004, 4.0);
  r.cwnd_traces.push_back(t);
  return r;
}

void expect_bit_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.cov, b.cov);
  EXPECT_EQ(a.poisson_cov, b.poisson_cov);
  EXPECT_EQ(a.mean_per_bin, b.mean_per_bin);
  EXPECT_EQ(a.app_generated, b.app_generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.gw_arrivals, b.gw_arrivals);
  EXPECT_EQ(a.gw_drops, b.gw_drops);
  EXPECT_EQ(a.loss_pct, b.loss_pct);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.fast_retransmits, b.fast_retransmits);
  EXPECT_EQ(a.dupacks, b.dupacks);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.data_pkts_sent, b.data_pkts_sent);
  EXPECT_EQ(a.timeout_dupack_ratio, b.timeout_dupack_ratio);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.routing_errors, b.routing_errors);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.peak_pending, b.peak_pending);
  EXPECT_EQ(a.delay.count(), b.delay.count());
  EXPECT_EQ(a.delay.mean(), b.delay.mean());
  EXPECT_EQ(a.delay.m2(), b.delay.m2());
  EXPECT_EQ(a.delay.min(), b.delay.min());
  EXPECT_EQ(a.delay.max(), b.delay.max());
  ASSERT_EQ(a.cwnd_traces.size(), b.cwnd_traces.size());
  for (std::size_t i = 0; i < a.cwnd_traces.size(); ++i) {
    EXPECT_EQ(a.cwnd_traces[i].name(), b.cwnd_traces[i].name());
    EXPECT_EQ(a.cwnd_traces[i].points(), b.cwnd_traces[i].points());
  }
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(ResultJson, RoundTripsBitIdentically) {
  const ExperimentResult r = sample_result();
  const std::string json = result_to_json(r);
  ExperimentResult back;
  ASSERT_TRUE(result_from_json(json, &back));
  expect_bit_identical(r, back);
  // And re-serialization is a fixed point.
  EXPECT_EQ(result_to_json(back), json);
}

TEST(ResultJson, RejectsEveryTruncation) {
  const std::string json = result_to_json(sample_result());
  ExperimentResult out;
  // Chop the tail off at a spread of positions: none may parse.
  for (std::size_t keep = 0; keep < json.size(); keep += 7) {
    EXPECT_FALSE(result_from_json(json.substr(0, keep), &out))
        << "prefix of length " << keep << " unexpectedly parsed";
  }
  EXPECT_FALSE(result_from_json(json + "x", &out)) << "trailing garbage";
  EXPECT_FALSE(result_from_json("", &out));
  EXPECT_FALSE(result_from_json("not json at all", &out));
}

TEST(ResultStore, PutGetAndReopen) {
  const std::string dir = fresh_dir("store_roundtrip");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  const ExperimentResult r = sample_result();
  {
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.get(key).has_value());
    store.put(key, r);
    EXPECT_TRUE(store.contains(key));
    ASSERT_TRUE(store.flush());
    // The entry landed in the segment its key hashes to.
    EXPECT_TRUE(fs::exists(store.segment_path(key)));
  }
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.skipped_entries(), 0u);
  const auto got = reopened.get(key);
  ASSERT_TRUE(got.has_value());
  expect_bit_identical(r, *got);
}

TEST(ResultStore, DestructorFlushes) {
  const std::string dir = fresh_dir("store_dtor");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  { ResultStore store(dir); store.put(key, sample_result()); }
  ResultStore reopened(dir);
  EXPECT_TRUE(reopened.contains(key));
}

TEST(ResultStore, SkipsCorruptAndTruncatedLines) {
  const std::string dir = fresh_dir("store_corrupt");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  std::string good_line;
  std::string segment;
  {
    ResultStore store(dir);
    store.put(key, sample_result());
    ASSERT_TRUE(store.flush());
    segment = store.segment_path(key);
    std::ifstream in(segment);
    std::getline(in, good_line);
  }
  // Rewrite the segment: garbage, a truncated copy of the good line, an
  // empty line, then the good line itself.
  {
    std::ofstream out(segment, std::ios::trunc);
    out << "!!! not a json line\n"
        << good_line.substr(0, good_line.size() / 2) << "\n"
        << "\n"
        << good_line << "\n";
  }
  ResultStore store(dir);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.skipped_entries(), 2u);  // blank lines are not entries
  const auto got = store.get(key);
  ASSERT_TRUE(got.has_value());
  expect_bit_identical(sample_result(), *got);
}

TEST(ResultStore, IgnoresOtherSchemaVersions) {
  const std::string dir = fresh_dir("store_schema");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  std::string good_line;
  std::string segment;
  {
    ResultStore store(dir);
    store.put(key, sample_result());
    ASSERT_TRUE(store.flush());
    segment = store.segment_path(key);
    std::ifstream in(segment);
    std::getline(in, good_line);
  }
  // Bump the schema number inside the stored line.
  const std::string needle =
      "\"schema\":" + std::to_string(kResultSchemaVersion);
  const std::size_t at = good_line.find(needle);
  ASSERT_NE(at, std::string::npos);
  std::string stale = good_line;
  stale.replace(at, needle.size(),
                "\"schema\":" + std::to_string(kResultSchemaVersion + 1));
  {
    std::ofstream out(segment, std::ios::trunc);
    out << stale << "\n";
  }
  ResultStore store(dir);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.skipped_entries(), 1u);
  EXPECT_FALSE(store.get(key).has_value());  // never serves stale schema
}

TEST(ResultStore, LoadsPreShardingLegacyFile) {
  const std::string dir = fresh_dir("store_legacy");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  std::string good_line;
  {
    ResultStore store(dir);
    store.put(key, sample_result());
    ASSERT_TRUE(store.flush());
    std::ifstream in(store.segment_path(key));
    std::getline(in, good_line);
  }
  // Simulate a cache written before sharding: the same envelope line in
  // results.jsonl, no segment files.
  const std::string legacy = fresh_dir("store_legacy2");
  fs::create_directories(legacy);
  {
    std::ofstream out(legacy + "/results.jsonl");
    out << good_line << "\n";
  }
  ResultStore store(legacy);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.skipped_entries(), 0u);
  const auto got = store.get(key);
  ASSERT_TRUE(got.has_value());
  expect_bit_identical(sample_result(), *got);
}

TEST(ResultStore, OverwriteReplacesEntry) {
  const std::string dir = fresh_dir("store_overwrite");
  const ScenarioKey key = scenario_key(Scenario::paper_default());
  ResultStore store(dir);
  ExperimentResult r = sample_result();
  store.put(key, r);
  r.delivered = 42;
  store.put(key, r);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(key)->delivered, 42u);
}

}  // namespace
}  // namespace burst
