// Campaign determinism and cache robustness: the same campaign must
// produce bit-identical metrics with 1 thread, N threads, and from a
// warm cache; a damaged cache must fall back to re-simulation.
#include "src/run/campaign.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/run/result_store.hpp"

namespace burst {
namespace {

namespace fs = std::filesystem;

Scenario quick_base() {
  Scenario s = Scenario::paper_default();
  s.duration = 3.0;
  s.warmup = 1.0;
  return s;
}

std::vector<SweepConfig> two_configs() {
  return {{"Reno", [](Scenario& s) { s.transport = Transport::kReno; }},
          {"Vegas", [](Scenario& s) { s.transport = Transport::kVegas; }}};
}

CampaignSweep quick_sweep(const std::string& name) {
  CampaignSweep sw;
  sw.name = name;
  sw.metric_name = "c.o.v.";
  sw.base = quick_base();
  sw.client_counts = {6, 12};
  sw.configs = two_configs();
  sw.metric = [](const ExperimentResult& r) { return r.cov; };
  return sw;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

void expect_identical_series(const std::vector<SweepSeries>& a,
                             const std::vector<SweepSeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].points.size(), b[s].points.size());
    EXPECT_EQ(a[s].name, b[s].name);
    for (std::size_t p = 0; p < a[s].points.size(); ++p) {
      const ExperimentResult& ra = a[s].points[p].result;
      const ExperimentResult& rb = b[s].points[p].result;
      EXPECT_EQ(a[s].points[p].num_clients, b[s].points[p].num_clients);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(ra.cov, rb.cov);
      EXPECT_EQ(ra.delivered, rb.delivered);
      EXPECT_EQ(ra.loss_pct, rb.loss_pct);
      EXPECT_EQ(ra.timeouts, rb.timeouts);
      EXPECT_EQ(ra.dupacks, rb.dupacks);
      EXPECT_EQ(ra.fairness, rb.fairness);
      EXPECT_EQ(ra.delay.mean(), rb.delay.mean());
      EXPECT_EQ(ra.delay.count(), rb.delay.count());
    }
  }
}

TEST(Campaign, ThreadCountAndWarmCacheAreBitIdentical) {
  const std::string cache = fresh_dir("campaign_det_cache");
  const std::vector<CampaignSweep> sweeps{quick_sweep("det")};

  CampaignOptions serial;
  serial.threads = 1;

  CampaignOptions parallel;
  parallel.threads = 4;
  parallel.cache_dir = cache;  // cold: populates the store

  CampaignOptions warm;
  warm.threads = 4;
  warm.cache_dir = cache;  // warm: everything from the store

  const auto a = run_campaign(sweeps, serial);
  const auto b = run_campaign(sweeps, parallel);
  const auto c = run_campaign(sweeps, warm);

  EXPECT_EQ(a.stats.simulated, a.stats.unique);
  EXPECT_EQ(b.stats.simulated, b.stats.unique);
  EXPECT_EQ(c.stats.simulated, 0u);
  EXPECT_EQ(c.stats.cache_hits, c.stats.unique);

  expect_identical_series(a.sweeps[0].second, b.sweeps[0].second);
  expect_identical_series(a.sweeps[0].second, c.sweeps[0].second);
}

TEST(Campaign, MatchesSweepClientsExactly) {
  // The campaign path and the classic sweep_clients path must assign the
  // same derived seeds and therefore the same numbers.
  const Scenario base = quick_base();
  const std::vector<int> ns{6, 12};
  const auto direct = sweep_clients(base, ns, two_configs());
  const auto campaign = run_campaign({quick_sweep("match")}, {});
  expect_identical_series(direct, campaign.sweeps[0].second);
}

TEST(Campaign, DeduplicatesAcrossSweeps) {
  // Two figures over the same base/configs/counts (the Fig 3/4/13
  // situation) must share every simulation.
  std::vector<CampaignSweep> sweeps{quick_sweep("figA"), quick_sweep("figB")};
  sweeps[1].metric = [](const ExperimentResult& r) { return r.loss_pct; };
  const auto out = run_campaign(sweeps, {});
  EXPECT_EQ(out.stats.planned, 8u);
  EXPECT_EQ(out.stats.unique, 4u);
  EXPECT_EQ(out.stats.simulated, 4u);
  expect_identical_series(out.sweeps[0].second, out.sweeps[1].second);
}

TEST(Campaign, NoCacheOptionBypassesTheStore) {
  const std::string cache = fresh_dir("campaign_nocache");
  std::vector<CampaignSweep> sweeps{quick_sweep("nocache")};
  CampaignOptions opts;
  opts.cache_dir = cache;
  opts.use_cache = false;
  const auto out = run_campaign(sweeps, opts);
  EXPECT_EQ(out.stats.cache_hits, 0u);
  EXPECT_EQ(out.stats.simulated, out.stats.unique);
  EXPECT_FALSE(fs::exists(cache));  // store never opened, nothing written
}

TEST(Campaign, CorruptedCacheFallsBackToSimulation) {
  const std::string cache = fresh_dir("campaign_corrupt");
  const std::vector<CampaignSweep> sweeps{quick_sweep("corrupt")};
  CampaignOptions opts;
  opts.cache_dir = cache;
  const auto cold = run_campaign(sweeps, opts);
  EXPECT_EQ(cold.stats.simulated, cold.stats.unique);

  // Truncate every stored line halfway: all entries become unreadable.
  std::size_t truncated = 0;
  for (const auto& entry : fs::directory_iterator(cache)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) != 0) continue;
    std::vector<std::string> lines;
    {
      std::ifstream in(entry.path());
      for (std::string l; std::getline(in, l);) lines.push_back(l);
    }
    std::ofstream out(entry.path(), std::ios::trunc);
    for (const auto& l : lines) {
      out << l.substr(0, l.size() / 2) << "\n";
      ++truncated;
    }
  }
  ASSERT_GT(truncated, 0u);

  const auto rerun = run_campaign(sweeps, opts);
  EXPECT_EQ(rerun.stats.cache_hits, 0u);
  EXPECT_EQ(rerun.stats.simulated, rerun.stats.unique);
  EXPECT_EQ(rerun.stats.store_skipped, rerun.stats.unique);
  // Re-simulation reproduces the cold numbers exactly (never stale junk).
  expect_identical_series(cold.sweeps[0].second, rerun.sweeps[0].second);

  // And the store healed: a third run is all hits again.
  const auto healed = run_campaign(sweeps, opts);
  EXPECT_EQ(healed.stats.cache_hits, healed.stats.unique);
  EXPECT_EQ(healed.stats.simulated, 0u);
}

TEST(Campaign, WritesArtifacts) {
  const std::string out_dir = fresh_dir("campaign_artifacts");
  std::vector<CampaignSweep> sweeps{quick_sweep("figX")};
  CampaignOptions opts;
  opts.artifact_dir = out_dir;
  const auto out = run_campaign(sweeps, opts);
  EXPECT_GT(out.stats.wall_s, 0.0);
  EXPECT_TRUE(fs::exists(out_dir + "/figX.csv"));
  ASSERT_TRUE(fs::exists(out_dir + "/manifest.json"));

  std::ifstream mf(out_dir + "/manifest.json");
  std::string manifest((std::istreambuf_iterator<char>(mf)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(manifest.find("\"result_schema\": " +
                          std::to_string(kResultSchemaVersion)),
            std::string::npos);
  EXPECT_NE(manifest.find("\"name\": \"figX\""), std::string::npos);
  EXPECT_NE(manifest.find("\"seeds\": ["), std::string::npos);
  EXPECT_NE(manifest.find("\"cache_hits\": 0"), std::string::npos);
  // The recorded seeds are the derived ones, not the base seed.
  EXPECT_NE(
      manifest.find(std::to_string(
          campaign_point_seed(quick_base(), "Reno", 6))),
      std::string::npos);
}

TEST(Campaign, PaperFigureCampaignShape) {
  const auto sweeps = paper_figure_campaign(Scenario::paper_default());
  ASSERT_EQ(sweeps.size(), 4u);
  EXPECT_EQ(sweeps[0].name, "fig02_cov");
  EXPECT_EQ(sweeps[0].configs.size(), 6u);   // includes UDP
  EXPECT_EQ(sweeps[1].configs.size(), 5u);   // no UDP
  EXPECT_EQ(sweeps[1].client_counts, sweeps[3].client_counts);

  // Figs 3/4/13 plan identical scenarios (same configs, counts, seeds),
  // so the campaign collapses them to one simulation each.
  auto point_key = [](const CampaignSweep& sw, std::size_t c, std::size_t p) {
    Scenario sc = sw.base;
    sc.num_clients = sw.client_counts[p];
    sw.configs[c].apply(sc);
    sc.seed = campaign_point_seed(sw.base, sw.configs[c].name,
                                  sw.client_counts[p]);
    return scenario_key(sc);
  };
  for (std::size_t c = 0; c < sweeps[1].configs.size(); ++c) {
    for (std::size_t p = 0; p < sweeps[1].client_counts.size(); ++p) {
      EXPECT_EQ(point_key(sweeps[1], c, p), point_key(sweeps[2], c, p));
      EXPECT_EQ(point_key(sweeps[1], c, p), point_key(sweeps[3], c, p));
    }
  }
}

}  // namespace
}  // namespace burst
