#include "src/net/flow_monitor.hpp"

#include <gtest/gtest.h>

#include "src/net/drop_tail_queue.hpp"

namespace burst {
namespace {

Packet data(FlowId flow, std::int64_t seq = 0) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = 1040;
  return p;
}

Packet ack(FlowId flow) {
  Packet p;
  p.flow = flow;
  p.type = PacketType::kAck;
  p.size_bytes = 40;
  return p;
}

TEST(FlowMonitor, CountsPerFlowArrivals) {
  DropTailQueue q(100);
  FlowMonitor m(q);
  q.enqueue(data(1), 0.0);
  q.enqueue(data(1), 0.0);
  q.enqueue(data(2), 0.0);
  ASSERT_EQ(m.flows_seen(), 2u);
  EXPECT_EQ(m.flow(1).arrivals, 2u);
  EXPECT_EQ(m.flow(2).arrivals, 1u);
  EXPECT_EQ(m.flow(1).drops, 0u);
  // The dense table extends to the highest id observed; flow 0 was never
  // seen, so its entry (and any out-of-range lookup) reads as zeros.
  EXPECT_EQ(m.flow_table().size(), 3u);
  EXPECT_EQ(m.flow(0).arrivals, 0u);
  EXPECT_EQ(m.flow(999).arrivals, 0u);
}

TEST(FlowMonitor, ReserveFlowsPresizesWithoutMarkingSeen) {
  DropTailQueue q(100);
  FlowMonitor m(q);
  m.reserve_flows(64);
  EXPECT_EQ(m.flow_table().size(), 64u);
  EXPECT_EQ(m.flows_seen(), 0u);
  q.enqueue(data(5), 0.0);
  EXPECT_EQ(m.flows_seen(), 1u);
  EXPECT_EQ(m.flow(5).arrivals, 1u);
}

TEST(FlowMonitor, IgnoresAcks) {
  DropTailQueue q(100);
  FlowMonitor m(q);
  q.enqueue(ack(1), 0.0);
  EXPECT_EQ(m.flows_seen(), 0u);
  EXPECT_EQ(m.queue_at_arrival().count(), 0u);
}

TEST(FlowMonitor, QueueAtArrivalSampler) {
  DropTailQueue q(100);
  FlowMonitor m(q);
  q.enqueue(data(1), 0.0);  // sees 0 buffered
  q.enqueue(data(1), 0.0);  // sees 1
  q.enqueue(data(1), 0.0);  // sees 2
  EXPECT_DOUBLE_EQ(m.queue_at_arrival().mean(), 1.0);
  EXPECT_EQ(m.queue_at_arrival().count(), 3u);
}

TEST(FlowMonitor, PerFlowDrops) {
  DropTailQueue q(1);
  FlowMonitor m(q);
  q.enqueue(data(1), 0.0);
  q.enqueue(data(2), 0.0);  // dropped (full)
  q.enqueue(data(2), 0.0);  // dropped
  EXPECT_EQ(m.flow(2).drops, 2u);
  EXPECT_EQ(m.flow(1).drops, 0u);
}

TEST(FlowMonitor, DropEventClustering) {
  DropTailQueue q(1);
  FlowMonitor m(q, /*event_gap=*/0.5);
  q.enqueue(data(0), 0.0);  // fills the buffer
  // Event 1 at t~1: flows 1 and 2 lose together.
  q.enqueue(data(1), 1.00);
  q.enqueue(data(2), 1.01);
  // Event 2 at t~5 (gap > 0.5): only flow 3.
  q.enqueue(data(3), 5.0);
  EXPECT_EQ(m.drop_events(), 2u);
  EXPECT_EQ(m.flows_hit_per_event()[0], 2);
  EXPECT_EQ(m.flows_hit_per_event()[1], 1);
  EXPECT_EQ(m.max_flows_hit(), 2);
  EXPECT_NEAR(m.mean_flows_hit(), 1.5, 1e-12);
}

TEST(FlowMonitor, SameFlowCountedOncePerEvent) {
  DropTailQueue q(1);
  FlowMonitor m(q, 0.5);
  q.enqueue(data(0), 0.0);
  q.enqueue(data(7), 1.00);
  q.enqueue(data(7), 1.01);
  q.enqueue(data(7), 1.02);
  EXPECT_EQ(m.drop_events(), 1u);
  EXPECT_EQ(m.flows_hit_per_event()[0], 1);
}

TEST(FlowMonitor, LosslessHasNoEvents) {
  DropTailQueue q(100);
  FlowMonitor m(q);
  q.enqueue(data(1), 0.0);
  EXPECT_EQ(m.drop_events(), 0u);
  EXPECT_EQ(m.max_flows_hit(), 0);
  EXPECT_DOUBLE_EQ(m.mean_flows_hit(), 0.0);
}

TEST(FlowMonitor, MultiQueueAttachClustersDropsJointly) {
  DropTailQueue q1(1), q2(1);
  FlowMonitor m(/*event_gap=*/0.5);
  m.attach(q1);
  m.attach(q2);
  q1.enqueue(data(0), 0.0);  // fills hop 1
  q2.enqueue(data(0), 0.0);  // fills hop 2
  // Drops at both hops inside one gap form ONE joint congestion event —
  // flows don't care which hop dropped them.
  q1.enqueue(data(1), 1.00);
  q2.enqueue(data(2), 1.01);
  EXPECT_EQ(m.drop_events(), 1u);
  EXPECT_EQ(m.flows_hit_per_event()[0], 2);
  // Arrivals and PASTA samples pool over both queues: 2 fills + 2 drops.
  EXPECT_EQ(m.queue_at_arrival().count(), 4u);
  EXPECT_EQ(m.flow(1).arrivals, 1u);
  EXPECT_EQ(m.flow(2).drops, 1u);
}

TEST(FlowMonitor, EmitsCongestionEventRecords) {
  DropTailQueue q(1);
  TraceSink sink;
  const std::uint8_t site = sink.register_site("queue:gateway");
  FlowMonitor m(q, /*event_gap=*/0.5);
  m.set_trace(&sink, site);
  q.enqueue(data(0), 0.0);
  q.enqueue(data(1), 1.00);
  q.enqueue(data(2), 1.25);
  q.enqueue(data(3), 5.0);  // new event; closes the first

  // Reading the event list closes the still-open second cluster lazily.
  ASSERT_EQ(m.drop_events(), 2u);
  ASSERT_EQ(sink.emitted(), 2u);
  const auto recs = sink.ordered();
  EXPECT_EQ(recs[0].type, TraceEventType::kCongestionEvent);
  EXPECT_EQ(recs[0].site, site);
  EXPECT_DOUBLE_EQ(recs[0].time, 1.00);   // cluster start
  EXPECT_DOUBLE_EQ(recs[0].value, 2.0);   // flows hit
  EXPECT_DOUBLE_EQ(recs[0].aux, 0.25);    // duration
  EXPECT_EQ(recs[0].seq, 2);              // drops in event
  EXPECT_DOUBLE_EQ(recs[1].time, 5.0);
  EXPECT_DOUBLE_EQ(recs[1].value, 1.0);
  EXPECT_DOUBLE_EQ(recs[1].aux, 0.0);
  EXPECT_EQ(recs[1].seq, 1);
}

TEST(FlowMonitor, LossFractionSpread) {
  DropTailQueue q(1);
  FlowMonitor m(q);
  // Flow 1: 200 arrivals, 0 drops. Flow 2: 200 arrivals, 100 drops.
  for (int i = 0; i < 200; ++i) {
    q.dequeue(0.0);
    q.enqueue(data(1), 0.0);
  }
  for (int i = 0; i < 100; ++i) {
    q.dequeue(0.0);
    q.enqueue(data(2), 0.0);  // accepted
    q.enqueue(data(2), 0.0);  // dropped (full)
  }
  EXPECT_NEAR(m.loss_fraction_spread(), 0.5, 1e-12);
  // With a high threshold no flow qualifies -> 0.
  EXPECT_DOUBLE_EQ(m.loss_fraction_spread(10000), 0.0);
}

}  // namespace
}  // namespace burst
