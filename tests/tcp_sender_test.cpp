// Tests of the TcpSender base machinery (via TcpReno, the reference
// policy): sequencing, window limiting, backlog, RTO timer behavior and
// Karn's rule.
#include "src/transport/tcp_sender.hpp"

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TEST(TcpSender, DeliversInOrderReliably) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(50);
  h.sim.run();
  EXPECT_EQ(h.sink->rcv_nxt(), 50);
  EXPECT_EQ(s->snd_una(), 50);
  EXPECT_EQ(s->backlog(), 0);
  EXPECT_EQ(s->stats().timeouts, 0u);
}

TEST(TcpSender, InitialWindowSendsOnePacket) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(10);
  // Before any ACK returns, exactly cwnd=1 packet may be outstanding.
  EXPECT_EQ(s->flight(), 1);
  EXPECT_EQ(s->backlog(), 9);
}

TEST(TcpSender, RespectsAdvertisedWindow) {
  TcpConfig cfg;
  cfg.advertised_window = 4.0;
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>(cfg);
  s->app_send(1000);
  // Let slow start open the congestion window well past awnd.
  h.sim.run(2.0);
  EXPECT_LE(s->flight(), 4);
  EXPECT_GT(s->cwnd(), 4.0);
}

TEST(TcpSender, BacklogDrainsAsWindowOpens) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(100);
  const auto backlog0 = s->backlog();
  h.sim.run(0.5);
  EXPECT_LT(s->backlog(), backlog0);
}

TEST(TcpSender, RetransmitsAfterTimeout) {
  // Tiny queue forces a loss of a packet with nothing after it -> RTO.
  LinkParams fwd;
  fwd.queue_capacity = 1;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  // Open the window first so a burst can overflow the 1-slot queue.
  s->app_send(3);
  h.sim.run(1.0);
  ASSERT_EQ(h.sink->rcv_nxt(), 3);
  // Burst: cwnd is now ~4; send 4 at once, 1 in tx + 1 queued -> 2 dropped.
  s->app_send(4);
  h.sim.run(20.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 7);  // eventually everything arrives
  EXPECT_GT(s->stats().retransmits, 0u);
}

TEST(TcpSender, RttSamplingFeedsEstimator) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(20);
  h.sim.run();
  EXPECT_GT(s->stats().rtt_samples, 0u);
  // RTT ~ 2*10ms + transmission; srtt must be in a sane band.
  EXPECT_GT(s->rto_estimator().srtt(), 0.015);
  EXPECT_LT(s->rto_estimator().srtt(), 0.1);
}

TEST(TcpSender, StatsCountAppAndDataPackets) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(25);
  h.sim.run();
  EXPECT_EQ(s->stats().app_packets, 25u);
  EXPECT_GE(s->stats().data_pkts_sent, 25u);
  EXPECT_EQ(s->stats().data_pkts_sent - s->stats().retransmits, 25u);
}

TEST(TcpSender, CwndTraceRecordsChanges) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  TraceSeries trace("cwnd");
  s->set_cwnd_trace(&trace);
  s->app_send(30);
  h.sim.run();
  ASSERT_GE(trace.points().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.points().front().second, 1.0);  // initial cwnd
  EXPECT_GT(trace.points().back().second, 1.0);          // grew
}

TEST(TcpSender, NoTrafficNoTimer) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  h.sim.run(10.0);
  EXPECT_EQ(s->stats().timeouts, 0u);
  EXPECT_EQ(s->stats().data_pkts_sent, 0u);
}

TEST(TcpSender, DupacksCounted) {
  LinkParams fwd;
  fwd.queue_capacity = 2;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(4);
  h.sim.run(1.0);
  s->app_send(30);  // burst through a 2-slot queue: drops + dupacks
  h.sim.run(30.0);
  EXPECT_GT(s->stats().dupacks, 0u);
  EXPECT_EQ(h.sink->rcv_nxt(), 34);
}

TEST(TcpSender, KarnRetransmittedSegmentsDoNotSample) {
  LinkParams fwd;
  fwd.queue_capacity = 1;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(40);
  h.sim.run(60.0);
  ASSERT_EQ(h.sink->rcv_nxt(), 40);
  // Every sample must come from a clean transmission: samples + tainted
  // acks <= new_acks, and there were retransmissions in this run.
  EXPECT_GT(s->stats().retransmits, 0u);
  EXPECT_LE(s->stats().rtt_samples, s->stats().new_acks);
}

TEST(TcpSender, SentAtTracksOutstandingPackets) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(1);
  EXPECT_NE(s->stats().data_pkts_sent, 0u);
  h.sim.run();
  EXPECT_EQ(s->snd_una(), 1);
}

}  // namespace
}  // namespace burst
