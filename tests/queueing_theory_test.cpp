// Closed-form checks plus simulator-vs-theory validation: the dumbbell
// with UDP/Poisson clients is an M/D/1(/K) system, so the measured queue
// must match Pollaczek-Khinchine and the loss must match the finite-buffer
// models within sampling noise.
#include "src/stats/queueing_theory.hpp"

#include <gtest/gtest.h>

#include "src/core/dumbbell.hpp"
#include "src/net/flow_monitor.hpp"

namespace burst {
namespace {

TEST(QueueingTheory, Mm1MeanSystem) {
  EXPECT_DOUBLE_EQ(mm1_mean_system(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mm1_mean_system(0.5), 1.0);
  EXPECT_NEAR(mm1_mean_system(0.9), 9.0, 1e-12);
}

TEST(QueueingTheory, Mm1kBlockingKnownValues) {
  // K=1: system is an M/M/1/1 loss system; blocking = rho/(1+rho).
  EXPECT_NEAR(mm1k_blocking(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(mm1k_blocking(0.5, 1), 0.5 / 1.5, 1e-12);
  // rho = 1 limit: uniform over K+1 states.
  EXPECT_NEAR(mm1k_blocking(1.0, 10), 1.0 / 11.0, 1e-12);
}

TEST(QueueingTheory, Mm1kBlockingMonotonicInRho) {
  double prev = 0.0;
  for (double rho : {0.3, 0.6, 0.9, 1.2, 1.5}) {
    const double b = mm1k_blocking(rho, 20);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(QueueingTheory, Mm1kBlockingDecreasesWithBuffer) {
  double prev = 1.0;
  for (int k : {5, 10, 20, 40}) {
    const double b = mm1k_blocking(0.9, k);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(QueueingTheory, Mm1kMeanApproachesMm1ForLargeK) {
  EXPECT_NEAR(mm1k_mean_system(0.7, 500), mm1_mean_system(0.7), 1e-6);
}

TEST(QueueingTheory, Md1MeanQueueHalfOfMm1) {
  // M/D/1 waits are half the M/M/1 waits: Lq = rho^2 / (2(1-rho)).
  EXPECT_NEAR(md1_mean_queue(0.5), 0.25, 1e-12);
  EXPECT_NEAR(md1_mean_system(0.5), 0.75, 1e-12);
}

TEST(QueueingTheory, SlowStartAlgebra) {
  EXPECT_EQ(slow_start_rounds(1.0), 0);
  EXPECT_EQ(slow_start_rounds(2.0), 1);
  EXPECT_EQ(slow_start_rounds(16.0), 4);
  EXPECT_EQ(slow_start_rounds(17.0), 5);
  EXPECT_DOUBLE_EQ(slow_start_packets(16.0), 15.0);
}

class Md1ValidationTest : public ::testing::TestWithParam<int> {};

TEST_P(Md1ValidationTest, SimulatedQueueMatchesPollaczekKhinchine) {
  // UDP/Poisson through the dumbbell: arrivals at the bottleneck are
  // Poisson (sum of independent Poisson clients), service is
  // deterministic => M/D/1. By PASTA the queue seen at arrivals equals the
  // time average, so FlowMonitor's sampler must match theory.
  const int clients = GetParam();
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kUdp;
  sc.num_clients = clients;
  sc.duration = 120.0;
  sc.gateway_buffer = 100000;  // effectively infinite: pure M/D/1

  Simulator sim(5);
  Dumbbell net(sim, sc);
  FlowMonitor monitor(net.bottleneck_queue());
  net.start_sources();
  sim.run(sc.duration);

  const double rho = sc.utilization();
  ASSERT_LT(rho, 1.0);
  // The monitor samples the *waiting* packets (the one in transmission has
  // already left the queue), i.e. Lq of M/D/1.
  const double measured = monitor.queue_at_arrival().mean();
  const double theory = md1_mean_queue(rho);
  EXPECT_NEAR(measured, theory, 0.15 * theory + 0.05)
      << "clients=" << clients << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Loads, Md1ValidationTest,
                         ::testing::Values(10, 20, 30, 35));

TEST(QueueingTheory, FiniteBufferLossBracketsSimulation) {
  // Overloaded UDP (rho > 1): loss must be at least (1 - 1/rho), and the
  // M/M/1/K model (burstier arrivals than M/D/1/K) upper-bounds it.
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kUdp;
  sc.num_clients = 50;
  sc.duration = 60.0;
  Simulator sim(6);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  const double rho = sc.utilization();
  ASSERT_GT(rho, 1.0);
  const double measured = net.bottleneck_queue().stats().loss_fraction();
  const double lower = 1.0 - 1.0 / rho;
  const double upper =
      mm1k_blocking(rho, static_cast<int>(sc.gateway_buffer));
  EXPECT_GT(measured, 0.95 * lower);
  EXPECT_LT(measured, 1.10 * upper);
}

}  // namespace
}  // namespace burst
