#include "src/transport/tcp_tahoe.hpp"

#include <gtest/gtest.h>

#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TEST(TcpTahoe, DeliversReliably) {
  TcpHarness h;
  auto* s = h.make_sender<TcpTahoe>();
  s->app_send(100);
  h.sim.run();
  EXPECT_EQ(h.sink->rcv_nxt(), 100);
  EXPECT_EQ(s->stats().timeouts, 0u);
}

TEST(TcpTahoe, SlowStartGrowth) {
  TcpHarness h;
  auto* s = h.make_sender<TcpTahoe>();
  s->app_send(1000);
  const Time rtt = h.rtt();
  h.sim.run(2.5 * rtt);
  EXPECT_GE(s->cwnd(), 3.0);
}

TEST(TcpTahoe, LossResetsWindowToOne) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpTahoe>();
  s->app_send(12);
  h.sim.run(1.0);
  TraceSeries trace("w");
  s->set_cwnd_trace(&trace);
  s->app_send(12);
  h.sim.run(30.0);
  ASSERT_GE(s->stats().fast_retransmits + s->stats().timeouts, 1u);
  bool saw_one = false;
  for (const auto& [t, w] : trace.points()) saw_one |= (w == 1.0);
  EXPECT_TRUE(saw_one);  // Tahoe always re-slow-starts
  EXPECT_EQ(h.sink->rcv_nxt(), 24);
}

TEST(TcpTahoe, RecoversFromRepeatedLoss) {
  LinkParams fwd;
  fwd.queue_capacity = 2;
  TcpHarness h(3, fwd);
  auto* s = h.make_sender<TcpTahoe>();
  s->app_send(150);
  h.sim.run(200.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 150);
  EXPECT_EQ(s->backlog(), 0);
}

TEST(TcpTahoe, NoFastRecoveryInflation) {
  // After a fast retransmit Tahoe's window is 1, never ssthresh+3.
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpTahoe>();
  s->app_send(12);
  h.sim.run(1.0);
  s->app_send(12);
  // Poll right after the first fast retransmit.
  while (s->stats().fast_retransmits == 0 && h.sim.now() < 10.0) {
    h.sim.run(h.sim.now() + 0.001);
  }
  if (s->stats().fast_retransmits > 0) {
    EXPECT_LE(s->cwnd(), 2.0);
  }
  h.sim.run(30.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 24);
}

}  // namespace
}  // namespace burst
