// RFC 2861-style congestion-window validation: growth gated on usage.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::TcpHarness;

TEST(CwndValidation, AppLimitedFlowDoesNotBankWindow) {
  // A thin flow (one packet per RTT-ish) must keep cwnd near its usage.
  TcpConfig cfg;
  cfg.cwnd_validation = true;
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>(cfg);
  for (int i = 0; i < 200; ++i) {
    h.sim.schedule(i * 0.05, [s] { s->app_send(1); });
  }
  h.sim.run(15.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 200);
  EXPECT_LT(s->cwnd(), 6.0);  // without validation this pegs at awnd=20
}

TEST(CwndValidation, WithoutValidationWindowBanks) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();  // default: no validation
  for (int i = 0; i < 200; ++i) {
    h.sim.schedule(i * 0.05, [s] { s->app_send(1); });
  }
  h.sim.run(15.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 200);
  EXPECT_GT(s->cwnd(), 15.0);  // grows toward the advertised window
}

TEST(CwndValidation, SaturatedFlowStillGrows) {
  // Validation must not throttle a window-limited flow.
  TcpConfig cfg;
  cfg.cwnd_validation = true;
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>(cfg);
  s->app_send(100000);
  h.sim.run(1.0);
  EXPECT_GT(s->cwnd(), 10.0);
}

TEST(CwndValidation, ReducesModerateLoadDrops) {
  // The Sec 3.2.1 mechanism check (short form of the ablation bench).
  Scenario plain = Scenario::paper_default();
  plain.num_clients = 20;
  plain.duration = 10.0;
  Scenario gated = plain;
  gated.cwnd_validation = true;
  const auto p = run_experiment(plain);
  const auto g = run_experiment(gated);
  EXPECT_LE(g.gw_drops, p.gw_drops);
}

}  // namespace
}  // namespace burst
