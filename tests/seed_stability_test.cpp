// Statistical stability: the paper's headline orderings must hold across
// RNG seeds, not just for one lucky draw. Kept to short runs so the suite
// stays fast; the benches provide the full-length versions.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace burst {
namespace {

Scenario base(std::uint64_t seed, Transport t,
              GatewayQueue q = GatewayQueue::kDropTail) {
  Scenario s = Scenario::paper_default();
  s.num_clients = 50;
  s.duration = 8.0;
  s.seed = seed;
  s.transport = t;
  s.gateway = q;
  return s;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, HeadlineOrderingsHold) {
  const std::uint64_t seed = GetParam();
  const auto udp = run_experiment(base(seed, Transport::kUdp));
  const auto reno = run_experiment(base(seed, Transport::kReno));
  const auto reno_red =
      run_experiment(base(seed, Transport::kReno, GatewayQueue::kRed));
  const auto vegas = run_experiment(base(seed, Transport::kVegas));

  // Fig 2 orderings.
  EXPECT_NEAR(udp.cov, udp.poisson_cov, 0.3 * udp.poisson_cov);
  EXPECT_GT(reno.cov, 1.3 * reno.poisson_cov);
  EXPECT_GT(reno_red.cov, reno.cov);
  EXPECT_LT(vegas.cov, reno.cov);
  // Fig 3: RED costs throughput.
  EXPECT_LT(reno_red.delivered, reno.delivered);
  // Fig 4: Vegas loses least among TCPs.
  EXPECT_LT(vegas.loss_pct, reno.loss_pct);
  // Fig 13: Vegas barely times out.
  EXPECT_LT(vegas.timeouts, reno.timeouts / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(3u, 17u, 101u, 9001u));

TEST(SeedStability, MetricsVaryButModestly) {
  // The c.o.v. of the c.o.v.: across seeds the Reno burstiness estimate
  // itself should be stable to within ~35%.
  RunningStats covs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    covs.add(run_experiment(base(seed, Transport::kReno)).cov);
  }
  EXPECT_LT(covs.cov(), 0.35);
  EXPECT_GT(covs.mean(), 0.05);
}

}  // namespace
}  // namespace burst
