#include "src/stats/hurst.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/random.hpp"

namespace burst {
namespace {

std::vector<double> iid_series(int n, std::uint64_t seed) {
  Random rng(seed);
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) xs.push_back(rng.exponential(1.0));
  return xs;
}

/// A crude long-range-dependent series: sum of on/off indicators with
/// Pareto sojourn times (the classic construction from the self-similar
/// traffic literature).
std::vector<double> lrd_series(int n, std::uint64_t seed) {
  Random rng(seed);
  const int sources = 32;
  std::vector<double> xs(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < sources; ++s) {
    bool on = rng.bernoulli(0.5);
    int i = 0;
    while (i < n) {
      const int len = std::max(
          1, static_cast<int>(rng.pareto(1.2, 8.0)));
      if (on) {
        for (int k = i; k < std::min(n, i + len); ++k) {
          xs[static_cast<std::size_t>(k)] += 1.0;
        }
      }
      i += len;
      on = !on;
    }
  }
  return xs;
}

TEST(Hurst, OlsSlopeExactLine) {
  std::vector<double> x{1, 2, 3, 4}, y{3, 5, 7, 9};
  EXPECT_NEAR(ols_slope(x, y), 2.0, 1e-12);
}

TEST(Hurst, OlsSlopeDegenerate) {
  EXPECT_DOUBLE_EQ(ols_slope({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ols_slope({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(ols_slope({1.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(Hurst, VarianceTimeIidIsHalf) {
  auto xs = iid_series(65536, 3);
  const double h = hurst_variance_time(xs, {1, 2, 4, 8, 16, 32, 64, 128});
  EXPECT_NEAR(h, 0.5, 0.08);
}

TEST(Hurst, RescaledRangeIidNearHalf) {
  auto xs = iid_series(65536, 5);
  const double h = hurst_rescaled_range(xs, {16, 32, 64, 128, 256, 512});
  // R/S is biased upward on short series; accept the usual band.
  EXPECT_GT(h, 0.40);
  EXPECT_LT(h, 0.68);
}

TEST(Hurst, LrdSeriesHasElevatedHurst) {
  auto xs = lrd_series(65536, 7);
  const double h_vt = hurst_variance_time(xs, {1, 2, 4, 8, 16, 32, 64, 128});
  const double h_rs = hurst_rescaled_range(xs, {16, 32, 64, 128, 256, 512});
  EXPECT_GT(h_vt, 0.65);
  EXPECT_GT(h_rs, 0.6);
}

TEST(Hurst, LrdBeatsIidOnBothEstimators) {
  auto iid = iid_series(32768, 11);
  auto lrd = lrd_series(32768, 11);
  const std::vector<int> ms{1, 2, 4, 8, 16, 32, 64};
  EXPECT_GT(hurst_variance_time(lrd, ms), hurst_variance_time(iid, ms) + 0.1);
}

TEST(Hurst, DegenerateInputsReturnHalf) {
  EXPECT_DOUBLE_EQ(hurst_variance_time({}, {1, 2}), 0.5);
  EXPECT_DOUBLE_EQ(hurst_variance_time({1.0, 1.0, 1.0}, {1}), 0.5);
  EXPECT_DOUBLE_EQ(hurst_rescaled_range({1.0, 2.0}, {8}), 0.5);
}

TEST(Hurst, EstimateClampedToUnitInterval) {
  auto xs = iid_series(1024, 13);
  const double h = hurst_variance_time(xs, {1, 2, 4, 8});
  EXPECT_GE(h, 0.0);
  EXPECT_LE(h, 1.0);
}

}  // namespace
}  // namespace burst
