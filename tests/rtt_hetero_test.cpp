// Heterogeneous-RTT extension: per-client delay spread.
#include <gtest/gtest.h>

#include "src/core/dumbbell.hpp"
#include "src/core/experiment.hpp"
#include "src/stats/correlation.hpp"

namespace burst {
namespace {

TEST(RttHetero, HomogeneousByDefault) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(sc.client_delay_for(i), sc.client_delay);
  }
}

TEST(RttHetero, LinearSpreadAcrossClients) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 5;
  sc.client_delay_spread = 0.5;
  // Delays: 20ms * {0.5, 0.75, 1.0, 1.25, 1.5}.
  EXPECT_NEAR(sc.client_delay_for(0), 0.010, 1e-12);
  EXPECT_NEAR(sc.client_delay_for(2), 0.020, 1e-12);
  EXPECT_NEAR(sc.client_delay_for(4), 0.030, 1e-12);
  // Mean delay is preserved (the sweep stays comparable).
  double sum = 0.0;
  for (int i = 0; i < 5; ++i) sum += sc.client_delay_for(i);
  EXPECT_NEAR(sum / 5.0, sc.client_delay, 1e-12);
}

TEST(RttHetero, SingleClientUnaffected) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 1;
  sc.client_delay_spread = 0.9;
  EXPECT_DOUBLE_EQ(sc.client_delay_for(0), sc.client_delay);
}

TEST(RttHetero, DumbbellAppliesPerClientDelays) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 3;
  sc.client_delay_spread = 0.5;
  sc.duration = 2.0;
  Simulator sim(1);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  // Shortest-RTT client measures a smaller base RTT than the longest.
  const double rtt0 = net.tcp_sender(0)->rto_estimator().srtt();
  const double rtt2 = net.tcp_sender(2)->rto_estimator().srtt();
  EXPECT_GT(rtt2, rtt0 + 0.015);  // 2*(30ms-10ms) propagation difference
}

TEST(RttHetero, RenoFavorsShortRttUnderContention) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 55;
  sc.duration = 10.0;
  sc.client_delay_spread = 0.8;
  Simulator sim(3);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  std::vector<double> delays, goodput;
  const auto per_flow = net.per_flow_delivered();
  for (int i = 0; i < sc.num_clients; ++i) {
    delays.push_back(sc.client_delay_for(i));
    goodput.push_back(per_flow[static_cast<std::size_t>(i)]);
  }
  EXPECT_LT(pearson(delays, goodput), -0.1);
}

}  // namespace
}  // namespace burst
