// Golden fingerprints for every shipped .topo file. A change here means
// parsed topologies (and therefore every campaign cache keyed on them)
// no longer mean what they used to — bump kTopoKeyVersion if that is
// intentional, and expect old cache entries to be re-simulated.
#include <gtest/gtest.h>

#include <string>

#include "src/topo/parser.hpp"
#include "src/topo/spec.hpp"

#ifndef BURST_TOPO_EXAMPLES_DIR
#define BURST_TOPO_EXAMPLES_DIR "examples/topologies"
#endif

namespace burst {
namespace {

TopoSpec load_example(const std::string& file) {
  TopoError err;
  const std::string path = std::string(BURST_TOPO_EXAMPLES_DIR) + "/" + file;
  auto spec = load_topo_file(path, &err);
  EXPECT_TRUE(spec.has_value()) << err.render(path);
  return spec ? *spec : TopoSpec{};
}

TEST(TopoFingerprint, DumbbellN60IsPinned) {
  EXPECT_EQ(topo_key(load_example("dumbbell_n60.topo")).hex(),
            "3e6dcd6af29cefe270c9126328cdfa67");
}

TEST(TopoFingerprint, ParkingLotN30IsPinned) {
  EXPECT_EQ(topo_key(load_example("parking_lot_n30.topo")).hex(),
            "97eea2618359cb9898b3e104ece66c23");
}

TEST(TopoFingerprint, MultiBottleneckRttIsPinned) {
  EXPECT_EQ(topo_key(load_example("multi_bottleneck_rtt.topo")).hex(),
            "3485a995b490a234c020df0e41c5fe81");
}

TEST(TopoFingerprint, DumbbellFileIsCanonicallyTheHardCodedDumbbell) {
  // The core identity contract: the shipped dumbbell file IS the paper
  // dumbbell — same canonical graph, therefore the *plain* scenario key,
  // therefore interchangeable with `burstsim --clients=60` in any cache.
  const TopoSpec spec = load_example("dumbbell_n60.topo");
  ASSERT_TRUE(is_canonical_dumbbell(spec));
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 60;
  EXPECT_EQ(spec.canonical(), make_dumbbell_spec(sc).canonical());
  EXPECT_EQ(topo_key(spec), scenario_key(sc));
}

TEST(TopoFingerprint, NonDumbbellFilesCarryTheTopologySalt) {
  // A non-dumbbell graph must never collide with a plain scenario key:
  // its key hashes the topo_v-salted canonical rendering.
  const TopoSpec spec = load_example("parking_lot_n30.topo");
  EXPECT_FALSE(is_canonical_dumbbell(spec));
  EXPECT_NE(topo_key(spec), scenario_key(spec.scenario));
  EXPECT_EQ(topo_key(spec),
            scenario_key_with_topology(spec.scenario, spec.canonical()));
}

TEST(TopoFingerprint, GatewayQueueKindTracksTheScenarioDiscipline) {
  // `queue gateway` resolves from the scenario, so a campaign's
  // `set queue red` keeps the dumbbell file canonically the dumbbell —
  // still the plain key, now for the RED scenario.
  TopoError err;
  const std::string path =
      std::string(BURST_TOPO_EXAMPLES_DIR) + "/dumbbell_n60.topo";
  const auto spec = load_topo_file(path, &err, {{"queue", "red"}});
  ASSERT_TRUE(spec.has_value()) << err.render(path);
  EXPECT_EQ(spec->scenario.gateway, GatewayQueue::kRed);
  EXPECT_TRUE(is_canonical_dumbbell(*spec));
  EXPECT_EQ(topo_key(*spec), scenario_key(spec->scenario));
}

TEST(TopoFingerprint, OverridesChangeTheKey) {
  TopoError err;
  const std::string path =
      std::string(BURST_TOPO_EXAMPLES_DIR) + "/parking_lot_n30.topo";
  const auto base = load_topo_file(path, &err);
  const auto smaller = load_topo_file(path, &err, {{"clients", "10"}});
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(smaller.has_value());
  EXPECT_EQ(smaller->scenario.num_clients, 10);
  EXPECT_NE(topo_key(*base), topo_key(*smaller));
}

}  // namespace
}  // namespace burst
