// Multi-handle / multi-process behavior of ResultStore: the guarantees
// the campaign farm stands on. Handles here are separate ResultStore
// objects on one directory — exactly what two worker processes (or two
// threads that refuse to share) look like to the filesystem.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/run/result_store.hpp"

namespace burst {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

ScenarioKey key_for(std::uint64_t seed) {
  Scenario sc = Scenario::paper_default();
  sc.seed = seed;
  return scenario_key(sc);
}

ExperimentResult result_stamped(std::uint64_t stamp) {
  ExperimentResult r;
  r.delivered = stamp;
  r.app_generated = stamp * 2;
  r.cov = 1.0 + static_cast<double>(stamp) / 7.0;
  for (double d : {0.01, 0.02, 0.04}) r.delay.add(d);
  return r;
}

TEST(StoreConcurrency, RacingHandlesLoseNoEntries) {
  const std::string dir = fresh_dir("conc_race");
  constexpr int kPerWorker = 24;
  // Two workers, each with its own handle, interleaving put+flush on the
  // same directory. flock serializes the appends; nothing may vanish.
  const auto worker = [&](int base) {
    ResultStore store(dir);
    for (int i = 0; i < kPerWorker; ++i) {
      const std::uint64_t stamp =
          static_cast<std::uint64_t>(base + i);
      store.put(key_for(stamp), result_stamped(stamp));
      ASSERT_TRUE(store.flush());
    }
  };
  std::thread a(worker, 1000);
  std::thread b(worker, 2000);
  a.join();
  b.join();
  ResultStore check(dir);
  EXPECT_EQ(check.size(), 2u * kPerWorker);
  EXPECT_EQ(check.skipped_entries(), 0u);
  for (int base : {1000, 2000}) {
    for (int i = 0; i < kPerWorker; ++i) {
      const std::uint64_t stamp = static_cast<std::uint64_t>(base + i);
      const auto got = check.get(key_for(stamp));
      ASSERT_TRUE(got.has_value()) << "lost entry " << stamp;
      EXPECT_EQ(got->delivered, stamp);
    }
  }
}

TEST(StoreConcurrency, RefreshAbsorbsOtherHandlesAppends) {
  const std::string dir = fresh_dir("conc_refresh");
  ResultStore reader(dir);
  const ScenarioKey key = key_for(7);
  EXPECT_FALSE(reader.contains(key));
  {
    ResultStore writer(dir);
    writer.put(key, result_stamped(7));
    ASSERT_TRUE(writer.flush());
  }
  EXPECT_FALSE(reader.contains(key));  // not yet absorbed
  reader.refresh();
  ASSERT_TRUE(reader.contains(key));
  EXPECT_EQ(reader.get(key)->delivered, 7u);
}

TEST(StoreConcurrency, ClaimProtocolHandsOneOwnerPerKey) {
  const std::string dir = fresh_dir("conc_claim");
  ResultStore a(dir);
  ResultStore b(dir);
  const ScenarioKey key = key_for(42);

  EXPECT_EQ(a.try_claim(key), ClaimStatus::kAcquired);
  // Same pid, different handle: the claim is held, so B must wait.
  EXPECT_EQ(b.try_claim(key), ClaimStatus::kBusy);

  a.publish(key, result_stamped(42));
  EXPECT_FALSE(fs::exists(a.claim_path(key)));  // claim released
  EXPECT_EQ(b.try_claim(key), ClaimStatus::kDone);
  b.refresh();
  EXPECT_EQ(b.get(key)->delivered, 42u);
}

TEST(StoreConcurrency, AbandonReleasesWithoutPublishing) {
  const std::string dir = fresh_dir("conc_abandon");
  ResultStore a(dir);
  ResultStore b(dir);
  const ScenarioKey key = key_for(9);
  EXPECT_EQ(a.try_claim(key), ClaimStatus::kAcquired);
  a.abandon(key);
  EXPECT_EQ(b.try_claim(key), ClaimStatus::kAcquired);
  EXPECT_FALSE(b.contains(key));
}

TEST(StoreConcurrency, DeadWorkersClaimIsStolen) {
  const std::string dir = fresh_dir("conc_steal");
  const ScenarioKey key = key_for(13);
  // A worker process claims the key and dies without publishing — the
  // kill-one-worker-mid-campaign scenario.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ResultStore worker(dir);
    (void)worker.try_claim(key);
    ::_exit(0);  // no abandon, no publish: the claim file stays behind
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  ResultStore survivor(dir);
  ASSERT_TRUE(fs::exists(survivor.claim_path(key)));
  // The surviving worker detects the dead pid, steals the claim, and
  // picks up exactly this unfinished point.
  EXPECT_EQ(survivor.try_claim(key), ClaimStatus::kAcquired);
  survivor.publish(key, result_stamped(13));
  EXPECT_EQ(survivor.try_claim(key), ClaimStatus::kDone);
}

TEST(StoreConcurrency, TornTailIsToleratedAndHealed) {
  const std::string dir = fresh_dir("conc_torn");
  const ScenarioKey k1 = key_for(1);
  std::string segment;
  {
    ResultStore store(dir);
    store.put(k1, result_stamped(1));
    ASSERT_TRUE(store.flush());
    segment = store.segment_path(k1);
  }
  // A crashed writer left half a line with no newline at the tail.
  {
    std::ofstream out(segment, std::ios::app);
    out << "{\"key\":\"00000000000000000000000000";  // torn, no '\n'
  }
  // Find a second key living in the same segment, so the next append
  // exercises the newline-heal on exactly this file.
  std::uint64_t seed = 100;
  while (ResultStore::segment_of(key_for(seed)) !=
         ResultStore::segment_of(k1)) {
    ++seed;
  }
  const ScenarioKey k2 = key_for(seed);
  {
    ResultStore store(dir);
    EXPECT_EQ(store.get(k1)->delivered, 1u);  // torn tail didn't poison k1
    store.put(k2, result_stamped(seed));
    ASSERT_TRUE(store.flush());  // heals: newline before the new entry
  }
  ResultStore check(dir);
  EXPECT_EQ(check.size(), 2u);
  EXPECT_EQ(check.get(k1)->delivered, 1u);
  EXPECT_EQ(check.get(k2)->delivered, seed);
  EXPECT_EQ(check.skipped_entries(), 1u);  // the torn line, now whole+bogus
}

}  // namespace
}  // namespace burst
