#include "src/transport/tcp_sack.hpp"

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TcpSinkConfig sack_sink() {
  TcpSinkConfig cfg;
  cfg.sack = true;
  return cfg;
}

TEST(TcpSack, DeliversReliably) {
  TcpHarness h(1, {}, sack_sink());
  auto* s = h.make_sender<TcpSack>();
  s->app_send(100);
  h.sim.run();
  EXPECT_EQ(h.sink->rcv_nxt(), 100);
  EXPECT_EQ(s->backlog(), 0);
}

TEST(TcpSack, SinkReportsSackBlocks) {
  TcpHarness h(1, {}, sack_sink());
  auto* s = h.make_sender<TcpSack>();
  // Capture acks on the reverse link.
  int acks_with_sack = 0;
  h.ba.queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kAck && p.sack_count > 0) ++acks_with_sack;
  });
  // Inject out-of-order data by dropping one packet via a tiny detour:
  // send 1 packet, then force a gap by delivering seq 2,3 first is hard
  // here; instead use a small queue to create real loss.
  (void)s;
  LinkParams fwd;
  fwd.queue_capacity = 4;
  TcpHarness h2(3, fwd, sack_sink());
  auto* s2 = h2.make_sender<TcpSack>();
  int sacked_acks = 0;
  h2.ba.queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kAck && p.sack_count > 0) ++sacked_acks;
  });
  s2->app_send(10);
  h2.sim.run(1.0);
  s2->app_send(30);
  h2.sim.run(30.0);
  EXPECT_EQ(h2.sink->rcv_nxt(), 40);
  EXPECT_GT(sacked_acks, 0);
}

TEST(TcpSack, ScoreboardTracksAndCleans) {
  LinkParams fwd;
  fwd.queue_capacity = 4;
  TcpHarness h(3, fwd, sack_sink());
  auto* s = h.make_sender<TcpSack>();
  s->app_send(10);
  h.sim.run(1.0);
  s->app_send(30);
  h.sim.run(30.0);
  // After full delivery everything below snd_una is cleaned out.
  EXPECT_EQ(h.sink->rcv_nxt(), 40);
  EXPECT_EQ(s->scoreboard_size(), 0u);
  EXPECT_FALSE(s->in_fast_recovery());
}

TEST(TcpSack, FewerTimeoutsThanRenoUnderMultipleDrops) {
  std::uint64_t reno_timeouts = 0, sack_timeouts = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LinkParams fwd;
    fwd.queue_capacity = 5;
    {
      TcpHarness h(seed, fwd);
      auto* s = h.make_sender<TcpReno>();
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(40);
      h.sim.run(90.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 55);
      reno_timeouts += s->stats().timeouts;
    }
    {
      TcpHarness h(seed, fwd, sack_sink());
      auto* s = h.make_sender<TcpSack>();
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(40);
      h.sim.run(90.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 55);
      sack_timeouts += s->stats().timeouts;
    }
  }
  EXPECT_LE(sack_timeouts, reno_timeouts);
}

TEST(TcpSack, DoesNotRetransmitSackedData) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(5, fwd, sack_sink());
  auto* s = h.make_sender<TcpSack>();
  s->app_send(12);
  h.sim.run(1.0);
  const auto unique_before = h.sink->stats().unique_packets;
  s->app_send(30);
  h.sim.run(60.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 42);
  // Spurious (duplicate) deliveries would show up as duplicate_packets;
  // SACK should keep them minimal (well below the retransmit count Reno
  // would produce with go-back-N after timeouts).
  EXPECT_LE(h.sink->stats().duplicate_packets, s->stats().retransmits);
  EXPECT_EQ(h.sink->stats().unique_packets, unique_before + 30);
}

TEST(TcpSack, HeavyLossProperty) {
  for (std::size_t cap : {1u, 3u, 6u}) {
    LinkParams fwd;
    fwd.queue_capacity = cap;
    TcpHarness h(17, fwd, sack_sink());
    auto* s = h.make_sender<TcpSack>();
    s->app_send(200);
    h.sim.run(300.0);
    EXPECT_EQ(h.sink->rcv_nxt(), 200) << "cap " << cap;
  }
}

TEST(TcpSack, WorksAgainstNonSackSink) {
  // Without SACK blocks from the peer it degrades to NewReno-ish behavior
  // but must stay correct.
  LinkParams fwd;
  fwd.queue_capacity = 3;
  TcpHarness h(19, fwd);  // default sink: no SACK
  auto* s = h.make_sender<TcpSack>();
  s->app_send(100);
  h.sim.run(200.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 100);
  EXPECT_EQ(s->scoreboard_size(), 0u);
}

}  // namespace
}  // namespace burst
