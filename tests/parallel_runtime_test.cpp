// Conservative parallel engine (src/sim/parallel, DESIGN.md §13).
//
// Test names all start with Parallel* on purpose: the sanitize CI job's
// TSan step filters on that prefix to sweep the LP runtime, channels and
// barrier under ThreadSanitizer.
//
// The load-bearing guarantees checked here:
//   * SpscChannel preserves producer order and survives ring overflow.
//   * make_lp_partition cuts the dumbbell along its natural seams with
//     the documented lookahead, and degrades to sequential when it must.
//   * An lp>1 run of a dumbbell scenario reproduces the sequential run's
//     packet-timing metrics and *exact* event count (the remote delivery
//     event replaces the producer's fused local one 1:1).
//   * An lp=2 run is bit-identical run-to-run (pinned hash): the merge
//     order is a pure function of message keys, never thread timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/net/link.hpp"
#include "src/run/scenario_key.hpp"
#include "src/sim/parallel/barrier.hpp"
#include "src/sim/parallel/spsc_channel.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/partition.hpp"
#include "src/topo/spec.hpp"

namespace burst {
namespace {

// ---------------------------------------------------------------------
// SpscChannel

TEST(ParallelChannel, PreservesProducerOrderAcrossOverflow) {
  Simulator sim(1);
  SimplexLink link(sim, std::make_unique<DropTailQueue>(4), 1e6, 0.001);
  SpscChannel chan(/*id=*/0, /*from_lp=*/0, /*to_lp=*/1);

  // 3x the ring capacity: the tail 2/3 must take the overflow lane.
  const std::uint64_t n = 3 * SpscChannel::kCapacity;
  for (std::uint64_t i = 0; i < n; ++i) {
    Packet p;
    p.uid = i;
    const Time t = static_cast<Time>(i);
    chan.post(link, RemoteKey{/*at=*/t, /*tie_time=*/t, /*tx_start=*/t,
                              /*cause=*/0.0, /*chain_start=*/t,
                              /*chain_cause=*/0.0},
              p);
  }
  EXPECT_EQ(chan.posted(), n);

  std::vector<RemoteEvent> got;
  chan.drain([&](const RemoteEvent& e) { got.push_back(e); });
  ASSERT_EQ(got.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i].seq, i);
    EXPECT_EQ(got[i].pkt.uid, i);
    EXPECT_EQ(got[i].link, &link);
  }

  // Drained channel is empty and the ring is reusable.
  int extra = 0;
  chan.drain([&](const RemoteEvent&) { ++extra; });
  EXPECT_EQ(extra, 0);
  Packet p;
  p.uid = 999;
  chan.post(link, RemoteKey{1.0, 1.0, 1.0, 0.0, 1.0, 0.0}, p);
  chan.drain([&](const RemoteEvent& e) {
    EXPECT_EQ(e.pkt.uid, 999u);
    EXPECT_EQ(e.seq, n);  // per-channel seq keeps counting across drains
    ++extra;
  });
  EXPECT_EQ(extra, 1);
}

TEST(ParallelChannel, ConcurrentPostAndDrainKeepOrder) {
  // The ring's atomics must let a live producer and consumer run
  // concurrently (the protocol only phase-separates the overflow lane).
  Simulator sim(1);
  SimplexLink link(sim, std::make_unique<DropTailQueue>(4), 1e6, 0.001);
  SpscChannel chan(0, 0, 1);
  constexpr std::uint64_t kMsgs = 200000;

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kMsgs; ++i) {
      Packet p;
      p.uid = i;
      // Stay within the ring so both sides touch only the atomics: spin
      // until the consumer frees a slot. (Real LPs never block — they
      // spill to overflow — but this test targets the lock-free path.)
      while (chan.ring_full()) std::this_thread::yield();
      chan.post(link, RemoteKey{0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, p);
    }
  });
  std::uint64_t next = 0;
  while (next < kMsgs) {
    chan.drain([&](const RemoteEvent& e) {
      EXPECT_EQ(e.pkt.uid, next);
      ++next;
    });
  }
  producer.join();
  EXPECT_EQ(next, kMsgs);
}

// ---------------------------------------------------------------------
// PhaseBarrier

TEST(ParallelBarrier, SynchronizesPhases) {
  constexpr int kParties = 4;
  constexpr int kRounds = 100;
  PhaseBarrier barrier(kParties);
  EXPECT_EQ(barrier.parties(), kParties);

  // Each thread increments its phase counter between barriers; at no
  // barrier crossing may two threads disagree by more than one phase,
  // and after the run all counters are equal.
  std::vector<int> phase(kParties, 0);
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kParties; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        phase[static_cast<std::size_t>(t)] = r;
        barrier.arrive_and_wait();
        for (int u = 0; u < kParties; ++u) {
          if (phase[static_cast<std::size_t>(u)] != r) ok = false;
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_TRUE(ok.load());
}

// ---------------------------------------------------------------------
// Partitioner

TEST(ParallelPartition, DumbbellTwoWaySplit) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  const TopoSpec spec = make_dumbbell_spec(sc);
  const LpPartition part = make_lp_partition(spec, 2);
  ASSERT_EQ(part.shards, 2);
  for (int c = 0; c < sc.num_clients; ++c) EXPECT_EQ(part.lp_of(c), 0);
  EXPECT_EQ(part.lp_of(sc.num_clients), 1);      // gateway
  EXPECT_EQ(part.lp_of(sc.num_clients + 1), 1);  // server
  // Cut = both directions of every client edge; lookahead = client delay.
  EXPECT_EQ(part.cut_links, 2 * sc.num_clients);
  EXPECT_DOUBLE_EQ(part.lookahead, sc.client_delay);
}

TEST(ParallelPartition, DumbbellFourWaySplit) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  sc.client_delay_spread = 0.5;
  const TopoSpec spec = make_dumbbell_spec(sc);
  const LpPartition part = make_lp_partition(spec, 4);
  ASSERT_EQ(part.shards, 4);
  // Clients split into two contiguous shards; gateway and server get
  // their own LPs.
  for (int c = 0; c < 5; ++c) EXPECT_EQ(part.lp_of(c), 0);
  for (int c = 5; c < 10; ++c) EXPECT_EQ(part.lp_of(c), 1);
  EXPECT_EQ(part.lp_of(10), 2);
  EXPECT_EQ(part.lp_of(11), 3);
  // Client edges AND both bottleneck directions now cross the cut.
  EXPECT_EQ(part.cut_links, 2 * sc.num_clients + 2);
  // Spread shifts the fastest client edge to delay*(1-spread); the
  // partitioner must agree bit-for-bit with the builder's member delay.
  const TopoLinkSpec& up = spec.links[2];
  EXPECT_DOUBLE_EQ(part.lookahead,
                   topo_member_delay(up, 0, sc.num_clients));
  EXPECT_LT(part.lookahead, sc.client_delay);
}

TEST(ParallelPartition, ClampsAndFallsBack) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 2;
  const TopoSpec spec = make_dumbbell_spec(sc);

  // requested <= 1 is the sequential partition.
  EXPECT_EQ(make_lp_partition(spec, 1).shards, 1);

  // More source shards than source nodes: clamps, still runs parallel.
  const LpPartition big = make_lp_partition(spec, 8);
  EXPECT_EQ(big.shards, 4);  // 2 client shards + gateway + server
  EXPECT_FALSE(big.note.empty());

  // A zero-delay cut link has no lookahead: must fall back to sequential.
  Scenario zero = Scenario::paper_default();
  zero.num_clients = 4;
  zero.client_delay = 0.0;
  const LpPartition z = make_lp_partition(make_dumbbell_spec(zero), 2);
  EXPECT_EQ(z.shards, 1);
  EXPECT_FALSE(z.note.empty());
}

// ---------------------------------------------------------------------
// Equivalence and determinism of full runs

void append_double(std::ostringstream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf << ';';
}

// Canonical rendering of every packet-timing-derived result field (the
// result_identity_test canon, minus cwnd traces — traced runs clamp to
// one LP anyway).
std::string canon(const ExperimentResult& r) {
  std::ostringstream os;
  append_double(os, r.cov);
  append_double(os, r.mean_per_bin);
  os << r.app_generated << ';' << r.delivered << ';' << r.gw_arrivals << ';'
     << r.gw_drops << ';';
  append_double(os, r.loss_pct);
  os << r.timeouts << ';' << r.fast_retransmits << ';' << r.dupacks << ';'
     << r.retransmits << ';' << r.data_pkts_sent << ';';
  append_double(os, r.timeout_dupack_ratio);
  append_double(os, r.fairness);
  os << r.delay.count() << ';';
  append_double(os, r.delay.mean());
  append_double(os, r.delay.m2());
  append_double(os, r.delay.min());
  append_double(os, r.delay.max());
  os << r.routing_errors << ';';
  return os.str();
}

Scenario small(int clients, Transport t, GatewayQueue q, std::uint64_t seed) {
  Scenario s = Scenario::paper_default();
  s.num_clients = clients;
  s.transport = t;
  s.gateway = q;
  s.duration = 3.0;
  s.warmup = 0.5;
  s.seed = seed;
  return s;
}

TEST(ParallelEquivalence, MatchesSequentialDumbbell) {
  const Scenario sc = small(12, Transport::kReno, GatewayQueue::kRed, 11);
  ExperimentOptions lp1;  // sequential reference (hard-coded dumbbell)
  const ExperimentResult a = run_experiment(sc, lp1);
  for (int shards : {2, 3, 4}) {
    ExperimentOptions opt;
    opt.lp_shards = shards;
    const ExperimentResult b = run_experiment(sc, opt);
    EXPECT_EQ(b.lp_shards, shards) << "request was not honored";
    EXPECT_EQ(canon(a), canon(b)) << "lp=" << shards;
    // The remote delivery event replaces the producer's fused local one
    // 1:1, so the total event count matches the sequential engine
    // exactly — not approximately.
    EXPECT_EQ(a.sim_events, b.sim_events) << "lp=" << shards;
    EXPECT_EQ(static_cast<std::size_t>(shards), b.lp_phases.size());
    std::uint64_t lp_events = 0;
    for (const LpPhase& p : b.lp_phases) lp_events += p.events;
    EXPECT_EQ(lp_events, b.sim_events);
  }
}

TEST(ParallelEquivalence, TracedRunsClampToOneLp) {
  Scenario sc = small(6, Transport::kReno, GatewayQueue::kDropTail, 3);
  ExperimentOptions opt;
  opt.lp_shards = 4;
  opt.trace_clients = {0};
  opt.cwnd_sample_period = 0.1;
  const ExperimentResult r = run_experiment(sc, opt);
  EXPECT_EQ(r.lp_shards, 1);
  EXPECT_TRUE(r.lp_phases.empty());
  ASSERT_EQ(r.cwnd_traces.size(), 1u);
  EXPECT_GT(r.cwnd_traces[0].points().size(), 0u);
}

// Run-to-run bit-identity at a fixed shard count, with a pinned hash so
// any drift in the merge order (which must be a pure function of message
// keys) or in cross-LP RNG fork discipline fails loudly. Re-pin only for
// an intentional semantic change, and document why.
TEST(ParallelDeterminism, Lp2RunIsBitIdenticalAndPinned) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 20;
  sc.duration = 6.0;
  sc.warmup = 1.0;
  sc.seed = 7;
  ExperimentOptions opt;
  opt.lp_shards = 2;
  const ExperimentResult a = run_experiment(sc, opt);
  const ExperimentResult b = run_experiment(sc, opt);
  EXPECT_EQ(canon(a), canon(b)) << "lp=2 run is not deterministic";
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(canon(a))));
  EXPECT_STREQ(buf, "c642f81c921393e7")
      << "lp=2 pinned metrics changed bit-for-bit. If intentional, re-pin "
      << "and document why.";
  // This scenario is result_identity_test's reno_droptail_n20 pin: the
  // parallel run must execute exactly its event count.
  EXPECT_EQ(a.sim_events, 70740u);
}

// Horizon-exchange fuzz: random small dumbbells across transports,
// queues, heterogeneous delays and shard counts, each checked against
// the sequential run as oracle. Any window-protocol bug — lookahead too
// large, a message landing inside a closed window, a merge-order tie
// broken by thread timing — shows up as a metrics or event-count drift.
TEST(ParallelFuzz, RandomScenariosMatchSequentialOracle) {
  std::uint64_t state = 0xB0A710ADULL;
  auto next = [&state](std::uint64_t mod) {
    state = splitmix64(state);
    return state % mod;
  };
  const Transport transports[] = {Transport::kUdp, Transport::kTahoe,
                                  Transport::kReno, Transport::kNewReno,
                                  Transport::kVegas, Transport::kSack};
  const GatewayQueue queues[] = {GatewayQueue::kDropTail, GatewayQueue::kRed,
                                 GatewayQueue::kDrr};
  for (int trial = 0; trial < 10; ++trial) {
    Scenario sc = Scenario::paper_default();
    sc.num_clients = 2 + static_cast<int>(next(11));  // 2..12
    sc.transport = transports[next(6)];
    sc.gateway = queues[next(3)];
    sc.duration = 2.0;
    sc.warmup = 0.25;
    sc.seed = 100 + static_cast<std::uint64_t>(trial);
    sc.client_delay = 0.005 + 0.005 * static_cast<double>(next(4));
    sc.client_delay_spread = next(2) == 0 ? 0.0 : 0.5;
    sc.delayed_ack = next(3) == 0;
    const int shards = 2 + static_cast<int>(next(3));  // 2..4

    ExperimentOptions lp1;
    const ExperimentResult a = run_experiment(sc, lp1);
    ExperimentOptions opt;
    opt.lp_shards = shards;
    const ExperimentResult b = run_experiment(sc, opt);
    EXPECT_EQ(canon(a), canon(b))
        << "trial " << trial << ": n=" << sc.num_clients << " transport="
        << static_cast<int>(sc.transport) << " queue="
        << static_cast<int>(sc.gateway) << " lp=" << shards;
    EXPECT_EQ(a.sim_events, b.sim_events) << "trial " << trial;
  }
}

}  // namespace
}  // namespace burst
