#include "src/topo/parser.hpp"

#include <gtest/gtest.h>

#include <string>

namespace burst {
namespace {

// A minimal valid dumbbell body tests below perturb.
constexpr const char* kGood = R"(scenario t
node client count 4
node gw
node server
link gw server rate 32Mbps delay 20ms queue droptail
link server gw rate 32Mbps delay 20ms
link client gw rate 10Mbps delay 20ms
link gw client rate 10Mbps delay 20ms
flow client server
measure gw server
)";

TopoError expect_fail(const std::string& text,
                      const TopoOverrides& overrides = {}) {
  TopoError err;
  const auto spec = parse_topo(text, "t", &err, overrides);
  EXPECT_FALSE(spec.has_value()) << "unexpectedly parsed:\n" << text;
  return err;
}

TEST(TopoParser, ParsesTheGoodFile) {
  TopoError err;
  const auto spec = parse_topo(kGood, "fallback", &err);
  ASSERT_TRUE(spec.has_value()) << err.render("good");
  EXPECT_EQ(spec->name, "t");
  EXPECT_EQ(spec->total_nodes(), 6);
  EXPECT_EQ(spec->links.size(), 4u);
  EXPECT_EQ(spec->flows.size(), 1u);
  EXPECT_EQ(spec->measure_link, 0);
}

TEST(TopoParser, MalformedStatementCarriesLineAndColumn) {
  const TopoError err = expect_fail(
      "node client count 4\n"
      "nodule gw\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_EQ(err.col, 1);
  EXPECT_NE(err.message.find("nodule"), std::string::npos);
  // render() emits the editor-friendly file:line:col prefix.
  EXPECT_EQ(err.render("x.topo").rfind("x.topo:2:1: ", 0), 0u);
}

TEST(TopoParser, BadNumberPointsAtTheToken) {
  const TopoError err = expect_fail(
      "node client count 4\n"
      "node gw\n"
      "link client gw rate tenMbps delay 20ms\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_EQ(err.col, 21);  // the "tenMbps" token
}

TEST(TopoParser, UnknownQueueTypeIsRejected) {
  const TopoError err = expect_fail(
      "node a\n"
      "node b\n"
      "link a b rate 1Mbps delay 1ms queue codel\n"
      "flow a b\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("codel"), std::string::npos);
  EXPECT_NE(err.message.find("droptail"), std::string::npos);  // suggests
}

TEST(TopoParser, DanglingLinkEndpointIsRejected) {
  const TopoError err = expect_fail(
      "node client count 4\n"
      "node gw\n"
      "link client gateway rate 10Mbps delay 20ms\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("gateway"), std::string::npos);
}

TEST(TopoParser, DuplicateNodeIsRejected) {
  const TopoError err = expect_fail(
      "node client count 4\n"
      "node client\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("client"), std::string::npos);
}

TEST(TopoParser, FlowWithoutRouteIsRejected) {
  // client -> gw exists but nothing reaches server.
  const TopoError err = expect_fail(
      "node client\n"
      "node gw\n"
      "node server\n"
      "link client gw rate 10Mbps delay 20ms queue droptail\n"
      "link gw client rate 10Mbps delay 20ms\n"
      "flow client server\n");
  EXPECT_NE(err.message.find("no route"), std::string::npos);
}

TEST(TopoParser, MissingReverseAckPathIsRejected) {
  const TopoError err = expect_fail(
      "node client\n"
      "node server\n"
      "link client server rate 10Mbps delay 20ms queue droptail\n"
      "flow client server\n");
  EXPECT_NE(err.message.find("ACK"), std::string::npos);
}

TEST(TopoParser, NothingToMeasureIsRejected) {
  const TopoError err = expect_fail(
      "node a\n"
      "node b\n"
      "link a b rate 1Mbps delay 1ms\n"
      "link b a rate 1Mbps delay 1ms\n"
      "flow a b\n");
  EXPECT_NE(err.message.find("measure"), std::string::npos);
}

TEST(TopoParser, RedThresholdOrderingIsValidated) {
  const TopoError err = expect_fail(
      "node a\n"
      "node b\n"
      "link a b rate 1Mbps delay 1ms queue red min 40 max 10\n"
      "link b a rate 1Mbps delay 1ms\n"
      "flow a b\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("threshold"), std::string::npos);
}

TEST(TopoParser, SetAfterGraphStatementIsRejected) {
  const TopoError err = expect_fail(
      "node a\n"
      "set clients 9\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("precede"), std::string::npos);
}

TEST(TopoParser, UnknownDollarFieldIsRejected) {
  const TopoError err = expect_fail(
      "node client count $nope\n");
  EXPECT_EQ(err.line, 1);
  EXPECT_NE(err.message.find("nope"), std::string::npos);
}

TEST(TopoParser, OverridesReshapeTheGraph) {
  TopoError err;
  TopoOverrides overrides{{"clients", "7"}};
  std::string text = kGood;
  text.replace(text.find("count 4"), 7, "count $clients");
  const auto spec = parse_topo(text, "t", &err, overrides);
  ASSERT_TRUE(spec.has_value()) << err.render("t");
  EXPECT_EQ(spec->scenario.num_clients, 7);
  EXPECT_EQ(spec->nodes[0].count, 7);
}

TEST(TopoParser, BadOverrideIsAFileLevelError) {
  const TopoError err = expect_fail(kGood, {{"clients", "zero"}});
  EXPECT_EQ(err.line, 0);
  EXPECT_NE(err.message.find("clients"), std::string::npos);
}

TEST(TopoParser, UnitArithmeticMatchesTheCppHelpers) {
  TopoError err;
  const auto spec = parse_topo(kGood, "t", &err);
  ASSERT_TRUE(spec.has_value());
  // "20ms" and "32Mbps" must be bit-identical to ms(20) and 32e6 — this
  // equality is what makes parsed fingerprints match generated ones.
  EXPECT_EQ(spec->links[0].delay, ms(20));
  EXPECT_EQ(spec->links[0].rate_bps, 32e6);
  EXPECT_EQ(spec->links[2].rate_bps, 10e6);
}

}  // namespace
}  // namespace burst
