#include "src/core/scenario.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(Scenario, PaperDefaultsMatchReconstructedTable1) {
  const Scenario s = Scenario::paper_default();
  EXPECT_DOUBLE_EQ(s.client_bw_bps, 10e6);
  EXPECT_DOUBLE_EQ(s.client_delay, 0.020);
  EXPECT_DOUBLE_EQ(s.bottleneck_bw_bps, 32e6);
  EXPECT_DOUBLE_EQ(s.bottleneck_delay, 0.020);
  EXPECT_DOUBLE_EQ(s.advertised_window, 20.0);
  EXPECT_EQ(s.gateway_buffer, 50u);
  EXPECT_EQ(s.payload_bytes, 1000);
  EXPECT_DOUBLE_EQ(s.mean_interarrival, 0.01);
  EXPECT_DOUBLE_EQ(s.duration, 20.0);
  EXPECT_DOUBLE_EQ(s.red_min_th, 10.0);
  EXPECT_DOUBLE_EQ(s.red_max_th, 40.0);
  EXPECT_DOUBLE_EQ(s.vegas.alpha, 1.0);
  EXPECT_DOUBLE_EQ(s.vegas.beta, 3.0);
  EXPECT_DOUBLE_EQ(s.vegas.gamma, 1.0);
}

TEST(Scenario, DerivedQuantities) {
  const Scenario s = Scenario::paper_default();
  EXPECT_DOUBLE_EQ(s.rtt_prop(), 0.080);
  EXPECT_EQ(s.wire_bytes(), 1040);
  EXPECT_NEAR(s.bottleneck_pps(), 3846.15, 0.01);
  // The paper's crossover: saturation between 38 and 39 clients.
  EXPECT_GT(s.saturation_clients(), 38.0);
  EXPECT_LT(s.saturation_clients(), 39.0);
}

TEST(Scenario, OfferedLoadAndUtilization) {
  Scenario s = Scenario::paper_default();
  s.num_clients = 20;
  EXPECT_DOUBLE_EQ(s.offered_pps(), 2000.0);
  EXPECT_LT(s.utilization(), 1.0);
  s.num_clients = 39;
  EXPECT_GT(s.utilization(), 1.0);
}

TEST(Scenario, RedConfigDerivation) {
  const Scenario s = Scenario::paper_default();
  const RedConfig red = s.red_config();
  EXPECT_DOUBLE_EQ(red.min_th, 10.0);
  EXPECT_DOUBLE_EQ(red.max_th, 40.0);
  EXPECT_EQ(red.capacity, 50u);
  EXPECT_NEAR(red.mean_pkt_tx_time, 1040 * 8.0 / 32e6, 1e-12);
}

TEST(Scenario, Labels) {
  Scenario s = Scenario::paper_default();
  s.num_clients = 40;
  EXPECT_EQ(s.label(), "Reno N=40");
  s.gateway = GatewayQueue::kRed;
  EXPECT_EQ(s.label(), "Reno/RED N=40");
  s.delayed_ack = true;
  EXPECT_EQ(s.label(), "Reno/DelAck/RED N=40");
  s.transport = Transport::kVegas;
  s.delayed_ack = false;
  s.gateway = GatewayQueue::kDropTail;
  EXPECT_EQ(s.label(), "Vegas N=40");
}

TEST(Scenario, TransportNames) {
  EXPECT_EQ(to_string(Transport::kUdp), "UDP");
  EXPECT_EQ(to_string(Transport::kTahoe), "Tahoe");
  EXPECT_EQ(to_string(Transport::kReno), "Reno");
  EXPECT_EQ(to_string(Transport::kNewReno), "NewReno");
  EXPECT_EQ(to_string(Transport::kVegas), "Vegas");
  EXPECT_EQ(to_string(GatewayQueue::kDropTail), "FIFO");
  EXPECT_EQ(to_string(GatewayQueue::kRed), "RED");
}

}  // namespace
}  // namespace burst
