// ECN end-to-end: RED marking, sink echo, sender reaction.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/net/red_queue.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_vegas.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::TcpHarness;

RedConfig marking_config() {
  RedConfig cfg;
  cfg.min_th = 2;
  cfg.max_th = 60;   // keep marking (not hard-drop) in play
  cfg.max_p = 1.0;   // aggressive marking once above min_th
  cfg.weight = 1.0;  // EWMA == instantaneous queue
  cfg.capacity = 10000;
  cfg.ecn = true;
  return cfg;
}

Packet data(bool ect) {
  Packet p;
  p.size_bytes = 1040;
  p.ecn_capable = ect;
  return p;
}

TEST(Ecn, RedMarksCapablePacketsInsteadOfDropping) {
  RedQueue q(marking_config(), Random(1));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.enqueue(data(true), 0.0));
  EXPECT_EQ(q.stats().drops, 0u);
  EXPECT_GT(q.marks(), 0u);
  // Marked packets come out marked.
  bool saw_mark = false;
  while (auto p = q.dequeue(0.0)) saw_mark |= p->ecn_marked;
  EXPECT_TRUE(saw_mark);
}

TEST(Ecn, RedStillDropsNonCapablePackets) {
  RedQueue q(marking_config(), Random(1));
  int accepted = 0;
  for (int i = 0; i < 50; ++i) accepted += q.enqueue(data(false), 0.0);
  EXPECT_LT(accepted, 50);
  EXPECT_GT(q.stats().early_drops, 0u);
  EXPECT_EQ(q.marks(), 0u);
}

TEST(Ecn, SenderSetsEctOnlyWhenConfigured) {
  TcpHarness h;
  std::vector<bool> ect_seen;
  h.ab.queue().taps().add_arrival_listener(
      [&](const Packet& p, Time) { ect_seen.push_back(p.ecn_capable); });
  TcpConfig cfg;
  cfg.ecn = true;
  auto* s = h.make_sender<TcpReno>(cfg);
  s->app_send(3);
  h.sim.run();
  ASSERT_FALSE(ect_seen.empty());
  for (bool e : ect_seen) EXPECT_TRUE(e);
}

TEST(Ecn, EchoTravelsBackAndCutsWindow) {
  // Mark every data packet at the forward queue by hand and confirm the
  // sender reduces its window without any loss.
  TcpHarness h;
  TcpConfig cfg;
  cfg.ecn = true;
  auto* s = h.make_sender<TcpReno>(cfg);
  // Deliver marked copies directly to the sink.
  h.ab.set_receiver([&h](const Packet& p) {
    Packet marked = p;
    if (marked.type == PacketType::kData) marked.ecn_marked = true;
    h.b.receive(marked);
  });
  s->app_send(60);
  h.sim.run(3.0);
  EXPECT_GT(s->stats().ecn_echoes, 0u);
  EXPECT_GT(s->stats().ecn_reductions, 0u);
  EXPECT_EQ(h.ab.queue().stats().drops, 0u);
  EXPECT_EQ(s->stats().retransmits, 0u);  // cut without loss
  // Rate limiting: roughly one reduction per RTT over the 3 s run, far
  // fewer than the per-ACK echo count.
  EXPECT_LT(s->stats().ecn_reductions, 40u);
  EXPECT_LT(s->stats().ecn_reductions, s->stats().ecn_echoes / 2);
  h.sim.run(30.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 60);
}

TEST(Ecn, EndToEndRenoRedEcnReducesLoss) {
  Scenario base = Scenario::paper_default();
  base.num_clients = 45;
  base.transport = Transport::kReno;
  base.gateway = GatewayQueue::kRed;
  base.duration = 10.0;
  const auto without = run_experiment(base);
  Scenario with_ecn = base;
  with_ecn.ecn = true;
  const auto with = run_experiment(with_ecn);
  EXPECT_LT(with.loss_pct, without.loss_pct);
  EXPECT_GT(with.delivered, without.delivered);
  EXPECT_LT(with.timeouts, without.timeouts);
}

TEST(Ecn, VegasReactsGentlyToMarks) {
  TcpHarness h;
  TcpConfig cfg;
  cfg.ecn = true;
  auto* s = h.make_sender<TcpVegas>(cfg);
  h.ab.set_receiver([&h](const Packet& p) {
    Packet marked = p;
    if (marked.type == PacketType::kData) marked.ecn_marked = true;
    h.b.receive(marked);
  });
  s->app_send(60);
  h.sim.run(30.0);
  EXPECT_GT(s->stats().ecn_reductions, 0u);
  EXPECT_EQ(h.sink->rcv_nxt(), 60);
  EXPECT_GE(s->cwnd(), 2.0);
}

}  // namespace
}  // namespace burst
