// RFC 3042 limited transmit: on the first two duplicate ACKs a new
// segment goes out, keeping the ACK clock alive so tail-ish losses can
// reach the three-dup-ACK threshold instead of waiting for the RTO.
#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TcpConfig lt_config() {
  TcpConfig cfg;
  cfg.limited_transmit = true;
  return cfg;
}

TEST(LimitedTransmit, SendsNewDataOnEarlyDupacks) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>(lt_config());
  s->app_send(12);
  h.sim.run(1.0);
  // Create a loss with limited follow-up data: the two limited-transmit
  // segments are what push the dup-ACK count to three.
  s->app_send(14);
  h.sim.run(30.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 26);
}

TEST(LimitedTransmit, ReducesTimeoutsAcrossSeeds) {
  std::uint64_t with = 0, without = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    LinkParams fwd;
    fwd.queue_capacity = 5;
    {
      TcpHarness h(seed, fwd);
      auto* s = h.make_sender<TcpReno>(lt_config());
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(20);
      h.sim.run(60.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 35);
      with += s->stats().timeouts;
    }
    {
      TcpHarness h(seed, fwd);
      auto* s = h.make_sender<TcpReno>();
      s->app_send(15);
      h.sim.run(1.0);
      s->app_send(20);
      h.sim.run(60.0);
      EXPECT_EQ(h.sink->rcv_nxt(), 35);
      without += s->stats().timeouts;
    }
  }
  EXPECT_LE(with, without);
}

TEST(LimitedTransmit, RespectsWindowBound) {
  // flight may exceed the window by at most 2 (the limited transmits).
  LinkParams fwd;
  fwd.queue_capacity = 4;
  TcpHarness h(3, fwd);
  auto* s = h.make_sender<TcpReno>(lt_config());
  s->app_send(200);
  double worst_excess = 0.0;
  for (int i = 0; i < 4000; ++i) {
    h.sim.run(h.sim.now() + 0.01);
    const double wnd =
        std::min(s->cwnd(), s->config().advertised_window);
    worst_excess =
        std::max(worst_excess, static_cast<double>(s->flight()) - wnd);
  }
  // Right after a multiplicative decrease, flight legitimately exceeds
  // the *shrunken* window until ACKs drain the pipe; limited transmit
  // adds at most two more segments. The invariant is "bounded by a small
  // constant", not a flood of unclocked data.
  EXPECT_LE(worst_excess, 6.0);
  h.sim.run(300.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 200);
}

TEST(LimitedTransmit, OffByDefault) {
  TcpConfig cfg;
  EXPECT_FALSE(cfg.limited_transmit);
}

}  // namespace
}  // namespace burst
