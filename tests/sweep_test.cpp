#include "src/core/sweep.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

Scenario quick_base() {
  Scenario s = Scenario::paper_default();
  s.duration = 4.0;
  s.warmup = 1.0;
  return s;
}

TEST(Sweep, RangeHelper) {
  EXPECT_EQ(range(1, 5), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(range(10, 30, 10), (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(range(5, 4), (std::vector<int>{}));
}

TEST(Sweep, PaperProtocolSet) {
  const auto configs = paper_protocol_set();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0].name, "UDP");
  EXPECT_EQ(configs[5].name, "Reno/DelayAck");
  const auto no_udp = paper_protocol_set(false);
  ASSERT_EQ(no_udp.size(), 5u);
  EXPECT_EQ(no_udp[0].name, "Reno");
}

TEST(Sweep, ConfigsApplyCorrectly) {
  const auto configs = paper_protocol_set();
  Scenario s = quick_base();
  configs[2].apply(s);  // Reno/RED
  EXPECT_EQ(s.transport, Transport::kReno);
  EXPECT_EQ(s.gateway, GatewayQueue::kRed);
  Scenario v = quick_base();
  configs[5].apply(v);  // Reno/DelayAck
  EXPECT_TRUE(v.delayed_ack);
}

TEST(Sweep, ProducesAllSeriesAndPoints) {
  const auto series = sweep_clients(quick_base(), {5, 15},
                                    paper_protocol_set());
  ASSERT_EQ(series.size(), 6u);
  for (const auto& s : series) {
    ASSERT_EQ(s.points.size(), 2u);
    EXPECT_EQ(s.points[0].num_clients, 5);
    EXPECT_EQ(s.points[1].num_clients, 15);
    EXPECT_GT(s.points[0].result.delivered, 0u);
  }
}

TEST(Sweep, ParallelMatchesConfigOrder) {
  const auto configs = paper_protocol_set();
  const auto series = sweep_clients(quick_base(), {8}, configs);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(series[i].name, configs[i].name);
  }
}

TEST(Sweep, DeterministicAcrossRuns) {
  const auto a = sweep_clients(quick_base(), {10}, paper_protocol_set(false));
  const auto b = sweep_clients(quick_base(), {10}, paper_protocol_set(false));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].points[0].result.delivered,
              b[i].points[0].result.delivered);
    EXPECT_DOUBLE_EQ(a[i].points[0].result.cov, b[i].points[0].result.cov);
  }
}

TEST(Sweep, UdpLossGrowsWithClients) {
  std::vector<SweepConfig> udp_only{
      {"UDP", [](Scenario& s) { s.transport = Transport::kUdp; }}};
  const auto series = sweep_clients(quick_base(), {20, 45, 60}, udp_only);
  const auto& pts = series[0].points;
  EXPECT_LT(pts[0].result.loss_pct, 0.5);
  EXPECT_GT(pts[2].result.loss_pct, pts[1].result.loss_pct);
  EXPECT_GT(pts[1].result.loss_pct, 1.0);
}

}  // namespace
}  // namespace burst
