#include "src/app/trace_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/dumbbell.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/stats/binned_counter.hpp"

namespace burst {
namespace {

// Minimal recording agent (same pattern as sources_test).
struct RecordingAgent : Agent {
  std::vector<Time> sends;
  RecordingAgent(Simulator& sim, Node& node)
      : Agent(sim, node, 0, 0) {}
  void app_send(int packets) override {
    for (int i = 0; i < packets; ++i) sends.push_back(sim_.now());
  }
  void handle(const Packet&) override {}
};

TEST(TraceSource, ReplaysExactTimes) {
  Simulator sim(1);
  Node node(0);
  RecordingAgent agent(sim, node);
  TraceSource src(sim, agent, {0.5, 1.25, 2.0});
  src.start();
  sim.run(10.0);
  ASSERT_EQ(agent.sends.size(), 3u);
  EXPECT_DOUBLE_EQ(agent.sends[0], 0.5);
  EXPECT_DOUBLE_EQ(agent.sends[1], 1.25);
  EXPECT_DOUBLE_EQ(agent.sends[2], 2.0);
  EXPECT_EQ(src.generated(), 3u);
}

TEST(TraceSource, SortsUnorderedInput) {
  Simulator sim(1);
  Node node(0);
  RecordingAgent agent(sim, node);
  TraceSource src(sim, agent, {2.0, 0.5, 1.0});
  src.start();
  sim.run(10.0);
  ASSERT_EQ(agent.sends.size(), 3u);
  EXPECT_DOUBLE_EQ(agent.sends[0], 0.5);
}

TEST(TraceSource, StopHaltsReplay) {
  Simulator sim(1);
  Node node(0);
  RecordingAgent agent(sim, node);
  TraceSource src(sim, agent, {0.5, 1.5, 2.5});
  src.start();
  sim.run(1.0);
  src.stop();
  sim.run(10.0);
  EXPECT_EQ(agent.sends.size(), 1u);
}

TEST(TraceSource, SkipsPastEntriesWhenStartedLate) {
  Simulator sim(1);
  Node node(0);
  RecordingAgent agent(sim, node);
  TraceSource src(sim, agent, {0.5, 1.5, 2.5});
  sim.schedule(1.0, [&] { src.start(); });
  sim.run(10.0);
  ASSERT_EQ(agent.sends.size(), 2u);  // 0.5 is in the past at start
  EXPECT_DOUBLE_EQ(agent.sends[0], 1.5);
}

TEST(TraceSource, EmptyTraceIsHarmless) {
  Simulator sim(1);
  Node node(0);
  RecordingAgent agent(sim, node);
  TraceSource src(sim, agent, {});
  src.start();
  sim.run(1.0);
  EXPECT_EQ(src.generated(), 0u);
}

TEST(ArrivalTraceRecorder, CapturesQueueArrivals) {
  DropTailQueue q(100);
  ArrivalTraceRecorder rec(q);
  Packet d;
  d.size_bytes = 1040;
  q.enqueue(d, 1.5);
  q.enqueue(d, 2.5);
  Packet a;
  a.type = PacketType::kAck;
  q.enqueue(a, 3.0);  // ACKs ignored
  ASSERT_EQ(rec.times().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.times()[0], 1.5);
  EXPECT_DOUBLE_EQ(rec.times()[1], 2.5);
}

TEST(ArrivalTraceRecorder, SaveLoadRoundTrip) {
  DropTailQueue q(100);
  ArrivalTraceRecorder rec(q);
  Packet d;
  d.size_bytes = 1040;
  for (int i = 0; i < 5; ++i) q.enqueue(d, 0.25 * i);
  const std::string path = ::testing::TempDir() + "/burst_trace_io.txt";
  rec.save(path);
  const auto loaded = ArrivalTraceRecorder::load(path);
  ASSERT_EQ(loaded.size(), rec.times().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded[i], rec.times()[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(TraceIntegration, RecordedGatewayTraceReplaysWithSameShape) {
  // Record the gateway arrival process of a live Reno run, then replay it
  // through a fresh UDP dumbbell: the replayed aggregate must preserve
  // the recorded burstiness (same c.o.v. of the offered process).
  Scenario sc = Scenario::paper_default();
  sc.transport = Transport::kReno;
  sc.num_clients = 40;
  sc.duration = 10.0;

  std::vector<Time> recorded;
  {
    Simulator sim(sc.seed);
    Dumbbell net(sim, sc);
    ArrivalTraceRecorder rec(net.bottleneck_queue());
    net.start_sources();
    sim.run(sc.duration);
    recorded = rec.times();
  }
  ASSERT_GT(recorded.size(), 10000u);

  BinnedCounter original(sc.rtt_prop(), sc.warmup);
  for (Time t : recorded) original.record(t);

  // Replay through one UDP client on an *uncongested* dumbbell and verify
  // the offered process reaching the gateway keeps its c.o.v.
  Scenario replay_sc = sc;
  replay_sc.transport = Transport::kUdp;
  replay_sc.num_clients = 1;
  replay_sc.bottleneck_bw_bps = 1e9;  // no shaping on replay
  replay_sc.client_bw_bps = 1e9;
  Simulator sim(99);
  Dumbbell net(sim, replay_sc);
  BinnedCounter replayed(sc.rtt_prop(), sc.warmup);
  net.bottleneck_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time now) {
        if (p.type == PacketType::kData) replayed.record(now);
      });
  TraceSource src(sim, net.sender(0), recorded);
  src.start();
  sim.run(sc.duration);

  const double cov_orig = original.stats_until(sc.duration).cov();
  const double cov_replay = replayed.stats_until(sc.duration).cov();
  EXPECT_NEAR(cov_replay, cov_orig, 0.1 * cov_orig);
}

}  // namespace
}  // namespace burst
