#include "src/obs/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/net/link.hpp"
#include "src/run/result_store.hpp"
#include "src/sim/simulator.hpp"

namespace burst {
namespace {

Packet data(FlowId flow, std::int64_t seq, int bytes = 1000) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TraceRecord record(TraceEventType type, Time t, double value = 0.0) {
  TraceRecord r;
  r.type = type;
  r.time = t;
  r.value = value;
  return r;
}

TEST(TraceSink, RingOverwritesOldestAndCounts) {
  TraceSink sink(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    sink.emit(record(TraceEventType::kSourceEmit, static_cast<Time>(i), i));
  }
  EXPECT_EQ(sink.emitted(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.size(), 4u);
  const std::vector<TraceRecord> got = sink.ordered();
  ASSERT_EQ(got.size(), 4u);
  // Records 0 and 1 were overwritten; 2..5 survive in time order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)].time, i + 2.0);
  }
}

TEST(TraceSink, OrderedSortsLateEmissionsByTime) {
  TraceSink sink;
  sink.emit(record(TraceEventType::kQueueDrop, 1.0));
  sink.emit(record(TraceEventType::kQueueDrop, 3.0));
  // A lazily-closed aggregate (FlowMonitor's final congestion event) is
  // emitted after later records but carries the cluster's start time.
  sink.emit(record(TraceEventType::kCongestionEvent, 2.0));
  const std::vector<TraceRecord> got = sink.ordered();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0].time, 1.0);
  EXPECT_DOUBLE_EQ(got[1].time, 2.0);
  EXPECT_EQ(got[1].type, TraceEventType::kCongestionEvent);
  EXPECT_DOUBLE_EQ(got[2].time, 3.0);
}

TEST(TraceSink, RegisterSiteDeduplicatesAndInternsStates) {
  TraceSink sink;
  const std::uint8_t a = sink.register_site("queue:gateway");
  const std::uint8_t b = sink.register_site("link:bottleneck");
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.register_site("queue:gateway"), a);
  EXPECT_EQ(sink.sites()[a], "queue:gateway");

  const std::uint16_t s = sink.intern_state("slow-start");
  EXPECT_EQ(sink.intern_state("slow-start"), s);
  EXPECT_EQ(sink.states()[s], "slow-start");
}

// Golden JSONL export for a hand-built link scenario whose every timestamp
// is exactly representable: 1000-byte packets over an 8000 bps wire
// (tx = 1.0 s) with 0.5 s propagation. Two packets offered at t=0:
// the first transmits immediately, the second waits one transmission.
TEST(TraceExport, JsonlGolden) {
  Simulator sim;
  SimplexLink link(sim, std::make_unique<DropTailQueue>(10),
                   /*bandwidth_bps=*/8000.0, /*prop_delay=*/0.5);
  link.set_receiver([](const Packet&) {});

  TraceSink sink;
  const std::uint8_t qsite = sink.register_site("queue:gateway");
  const std::uint8_t lsite = sink.register_site("link:bottleneck");
  link.queue().set_trace(&sink, qsite);
  link.set_trace(&sink, lsite);

  link.send(data(1, 0));
  link.send(data(2, 1));
  sim.run();

  std::ostringstream os;
  ASSERT_TRUE(sink.write_jsonl(os));
  const std::string expected =
      "{\"t\":0,\"type\":\"queue_enqueue\",\"site\":\"queue:gateway\","
      "\"flow\":1,\"seq\":0,\"value\":1,\"aux\":0,\"detail\":0}\n"
      "{\"t\":0,\"type\":\"queue_dequeue\",\"site\":\"queue:gateway\","
      "\"flow\":1,\"seq\":0,\"value\":0,\"aux\":0,\"detail\":0}\n"
      "{\"t\":0,\"type\":\"queue_enqueue\",\"site\":\"queue:gateway\","
      "\"flow\":2,\"seq\":1,\"value\":1,\"aux\":0,\"detail\":0}\n"
      "{\"t\":1,\"type\":\"queue_dequeue\",\"site\":\"queue:gateway\","
      "\"flow\":2,\"seq\":1,\"value\":0,\"aux\":0,\"detail\":0}\n"
      "{\"t\":1.5,\"type\":\"link_deliver\",\"site\":\"link:bottleneck\","
      "\"flow\":1,\"seq\":0,\"value\":1000,\"aux\":0,\"detail\":0}\n"
      "{\"t\":2.5,\"type\":\"link_deliver\",\"site\":\"link:bottleneck\","
      "\"flow\":2,\"seq\":1,\"value\":1000,\"aux\":0,\"detail\":0}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TraceExport, JsonlStateNameOnCcStateChange) {
  TraceSink sink;
  TraceRecord r = record(TraceEventType::kCcStateChange, 0.25, 4.0);
  r.detail = sink.intern_state("fast-recovery");
  sink.emit(r);
  std::ostringstream os;
  ASSERT_TRUE(sink.write_jsonl(os));
  EXPECT_NE(os.str().find("\"type\":\"cc_state_change\""), std::string::npos);
  EXPECT_NE(os.str().find(",\"state\":\"fast-recovery\"}"),
            std::string::npos);
}

TEST(TraceExport, ChromeTraceStructure) {
  Simulator sim;
  SimplexLink link(sim, std::make_unique<DropTailQueue>(10), 8000.0, 0.5);
  link.set_receiver([](const Packet&) {});
  TraceSink sink;
  link.queue().set_trace(&sink, sink.register_site("queue:gateway"));
  link.set_trace(&sink, sink.register_site("link:bottleneck"));
  link.send(data(1, 0));
  sim.run();

  std::ostringstream os;
  ASSERT_TRUE(sink.write_chrome_trace(os));
  const std::string out = os.str();
  // Opens as a trace-event JSON object, metadata first, and closes the
  // traceEvents array.
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", 0),
            0u);
  EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"qlen queue:gateway\",\"ph\":\"C\""),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"deliver\",\"ph\":\"i\""), std::string::npos);
  // ts is in microseconds: delivery at 1.5 s -> 1500000.
  EXPECT_NE(out.find("\"ts\":1500000"), std::string::npos);
}

// A traced full experiment emits every record in nondecreasing ordered()
// time, covers the expected sites, and sees the transport transitions.
TEST(TraceExperiment, OrderedAgainstSchedulerTime) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  sc.duration = 3.0;
  sc.delayed_ack = true;  // exercises the delayed-ACK sink path too

  TraceSink sink;
  ExperimentOptions opts;
  opts.trace = &sink;
  const ExperimentResult r = run_experiment(sc, opts);

  EXPECT_GT(sink.emitted(), 0u);
  const std::vector<TraceRecord> got = sink.ordered();
  ASSERT_EQ(got.size(), sink.size());
  bool saw_enqueue = false, saw_deliver = false, saw_ack = false;
  bool saw_cwnd = false, saw_emit = false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (i > 0) {
      ASSERT_GE(got[i].time, got[i - 1].time) << "record " << i;
    }
    EXPECT_LE(got[i].time, sc.duration + 1.0);
    saw_enqueue |= got[i].type == TraceEventType::kQueueEnqueue;
    saw_deliver |= got[i].type == TraceEventType::kLinkDeliver;
    saw_ack |= got[i].type == TraceEventType::kSinkAck;
    saw_cwnd |= got[i].type == TraceEventType::kCwndChange;
    saw_emit |= got[i].type == TraceEventType::kSourceEmit;
  }
  EXPECT_TRUE(saw_enqueue);
  EXPECT_TRUE(saw_deliver);
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_cwnd);
  EXPECT_TRUE(saw_emit);
  // Source emissions must match the experiment's own count.
  std::uint64_t emits = 0;
  for (const TraceRecord& rec : got) {
    if (rec.type == TraceEventType::kSourceEmit) ++emits;
  }
  EXPECT_EQ(emits, r.app_generated);

  // The dumbbell registered its fixed sites.
  bool queue_site = false, link_site = false, sink_site = false;
  for (const std::string& s : sink.sites()) {
    queue_site |= s == "queue:gateway";
    link_site |= s == "link:bottleneck";
    sink_site |= s == "sink:server";
  }
  EXPECT_TRUE(queue_site);
  EXPECT_TRUE(link_site);
  EXPECT_TRUE(sink_site);
}

// The observability hard constraint: attaching a TraceSink must not change
// the simulation. Every serialized metric — including the v3 metrics
// snapshot — is bit-identical between a traced and an untraced run.
TEST(TraceExperiment, TracedRunIsBitIdenticalToUntraced) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 20;
  sc.duration = 3.0;

  const ExperimentResult plain = run_experiment(sc);

  TraceSink sink;
  ExperimentOptions opts;
  opts.trace = &sink;
  const ExperimentResult traced = run_experiment(sc, opts);

  EXPECT_GT(sink.emitted(), 0u);
  EXPECT_EQ(result_to_json(plain), result_to_json(traced));
  EXPECT_EQ(plain.metrics, traced.metrics);
}

}  // namespace
}  // namespace burst
