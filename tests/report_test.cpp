#include "src/core/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace burst {
namespace {

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Report, PrintTableAlignsColumns) {
  std::ostringstream os;
  print_table(os, {"a", "long_header"},
              {{"1", "2"}, {"333", "4"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Every line has the same length (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Report, PrintMetricVsClients) {
  SweepSeries s1{"Reno", {}};
  SweepPoint p;
  p.num_clients = 10;
  p.result.cov = 0.5;
  s1.points.push_back(p);
  p.num_clients = 20;
  p.result.cov = 0.25;
  s1.points.push_back(p);

  std::ostringstream os;
  print_metric_vs_clients(os, {s1}, "c.o.v.",
                          [](const ExperimentResult& r) { return r.cov; }, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("c.o.v."), std::string::npos);
  EXPECT_NE(out.find("Reno"), std::string::npos);
  EXPECT_NE(out.find("0.50"), std::string::npos);
  EXPECT_NE(out.find("0.25"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Report, PrintMetricEmptySeriesIsNoOp) {
  std::ostringstream os;
  print_metric_vs_clients(os, {}, "x",
                          [](const ExperimentResult& r) { return r.cov; });
  EXPECT_TRUE(os.str().empty());
}

TEST(Report, PrintCwndTraces) {
  TraceSeries t("client 1");
  t.record(0.0, 1.0);
  t.record(1.0, 2.0);
  t.record(2.0, 4.0);
  std::ostringstream os;
  print_cwnd_traces(os, {t}, 2.0, 0.5, 100);
  const std::string out = os.str();
  EXPECT_NE(out.find("client 1"), std::string::npos);
  EXPECT_NE(out.find("t(s)"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
}

TEST(Report, WriteCsvReportsUnwritablePath) {
  const std::string bad =
      ::testing::TempDir() + "/no_such_dir_for_report_test/out.csv";
  TraceSeries t("cwnd");
  t.record(0.5, 3.25);
  EXPECT_FALSE(write_trace_csv(bad, t));
  EXPECT_FALSE(write_sweep_csv(bad, {},
                               [](const ExperimentResult& r) { return r.cov; }));
}

TEST(Report, WriteTraceCsvRoundTrips) {
  TraceSeries t("cwnd");
  t.record(0.5, 3.25);
  const std::string path = ::testing::TempDir() + "/burst_trace_test.csv";
  EXPECT_TRUE(write_trace_csv(path, t));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string header, row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "time,cwnd");
  EXPECT_EQ(row, "0.5,3.25");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace burst
