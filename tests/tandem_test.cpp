#include "src/core/tandem.hpp"

#include <gtest/gtest.h>

#include "src/stats/binned_counter.hpp"

namespace burst {
namespace {

TandemConfig small(Transport t = Transport::kReno, int clients = 6) {
  TandemConfig cfg;
  cfg.base = Scenario::paper_default();
  cfg.base.transport = t;
  cfg.base.num_clients = clients;
  cfg.base.duration = 5.0;
  return cfg;
}

TEST(Tandem, TrafficFlowsAcrossBothHops) {
  Simulator sim(1);
  Tandem net(sim, small());
  std::uint64_t hop1 = 0, hop2 = 0;
  net.first_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time) { hop1 += p.type == PacketType::kData; });
  net.second_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time) { hop2 += p.type == PacketType::kData; });
  net.start_sources();
  sim.run(5.0);
  EXPECT_GT(net.total_delivered(), 1000u);
  EXPECT_GT(hop1, 1000u);
  EXPECT_GT(hop2, 1000u);
  EXPECT_LE(hop2, hop1);  // hop2 sees only what hop1 forwarded
  EXPECT_EQ(net.routing_errors(), 0u);
}

TEST(Tandem, SecondHopIsTheRateLimit) {
  // Past saturation of the *second* hop, goodput tracks its capacity.
  TandemConfig cfg = small(Transport::kUdp, 42);
  cfg.second_hop_ratio = 0.8;
  Simulator sim(2);
  Tandem net(sim, cfg);
  net.start_sources();
  sim.run(cfg.base.duration);
  const double cap2 =
      cfg.base.bottleneck_pps() * cfg.second_hop_ratio * cfg.base.duration;
  EXPECT_LE(static_cast<double>(net.total_delivered()), 1.01 * cap2);
  EXPECT_GT(static_cast<double>(net.total_delivered()), 0.9 * cap2);
  EXPECT_GT(net.second_queue().stats().drops, 0u);
}

TEST(Tandem, TcpReliabilityHoldsAcrossHops) {
  Simulator sim(3);
  TandemConfig cfg = small(Transport::kReno, 40);
  Tandem net(sim, cfg);
  net.start_sources();
  sim.run(cfg.base.duration);
  for (int i = 0; i < net.num_clients(); ++i) {
    auto* s = net.tcp_sender(i);
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->snd_nxt(), s->snd_una());
  }
  EXPECT_EQ(net.routing_errors(), 0u);
}

TEST(Tandem, UpstreamPacingSmoothsSecondHop) {
  // Departures of hop 1 are serialized at its service rate, so hop 2's
  // arrival c.o.v. cannot exceed hop 1's by much (property used by the
  // multihop ablation).
  TandemConfig cfg = small(Transport::kUdp, 40);
  cfg.base.duration = 20.0;
  Simulator sim(4);
  Tandem net(sim, cfg);
  BinnedCounter b1(cfg.base.rtt_prop(), 2.0), b2(cfg.base.rtt_prop(), 2.0);
  net.first_queue().taps().add_arrival_listener([&](const Packet& p, Time now) {
    if (p.type == PacketType::kData) b1.record(now);
  });
  net.second_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time now) {
        if (p.type == PacketType::kData) b2.record(now);
      });
  net.start_sources();
  sim.run(cfg.base.duration);
  const double cov1 = b1.stats_until(cfg.base.duration).cov();
  const double cov2 = b2.stats_until(cfg.base.duration).cov();
  EXPECT_LT(cov2, cov1 * 1.2 + 0.01);
}

TEST(Tandem, VegasWorksOnTandem) {
  Simulator sim(5);
  TandemConfig cfg = small(Transport::kVegas, 30);
  Tandem net(sim, cfg);
  net.start_sources();
  sim.run(cfg.base.duration);
  EXPECT_GT(net.total_delivered(), 1000u);
  EXPECT_EQ(net.routing_errors(), 0u);
}

}  // namespace
}  // namespace burst
