#include "src/topo/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace burst {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A fast dumbbell: 2 s simulated, short warmup, tiny client counts.
constexpr const char* kMiniTopo = R"(set clients 3
set duration 2
set warmup 0.5
node client count $clients
node gw
node server
link gw server rate $bottleneck_bw delay $bottleneck_delay queue droptail
link server gw rate $bottleneck_bw delay $bottleneck_delay
link client gw rate $client_bw delay $client_delay
link gw client rate $client_bw delay $client_delay
flow client server
measure gw server
)";

// Writes the mini topology + a two-axis campaign over it; returns the
// parsed campaign spec.
TopoCampaignSpec mini_campaign(const std::string& dir) {
  {
    std::ofstream t(dir + "/mini.topo");
    t << kMiniTopo;
  }
  {
    std::ofstream c(dir + "/mini.camp");
    c << "campaign mini\n"
         "scenario mini.topo\n"
         "metric delivered\n"
         "sweep clients 2 3\n"
         "sweep payload_bytes 500 1000\n";
  }
  TopoCampaignSpec spec;
  TopoError err;
  EXPECT_TRUE(load_camp_file(dir + "/mini.camp", &spec, &err))
      << err.render("mini.camp");
  return spec;
}

TEST(TopoCampaign, ParsesTheCampFormat) {
  const std::string dir = fresh_dir("camp_parse");
  const TopoCampaignSpec spec = mini_campaign(dir);
  EXPECT_EQ(spec.name, "mini");
  EXPECT_EQ(spec.metric, "delivered");
  ASSERT_EQ(spec.scenario_files.size(), 1u);
  EXPECT_EQ(spec.num_points(), 4u);  // 1 file x 2 clients x 2 payloads

  TopoCampaignSpec bad;
  TopoError err;
  EXPECT_FALSE(parse_camp("scenario a.topo\nmetric bogus\n", "x", dir, &bad,
                          &err));
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("bogus"), std::string::npos);
  EXPECT_FALSE(parse_camp("sweep clients 1\n", "x", dir, &bad, &err));
  EXPECT_NE(err.message.find("no scenario"), std::string::npos);
  EXPECT_FALSE(parse_camp("frobnicate\n", "x", dir, &bad, &err));
  EXPECT_EQ(err.line, 1);
}

TEST(TopoCampaign, ColdRunThenFullyCachedRerun) {
  const std::string dir = fresh_dir("camp_cold_warm");
  const TopoCampaignSpec spec = mini_campaign(dir);
  TopoCampaignOptions opts;
  opts.cache_dir = dir + "/cache";
  TopoError err;

  const auto cold = run_topo_campaign(spec, opts, &err);
  ASSERT_TRUE(cold.has_value()) << err.message;
  EXPECT_EQ(cold->stats.planned, 4u);
  EXPECT_EQ(cold->stats.unique, 4u);
  EXPECT_EQ(cold->stats.simulated, 4u);
  EXPECT_EQ(cold->stats.cache_hits, 0u);

  const auto warm = run_topo_campaign(spec, opts, &err);
  ASSERT_TRUE(warm.has_value()) << err.message;
  EXPECT_EQ(warm->stats.cache_hits, 4u);
  EXPECT_EQ(warm->stats.simulated, 0u);
  ASSERT_EQ(warm->points.size(), cold->points.size());
  for (std::size_t i = 0; i < warm->points.size(); ++i) {
    EXPECT_EQ(warm->points[i].key, cold->points[i].key);
    EXPECT_EQ(warm->points[i].seed, cold->points[i].seed);
    // The cache round-trips bit-identically.
    EXPECT_EQ(warm->points[i].result.delivered,
              cold->points[i].result.delivered);
    EXPECT_EQ(warm->points[i].result.cov, cold->points[i].result.cov);
  }
}

TEST(TopoCampaign, TwoConcurrentWorkersSimulateEachPointOnce) {
  const std::string dir = fresh_dir("camp_two_workers");
  const TopoCampaignSpec spec = mini_campaign(dir);
  TopoCampaignOptions opts;
  opts.cache_dir = dir + "/cache";
  opts.threads = 1;
  TopoError errA, errB;
  std::optional<TopoCampaignOutput> outA, outB;
  // Each worker is a full run_topo_campaign with its own store handle on
  // the shared cache — the in-process twin of two burstcamp processes.
  std::thread a([&] { outA = run_topo_campaign(spec, opts, &errA); });
  std::thread b([&] { outB = run_topo_campaign(spec, opts, &errB); });
  a.join();
  b.join();
  ASSERT_TRUE(outA.has_value()) << errA.message;
  ASSERT_TRUE(outB.has_value()) << errB.message;
  // The claim protocol's core guarantee: across both workers every unique
  // point was simulated exactly once, however the race interleaved.
  EXPECT_EQ(outA->stats.simulated + outB->stats.simulated, 4u);
  // And both workers ended with the full, identical result set.
  ASSERT_EQ(outA->points.size(), 4u);
  ASSERT_EQ(outB->points.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(outA->points[i].key, outB->points[i].key);
    EXPECT_EQ(outA->points[i].result.delivered,
              outB->points[i].result.delivered);
    EXPECT_EQ(outA->points[i].result.cov, outB->points[i].result.cov);
  }
}

TEST(TopoCampaign, ResumesPastADeadWorkersClaim) {
  const std::string dir = fresh_dir("camp_resume");
  const TopoCampaignSpec spec = mini_campaign(dir);
  TopoCampaignOptions opts;
  opts.cache_dir = dir + "/cache";
  TopoError err;
  // Plant the wreckage of a worker killed mid-simulation: a claim file
  // owned by a pid that no longer exists.
  {
    const auto probe = run_topo_campaign(spec, {}, &err);  // no cache: keys
    ASSERT_TRUE(probe.has_value());
    fs::create_directories(dir + "/cache/claims");
    std::ofstream claim(dir + "/cache/claims/" +
                        probe->points[0].key.hex() + ".claim");
    claim << "pid 99999999\n";  // beyond pid_max: guaranteed dead
  }
  const auto resumed = run_topo_campaign(spec, opts, &err);
  ASSERT_TRUE(resumed.has_value()) << err.message;
  // The stale claim was stolen, not waited on: all four points ran.
  EXPECT_EQ(resumed->stats.simulated, 4u);
}

TEST(TopoCampaign, CsvCarriesTheScenarioColumnPerRow) {
  const std::string dir = fresh_dir("camp_csv");
  TopoCampaignSpec spec = mini_campaign(dir);
  // Second topology so the CSV mixes rows from two scenario files.
  {
    std::ofstream t(dir + "/mini2.topo");
    t << kMiniTopo;
  }
  spec.scenario_files.push_back(dir + "/mini2.topo");
  spec.sweeps.pop_back();  // just the clients axis: 2 files x 2 = 4 points
  TopoCampaignOptions opts;
  opts.artifact_dir = dir + "/out";
  TopoError err;
  const auto out = run_topo_campaign(spec, opts, &err);
  ASSERT_TRUE(out.has_value()) << err.message;
  ASSERT_FALSE(out->csv_path.empty());

  std::ifstream csv(out->csv_path);
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_EQ(header, "scenario,label,key,seed,clients,clients,delivered");
  int mini = 0, mini2 = 0;
  for (std::string line; std::getline(csv, line);) {
    if (line.rfind("mini,", 0) == 0) ++mini;
    if (line.rfind("mini2,", 0) == 0) ++mini2;
  }
  EXPECT_EQ(mini, 2);
  EXPECT_EQ(mini2, 2);
  // Same graph, but seeds are derived per (scenario, label), so the two
  // files' points stay distinct simulations.
  EXPECT_EQ(out->stats.planned, 4u);
  EXPECT_EQ(out->stats.unique, 4u);
}

TEST(TopoCampaign, SeedsAreValueKeyedNotOrderKeyed) {
  const std::string dir = fresh_dir("camp_seeds");
  TopoCampaignSpec spec = mini_campaign(dir);
  TopoCampaignSpec reversed = spec;
  std::reverse(reversed.sweeps[0].values.begin(),
               reversed.sweeps[0].values.end());
  TopoError err;
  const auto a = run_topo_campaign(spec, {}, &err);
  const auto b = run_topo_campaign(reversed, {}, &err);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  for (const TopoCampaignPoint& pa : a->points) {
    bool found = false;
    for (const TopoCampaignPoint& pb : b->points) {
      if (pb.label == pa.label) {
        found = true;
        EXPECT_EQ(pb.seed, pa.seed);
        EXPECT_EQ(pb.key, pa.key);
      }
    }
    EXPECT_TRUE(found) << pa.label;
  }
}

}  // namespace
}  // namespace burst
