// Traffic-generator tests: Poisson statistics, CBR regularity, Pareto
// heavy tails, bulk semantics.
#include <gtest/gtest.h>

#include <memory>

#include "src/app/bulk_source.hpp"
#include "src/app/cbr_source.hpp"
#include "src/app/pareto_on_off_source.hpp"
#include "src/app/poisson_source.hpp"
#include "src/net/drop_tail_queue.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/transport/udp.hpp"

namespace burst {
namespace {

// A minimal agent that records app_send times.
struct RecordingAgent : Agent {
  std::vector<Time> sends;
  RecordingAgent(Simulator& sim, Node& node)
      : Agent(sim, node, /*flow=*/0, /*peer=*/0) {}
  void app_send(int packets) override {
    for (int i = 0; i < packets; ++i) sends.push_back(sim_.now());
  }
  void handle(const Packet&) override {}
};

struct SourceHarness {
  Simulator sim{1};
  Node node{0};
  RecordingAgent agent{sim, node};
};

TEST(PoissonSource, MeanRateMatches) {
  SourceHarness h;
  PoissonSource src(h.sim, h.agent, 0.01, h.sim.rng().fork());
  src.start();
  h.sim.run(100.0);
  // 100 pkt/s over 100 s -> ~10000, sigma = 100.
  EXPECT_NEAR(static_cast<double>(src.generated()), 10000.0, 400.0);
  EXPECT_EQ(src.generated(), h.agent.sends.size());
}

TEST(PoissonSource, InterarrivalsAreExponential) {
  SourceHarness h;
  PoissonSource src(h.sim, h.agent, 0.05, h.sim.rng().fork());
  src.start();
  h.sim.run(500.0);
  ASSERT_GT(h.agent.sends.size(), 1000u);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t i = 1; i < h.agent.sends.size(); ++i) {
    const double d = h.agent.sends[i] - h.agent.sends[i - 1];
    sum += d;
    sum_sq += d * d;
  }
  const auto n = static_cast<double>(h.agent.sends.size() - 1);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.05, 0.005);
  // Exponential: cov of interarrivals = 1.
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.1);
}

TEST(PoissonSource, StopHalts) {
  SourceHarness h;
  PoissonSource src(h.sim, h.agent, 0.01, h.sim.rng().fork());
  src.start();
  h.sim.run(1.0);
  src.stop();
  const auto n = src.generated();
  h.sim.run(10.0);
  EXPECT_EQ(src.generated(), n);
}

TEST(PoissonSource, AggregateOfManySourcesSmooths) {
  // The Central Limit property the paper leans on: c.o.v. of per-window
  // counts falls as 1/sqrt(N) when N independent sources are aggregated.
  auto run_agg = [](int n_sources) {
    Simulator sim(7);
    Node node(0);
    RecordingAgent agent(sim, node);
    std::vector<std::unique_ptr<PoissonSource>> sources;
    for (int i = 0; i < n_sources; ++i) {
      sources.push_back(std::make_unique<PoissonSource>(sim, agent, 0.01,
                                                        sim.rng().fork()));
      sources.back()->start();
    }
    sim.run(50.0);
    BinnedCounter bins(0.08);
    for (Time t : agent.sends) bins.record(t);
    return bins.stats_until(50.0).cov();
  };
  const double cov4 = run_agg(4);
  const double cov64 = run_agg(64);
  EXPECT_NEAR(cov4 / cov64, 4.0, 1.2);  // sqrt(64/4) = 4
}

TEST(CbrSource, ExactlyPeriodic) {
  SourceHarness h;
  CbrSource src(h.sim, h.agent, 0.25);
  src.start();
  h.sim.run(2.0);
  // Packets at 0.25, 0.5, ..., 2.0.
  ASSERT_EQ(h.agent.sends.size(), 8u);
  for (std::size_t i = 0; i < h.agent.sends.size(); ++i) {
    EXPECT_NEAR(h.agent.sends[i], 0.25 * static_cast<double>(i + 1), 1e-9);
  }
}

TEST(CbrSource, StopHalts) {
  SourceHarness h;
  CbrSource src(h.sim, h.agent, 0.1);
  src.start();
  h.sim.run(1.0);
  src.stop();
  h.sim.run(5.0);
  EXPECT_EQ(src.generated(), 10u);
}

TEST(ParetoOnOffSource, GeneratesBurstsAndIdles) {
  SourceHarness h;
  ParetoOnOffConfig cfg;
  cfg.on_rate_pps = 100.0;
  cfg.mean_on = 0.2;
  cfg.mean_off = 0.2;
  ParetoOnOffSource src(h.sim, h.agent, cfg, h.sim.rng().fork());
  src.start();
  h.sim.run(200.0);
  // ~half the time on at 100 pps -> ~10000 packets, heavy-tailed spread.
  EXPECT_GT(src.generated(), 3000u);
  EXPECT_LT(src.generated(), 18000u);
  // Idle gaps longer than 10 ticks must exist (off periods).
  int long_gaps = 0;
  for (std::size_t i = 1; i < h.agent.sends.size(); ++i) {
    if (h.agent.sends[i] - h.agent.sends[i - 1] > 0.1) ++long_gaps;
  }
  EXPECT_GT(long_gaps, 10);
}

TEST(ParetoOnOffSource, BurstierThanPoissonAtSameRate) {
  // Compare c.o.v. of binned counts at matched average rate.
  SourceHarness hp;
  PoissonSource pois(hp.sim, hp.agent, 0.02, hp.sim.rng().fork());
  pois.start();
  hp.sim.run(200.0);
  BinnedCounter pb(0.5);
  for (Time t : hp.agent.sends) pb.record(t);

  SourceHarness ha;
  ParetoOnOffConfig cfg;  // mean rate = 20 pps * duty 0.5 = 10pps... scale:
  cfg.on_rate_pps = 100.0;
  cfg.mean_on = 0.5;
  cfg.mean_off = 0.5;
  ParetoOnOffSource par(ha.sim, ha.agent, cfg, ha.sim.rng().fork());
  par.start();
  ha.sim.run(200.0);
  BinnedCounter ab(0.5);
  for (Time t : ha.agent.sends) ab.record(t);

  EXPECT_GT(ab.stats_until(200.0).cov(), 1.5 * pb.stats_until(200.0).cov());
}

TEST(ParetoOnOffSource, OnDurationMeanMatchesConfig) {
  // The OFF transition fires at the sampled ON end *exactly*; the old
  // code waited for the next packet tick, stretching every burst by up
  // to 1/on_rate_pps (here 50 ms — a +10% bias on a 0.5 s mean that this
  // tolerance would catch).
  SourceHarness h;
  ParetoOnOffConfig cfg;
  cfg.shape = 2.5;  // finite variance so the sample mean converges fast
  cfg.mean_on = 0.5;
  cfg.mean_off = 0.1;
  cfg.on_rate_pps = 20.0;
  ParetoOnOffSource src(h.sim, h.agent, cfg, h.sim.rng().fork());
  src.start();
  h.sim.run(3000.0);
  ASSERT_GT(src.completed_on_periods(), 2000u);
  EXPECT_NEAR(src.mean_on_duration(), cfg.mean_on, 0.03);
}

TEST(ParetoOnOffSource, StopNeverCancelsRetiredHandles) {
  // Trampolines clear next_event_ as they fire, so stop() — at any
  // instant, ON or OFF — only ever cancels a live event. A cancel
  // against a retired generation would bump the scheduler's
  // stale-cancel counter.
  SourceHarness h;
  ParetoOnOffConfig cfg;
  cfg.mean_on = 0.05;
  cfg.mean_off = 0.05;
  cfg.on_rate_pps = 200.0;
  ParetoOnOffSource src(h.sim, h.agent, cfg, h.sim.rng().fork());
  for (int i = 0; i < 50; ++i) {
    src.start();
    h.sim.run(h.sim.now() + 0.037 * (i + 1));
    src.stop();
    h.sim.run(h.sim.now() + 0.01);
  }
  EXPECT_EQ(h.sim.scheduler().stale_cancels(), 0u);
}

TEST(SourceHygiene, StopAfterDrainIsNotStale) {
  // Every source type: run to completion (event fired, nothing pending),
  // then stop(). With the fired handle cleared in the trampoline, none
  // of these stops touches the scheduler at all.
  SourceHarness h;
  PoissonSource pois(h.sim, h.agent, 0.01, h.sim.rng().fork());
  CbrSource cbr(h.sim, h.agent, 0.1);
  ParetoOnOffConfig cfg;
  ParetoOnOffSource par(h.sim, h.agent, cfg, h.sim.rng().fork());
  pois.start();
  cbr.start();
  par.start();
  h.sim.run(5.0);
  pois.stop();
  cbr.stop();
  par.stop();
  h.sim.run(10.0);
  pois.stop();  // double-stop: handle already cleared, still not stale
  cbr.stop();
  par.stop();
  EXPECT_EQ(h.sim.scheduler().stale_cancels(), 0u);
}

TEST(BulkSource, SubmitsAllAtOnce) {
  SourceHarness h;
  BulkSource src(h.sim, h.agent, 500);
  src.start();
  EXPECT_EQ(src.generated(), 500u);
  EXPECT_EQ(h.agent.sends.size(), 500u);
  EXPECT_DOUBLE_EQ(h.agent.sends.back(), 0.0);
}

TEST(BulkSource, GreedyIsEffectivelyUnbounded) {
  SourceHarness h;
  BulkSource src(h.sim, h.agent, 0);
  src.start();
  EXPECT_GT(src.generated(), 1000000u);
}

}  // namespace
}  // namespace burst
