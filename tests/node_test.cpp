#include "src/net/node.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/sim/simulator.hpp"

namespace burst {
namespace {

struct Capture : PacketHandler {
  std::vector<Packet> got;
  void handle(const Packet& p) override { got.push_back(p); }
};

Packet pkt(NodeId dst, FlowId flow) {
  Packet p;
  p.dst = dst;
  p.flow = flow;
  p.size_bytes = 100;
  return p;
}

TEST(Node, DeliversLocalPacketsToAttachedHandler) {
  Node n(5);
  Capture c;
  n.attach(7, &c);
  n.receive(pkt(5, 7));
  ASSERT_EQ(c.got.size(), 1u);
  EXPECT_EQ(n.routing_errors(), 0u);
}

TEST(Node, UnknownFlowCountsRoutingError) {
  Node n(5);
  n.receive(pkt(5, 99));
  EXPECT_EQ(n.routing_errors(), 1u);
}

TEST(Node, ForwardsTransitTraffic) {
  Simulator sim;
  Node a(1), b(2);
  SimplexLink link(sim, std::make_unique<DropTailQueue>(10), 1e6, 0.0);
  link.set_receiver([&b](const Packet& p) { b.receive(p); });
  a.add_route(2, &link);
  Capture c;
  b.attach(0, &c);
  a.receive(pkt(2, 0));  // transit: not addressed to a
  sim.run();
  ASSERT_EQ(c.got.size(), 1u);
}

TEST(Node, UsesDefaultRouteWhenNoExplicitMatch) {
  Simulator sim;
  Node a(1), b(2);
  SimplexLink link(sim, std::make_unique<DropTailQueue>(10), 1e6, 0.0);
  link.set_receiver([&b](const Packet& p) { b.receive(p); });
  a.add_route(Node::kDefaultRoute, &link);
  Capture c;
  b.attach(3, &c);
  a.send(pkt(2, 3));
  sim.run();
  ASSERT_EQ(c.got.size(), 1u);
}

TEST(Node, ExplicitRouteBeatsDefault) {
  Simulator sim;
  Node a(1), b(2), c_node(3);
  SimplexLink to_b(sim, std::make_unique<DropTailQueue>(10), 1e6, 0.0);
  SimplexLink to_c(sim, std::make_unique<DropTailQueue>(10), 1e6, 0.0);
  to_b.set_receiver([&b](const Packet& p) { b.receive(p); });
  to_c.set_receiver([&c_node](const Packet& p) { c_node.receive(p); });
  a.add_route(Node::kDefaultRoute, &to_b);
  a.add_route(3, &to_c);
  Capture cb, cc;
  b.attach(0, &cb);
  c_node.attach(0, &cc);
  a.send(pkt(3, 0));
  sim.run();
  EXPECT_EQ(cb.got.size(), 0u);
  EXPECT_EQ(cc.got.size(), 1u);
}

TEST(Node, NoRouteCountsError) {
  Node a(1);
  a.send(pkt(9, 0));
  EXPECT_EQ(a.routing_errors(), 1u);
}

TEST(Node, IdAccessor) {
  Node n(42);
  EXPECT_EQ(n.id(), 42);
}

}  // namespace
}  // namespace burst
