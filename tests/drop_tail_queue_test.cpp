#include "src/net/drop_tail_queue.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

Packet pkt(std::int64_t seq) {
  Packet p;
  p.seq = seq;
  p.size_bytes = 1040;
  return p;
}

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(pkt(i), 0.0));
  for (int i = 0; i < 5; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue(0.0).has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(3);
  EXPECT_TRUE(q.enqueue(pkt(0), 0.0));
  EXPECT_TRUE(q.enqueue(pkt(1), 0.0));
  EXPECT_TRUE(q.enqueue(pkt(2), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(3), 0.0));
  EXPECT_EQ(q.len(), 3u);
  EXPECT_EQ(q.stats().arrivals, 4u);
  EXPECT_EQ(q.stats().drops, 1u);
  EXPECT_EQ(q.stats().forced_drops, 1u);
}

TEST(DropTailQueue, DequeueFreesCapacity) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(pkt(0), 0.0));
  EXPECT_FALSE(q.enqueue(pkt(1), 0.0));
  EXPECT_TRUE(q.dequeue(0.0).has_value());
  EXPECT_TRUE(q.enqueue(pkt(2), 0.0));
}

TEST(DropTailQueue, StatsCountDepartures) {
  DropTailQueue q(10);
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 0.0);
  q.dequeue(0.0);
  EXPECT_EQ(q.stats().departures, 1u);
  EXPECT_EQ(q.len(), 1u);
}

TEST(DropTailQueue, LossFraction) {
  DropTailQueue q(2);
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);
  q.enqueue(pkt(3), 0.0);
  EXPECT_DOUBLE_EQ(q.stats().loss_fraction(), 0.5);
}

TEST(DropTailQueue, ArrivalTapSeesAcceptedAndDropped) {
  DropTailQueue q(1);
  int arrivals = 0, drops = 0;
  q.taps().add_arrival_listener([&](const Packet&, Time) { ++arrivals; });
  q.taps().add_drop_listener([&](const Packet&, Time) { ++drops; });
  q.enqueue(pkt(0), 0.0);
  q.enqueue(pkt(1), 0.0);  // dropped
  EXPECT_EQ(arrivals, 2);
  EXPECT_EQ(drops, 1);
}

TEST(DropTailQueue, DropTapReceivesTheDroppedPacket) {
  DropTailQueue q(1);
  std::int64_t dropped_seq = -1;
  q.taps().add_drop_listener([&](const Packet& p, Time) { dropped_seq = p.seq; });
  q.enqueue(pkt(10), 0.0);
  q.enqueue(pkt(11), 0.0);
  EXPECT_EQ(dropped_seq, 11);
}

TEST(DropTailQueue, ZeroCapacityDropsEverything) {
  DropTailQueue q(0);
  EXPECT_FALSE(q.enqueue(pkt(0), 0.0));
  EXPECT_TRUE(q.queue_empty());
}

}  // namespace
}  // namespace burst
