#include "src/core/experiment.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

Scenario quick(int clients, Transport t = Transport::kReno) {
  Scenario s = Scenario::paper_default();
  s.num_clients = clients;
  s.duration = 6.0;
  s.warmup = 1.0;
  s.transport = t;
  return s;
}

TEST(Experiment, CollectsBasicMetrics) {
  const auto r = run_experiment(quick(10));
  EXPECT_GT(r.app_generated, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.gw_arrivals, 0u);
  EXPECT_GT(r.cov, 0.0);
  EXPECT_GT(r.poisson_cov, 0.0);
  EXPECT_EQ(r.routing_errors, 0u);
  EXPECT_GE(r.fairness, 0.9);
}

TEST(Experiment, DeterministicForSameSeed) {
  const auto a = run_experiment(quick(15));
  const auto b = run_experiment(quick(15));
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.gw_drops, b.gw_drops);
  EXPECT_DOUBLE_EQ(a.cov, b.cov);
  EXPECT_EQ(a.timeouts, b.timeouts);
}

TEST(Experiment, DifferentSeedsDiffer) {
  Scenario s1 = quick(15), s2 = quick(15);
  s2.seed = 999;
  const auto a = run_experiment(s1);
  const auto b = run_experiment(s2);
  EXPECT_NE(a.app_generated, b.app_generated);
}

TEST(Experiment, UdpCovMatchesPoissonAnalytic) {
  Scenario s = quick(20, Transport::kUdp);
  s.duration = 30.0;
  const auto r = run_experiment(s);
  EXPECT_NEAR(r.cov, r.poisson_cov, 0.25 * r.poisson_cov);
}

TEST(Experiment, ThroughputBoundedByCapacity) {
  Scenario s = quick(50);
  const auto r = run_experiment(s);
  const double max_pkts = s.bottleneck_pps() * s.duration;
  EXPECT_LE(static_cast<double>(r.delivered), max_pkts * 1.01);
}

TEST(Experiment, UncongestedHasNoLoss) {
  const auto r = run_experiment(quick(5));
  EXPECT_DOUBLE_EQ(r.loss_pct, 0.0);
  EXPECT_EQ(r.timeouts, 0u);
}

TEST(Experiment, CongestedHasLossAndRecovery) {
  const auto r = run_experiment(quick(50));
  EXPECT_GT(r.loss_pct, 0.0);
  EXPECT_GT(r.timeouts + r.fast_retransmits, 0u);
  EXPECT_GT(r.retransmits, 0u);
}

TEST(Experiment, CwndTracesRequested) {
  ExperimentOptions opts;
  opts.trace_clients = {0, 2};
  const auto r = run_experiment(quick(10), opts);
  ASSERT_EQ(r.cwnd_traces.size(), 2u);
  EXPECT_EQ(r.cwnd_traces[0].name(), "client 1");
  EXPECT_EQ(r.cwnd_traces[1].name(), "client 3");
  EXPECT_FALSE(r.cwnd_traces[0].empty());
}

TEST(Experiment, PeriodicCwndSampling) {
  ExperimentOptions opts;
  opts.trace_clients = {0};
  opts.cwnd_sample_period = 0.1;
  Scenario s = quick(10);
  const auto r = run_experiment(s, opts);
  ASSERT_EQ(r.cwnd_traces.size(), 1u);
  // At least ~duration/period points (plus change-driven ones).
  EXPECT_GE(r.cwnd_traces[0].points().size(),
            static_cast<std::size_t>(s.duration / 0.1) - 2);
}

TEST(Experiment, UdpHasNoTcpCounters) {
  const auto r = run_experiment(quick(10, Transport::kUdp));
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.dupacks, 0u);
  EXPECT_EQ(r.data_pkts_sent, 0u);  // counter only sums TCP senders
}

TEST(Experiment, TimeoutDupackRatioGuardsZero) {
  // Loss-free run: neither timeouts nor dupacks -> ratio is 0.
  const auto r = run_experiment(quick(5));
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_EQ(r.dupacks, 0u);
  EXPECT_DOUBLE_EQ(r.timeout_dupack_ratio, 0.0);
}

TEST(Experiment, TimeoutDupackRatioNormalCase) {
  // Congested run with dupacks present: the ratio is the plain quotient.
  const auto r = run_experiment(quick(50));
  ASSERT_GT(r.dupacks, 0u);
  EXPECT_DOUBLE_EQ(r.timeout_dupack_ratio,
                   static_cast<double>(r.timeouts) /
                       static_cast<double>(r.dupacks));
}

TEST(Experiment, TimeoutOnlyRatioClampsDenominatorToOne) {
  // A one-packet window can never generate duplicate ACKs, so every loss
  // recovers via timeout. The documented convention: with timeouts > 0 and
  // dupacks == 0 the denominator clamps to 1 (ratio == timeout count),
  // distinguishing dup-ACK starvation from a loss-free run's 0.
  // Many one-packet-window flows against a tiny buffer force drops, while
  // the queueing delay (3 pkts / 240 pps = 12.5 ms) stays far below
  // min_rto so no spurious retransmit ever manufactures a duplicate ACK.
  Scenario s = quick(30);
  s.advertised_window = 1.0;
  s.bottleneck_bw_bps = 2e6;
  s.gateway_buffer = 3;
  const auto r = run_experiment(s);
  ASSERT_GT(r.timeouts, 0u);
  ASSERT_EQ(r.dupacks, 0u);
  EXPECT_DOUBLE_EQ(r.timeout_dupack_ratio, static_cast<double>(r.timeouts));
}

class ExperimentTransportMatrix
    : public ::testing::TestWithParam<std::tuple<Transport, GatewayQueue>> {};

TEST_P(ExperimentTransportMatrix, InvariantsHoldAcrossConfigurations) {
  const auto [t, q] = GetParam();
  Scenario s = quick(42, t);
  s.gateway = q;
  const auto r = run_experiment(s);
  // Universal sanity invariants, regardless of protocol/queue.
  EXPECT_LE(r.delivered, r.app_generated);
  EXPECT_LE(r.gw_drops, r.gw_arrivals);
  EXPECT_GE(r.loss_pct, 0.0);
  EXPECT_LE(r.loss_pct, 100.0);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GE(r.fairness, 0.0);
  EXPECT_LE(r.fairness, 1.0);
  EXPECT_EQ(r.routing_errors, 0u);
  const double max_pkts = s.bottleneck_pps() * s.duration;
  EXPECT_LE(static_cast<double>(r.delivered), max_pkts * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ExperimentTransportMatrix,
    ::testing::Combine(::testing::Values(Transport::kUdp, Transport::kTahoe,
                                         Transport::kReno, Transport::kNewReno,
                                         Transport::kVegas),
                       ::testing::Values(GatewayQueue::kDropTail,
                                         GatewayQueue::kRed)));

}  // namespace
}  // namespace burst
