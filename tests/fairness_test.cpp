#include "src/stats/fairness.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(Fairness, EqualSharesAreOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(Fairness, SingleFlowIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({42}), 1.0);
}

TEST(Fairness, EmptyIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
}

TEST(Fairness, AllZerosIsOne) {
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0, 0}), 1.0);
}

TEST(Fairness, StarvationApproachesOneOverN) {
  // One flow hogging everything among n flows -> index = 1/n.
  EXPECT_NEAR(jain_fairness({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(Fairness, KnownMixedCase) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(jain_fairness({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(Fairness, ScaleInvariant) {
  EXPECT_NEAR(jain_fairness({1, 2, 3}), jain_fairness({10, 20, 30}), 1e-12);
}

}  // namespace
}  // namespace burst
