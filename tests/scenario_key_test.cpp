#include "src/run/scenario_key.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace burst {
namespace {

TEST(ScenarioKey, HexRoundTrips) {
  ScenarioKey k{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(k.hex(), "0123456789abcdeffedcba9876543210");
  ScenarioKey parsed;
  ASSERT_TRUE(ScenarioKey::parse(k.hex(), &parsed));
  EXPECT_EQ(parsed, k);
}

TEST(ScenarioKey, ParseRejectsBadInput) {
  ScenarioKey k;
  EXPECT_FALSE(ScenarioKey::parse("", &k));
  EXPECT_FALSE(ScenarioKey::parse("0123", &k));
  EXPECT_FALSE(ScenarioKey::parse(std::string(32, 'g'), &k));
  EXPECT_FALSE(ScenarioKey::parse(std::string(33, '0'), &k));
  // Uppercase is not canonical.
  EXPECT_FALSE(ScenarioKey::parse("0123456789ABCDEFFEDCBA9876543210", &k));
}

TEST(ScenarioKey, StableAcrossCalls) {
  const Scenario s = Scenario::paper_default();
  EXPECT_EQ(scenario_key(s), scenario_key(s));
  EXPECT_EQ(scenario_key(s).hex(), scenario_key(s).hex());
}

TEST(ScenarioKey, EveryAxisChangesTheKey) {
  const Scenario base = Scenario::paper_default();
  const ScenarioKey k0 = scenario_key(base);

  auto differs = [&](auto mutate) {
    Scenario s = base;
    mutate(s);
    return scenario_key(s) != k0;
  };
  EXPECT_TRUE(differs([](Scenario& s) { s.num_clients += 1; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.transport = Transport::kVegas; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.gateway = GatewayQueue::kRed; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.delayed_ack = true; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.seed += 1; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.duration += 0.5; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.warmup += 0.25; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.red_max_th += 1.0; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.vegas.alpha += 1.0; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.rto.min_rto *= 2.0; }));
  EXPECT_TRUE(differs([](Scenario& s) { s.gateway_buffer += 10; }));
  // Tiny double perturbations count too (hexfloat canonicalization).
  EXPECT_TRUE(differs([](Scenario& s) { s.mean_interarrival += 1e-12; }));
}

TEST(ScenarioKey, OptionsArePartOfTheKey) {
  const Scenario s = Scenario::paper_default();
  ExperimentOptions traced;
  traced.trace_clients = {0, 5};
  traced.cwnd_sample_period = 0.1;
  EXPECT_NE(scenario_key(s), scenario_key(s, traced));
  ExperimentOptions traced2 = traced;
  traced2.trace_clients = {0, 6};
  EXPECT_NE(scenario_key(s, traced), scenario_key(s, traced2));
}

TEST(ScenarioKey, CanonicalStringCarriesSchemaVersion) {
  const std::string canon = canonical_string(Scenario::paper_default());
  EXPECT_NE(canon.find("schema=" + std::to_string(kResultSchemaVersion) + ";"),
            std::string::npos);
  EXPECT_NE(canon.find("transport=Reno;"), std::string::npos);
}

TEST(DeriveSeed, DeterministicAndKeyedOnValues) {
  EXPECT_EQ(derive_seed(1, "Reno", 30), derive_seed(1, "Reno", 30));
  EXPECT_NE(derive_seed(1, "Reno", 30), derive_seed(1, "Reno", 33));
  EXPECT_NE(derive_seed(1, "Reno", 30), derive_seed(1, "Vegas", 30));
  EXPECT_NE(derive_seed(1, "Reno", 30), derive_seed(2, "Reno", 30));
}

TEST(DeriveSeed, NoCollisionsOnLargeGrids) {
  // The old affine formula (base + 1000003*c + 17*p) collides as soon as
  // two (c, p) pairs land on the same lattice point across base seeds;
  // the splitmix mix must keep a dense grid collision-free.
  const std::vector<std::string> series{"UDP",       "Reno",  "Reno/RED",
                                        "Vegas",     "Vegas/RED",
                                        "Reno/DelayAck"};
  std::unordered_set<std::uint64_t> seen;
  std::size_t count = 0;
  for (std::uint64_t base : {1ULL, 2ULL, 1000003ULL}) {
    for (const auto& name : series) {
      for (int n = 1; n <= 200; ++n) {
        seen.insert(derive_seed(base, name, n));
        ++count;
      }
    }
  }
  EXPECT_EQ(seen.size(), count);
}

TEST(Splitmix64, MatchesReferenceVectors) {
  // Reference outputs of the splitmix64 finalizer for state 0, 1
  // (Vigna's splitmix64.c test values).
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(1), 0x910A2DEC89025CC1ULL);
}

}  // namespace
}  // namespace burst
