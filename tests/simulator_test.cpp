#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace burst {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  Time seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, CallbackObservesOwnTimestamp) {
  // Regression test for the stale-clock bug: an event scheduled from
  // within a callback must be offset from the *event's* time, not the
  // previous event's.
  Simulator sim;
  std::vector<Time> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  sim.run(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run(10.0);  // resumes with the remaining event
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run(4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, StopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // can resume after stop
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  Time seen = -1.0;
  sim.schedule(1.0, [&] {
    sim.schedule_at(5.0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.pending(id));
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, EventsRunCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(static_cast<Time>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_run(), 7u);
}

TEST(Simulator, ZeroDelayEventRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(2); });
  });
  sim.schedule(1.0, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event fires after already-queued same-time events.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace burst
