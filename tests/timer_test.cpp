#include "src/sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/random.hpp"

namespace burst {
namespace {

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(1.5);
  EXPECT_TRUE(t.pending());
  EXPECT_DOUBLE_EQ(t.expiry(), 1.5);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(1.0);
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPendingExpiry) {
  Simulator sim;
  std::vector<Time> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.schedule(1.0);
  t.schedule(3.0);  // replaces the 1.0 expiry
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 3.0);
}

TEST(Timer, CanRescheduleFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {
    if (++fired < 3) t.schedule(1.0);
  });
  t.schedule(1.0);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Timer, ExpiryIsNeverWhenIdle) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_EQ(t.expiry(), kTimeNever);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, DestructorCancelsCleanly) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.schedule(1.0);
  }
  sim.run();  // must not crash or fire
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CancelIdempotent) {
  Simulator sim;
  Timer t(sim, [] {});
  t.cancel();
  t.schedule(1.0);
  t.cancel();
  t.cancel();
  EXPECT_FALSE(t.pending());
}

// --- Soft-deadline (kLazy) mode ------------------------------------------
//
// The lazy mode's contract: observable firing behaviour is identical to
// kExact — the callback runs exactly once per elapsed deadline, at the
// *latest* scheduled deadline, and never after a cancel — while a deadline
// that only moves forward costs no scheduler traffic per move.

TEST(TimerLazy, RearmStormFiresOnceAtLatestDeadline) {
  Simulator sim;
  std::vector<Time> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); }, Timer::Mode::kLazy);
  t.schedule(1.0);
  // Push the deadline out from driver events at 0.2, 0.4, 0.6, 0.8 — the
  // per-ACK RTO restart pattern. Final deadline: 0.8 + 1.0 = 1.8.
  for (int i = 1; i <= 4; ++i) {
    sim.schedule(0.2 * i, [&] { t.schedule(1.0); });
  }
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_DOUBLE_EQ(fires[0], 1.8);
  // Scheduler traffic: 4 driver events + the initial arm + ONE chase
  // re-arm (at t=1.0 the armed event jumps straight to 1.8). An exact
  // timer would have inserted 5 times and cancelled 4.
  EXPECT_EQ(sim.scheduler().scheduled_count(), 4u + 2u);
}

TEST(TimerLazy, SoftMovesAreSchedulerFree) {
  Simulator sim;
  Timer t(sim, [] {}, Timer::Mode::kLazy);
  t.schedule(10.0);
  const std::uint64_t after_arm = sim.scheduler().scheduled_count();
  for (int i = 0; i < 1000; ++i) t.schedule(10.0 + i);  // forward-only moves
  EXPECT_EQ(sim.scheduler().scheduled_count(), after_arm);
  EXPECT_DOUBLE_EQ(t.expiry(), 10.0 + 999);
}

TEST(TimerLazy, CancelWhileArmedIsQuiet) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; }, Timer::Mode::kLazy);
  t.schedule(1.0);
  sim.schedule(0.5, [&] { t.cancel(); });
  sim.run();  // the armed event still runs at 1.0 — as a silent no-op
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.pending());
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);  // the orphan event did run
}

TEST(TimerLazy, RescheduleAfterCancelReusesArmedEvent) {
  Simulator sim;
  std::vector<Time> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); }, Timer::Mode::kLazy);
  t.schedule(1.0);
  sim.schedule(0.3, [&] { t.cancel(); });
  // Re-scheduling before the orphaned event has fired soft-moves it
  // instead of inserting a second one.
  sim.schedule(0.6, [&] { t.schedule(2.0); });  // deadline 2.6
  const std::uint64_t drivers_plus_arm = 2u + 1u;
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_DOUBLE_EQ(fires[0], 2.6);
  // 2 drivers + initial arm + one chase from the reused event at t=1.0.
  EXPECT_EQ(sim.scheduler().scheduled_count(), drivers_plus_arm + 1u);
}

TEST(TimerLazy, ShrinkingDeadlineRearmsEagerly) {
  Simulator sim;
  std::vector<Time> fires;
  Timer t(sim, [&] { fires.push_back(sim.now()); }, Timer::Mode::kLazy);
  t.schedule(5.0);
  // A deadline that moves *backwards* cannot ride the armed event (it
  // would fire late); the timer must re-arm eagerly.
  sim.schedule(0.1, [&] { t.schedule(1.0); });  // deadline 1.1 < armed 5.0
  sim.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_DOUBLE_EQ(fires[0], 1.1);
}

TEST(TimerLazy, RandomScriptMatchesExactMode) {
  // Differential check: an exact and a lazy timer fed the identical
  // schedule/cancel script must produce identical fire-time sequences.
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Random rng(seed);
    Simulator sim;
    std::vector<Time> exact_fires, lazy_fires;
    Timer exact(sim, [&] { exact_fires.push_back(sim.now()); },
                Timer::Mode::kExact);
    Timer lazy(sim, [&] { lazy_fires.push_back(sim.now()); },
               Timer::Mode::kLazy);
    Time at = 0.0;
    for (int i = 0; i < 300; ++i) {
      at += rng.uniform(0.0, 0.5);
      const double roll = rng.uniform();
      const Time delay = rng.uniform(0.05, 2.0);
      sim.schedule_at(at, [&exact, &lazy, roll, delay] {
        if (roll < 0.8) {
          exact.schedule(delay);
          lazy.schedule(delay);
        } else {
          exact.cancel();
          lazy.cancel();
        }
      });
    }
    sim.run();
    EXPECT_EQ(exact_fires, lazy_fires) << "seed " << seed;
    EXPECT_EQ(exact.pending(), lazy.pending()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace burst
