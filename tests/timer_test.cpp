#include "src/sim/timer.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(Timer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(1.5);
  EXPECT_TRUE(t.pending());
  EXPECT_DOUBLE_EQ(t.expiry(), 1.5);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.schedule(1.0);
  t.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RescheduleReplacesPendingExpiry) {
  Simulator sim;
  std::vector<Time> fire_times;
  Timer t(sim, [&] { fire_times.push_back(sim.now()); });
  t.schedule(1.0);
  t.schedule(3.0);  // replaces the 1.0 expiry
  sim.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 3.0);
}

TEST(Timer, CanRescheduleFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] {
    if (++fired < 3) t.schedule(1.0);
  });
  t.schedule(1.0);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Timer, ExpiryIsNeverWhenIdle) {
  Simulator sim;
  Timer t(sim, [] {});
  EXPECT_EQ(t.expiry(), kTimeNever);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, DestructorCancelsCleanly) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim, [&] { ++fired; });
    t.schedule(1.0);
  }
  sim.run();  // must not crash or fire
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CancelIdempotent) {
  Simulator sim;
  Timer t(sim, [] {});
  t.cancel();
  t.schedule(1.0);
  t.cancel();
  t.cancel();
  EXPECT_FALSE(t.pending());
}

}  // namespace
}  // namespace burst
