#include "src/sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace burst {
namespace {

TEST(Random, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Random, UniformInUnitInterval) {
  Random r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, UniformRange) {
  Random r(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-2.0, 6.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 6.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 2.0, 0.1);
}

TEST(Random, UniformIntCoversRangeInclusive) {
  Random r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

class ExponentialMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanTest, SampleMeanMatches) {
  const double mean = GetParam();
  Random r(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(mean);
    EXPECT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.02 * mean);
  // Exponential: variance = mean^2.
  EXPECT_NEAR(var, mean * mean, 0.1 * mean * mean);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanTest,
                         ::testing::Values(0.01, 0.1, 1.0, 25.0));

class ParetoTest : public ::testing::TestWithParam<double> {};

TEST_P(ParetoTest, SampleMeanMatchesAndHasMinimum) {
  const double alpha = GetParam();
  const double mean = 2.0;
  const double x_m = mean * (alpha - 1.0) / alpha;
  Random r(17);
  const int n = 400000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.pareto(alpha, mean);
    EXPECT_GE(x, x_m * 0.999999);
    sum += x;
  }
  // Heavy tails converge slowly; allow a generous band.
  EXPECT_NEAR(sum / n, mean, 0.15 * mean);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParetoTest, ::testing::Values(1.5, 1.9, 3.0));

TEST(Random, BernoulliFrequency) {
  Random r(19);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Random, BernoulliExtremes) {
  Random r(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Random, ForkProducesIndependentStream) {
  Random a(31);
  Random b = a.fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  Random a2(31);
  (void)a2.uniform();  // advance past the fork draw
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Random, ForkIsDeterministic) {
  Random a(37), b(37);
  Random fa = a.fork(), fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

}  // namespace
}  // namespace burst
