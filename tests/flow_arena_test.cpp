#include "src/transport/flow_arena.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace burst {
namespace {

TEST(FlowArena, RingCapacityCoversAdvertisedWindow) {
  // adv=20 needs >= 24 live sequences (window + rewind slack) -> 32.
  EXPECT_EQ(FlowArena::ring_capacity_for(20.0), 32u);
  // Power of two, always.
  for (double adv : {1.0, 5.0, 20.0, 100.0, 1000.0}) {
    const std::size_t cap = FlowArena::ring_capacity_for(adv);
    EXPECT_EQ(cap & (cap - 1), 0u) << "adv=" << adv;
    EXPECT_GE(cap, static_cast<std::size_t>(adv));
  }
}

TEST(FlowArena, ReserveWithinBudgetSucceedsAndAccounts) {
  FlowArena a;
  const std::size_t cap = FlowArena::ring_capacity_for(20.0);
  a.set_budget_bytes(100 * FlowArena::sender_bytes(cap) +
                     100 * FlowArena::sink_bytes());
  a.reserve(100, 100, cap);
  EXPECT_GT(a.bytes_reserved(), 0u);
  EXPECT_LE(a.bytes_reserved(), a.budget_bytes());
}

TEST(FlowArena, ReserveOverBudgetThrowsLengthError) {
  FlowArena a;
  a.set_budget_bytes(1024);  // far below 10^4 sender slots
  EXPECT_THROW(a.reserve(10000, 10000, 32), std::length_error);
}

TEST(FlowArena, DefaultBudgetAppliesToNewArenas) {
  FlowArena::set_default_budget_bytes(1024);
  FlowArena a;
  EXPECT_EQ(a.budget_bytes(), 1024u);
  EXPECT_THROW(a.reserve(10000, 10000, 32), std::length_error);
  FlowArena::set_default_budget_bytes(0);
  FlowArena b;
  EXPECT_EQ(b.budget_bytes(), 0u);  // unlimited
}

TEST(FlowArena, AllocateBeyondReservedSlotsThrows) {
  FlowArena a;
  a.reserve(1, 1, 8);
  EXPECT_EQ(a.allocate_sender(1.0, 64.0), 0u);
  EXPECT_THROW(a.allocate_sender(1.0, 64.0), std::length_error);
  EXPECT_EQ(a.allocate_sink(), 0u);
  EXPECT_THROW(a.allocate_sink(), std::length_error);
}

TEST(FlowArena, SenderSlotInitialValues) {
  FlowArena a;
  a.reserve(1, 0, 8);
  const std::uint32_t s = a.allocate_sender(2.0, 10.0);
  EXPECT_DOUBLE_EQ(a.cwnd(s), 2.0);
  EXPECT_DOUBLE_EQ(a.ssthresh(s), 10.0);
  EXPECT_EQ(a.snd_una(s), 0);
  EXPECT_EQ(a.snd_nxt(s), 0);
  EXPECT_EQ(a.snd_max(s), 0);
  EXPECT_EQ(a.dupacks(s), 0);
  EXPECT_FALSE(a.rto_state(s).has_sample);
  EXPECT_EQ(a.rto_state(s).backoff, 1);
}

TEST(FlowArena, RingStoreLookupErase) {
  FlowArena a;
  a.reserve(1, 0, 8);
  const std::uint32_t s = a.allocate_sender(1.0, 64.0);
  EXPECT_EQ(a.ring_lookup(s, 3), kTimeNever);
  a.ring_store(s, 3, 1.25);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 3), 1.25);
  a.ring_store(s, 3, 2.5);  // update in place
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 3), 2.5);
  EXPECT_EQ(a.ring_overflow_entries(), 0u);
  a.ring_erase(s, 3);
  EXPECT_EQ(a.ring_lookup(s, 3), kTimeNever);
}

TEST(FlowArena, RingCollisionSpillsToOverflowExactly) {
  FlowArena a;
  a.reserve(1, 0, 8);
  const std::uint32_t s = a.allocate_sender(1.0, 64.0);
  // seq 2 and seq 10 share ring position (cap 8); both must be readable.
  a.ring_store(s, 2, 0.5);
  a.ring_store(s, 10, 0.75);
  EXPECT_EQ(a.ring_overflow_entries(), 1u);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 2), 0.5);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 10), 0.75);
  // Updating the overflowed entry must hit the overflow map, not steal
  // the ring slot.
  a.ring_store(s, 10, 1.0);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 2), 0.5);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 10), 1.0);
  // Erase the ring occupant; the overflowed seq keeps its exact value
  // (the write path checks overflow before claiming an empty slot).
  a.ring_erase(s, 2);
  a.ring_store(s, 10, 1.5);
  EXPECT_EQ(a.ring_lookup(s, 2), kTimeNever);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s, 10), 1.5);
  EXPECT_EQ(a.ring_overflow_entries(), 1u);
  a.ring_erase(s, 10);
  EXPECT_EQ(a.ring_lookup(s, 10), kTimeNever);
  EXPECT_EQ(a.ring_overflow_entries(), 0u);
}

TEST(FlowArena, RingSlicesArePerSender) {
  FlowArena a;
  a.reserve(2, 0, 8);
  const std::uint32_t s0 = a.allocate_sender(1.0, 64.0);
  const std::uint32_t s1 = a.allocate_sender(1.0, 64.0);
  a.ring_store(s0, 5, 1.0);
  a.ring_store(s1, 5, 2.0);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s0, 5), 1.0);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s1, 5), 2.0);
  a.ring_erase(s0, 5);
  EXPECT_EQ(a.ring_lookup(s0, 5), kTimeNever);
  EXPECT_DOUBLE_EQ(a.ring_lookup(s1, 5), 2.0);
}

TEST(FlowArena, BytesPerFlowStaysUnderMeanfieldBudget) {
  // The fig_meanfield bench reserves under 2048 bytes/flow; keep the
  // static projection honest so the bench can't start failing silently.
  const std::size_t cap = FlowArena::ring_capacity_for(20.0);
  EXPECT_LE(FlowArena::sender_bytes(cap) + FlowArena::sink_bytes(), 2048u);
}

}  // namespace
}  // namespace burst
