#include "src/net/packet.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(Packet, DefaultsAreInert) {
  Packet p;
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.seq, -1);
  EXPECT_EQ(p.ack, -1);
  EXPECT_FALSE(p.retransmit);
}

TEST(Packet, DescribeMentionsKeyFields) {
  Packet p;
  p.uid = 9;
  p.flow = 3;
  p.src = 1;
  p.dst = 2;
  p.seq = 17;
  p.size_bytes = 1040;
  const std::string d = p.describe();
  EXPECT_NE(d.find("DATA"), std::string::npos);
  EXPECT_NE(d.find("seq=17"), std::string::npos);
  EXPECT_NE(d.find("flow=3"), std::string::npos);
  EXPECT_NE(d.find("1->2"), std::string::npos);
}

TEST(Packet, DescribeMarksAckAndRetransmit) {
  Packet p;
  p.type = PacketType::kAck;
  p.retransmit = true;
  const std::string d = p.describe();
  EXPECT_NE(d.find("ACK"), std::string::npos);
  EXPECT_NE(d.find("rexmt"), std::string::npos);
}

TEST(Packet, WireSizeConstants) {
  // The reproduction's header model (DESIGN.md §3).
  EXPECT_EQ(kHeaderBytes, 40);
  EXPECT_EQ(kDefaultPayloadBytes + kHeaderBytes, 1040);
  EXPECT_EQ(kAckBytes, 40);
}

}  // namespace
}  // namespace burst
