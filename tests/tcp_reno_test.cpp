#include "src/transport/tcp_reno.hpp"

#include <gtest/gtest.h>

#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TEST(TcpReno, SlowStartDoublesPerRtt) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(1000);  // saturate so the window binds
  // After k RTTs of slow start, cwnd ~ 2^k (ACK per packet, +1 per ACK).
  const Time rtt = h.rtt();
  h.sim.run(0.5 * rtt);
  EXPECT_NEAR(s->cwnd(), 1.0, 0.01);
  h.sim.run(1.5 * rtt);
  EXPECT_NEAR(s->cwnd(), 2.0, 0.5);
  h.sim.run(2.5 * rtt);
  EXPECT_NEAR(s->cwnd(), 4.0, 1.0);
  h.sim.run(3.5 * rtt);
  EXPECT_NEAR(s->cwnd(), 8.0, 2.0);
}

TEST(TcpReno, CongestionAvoidanceIsLinear) {
  TcpConfig cfg;
  cfg.initial_ssthresh = 4.0;
  cfg.advertised_window = 1000.0;
  TcpHarness h(1, LinkParams{.bandwidth_bps = 100e6, .delay = 0.05});
  auto* s = h.make_sender<TcpReno>(cfg);
  s->app_send(100000);
  const Time rtt = 0.1;
  h.sim.run(2 * rtt + 0.01);  // reach ssthresh
  const double w0 = s->cwnd();
  ASSERT_GE(w0, 4.0);
  h.sim.run(h.sim.now() + 4 * rtt);
  const double w1 = s->cwnd();
  // ~ +1 packet per RTT in congestion avoidance.
  EXPECT_NEAR(w1 - w0, 4.0, 1.6);
}

TEST(TcpReno, FastRetransmitOnThreeDupacks) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(12);
  h.sim.run(1.0);
  ASSERT_EQ(h.sink->rcv_nxt(), 12);
  const double w_before = s->cwnd();
  ASSERT_GE(w_before, 8.0);  // slow start opened it
  // A 30-packet backlog: the initial window-sized burst overflows the
  // 1+6 slots, and the stream continuing behind the hole generates the
  // duplicate ACKs that trigger fast retransmit.
  s->app_send(30);
  h.sim.run(2.0);
  EXPECT_GE(s->stats().fast_retransmits, 1u);
  h.sim.run(30.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 42);
}

TEST(TcpReno, FastRecoveryHalvesWindow) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(12);
  h.sim.run(1.0);
  const double w_before = s->cwnd();
  s->app_send(30);
  h.sim.run(30.0);
  ASSERT_GE(s->stats().fast_retransmits, 1u);
  // After recovery the window must sit well below the pre-loss value
  // (deflated to ssthresh = flight/2), modulo later growth.
  EXPECT_LT(s->ssthresh(), w_before);
}

TEST(TcpReno, TimeoutResetsToSlowStart) {
  LinkParams fwd;
  fwd.queue_capacity = 1;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(3);
  h.sim.run(1.0);
  TraceSeries trace("w");
  s->set_cwnd_trace(&trace);
  s->app_send(6);  // burst overflows; tail loss -> timeout
  h.sim.run(30.0);
  ASSERT_GT(s->stats().timeouts, 0u);
  // The trace must contain a reset to 1.
  bool saw_one = false;
  for (const auto& [t, w] : trace.points()) saw_one |= (w == 1.0);
  EXPECT_TRUE(saw_one);
  EXPECT_EQ(h.sink->rcv_nxt(), 9);
}

TEST(TcpReno, WindowInflationDuringRecovery) {
  LinkParams fwd;
  fwd.queue_capacity = 8;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(16);
  h.sim.run(1.0);
  s->app_send(20);
  // Catch the sender inside fast recovery at some point.
  bool saw_recovery = false;
  for (int i = 0; i < 2000 && !saw_recovery; ++i) {
    h.sim.run(h.sim.now() + 0.001);
    saw_recovery = s->in_fast_recovery();
  }
  EXPECT_TRUE(saw_recovery);
  h.sim.run(30.0);
  EXPECT_FALSE(s->in_fast_recovery());
  EXPECT_EQ(h.sink->rcv_nxt(), 36);
}

TEST(TcpReno, SsthreshNeverBelowTwo) {
  LinkParams fwd;
  fwd.queue_capacity = 1;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpReno>();
  s->app_send(50);
  h.sim.run(60.0);
  EXPECT_GE(s->ssthresh(), 2.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 50);
}

TEST(TcpReno, ReliableUnderHeavyLoss) {
  // Property: whatever the queue size, everything is eventually delivered.
  for (std::size_t cap : {1u, 2u, 4u, 8u}) {
    LinkParams fwd;
    fwd.queue_capacity = cap;
    TcpHarness h(7, fwd);
    auto* s = h.make_sender<TcpReno>();
    s->app_send(200);
    h.sim.run(300.0);
    EXPECT_EQ(h.sink->rcv_nxt(), 200) << "queue capacity " << cap;
    EXPECT_EQ(s->backlog(), 0);
  }
}

}  // namespace
}  // namespace burst
