#include "src/sim/trace.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(TraceSeries, RecordsPoints) {
  TraceSeries t("cwnd");
  EXPECT_TRUE(t.empty());
  t.record(0.0, 1.0);
  t.record(1.0, 2.0);
  EXPECT_EQ(t.name(), "cwnd");
  ASSERT_EQ(t.points().size(), 2u);
  EXPECT_DOUBLE_EQ(t.points()[1].second, 2.0);
}

TEST(TraceSeries, ValueAtStepFunction) {
  TraceSeries t("x");
  t.record(1.0, 10.0);
  t.record(2.0, 20.0);
  t.record(5.0, 50.0);
  EXPECT_DOUBLE_EQ(t.value_at(0.5, -1.0), -1.0);  // before first point
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(1.9), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at(4.999), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 50.0);
}

TEST(TraceSeries, ValueAtEmptyReturnsFallback) {
  TraceSeries t("x");
  EXPECT_DOUBLE_EQ(t.value_at(3.0, 7.0), 7.0);
}

TEST(TraceSeries, DownsampleKeepsEndpointsAndBounds) {
  TraceSeries t("x");
  for (int i = 0; i < 1000; ++i) {
    t.record(static_cast<Time>(i), static_cast<double>(i));
  }
  auto d = t.downsample(100);
  EXPECT_LE(d.size(), 102u);
  EXPECT_DOUBLE_EQ(d.front().first, 0.0);
  EXPECT_DOUBLE_EQ(d.back().first, 999.0);
}

TEST(TraceSeries, DownsampleSmallSeriesIsIdentity) {
  TraceSeries t("x");
  t.record(0.0, 1.0);
  t.record(1.0, 2.0);
  auto d = t.downsample(100);
  EXPECT_EQ(d.size(), 2u);
}

TEST(TraceSeries, DownsampleZeroReturnsEmpty) {
  TraceSeries t("x");
  t.record(0.0, 1.0);
  EXPECT_TRUE(t.downsample(0).empty());
}

}  // namespace
}  // namespace burst
