#include "src/sim/trace.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

TEST(TraceSeries, RecordsPoints) {
  TraceSeries t("cwnd");
  EXPECT_TRUE(t.empty());
  t.record(0.0, 1.0);
  t.record(1.0, 2.0);
  EXPECT_EQ(t.name(), "cwnd");
  ASSERT_EQ(t.points().size(), 2u);
  EXPECT_DOUBLE_EQ(t.points()[1].second, 2.0);
}

TEST(TraceSeries, ValueAtStepFunction) {
  TraceSeries t("x");
  t.record(1.0, 10.0);
  t.record(2.0, 20.0);
  t.record(5.0, 50.0);
  EXPECT_DOUBLE_EQ(t.value_at(0.5, -1.0), -1.0);  // before first point
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(1.9), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at(4.999), 20.0);
  EXPECT_DOUBLE_EQ(t.value_at(100.0), 50.0);
}

TEST(TraceSeries, ValueAtEmptyReturnsFallback) {
  TraceSeries t("x");
  EXPECT_DOUBLE_EQ(t.value_at(3.0, 7.0), 7.0);
}

TEST(TraceSeries, DownsampleKeepsEndpointsAndBounds) {
  TraceSeries t("x");
  for (int i = 0; i < 1000; ++i) {
    t.record(static_cast<Time>(i), static_cast<double>(i));
  }
  auto d = t.downsample(100);
  EXPECT_LE(d.size(), 102u);
  EXPECT_DOUBLE_EQ(d.front().first, 0.0);
  EXPECT_DOUBLE_EQ(d.back().first, 999.0);
}

TEST(TraceSeries, DownsampleSmallSeriesIsIdentity) {
  TraceSeries t("x");
  t.record(0.0, 1.0);
  t.record(1.0, 2.0);
  auto d = t.downsample(100);
  EXPECT_EQ(d.size(), 2u);
}

TEST(TraceSeries, DownsampleZeroReturnsEmpty) {
  TraceSeries t("x");
  t.record(0.0, 1.0);
  EXPECT_TRUE(t.downsample(0).empty());
}

TEST(TraceSeries, DownsampleEmptySeriesReturnsEmpty) {
  TraceSeries t("x");
  EXPECT_TRUE(t.downsample(100).empty());
  EXPECT_TRUE(t.downsample(0).empty());
}

TEST(TraceSeries, DownsampleMaxPointsEqualToSizeIsIdentity) {
  TraceSeries t("x");
  for (int i = 0; i < 10; ++i) {
    t.record(static_cast<Time>(i), static_cast<double>(i));
  }
  // stride = size / max_points = 1: every point survives, none duplicated.
  const auto d = t.downsample(10);
  ASSERT_EQ(d.size(), 10u);
  EXPECT_EQ(d, t.points());
}

TEST(TraceSeries, DownsampleRetainsFinalSampleOffStride) {
  TraceSeries t("x");
  // 7 points, max 3 -> stride 2 visits indices 0,2,4,6; the last point IS
  // on-stride here, so build an off-stride case too: 8 points, stride 2
  // visits 0,2,4,6 and must append index 7 explicitly.
  for (int i = 0; i < 8; ++i) {
    t.record(static_cast<Time>(i), static_cast<double>(10 * i));
  }
  const auto d = t.downsample(4);
  ASSERT_GE(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.back().first, 7.0);
  EXPECT_DOUBLE_EQ(d.back().second, 70.0);
  // Monotone time order must survive the final-sample append.
  for (std::size_t i = 1; i < d.size(); ++i) {
    EXPECT_LT(d[i - 1].first, d[i].first);
  }
}

TEST(TraceSeries, DownsampleSinglePoint) {
  TraceSeries t("x");
  t.record(2.5, 9.0);
  const auto d = t.downsample(1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_DOUBLE_EQ(d.front().first, 2.5);
  EXPECT_DOUBLE_EQ(d.front().second, 9.0);
}

TEST(TraceSeries, ValueAtExactlyFirstAndBetweenPoints) {
  TraceSeries t("x");
  t.record(1.0, 10.0);
  t.record(3.0, 30.0);
  // Exactly at the first sample: the step function is right-continuous,
  // so t = first time yields the first value, not the fallback.
  EXPECT_DOUBLE_EQ(t.value_at(1.0, -1.0), 10.0);
  // Just before it: fallback.
  EXPECT_DOUBLE_EQ(t.value_at(0.9999999999, -1.0), -1.0);
  // Repeated queries between samples are stable.
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 10.0);
  EXPECT_DOUBLE_EQ(t.value_at(2.0), 10.0);
}

TEST(TraceSeries, ValueAtDuplicateTimestampsUsesLatest) {
  // Two records at the same instant (e.g. cwnd halved then slow-start
  // reset within one event): the step function exposes the last write.
  TraceSeries t("x");
  t.record(1.0, 10.0);
  t.record(1.0, 5.0);
  EXPECT_DOUBLE_EQ(t.value_at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(t.value_at(1.5), 5.0);
}

}  // namespace
}  // namespace burst
