// Acceptance tests for the reproduction: the paper's qualitative results
// (DESIGN.md §6) must hold on shortened runs. These are the claims the
// benches reproduce in full.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"

namespace burst {
namespace {

Scenario paper(int clients, Transport t, GatewayQueue q = GatewayQueue::kDropTail,
               bool delack = false) {
  Scenario s = Scenario::paper_default();
  s.num_clients = clients;
  s.transport = t;
  s.gateway = q;
  s.delayed_ack = delack;
  s.duration = 12.0;
  s.seed = 71;
  return s;
}

TEST(PaperResults, UdpTracksPoissonAcrossLoads) {
  for (int n : {10, 25, 40, 55}) {
    const auto r = run_experiment(paper(n, Transport::kUdp));
    EXPECT_NEAR(r.cov, r.poisson_cov, 0.25 * r.poisson_cov) << "N=" << n;
  }
}

TEST(PaperResults, PoissonCovFallsWithClients) {
  const auto r10 = run_experiment(paper(10, Transport::kUdp));
  const auto r40 = run_experiment(paper(40, Transport::kUdp));
  EXPECT_NEAR(r10.poisson_cov / r40.poisson_cov, 2.0, 0.01);
  EXPECT_GT(r10.cov, r40.cov);
}

TEST(PaperResults, RenoModulatesTrafficUnderCongestion) {
  // Heavy congestion: Reno's c.o.v. rises well above the Poisson value
  // (paper: >140% above).
  const auto r = run_experiment(paper(50, Transport::kReno));
  EXPECT_GT(r.cov, 1.5 * r.poisson_cov);
}

TEST(PaperResults, RenoBarelyModulatesWhenUncongested) {
  const auto r = run_experiment(paper(8, Transport::kReno));
  EXPECT_LT(r.cov, 1.35 * r.poisson_cov);
  EXPECT_LT(r.loss_pct, 0.5);
}

TEST(PaperResults, RedIncreasesRenoBurstiness) {
  // Sec 3.2.3: RED gateways increase TCP modulation and hurt performance.
  const auto plain = run_experiment(paper(50, Transport::kReno));
  const auto red =
      run_experiment(paper(50, Transport::kReno, GatewayQueue::kRed));
  EXPECT_GT(red.cov, plain.cov);
  EXPECT_LT(red.delivered, plain.delivered);
}

TEST(PaperResults, VegasSmootherThanReno) {
  for (int n : {45, 60}) {
    const auto reno = run_experiment(paper(n, Transport::kReno));
    const auto vegas = run_experiment(paper(n, Transport::kVegas));
    EXPECT_LT(vegas.cov, reno.cov) << "N=" << n;
  }
}

TEST(PaperResults, VegasLowestLossAmongTcp) {
  const int n = 45;
  const auto reno = run_experiment(paper(n, Transport::kReno));
  const auto reno_red =
      run_experiment(paper(n, Transport::kReno, GatewayQueue::kRed));
  const auto vegas = run_experiment(paper(n, Transport::kVegas));
  EXPECT_LT(vegas.loss_pct, reno.loss_pct);
  EXPECT_LT(vegas.loss_pct, reno_red.loss_pct);
}

TEST(PaperResults, VegasRedWorseThanVegasPlain) {
  // Fig 4: Vegas/RED produces higher packet loss than plain Vegas.
  const auto plain = run_experiment(paper(45, Transport::kVegas));
  const auto red =
      run_experiment(paper(45, Transport::kVegas, GatewayQueue::kRed));
  EXPECT_GT(red.loss_pct, plain.loss_pct);
  EXPECT_LT(red.delivered, plain.delivered);
}

TEST(PaperResults, ThroughputPlateausAtCapacity) {
  // Fig 3: past saturation, delivered packets flatten near capacity.
  Scenario s45 = paper(45, Transport::kReno);
  Scenario s60 = paper(60, Transport::kReno);
  const auto r45 = run_experiment(s45);
  const auto r60 = run_experiment(s60);
  const double cap = s45.bottleneck_pps() * s45.duration;
  EXPECT_GT(static_cast<double>(r45.delivered), 0.85 * cap);
  EXPECT_LE(static_cast<double>(r60.delivered), 1.01 * cap);
  // Adding clients beyond saturation cannot raise goodput much.
  EXPECT_LT(static_cast<double>(r60.delivered),
            1.1 * static_cast<double>(r45.delivered));
}

TEST(PaperResults, RenoTimeoutDupackRatioExceedsVegas) {
  // Fig 13: Reno relies on timeouts far more than Vegas.
  const auto reno = run_experiment(paper(50, Transport::kReno));
  const auto vegas = run_experiment(paper(50, Transport::kVegas));
  ASSERT_GT(reno.dupacks, 0u);
  ASSERT_GT(vegas.dupacks, 0u);
  EXPECT_GT(reno.timeout_dupack_ratio, vegas.timeout_dupack_ratio);
}

TEST(PaperResults, VegasSharesBandwidthMoreFairly) {
  // Sec 3.2.2 / Figs 10-12: Vegas shares the bottleneck more fairly.
  const auto reno = run_experiment(paper(50, Transport::kReno));
  const auto vegas = run_experiment(paper(50, Transport::kVegas));
  EXPECT_GE(vegas.fairness, reno.fairness - 0.005);
}

TEST(PaperResults, LossGrowsWithLoadForReno) {
  const auto r40 = run_experiment(paper(40, Transport::kReno));
  const auto r60 = run_experiment(paper(60, Transport::kReno));
  EXPECT_GT(r60.loss_pct, r40.loss_pct);
}

TEST(PaperResults, DelayedAckStillModulates) {
  // Reno/DelayAck appears in Figs 2-4 as another Reno-family curve: it
  // must behave like TCP (modulation under congestion), not like UDP.
  const auto r = run_experiment(
      paper(50, Transport::kReno, GatewayQueue::kDropTail, true));
  EXPECT_GT(r.cov, 1.2 * r.poisson_cov);
  EXPECT_GT(r.dupacks, 0u);
}

TEST(PaperResults, SlowStartLossesAppearAtModerateLoad) {
  // Sec 3.2.1: even at N=20 (uncongested on average), synchronized
  // slow-start bursts overflow the 50-packet buffer.
  const auto r = run_experiment(paper(20, Transport::kReno));
  EXPECT_GT(r.gw_drops, 0u);
}

}  // namespace
}  // namespace burst
