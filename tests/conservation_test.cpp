// System-wide conservation and accounting invariants: no packet is created
// or destroyed anywhere except at sources, queues (drops), and sinks.
#include <gtest/gtest.h>

#include "src/core/dumbbell.hpp"
#include "src/core/experiment.hpp"

namespace burst {
namespace {

Scenario scenario_for(Transport t, GatewayQueue q, int clients,
                      std::uint64_t seed) {
  Scenario s = Scenario::paper_default();
  s.transport = t;
  s.gateway = q;
  s.num_clients = clients;
  s.duration = 5.0;
  s.seed = seed;
  return s;
}

TEST(Conservation, UdpExactAccounting) {
  // For UDP, every generated packet is either delivered, dropped at some
  // queue, or still inside the network when the clock stops.
  Simulator sim(9);
  Scenario sc = scenario_for(Transport::kUdp, GatewayQueue::kDropTail, 45, 9);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  const std::uint64_t generated = net.total_generated();
  const std::uint64_t delivered = net.total_delivered();
  const std::uint64_t dropped = net.bottleneck_queue().stats().drops;
  EXPECT_LE(delivered + dropped, generated);
  // In-flight at stop is bounded by the pipe: a generous cap.
  EXPECT_GE(delivered + dropped + 500, generated);
}

class ConservationMatrix
    : public ::testing::TestWithParam<std::tuple<Transport, GatewayQueue, int>> {
};

TEST_P(ConservationMatrix, TcpDeliversExactlyTheSentPrefix) {
  const auto [t, q, clients] = GetParam();
  Simulator sim(11);
  Scenario sc = scenario_for(t, q, clients, 11);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(sc.duration);
  for (int i = 0; i < net.num_clients(); ++i) {
    auto* snd = net.tcp_sender(i);
    auto* snk = net.tcp_sink(i);
    ASSERT_NE(snd, nullptr);
    ASSERT_NE(snk, nullptr);
    // The receiver's in-order prefix never exceeds what was ever sent
    // (snd_nxt may be lower right after a go-back-N rewind), and the
    // sender's cumulative-ack state never exceeds what was received.
    EXPECT_LE(snk->rcv_nxt(), snd->snd_max());
    EXPECT_LE(snd->snd_una(), snk->rcv_nxt());
    // Sequencing sanity.
    EXPECT_GE(snd->snd_nxt(), snd->snd_una());
    EXPECT_GE(snd->snd_max(), snd->snd_nxt());
    EXPECT_GE(snd->backlog(), 0);
    // Stats sanity: retransmits are part of data_pkts_sent.
    EXPECT_LE(snd->stats().retransmits, snd->stats().data_pkts_sent);
  }
  EXPECT_EQ(net.routing_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConservationMatrix,
    ::testing::Combine(::testing::Values(Transport::kTahoe, Transport::kReno,
                                         Transport::kNewReno,
                                         Transport::kVegas, Transport::kSack),
                       ::testing::Values(GatewayQueue::kDropTail,
                                         GatewayQueue::kRed,
                                         GatewayQueue::kDrr),
                       ::testing::Values(10, 45)));

TEST(Conservation, EventualDeliveryAfterSourcesStop) {
  // Stop generating, keep simulating: TCP must drain every backlog.
  Simulator sim(13);
  Scenario sc = scenario_for(Transport::kReno, GatewayQueue::kDropTail, 45, 13);
  Dumbbell net(sim, sc);
  net.start_sources();
  sim.run(3.0);
  for (int i = 0; i < net.num_clients(); ++i) net.source(i).stop();
  sim.run(300.0);  // generous drain time (RTO backoff can be slow)
  std::uint64_t backlog = 0;
  for (int i = 0; i < net.num_clients(); ++i) {
    backlog += static_cast<std::uint64_t>(net.tcp_sender(i)->backlog() +
                                          net.tcp_sender(i)->flight());
  }
  EXPECT_EQ(backlog, 0u);
  EXPECT_EQ(net.total_delivered(), net.total_generated());
}

TEST(Conservation, GatewayArrivalsMatchClientTransmissions) {
  Simulator sim(17);
  Scenario sc = scenario_for(Transport::kReno, GatewayQueue::kDropTail, 30, 17);
  Dumbbell net(sim, sc);
  std::uint64_t tap_count = 0;
  net.bottleneck_queue().taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type == PacketType::kData) ++tap_count;
  });
  net.start_sources();
  sim.run(sc.duration);
  std::uint64_t sent = 0;
  for (int i = 0; i < net.num_clients(); ++i) {
    sent += net.tcp_sender(i)->stats().data_pkts_sent;
  }
  // Everything a client transmitted either reached the gateway queue or is
  // still on a client link (bounded by pipe size).
  EXPECT_LE(tap_count, sent);
  EXPECT_GE(tap_count + 200, sent);
}

}  // namespace
}  // namespace burst
