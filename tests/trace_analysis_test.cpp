#include "src/stats/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <utility>

namespace burst {
namespace {

TraceSeries steps(const std::vector<std::pair<Time, double>>& pts,
                  const char* name = "t") {
  TraceSeries t(name);
  for (const auto& [at, v] : pts) t.record(at, v);
  return t;
}

// Event counters are 64-bit end to end: at mean-field scale a long trace
// can pass what a 32-bit accumulator holds.
static_assert(
    std::is_same_v<decltype(decrease_counts(
                       std::declval<const std::vector<TraceSeries>&>(), 0.0,
                       1.0)),
                   std::vector<std::int64_t>>,
    "decrease_counts must count in 64 bits");

TEST(TraceAnalysis, DecreaseCountsPerWindow) {
  auto t = steps({{0, 1}, {1, 2}, {2, 1}, {3, 4}, {4, 2}, {5, 1}});
  // Decreases at t=2, 4, 5.
  auto all = decrease_counts({t}, 0.0, 10.0);
  EXPECT_EQ(all, (std::vector<std::int64_t>{3}));
  auto early = decrease_counts({t}, 0.0, 3.0);
  EXPECT_EQ(early, (std::vector<std::int64_t>{1}));
  auto late = decrease_counts({t}, 3.0, 10.0);
  EXPECT_EQ(late, (std::vector<std::int64_t>{2}));
}

TEST(TraceAnalysis, DecreaseCountsMultipleSeries) {
  auto a = steps({{0, 2}, {1, 1}});
  auto b = steps({{0, 2}, {1, 3}});
  auto counts = decrease_counts({a, b}, 0.0, 10.0);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{1, 0}));
}

TEST(TraceAnalysis, MaxSyncFractionAllTogether) {
  // Three flows all cut inside the same 0.1 s bin.
  std::vector<TraceSeries> ts;
  for (int i = 0; i < 3; ++i) {
    ts.push_back(steps({{0.0, 10}, {1.02 + 0.01 * i, 5}}));
  }
  EXPECT_DOUBLE_EQ(max_sync_fraction(ts, 0.1, 0.0, 2.0), 1.0);
}

TEST(TraceAnalysis, MaxSyncFractionSpreadOut) {
  std::vector<TraceSeries> ts;
  for (int i = 0; i < 4; ++i) {
    ts.push_back(steps({{0.0, 10}, {1.0 + 0.5 * i, 5}}));
  }
  EXPECT_DOUBLE_EQ(max_sync_fraction(ts, 0.1, 0.0, 4.0), 0.25);
}

TEST(TraceAnalysis, MaxSyncFractionOneFlowOncePerBin) {
  // One flow cutting three times in a bin counts once.
  auto t = steps({{0, 10}, {1.01, 8}, {1.02, 6}, {1.03, 4}});
  auto other = steps({{0, 10}});
  EXPECT_DOUBLE_EQ(max_sync_fraction({t, other}, 0.1, 0.0, 2.0), 0.5);
}

TEST(TraceAnalysis, MaxSyncFractionDegenerate) {
  EXPECT_DOUBLE_EQ(max_sync_fraction({}, 0.1, 0.0, 1.0), 0.0);
  auto t = steps({{0, 1}});
  EXPECT_DOUBLE_EQ(max_sync_fraction({t}, 0.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(max_sync_fraction({t}, 0.1, 1.0, 1.0), 0.0);
}

TEST(TraceAnalysis, ResampleHoldsLastValue) {
  auto t = steps({{0.0, 1}, {1.0, 2}, {2.5, 3}});
  auto g = resample(t, 0.0, 3.0, 1.0);
  EXPECT_EQ(g, (std::vector<double>{1, 2, 2}));
  auto fine = resample(t, 2.0, 3.0, 0.25);
  EXPECT_EQ(fine, (std::vector<double>{2, 2, 3, 3}));
}

TEST(TraceAnalysis, ResampleFallbackBeforeFirstPoint) {
  auto t = steps({{5.0, 9}});
  auto g = resample(t, 0.0, 2.0, 1.0, -1.0);
  EXPECT_EQ(g, (std::vector<double>{-1, -1}));
  EXPECT_TRUE(resample(t, 0.0, 2.0, 0.0).empty());
}

TEST(TraceAnalysis, DecreaseIndicator) {
  auto t = steps({{0.0, 5}, {0.15, 3}, {0.35, 4}, {0.55, 2}});
  auto ind = decrease_indicator(t, 0.1, 0.0, 0.6);
  // Bins: [0,.1)=0, [.1,.2)=1 (cut at .15), [.2,.3)=0, [.3,.4)=0 (increase),
  // [.4,.5)=0, [.5,.6)=1.
  EXPECT_EQ(ind, (std::vector<double>{0, 1, 0, 0, 0, 1}));
}

TEST(TraceAnalysis, DecreaseIndicatorDegenerate) {
  auto t = steps({{0.0, 5}});
  EXPECT_TRUE(decrease_indicator(t, 0.0, 0.0, 1.0).empty());
  EXPECT_TRUE(decrease_indicator(t, 0.1, 1.0, 1.0).empty());
}

}  // namespace
}  // namespace burst
