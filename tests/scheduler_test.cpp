#include "src/sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace burst {
namespace {

TEST(Scheduler, StartsEmpty) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.next_time(), kTimeNever);
}

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  while (!s.empty()) {
    auto r = s.take_next();
    r.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, EqualTimesFireInScheduleOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  while (!s.empty()) s.take_next().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NextTimeReportsEarliest) {
  Scheduler s;
  s.schedule_at(7.5, [] {});
  s.schedule_at(2.5, [] {});
  EXPECT_DOUBLE_EQ(s.next_time(), 2.5);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  EventId id = s.schedule_at(1.0, [&] { ran = true; });
  s.schedule_at(2.0, [] {});
  EXPECT_TRUE(s.pending(id));
  s.cancel(id);
  EXPECT_FALSE(s.pending(id));
  while (!s.empty()) s.take_next().fn();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelFiredEventIsNoOp) {
  Scheduler s;
  EventId id = s.schedule_at(1.0, [] {});
  s.take_next().fn();
  s.cancel(id);  // must not corrupt live count
  EXPECT_TRUE(s.empty());
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.size(), 1u);
}

TEST(Scheduler, CancelInvalidIdIsNoOp) {
  Scheduler s;
  s.cancel(kInvalidEventId);
  s.cancel(9999);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, DoubleCancelIsNoOp) {
  Scheduler s;
  EventId id = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(id);
  s.cancel(id);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule_at(static_cast<double>(fired), chain);
  };
  s.schedule_at(0.0, chain);
  while (!s.empty()) s.take_next().fn();
  EXPECT_EQ(fired, 5);
}

TEST(Scheduler, SizeTracksCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  EXPECT_EQ(s.size(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FALSE(s.empty());
}

TEST(Scheduler, CancelledHeadIsSkipped) {
  Scheduler s;
  EventId a = s.schedule_at(1.0, [] {});
  bool ran_b = false;
  s.schedule_at(2.0, [&] { ran_b = true; });
  s.cancel(a);
  EXPECT_DOUBLE_EQ(s.next_time(), 2.0);
  s.take_next().fn();
  EXPECT_TRUE(ran_b);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, ScheduledCountIsCumulative) {
  Scheduler s;
  for (int i = 0; i < 4; ++i) s.schedule_at(1.0, [] {});
  while (!s.empty()) s.take_next().fn();
  EXPECT_EQ(s.scheduled_count(), 4u);
}

}  // namespace
}  // namespace burst
