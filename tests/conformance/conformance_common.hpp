// Shared glue for the packet-script conformance suite.
//
// Every scenario drives ONE live sender/sink pair over ScriptChannels,
// records the sender's event stream (and optionally the raw ACKs) with a
// TraceRecorder, asserts the protocol-conformance facts the scenario was
// designed to pin down, and finally compares the full trace against a
// checked-in golden file (tests/conformance/golden/<name>.trace).
//
// Regenerate goldens after an intentional dynamics change with:
//   BURST_REGEN_GOLDEN=1 ctest -L conformance
// and justify the diff in the PR (see DESIGN.md, "Conformance testkit").
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/testkit/golden.hpp"
#include "src/testkit/script_harness.hpp"
#include "src/testkit/trace_recorder.hpp"

namespace burst::testkit {

/// EXPECTs @p rec's trace to match the golden file @p name.
inline void ExpectGolden(const std::string& name, const TraceRecorder& rec) {
  const GoldenResult r = check_golden(name, rec.lines());
  EXPECT_TRUE(r.ok) << r.message;
}

/// Transmissions of @p seq in the trace (first send + retransmissions).
inline int TransmissionsOf(const TraceRecorder& rec, std::int64_t seq) {
  int n = 0;
  for (const TcpSenderEvent& e : rec.events()) {
    if (e.kind == TcpSenderEvent::Kind::kSend && e.seq == seq) ++n;
  }
  return n;
}

/// Total segments sent carrying the retransmit (Karn taint) flag.
inline int Retransmissions(const TraceRecorder& rec) {
  int n = 0;
  for (const TcpSenderEvent& e : rec.events()) {
    if (e.kind == TcpSenderEvent::Kind::kSend && e.retransmit) ++n;
  }
  return n;
}

}  // namespace burst::testkit
