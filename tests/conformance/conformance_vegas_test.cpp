// Vegas conformance: the fine-grained retransmit check, its
// once-per-loss-detection guard, and the delivered-packet Actual in the
// per-RTT decision.
//
// Setup shared by the fine-grained scripts (advertised window 4,
// min_rto=2.0 to park the coarse timer): with a constant 100 ms RTT every
// clean sample decays rttvar by 3/4, so by seq 30 the fine-grained
// timeout srtt + 4*rttvar has collapsed to ~= srtt = 0.1 s. Seq 30 goes
// out at t=0.9; its successors 31-33 leave a full RTT later (t=1.0), so
// the first duplicate ACK lands at t=1.1 — 0.2 s after the hole was
// sent, past the fine-grained timeout.

#include <gtest/gtest.h>

#include "src/transport/tcp_vegas.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

TcpConfig FineGrainedConfig() {
  TcpConfig tc;
  tc.advertised_window = 4.0;
  tc.rto.min_rto = 2.0;  // keep the coarse timer out of the script window
  return tc;
}

// Brakmo's fine-grained check: an EARLY duplicate ACK (below the Reno
// threshold of three) retransmits the hole, because the head of the
// window has already exceeded srtt + 4*rttvar. In this script seq 30
// leaves with seq 31 at t=1.0, so dup ACK 1 (t=1.1) finds the head
// exactly one RTT old — not yet expired — and dup ACK 2 (t=1.2, from
// seq 32 sent a round later) triggers the fine-grained retransmit.
TEST(VegasConformance, FineGrainedRetransmitOnEarlyDupAck) {
  ScriptHarness h;
  h.fwd.drop_seq(30);
  auto* tcp = h.make_sender<TcpVegas>(FineGrainedConfig());
  h.sender->app_send(60);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 60);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 30), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 1);

  // The retransmission was issued below the Reno dup-ACK threshold.
  bool fine = false;
  for (const TcpSenderEvent& e : h.recorder.events()) {
    if (e.kind == TcpSenderEvent::Kind::kSend && e.retransmit) {
      EXPECT_LT(e.dupacks, 3);
      fine = true;
    }
  }
  EXPECT_TRUE(fine);
  ExpectGolden("vegas_fine_early_dupack", h.recorder);
}

// The guard against resending the same hole once per dup ACK. The
// retransmission of seq 30 is delayed 300 ms in flight, and dup ACKs 2
// and 3 are delayed so they arrive after the resent head has ITSELF
// exceeded the fine-grained timeout again (and dup ACK 3 crosses the
// Reno threshold). The seeded bug retransmitted the hole on each of
// them; the guard allows exactly one resend per loss detection.
TEST(VegasConformance, HoleResentOncePerLossDetection) {
  ScriptHarness h;
  h.fwd.drop_seq(30);
  h.fwd.delay_seq(30, 0.3, 2);   // retransmission delivered at t=1.45
  h.rev.delay_seq(30, 0.15, 3);  // dup ACK 2 arrives t=1.25 (head expired)
  h.rev.delay_seq(30, 0.25, 4);  // dup ACK 3 arrives t=1.35 (threshold)
  auto* tcp = h.make_sender<TcpVegas>(FineGrainedConfig());
  h.sender->app_send(60);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 60);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  // The whole point: one retransmission despite three dup ACKs, two of
  // which found the (resent) head expired again.
  EXPECT_EQ(TransmissionsOf(h.recorder, 30), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 1);
  ExpectGolden("vegas_no_double_fine_retransmit", h.recorder);
}

// Actual = DELIVERED packets per round-trip. During a loss episode the
// per-RTT decision at the recovery ACK must be computed from cumulative
// ACK progress; the seeded bug fed data_pkts_sent (transmissions incl.
// the retransmission) into Actual, skewing the decision exactly when the
// path is dropping. The golden pins the post-loss cwnd trajectory; the
// structural check: the window never grows between loss detection and
// the recovery ACK.
TEST(VegasConformance, ActualCountsDeliveredNotTransmitted) {
  TcpConfig tc;
  tc.advertised_window = 8.0;
  ScriptHarness h;
  h.fwd.drop_seq(40);
  auto* tcp = h.make_sender<TcpVegas>(tc);
  h.sender->app_send(80);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 80);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 40), 2);

  const auto& ev = h.recorder.events();
  std::size_t rexmit = ev.size(), recovery = ev.size();
  for (std::size_t i = 0; i < ev.size(); ++i) {
    if (rexmit == ev.size() && ev[i].kind == TcpSenderEvent::Kind::kSend &&
        ev[i].retransmit) {
      rexmit = i;
    }
    if (rexmit < ev.size() && ev[i].kind == TcpSenderEvent::Kind::kNewAck &&
        ev[i].seq > 40) {
      recovery = i;
      break;
    }
  }
  ASSERT_LT(rexmit, ev.size());
  ASSERT_LT(recovery, ev.size());
  for (std::size_t i = rexmit; i <= recovery; ++i) {
    EXPECT_LE(ev[i].cwnd, ev[rexmit].cwnd + 1e-9)
        << "window grew mid-recovery at event " << i;
  }
  ExpectGolden("vegas_actual_delivered", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
