// SACK conformance: three drops in one window. The receiver reports the
// buffered runs as SACK blocks; the sender's scoreboard + pipe algorithm
// fills exactly the holes (each once) and recovery never needs the
// coarse timer — the scenario classic Reno cannot survive.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/transport/tcp_sack.hpp"
#include "src/transport/tcp_sink.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

TEST(SackConformance, MultipleDropsRecoverWithoutTimeout) {
  ScriptHarnessConfig cfg;
  cfg.record_acks = true;  // the golden pins the SACK blocks on the wire
  cfg.sink.sack = true;
  ScriptHarness h(cfg);
  h.fwd.drop_seq(10).drop_seq(13).drop_seq(16);  // all in the 0.3 cluster
  auto* tcp = h.make_sender<TcpSack>(TcpConfig{});
  h.sender->app_send(60);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 60);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(tcp->stats().fast_retransmits, 1u);  // one recovery episode
  EXPECT_EQ(TransmissionsOf(h.recorder, 10), 2);
  EXPECT_EQ(TransmissionsOf(h.recorder, 13), 2);
  EXPECT_EQ(TransmissionsOf(h.recorder, 16), 2);
  // SACKed data is never resent. The pipe algorithm DOES resend the two
  // tail segments (19, 20) whose SACKs are still in flight when the pipe
  // drains — this sender fills the pipe with the next un-SACKed sequence
  // rather than implementing RFC 3517's IsLost() reordering check. The
  // golden pins that policy; five retransmissions total, three of them
  // true holes.
  EXPECT_EQ(TransmissionsOf(h.recorder, 19), 2);
  EXPECT_EQ(TransmissionsOf(h.recorder, 20), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 5);

  // Duplicate ACKs actually carried SACK blocks.
  const auto& lines = h.recorder.lines();
  EXPECT_TRUE(std::any_of(lines.begin(), lines.end(), [](const auto& l) {
    return l.find("sack=[") != std::string::npos;
  }));
  EXPECT_FALSE(tcp->in_fast_recovery());
  EXPECT_EQ(tcp->scoreboard_size(), 0u);
  ExpectGolden("sack_multi_drop", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
