// Retransmission-timer conformance: Karn's rule through a delayed-ACK
// receiver, exponential RTO backoff, and the cancel/restart discipline
// at the snd_una == snd_nxt boundary.

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

// Karn's rule across a delayed ACK: after fast retransmit fills the
// hole, the sink's delayed ACK covers the RETRANSMITTED segment together
// with a clean one. The combined ACK must carry the taint (OR of both
// flags), so the sender takes NO RTT sample from it — one optimistic
// sample would poison srtt for the rest of the connection.
TEST(RtoConformance, KarnTaintSurvivesDelayedAckCoalescing) {
  ScriptHarnessConfig cfg;
  cfg.record_acks = true;
  cfg.sink.delayed_ack = true;
  ScriptHarness h(cfg);
  h.fwd.drop_seq(10);
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(40);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 40);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 10), 2);

  // The first ACK advancing snd_una past the hole is tainted: the clean
  // sample counter must not move across it.
  const auto& ev = h.recorder.events();
  std::uint64_t samples_before = 0;
  bool checked = false;
  for (const TcpSenderEvent& e : ev) {
    if (!checked && e.kind == TcpSenderEvent::Kind::kNewAck && e.seq > 10) {
      EXPECT_EQ(e.rtt_samples, samples_before)
          << "recovery ACK covering a retransmission produced an RTT sample";
      checked = true;
    }
    samples_before = e.rtt_samples;
  }
  EXPECT_TRUE(checked);
  // Sampling resumes on later clean ACKs.
  EXPECT_GT(tcp->stats().rtt_samples, 0u);
  ExpectGolden("karn_delack_taint", h.recorder);
}

// Tail loss with the retransmissions ALSO lost: successive timeouts must
// back the timer off exponentially (x2 per expiry), and none of the
// tainted recovery ACKs may feed the estimator.
TEST(RtoConformance, BackoffDoublesPerTimeout) {
  ScriptHarness h;
  h.fwd.drop_seq(5, 1).drop_seq(5, 2).drop_seq(5, 3);
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(6);
  h.sim.run(20.0);

  EXPECT_EQ(tcp->snd_una(), 6);
  EXPECT_EQ(tcp->stats().timeouts, 3u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 5), 4);

  const auto rtos = h.recorder.events_of(TcpSenderEvent::Kind::kRto);
  ASSERT_EQ(rtos.size(), 3u);
  const Time gap1 = rtos[1].time - rtos[0].time;
  const Time gap2 = rtos[2].time - rtos[1].time;
  EXPECT_NEAR(gap2, 2.0 * gap1, 1e-9);  // exponential backoff
  // Each expiry collapses to go-back-N slow start.
  for (const TcpSenderEvent& e : rtos) EXPECT_DOUBLE_EQ(e.cwnd, 1.0);
  ExpectGolden("rto_backoff_doubles", h.recorder);
}

// The snd_una == snd_nxt boundary: once everything is acknowledged and
// no backlog remains, the timer must be cancelled — an idle connection
// never times out — and a later burst re-arms it from scratch.
TEST(RtoConformance, TimerCancelledWhenIdleRearmedOnNewData) {
  ScriptHarness h;
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(4);
  h.sim.schedule_at(10.0, [tcp] { tcp->app_send(4); });
  h.sim.run(30.0);

  EXPECT_EQ(tcp->snd_una(), 8);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_TRUE(h.recorder.events_of(TcpSenderEvent::Kind::kRto).empty());
  EXPECT_EQ(Retransmissions(h.recorder), 0);
  // The second burst really did start after the idle gap.
  bool idle_send = false;
  for (const TcpSenderEvent& e :
       h.recorder.events_of(TcpSenderEvent::Kind::kSend)) {
    if (e.time >= 10.0) idle_send = true;
  }
  EXPECT_TRUE(idle_send);
  ExpectGolden("rto_timer_cancel_idle", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
