// Reno conformance scripts: fast recovery with window inflation,
// reordering tolerance below the dup-ACK threshold, RFC 3042 limited
// transmit, and the ECN one-cut-per-RTT rule.

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

// Single mid-window loss. Reno must: fast-retransmit on the third dup
// ACK, set cwnd = ssthresh + 3 (inflation), add one packet per further
// dup ACK, and deflate to ssthresh on the recovery ACK — with no timeout.
TEST(RenoConformance, FastRecoveryInflatesAndDeflates) {
  ScriptHarness h;
  h.fwd.drop_seq(10);
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(60);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 60);
  EXPECT_EQ(tcp->stats().fast_retransmits, 1u);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 10), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 1);

  // The dup-ACK that crossed the threshold leaves the sender in fast
  // recovery with the inflated window ssthresh + 3 (the kSend of the
  // retransmission itself is emitted mid-hook, before inflation).
  bool saw_entry = false;
  for (const TcpSenderEvent& e :
       h.recorder.events_of(TcpSenderEvent::Kind::kDupAck)) {
    if (e.dupacks == 3) {
      saw_entry = true;
      EXPECT_EQ(e.state, "fast-recovery");
      EXPECT_DOUBLE_EQ(e.cwnd, e.ssthresh + 3.0);
    }
  }
  EXPECT_TRUE(saw_entry);
  EXPECT_FALSE(tcp->in_fast_recovery());
  ExpectGolden("reno_fast_recovery", h.recorder);
}

// Reordering below the threshold: seq 12 (sent in the 0.3 cluster with
// 13 and 14) is delayed by 70 ms, so exactly two duplicate ACKs arrive
// before the late segment fills the hole at the sink. Two dup ACKs must
// not trigger any retransmission or window cut.
TEST(RenoConformance, ReorderBelowThresholdNoSpuriousRetransmit) {
  ScriptHarness h;
  h.fwd.delay_seq(12, 0.07);
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(40);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 40);
  EXPECT_EQ(Retransmissions(h.recorder), 0);
  EXPECT_EQ(tcp->stats().fast_retransmits, 0u);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  // The episode produced duplicate ACKs, but never a third.
  int max_dups = 0;
  for (const TcpSenderEvent& e :
       h.recorder.events_of(TcpSenderEvent::Kind::kDupAck)) {
    max_dups = std::max(max_dups, e.dupacks);
  }
  EXPECT_EQ(max_dups, 2);
  ExpectGolden("reno_reorder_below_threshold", h.recorder);
}

// RFC 3042 limited transmit on a thin flow. Dropping seq 2 of an
// 8-packet transfer leaves only seqs 3-4 above the hole — two dup ACKs,
// one short of fast retransmit, so stock Reno would sit out an RTO.
// Limited transmit sends one NEW segment on each of the first two dup
// ACKs (no cwnd growth); their ACKs provide the third duplicate and
// recovery proceeds without the timeout.
TEST(RenoConformance, LimitedTransmitAvoidsTimeout) {
  ScriptHarnessConfig cfg;
  ScriptHarness h(cfg);
  h.fwd.drop_seq(2);
  TcpConfig tc;
  tc.limited_transmit = true;
  auto* tcp = h.make_sender<TcpReno>(tc);
  h.sender->app_send(8);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 8);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(tcp->stats().fast_retransmits, 1u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 2), 2);

  // The segments shipped on dup ACKs 1 and 2 are new data (not
  // retransmissions) and must not have grown the window.
  int lt_sends = 0;
  const auto& ev = h.recorder.events();
  for (std::size_t i = 0; i + 1 < ev.size(); ++i) {
    if (ev[i].kind == TcpSenderEvent::Kind::kSend && ev[i].dupacks >= 1 &&
        ev[i].dupacks <= 2 && !ev[i].retransmit) {
      ++lt_sends;
      EXPECT_DOUBLE_EQ(ev[i].cwnd, 3.0);  // unchanged by the dup ACKs
    }
  }
  EXPECT_EQ(lt_sends, 2);
  ExpectGolden("reno_limited_transmit", h.recorder);
}

// ECN: seqs 8 and 9 travel in the same send cluster and both get CE
// marks. Their ECE echoes reach the sender at the same instant; RFC 2481
// era behavior is at most one window cut per round-trip, with no
// retransmission at all (nothing was lost).
TEST(RenoConformance, EcnOneCutPerRttNoRetransmit) {
  ScriptHarnessConfig cfg;
  cfg.record_acks = true;
  ScriptHarness h(cfg);
  h.fwd.mark_seq(8).mark_seq(9);
  TcpConfig tc;
  tc.ecn = true;
  auto* tcp = h.make_sender<TcpReno>(tc);
  h.sender->app_send(30);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 30);
  EXPECT_EQ(tcp->stats().ecn_echoes, 2u);
  EXPECT_EQ(tcp->stats().ecn_reductions, 1u);
  EXPECT_EQ(h.recorder.events_of(TcpSenderEvent::Kind::kEcnEcho).size(), 1u);
  EXPECT_EQ(Retransmissions(h.recorder), 0);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  ExpectGolden("reno_ecn_one_cut_per_rtt", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
