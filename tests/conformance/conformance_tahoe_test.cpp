// Tahoe conformance scripts.
//
// Timing model (ScriptHarness defaults): a segment sent at t arrives at
// the sink at t + 0.05 and its ACK is back at the sender at t + 0.10.
// With zero serialization time, slow start sends in exact clusters:
// seq 0 at t=0, seqs 1-2 at 0.1, seqs 3-6 at 0.2, seqs 7-14 at 0.3, ...

#include <gtest/gtest.h>

#include "src/transport/tcp_tahoe.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

// Drop seq 3 (sent in the 0.2 cluster). Seqs 4-6 arrive above the hole,
// their three duplicate ACKs land together at t=0.3, and Tahoe must:
// halve ssthresh, rewind to the hole, collapse cwnd to 1, and resend the
// hole EXACTLY ONCE. The seeded bug paired an explicit retransmit_una()
// with the rewind, so the caller's try_send() shipped the same head a
// second time back-to-back.
TEST(TahoeConformance, FastRetransmitResendsHoleOnce) {
  ScriptHarness h;
  h.fwd.drop_seq(3);
  auto* tcp = h.make_sender<TcpTahoe>();
  h.sender->app_send(40);
  h.sim.run(5.0);

  EXPECT_EQ(tcp->snd_una(), 40);  // transfer completed
  EXPECT_EQ(tcp->stats().fast_retransmits, 1u);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  // The whole point: one original + one retransmission, never two.
  EXPECT_EQ(TransmissionsOf(h.recorder, 3), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 1);

  // The retransmission happens at the threshold crossing with the window
  // already collapsed (Tahoe re-slow-starts from the hole).
  for (const TcpSenderEvent& e : h.recorder.events()) {
    if (e.kind == TcpSenderEvent::Kind::kSend && e.retransmit) {
      EXPECT_DOUBLE_EQ(e.cwnd, 1.0);
      EXPECT_EQ(e.dupacks, 3);
    }
  }
  ExpectGolden("tahoe_fast_retransmit", h.recorder);
}

// Drop the LAST segment of an 8-packet transfer: nothing follows it, so
// no duplicate ACKs can form and the coarse timer is the only recovery.
// Pins (a) go-back-N from the hole with cwnd=1, (b) the RTO firing
// relative to the LAST timer restart (the final new ACK at t=0.3), not
// the segment's first transmission, and (c) Karn's rule: the ACK of the
// retransmitted segment is tainted and must not produce an RTT sample.
TEST(TahoeConformance, RtoGoBackNAfterTailLoss) {
  ScriptHarness h;
  h.fwd.drop_seq(7);
  auto* tcp = h.make_sender<TcpTahoe>();
  h.sender->app_send(8);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 8);
  EXPECT_EQ(tcp->stats().timeouts, 1u);
  EXPECT_EQ(tcp->stats().fast_retransmits, 0u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 7), 2);

  const auto rtos = h.recorder.events_of(TcpSenderEvent::Kind::kRto);
  ASSERT_EQ(rtos.size(), 1u);
  // Last new ACK before the timeout restarted the timer; with seven
  // clean samples srtt+4*rttvar rounds up to one 0.1 tick, clamped to
  // the 0.2 coarse minimum.
  const auto acks = h.recorder.events_of(TcpSenderEvent::Kind::kNewAck);
  Time last_ack_before = 0.0;
  for (const TcpSenderEvent& a : acks) {
    if (a.time < rtos[0].time) last_ack_before = a.time;
  }
  EXPECT_NEAR(rtos[0].time - last_ack_before, 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(rtos[0].cwnd, 1.0);

  // Karn: the recovery ACK covers a retransmitted segment, so the clean
  // sample count must not advance after the timeout.
  const std::uint64_t samples_at_rto = rtos[0].rtt_samples;
  EXPECT_EQ(tcp->stats().rtt_samples, samples_at_rto);
  ExpectGolden("tahoe_rto_go_back_n", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
