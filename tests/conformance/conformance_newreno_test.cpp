// NewReno conformance: partial-ACK recovery (RFC 2582). Two drops in the
// same window would stall classic Reno into a timeout; NewReno's partial
// ACK retransmits the next hole immediately and recovery survives until
// the cumulative ACK covers `recover`.

#include <gtest/gtest.h>

#include "src/transport/tcp_newreno.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

TEST(NewRenoConformance, PartialAckRetransmitsNextHole) {
  ScriptHarness h;
  h.fwd.drop_seq(10).drop_seq(12);  // both in the t=0.3 send cluster
  auto* tcp = h.make_sender<TcpNewReno>();
  h.sender->app_send(60);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 60);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  // One recovery episode covering both holes; each resent exactly once.
  EXPECT_EQ(tcp->stats().fast_retransmits, 1u);
  EXPECT_EQ(TransmissionsOf(h.recorder, 10), 2);
  EXPECT_EQ(TransmissionsOf(h.recorder, 12), 2);
  EXPECT_EQ(Retransmissions(h.recorder), 2);

  // The second hole's retransmission is driven by a PARTIAL ACK (a new
  // ACK processed while still in fast recovery), not by dup ACKs.
  const auto& ev = h.recorder.events();
  bool partial_ack_rexmit = false;
  for (std::size_t i = 0; i + 1 < ev.size(); ++i) {
    if (ev[i].kind == TcpSenderEvent::Kind::kSend && ev[i].retransmit &&
        ev[i].seq == 12) {
      // Emitted from on_new_ack: the following ACK event is the partial
      // ACK that triggered it, still inside recovery.
      ASSERT_EQ(ev[i + 1].kind, TcpSenderEvent::Kind::kNewAck);
      EXPECT_EQ(ev[i + 1].seq, 12);
      EXPECT_EQ(ev[i + 1].state, "fast-recovery");
      partial_ack_rexmit = true;
    }
  }
  EXPECT_TRUE(partial_ack_rexmit);
  EXPECT_FALSE(tcp->in_fast_recovery());
  ExpectGolden("newreno_partial_ack", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
