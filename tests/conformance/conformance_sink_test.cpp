// TcpSink conformance: delayed-ACK echo-timestamp and Karn-taint rules
// (RFC 1122 delayed ACKs + the RFC 7323 "echo the OLDER timestamp when
// one ACK covers two segments" rule).
//
// These scripts inject data segments directly into a sink at exact times
// and capture every ACK it emits. The seeded bug: the immediate-ACK
// paths (out-of-order/duplicate arrivals, and in-order arrivals below a
// hole) clobbered the held delayed-ACK echo state with the NEW arrival's
// timestamp, yielding optimistically small RTT samples at the sender.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_sink.hpp"
#include "tests/conformance/conformance_common.hpp"

namespace burst::testkit {
namespace {

/// A zero-delay ACK capture: records every ACK the sink emits, both as
/// (time, packet) for assertions and as ack-rx trace lines for goldens.
struct SinkScript {
  explicit SinkScript(TcpSinkConfig cfg) : sink(sim, node, 0, 0, cfg) {
    tap.owner = this;
    node.add_route(Node::kDefaultRoute, &tap);
  }

  /// Schedules a data segment to hit the sink at @p at. @p ts plays the
  /// sender transmission timestamp; @p rexmit the Karn taint flag.
  void inject(Time at, std::int64_t seq, Time ts, bool rexmit = false) {
    sim.schedule_at(at, [this, seq, ts, rexmit] {
      Packet p;
      p.type = PacketType::kData;
      p.seq = seq;
      p.ts_echo = ts;
      p.retransmit = rexmit;
      sink.handle(p);
    });
  }

  struct Tap : PacketChannel {
    SinkScript* owner = nullptr;
    void send(const Packet& p) override {
      owner->acks.emplace_back(owner->sim.now(), p);
      owner->recorder.record_ack(owner->sim.now(), p);
    }
  };

  Simulator sim{1};
  Node node{1};
  Tap tap;
  TraceRecorder recorder;
  TcpSink sink;
  std::vector<std::pair<Time, Packet>> acks;
};

TcpSinkConfig Delack() {
  TcpSinkConfig cfg;
  cfg.delayed_ack = true;
  return cfg;
}

// Seq 0 arrives and its ACK is delayed; seq 2 arrives out of order 30 ms
// later. The immediate duplicate ACK covers BOTH segments, so it must
// echo seq 0's (older) timestamp, and the pending delayed ACK must be
// cancelled, not left to fire a second ACK.
TEST(SinkConformance, OutOfOrderAckKeepsHeldEchoTimestamp) {
  SinkScript s(Delack());
  s.inject(0.00, 0, /*ts=*/0.00);
  s.inject(0.03, 2, /*ts=*/0.03);
  s.sim.run(1.0);

  ASSERT_EQ(s.acks.size(), 1u);
  EXPECT_NEAR(s.acks[0].first, 0.03, 1e-12);
  EXPECT_EQ(s.acks[0].second.ack, 1);
  EXPECT_DOUBLE_EQ(s.acks[0].second.ts_echo, 0.00);  // older, not 0.03
  EXPECT_FALSE(s.acks[0].second.retransmit);
  EXPECT_EQ(s.sink.stats().dup_acks_sent, 1u);
  ExpectGolden("sink_ooo_echo_preserved", s.recorder);
}

// Karn taint is the OR of both covered segments, whichever side carried
// the retransmit flag.
TEST(SinkConformance, OutOfOrderAckTaintsFromEitherSegment) {
  {
    SinkScript s(Delack());  // the NEW (out-of-order) segment is tainted
    s.inject(0.00, 0, 0.00, /*rexmit=*/false);
    s.inject(0.03, 2, 0.03, /*rexmit=*/true);
    s.sim.run(1.0);
    ASSERT_EQ(s.acks.size(), 1u);
    EXPECT_TRUE(s.acks[0].second.retransmit);
    EXPECT_DOUBLE_EQ(s.acks[0].second.ts_echo, 0.00);
    ExpectGolden("sink_ooo_taint_new_segment", s.recorder);
  }
  {
    SinkScript s(Delack());  // the HELD segment is tainted
    s.inject(0.00, 0, 0.00, /*rexmit=*/true);
    s.inject(0.03, 2, 0.03, /*rexmit=*/false);
    s.sim.run(1.0);
    ASSERT_EQ(s.acks.size(), 1u);
    EXPECT_TRUE(s.acks[0].second.retransmit);
    ExpectGolden("sink_ooo_taint_held_segment", s.recorder);
  }
}

// The classic second-in-order-segment flush: one ACK covering both, with
// the older echo timestamp, and nothing left on the timer.
TEST(SinkConformance, SecondSegmentFlushKeepsOlderEcho) {
  SinkScript s(Delack());
  s.inject(0.00, 0, 0.00);
  s.inject(0.04, 1, 0.04);
  s.sim.run(1.0);

  ASSERT_EQ(s.acks.size(), 1u);
  EXPECT_NEAR(s.acks[0].first, 0.04, 1e-12);
  EXPECT_EQ(s.acks[0].second.ack, 2);
  EXPECT_DOUBLE_EQ(s.acks[0].second.ts_echo, 0.00);
  ExpectGolden("sink_second_segment_flush", s.recorder);
}

// A lone segment is acknowledged by the 100 ms timer with its own echo.
TEST(SinkConformance, DelackTimerFlushesAfterInterval) {
  SinkScript s(Delack());
  s.inject(0.00, 0, 0.00);
  s.sim.run(1.0);

  ASSERT_EQ(s.acks.size(), 1u);
  EXPECT_NEAR(s.acks[0].first, 0.10, 1e-12);
  EXPECT_EQ(s.acks[0].second.ack, 1);
  EXPECT_DOUBLE_EQ(s.acks[0].second.ts_echo, 0.00);
  ExpectGolden("sink_delack_timer_flush", s.recorder);
}

// In-order arrival below a buffered hole: ACK immediately (the sender's
// fast-retransmit signal depends on it), with the filling segment's own
// echo when no delayed ACK is pending; the final drain re-arms the
// delayed-ACK machinery normally.
TEST(SinkConformance, HoleAbovePartialFillAcksImmediately) {
  SinkScript s(Delack());
  s.inject(0.00, 0, 0.00);  // ACK delayed
  s.inject(0.02, 3, 0.02);  // out of order: dup ACK, held echo ts=0.00
  s.inject(0.04, 1, 0.04);  // in order below the hole: immediate ACK
  s.inject(0.06, 2, 0.06);  // fills the hole: drain, delack re-armed
  s.sim.run(1.0);

  ASSERT_EQ(s.acks.size(), 3u);
  EXPECT_NEAR(s.acks[0].first, 0.02, 1e-12);
  EXPECT_EQ(s.acks[0].second.ack, 1);
  EXPECT_DOUBLE_EQ(s.acks[0].second.ts_echo, 0.00);  // held echo wins

  EXPECT_NEAR(s.acks[1].first, 0.04, 1e-12);
  EXPECT_EQ(s.acks[1].second.ack, 2);
  EXPECT_DOUBLE_EQ(s.acks[1].second.ts_echo, 0.04);  // nothing pending

  EXPECT_NEAR(s.acks[2].first, 0.16, 1e-12);  // delack timer, re-armed
  EXPECT_EQ(s.acks[2].second.ack, 4);
  EXPECT_DOUBLE_EQ(s.acks[2].second.ts_echo, 0.06);
  ExpectGolden("sink_hole_above_partial_fill", s.recorder);
}

// End-to-end delayed-ACK cadence against a live Reno sender: every ACK
// covers up to two segments with the older timestamp echoed, lone
// segments flush on the 100 ms timer, and the whole interleaving is
// byte-stable (the golden pins it).
TEST(SinkConformance, RenoDelackFlushOrdering) {
  ScriptHarnessConfig cfg;
  cfg.record_acks = true;
  cfg.sink.delayed_ack = true;
  ScriptHarness h(cfg);
  auto* tcp = h.make_sender<TcpReno>();
  h.sender->app_send(21);
  h.sim.run(10.0);

  EXPECT_EQ(tcp->snd_una(), 21);
  EXPECT_EQ(tcp->stats().timeouts, 0u);
  EXPECT_EQ(tcp->stats().dupacks, 0u);
  EXPECT_EQ(Retransmissions(h.recorder), 0);
  // Delayed ACKs actually coalesced: fewer ACKs than segments.
  EXPECT_LT(h.sink->stats().acks_sent, h.sink->stats().unique_packets);
  ExpectGolden("reno_delack_flush_ordering", h.recorder);
}

}  // namespace
}  // namespace burst::testkit
