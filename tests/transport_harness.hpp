// Shared two-node test harness: one TCP (or UDP) sender on node 0 talking
// to a sink on node 1 over a configurable bottleneck link, with an
// uncongested reverse path for ACKs.
#pragma once

#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"

namespace burst::testing {

struct LinkParams {
  double bandwidth_bps = 10e6;
  Time delay = 0.010;             // one-way; RTT = 2*delay + tx times
  std::size_t queue_capacity = 1000;
};

class TcpHarness {
 public:
  explicit TcpHarness(std::uint64_t seed = 1, LinkParams fwd = {},
                      TcpSinkConfig sink_cfg = {})
      : sim(seed),
        a(0),
        b(1),
        ab(sim, std::make_unique<DropTailQueue>(fwd.queue_capacity),
           fwd.bandwidth_bps, fwd.delay),
        ba(sim, std::make_unique<DropTailQueue>(10000), fwd.bandwidth_bps,
           fwd.delay) {
    ab.set_receiver([this](const Packet& p) { b.receive(p); });
    ba.set_receiver([this](const Packet& p) { a.receive(p); });
    a.add_route(Node::kDefaultRoute, &ab);
    b.add_route(Node::kDefaultRoute, &ba);
    sink = std::make_unique<TcpSink>(sim, b, /*flow=*/0, /*peer=*/0, sink_cfg);
  }

  /// Creates the sender (any TcpSender subclass) attached to node a.
  template <typename T, typename... Args>
  T* make_sender(Args&&... args) {
    auto owned = std::make_unique<T>(sim, a, /*flow=*/0, /*peer=*/1,
                                     std::forward<Args>(args)...);
    T* raw = owned.get();
    sender = std::move(owned);
    return raw;
  }

  /// Round-trip propagation+transmission time for a full data packet.
  Time rtt(int wire_bytes = 1040) const {
    return 2 * 0.010 + transmission_time(wire_bytes, 10e6) +
           transmission_time(kAckBytes, 10e6);
  }

  Simulator sim;
  Node a, b;
  SimplexLink ab, ba;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpSink> sink;
};

}  // namespace burst::testing
