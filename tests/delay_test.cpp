// One-way delay accounting at the sinks, against hand-computable values.
#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::TcpHarness;

TEST(Delay, UncongestedDelayIsTxPlusProp) {
  TcpHarness h;  // 10 Mbps, 10 ms one way
  auto* s = h.make_sender<TcpReno>();
  s->app_send(1);
  h.sim.run();
  // 1040B at 10 Mbps = 0.832 ms tx + 10 ms prop.
  ASSERT_EQ(h.sink->delay().count(), 1u);
  EXPECT_NEAR(h.sink->delay().mean(), 0.010832, 1e-6);
}

TEST(Delay, QueueingInflatesDelay) {
  TcpHarness h;
  auto* s = h.make_sender<TcpReno>();
  s->app_send(200);
  h.sim.run();
  // With slow start bursting, later packets queue behind earlier ones:
  // at least ~5 packet-transmission-times of extra delay at the peak.
  EXPECT_GT(h.sink->delay().max(), h.sink->delay().min() + 0.004);
  EXPECT_NEAR(h.sink->delay().min(), 0.010832, 1e-6);
}

TEST(Delay, ExperimentPoolsDelays) {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  sc.duration = 5.0;
  const auto r = run_experiment(sc);
  EXPECT_GT(r.delay.count(), 1000u);
  // One-way floor: client 20ms + bottleneck 20ms + tx times (~1.1ms).
  EXPECT_GT(r.delay.min(), 0.041);
  EXPECT_LT(r.delay.min(), 0.043);
  // Ceiling: propagation + full client queue is impossible here; a loose
  // bound is propagation + gateway buffer drain (50 pkts / 3846 pps).
  EXPECT_LT(r.delay.max(), 0.042 + 50.0 / 3846.0 + 0.01);
}

TEST(Delay, CongestionRaisesMeanDelay) {
  Scenario light = Scenario::paper_default();
  light.num_clients = 10;
  light.duration = 5.0;
  Scenario heavy = light;
  heavy.num_clients = 50;
  const auto l = run_experiment(light);
  const auto h = run_experiment(heavy);
  EXPECT_GT(h.delay.mean(), l.delay.mean());
}

TEST(Delay, VegasKeepsQueueingDelayLowerThanReno) {
  // Vegas targets alpha..beta queued packets; Reno fills the buffer. The
  // advantage is a property of Vegas's congestion-AVOIDANCE equilibrium,
  // so compare in the congested-but-not-overloaded regime: past ~36
  // clients the bottleneck is loss-dominated and every protocol's delay
  // is set by recovery dynamics, not by the queue it targets. (The seed
  // pinned 36 clients, which only stayed ordered while Vegas's Actual
  // was inflated by counting retransmissions; with Actual measured on
  // delivered packets the overload regime is a wash, as expected.)
  Scenario sc = Scenario::paper_default();
  sc.duration = 10.0;
  for (int clients : {24, 32}) {
    sc.num_clients = clients;
    sc.transport = Transport::kReno;
    const auto reno = run_experiment(sc);
    sc.transport = Transport::kVegas;
    const auto vegas = run_experiment(sc);
    EXPECT_LT(vegas.delay.mean(), reno.delay.mean())
        << "at " << clients << " clients";
  }
}

}  // namespace
}  // namespace burst
