#include "src/transport/tcp_vegas.hpp"

#include <gtest/gtest.h>

#include "src/transport/tcp_reno.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

TEST(TcpVegas, DeliversReliably) {
  TcpHarness h;
  auto* s = h.make_sender<TcpVegas>();
  s->app_send(100);
  h.sim.run();
  EXPECT_EQ(h.sink->rcv_nxt(), 100);
}

TEST(TcpVegas, BaseRttTracksMinimum) {
  TcpHarness h;
  auto* s = h.make_sender<TcpVegas>();
  s->app_send(50);
  h.sim.run();
  // Uncongested path: baseRTT ~ 2*10ms + tx times.
  EXPECT_GT(s->base_rtt(), 0.02);
  EXPECT_LT(s->base_rtt(), 0.03);
}

TEST(TcpVegas, WindowSettlesNearPipeSizePlusAlphaBeta) {
  // A greedy Vegas flow on an uncongested path should hold cwnd near the
  // bandwidth-delay product + [alpha, beta] queued packets, not balloon to
  // the advertised window like Reno.
  TcpConfig cfg;
  cfg.advertised_window = 300.0;
  LinkParams fwd;
  fwd.bandwidth_bps = 2e6;  // BDP = 2e6/8 * ~0.024s / 1040 ~ 5.8 packets
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpVegas>(cfg);
  s->app_send(100000);
  h.sim.run(30.0);
  EXPECT_FALSE(s->in_slow_start());
  const double bdp = 2e6 / 8.0 * s->base_rtt() / 1040.0;
  EXPECT_GE(s->cwnd(), bdp - 1.0);
  EXPECT_LE(s->cwnd(), bdp + 5.0);
  // And the queue estimate sits within [alpha, beta] (plus slack).
  EXPECT_LE(s->last_diff(), 4.0);
}

TEST(TcpVegas, NoLossOnSelfInducedCongestion) {
  // On a private bottleneck with ample buffer, Vegas's early backoff
  // avoids losses entirely, where Reno would fill the buffer and drop.
  LinkParams fwd;
  fwd.bandwidth_bps = 2e6;
  fwd.queue_capacity = 30;
  TcpConfig cfg;
  cfg.advertised_window = 64.0;
  {
    TcpHarness h(1, fwd);
    auto* v = h.make_sender<TcpVegas>(cfg);
    v->app_send(100000);
    h.sim.run(30.0);
    EXPECT_EQ(h.ab.queue().stats().drops, 0u);
    EXPECT_EQ(v->stats().timeouts, 0u);
  }
  {
    TcpHarness h(1, fwd);
    auto* r = h.make_sender<TcpReno>(cfg);
    r->app_send(100000);
    h.sim.run(30.0);
    EXPECT_GT(h.ab.queue().stats().drops, 0u);  // Reno probes until loss
  }
}

TEST(TcpVegas, SlowStartExitsViaGamma) {
  LinkParams fwd;
  fwd.bandwidth_bps = 2e6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpVegas>();
  s->app_send(100000);
  h.sim.run(10.0);
  EXPECT_FALSE(s->in_slow_start());
  EXPECT_EQ(s->stats().timeouts, 0u);  // exit was proactive, not loss-driven
}

TEST(TcpVegas, AppLimitedWindowDoesNotBalloon) {
  // A thin flow (few packets per RTT) must keep cwnd near its usage, not
  // grow toward the advertised window: the paper's Figs 10-12 show Vegas
  // windows pinned at small values.
  TcpHarness h;
  auto* s = h.make_sender<TcpVegas>();
  // ~5 packets per RTT (~24ms): send 5 every 24 ms for a while.
  for (int i = 0; i < 400; ++i) {
    h.sim.schedule(i * 0.024, [s] { s->app_send(5); });
  }
  h.sim.run(15.0);
  EXPECT_LT(s->cwnd(), 12.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 2000);
}

TEST(TcpVegas, GentlerLossReactionThanReno) {
  LinkParams fwd;
  fwd.queue_capacity = 6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpVegas>();
  s->app_send(12);
  h.sim.run(1.0);
  TraceSeries trace("w");
  s->set_cwnd_trace(&trace);
  s->app_send(14);
  h.sim.run(30.0);
  EXPECT_EQ(h.sink->rcv_nxt(), 26);
  // If a fast retransmit happened, the cut was 3/4, not 1/2: the minimum
  // traced window right after a cut is >= 0.7 * the preceding maximum,
  // unless a timeout (cwnd=2) occurred.
  if (s->stats().fast_retransmits > 0 && s->stats().timeouts == 0) {
    double w_max = 0.0, w_after_cut = 1e9;
    for (std::size_t i = 1; i < trace.points().size(); ++i) {
      const double prev = trace.points()[i - 1].second;
      const double cur = trace.points()[i].second;
      if (cur < prev) {  // a cut
        w_max = std::max(w_max, prev);
        w_after_cut = std::min(w_after_cut, cur / prev);
      }
    }
    EXPECT_GE(w_after_cut, 0.70);
  }
}

TEST(TcpVegas, ReliableUnderHeavyLossProperty) {
  for (std::size_t cap : {1u, 2u, 4u, 8u}) {
    LinkParams fwd;
    fwd.queue_capacity = cap;
    TcpHarness h(13, fwd);
    auto* s = h.make_sender<TcpVegas>();
    s->app_send(200);
    h.sim.run(300.0);
    EXPECT_EQ(h.sink->rcv_nxt(), 200) << "cap " << cap;
  }
}

TEST(TcpVegas, CustomAlphaBetaShiftEquilibrium) {
  // Larger alpha/beta -> more packets kept in the queue -> larger cwnd.
  LinkParams fwd;
  fwd.bandwidth_bps = 2e6;
  double cwnd_small, cwnd_large;
  {
    TcpHarness h(1, fwd);
    auto* s = h.make_sender<TcpVegas>(TcpConfig{}, VegasConfig{1, 3, 1});
    s->app_send(100000);
    h.sim.run(30.0);
    cwnd_small = s->cwnd();
  }
  {
    TcpHarness h(1, fwd);
    auto* s = h.make_sender<TcpVegas>(TcpConfig{}, VegasConfig{4, 6, 1});
    s->app_send(100000);
    h.sim.run(30.0);
    cwnd_large = s->cwnd();
  }
  EXPECT_GT(cwnd_large, cwnd_small);
}

}  // namespace
}  // namespace burst
