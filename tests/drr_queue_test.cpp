#include "src/net/drr_queue.hpp"

#include <gtest/gtest.h>

#include <map>

namespace burst {
namespace {

Packet pkt(FlowId flow, std::int64_t seq = 0, int bytes = 1040) {
  Packet p;
  p.flow = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

DrrConfig cfg(std::size_t cap = 50, int quantum = 1040) {
  DrrConfig c;
  c.capacity = cap;
  c.quantum_bytes = quantum;
  return c;
}

TEST(DrrQueue, SingleFlowIsFifo) {
  DrrQueue q(cfg());
  for (int i = 0; i < 5; ++i) q.enqueue(pkt(1, i), 0.0);
  for (int i = 0; i < 5; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_FALSE(q.dequeue(0.0).has_value());
}

TEST(DrrQueue, RoundRobinAcrossFlows) {
  DrrQueue q(cfg());
  // 3 packets each for flows 1,2,3, enqueued flow-by-flow.
  for (FlowId f : {1, 2, 3}) {
    for (int i = 0; i < 3; ++i) q.enqueue(pkt(f, i), 0.0);
  }
  std::vector<FlowId> service_order;
  while (auto p = q.dequeue(0.0)) service_order.push_back(p->flow);
  ASSERT_EQ(service_order.size(), 9u);
  // Equal-size packets, quantum = one packet: perfect interleaving.
  EXPECT_EQ(service_order,
            (std::vector<FlowId>{1, 2, 3, 1, 2, 3, 1, 2, 3}));
}

TEST(DrrQueue, ThroughputShareEqualUnderBacklog) {
  DrrQueue q(cfg(1000));
  for (int i = 0; i < 100; ++i) {
    q.enqueue(pkt(1, i), 0.0);
    q.enqueue(pkt(2, i), 0.0);
    q.enqueue(pkt(2, 100 + i), 0.0);  // flow 2 offers double
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 100; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    ++served[p->flow];
  }
  // Fair share: both flows get ~half of the service.
  EXPECT_NEAR(served[1], 50, 1);
  EXPECT_NEAR(served[2], 50, 1);
}

TEST(DrrQueue, DeficitHandlesUnequalPacketSizes) {
  // Flow 1 sends 2x-size packets; with quantum = small size, byte shares
  // even out (flow 1 gets roughly half the packets of flow 2).
  DrrQueue q(cfg(1000, 500));
  for (int i = 0; i < 60; ++i) {
    q.enqueue(pkt(1, i, 1000), 0.0);
    q.enqueue(pkt(2, i, 500), 0.0);
  }
  std::map<FlowId, int> bytes;
  for (int i = 0; i < 60; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    bytes[p->flow] += p->size_bytes;
  }
  const double ratio =
      static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]);
  EXPECT_NEAR(ratio, 1.0, 0.25);
}

TEST(DrrQueue, LongestQueueDropProtectsLightFlows) {
  DrrQueue q(cfg(10));
  // Flow 1 hogs the whole buffer.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.enqueue(pkt(1, i), 0.0));
  // A light flow arriving at a full buffer displaces the hog.
  EXPECT_TRUE(q.enqueue(pkt(2, 0), 0.0));
  EXPECT_EQ(q.len(), 10u);
  EXPECT_EQ(q.stats().drops, 1u);
  // The hog trying to add more is rejected outright.
  EXPECT_FALSE(q.enqueue(pkt(1, 99), 0.0));
  EXPECT_EQ(q.stats().drops, 2u);
}

TEST(DrrQueue, DisplacedDropVisibleToTaps) {
  DrrQueue q(cfg(3));
  std::vector<FlowId> dropped_flows;
  q.taps().add_drop_listener(
      [&](const Packet& p, Time) { dropped_flows.push_back(p.flow); });
  for (int i = 0; i < 3; ++i) q.enqueue(pkt(1, i), 0.0);
  q.enqueue(pkt(2, 0), 0.0);  // displaces flow 1's tail
  ASSERT_EQ(dropped_flows.size(), 1u);
  EXPECT_EQ(dropped_flows[0], 1);
}

TEST(DrrQueue, ActiveFlowAccounting) {
  DrrQueue q(cfg());
  EXPECT_EQ(q.active_flows(), 0u);
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);
  EXPECT_EQ(q.active_flows(), 2u);
  q.dequeue(0.0);
  q.dequeue(0.0);
  EXPECT_EQ(q.active_flows(), 0u);
  EXPECT_TRUE(q.queue_empty());
}

TEST(DrrQueue, IdleFlowDoesNotBankDeficit) {
  DrrQueue q(cfg(1000, 1040));
  q.enqueue(pkt(1, 0), 0.0);
  q.dequeue(0.0);  // flow 1 drains; its deficit must reset
  // Now both flows inject equally; service must stay fair.
  for (int i = 0; i < 20; ++i) {
    q.enqueue(pkt(1, i + 1), 0.0);
    q.enqueue(pkt(2, i), 0.0);
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    ++served[p->flow];
  }
  EXPECT_NEAR(served[1], 10, 1);
  EXPECT_NEAR(served[2], 10, 1);
}

TEST(DrrQueue, DepartureStats) {
  DrrQueue q(cfg());
  q.enqueue(pkt(1), 0.0);
  q.dequeue(0.0);
  EXPECT_EQ(q.stats().departures, 1u);
  EXPECT_EQ(q.stats().arrivals, 1u);
}

}  // namespace
}  // namespace burst
