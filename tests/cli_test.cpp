#include "src/core/cli.hpp"

#include <gtest/gtest.h>

namespace burst {
namespace {

std::optional<CliRequest> parse(std::vector<std::string> args,
                                std::string* err = nullptr) {
  CliError error;
  auto r = parse_cli(args, &error);
  if (err) *err = error.message;
  return r;
}

TEST(Cli, DefaultsArePaperScenario) {
  const auto r = parse({});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->scenario.transport, Transport::kReno);
  EXPECT_EQ(r->scenario.num_clients, 20);
  EXPECT_FALSE(r->show_help);
}

TEST(Cli, ParsesTransports) {
  for (const auto& [name, t] :
       std::vector<std::pair<std::string, Transport>>{
           {"udp", Transport::kUdp},
           {"tahoe", Transport::kTahoe},
           {"reno", Transport::kReno},
           {"newreno", Transport::kNewReno},
           {"vegas", Transport::kVegas},
           {"sack", Transport::kSack}}) {
    const auto r = parse({"--transport=" + name});
    ASSERT_TRUE(r.has_value()) << name;
    EXPECT_EQ(r->scenario.transport, t);
  }
}

TEST(Cli, ParsesQueues) {
  EXPECT_EQ(parse({"--queue=red"})->scenario.gateway, GatewayQueue::kRed);
  EXPECT_EQ(parse({"--queue=drr"})->scenario.gateway, GatewayQueue::kDrr);
  EXPECT_EQ(parse({"--queue=fifo"})->scenario.gateway,
            GatewayQueue::kDropTail);
  EXPECT_EQ(parse({"--queue=droptail"})->scenario.gateway,
            GatewayQueue::kDropTail);
}

TEST(Cli, ParsesNumericOptions) {
  const auto r = parse({"--clients=55", "--duration=7.5", "--seed=9",
                        "--buffer=80", "--bottleneck-mbps=16",
                        "--mean-interarrival=0.02"});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->scenario.num_clients, 55);
  EXPECT_DOUBLE_EQ(r->scenario.duration, 7.5);
  EXPECT_EQ(r->scenario.seed, 9u);
  EXPECT_EQ(r->scenario.gateway_buffer, 80u);
  EXPECT_DOUBLE_EQ(r->scenario.bottleneck_bw_bps, 16e6);
  EXPECT_DOUBLE_EQ(r->scenario.mean_interarrival, 0.02);
}

TEST(Cli, ParsesFlags) {
  const auto r = parse({"--delack", "--ecn", "--adaptive-red",
                        "--limited-transmit", "--cwnd-validation"});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->scenario.delayed_ack);
  EXPECT_TRUE(r->scenario.ecn);
  EXPECT_TRUE(r->scenario.adaptive_red);
  EXPECT_TRUE(r->scenario.limited_transmit);
  EXPECT_TRUE(r->scenario.cwnd_validation);
}

TEST(Cli, ParsesTraceList) {
  const auto r = parse({"--clients=10", "--trace=0,3,9"});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->options.trace_clients, (std::vector<int>{0, 3, 9}));
  EXPECT_GT(r->options.cwnd_sample_period, 0.0);
}

TEST(Cli, TraceOutOfRangeRejected) {
  std::string err;
  EXPECT_FALSE(parse({"--clients=10", "--trace=10"}, &err).has_value());
  EXPECT_NE(err.find("out of range"), std::string::npos);
}

TEST(Cli, RedThresholdOrderingValidated) {
  std::string err;
  EXPECT_FALSE(parse({"--red-min=40", "--red-max=10"}, &err).has_value());
  EXPECT_NE(err.find("red-min"), std::string::npos);
  EXPECT_TRUE(parse({"--red-min=5", "--red-max=20"}).has_value());
}

TEST(Cli, RejectsUnknownAndMalformed) {
  std::string err;
  EXPECT_FALSE(parse({"--nope"}, &err).has_value());
  EXPECT_NE(err.find("unknown option"), std::string::npos);
  EXPECT_FALSE(parse({"positional"}, &err).has_value());
  EXPECT_FALSE(parse({"--clients=zero"}, &err).has_value());
  EXPECT_FALSE(parse({"--clients=-3"}, &err).has_value());
  EXPECT_FALSE(parse({"--duration=-1"}, &err).has_value());
  EXPECT_FALSE(parse({"--transport"}, &err).has_value());
}

TEST(Cli, HelpFlag) {
  const auto r = parse({"--help"});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->show_help);
  EXPECT_NE(cli_usage().find("--transport"), std::string::npos);
}

TEST(Cli, CsvPath) {
  const auto r = parse({"--csv=/tmp/out"});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->csv_path, "/tmp/out");
}

}  // namespace
}  // namespace burst
