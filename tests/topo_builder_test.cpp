#include "src/topo/builder.hpp"

#include <gtest/gtest.h>

#include "src/core/experiment.hpp"
#include "src/topo/parser.hpp"
#include "src/topo/runner.hpp"
#include "src/topo/spec.hpp"

namespace burst {
namespace {

Scenario small_scenario() {
  Scenario sc = Scenario::paper_default();
  sc.num_clients = 10;
  sc.duration = 5.0;
  return sc;
}

void expect_same_run(const ExperimentResult& a, const ExperimentResult& b) {
  // Bit-identical scalars, including the event count: the two paths must
  // execute the exact same simulation, not a statistically similar one.
  EXPECT_EQ(a.cov, b.cov);
  EXPECT_EQ(a.app_generated, b.app_generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.gw_arrivals, b.gw_arrivals);
  EXPECT_EQ(a.gw_drops, b.gw_drops);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.dupacks, b.dupacks);
  EXPECT_EQ(a.fairness, b.fairness);
  EXPECT_EQ(a.delay.mean(), b.delay.mean());
  EXPECT_EQ(a.sim_events, b.sim_events);
}

TEST(TopoBuilder, GenericPathReproducesTheDumbbellBitIdentically) {
  // The load-bearing equivalence: the generic TopoNet build of
  // make_dumbbell_spec — generic routing, generic flow wiring, generic
  // RNG fork discipline — executes the identical event sequence as the
  // hard-coded experiment path.
  const Scenario sc = small_scenario();
  const ExperimentResult direct = run_experiment(sc);
  const ExperimentResult generic =
      run_topo_experiment(make_dumbbell_spec(sc), {}, /*force_generic=*/true);
  expect_same_run(direct, generic);
}

TEST(TopoBuilder, GenericPathMatchesForRedAndDelack) {
  Scenario sc = small_scenario();
  sc.gateway = GatewayQueue::kRed;
  sc.delayed_ack = true;
  sc.transport = Transport::kNewReno;
  const ExperimentResult direct = run_experiment(sc);
  const ExperimentResult generic =
      run_topo_experiment(make_dumbbell_spec(sc), {}, /*force_generic=*/true);
  expect_same_run(direct, generic);
}

TEST(TopoBuilder, CanonicalDumbbellDelegatesToTheHardCodedPath) {
  const Scenario sc = small_scenario();
  const ExperimentResult delegated =
      run_topo_experiment(make_dumbbell_spec(sc));
  expect_same_run(run_experiment(sc), delegated);
}

TEST(TopoBuilder, ParkingLotRunsClean) {
  Scenario sc = small_scenario();
  const ExperimentResult r =
      run_topo_experiment(make_tandem_spec(sc, 0.9), {},
                          /*force_generic=*/true);
  EXPECT_EQ(r.routing_errors, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.cov, 0.0);
}

TEST(TopoBuilder, MultiGroupGraphRoutesEveryFlow) {
  // Two client groups with different edge delays through two bottlenecks
  // — a graph neither hard-coded topology can express.
  constexpr const char* kText = R"(
set clients 4
set duration 5
node near count $clients
node far count $clients
node gw1
node gw2
node server
link gw1 gw2 rate $bottleneck_bw delay $bottleneck_delay queue droptail
link gw2 server rate 30Mbps delay $bottleneck_delay queue droptail
link server gw2 rate 30Mbps delay $bottleneck_delay
link gw2 gw1 rate $bottleneck_bw delay $bottleneck_delay
link near gw1 rate $client_bw delay 5ms
link gw1 near rate $client_bw delay 5ms
link far gw1 rate $client_bw delay 40ms
link gw1 far rate $client_bw delay 40ms
flow near server
flow far server
measure gw1 gw2
)";
  TopoError err;
  const auto spec = parse_topo(kText, "multigroup", &err);
  ASSERT_TRUE(spec.has_value()) << err.render("inline");
  const ExperimentResult r = run_topo_experiment(*spec);
  EXPECT_EQ(r.routing_errors, 0u);
  EXPECT_GT(r.delivered, 0u);
  // Every one of the 8 senders got packets through (fairness is defined
  // and positive only if all flows delivered something).
  EXPECT_GT(r.fairness, 0.0);
  EXPECT_LE(r.fairness, 1.0);
}

TEST(TopoBuilder, MeasuredLinkFollowsTheMeasureStatement) {
  Scenario sc = small_scenario();
  const TopoSpec spec = make_tandem_spec(sc, 0.9);
  Simulator sim(sc.seed);
  TopoNet net(sim, spec);
  // measure_link = 0 is the first bottleneck statement.
  EXPECT_EQ(&net.measured_link(), &net.link(0));
  EXPECT_EQ(&net.measured_queue(), &net.link(0).queue());
}

}  // namespace
}  // namespace burst
