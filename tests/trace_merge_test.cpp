// PR 10 observability: deterministic per-LP trace merge, parallel-runtime
// telemetry, the runtime-timeline export, and the flight recorder.
//
// The load-bearing claim is byte identity: a traced --lp=2 run's JSONL
// and Perfetto exports must equal the sequential run's exactly, because
// per-LP rings merge on the same (time, tie) scheduler-key discipline the
// parallel engine itself uses for cross-LP messages (DESIGN.md §14.1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/runtime_trace.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/simulator.hpp"

namespace burst {
namespace {

Scenario small_scenario(Transport transport, GatewayQueue queue,
                        std::uint64_t seed = 1) {
  Scenario sc = Scenario::paper_default();
  sc.transport = transport;
  sc.gateway = queue;
  sc.num_clients = 10;
  sc.duration = 3.0;
  sc.seed = seed;
  return sc;
}

struct TracedRun {
  ExperimentResult result;
  std::string jsonl;
  std::string perfetto;
};

TracedRun traced_run(const Scenario& sc, int lp_shards) {
  TraceSink sink;
  ExperimentOptions opts;
  opts.trace = &sink;
  opts.lp_shards = lp_shards;
  TracedRun out;
  out.result = run_experiment(sc, opts);
  std::ostringstream j, p;
  EXPECT_TRUE(sink.write_jsonl(j));
  EXPECT_TRUE(sink.write_chrome_trace(p));
  out.jsonl = j.str();
  out.perfetto = p.str();
  return out;
}

// The tentpole acceptance: both exports byte-identical between the
// sequential engine and the 2-LP conservative engine, across the CC/AQM
// grid (Vegas adds vegas_diff records, RED adds early drops — the record
// mix differs per cell, the identity must not).
TEST(TraceMergeDifferential, Lp2ByteIdenticalAcrossProtocolGrid) {
  const struct {
    Transport t;
    GatewayQueue q;
    const char* label;
  } grid[] = {
      {Transport::kReno, GatewayQueue::kDropTail, "reno/fifo"},
      {Transport::kReno, GatewayQueue::kRed, "reno/red"},
      {Transport::kVegas, GatewayQueue::kDropTail, "vegas/fifo"},
      {Transport::kVegas, GatewayQueue::kRed, "vegas/red"},
  };
  for (const auto& cell : grid) {
    SCOPED_TRACE(cell.label);
    const TracedRun seq = traced_run(small_scenario(cell.t, cell.q), 1);
    const TracedRun par = traced_run(small_scenario(cell.t, cell.q), 2);
    ASSERT_EQ(par.result.lp_shards, 2) << "partitioner declined the split";
    EXPECT_GT(seq.jsonl.size(), 0u);
    EXPECT_EQ(seq.jsonl, par.jsonl);
    EXPECT_EQ(seq.perfetto, par.perfetto);
    // Tracing must not have perturbed the dynamics either.
    EXPECT_EQ(seq.result.sim_events, par.result.sim_events);
    EXPECT_EQ(seq.result.delivered, par.result.delivered);
  }
}

// Seed sweep on the heavy cell: byte identity has to survive different
// drop placements, retransmit patterns and congestion-event clusters.
TEST(TraceMergeDifferential, Lp2ByteIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {2u, 3u, 5u, 8u, 13u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Scenario sc = small_scenario(Transport::kReno, GatewayQueue::kRed, seed);
    sc.num_clients = 8;
    sc.duration = 2.0;
    const TracedRun seq = traced_run(sc, 1);
    const TracedRun par = traced_run(sc, 2);
    EXPECT_EQ(seq.jsonl, par.jsonl);
  }
}

TraceRecord rec(TraceEventType type, Time t, std::int32_t flow,
                std::int64_t seq, double value, std::uint8_t site = 0) {
  TraceRecord r;
  r.type = type;
  r.time = t;
  r.flow = flow;
  r.seq = seq;
  r.value = value;
  r.site = site;
  return r;
}

// Hand-built merge golden: two parts with private site/state registries,
// interleaved times, an equal-(time, tie) cross-part collision (stable
// part order must break it), and a lazily-closed aggregate that must sort
// AFTER the same-instant live record despite living in the earlier part.
TEST(TraceMerge, MergedGoldenByteExact) {
  TraceSink a(64), b(64);
  a.set_stamp(nullptr, 0);  // tie = record time, like a 1-LP sink
  b.set_stamp(nullptr, 1);

  const std::uint8_t aq = a.register_site("queue:gateway");
  a.emit(rec(TraceEventType::kQueueEnqueue, 0.5, 1, 0, 1.0, aq));
  a.emit(rec(TraceEventType::kQueueDequeue, 1.5, 1, 0, 0.0, aq));
  {
    TraceRecord r = rec(TraceEventType::kCcStateChange, 2.0, 1, -1, 4.0);
    r.detail = a.intern_state("slow-start");
    a.emit(r);
  }
  {
    // Drop cluster closed late: logical time 1.0, emitted last.
    TraceRecord r = rec(TraceEventType::kCongestionEvent, 1.0, -1, 3, 2.0, aq);
    r.aux = 0.25;
    a.emit_aggregate(r);
  }

  const std::uint8_t bl = b.register_site("link:bottleneck");
  b.emit(rec(TraceEventType::kLinkDeliver, 1.0, 2, 5, 1000.0, bl));
  b.emit(rec(TraceEventType::kLinkDeliver, 1.5, 1, 0, 1000.0, bl));
  {
    TraceRecord r = rec(TraceEventType::kCcStateChange, 2.5, 2, -1, 2.0);
    r.detail = b.intern_state("fast-recovery");
    b.emit(r);
  }

  TraceSink merged(64);
  merged.merge_from({&a, &b});
  EXPECT_EQ(merged.emitted(), 7u);
  // Part registries remapped by name: queue:gateway -> 1, link -> 2;
  // slow-start -> 0, fast-recovery -> 1 (part order).
  std::ostringstream os;
  ASSERT_TRUE(merged.write_jsonl(os));
  const std::string expected =
      "{\"t\":0.5,\"type\":\"queue_enqueue\",\"site\":\"queue:gateway\","
      "\"flow\":1,\"seq\":0,\"value\":1,\"aux\":0,\"detail\":0}\n"
      "{\"t\":1,\"type\":\"link_deliver\",\"site\":\"link:bottleneck\","
      "\"flow\":2,\"seq\":5,\"value\":1000,\"aux\":0,\"detail\":0}\n"
      "{\"t\":1,\"type\":\"congestion_event\",\"site\":\"queue:gateway\","
      "\"flow\":-1,\"seq\":3,\"value\":2,\"aux\":0.25,\"detail\":0}\n"
      "{\"t\":1.5,\"type\":\"queue_dequeue\",\"site\":\"queue:gateway\","
      "\"flow\":1,\"seq\":0,\"value\":0,\"aux\":0,\"detail\":0}\n"
      "{\"t\":1.5,\"type\":\"link_deliver\",\"site\":\"link:bottleneck\","
      "\"flow\":1,\"seq\":0,\"value\":1000,\"aux\":0,\"detail\":0}\n"
      "{\"t\":2,\"type\":\"cc_state_change\",\"site\":\"unknown\","
      "\"flow\":1,\"seq\":-1,\"value\":4,\"aux\":0,\"detail\":0,"
      "\"state\":\"slow-start\"}\n"
      "{\"t\":2.5,\"type\":\"cc_state_change\",\"site\":\"unknown\","
      "\"flow\":2,\"seq\":-1,\"value\":2,\"aux\":0,\"detail\":1,"
      "\"state\":\"fast-recovery\"}\n";
  EXPECT_EQ(os.str(), expected);
}

// Parallel-runtime telemetry: the deterministic LpStats subset must land
// in the metrics snapshot (and from there in campaign metrics.csv), with
// per-LP splits; wall-clock values must NOT (registry determinism backs
// the result cache).
TEST(ParallelTelemetry, DeterministicSubsetInMetrics) {
  Scenario sc = small_scenario(Transport::kReno, GatewayQueue::kRed);
  ExperimentOptions opts;
  opts.lp_shards = 2;
  const ExperimentResult r = run_experiment(sc, opts);
  ASSERT_EQ(r.lp_shards, 2);

  const MetricPoint* shards = r.metrics.find("parallel.shards");
  ASSERT_NE(shards, nullptr);
  EXPECT_EQ(static_cast<int>(shards->value), 2);
  ASSERT_NE(r.metrics.find("parallel.lookahead"), nullptr);
  const MetricPoint* windows = r.metrics.find("parallel.windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_GT(windows->value, 0.0);
  std::uint64_t lp_events = 0;
  for (int lp = 0; lp < 2; ++lp) {
    const std::string prefix = "parallel.lp" + std::to_string(lp);
    const MetricPoint* ev = r.metrics.find(prefix + ".events");
    ASSERT_NE(ev, nullptr) << prefix;
    lp_events += static_cast<std::uint64_t>(ev->value);
    EXPECT_NE(r.metrics.find(prefix + ".msgs_in"), nullptr);
    EXPECT_NE(r.metrics.find(prefix + ".msgs_out"), nullptr);
    EXPECT_NE(r.metrics.find(prefix + ".merge_high_water"), nullptr);
    EXPECT_NE(r.metrics.find(prefix + ".horizon_advance_mean"), nullptr);
  }
  EXPECT_EQ(lp_events, r.sim_events);

  ASSERT_EQ(r.lp_phases.size(), 2u);
  for (const LpPhase& p : r.lp_phases) {
    EXPECT_GT(p.windows, 0u);
    EXPECT_GT(p.horizon_advance_mean, 0.0);
  }

  // Sequential runs carry none of it.
  const ExperimentResult seq = run_experiment(sc);
  EXPECT_EQ(seq.metrics.find("parallel.shards"), nullptr);
  EXPECT_TRUE(seq.lp_phases.empty());
}

// The per-window log (and from it the .runtime.perfetto export) is
// collected only for traced parallel runs, and the writer produces a
// well-formed trace-event JSON with one thread track per LP.
TEST(ParallelTelemetry, RuntimeTimelineExport) {
  Scenario sc = small_scenario(Transport::kReno, GatewayQueue::kRed);
  sc.duration = 2.0;

  ExperimentOptions opts;
  opts.lp_shards = 2;
  const ExperimentResult bare = run_experiment(sc, opts);
  EXPECT_TRUE(bare.lp_windows.empty());  // no trace -> no window log

  TraceSink sink;
  opts.trace = &sink;
  const ExperimentResult traced = run_experiment(sc, opts);
  ASSERT_FALSE(traced.lp_windows.empty());
  ASSERT_EQ(traced.lp_phases.size(), 2u);
  // Every LP logged every one of its windows.
  std::vector<std::uint64_t> per_lp(2, 0);
  for (const LpWindowPhase& w : traced.lp_windows) {
    ASSERT_GE(w.lp, 0);
    ASSERT_LT(w.lp, 2);
    ++per_lp[static_cast<std::size_t>(w.lp)];
  }
  EXPECT_EQ(per_lp[0], traced.lp_phases[0].windows);
  EXPECT_EQ(per_lp[1], traced.lp_phases[1].windows);

  std::ostringstream os;
  ASSERT_TRUE(write_runtime_trace(os, traced.lp_phases, traced.lp_windows));
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", 0),
            0u);
  EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
  EXPECT_NE(out.find("\"parallel runtime\""), std::string::npos);
  EXPECT_NE(out.find("\"lp 0\""), std::string::npos);
  EXPECT_NE(out.find("\"lp 1\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"run\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"lp_summary\""), std::string::npos);
  EXPECT_NE(out.find("gmin lp0"), std::string::npos);
}

// ---- Flight recorder -------------------------------------------------

// The budget is reserved once and never grows: a run that outlives
// max_samples decimates (halve the held samples, double the cadence)
// instead of reallocating.
TEST(FlightRecorder, FixedBudgetDecimates) {
  FlightRecorderOptions fo;
  fo.period = 0.25;
  fo.max_samples = 4;
  FlightRecorder fr(fo);
  Simulator sim;
  fr.arm(sim, 4.0);
  EXPECT_EQ(fr.bytes_reserved(), 4 * sizeof(FlightSample));
  sim.run(4.0);

  EXPECT_GT(fr.decimations(), 0u);
  EXPECT_LE(fr.samples().size(), 4u);
  EXPECT_GT(fr.samples().size(), 0u);
  EXPECT_GT(fr.taken(), fr.samples().size());
  // Period doubled once per decimation.
  EXPECT_DOUBLE_EQ(
      fr.period(),
      0.25 * static_cast<double>(std::uint64_t{1} << fr.decimations()));
  // Samples stay in time order and within the horizon.
  for (std::size_t i = 0; i < fr.samples().size(); ++i) {
    EXPECT_LE(fr.samples()[i].t, 4.0);
    if (i > 0) EXPECT_GT(fr.samples()[i].t, fr.samples()[i - 1].t);
  }
}

// Sampling reads state but never mutates it: dynamics are unperturbed
// (delivered/cov/drops identical), only the event count grows by the
// sampler's own wake-ups.
TEST(FlightRecorder, DoesNotPerturbDynamics) {
  Scenario sc = small_scenario(Transport::kReno, GatewayQueue::kRed);
  sc.num_clients = 8;
  sc.duration = 2.0;

  const ExperimentResult bare = run_experiment(sc);

  FlightRecorder fr;
  ExperimentOptions opts;
  opts.flight = &fr;
  const ExperimentResult recorded = run_experiment(sc, opts);

  EXPECT_EQ(bare.delivered, recorded.delivered);
  EXPECT_EQ(bare.gw_drops, recorded.gw_drops);
  EXPECT_DOUBLE_EQ(bare.cov, recorded.cov);
  EXPECT_GT(recorded.sim_events, bare.sim_events);

  ASSERT_GT(fr.samples().size(), 0u);
  // Queue + arena were observed: arrivals accumulate and the cwnd
  // histogram counts every sender.
  std::uint64_t arrivals = 0;
  std::uint32_t last_hist = 0;
  for (const FlightSample& s : fr.samples()) {
    arrivals += s.arrivals;
    last_hist = 0;
    for (const std::uint32_t b : s.cwnd_hist) last_hist += b;
  }
  EXPECT_GT(arrivals, 0u);
  EXPECT_EQ(last_hist, static_cast<std::uint32_t>(sc.num_clients));
  EXPECT_GT(fr.samples().back().cwnd_max, 0.0);
}

TEST(FlightRecorder, CsvAndJsonlExports) {
  Scenario sc = small_scenario(Transport::kReno, GatewayQueue::kRed);
  sc.num_clients = 6;
  sc.duration = 1.0;
  FlightRecorder fr;
  ExperimentOptions opts;
  opts.flight = &fr;
  run_experiment(sc, opts);
  ASSERT_GT(fr.samples().size(), 0u);

  std::ostringstream csv;
  ASSERT_TRUE(fr.write_csv(csv));
  const std::string c = csv.str();
  EXPECT_EQ(c.rfind("t,interval,qlen,red_avg,events,arrivals,drops,cov,"
                    "cwnd_mean,cwnd_max,cwnd_hist0",
                    0),
            0u);
  // Header + one line per sample.
  const auto lines = static_cast<std::size_t>(
      std::count(c.begin(), c.end(), '\n'));
  EXPECT_EQ(lines, fr.samples().size() + 1);

  std::ostringstream jsonl;
  ASSERT_TRUE(fr.write_jsonl(jsonl));
  const std::string j = jsonl.str();
  EXPECT_EQ(j.rfind("{\"t\":", 0), 0u);
  EXPECT_NE(j.find("\"type\":\"fr_sample\""), std::string::npos);
  EXPECT_NE(j.find("\"cwnd_hist\":["), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(std::count(j.begin(), j.end(), '\n')),
            fr.samples().size());
}

}  // namespace
}  // namespace burst
