// Bit-identity guard for the event-core overhaul (and any future hot-path
// rewrite): run_experiment must produce *byte-identical* metrics for a set
// of pinned seed scenarios. Unlike seed_stability_test (tolerance bands),
// these pins fail on any change to event ordering, RNG consumption, or
// metric arithmetic.
//
// The canonical rendering below covers every deterministic metric of
// ExperimentResult (hexfloat doubles, so the text is bit-exact). Wall-clock
// performance counters (sim_wall_s, events_per_sec) are intentionally
// excluded. To re-pin after an *intentional* semantic change, run with
// --gtest_also_run_disabled_tests=0 as usual: each failure message prints
// the new hash; update the table and record the reason in the PR.
//
// History:
//  * Pinned on the pre-overhaul binary-heap scheduler (PR 2 baseline).
//    The indexed 4-ary-heap swap reproduced every hash bit-for-bit.
//  * Re-pinned in the same PR for the intentional metric fixes. Only
//    reno_red_n50 changed (the RED drop-probability off-by-one shifts its
//    drop sequence). The c.o.v. bin-count rounding fix does not touch
//    these pins — their (duration - warmup) span is 5 s = 62.5 bin
//    widths, not a boundary — and the Fig 13 dupacks == 0 ratio
//    convention never fires here (every pinned TCP run sees dupacks).
//  * Re-pinned once more when sim_events/peak_pending joined the
//    canonical rendering (all five hashes moved; the underlying metrics
//    did not).
//  * Re-pinned two scenarios for the PR 3 transport bugfixes (the other
//    three are byte-identical). vegas_droptail_n30: Vegas now measures
//    Actual from delivered (cumulatively acked) packets instead of
//    data_pkts_sent — transmissions count retransmissions, which inflated
//    Actual exactly during loss episodes — and guards the fine-grained
//    retransmit so one hole is resent at most once per loss detection.
//    reno_delack_n45_traced: the delayed-ACK sink's immediate-ACK paths
//    no longer overwrite a held segment's older echo timestamp or OR in
//    the new segment's Karn taint (RFC 7323: echo the timestamp of the
//    last segment that advanced the window), which shifts RTT samples and
//    hence RTO/srtt trajectories in every delack scenario.
//  * Re-pinned reno_red_n50 (only) for the RED wake-from-idle fix: the
//    queue now applies Floyd–Jacobson's pure decay avg ← (1-w)^m·avg on
//    the first arrival after an idle gap instead of stacking an extra
//    EWMA step (with q = 0) on top, which biased avg low after every
//    idle period and shifted the early-drop sequence. The timing-wheel
//    scheduler backend landed in the same PR with all five pins (and the
//    conformance goldens) byte-identical before this fix was applied.
//  * PR 4 (link-event fusion + lazy timers) split the pin in two: the
//    metrics hash below no longer folds in sim_events/peak_pending;
//    those are pinned as explicit per-scenario values instead, so a
//    hot-path rewrite that legitimately changes the *event count* while
//    leaving every packet-timing-derived metric bit-identical shows up
//    as exactly that — a counter delta with the metrics hash unchanged.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "src/core/experiment.hpp"
#include "src/run/scenario_key.hpp"

namespace burst {
namespace {

void append_double(std::ostringstream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a", v);
  os << buf << ';';
}

void append_u64(std::ostringstream& os, std::uint64_t v) { os << v << ';'; }

// Every deterministic field of ExperimentResult, in declaration order.
std::string canonical_metrics(const ExperimentResult& r) {
  std::ostringstream os;
  append_double(os, r.cov);
  append_double(os, r.poisson_cov);
  append_double(os, r.mean_per_bin);
  append_u64(os, r.app_generated);
  append_u64(os, r.delivered);
  append_u64(os, r.gw_arrivals);
  append_u64(os, r.gw_drops);
  append_double(os, r.loss_pct);
  append_u64(os, r.timeouts);
  append_u64(os, r.fast_retransmits);
  append_u64(os, r.dupacks);
  append_u64(os, r.retransmits);
  append_u64(os, r.data_pkts_sent);
  append_double(os, r.timeout_dupack_ratio);
  append_double(os, r.fairness);
  append_u64(os, r.delay.count());
  append_double(os, r.delay.mean());
  append_double(os, r.delay.m2());
  append_double(os, r.delay.min());
  append_double(os, r.delay.max());
  append_u64(os, r.routing_errors);
  // sim_events / peak_pending are intentionally NOT part of this hash:
  // they are pinned separately (expected_events / expected_peak below),
  // so event-count-only changes are distinguishable from timing changes.
  for (const TraceSeries& t : r.cwnd_traces) {
    os << t.name() << ';';
    for (const auto& [time, value] : t.points()) {
      append_double(os, time);
      append_double(os, value);
    }
  }
  return os.str();
}

std::string result_hash(const ExperimentResult& r) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(canonical_metrics(r))));
  return buf;
}

Scenario pinned(int clients, Transport t, GatewayQueue q) {
  Scenario s = Scenario::paper_default();
  s.num_clients = clients;
  s.transport = t;
  s.gateway = q;
  s.duration = 6.0;
  s.warmup = 1.0;
  s.seed = 7;
  return s;
}

struct Pin {
  const char* label;
  Scenario scenario;
  ExperimentOptions options;
  const char* expected_hash;      // packet-timing metrics, counters excluded
  std::uint64_t expected_events;  // sim_events (scheduler events executed)
  std::uint64_t expected_peak;    // peak_pending (event-heap high-water mark)
};

std::vector<Pin> pins() {
  std::vector<Pin> p;
  // Event counts dropped ~18-35% (and peaks shifted by a few slots) when
  // link delivery was fused to one event per transmitted packet and the
  // RTO/delayed-ACK timers went lazy; the metrics hashes were unchanged
  // across that transition (packet timing is bit-identical, see
  // DESIGN.md §6).
  p.push_back({"reno_droptail_n20", pinned(20, Transport::kReno,
                                           GatewayQueue::kDropTail),
               {}, "7023dcc814884fc6", 70740, 315});
  p.push_back({"reno_red_n50",
               pinned(50, Transport::kReno, GatewayQueue::kRed), {},
               "ae668179a97df5a0", 121755, 432});
  p.push_back({"vegas_droptail_n30",
               pinned(30, Transport::kVegas, GatewayQueue::kDropTail), {},
               "e8812cbed9161a44", 109421, 395});
  p.push_back({"udp_droptail_n25",
               pinned(25, Transport::kUdp, GatewayQueue::kDropTail), {},
               "09f22cb5ab59cf30", 56023, 164});
  // Traces + periodic sampling exercise the timer/callback path end to end.
  Pin traced{"reno_delack_n45_traced",
             pinned(45, Transport::kReno, GatewayQueue::kDropTail), {},
             "58adc366b915eda1", 118425, 398};
  traced.scenario.delayed_ack = true;
  traced.options.trace_clients = {0, 9};
  traced.options.cwnd_sample_period = 0.1;
  p.push_back(traced);
  return p;
}

TEST(ResultIdentity, PinnedScenariosAreByteIdentical) {
  for (const Pin& pin : pins()) {
    const ExperimentResult r = run_experiment(pin.scenario, pin.options);
    EXPECT_EQ(result_hash(r), pin.expected_hash)
        << pin.label << ": metrics changed bit-for-bit. If intentional, "
        << "re-pin with the hash above and document why.";
    EXPECT_EQ(r.sim_events, pin.expected_events)
        << pin.label << ": scheduler executed a different number of events. "
        << "Expected after an intentional event-count change (fusion, timer "
        << "laziness); update the pin and document the delta.";
    EXPECT_EQ(r.peak_pending, pin.expected_peak)
        << pin.label << ": event-heap high-water mark changed. Update the "
        << "pin if the hot-path change intentionally reshapes event "
        << "lifetimes.";
  }
}

// Running the same pinned scenario twice in one process must also agree —
// this separates "scheduler nondeterminism" from "pin needs updating".
TEST(ResultIdentity, RerunInProcessIsByteIdentical) {
  const Pin pin = pins()[1];  // Reno/RED: the most event-churn-heavy pin
  const ExperimentResult a = run_experiment(pin.scenario, pin.options);
  const ExperimentResult b = run_experiment(pin.scenario, pin.options);
  EXPECT_EQ(canonical_metrics(a), canonical_metrics(b));
}

}  // namespace
}  // namespace burst
