// Property sweep: Vegas's diff-based equilibrium across bandwidths.
#include <gtest/gtest.h>

#include "src/stats/running_stats.hpp"
#include "src/transport/tcp_vegas.hpp"
#include "tests/transport_harness.hpp"

namespace burst {
namespace {

using testing::LinkParams;
using testing::TcpHarness;

class VegasEquilibrium : public ::testing::TestWithParam<double> {};

TEST_P(VegasEquilibrium, CwndTracksBandwidthDelayProduct) {
  const double bw = GetParam();
  LinkParams fwd;
  fwd.bandwidth_bps = bw;
  fwd.queue_capacity = 500;
  TcpConfig cfg;
  cfg.advertised_window = 500.0;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpVegas>(cfg);
  s->app_send(2000000);
  h.sim.run(30.0);
  const double bdp = bw / 8.0 * s->base_rtt() / 1040.0;
  // Equilibrium window = BDP + [alpha..beta] queued packets (plus slack
  // for the +-1 oscillation).
  EXPECT_GE(s->cwnd(), bdp + 0.5) << "bw=" << bw;
  EXPECT_LE(s->cwnd(), bdp + 5.0) << "bw=" << bw;
  // Near-zero loss at equilibrium.
  EXPECT_EQ(s->stats().timeouts, 0u);
  EXPECT_LT(h.ab.queue().stats().loss_fraction(), 0.001);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, VegasEquilibrium,
                         ::testing::Values(1e6, 2e6, 5e6, 8e6));

TEST(VegasEquilibrium, DiffStaysWithinAlphaBetaBand) {
  LinkParams fwd;
  fwd.bandwidth_bps = 4e6;
  TcpHarness h(1, fwd);
  auto* s = h.make_sender<TcpVegas>();
  s->app_send(2000000);
  // Sample diff after convergence; it should hover in/near [alpha, beta].
  h.sim.run(10.0);
  RunningStats diffs;
  for (int i = 0; i < 100; ++i) {
    h.sim.run(h.sim.now() + 0.1);
    diffs.add(s->last_diff());
  }
  EXPECT_GT(diffs.mean(), 0.0);
  EXPECT_LT(diffs.mean(), 4.5);
}

}  // namespace
}  // namespace burst
