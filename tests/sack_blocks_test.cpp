// Direct tests of the sink's SACK-block generation (RFC 2018 shape).
#include <gtest/gtest.h>

#include <memory>

#include "src/net/drop_tail_queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_sink.hpp"

namespace burst {
namespace {

struct Harness {
  Simulator sim{1};
  Node server{1};
  SimplexLink out{sim, std::make_unique<DropTailQueue>(1000), 1e9, 0.0};
  std::vector<Packet> acks;
  std::unique_ptr<TcpSink> sink;

  Harness() {
    out.set_receiver([this](const Packet& p) { acks.push_back(p); });
    server.add_route(Node::kDefaultRoute, &out);
    TcpSinkConfig cfg;
    cfg.sack = true;
    sink = std::make_unique<TcpSink>(sim, server, 0, 0, cfg);
  }

  void data(std::int64_t seq) {
    Packet p;
    p.type = PacketType::kData;
    p.flow = 0;
    p.dst = 1;
    p.seq = seq;
    p.size_bytes = 1040;
    sink->handle(p);
    sim.run();
  }

  const Packet& last_ack() { return acks.back(); }
};

TEST(SackBlocks, SingleHoleSingleBlock) {
  Harness h;
  h.data(0);
  h.data(2);
  ASSERT_EQ(h.acks.size(), 2u);
  const Packet& a = h.last_ack();
  EXPECT_EQ(a.ack, 1);
  ASSERT_EQ(a.sack_count, 1);
  EXPECT_EQ(a.sack[0].lo, 2);
  EXPECT_EQ(a.sack[0].hi, 3);
}

TEST(SackBlocks, ContiguousRunsMerge) {
  Harness h;
  h.data(0);
  h.data(2);
  h.data(3);
  h.data(4);
  const Packet& a = h.last_ack();
  ASSERT_EQ(a.sack_count, 1);
  EXPECT_EQ(a.sack[0].lo, 2);
  EXPECT_EQ(a.sack[0].hi, 5);
}

TEST(SackBlocks, MultipleRunsReported) {
  Harness h;
  h.data(0);
  h.data(2);
  h.data(5);
  h.data(6);
  const Packet& a = h.last_ack();
  ASSERT_EQ(a.sack_count, 2);
  EXPECT_EQ(a.sack[0].lo, 2);
  EXPECT_EQ(a.sack[0].hi, 3);
  EXPECT_EQ(a.sack[1].lo, 5);
  EXPECT_EQ(a.sack[1].hi, 7);
}

TEST(SackBlocks, CappedAtThreeBlocks) {
  Harness h;
  h.data(0);
  for (std::int64_t s : {2, 4, 6, 8, 10}) h.data(s);  // five runs
  const Packet& a = h.last_ack();
  EXPECT_EQ(a.sack_count, Packet::kMaxSackBlocks);
}

TEST(SackBlocks, NoBlocksOnceHoleFilled) {
  Harness h;
  h.data(0);
  h.data(2);
  h.data(1);  // fills the hole
  const Packet& a = h.last_ack();
  EXPECT_EQ(a.ack, 3);
  EXPECT_EQ(a.sack_count, 0);
}

TEST(SackBlocks, InOrderStreamNeverCarriesBlocks) {
  Harness h;
  for (std::int64_t s = 0; s < 10; ++s) h.data(s);
  for (const Packet& a : h.acks) EXPECT_EQ(a.sack_count, 0);
}

}  // namespace
}  // namespace burst
