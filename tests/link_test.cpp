#include "src/net/link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/drop_tail_queue.hpp"

namespace burst {
namespace {

Packet pkt(int bytes, std::int64_t seq = 0) {
  Packet p;
  p.size_bytes = bytes;
  p.seq = seq;
  return p;
}

struct Harness {
  Simulator sim{1};
  std::vector<std::pair<Time, Packet>> delivered;
  std::unique_ptr<SimplexLink> link;

  explicit Harness(double bw, Time delay, std::size_t cap = 1000) {
    link = std::make_unique<SimplexLink>(
        sim, std::make_unique<DropTailQueue>(cap), bw, delay);
    link->set_receiver(
        [this](const Packet& p) { delivered.emplace_back(sim.now(), p); });
  }
};

TEST(SimplexLink, SinglePacketLatencyIsTxPlusProp) {
  Harness h(8e6, 0.010);  // 8 Mbps, 10 ms
  h.link->send(pkt(1000));  // tx = 1000*8/8e6 = 1 ms
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_DOUBLE_EQ(h.delivered[0].first, 0.001 + 0.010);
}

TEST(SimplexLink, BackToBackPacketsAreSerialized) {
  Harness h(8e6, 0.010);
  for (int i = 0; i < 5; ++i) h.link->send(pkt(1000, i));
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(h.delivered[static_cast<size_t>(i)].first,
                (i + 1) * 0.001 + 0.010, 1e-12);
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].second.seq, i);
  }
}

TEST(SimplexLink, ThroughputMatchesBandwidth) {
  Harness h(3.2e6, 0.0, 100000);
  const int n = 1000;
  for (int i = 0; i < n; ++i) h.link->send(pkt(1040, i));
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), static_cast<size_t>(n));
  EXPECT_NEAR(h.delivered.back().first, n * 1040 * 8.0 / 3.2e6, 1e-9);
}

TEST(SimplexLink, QueueDropsWhenTransmitterBusy) {
  Harness h(8e6, 0.0, 2);  // queue capacity 2
  // One packet in flight + 2 queued + 2 dropped.
  for (int i = 0; i < 5; ++i) h.link->send(pkt(1000, i));
  h.sim.run();
  EXPECT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.link->queue().stats().drops, 2u);
}

TEST(SimplexLink, IdleThenBusyAgain) {
  Harness h(8e6, 0.005);
  h.link->send(pkt(1000, 0));
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_NEAR(h.delivered[0].first, 0.006, 1e-12);
  // Second packet sent after the link has gone idle: same tx+prop latency
  // from its own send time.
  const Time send_at = h.sim.now() + 1.0;
  h.sim.schedule(1.0, [&] { h.link->send(pkt(1000, 1)); });
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_NEAR(h.delivered[1].first, send_at + 0.001 + 0.005, 1e-12);
}

TEST(SimplexLink, MixedSizesSerializeProportionally) {
  Harness h(1e6, 0.0);
  h.link->send(pkt(125, 0));   // 1 ms at 1 Mbps
  h.link->send(pkt(1250, 1));  // 10 ms
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_NEAR(h.delivered[0].first, 0.001, 1e-12);
  EXPECT_NEAR(h.delivered[1].first, 0.011, 1e-12);
}

TEST(SimplexLink, CountsDeliveredAndBytes) {
  Harness h(8e6, 0.0);
  h.link->send(pkt(1000));
  h.link->send(pkt(500));
  h.sim.run();
  EXPECT_EQ(h.link->delivered(), 2u);
  EXPECT_EQ(h.link->bytes_delivered(), 1500u);
}

TEST(SimplexLink, PropertiesExposed) {
  Harness h(5e6, 0.042);
  EXPECT_DOUBLE_EQ(h.link->bandwidth_bps(), 5e6);
  EXPECT_DOUBLE_EQ(h.link->prop_delay(), 0.042);
  EXPECT_FALSE(h.link->busy());
  h.link->send(pkt(1000));
  EXPECT_TRUE(h.link->busy());
}

TEST(SimplexLink, FusedDeliveryTimeEqualsTxThenPropToTheLastUlp) {
  // The fused single delivery event must land at (start + tx) + prop —
  // with exactly that floating-point association, since that is what the
  // old tx-complete -> propagate event pair computed. Deliberately awkward
  // values make (start + tx) + prop differ from start + (tx + prop) in the
  // last ulp, so EXPECT_EQ (not NEAR) would catch a re-association.
  const double bw = 9.7e6;
  const Time prop = 0.0137;
  const int bytes = 1033;
  Harness h(bw, prop);
  for (int i = 0; i < 7; ++i) h.link->send(pkt(bytes, i));
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 7u);
  const Time tx = transmission_time(bytes, bw);
  Time busy_until = 0.0;
  for (int i = 0; i < 7; ++i) {
    busy_until = busy_until + tx;  // successive transmission starts
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].first, busy_until + prop)
        << "packet " << i << " delivery time re-associated";
  }
}

TEST(SimplexLink, ArrivalExactlyAtTxEndKeepsFifoAndTiming) {
  // An arrival landing at precisely the instant the transmitter frees up
  // is the boundary the lazy free_at_ check must get right: the link
  // counts as busy through that instant (the drain owns the dequeue), so
  // the newcomer queues behind nothing and still ships immediately.
  Harness h(8e6, 0.010);        // tx(1000B) = 1 ms
  h.link->send(pkt(1000, 0));
  const Time tx = transmission_time(1000, 8e6);
  h.sim.schedule_at(tx, [&] {
    EXPECT_TRUE(h.link->busy());  // still busy AT the completion instant
    h.link->send(pkt(1000, 1));
  });
  h.sim.run();
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].second.seq, 0);
  EXPECT_EQ(h.delivered[1].second.seq, 1);
  // The second transmission starts at tx end regardless of the deferral.
  EXPECT_EQ(h.delivered[1].first, (tx + tx) + 0.010);
}

TEST(SimplexLink, DeliveryOrderIsFifoEvenWithZeroPropDelay) {
  Harness h(1e9, 0.0);
  for (int i = 0; i < 50; ++i) h.link->send(pkt(100, i));
  h.sim.run();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].second.seq, i);
  }
}

}  // namespace
}  // namespace burst
