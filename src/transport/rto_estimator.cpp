#include "src/transport/rto_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void RtoEstimator::sample(Time rtt) {
  RtoState& s = *st_;
  if (!s.has_sample) {
    s.srtt = rtt;
    s.rttvar = rtt / 2.0;
    s.has_sample = true;
    return;
  }
  // RFC 6298 gains: beta = 1/4, alpha = 1/8 (variance updated first).
  s.rttvar = 0.75 * s.rttvar + 0.25 * std::abs(s.srtt - rtt);
  s.srtt = 0.875 * s.srtt + 0.125 * rtt;
}

Time RtoEstimator::rto() const {
  const RtoState& s = *st_;
  Time base = s.has_sample ? s.srtt + 4.0 * s.rttvar : cfg_.initial_rto;
  if (cfg_.granularity > 0.0) {
    base = std::ceil(base / cfg_.granularity) * cfg_.granularity;
  }
  base = std::clamp(base, cfg_.min_rto, cfg_.max_rto);
  return std::min(base * s.backoff, cfg_.max_rto);
}

void RtoEstimator::backoff() { st_->backoff = std::min(st_->backoff * 2, 64); }

}  // namespace burst
