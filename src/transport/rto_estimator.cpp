#include "src/transport/rto_estimator.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void RtoEstimator::sample(Time rtt) {
  if (!has_sample_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
    has_sample_ = true;
    return;
  }
  // RFC 6298 gains: beta = 1/4, alpha = 1/8 (variance updated first).
  rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - rtt);
  srtt_ = 0.875 * srtt_ + 0.125 * rtt;
}

Time RtoEstimator::rto() const {
  Time base = has_sample_ ? srtt_ + 4.0 * rttvar_ : cfg_.initial_rto;
  if (cfg_.granularity > 0.0) {
    base = std::ceil(base / cfg_.granularity) * cfg_.granularity;
  }
  base = std::clamp(base, cfg_.min_rto, cfg_.max_rto);
  return std::min(base * backoff_, cfg_.max_rto);
}

void RtoEstimator::backoff() { backoff_ = std::min(backoff_ * 2, 64); }

}  // namespace burst
