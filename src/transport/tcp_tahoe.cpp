#include "src/transport/tcp_tahoe.hpp"

#include <algorithm>

namespace burst {

void TcpTahoe::on_new_ack(std::int64_t /*acked*/, std::int64_t /*ack_seq*/) {
  standard_growth();
}

void TcpTahoe::on_dup_ack() {
  if (dupacks() != config().dupack_threshold) return;
  ++stats_.fast_retransmits;
  set_ssthresh(std::max(static_cast<double>(flight()) / 2.0, 2.0));
  rewind_to_una();   // Tahoe re-slow-starts from the hole
  set_cwnd(1.0);
  // The retransmission itself comes from the caller's try_send() after the
  // rewind, exactly like the RTO path: an explicit retransmit_una() here
  // would send the hole twice (once unrewound, once via try_send).
  restart_rto_timer();
}

void TcpTahoe::on_timeout_window() { set_cwnd(1.0); }

}  // namespace burst
