// TCP Tahoe: slow start + congestion avoidance + fast retransmit, but no
// fast recovery — every detected loss restarts slow start from cwnd = 1.
// Included as a pre-Reno baseline (the paper's "different implementations
// of TCP" axis).
#pragma once

#include "src/transport/tcp_sender.hpp"

namespace burst {

class TcpTahoe : public TcpSender {
 public:
  using TcpSender::TcpSender;

 protected:
  void on_new_ack(std::int64_t acked, std::int64_t ack_seq) override;
  void on_dup_ack() override;
  void on_timeout_window() override;
};

}  // namespace burst
