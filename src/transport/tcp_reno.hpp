// TCP Reno: the paper's primary subject. Slow start, congestion avoidance,
// fast retransmit on the third duplicate ACK, and fast recovery with
// window inflation (cwnd = ssthresh + 3, +1 per further dup ACK, deflated
// to ssthresh on the next new ACK). A timeout resets cwnd to 1 and
// re-enters slow start up to the halved threshold — the "re-start slow
// start probing" the paper blames for the induced burstiness.
#pragma once

#include "src/transport/tcp_sender.hpp"

namespace burst {

class TcpReno : public TcpSender {
 public:
  using TcpSender::TcpSender;

  bool in_fast_recovery() const { return in_recovery_; }

  std::string_view cc_state() const override {
    return in_recovery_ ? "fast-recovery" : TcpSender::cc_state();
  }

 protected:
  void on_new_ack(std::int64_t acked, std::int64_t ack_seq) override;
  void on_dup_ack() override;
  void on_timeout_window() override;

 private:
  bool in_recovery_ = false;
};

}  // namespace burst
