#include "src/transport/agent.hpp"

namespace burst {

Agent::Agent(Simulator& sim, Node& node, FlowId flow, NodeId peer)
    : sim_(sim), node_(node), flow_(flow), peer_(peer) {
  node_.attach(flow, this);
}

void Agent::transmit(Packet p) {
  p.flow = flow_;
  p.src = node_.id();
  p.dst = peer_;
  node_.send(p);
}

}  // namespace burst
