// Jacobson/Karels retransmission-timeout estimation with Karn-style
// exponential backoff and a coarse clock, as in BSD/ns-2 era stacks.
//
// The paper's timeout dynamics (Fig 13) depend on the timer being coarse:
// the RTO is rounded up to the measurement granularity and clamped to a
// minimum that is large relative to the 80 ms propagation RTT.
#pragma once

#include "src/sim/time.hpp"

namespace burst {

struct RtoConfig {
  Time granularity = 0.1;  // clock tick the RTO is rounded up to (ns tcpTick_)
  Time min_rto = 0.2;      // coarse lower bound (2 ticks, as in ns-2)
  Time max_rto = 64.0;
  Time initial_rto = 3.0;  // before the first RTT sample
};

/// The estimator's mutable per-flow state, split out so a FlowArena can
/// pack one RtoState per flow contiguously (huge-N mode) while the
/// estimator keeps owning the arithmetic.
struct RtoState {
  Time srtt = 0.0;
  Time rttvar = 0.0;
  bool has_sample = false;
  int backoff = 1;
};

class RtoEstimator {
 public:
  /// Self-contained estimator (state lives inside the object).
  explicit RtoEstimator(RtoConfig cfg = {}) : cfg_(cfg), st_(&own_) {}

  /// Estimator over externally owned state (a FlowArena slot). @p state
  /// must outlive the estimator and never move; null falls back to the
  /// internal state.
  RtoEstimator(RtoConfig cfg, RtoState* state)
      : cfg_(cfg), st_(state != nullptr ? state : &own_) {}

  // Copies snapshot the (possibly external) state into the new object's
  // own storage: a copied estimator computes identically but detaches
  // from the arena.
  RtoEstimator(const RtoEstimator& o) : cfg_(o.cfg_), own_(*o.st_), st_(&own_) {}
  RtoEstimator& operator=(const RtoEstimator& o) {
    cfg_ = o.cfg_;
    own_ = *o.st_;
    st_ = &own_;
    return *this;
  }

  /// Feeds one RTT measurement (from a non-retransmitted segment only —
  /// Karn's rule; callers enforce that).
  void sample(Time rtt);

  /// Current timeout including backoff.
  Time rto() const;

  /// Doubles the timeout after a retransmission (Karn).
  void backoff();

  /// Clears backoff once an ACK for new data arrives.
  void reset_backoff() { st_->backoff = 1; }

  bool has_sample() const { return st_->has_sample; }
  Time srtt() const { return st_->srtt; }
  Time rttvar() const { return st_->rttvar; }
  int backoff_factor() const { return st_->backoff; }

 private:
  RtoConfig cfg_;
  RtoState own_;
  RtoState* st_;
};

}  // namespace burst
