// Jacobson/Karels retransmission-timeout estimation with Karn-style
// exponential backoff and a coarse clock, as in BSD/ns-2 era stacks.
//
// The paper's timeout dynamics (Fig 13) depend on the timer being coarse:
// the RTO is rounded up to the measurement granularity and clamped to a
// minimum that is large relative to the 80 ms propagation RTT.
#pragma once

#include "src/sim/time.hpp"

namespace burst {

struct RtoConfig {
  Time granularity = 0.1;  // clock tick the RTO is rounded up to (ns tcpTick_)
  Time min_rto = 0.2;      // coarse lower bound (2 ticks, as in ns-2)
  Time max_rto = 64.0;
  Time initial_rto = 3.0;  // before the first RTT sample
};

class RtoEstimator {
 public:
  explicit RtoEstimator(RtoConfig cfg = {}) : cfg_(cfg) {}

  /// Feeds one RTT measurement (from a non-retransmitted segment only —
  /// Karn's rule; callers enforce that).
  void sample(Time rtt);

  /// Current timeout including backoff.
  Time rto() const;

  /// Doubles the timeout after a retransmission (Karn).
  void backoff();

  /// Clears backoff once an ACK for new data arrives.
  void reset_backoff() { backoff_ = 1; }

  bool has_sample() const { return has_sample_; }
  Time srtt() const { return srtt_; }
  Time rttvar() const { return rttvar_; }
  int backoff_factor() const { return backoff_; }

 private:
  RtoConfig cfg_;
  Time srtt_ = 0.0;
  Time rttvar_ = 0.0;
  bool has_sample_ = false;
  int backoff_ = 1;
};

}  // namespace burst
