// TCP Vegas (Brakmo & Peterson, 1995): proactive congestion avoidance.
//
// Once per round-trip Vegas compares the Expected throughput (cwnd /
// baseRTT) with the Actual throughput — packets *delivered* (cumulatively
// acknowledged) over the last round-trip divided by its duration. The
// difference, scaled by baseRTT, estimates how many of this stream's
// packets sit queued in the gateway (for a fully utilized window it
// reduces to the familiar cwnd * (RTT - baseRTT) / RTT):
//
//     diff = (Expected - Actual) * baseRTT
//
//   diff < alpha  -> linear increase (too little data in the pipe)
//   diff > beta   -> linear decrease (queue building up)
//   otherwise     -> hold (the equilibrium the paper credits for Vegas's
//                    smooth aggregate traffic, Figs 10-12)
//
// Using the *measured* Actual matters for the paper's workload: a Poisson
// application often leaves the window under-used, and cwnd-derived
// "actual" estimates would let the window balloon far beyond what the
// flow uses, re-creating Reno-style bursts. Actual counts delivered
// packets, not transmissions: counting retransmissions would inflate
// Actual during loss episodes and defer the very decrease the episode
// calls for (Brakmo's diff is defined on useful throughput).
//
// Slow start doubles only every *other* RTT and ends when diff exceeds
// gamma. Loss recovery uses Reno-style fast retransmit plus Vegas's
// fine-grained check (retransmit on an early dup ACK if the oldest
// outstanding packet has exceeded the fine-grained timeout), with a 3/4
// window cut rather than 1/2.
#pragma once

#include "src/obs/trace.hpp"
#include "src/transport/tcp_sender.hpp"

namespace burst {

struct VegasConfig {
  double alpha = 1.0;  // Table 1: TCP Vegas / 1
  double beta = 3.0;   // Table 1: TCP Vegas / 3
  double gamma = 1.0;  // Table 1: TCP Vegas / 1
};

class TcpVegas : public TcpSender {
 public:
  TcpVegas(Simulator& sim, Node& node, FlowId flow, NodeId peer,
           TcpConfig cfg = {}, VegasConfig vegas = {},
           FlowArena* arena = nullptr);

  double base_rtt() const { return base_rtt_; }
  bool in_slow_start() const { return in_ss_; }
  /// Last computed diff (queued-packet estimate), for tests/analysis.
  double last_diff() const { return last_diff_; }

  /// If set, every per-RTT Diff decision is emitted as a kVegasDiff trace
  /// record (value = diff, aux = cwnd after the decision).
  void set_vegas_trace(TraceSink* sink) { vegas_trace_ = sink; }

  std::string_view cc_state() const override {
    return in_ss_ ? "vegas-ss" : "vegas-ca";
  }

 protected:
  void on_new_ack(std::int64_t acked, std::int64_t ack_seq) override;
  void on_dup_ack() override;
  void on_timeout_window() override;
  void on_rtt_sample(Time rtt) override;
  void on_ecn_echo() override;

 private:
  void per_rtt_decision(Time epoch_len);
  void reset_epoch();
  /// Fine-grained timeout for the oldest outstanding packet.
  bool una_expired() const;
  /// Retransmits the hole; cuts the window at most once per RTT.
  void loss_retransmit();

  VegasConfig vegas_;
  double base_rtt_ = kTimeNever;
  // Per-round bookkeeping: a decision fires once per smoothed round-trip
  // of wall-clock (simulated) time.
  Time epoch_start_ = kTimeNever;
  std::int64_t epoch_una_start_ = 0;  // snd_una at epoch start (delivered)
  int epoch_rtt_cnt_ = 0;
  bool in_ss_ = true;
  bool ss_grow_round_ = true;  // doubling happens every other round
  Time last_cut_ = -1.0;       // time of the last window reduction
  double last_diff_ = 0.0;
  // Head-of-window sequence already resent by the fine-grained check;
  // guards against retransmitting the same hole on both early dup ACKs.
  std::int64_t last_fine_rexmit_ = -1;
  TraceSink* vegas_trace_ = nullptr;
};

}  // namespace burst
