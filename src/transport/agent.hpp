// Transport-agent base: an endpoint attached to a node, addressed by
// (flow id), talking to a peer node.
#pragma once

#include <cstdint>

#include "src/net/node.hpp"
#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class Agent : public PacketHandler {
 public:
  /// Attaches to @p node under @p flow; packets are exchanged with a peer
  /// agent of the same flow id on node @p peer.
  Agent(Simulator& sim, Node& node, FlowId flow, NodeId peer);
  ~Agent() override = default;

  FlowId flow() const { return flow_; }
  NodeId local() const { return node_.id(); }
  NodeId peer() const { return peer_; }

  /// Application interface: hands @p packets fixed-size packets to the
  /// transport for (eventual) transmission. Sinks ignore this.
  virtual void app_send(int packets) = 0;

 protected:
  /// Stamps addressing fields and injects the packet into the local node.
  void transmit(Packet p);

  std::uint64_t next_uid() { return ++uid_counter_; }

  Simulator& sim_;
  Node& node_;

 private:
  FlowId flow_;
  NodeId peer_;
  std::uint64_t uid_counter_ = 0;
};

}  // namespace burst
