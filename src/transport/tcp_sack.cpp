#include "src/transport/tcp_sack.hpp"

#include <algorithm>

namespace burst {

void TcpSack::on_ack_info(const Packet& p) {
  for (int i = 0; i < p.sack_count; ++i) {
    for (std::int64_t s = p.sack[i].lo; s < p.sack[i].hi; ++s) {
      if (s >= snd_una()) sacked_.insert(s);
    }
  }
  // Anything below the cumulative ACK is delivered; drop it from the
  // scoreboard.
  sacked_.erase(sacked_.begin(), sacked_.lower_bound(p.ack));
}

std::int64_t TcpSack::next_hole() const {
  for (std::int64_t s = snd_una(); s < recover_; ++s) {
    if (!sacked_.contains(s) && !rexmitted_.contains(s)) return s;
  }
  return -1;
}

void TcpSack::enter_recovery() {
  ++stats_.fast_retransmits;
  in_recovery_ = true;
  recover_ = snd_nxt();
  rexmitted_.clear();
  set_ssthresh(std::max(static_cast<double>(flight()) / 2.0, 2.0));
  set_cwnd(ssthresh());
  // Conservative pipe: what we believe is still in the network.
  pipe_ = static_cast<double>(flight()) - static_cast<double>(sacked_.size()) -
          static_cast<double>(dupacks());
  pipe_ = std::max(pipe_, 0.0);
  fill_pipe();
  restart_rto_timer();
}

void TcpSack::leave_recovery() {
  in_recovery_ = false;
  rexmitted_.clear();
  set_cwnd(ssthresh());
}

void TcpSack::fill_pipe() {
  while (pipe_ < cwnd()) {
    const std::int64_t hole = next_hole();
    if (hole >= 0) {
      send_segment(hole);
      rexmitted_.insert(hole);
    } else if (!send_new_segment()) {
      return;  // neither holes nor new data
    }
    pipe_ += 1.0;
  }
}

void TcpSack::on_new_ack(std::int64_t acked, std::int64_t ack_seq) {
  if (in_recovery_) {
    if (ack_seq >= recover_) {
      leave_recovery();
      return;
    }
    // Partial ACK: the hole at the old snd_una was filled; account the
    // delivered packets, then keep the pipe full.
    pipe_ = std::max(0.0, pipe_ - static_cast<double>(acked));
    // The packet just cumulatively acked may have been counted as
    // retransmitted; sequences below snd_una are gone from both sets.
    rexmitted_.erase(rexmitted_.begin(), rexmitted_.lower_bound(ack_seq));
    fill_pipe();
    restart_rto_timer();
    return;
  }
  standard_growth();
}

void TcpSack::on_dup_ack() {
  if (in_recovery_) {
    pipe_ = std::max(0.0, pipe_ - 1.0);  // one more packet left the pipe
    fill_pipe();
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  enter_recovery();
}

void TcpSack::on_timeout_window() {
  in_recovery_ = false;
  sacked_.clear();  // be conservative after a timeout (ns-2 behavior)
  rexmitted_.clear();
  set_cwnd(1.0);
}

}  // namespace burst
