#include "src/transport/tcp_newreno.hpp"

#include <algorithm>

namespace burst {

void TcpNewReno::on_new_ack(std::int64_t acked, std::int64_t ack_seq) {
  if (in_recovery_) {
    // recover_ is one past the highest sequence outstanding at loss
    // detection, so an ACK covering it (>=) ends recovery.
    if (ack_seq >= recover_) {
      in_recovery_ = false;
      set_cwnd(ssthresh());
    } else {
      // Partial ACK: retransmit the next hole, partially deflate.
      retransmit_una();
      set_cwnd(std::max(ssthresh(), cwnd() - static_cast<double>(acked) + 1.0));
      restart_rto_timer();
    }
    return;
  }
  standard_growth();
}

void TcpNewReno::on_dup_ack() {
  if (in_recovery_) {
    set_cwnd(cwnd() + 1.0);
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  ++stats_.fast_retransmits;
  recover_ = snd_nxt();
  set_ssthresh(std::max(static_cast<double>(flight()) / 2.0, 2.0));
  retransmit_una();
  in_recovery_ = true;
  set_cwnd(ssthresh() + static_cast<double>(config().dupack_threshold));
  restart_rto_timer();
}

void TcpNewReno::on_timeout_window() {
  in_recovery_ = false;
  recover_ = snd_nxt();
  set_cwnd(1.0);
}

}  // namespace burst
