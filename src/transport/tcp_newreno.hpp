// TCP NewReno (RFC 2582): Reno whose fast recovery survives partial ACKs.
// Recovery ends only when the ACK covers `recover` (the highest sequence
// outstanding when loss was detected); a partial ACK retransmits the next
// hole immediately instead of waiting for three more dup ACKs or a
// timeout. Included as an extension baseline beyond the paper.
#pragma once

#include "src/transport/tcp_sender.hpp"

namespace burst {

class TcpNewReno : public TcpSender {
 public:
  using TcpSender::TcpSender;

  bool in_fast_recovery() const { return in_recovery_; }

  std::string_view cc_state() const override {
    return in_recovery_ ? "fast-recovery" : TcpSender::cc_state();
  }

 protected:
  void on_new_ack(std::int64_t acked, std::int64_t ack_seq) override;
  void on_dup_ack() override;
  void on_timeout_window() override;

 private:
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
};

}  // namespace burst
