// Struct-of-arrays storage for per-flow transport state (huge-N mode).
//
// At the paper's scale (N=60) a heap-allocated TcpSender/TcpSink pair per
// flow is free; at mean-field scale (N=10^4..10^6, ROADMAP item 1) the
// per-object layout costs an allocation, a cache line and an
// unordered_map per flow. A FlowArena packs the mutable per-flow scalars
// (cwnd/ssthresh/sequence cursors/RTO estimator state/receiver cursors)
// into a few contiguous vectors sized once up front, and replaces each
// sender's sent-at hash map with a slice of one shared tag-checked ring.
//
// The Agent classes stay the interface: a TcpSender constructed against a
// shared arena is a *view* over slot i of these arrays. Construction
// without an arena (tests, single-flow tools) transparently self-hosts a
// one-slot arena, so both paths execute identical arithmetic — which is
// why the N=60 identity hashes and conformance goldens survive the
// refactor bit-for-bit (see DESIGN.md sec. 12).
//
// A hard memory budget (set_default_budget_bytes or set_budget_bytes)
// turns an oversized reserve() into a std::length_error instead of an
// OOM-killed process; fig_meanfield and the slow N=1e5 smoke test pin the
// bytes/flow ceiling in CI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/sim/time.hpp"
#include "src/transport/rto_estimator.hpp"

namespace burst {

class FlowArena {
 public:
  /// Ring slot tag meaning "no sequence stored here".
  static constexpr std::int64_t kRingEmpty = -1;

  FlowArena() = default;
  FlowArena(const FlowArena&) = delete;
  FlowArena& operator=(const FlowArena&) = delete;

  // --- Budget knob -----------------------------------------------------
  /// Process-wide default budget applied to newly constructed arenas.
  /// 0 = unlimited. Thread-compatible with the campaign executor: set it
  /// before spawning workers.
  static void set_default_budget_bytes(std::size_t bytes);
  static std::size_t default_budget_bytes();
  /// Per-arena override; call before reserve().
  void set_budget_bytes(std::size_t bytes) { budget_bytes_ = bytes; }
  std::size_t budget_bytes() const { return budget_bytes_; }

  // --- Capacity --------------------------------------------------------
  /// Sizes every array for @p senders sender slots and @p sinks sink
  /// slots, with @p ring_capacity (a power of two) sent-at ring entries
  /// per sender. Throws std::length_error if the projected footprint
  /// exceeds the budget. Must be called before the first allocate_*();
  /// callable once per arena (slots hand out stable RtoState pointers, so
  /// the arrays never reallocate afterwards).
  void reserve(std::size_t senders, std::size_t sinks,
               std::size_t ring_capacity);

  /// Smallest power-of-two ring that covers the live sequence span
  /// [snd_una, snd_max) of a window-limited sender (advertised window
  /// plus limited-transmit/rewind slack). Overflows spill to a shared map
  /// (exact semantics either way), so this is a performance hint, not a
  /// correctness bound.
  static std::size_t ring_capacity_for(double advertised_window);

  /// Projected bytes for one sender slot (scalars + RtoState + ring).
  static std::size_t sender_bytes(std::size_t ring_capacity);
  /// Projected bytes for one sink slot.
  static std::size_t sink_bytes();
  /// Bytes actually reserved by this arena's arrays.
  std::size_t bytes_reserved() const { return bytes_reserved_; }

  std::uint32_t allocate_sender(double initial_cwnd,
                                double initial_ssthresh);
  std::uint32_t allocate_sink();
  std::size_t sender_count() const { return sender_count_; }
  std::size_t sink_count() const { return sink_count_; }

  // --- Sender fields (hot; slot index from allocate_sender) ------------
  double& cwnd(std::uint32_t s) { return cwnd_[s]; }
  double& ssthresh(std::uint32_t s) { return ssthresh_[s]; }
  std::int64_t& snd_una(std::uint32_t s) { return snd_una_[s]; }
  std::int64_t& snd_nxt(std::uint32_t s) { return snd_nxt_[s]; }
  std::int64_t& snd_max(std::uint32_t s) { return snd_max_[s]; }
  std::int64_t& app_total(std::uint32_t s) { return app_total_[s]; }
  int& dupacks(std::uint32_t s) { return dupacks_[s]; }
  Time& last_ecn_cut(std::uint32_t s) { return last_ecn_cut_[s]; }
  RtoState& rto_state(std::uint32_t s) { return rto_[s]; }

  double cwnd(std::uint32_t s) const { return cwnd_[s]; }
  double ssthresh(std::uint32_t s) const { return ssthresh_[s]; }
  std::int64_t snd_una(std::uint32_t s) const { return snd_una_[s]; }
  std::int64_t snd_nxt(std::uint32_t s) const { return snd_nxt_[s]; }
  std::int64_t snd_max(std::uint32_t s) const { return snd_max_[s]; }
  std::int64_t app_total(std::uint32_t s) const { return app_total_[s]; }
  int dupacks(std::uint32_t s) const { return dupacks_[s]; }
  Time last_ecn_cut(std::uint32_t s) const { return last_ecn_cut_[s]; }

  // --- Sent-at ring ----------------------------------------------------
  // Per-sender slice [s*cap, (s+1)*cap) of one tag-checked ring. The
  // three operations reproduce unordered_map<seq, Time> semantics
  // exactly: a slot is valid only when its tag equals the sequence, and
  // the rare live collision (SACK recovery can stretch the in-flight
  // span past the ring) spills to a shared overflow map, preserving the
  // stored timestamps bit-for-bit.
  void ring_store(std::uint32_t s, std::int64_t seq, Time at) {
    const std::size_t pos = ring_pos(s, seq);
    if (ring_seq_[pos] == seq) {
      ring_time_[pos] = at;
      return;
    }
    if (!overflow_.empty()) {
      auto it = overflow_.find(overflow_key(s, seq));
      if (it != overflow_.end()) {
        it->second = at;
        return;
      }
    }
    if (ring_seq_[pos] == kRingEmpty) {
      ring_seq_[pos] = seq;
      ring_time_[pos] = at;
      return;
    }
    overflow_[overflow_key(s, seq)] = at;  // live collision (rare)
  }

  Time ring_lookup(std::uint32_t s, std::int64_t seq) const {
    const std::size_t pos = ring_pos(s, seq);
    if (ring_seq_[pos] == seq) return ring_time_[pos];
    if (!overflow_.empty()) {
      auto it = overflow_.find(overflow_key(s, seq));
      if (it != overflow_.end()) return it->second;
    }
    return kTimeNever;
  }

  void ring_erase(std::uint32_t s, std::int64_t seq) {
    const std::size_t pos = ring_pos(s, seq);
    if (ring_seq_[pos] == seq) {
      ring_seq_[pos] = kRingEmpty;
      return;
    }
    if (!overflow_.empty()) overflow_.erase(overflow_key(s, seq));
  }

  /// Entries currently parked in the collision overflow map (0 in every
  /// window-limited scenario; a regression here costs speed, not
  /// correctness).
  std::size_t ring_overflow_entries() const { return overflow_.size(); }

  // --- Sink fields -----------------------------------------------------
  std::int64_t& rcv_nxt(std::uint32_t s) { return rcv_nxt_[s]; }
  Time& echo_ts(std::uint32_t s) { return echo_ts_[s]; }
  std::int64_t rcv_nxt(std::uint32_t s) const { return rcv_nxt_[s]; }
  Time echo_ts(std::uint32_t s) const { return echo_ts_[s]; }
  bool echo_rexmit(std::uint32_t s) const { return echo_rexmit_[s] != 0; }
  void set_echo_rexmit(std::uint32_t s, bool v) { echo_rexmit_[s] = v; }
  bool echo_ece(std::uint32_t s) const { return echo_ece_[s] != 0; }
  void set_echo_ece(std::uint32_t s, bool v) { echo_ece_[s] = v; }
  bool delack_pending(std::uint32_t s) const {
    return delack_pending_[s] != 0;
  }
  void set_delack_pending(std::uint32_t s, bool v) {
    delack_pending_[s] = v;
  }

 private:
  std::size_t ring_pos(std::uint32_t s, std::int64_t seq) const {
    return static_cast<std::size_t>(s) * ring_cap_ +
           (static_cast<std::size_t>(seq) & (ring_cap_ - 1));
  }
  // Sequences stay far below 2^40 (packets per flow per run), so slot and
  // sequence pack into one map key.
  static std::uint64_t overflow_key(std::uint32_t s, std::int64_t seq) {
    return (static_cast<std::uint64_t>(s) << 40) |
           static_cast<std::uint64_t>(seq);
  }

  std::size_t budget_bytes_ = default_budget_bytes();
  std::size_t bytes_reserved_ = 0;
  std::size_t reserved_senders_ = 0;
  std::size_t reserved_sinks_ = 0;
  std::size_t sender_count_ = 0;
  std::size_t sink_count_ = 0;
  std::size_t ring_cap_ = 0;

  // Sender arrays (parallel, indexed by sender slot).
  std::vector<double> cwnd_;
  std::vector<double> ssthresh_;
  std::vector<std::int64_t> snd_una_;
  std::vector<std::int64_t> snd_nxt_;
  std::vector<std::int64_t> snd_max_;
  std::vector<std::int64_t> app_total_;
  std::vector<int> dupacks_;
  std::vector<Time> last_ecn_cut_;
  std::vector<RtoState> rto_;
  std::vector<std::int64_t> ring_seq_;
  std::vector<Time> ring_time_;
  std::unordered_map<std::uint64_t, Time> overflow_;

  // Sink arrays (parallel, indexed by sink slot).
  std::vector<std::int64_t> rcv_nxt_;
  std::vector<Time> echo_ts_;
  std::vector<std::uint8_t> echo_rexmit_;
  std::vector<std::uint8_t> echo_ece_;
  std::vector<std::uint8_t> delack_pending_;
};

}  // namespace burst
