// TCP sender framework (packet-granularity, ns-2 style).
//
// Windows, sequence numbers and thresholds are all in units of packets,
// matching the simulator used by the paper. The application pushes
// packets into an *unbounded* send buffer independently of the congestion
// window (Sec 3.2.1 of the paper relies on this backlog: slow-start bursts
// happen because buffered data drains a full window per ACK).
//
// The base class implements sequencing, the retransmission timer
// (Jacobson/Karels + Karn), duplicate-ACK accounting and loss recovery
// plumbing; concrete congestion-control policies (Tahoe, Reno, NewReno,
// Vegas) override the window-adjustment hooks.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/sim/trace.hpp"
#include "src/transport/agent.hpp"
#include "src/transport/flow_arena.hpp"
#include "src/transport/rto_estimator.hpp"
#include "src/sim/timer.hpp"

namespace burst {

struct TcpConfig {
  int payload_bytes = kDefaultPayloadBytes;
  double advertised_window = 20.0;  // receiver window, packets (Table 1)
  double initial_cwnd = 1.0;
  double initial_ssthresh = 1e9;    // effectively "until the first loss"
  int dupack_threshold = 3;
  bool ecn = false;                 // negotiate ECN-capable transport
  /// RFC 3042 limited transmit: send one new segment on each of the first
  /// two duplicate ACKs (without growing cwnd), so thin flows generate
  /// enough dup ACKs to reach fast retransmit instead of timing out.
  bool limited_transmit = false;
  /// RFC 2861-style congestion-window validation: do not grow cwnd while
  /// the flow is not actually using it. The paper's slow-start bursts
  /// (Sec 3.2.1) exist precisely because ns-2-era stacks grow cwnd during
  /// app-limited periods and the banked window releases as a burst; this
  /// switch lets the ablation quantify that mechanism. Off by default
  /// (the paper's TCP did not validate).
  bool cwnd_validation = false;
  RtoConfig rto{};
};

struct TcpSenderStats {
  std::uint64_t app_packets = 0;     // submitted by the application
  std::uint64_t data_pkts_sent = 0;  // transmissions incl. retransmissions
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;        // RTO expirations
  std::uint64_t fast_retransmits = 0;
  std::uint64_t dupacks = 0;         // duplicate ACKs received
  std::uint64_t new_acks = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t ecn_echoes = 0;      // ACKs carrying a congestion echo
  std::uint64_t ecn_reductions = 0;  // window cuts taken in response
};

/// A point-in-time snapshot of the sender, emitted at every protocol
/// event. The conformance testkit serializes these into golden traces;
/// anything that reshapes per-event window dynamics shows up as a diff.
struct TcpSenderEvent {
  enum class Kind : std::uint8_t {
    kSend,     // a data segment left the sender (seq, retransmit)
    kNewAck,   // a cumulative ACK advanced snd_una (seq = ack)
    kDupAck,   // a duplicate ACK was processed (seq = snd_una)
    kRto,      // the retransmission timer fired (seq = snd_una)
    kEcnEcho,  // an ECN congestion echo triggered a window cut
  };
  Kind kind;
  Time time = 0.0;
  std::int64_t seq = 0;     // see Kind
  bool retransmit = false;  // kSend: segment carried the Karn taint flag
  // Post-event sender state (policy hooks have already run).
  double cwnd = 0.0;
  double ssthresh = 0.0;
  std::int64_t snd_una = 0;
  std::int64_t snd_nxt = 0;
  std::int64_t flight = 0;
  int dupacks = 0;
  std::uint64_t rtt_samples = 0;  // cumulative clean (Karn-valid) samples
  std::string_view state;         // policy-reported phase (cc_state())
};

/// Receives every TcpSenderEvent of one sender. Observation must not
/// perturb the simulation; observers only read.
class TcpSenderObserver {
 public:
  virtual ~TcpSenderObserver() = default;
  virtual void on_sender_event(const TcpSenderEvent& e) = 0;
};

class TcpSender : public Agent {
 public:
  /// @p arena: shared struct-of-arrays storage for the per-flow scalars
  /// (huge-N mode; see flow_arena.hpp). Null self-hosts a one-slot arena,
  /// so standalone construction behaves exactly as before.
  TcpSender(Simulator& sim, Node& node, FlowId flow, NodeId peer,
            TcpConfig cfg = {}, FlowArena* arena = nullptr);

  void app_send(int packets) override;
  void handle(const Packet& p) override;

  // --- Introspection --------------------------------------------------
  double cwnd() const { return arena_->cwnd(slot_); }
  double ssthresh() const { return arena_->ssthresh(slot_); }
  std::int64_t snd_una() const { return arena_->snd_una(slot_); }
  std::int64_t snd_nxt() const { return arena_->snd_nxt(slot_); }
  /// One past the highest sequence ever transmitted (>= snd_nxt; they
  /// differ after a go-back-N rewind).
  std::int64_t snd_max() const { return arena_->snd_max(slot_); }
  /// Application packets buffered but not yet transmitted.
  std::int64_t backlog() const {
    return arena_->app_total(slot_) - snd_nxt();
  }
  /// Packets in flight (sent, not yet cumulatively acknowledged).
  std::int64_t flight() const { return snd_nxt() - snd_una(); }
  const TcpSenderStats& stats() const { return stats_; }
  const RtoEstimator& rto_estimator() const { return estimator_; }
  const TcpConfig& config() const { return cfg_; }

  /// If set, every congestion-window change is recorded (Figs 5-12).
  void set_cwnd_trace(TraceSeries* trace);

  /// If set, every protocol event (send, ack, dup ack, timeout, ECN echo)
  /// is reported with a post-event state snapshot. Test-only hook; the
  /// hot path pays one null check per event when unset.
  void set_observer(TcpSenderObserver* observer) { observer_ = observer; }

  /// Human-readable congestion-control phase for traces ("slow-start",
  /// "cong-avoid"; policies override to expose recovery/Vegas phases).
  virtual std::string_view cc_state() const {
    return cwnd() < ssthresh() ? "slow-start" : "cong-avoid";
  }

 protected:
  // --- Policy hooks ----------------------------------------------------
  /// A cumulative ACK advanced snd_una by @p acked packets to @p ack_seq.
  virtual void on_new_ack(std::int64_t acked, std::int64_t ack_seq) = 0;
  /// A duplicate ACK arrived (dupacks() holds the current count).
  virtual void on_dup_ack() = 0;
  /// The retransmission timer fired; set the post-timeout window. The base
  /// class has already halved ssthresh and rewound snd_nxt (go-back-N).
  virtual void on_timeout_window() = 0;
  /// A clean (Karn-valid) RTT sample was taken. Vegas feeds on this.
  virtual void on_rtt_sample(Time rtt) { (void)rtt; }
  /// An ACK echoed an ECN congestion mark. The base rate-limits calls to
  /// one per RTT; the default response is a Reno-style halving without
  /// retransmission. Vegas overrides with its gentler 3/4 cut.
  virtual void on_ecn_echo();

  // --- Services for subclasses -----------------------------------------
  /// Updates cwnd (floored at 1 packet) and records the trace point.
  void set_cwnd(double v);
  void set_ssthresh(double v) { arena_->ssthresh(slot_) = v; }
  /// Standard slow-start / congestion-avoidance growth on a new ACK,
  /// honoring cwnd_validation. Used by the Reno-family policies.
  void standard_growth();
  /// True if the current flight (nearly) fills the effective window.
  bool window_limited() const;
  /// Retransmits the first unacknowledged packet (fast retransmit).
  void retransmit_una();
  /// Transmits an arbitrary sequence (a retransmission if already sent).
  /// SACK recovery uses this to fill reported holes directly.
  void send_segment(std::int64_t seq);
  /// Transmits the next unsent application packet, if any.
  bool send_new_segment();
  /// Policy hook invoked with the raw ACK before any other processing,
  /// so extensions (SACK) can read their option blocks.
  virtual void on_ack_info(const Packet& p) { (void)p; }
  /// Restarts the retransmission timer with the current RTO.
  void restart_rto_timer();
  int dupacks() const { return arena_->dupacks(slot_); }
  /// Time the given outstanding sequence was (last) transmitted. Defined
  /// for outstanding sequences (>= snd_una); acknowledged sequences have
  /// been forgotten and report kTimeNever.
  Time sent_at(std::int64_t seq) const {
    return arena_->ring_lookup(slot_, seq);
  }
  /// Sends as much buffered data as the window permits.
  void try_send();
  /// Rewinds snd_nxt to snd_una (go-back-N; Tahoe uses this on loss).
  void rewind_to_una() { arena_->snd_nxt(slot_) = snd_una(); }
  Time now() const { return sim_.now(); }

  TcpSenderStats stats_;

 private:
  void on_rto();
  void send_seq(std::int64_t seq);
  double effective_window() const;
  /// Reports a post-event snapshot to the observer, if any.
  void notify(TcpSenderEvent::Kind kind, std::int64_t seq, bool retransmit);

  TcpConfig cfg_;
  // Storage for the per-flow scalars. Shared arena in huge-N mode;
  // self-hosted single-slot arena otherwise. Declared before estimator_:
  // the estimator binds to the slot's RtoState.
  std::unique_ptr<FlowArena> own_arena_;
  FlowArena* arena_;
  std::uint32_t slot_;
  RtoEstimator estimator_;
  Timer rto_timer_;

  TraceSeries* cwnd_trace_ = nullptr;
  TcpSenderObserver* observer_ = nullptr;
};

}  // namespace burst
