// TCP with selective acknowledgments (RFC 2018 receiver reporting + a
// conservative RFC 3517-style sender), in the ns-2 "sack1" spirit.
//
// The sender keeps a scoreboard of sequences the receiver has reported
// holding. During fast recovery it maintains a pipe estimate (packets
// believed in flight) and, whenever pipe < cwnd, transmits the next
// un-SACKed hole — or new data when no holes remain. Partial ACKs keep
// recovery going instead of stalling into a timeout, which is Reno's
// weakness under the multiple-drops-per-window losses the paper's heavy
// congestion produces.
//
// An extension baseline beyond the paper (its "different implementations
// of TCP" axis): the SACK ablation bench asks whether smarter loss
// recovery removes the burstiness Reno induces (it reduces the timeouts
// but not the synchronized multiplicative decreases).
#pragma once

#include <set>

#include "src/transport/tcp_sender.hpp"

namespace burst {

class TcpSack : public TcpSender {
 public:
  using TcpSender::TcpSender;

  bool in_fast_recovery() const { return in_recovery_; }
  /// Sequences currently reported held by the receiver (above snd_una).
  std::size_t scoreboard_size() const { return sacked_.size(); }

  std::string_view cc_state() const override {
    return in_recovery_ ? "sack-recovery" : TcpSender::cc_state();
  }

 protected:
  void on_ack_info(const Packet& p) override;
  void on_new_ack(std::int64_t acked, std::int64_t ack_seq) override;
  void on_dup_ack() override;
  void on_timeout_window() override;

 private:
  /// Smallest sequence in [snd_una, recover_) that is neither SACKed nor
  /// already retransmitted in this recovery episode; -1 if none.
  std::int64_t next_hole() const;
  /// Sends holes/new data while the pipe has room.
  void fill_pipe();
  void enter_recovery();
  void leave_recovery();

  std::set<std::int64_t> sacked_;
  std::set<std::int64_t> rexmitted_;  // holes already resent this episode
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  double pipe_ = 0.0;
};

}  // namespace burst
