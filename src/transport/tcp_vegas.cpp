#include "src/transport/tcp_vegas.hpp"

#include <algorithm>

namespace burst {

TcpVegas::TcpVegas(Simulator& sim, Node& node, FlowId flow, NodeId peer,
                   TcpConfig cfg, VegasConfig vegas, FlowArena* arena)
    : TcpSender(sim, node, flow, peer, cfg, arena), vegas_(vegas) {}

void TcpVegas::on_rtt_sample(Time rtt) {
  base_rtt_ = std::min(base_rtt_, rtt);
  ++epoch_rtt_cnt_;
}

void TcpVegas::reset_epoch() {
  epoch_start_ = now();
  epoch_una_start_ = snd_una();
  epoch_rtt_cnt_ = 0;
}

void TcpVegas::per_rtt_decision(Time epoch_len) {
  // Actual = useful (delivered) throughput: cumulative-ACK progress over
  // the round. Transmissions would double-count retransmitted holes and
  // inflate Actual exactly when the path is dropping.
  const double actual = static_cast<double>(snd_una() - epoch_una_start_) /
                        epoch_len;                  // pkts/s delivered
  const double expected = cwnd() / base_rtt_;       // pkts/s the window allows
  const double diff = (expected - actual) * base_rtt_;
  last_diff_ = diff;

  if (in_ss_) {
    if (diff > vegas_.gamma) {
      // Leaving slow start: shed the overshoot (1/8 cut, per Brakmo).
      in_ss_ = false;
      set_cwnd(std::max(2.0, cwnd() * 7.0 / 8.0));
    } else {
      ss_grow_round_ = !ss_grow_round_;  // double every other round
    }
  } else {
    if (diff < vegas_.alpha) {
      set_cwnd(cwnd() + 1.0);
    } else if (diff > vegas_.beta) {
      set_cwnd(std::max(2.0, cwnd() - 1.0));
    }
  }
  if (vegas_trace_) {
    TraceRecord r;
    r.time = now();
    r.type = TraceEventType::kVegasDiff;
    r.flow = flow();
    r.seq = snd_una();
    r.value = diff;
    r.aux = cwnd();  // post-decision window
    vegas_trace_->emit(r);
  }
}

bool TcpVegas::una_expired() const {
  const auto& est = rto_estimator();
  if (!est.has_sample()) return false;
  const Time fine_timeout = est.srtt() + 4.0 * est.rttvar();
  const Time first_sent = sent_at(snd_una());
  return first_sent != kTimeNever && now() - first_sent > fine_timeout;
}

void TcpVegas::on_new_ack(std::int64_t /*acked*/, std::int64_t /*ack_seq*/) {
  // Brakmo's fine-grained check on ACKs after a retransmission: if the new
  // head of the window has already exceeded the fine-grained timeout, it
  // was lost too — retransmit without waiting for dup ACKs or the coarse
  // timer. This is what keeps Vegas's timeout count near zero (Fig 13).
  if (flight() > 0 && una_expired() && snd_una() != last_fine_rexmit_) {
    loss_retransmit();
  }

  if (in_ss_ && ss_grow_round_) {
    set_cwnd(cwnd() + 1.0);  // exponential growth, in growing rounds only
  }
  if (epoch_start_ == kTimeNever) {
    reset_epoch();
    return;
  }
  // One decision per smoothed round-trip of elapsed time, provided at
  // least one clean RTT sample arrived in the round.
  const auto& est = rto_estimator();
  if (!est.has_sample()) return;
  const Time epoch_len = now() - epoch_start_;
  if (epoch_len >= est.srtt() && epoch_rtt_cnt_ > 0) {
    per_rtt_decision(epoch_len);
    reset_epoch();
  }
}

void TcpVegas::loss_retransmit() {
  ++stats_.fast_retransmits;
  last_fine_rexmit_ = snd_una();
  retransmit_una();
  in_ss_ = false;
  // Window reduction at most once per round-trip (Brakmo), and gentler
  // than Reno: 3/4 rather than 1/2.
  const auto& est = rto_estimator();
  const Time rtt_guard = est.has_sample() ? est.srtt() : 0.0;
  if (last_cut_ < 0.0 || now() - last_cut_ > rtt_guard) {
    set_cwnd(std::max(2.0, cwnd() * 0.75));
    last_cut_ = now();
  }
  set_ssthresh(2.0);
  restart_rto_timer();
}

void TcpVegas::on_dup_ack() {
  // Fine-grained check: even on the first or second dup ACK, retransmit
  // if the oldest outstanding packet has exceeded srtt + 4*rttvar. A hole
  // is resent at most once per loss detection (Brakmo): without the
  // last_fine_rexmit_ guard, slow dup ACKs re-expire the just-resent
  // head and the first *and* second dup ACK both retransmit it.
  if (snd_una() == last_fine_rexmit_) return;
  if (dupacks() >= config().dupack_threshold ||
      (una_expired() && dupacks() <= 2)) {
    // Re-retransmitting the same hole on every later dup ACK would flood
    // the path; only act on the threshold crossing or the early check.
    if (dupacks() == config().dupack_threshold || dupacks() <= 2) {
      loss_retransmit();
    }
  }
}

void TcpVegas::on_ecn_echo() {
  // Vegas's gentler multiplicative decrease applies to marks too.
  in_ss_ = false;
  set_cwnd(std::max(2.0, cwnd() * 0.75));
  set_ssthresh(2.0);
  ++stats_.ecn_reductions;
}

void TcpVegas::on_timeout_window() {
  last_cut_ = now();
  in_ss_ = true;
  ss_grow_round_ = true;
  epoch_start_ = kTimeNever;
  epoch_rtt_cnt_ = 0;
  last_fine_rexmit_ = -1;  // go-back-N resends the head; re-arm the check
  set_cwnd(2.0);
}

}  // namespace burst
