#include "src/transport/tcp_sender.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

namespace {

/// Standalone mode: a private one-slot arena so a sender constructed
/// without a shared FlowArena behaves exactly as before the SoA refactor.
std::unique_ptr<FlowArena> make_own_arena(const TcpConfig& cfg) {
  auto arena = std::make_unique<FlowArena>();
  arena->set_budget_bytes(0);  // a single slot never breaks a budget
  arena->reserve(1, 0, FlowArena::ring_capacity_for(cfg.advertised_window));
  return arena;
}

}  // namespace

TcpSender::TcpSender(Simulator& sim, Node& node, FlowId flow, NodeId peer,
                     TcpConfig cfg, FlowArena* arena)
    : Agent(sim, node, flow, peer),
      cfg_(cfg),
      own_arena_(arena != nullptr ? nullptr : make_own_arena(cfg)),
      arena_(arena != nullptr ? arena : own_arena_.get()),
      slot_(arena_->allocate_sender(cfg.initial_cwnd, cfg.initial_ssthresh)),
      estimator_(cfg.rto, &arena_->rto_state(slot_)),
      // Lazy mode: the RTO deadline is pushed forward by every ACK; a
      // soft-deadline timer turns that churn into a field write, and its
      // armed event rides the scheduler's timing wheel, so 10^5+ flows'
      // worth of idle-armed RTOs never deepen the packet-event heap.
      rto_timer_(sim, [this] { on_rto(); }, Timer::Mode::kLazy) {}

void TcpSender::set_cwnd_trace(TraceSeries* trace) {
  cwnd_trace_ = trace;
  if (cwnd_trace_) cwnd_trace_->record(sim_.now(), cwnd());
}

void TcpSender::notify(TcpSenderEvent::Kind kind, std::int64_t seq,
                       bool retransmit) {
  if (!observer_) return;
  TcpSenderEvent e;
  e.kind = kind;
  e.time = sim_.now();
  e.seq = seq;
  e.retransmit = retransmit;
  e.cwnd = cwnd();
  e.ssthresh = ssthresh();
  e.snd_una = snd_una();
  e.snd_nxt = snd_nxt();
  e.flight = flight();
  e.dupacks = dupacks();
  e.rtt_samples = stats_.rtt_samples;
  e.state = cc_state();
  observer_->on_sender_event(e);
}

void TcpSender::set_cwnd(double v) {
  arena_->cwnd(slot_) = std::max(1.0, v);
  if (cwnd_trace_) cwnd_trace_->record(sim_.now(), cwnd());
}

void TcpSender::app_send(int packets) {
  stats_.app_packets += static_cast<std::uint64_t>(packets);
  arena_->app_total(slot_) += packets;
  try_send();
}

double TcpSender::effective_window() const {
  return std::max(1.0, std::min(std::floor(cwnd()), cfg_.advertised_window));
}

bool TcpSender::window_limited() const {
  // "Using the window" = the in-flight data is within one packet of it.
  return static_cast<double>(flight()) + 1.0 >= effective_window();
}

void TcpSender::standard_growth() {
  if (cfg_.cwnd_validation && !window_limited()) return;
  if (cwnd() < ssthresh()) {
    set_cwnd(cwnd() + 1.0);  // slow start: one packet per ACK
  } else {
    set_cwnd(cwnd() + 1.0 / cwnd());  // congestion avoidance
  }
}

void TcpSender::try_send() {
  while (snd_nxt() < arena_->app_total(slot_) &&
         static_cast<double>(flight()) < effective_window()) {
    send_seq(snd_nxt());
    ++arena_->snd_nxt(slot_);
  }
}

void TcpSender::send_seq(std::int64_t seq) {
  Packet p;
  p.uid = next_uid();
  p.type = PacketType::kData;
  p.size_bytes = cfg_.payload_bytes + kHeaderBytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.retransmit = seq < snd_max();
  p.ecn_capable = cfg_.ecn;
  arena_->snd_max(slot_) = std::max(snd_max(), seq + 1);
  arena_->ring_store(slot_, seq, sim_.now());

  ++stats_.data_pkts_sent;
  if (p.retransmit) ++stats_.retransmits;
  transmit(p);
  if (!rto_timer_.pending()) rto_timer_.schedule(estimator_.rto());
  notify(TcpSenderEvent::Kind::kSend, seq, p.retransmit);
}

void TcpSender::retransmit_una() { send_seq(snd_una()); }

void TcpSender::send_segment(std::int64_t seq) { send_seq(seq); }

bool TcpSender::send_new_segment() {
  if (snd_nxt() >= arena_->app_total(slot_)) return false;
  send_seq(snd_nxt());
  ++arena_->snd_nxt(slot_);
  return true;
}

void TcpSender::restart_rto_timer() { rto_timer_.schedule(estimator_.rto()); }

void TcpSender::on_ecn_echo() {
  // Default (RFC 2481 / Reno-style): a congestion echo is treated like a
  // fast-retransmit loss signal, except nothing needs retransmitting.
  set_ssthresh(std::max(cwnd() / 2.0, 2.0));
  set_cwnd(ssthresh());
  ++stats_.ecn_reductions;
}

void TcpSender::handle(const Packet& p) {
  if (p.type != PacketType::kAck) return;

  on_ack_info(p);

  if (p.ece) {
    ++stats_.ecn_echoes;
    // At most one window reduction per round-trip (like one loss event).
    const Time guard = estimator_.has_sample() ? estimator_.srtt() : 0.1;
    Time& last_cut = arena_->last_ecn_cut(slot_);
    if (last_cut < 0.0 || sim_.now() - last_cut > guard) {
      last_cut = sim_.now();
      on_ecn_echo();
      notify(TcpSenderEvent::Kind::kEcnEcho, p.ack, false);
    }
  }

  if (p.ack > snd_una()) {
    const std::int64_t acked = p.ack - snd_una();
    for (std::int64_t s = snd_una(); s < p.ack; ++s) {
      arena_->ring_erase(slot_, s);
    }
    arena_->snd_una(slot_) = p.ack;
    arena_->snd_nxt(slot_) = std::max(snd_nxt(), snd_una());
    ++stats_.new_acks;
    arena_->dupacks(slot_) = 0;

    // Karn's rule: only segments never retransmitted yield RTT samples.
    if (!p.retransmit) {
      const Time rtt = sim_.now() - p.ts_echo;
      estimator_.sample(rtt);
      ++stats_.rtt_samples;
      on_rtt_sample(rtt);
    }
    estimator_.reset_backoff();

    on_new_ack(acked, p.ack);

    if (snd_una() == snd_nxt() && backlog() == 0) {
      rto_timer_.cancel();
    } else {
      restart_rto_timer();
    }
    notify(TcpSenderEvent::Kind::kNewAck, p.ack, false);
    try_send();
    return;
  }

  if (p.ack == snd_una() && flight() > 0) {
    ++arena_->dupacks(slot_);
    ++stats_.dupacks;
    if (cfg_.limited_transmit && dupacks() <= 2 &&
        static_cast<double>(flight()) <
            std::min(cwnd(), cfg_.advertised_window) + 2.0) {
      send_new_segment();  // RFC 3042: keep the dup-ACK clock alive
    }
    on_dup_ack();
    notify(TcpSenderEvent::Kind::kDupAck, snd_una(), false);
    try_send();  // recovery inflation may have opened the window
  }
}

void TcpSender::on_rto() {
  ++stats_.timeouts;
  estimator_.backoff();
  // Multiplicative decrease of the threshold, computed before the rewind.
  set_ssthresh(std::max(static_cast<double>(flight()) / 2.0, 2.0));
  arena_->dupacks(slot_) = 0;
  arena_->snd_nxt(slot_) = snd_una();  // go-back-N recovery from the hole
  on_timeout_window();
  rto_timer_.schedule(estimator_.rto());
  notify(TcpSenderEvent::Kind::kRto, snd_una(), false);
  try_send();
}

}  // namespace burst
