#include "src/transport/tcp_sender.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

TcpSender::TcpSender(Simulator& sim, Node& node, FlowId flow, NodeId peer,
                     TcpConfig cfg)
    : Agent(sim, node, flow, peer),
      cfg_(cfg),
      estimator_(cfg.rto),
      // Lazy mode: the RTO deadline is pushed forward by every ACK; a
      // soft-deadline timer turns that churn into a field write, and its
      // armed event rides the scheduler's timing wheel, so 10^5+ flows'
      // worth of idle-armed RTOs never deepen the packet-event heap.
      rto_timer_(sim, [this] { on_rto(); }, Timer::Mode::kLazy),
      cwnd_(cfg.initial_cwnd),
      ssthresh_(cfg.initial_ssthresh) {}

void TcpSender::set_cwnd_trace(TraceSeries* trace) {
  cwnd_trace_ = trace;
  if (cwnd_trace_) cwnd_trace_->record(sim_.now(), cwnd_);
}

void TcpSender::notify(TcpSenderEvent::Kind kind, std::int64_t seq,
                       bool retransmit) {
  if (!observer_) return;
  TcpSenderEvent e;
  e.kind = kind;
  e.time = sim_.now();
  e.seq = seq;
  e.retransmit = retransmit;
  e.cwnd = cwnd_;
  e.ssthresh = ssthresh_;
  e.snd_una = snd_una_;
  e.snd_nxt = snd_nxt_;
  e.flight = flight();
  e.dupacks = dupacks_;
  e.rtt_samples = stats_.rtt_samples;
  e.state = cc_state();
  observer_->on_sender_event(e);
}

void TcpSender::set_cwnd(double v) {
  cwnd_ = std::max(1.0, v);
  if (cwnd_trace_) cwnd_trace_->record(sim_.now(), cwnd_);
}

void TcpSender::app_send(int packets) {
  stats_.app_packets += static_cast<std::uint64_t>(packets);
  app_total_ += packets;
  try_send();
}

double TcpSender::effective_window() const {
  return std::max(1.0, std::min(std::floor(cwnd_), cfg_.advertised_window));
}

bool TcpSender::window_limited() const {
  // "Using the window" = the in-flight data is within one packet of it.
  return static_cast<double>(flight()) + 1.0 >= effective_window();
}

void TcpSender::standard_growth() {
  if (cfg_.cwnd_validation && !window_limited()) return;
  if (cwnd_ < ssthresh_) {
    set_cwnd(cwnd_ + 1.0);  // slow start: one packet per ACK
  } else {
    set_cwnd(cwnd_ + 1.0 / cwnd_);  // congestion avoidance
  }
}

void TcpSender::try_send() {
  while (snd_nxt_ < app_total_ &&
         static_cast<double>(flight()) < effective_window()) {
    send_seq(snd_nxt_);
    ++snd_nxt_;
  }
}

void TcpSender::send_seq(std::int64_t seq) {
  Packet p;
  p.uid = next_uid();
  p.type = PacketType::kData;
  p.size_bytes = cfg_.payload_bytes + kHeaderBytes;
  p.seq = seq;
  p.ts_echo = sim_.now();
  p.retransmit = seq < snd_max_;
  p.ecn_capable = cfg_.ecn;
  snd_max_ = std::max(snd_max_, seq + 1);
  sent_at_[seq] = sim_.now();

  ++stats_.data_pkts_sent;
  if (p.retransmit) ++stats_.retransmits;
  transmit(p);
  if (!rto_timer_.pending()) rto_timer_.schedule(estimator_.rto());
  notify(TcpSenderEvent::Kind::kSend, seq, p.retransmit);
}

void TcpSender::retransmit_una() { send_seq(snd_una_); }

void TcpSender::send_segment(std::int64_t seq) { send_seq(seq); }

bool TcpSender::send_new_segment() {
  if (snd_nxt_ >= app_total_) return false;
  send_seq(snd_nxt_);
  ++snd_nxt_;
  return true;
}

void TcpSender::restart_rto_timer() { rto_timer_.schedule(estimator_.rto()); }

Time TcpSender::sent_at(std::int64_t seq) const {
  auto it = sent_at_.find(seq);
  return it == sent_at_.end() ? kTimeNever : it->second;
}

void TcpSender::on_ecn_echo() {
  // Default (RFC 2481 / Reno-style): a congestion echo is treated like a
  // fast-retransmit loss signal, except nothing needs retransmitting.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  set_cwnd(ssthresh_);
  ++stats_.ecn_reductions;
}

void TcpSender::handle(const Packet& p) {
  if (p.type != PacketType::kAck) return;

  on_ack_info(p);

  if (p.ece) {
    ++stats_.ecn_echoes;
    // At most one window reduction per round-trip (like one loss event).
    const Time guard = estimator_.has_sample() ? estimator_.srtt() : 0.1;
    if (last_ecn_cut_ < 0.0 || sim_.now() - last_ecn_cut_ > guard) {
      last_ecn_cut_ = sim_.now();
      on_ecn_echo();
      notify(TcpSenderEvent::Kind::kEcnEcho, p.ack, false);
    }
  }

  if (p.ack > snd_una_) {
    const std::int64_t acked = p.ack - snd_una_;
    for (std::int64_t s = snd_una_; s < p.ack; ++s) sent_at_.erase(s);
    snd_una_ = p.ack;
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    ++stats_.new_acks;
    dupacks_ = 0;

    // Karn's rule: only segments never retransmitted yield RTT samples.
    if (!p.retransmit) {
      const Time rtt = sim_.now() - p.ts_echo;
      estimator_.sample(rtt);
      ++stats_.rtt_samples;
      on_rtt_sample(rtt);
    }
    estimator_.reset_backoff();

    on_new_ack(acked, p.ack);

    if (snd_una_ == snd_nxt_ && backlog() == 0) {
      rto_timer_.cancel();
    } else {
      restart_rto_timer();
    }
    notify(TcpSenderEvent::Kind::kNewAck, p.ack, false);
    try_send();
    return;
  }

  if (p.ack == snd_una_ && flight() > 0) {
    ++dupacks_;
    ++stats_.dupacks;
    if (cfg_.limited_transmit && dupacks_ <= 2 &&
        static_cast<double>(flight()) <
            std::min(cwnd_, cfg_.advertised_window) + 2.0) {
      send_new_segment();  // RFC 3042: keep the dup-ACK clock alive
    }
    on_dup_ack();
    notify(TcpSenderEvent::Kind::kDupAck, snd_una_, false);
    try_send();  // recovery inflation may have opened the window
  }
}

void TcpSender::on_rto() {
  ++stats_.timeouts;
  estimator_.backoff();
  // Multiplicative decrease of the threshold, computed before the rewind.
  ssthresh_ = std::max(static_cast<double>(flight()) / 2.0, 2.0);
  dupacks_ = 0;
  snd_nxt_ = snd_una_;  // go-back-N recovery from the hole
  on_timeout_window();
  rto_timer_.schedule(estimator_.rto());
  notify(TcpSenderEvent::Kind::kRto, snd_una_, false);
  try_send();
}

}  // namespace burst
