#include "src/transport/tcp_reno.hpp"

#include <algorithm>

namespace burst {

void TcpReno::on_new_ack(std::int64_t /*acked*/, std::int64_t /*ack_seq*/) {
  if (in_recovery_) {
    // Deflate: recovery ends on the first ACK for new data. (Classic Reno:
    // a partial ACK after multiple drops in one window usually stalls into
    // a timeout, which is part of the behavior the paper measures.)
    in_recovery_ = false;
    set_cwnd(ssthresh());
    return;
  }
  standard_growth();
}

void TcpReno::on_dup_ack() {
  if (in_recovery_) {
    set_cwnd(cwnd() + 1.0);  // window inflation per extra dup ACK
    return;
  }
  if (dupacks() != config().dupack_threshold) return;
  ++stats_.fast_retransmits;
  set_ssthresh(std::max(static_cast<double>(flight()) / 2.0, 2.0));
  retransmit_una();
  in_recovery_ = true;
  set_cwnd(ssthresh() + static_cast<double>(config().dupack_threshold));
  restart_rto_timer();
}

void TcpReno::on_timeout_window() {
  in_recovery_ = false;
  set_cwnd(1.0);  // slow start from scratch
}

}  // namespace burst
