// TCP receiver: cumulative ACKs, out-of-order buffering, optional delayed
// acknowledgments (ACK every second segment or after 100 ms, whichever
// comes first — the "Reno/DelayAck" curve in the paper's Fig 2).
//
// An out-of-order or duplicate segment always triggers an immediate ACK,
// which is what produces the duplicate-ACK signal the senders rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <set>

#include "src/obs/trace.hpp"
#include "src/sim/timer.hpp"
#include "src/stats/running_stats.hpp"
#include "src/transport/agent.hpp"
#include "src/transport/flow_arena.hpp"

namespace burst {

struct TcpSinkConfig {
  bool delayed_ack = false;
  Time delack_interval = 0.1;  // standard 100 ms delayed-ACK cap
  bool sack = false;           // attach SACK blocks to (dup) ACKs
};

struct TcpSinkStats {
  std::uint64_t data_arrivals = 0;    // every data packet that got here
  std::uint64_t unique_packets = 0;   // first-time sequences (throughput)
  std::uint64_t duplicate_packets = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t dup_acks_sent = 0;
};

class TcpSink : public Agent {
 public:
  /// @p arena: shared struct-of-arrays storage for the receiver cursors
  /// (huge-N mode); null self-hosts a one-slot arena.
  TcpSink(Simulator& sim, Node& node, FlowId flow, NodeId peer,
          TcpSinkConfig cfg = {}, FlowArena* arena = nullptr);

  void app_send(int) override {}  // sinks do not send data
  void handle(const Packet& p) override;

  /// Next in-order sequence expected (== packets delivered in order).
  std::int64_t rcv_nxt() const { return arena_->rcv_nxt(slot_); }
  const TcpSinkStats& stats() const { return stats_; }

  /// One-way delay of arriving data packets (transmission timestamp to
  /// arrival; includes queueing at the gateway).
  const RunningStats& delay() const { return delay_; }

  /// Attaches a structured-trace sink; every ACK sent is emitted as a
  /// kSinkAck record (one null check per ACK when unset).
  void set_trace(TraceSink* sink, std::uint8_t site = 0) {
    trace_ = sink;
    trace_site_ = site;
  }

 private:
  void send_ack();
  void arm_or_flush_delack(const Packet& p);
  /// Sends an immediate ACK triggered by @p p, folding in (not
  /// clobbering) the echo state of a pending delayed ACK.
  void flush_immediate(const Packet& p);

  TcpSinkConfig cfg_;
  // Receiver cursors + echo state (timestamp, Karn retransmit flag, ECN
  // congestion-experienced mark) live in the arena; shared in huge-N
  // mode, self-hosted single slot otherwise.
  std::unique_ptr<FlowArena> own_arena_;
  FlowArena* arena_;
  std::uint32_t slot_;
  Timer delack_timer_;
  std::set<std::int64_t> ooo_;  // buffered out-of-order sequences

  TcpSinkStats stats_;
  RunningStats delay_;
  TraceSink* trace_ = nullptr;
  std::uint8_t trace_site_ = 0;
};

}  // namespace burst
