#include "src/transport/flow_arena.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace burst {

namespace {

std::size_t g_default_budget_bytes = 0;  // 0 = unlimited

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void FlowArena::set_default_budget_bytes(std::size_t bytes) {
  g_default_budget_bytes = bytes;
}

std::size_t FlowArena::default_budget_bytes() {
  return g_default_budget_bytes;
}

std::size_t FlowArena::ring_capacity_for(double advertised_window) {
  // Live span is bounded by the advertised window plus limited-transmit
  // slack in every window-limited phase; +4 keeps the common case
  // collision-free, and next_pow2 keeps masking cheap.
  const auto span =
      static_cast<std::size_t>(advertised_window < 1.0
                                   ? 1.0
                                   : advertised_window) + 4;
  return next_pow2(span < 8 ? 8 : span);
}

std::size_t FlowArena::sender_bytes(std::size_t ring_capacity) {
  return 2 * sizeof(double)            // cwnd, ssthresh
         + 4 * sizeof(std::int64_t)    // snd_una/nxt/max, app_total
         + sizeof(int)                 // dupacks
         + sizeof(Time)                // last_ecn_cut
         + sizeof(RtoState)            // srtt/rttvar/backoff
         + ring_capacity * (sizeof(std::int64_t) + sizeof(Time));
}

std::size_t FlowArena::sink_bytes() {
  return sizeof(std::int64_t) + sizeof(Time) + 3 * sizeof(std::uint8_t);
}

void FlowArena::reserve(std::size_t senders, std::size_t sinks,
                        std::size_t ring_capacity) {
  assert(reserved_senders_ == 0 && reserved_sinks_ == 0 &&
         "FlowArena::reserve is one-shot (slots hand out stable pointers)");
  assert(ring_capacity > 0 && (ring_capacity & (ring_capacity - 1)) == 0 &&
         "ring capacity must be a power of two");
  const std::size_t projected =
      senders * sender_bytes(ring_capacity) + sinks * sink_bytes();
  if (budget_bytes_ != 0 && projected > budget_bytes_) {
    throw std::length_error(
        "FlowArena: reserving " + std::to_string(senders) + " senders + " +
        std::to_string(sinks) + " sinks needs " + std::to_string(projected) +
        " bytes, over the " + std::to_string(budget_bytes_) +
        "-byte budget");
  }
  reserved_senders_ = senders;
  reserved_sinks_ = sinks;
  ring_cap_ = ring_capacity;
  bytes_reserved_ = projected;

  cwnd_.reserve(senders);
  ssthresh_.reserve(senders);
  snd_una_.reserve(senders);
  snd_nxt_.reserve(senders);
  snd_max_.reserve(senders);
  app_total_.reserve(senders);
  dupacks_.reserve(senders);
  last_ecn_cut_.reserve(senders);
  rto_.reserve(senders);
  ring_seq_.reserve(senders * ring_capacity);
  ring_time_.reserve(senders * ring_capacity);

  rcv_nxt_.reserve(sinks);
  echo_ts_.reserve(sinks);
  echo_rexmit_.reserve(sinks);
  echo_ece_.reserve(sinks);
  delack_pending_.reserve(sinks);
}

std::uint32_t FlowArena::allocate_sender(double initial_cwnd,
                                         double initial_ssthresh) {
  if (sender_count_ >= reserved_senders_) {
    throw std::length_error(
        "FlowArena: sender slots exhausted (reserve() before allocating; "
        "growth would invalidate RtoState pointers)");
  }
  const auto s = static_cast<std::uint32_t>(sender_count_++);
  cwnd_.push_back(initial_cwnd);
  ssthresh_.push_back(initial_ssthresh);
  snd_una_.push_back(0);
  snd_nxt_.push_back(0);
  snd_max_.push_back(0);
  app_total_.push_back(0);
  dupacks_.push_back(0);
  last_ecn_cut_.push_back(-1.0);
  rto_.push_back(RtoState{});
  ring_seq_.resize(ring_seq_.size() + ring_cap_, kRingEmpty);
  ring_time_.resize(ring_time_.size() + ring_cap_, 0.0);
  return s;
}

std::uint32_t FlowArena::allocate_sink() {
  if (sink_count_ >= reserved_sinks_) {
    throw std::length_error(
        "FlowArena: sink slots exhausted (reserve() before allocating)");
  }
  const auto s = static_cast<std::uint32_t>(sink_count_++);
  rcv_nxt_.push_back(0);
  echo_ts_.push_back(0.0);
  echo_rexmit_.push_back(0);
  echo_ece_.push_back(0);
  delack_pending_.push_back(0);
  return s;
}

}  // namespace burst
