#include "src/transport/udp.hpp"

namespace burst {

void UdpSender::app_send(int packets) {
  for (int i = 0; i < packets; ++i) {
    Packet p;
    p.uid = next_uid();
    p.type = PacketType::kData;
    p.size_bytes = payload_bytes_ + kHeaderBytes;
    p.seq = next_seq_++;
    p.ts_echo = sim_.now();
    transmit(p);
    ++packets_sent_;
  }
}

void UdpSender::handle(const Packet&) {}

void UdpSink::handle(const Packet& p) {
  if (p.type != PacketType::kData) return;
  ++packets_received_;
  bytes_received_ += static_cast<std::uint64_t>(p.size_bytes);
  delay_.add(sim_.now() - p.ts_echo);
}

}  // namespace burst
