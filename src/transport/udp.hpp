// UDP: the transparent transport. The sender transmits each application
// packet immediately; the sink counts deliveries. Used as the paper's
// control case showing that un-modulated aggregate Poisson traffic stays
// smooth (Fig 2's "UDP" curve).
#pragma once

#include <cstdint>

#include "src/stats/running_stats.hpp"
#include "src/transport/agent.hpp"

namespace burst {

class UdpSender : public Agent {
 public:
  UdpSender(Simulator& sim, Node& node, FlowId flow, NodeId peer,
            int payload_bytes = kDefaultPayloadBytes)
      : Agent(sim, node, flow, peer), payload_bytes_(payload_bytes) {}

  void app_send(int packets) override;
  void handle(const Packet& p) override;  // UDP senders ignore input

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  int payload_bytes_;
  std::uint64_t packets_sent_ = 0;
  std::int64_t next_seq_ = 0;
};

class UdpSink : public Agent {
 public:
  UdpSink(Simulator& sim, Node& node, FlowId flow, NodeId peer)
      : Agent(sim, node, flow, peer) {}

  void app_send(int) override {}  // sinks do not send
  void handle(const Packet& p) override;

  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  /// One-way delay of arriving packets.
  const RunningStats& delay() const { return delay_; }

 private:
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
  RunningStats delay_;
};

}  // namespace burst
