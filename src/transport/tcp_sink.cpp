#include "src/transport/tcp_sink.hpp"

namespace burst {

TcpSink::TcpSink(Simulator& sim, Node& node, FlowId flow, NodeId peer,
                 TcpSinkConfig cfg)
    : Agent(sim, node, flow, peer),
      cfg_(cfg),
      delack_timer_(
          sim,
          [this] {
            delack_pending_ = false;
            send_ack();
          },
          // Lazy mode: armed/cancelled once per held segment, so cancels
          // (the common case — the second segment flushes the ACK) are
          // free instead of a heap cancel each; the armed event parks in
          // the timing wheel rather than the packet-event heap.
          Timer::Mode::kLazy) {}

void TcpSink::send_ack() {
  Packet a;
  a.uid = next_uid();
  a.type = PacketType::kAck;
  a.size_bytes = kAckBytes;
  a.ack = rcv_nxt_;
  a.ts_echo = echo_ts_;
  a.retransmit = echo_rexmit_;
  a.ece = echo_ece_;
  echo_ece_ = false;  // one echo per mark; the sender rate-limits cuts
  if (cfg_.sack && !ooo_.empty()) {
    // Report up to kMaxSackBlocks contiguous runs of buffered data.
    std::int64_t run_lo = -1, prev = -2;
    auto flush = [&a](std::int64_t lo, std::int64_t hi) {
      if (a.sack_count < Packet::kMaxSackBlocks) {
        a.sack[a.sack_count++] = {lo, hi};
      }
    };
    for (std::int64_t s : ooo_) {
      if (s != prev + 1) {
        if (run_lo >= 0) flush(run_lo, prev + 1);
        run_lo = s;
      }
      prev = s;
    }
    if (run_lo >= 0) flush(run_lo, prev + 1);
  }
  ++stats_.acks_sent;
  if (trace_) {
    TraceRecord r;
    r.time = sim_.now();
    r.type = TraceEventType::kSinkAck;
    r.site = trace_site_;
    r.flow = flow();
    r.seq = a.ack;
    r.value = static_cast<double>(ooo_.size());  // holes above the ack
    r.detail = kTraceDetailAck;
    trace_->emit(r);
  }
  transmit(a);
}

void TcpSink::arm_or_flush_delack(const Packet& p) {
  if (!cfg_.delayed_ack) {
    echo_ts_ = p.ts_echo;
    echo_rexmit_ = p.retransmit;
    send_ack();
    return;
  }
  if (delack_pending_) {
    // Second in-order segment: ACK now, covering both.
    delack_timer_.cancel();
    delack_pending_ = false;
    // Keep the *older* echo timestamp (RFC 7323 rule for delayed ACKs);
    // the retransmit flag must taint the sample if either segment was a
    // retransmission.
    echo_rexmit_ = echo_rexmit_ || p.retransmit;
    send_ack();
  } else {
    delack_pending_ = true;
    echo_ts_ = p.ts_echo;
    echo_rexmit_ = p.retransmit;
    delack_timer_.schedule(cfg_.delack_interval);
  }
}

void TcpSink::handle(const Packet& p) {
  if (p.type != PacketType::kData) return;
  ++stats_.data_arrivals;
  delay_.add(sim_.now() - p.ts_echo);
  if (p.ecn_marked) echo_ece_ = true;  // latch until the next ACK goes out

  if (p.seq == rcv_nxt_) {
    ++stats_.unique_packets;
    ++rcv_nxt_;
    // Drain any buffered segments this arrival made contiguous.
    auto it = ooo_.begin();
    while (it != ooo_.end() && *it == rcv_nxt_) {
      ++rcv_nxt_;
      it = ooo_.erase(it);
    }
    if (!ooo_.empty()) {
      // Still a hole above us: ACK immediately (fast-retransmit support).
      flush_immediate(p);
    } else {
      arm_or_flush_delack(p);
    }
    return;
  }

  if (p.seq > rcv_nxt_) {
    ++stats_.out_of_order;
    if (ooo_.insert(p.seq).second) ++stats_.unique_packets;
    else ++stats_.duplicate_packets;
  } else {
    ++stats_.duplicate_packets;
  }
  // Out-of-order or duplicate: immediate (duplicate) ACK.
  ++stats_.dup_acks_sent;
  flush_immediate(p);
}

void TcpSink::flush_immediate(const Packet& p) {
  if (delack_pending_) {
    // The ACK going out also covers the segment whose ACK was being
    // delayed, so the RFC 7323 delayed-ACK rule applies: echo the *older*
    // timestamp (the held one), not @p p's — overwriting it with the new
    // arrival's timestamp yields optimistically small RTT samples. Karn's
    // taint is the conservative OR of both segments' retransmit flags.
    delack_timer_.cancel();
    delack_pending_ = false;
    echo_rexmit_ = echo_rexmit_ || p.retransmit;
  } else {
    echo_ts_ = p.ts_echo;
    echo_rexmit_ = p.retransmit;
  }
  send_ack();
}

}  // namespace burst
