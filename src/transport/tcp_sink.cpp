#include "src/transport/tcp_sink.hpp"

namespace burst {

namespace {

std::unique_ptr<FlowArena> make_own_sink_arena() {
  auto arena = std::make_unique<FlowArena>();
  arena->set_budget_bytes(0);  // a single slot never breaks a budget
  arena->reserve(0, 1, 8);
  return arena;
}

}  // namespace

TcpSink::TcpSink(Simulator& sim, Node& node, FlowId flow, NodeId peer,
                 TcpSinkConfig cfg, FlowArena* arena)
    : Agent(sim, node, flow, peer),
      cfg_(cfg),
      own_arena_(arena != nullptr ? nullptr : make_own_sink_arena()),
      arena_(arena != nullptr ? arena : own_arena_.get()),
      slot_(arena_->allocate_sink()),
      delack_timer_(
          sim,
          [this] {
            arena_->set_delack_pending(slot_, false);
            send_ack();
          },
          // Lazy mode: armed/cancelled once per held segment, so cancels
          // (the common case — the second segment flushes the ACK) are
          // free instead of a heap cancel each; the armed event parks in
          // the timing wheel rather than the packet-event heap.
          Timer::Mode::kLazy) {}

void TcpSink::send_ack() {
  Packet a;
  a.uid = next_uid();
  a.type = PacketType::kAck;
  a.size_bytes = kAckBytes;
  a.ack = rcv_nxt();
  a.ts_echo = arena_->echo_ts(slot_);
  a.retransmit = arena_->echo_rexmit(slot_);
  a.ece = arena_->echo_ece(slot_);
  // One echo per mark; the sender rate-limits cuts.
  arena_->set_echo_ece(slot_, false);
  if (cfg_.sack && !ooo_.empty()) {
    // Report up to kMaxSackBlocks contiguous runs of buffered data.
    std::int64_t run_lo = -1, prev = -2;
    auto flush = [&a](std::int64_t lo, std::int64_t hi) {
      if (a.sack_count < Packet::kMaxSackBlocks) {
        a.sack[a.sack_count++] = {lo, hi};
      }
    };
    for (std::int64_t s : ooo_) {
      if (s != prev + 1) {
        if (run_lo >= 0) flush(run_lo, prev + 1);
        run_lo = s;
      }
      prev = s;
    }
    if (run_lo >= 0) flush(run_lo, prev + 1);
  }
  ++stats_.acks_sent;
  if (trace_) {
    TraceRecord r;
    r.time = sim_.now();
    r.type = TraceEventType::kSinkAck;
    r.site = trace_site_;
    r.flow = flow();
    r.seq = a.ack;
    r.value = static_cast<double>(ooo_.size());  // holes above the ack
    r.detail = kTraceDetailAck;
    trace_->emit(r);
  }
  transmit(a);
}

void TcpSink::arm_or_flush_delack(const Packet& p) {
  if (!cfg_.delayed_ack) {
    arena_->echo_ts(slot_) = p.ts_echo;
    arena_->set_echo_rexmit(slot_, p.retransmit);
    send_ack();
    return;
  }
  if (arena_->delack_pending(slot_)) {
    // Second in-order segment: ACK now, covering both.
    delack_timer_.cancel();
    arena_->set_delack_pending(slot_, false);
    // Keep the *older* echo timestamp (RFC 7323 rule for delayed ACKs);
    // the retransmit flag must taint the sample if either segment was a
    // retransmission.
    arena_->set_echo_rexmit(slot_,
                            arena_->echo_rexmit(slot_) || p.retransmit);
    send_ack();
  } else {
    arena_->set_delack_pending(slot_, true);
    arena_->echo_ts(slot_) = p.ts_echo;
    arena_->set_echo_rexmit(slot_, p.retransmit);
    delack_timer_.schedule(cfg_.delack_interval);
  }
}

void TcpSink::handle(const Packet& p) {
  if (p.type != PacketType::kData) return;
  ++stats_.data_arrivals;
  delay_.add(sim_.now() - p.ts_echo);
  if (p.ecn_marked) {
    arena_->set_echo_ece(slot_, true);  // latch until the next ACK goes out
  }

  if (p.seq == rcv_nxt()) {
    ++stats_.unique_packets;
    ++arena_->rcv_nxt(slot_);
    // Drain any buffered segments this arrival made contiguous.
    auto it = ooo_.begin();
    while (it != ooo_.end() && *it == rcv_nxt()) {
      ++arena_->rcv_nxt(slot_);
      it = ooo_.erase(it);
    }
    if (!ooo_.empty()) {
      // Still a hole above us: ACK immediately (fast-retransmit support).
      flush_immediate(p);
    } else {
      arm_or_flush_delack(p);
    }
    return;
  }

  if (p.seq > rcv_nxt()) {
    ++stats_.out_of_order;
    if (ooo_.insert(p.seq).second) ++stats_.unique_packets;
    else ++stats_.duplicate_packets;
  } else {
    ++stats_.duplicate_packets;
  }
  // Out-of-order or duplicate: immediate (duplicate) ACK.
  ++stats_.dup_acks_sent;
  flush_immediate(p);
}

void TcpSink::flush_immediate(const Packet& p) {
  if (arena_->delack_pending(slot_)) {
    // The ACK going out also covers the segment whose ACK was being
    // delayed, so the RFC 7323 delayed-ACK rule applies: echo the *older*
    // timestamp (the held one), not @p p's — overwriting it with the new
    // arrival's timestamp yields optimistically small RTT samples. Karn's
    // taint is the conservative OR of both segments' retransmit flags.
    delack_timer_.cancel();
    arena_->set_delack_pending(slot_, false);
    arena_->set_echo_rexmit(slot_,
                            arena_->echo_rexmit(slot_) || p.retransmit);
  } else {
    arena_->echo_ts(slot_) = p.ts_echo;
    arena_->set_echo_rexmit(slot_, p.retransmit);
  }
  send_ack();
}

}  // namespace burst
