// Structured event tracing: a per-simulation TraceSink that components
// feed typed records into through raw-pointer taps.
//
// Design constraints (DESIGN.md "Observability"):
//  * Zero cost when off. Every tap is a single null-pointer check on a
//    member the component already has in cache; no virtual dispatch, no
//    std::function, no allocation on the untraced path. The bit-identity
//    pins (tests/result_identity_test.cpp) and the packet-path CI gate
//    hold with tracing wired in because the disabled branch is one
//    predictable compare.
//  * No feedback into the simulation. Emitting a record never schedules
//    an event, never consumes RNG, never mutates component state — a
//    traced run's ExperimentResult is bit-identical to an untraced one
//    (tests/obs_trace_test.cpp proves it differentially).
//  * Bounded memory. Records land in a fixed-capacity ring; when a run
//    outgrows it, the oldest records are overwritten and counted, never
//    reallocated mid-run.
//
// Exports: JSONL (one record per line, greppable) and Chrome trace-event
// JSON (the `{"traceEvents": [...]}` dialect Perfetto and chrome://tracing
// load), with one track per network site and one per flow, counter tracks
// for cwnd/ssthresh and instants for drops/retransmits/state changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.hpp"

namespace burst {

enum class TraceEventType : std::uint8_t {
  kSourceEmit = 0,   // application handed a packet to the transport
  kQueueEnqueue,     // queue accepted a packet (value = occupancy after)
  kQueueDequeue,     // transmitter pulled a packet (value = occupancy after)
  kQueueDrop,        // queue rejected/displaced a packet (value = occupancy)
  kLinkDeliver,      // packet reached the far end of a link (value = bytes)
  kSinkAck,          // receiver emitted an ACK (seq = cumulative ack)
  kCwndChange,       // value = new cwnd, aux = ssthresh
  kSsthreshChange,   // value = new ssthresh, aux = cwnd
  kCcStateChange,    // detail = state string id, value = cwnd
  kFastRetransmit,   // seq = hole retransmitted, value = cwnd after
  kRto,              // retransmission timeout fired, value = cwnd after
  kVegasDiff,        // per-RTT decision: value = diff, aux = cwnd after
  kCongestionEvent,  // FlowMonitor drop cluster closed: value = flows hit,
                     // aux = event duration, seq = drops in event
};

/// Stable lowercase token for exports ("queue_drop", "cwnd_change", ...).
std::string_view to_string(TraceEventType t);

/// One trace record: a compact POD (56 bytes) so a multi-million-event
/// run rings through cheaply. Field meaning depends on `type` (see the
/// enum); `site` indexes TraceSink's site registry, `detail` is a small
/// type-specific discriminant (packet kind, drop reason, state id).
/// `tie` and `lp` are stamped by the sink itself (see TraceSink::emit):
/// they never appear in exports, they exist so per-LP rings merge back
/// into the sequential emission order (DESIGN.md §14).
struct TraceRecord {
  Time time = 0.0;
  double value = 0.0;
  double aux = 0.0;
  Time tie = 0.0;  // executing event's scheduler tie-break instant
  std::int64_t seq = -1;
  std::int32_t flow = -1;
  TraceEventType type = TraceEventType::kSourceEmit;
  std::uint8_t site = 0;
  std::uint16_t detail = 0;
  std::uint8_t lp = 0;  // logical process that emitted the record
};

/// `detail` bit layout for packet-lifecycle records (queue/link/source):
/// bit 0 = packet kind (0 data, 1 ack); bits 1-2 = drop reason for
/// kQueueDrop (0 forced, 1 early/RED, 2 displaced).
inline constexpr std::uint16_t kTraceDetailAck = 1;
inline constexpr std::uint16_t kTraceDropForced = 0 << 1;
inline constexpr std::uint16_t kTraceDropEarly = 1 << 1;
inline constexpr std::uint16_t kTraceDropDisplaced = 2 << 1;

class TraceSink {
 public:
  /// @p capacity caps the ring (records, not bytes). The default holds a
  /// full paper-scale run (N=60, 20 s is ~2-3 M packet-lifecycle records).
  explicit TraceSink(std::size_t capacity = std::size_t{1} << 22);

  /// Registers (or finds) a named emission site — "queue:gateway",
  /// "link:bottleneck" — and returns its id for TraceRecord::site.
  std::uint8_t register_site(std::string_view name);

  /// Interns a congestion-control state name ("slow-start", "vegas-ca")
  /// and returns its id for TraceRecord::detail on kCcStateChange.
  std::uint16_t intern_state(std::string_view name);

  /// Binds the stamp every emitted record carries: @p tie_clock is the
  /// owning Simulator's executing-event tie-break instant (stable address,
  /// see Simulator::tie_clock) and @p lp the logical process this sink
  /// records for. Unset, records are stamped tie = their own time and
  /// lp = 0, which is exact for a single-LP run.
  void set_stamp(const Time* tie_clock, std::uint8_t lp) {
    tie_clock_ = tie_clock;
    lp_ = lp;
  }

  std::uint8_t lp() const { return lp_; }

  /// Appends a record; overwrites the oldest when the ring is full.
  void emit(const TraceRecord& r) {
    TraceRecord& slot = ring_[head_];
    slot = r;
    slot.tie = tie_clock_ != nullptr ? *tie_clock_ : r.time;
    slot.lp = lp_;
    if (++head_ == ring_.size()) head_ = 0;
    ++emitted_;
  }

  /// Appends a lazily-closed aggregate (a record emitted AFTER its logical
  /// timestamp, like FlowMonitor's congestion events). Stamped with
  /// tie = kTimeNever so merge_from() sorts it after every same-instant
  /// live record — exactly where the sequential engine's late emission
  /// plus stable time sort lands it.
  void emit_aggregate(const TraceRecord& r) {
    TraceRecord& slot = ring_[head_];
    slot = r;
    slot.tie = kTimeNever;
    slot.lp = lp_;
    if (++head_ == ring_.size()) head_ = 0;
    ++emitted_;
  }

  /// Records ever emitted (including any overwritten ones).
  std::uint64_t emitted() const { return emitted_; }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const {
    return emitted_ > ring_.size() ? emitted_ - ring_.size() : 0;
  }
  /// Records currently held.
  std::size_t size() const {
    return emitted_ < ring_.size() ? static_cast<std::size_t>(emitted_)
                                   : ring_.size();
  }
  /// Ring capacity in records (what the constructor reserved).
  std::size_t capacity() const { return ring_.size(); }

  const std::vector<std::string>& sites() const { return sites_; }
  const std::vector<std::string>& states() const { return states_; }

  /// The held records in nondecreasing time order. Components emit in
  /// event-execution order, which is already time order except for
  /// lazily-closed aggregates (FlowMonitor's final congestion event), so
  /// this is a near-no-op stable sort.
  std::vector<TraceRecord> ordered() const;

  /// Deterministic multi-LP merge: appends every part's held records into
  /// this sink in (time, tie) order — the same scheduler-key discipline
  /// the parallel runtime's merge_inbound uses — remapping site and
  /// CC-state ids by NAME into this sink's registries (each part interns
  /// independently). Within an LP, same-instant emissions already pop in
  /// nondecreasing tie order, and cross-LP deliveries replay the
  /// producer's tie (Simulator::schedule_at_as_of), so the merged order
  /// reproduces the sequential engine's emission order and the exports
  /// are byte-identical to a 1-LP run (tests/trace_merge_test.cpp).
  /// Call once, on a sink that has not recorded; parts stay untouched.
  void merge_from(const std::vector<const TraceSink*>& parts);

  /// One JSON object per line; schema in scripts/trace_event.schema.json.
  bool write_jsonl(std::ostream& os) const;

  /// Chrome trace-event JSON ("ph":"i" instants, "ph":"C" counters, ts in
  /// microseconds) loadable by Perfetto / chrome://tracing.
  bool write_chrome_trace(std::ostream& os) const;

 private:
  /// The held records in emission order (ring unrolled, no sort).
  std::vector<TraceRecord> unrolled() const;

  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;
  std::uint64_t emitted_ = 0;
  const Time* tie_clock_ = nullptr;
  std::uint8_t lp_ = 0;
  std::vector<std::string> sites_;
  std::vector<std::string> states_;
};

}  // namespace burst
