#include "src/obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace burst {

namespace {

// max_digits10-precision %g: round-trips any finite double exactly and,
// unlike shortest-round-trip printing, is deterministic across platforms
// — the JSONL export is golden-tested byte for byte.
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
}

constexpr double kMicrosPerSec = 1e6;

}  // namespace

std::string_view to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kSourceEmit: return "source_emit";
    case TraceEventType::kQueueEnqueue: return "queue_enqueue";
    case TraceEventType::kQueueDequeue: return "queue_dequeue";
    case TraceEventType::kQueueDrop: return "queue_drop";
    case TraceEventType::kLinkDeliver: return "link_deliver";
    case TraceEventType::kSinkAck: return "sink_ack";
    case TraceEventType::kCwndChange: return "cwnd_change";
    case TraceEventType::kSsthreshChange: return "ssthresh_change";
    case TraceEventType::kCcStateChange: return "cc_state_change";
    case TraceEventType::kFastRetransmit: return "fast_retransmit";
    case TraceEventType::kRto: return "rto";
    case TraceEventType::kVegasDiff: return "vegas_diff";
    case TraceEventType::kCongestionEvent: return "congestion_event";
  }
  return "unknown";
}

TraceSink::TraceSink(std::size_t capacity) {
  ring_.resize(capacity == 0 ? 1 : capacity);
  // Site 0 is the catch-all for records emitted before any registration.
  sites_.emplace_back("unknown");
}

std::uint8_t TraceSink::register_site(std::string_view name) {
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == name) return static_cast<std::uint8_t>(i);
  }
  assert(sites_.size() < 256 && "TraceRecord::site is a uint8 index");
  sites_.emplace_back(name);
  return static_cast<std::uint8_t>(sites_.size() - 1);
}

std::uint16_t TraceSink::intern_state(std::string_view name) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == name) return static_cast<std::uint16_t>(i);
  }
  states_.emplace_back(name);
  return static_cast<std::uint16_t>(states_.size() - 1);
}

std::vector<TraceRecord> TraceSink::unrolled() const {
  std::vector<TraceRecord> out;
  out.reserve(size());
  if (emitted_ >= ring_.size()) {
    // Wrapped: oldest surviving record sits at head_.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::vector<TraceRecord> TraceSink::ordered() const {
  std::vector<TraceRecord> out = unrolled();
  // Emission order is execution order, which is time order except for
  // lazily-closed aggregate records; stable sort preserves same-instant
  // emission order (the scheduler's deterministic tie-break).
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.time < b.time;
                   });
  return out;
}

void TraceSink::merge_from(const std::vector<const TraceSink*>& parts) {
  std::vector<TraceRecord> all;
  {
    std::size_t total = 0;
    for (const TraceSink* p : parts) total += p->size();
    all.reserve(total);
  }
  // Remap every part's site/state ids by name. Processing parts in LP
  // order keeps this sink's registries equal to the sequential run's when
  // LP 0 interns everything (the dumbbell split), and deterministic
  // regardless.
  for (const TraceSink* p : parts) {
    std::vector<std::uint8_t> site_map(p->sites_.size(), 0);
    for (std::size_t i = 0; i < p->sites_.size(); ++i) {
      site_map[i] = register_site(p->sites_[i]);
    }
    std::vector<std::uint16_t> state_map(p->states_.size(), 0);
    for (std::size_t i = 0; i < p->states_.size(); ++i) {
      state_map[i] = intern_state(p->states_[i]);
    }
    for (const TraceRecord& r : p->unrolled()) {
      TraceRecord m = r;
      m.site = r.site < site_map.size() ? site_map[r.site] : 0;
      if (m.type == TraceEventType::kCcStateChange &&
          r.detail < state_map.size()) {
        m.detail = state_map[r.detail];
      }
      all.push_back(m);
    }
  }
  // The scheduler key: execution time, then the executing event's
  // tie-break instant (replayed across LPs by schedule_at_as_of). Stable
  // over the LP-concatenated input, so within-LP emission order breaks
  // any residual tie exactly as the per-LP schedulers did.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.tie < b.tie;
                   });
  for (const TraceRecord& r : all) {
    // Already stamped by the originating sink; bypass the stamping emit.
    ring_[head_] = r;
    if (++head_ == ring_.size()) head_ = 0;
    ++emitted_;
  }
}

bool TraceSink::write_jsonl(std::ostream& os) const {
  std::string line;
  for (const TraceRecord& r : ordered()) {
    line.clear();
    line += "{\"t\":";
    append_double(line, r.time);
    line += ",\"type\":\"";
    line += to_string(r.type);
    line += "\",\"site\":\"";
    append_escaped(line, sites_[r.site < sites_.size() ? r.site : 0]);
    line += "\",\"flow\":";
    append_i64(line, r.flow);
    line += ",\"seq\":";
    append_i64(line, r.seq);
    line += ",\"value\":";
    append_double(line, r.value);
    line += ",\"aux\":";
    append_double(line, r.aux);
    line += ",\"detail\":";
    append_i64(line, r.detail);
    if (r.type == TraceEventType::kCcStateChange &&
        r.detail < states_.size()) {
      line += ",\"state\":\"";
      append_escaped(line, states_[r.detail]);
      line += '"';
    }
    line += "}\n";
    os << line;
  }
  return static_cast<bool>(os);
}

bool TraceSink::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceRecord> recs = ordered();

  // Flow tracks get their own pid so Perfetto groups each flow's counter
  // and instant tracks together; network sites share pid 1.
  constexpr int kNetPid = 1;
  constexpr int kFlowPidBase = 1000;
  std::vector<bool> flow_seen;
  for (const TraceRecord& r : recs) {
    if (r.flow >= 0) {
      if (static_cast<std::size_t>(r.flow) >= flow_seen.size()) {
        flow_seen.resize(static_cast<std::size_t>(r.flow) + 1, false);
      }
      flow_seen[static_cast<std::size_t>(r.flow)] = true;
    }
  }

  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto meta = [&](const char* kind, int pid, int tid, std::string_view name) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"pid\":";
    append_i64(out, pid);
    out += ",\"tid\":";
    append_i64(out, tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, name);
    out += "\"}}";
  };
  meta("process_name", kNetPid, 0, "network");
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    meta("thread_name", kNetPid, static_cast<int>(i), sites_[i]);
  }
  for (std::size_t f = 0; f < flow_seen.size(); ++f) {
    if (!flow_seen[f]) continue;
    meta("process_name", kFlowPidBase + static_cast<int>(f), 0,
         "flow " + std::to_string(f));
    meta("thread_name", kFlowPidBase + static_cast<int>(f), 0, "events");
  }

  auto header = [&](std::string_view name, char ph, int pid, int tid,
                    Time t) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, name);
    out += "\",\"ph\":\"";
    out.push_back(ph);
    out += "\",\"ts\":";
    append_double(out, t * kMicrosPerSec);
    out += ",\"pid\":";
    append_i64(out, pid);
    out += ",\"tid\":";
    append_i64(out, tid);
  };
  auto counter1 = [&](std::string_view name, int pid, Time t,
                      std::string_view series, double v) {
    header(name, 'C', pid, 0, t);
    out += ",\"args\":{\"";
    append_escaped(out, series);
    out += "\":";
    append_double(out, v);
    out += "}}";
  };
  auto instant_begin = [&](std::string_view name, int pid, int tid, Time t) {
    header(name, 'i', pid, tid, t);
    out += ",\"s\":\"t\",\"args\":{";
  };

  for (const TraceRecord& r : recs) {
    const int site_tid = r.site < sites_.size() ? r.site : 0;
    const std::string& site = sites_[static_cast<std::size_t>(site_tid)];
    const int flow_pid = kFlowPidBase + (r.flow >= 0 ? r.flow : 0);
    switch (r.type) {
      case TraceEventType::kQueueEnqueue:
      case TraceEventType::kQueueDequeue:
        counter1("qlen " + site, kNetPid, r.time, "packets", r.value);
        break;
      case TraceEventType::kQueueDrop:
        instant_begin("drop", kNetPid, site_tid, r.time);
        out += "\"flow\":";
        append_i64(out, r.flow);
        out += ",\"seq\":";
        append_i64(out, r.seq);
        out += ",\"qlen\":";
        append_double(out, r.value);
        out += ",\"reason\":\"";
        out += (r.detail >> 1) == 1   ? "early"
               : (r.detail >> 1) == 2 ? "displaced"
                                      : "forced";
        out += "\"}}";
        break;
      case TraceEventType::kLinkDeliver:
        instant_begin("deliver", kNetPid, site_tid, r.time);
        out += "\"flow\":";
        append_i64(out, r.flow);
        out += ",\"seq\":";
        append_i64(out, r.seq);
        out += "}}";
        break;
      case TraceEventType::kSourceEmit:
        instant_begin("app_emit", flow_pid, 0, r.time);
        out += "\"n\":";
        append_i64(out, r.seq);
        out += "}}";
        break;
      case TraceEventType::kSinkAck:
        instant_begin("ack", flow_pid, 0, r.time);
        out += "\"ack\":";
        append_i64(out, r.seq);
        out += ",\"ooo\":";
        append_double(out, r.value);
        out += "}}";
        break;
      case TraceEventType::kCwndChange:
        counter1("cwnd", flow_pid, r.time, "cwnd", r.value);
        break;
      case TraceEventType::kSsthreshChange:
        counter1("ssthresh", flow_pid, r.time, "ssthresh", r.value);
        break;
      case TraceEventType::kVegasDiff:
        counter1("vegas_diff", flow_pid, r.time, "diff", r.value);
        break;
      case TraceEventType::kCcStateChange: {
        std::string name = "state: ";
        name += r.detail < states_.size() ? states_[r.detail] : "?";
        instant_begin(name, flow_pid, 0, r.time);
        out += "\"cwnd\":";
        append_double(out, r.value);
        out += "}}";
        break;
      }
      case TraceEventType::kFastRetransmit:
      case TraceEventType::kRto:
        instant_begin(r.type == TraceEventType::kRto ? "rto"
                                                     : "fast_retransmit",
                      flow_pid, 0, r.time);
        out += "\"seq\":";
        append_i64(out, r.seq);
        out += ",\"cwnd\":";
        append_double(out, r.value);
        out += "}}";
        break;
      case TraceEventType::kCongestionEvent:
        instant_begin("congestion_event", kNetPid, site_tid, r.time);
        out += "\"flows_hit\":";
        append_double(out, r.value);
        out += ",\"duration\":";
        append_double(out, r.aux);
        out += ",\"drops\":";
        append_i64(out, r.seq);
        out += "}}";
        break;
    }
    if (out.size() >= (std::size_t{1} << 20)) {
      os << out;
      out.clear();
    }
  }
  out += "\n]}\n";
  os << out;
  return static_cast<bool>(os);
}

}  // namespace burst
