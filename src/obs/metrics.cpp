#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace burst {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must ascend");
  buckets_.assign(bounds_.size() + 1, 0);
}

const MetricPoint* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricPoint& p : points) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

void MetricsRegistry::add_counter(std::string name, std::uint64_t v) {
  MetricPoint p;
  p.name = std::move(name);
  p.kind = MetricKind::kCounter;
  p.value = static_cast<double>(v);
  scalars_.push_back(std::move(p));
}

void MetricsRegistry::add_gauge(std::string name, double v) {
  MetricPoint p;
  p.name = std::move(name);
  p.kind = MetricKind::kGauge;
  p.value = v;
  scalars_.push_back(std::move(p));
}

Histogram& MetricsRegistry::histogram(std::string name,
                                      std::vector<double> bounds) {
  for (auto& [n, h] : histograms_) {
    if (n == name) {
      assert(h->bounds() == bounds && "histogram re-registered with "
                                      "different bounds");
      return *h;
    }
  }
  histograms_.emplace_back(std::move(name),
                           std::make_unique<Histogram>(std::move(bounds)));
  return *histograms_.back().second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.points = scalars_;
  for (const auto& [name, h] : histograms_) {
    MetricPoint p;
    p.name = name;
    p.kind = MetricKind::kHistogram;
    p.value = static_cast<double>(h->count());
    p.sum = h->sum();
    p.bounds = h->bounds();
    p.buckets = h->buckets();
    snap.points.push_back(std::move(p));
  }
  std::sort(snap.points.begin(), snap.points.end(),
            [](const MetricPoint& a, const MetricPoint& b) {
              return a.name < b.name;
            });
  return snap;
}

}  // namespace burst
