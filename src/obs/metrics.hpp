// Metrics registry: named counters, gauges and fixed-bucket histograms
// that components register/fill during a run, snapshotted into
// ExperimentResult and persisted by the result store (schema v3).
//
// Everything here is deterministic: values derive only from simulation
// state (never wall clocks), and snapshots are sorted by name, so two
// identical runs produce byte-identical serialized snapshots — the
// property the content-addressed result cache and the metrics
// determinism test rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace burst {

enum class MetricKind : std::uint8_t {
  kCounter = 0,  // monotonically accumulated count
  kGauge = 1,    // point-in-time or derived value
  kHistogram = 2
};

/// Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
/// overflow bucket follows. Bounds are fixed at registration so two runs
/// of the same scenario bin identically.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void add(double v) {
    ++count_;
    sum_ += v;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        ++buckets_[i];
        return;
      }
    }
    ++buckets_.back();  // overflow
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// One snapshotted metric. Counters/gauges use `value`; histograms carry
/// their full shape (value = sample count).
struct MetricPoint {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  double sum = 0.0;                    // histogram only
  std::vector<double> bounds;          // histogram only
  std::vector<std::uint64_t> buckets;  // histogram only

  friend bool operator==(const MetricPoint&, const MetricPoint&) = default;
};

/// A sorted-by-name, self-contained copy of a registry's state. Cheap to
/// copy around with ExperimentResult; empty on results loaded from a
/// pre-v3 store (there are none — the schema bump invalidates them).
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// The named point, or nullptr.
  const MetricPoint* find(std::string_view name) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  /// Counters/gauges are cheap one-shot registrations at collection time.
  void add_counter(std::string name, std::uint64_t v);
  void add_gauge(std::string name, double v);

  /// Registers (or finds) a live histogram components fill during the
  /// run. Bounds must match on re-lookup. The reference stays valid for
  /// the registry's lifetime.
  Histogram& histogram(std::string name, std::vector<double> bounds);

  /// Sorted-by-name copy of everything registered so far.
  MetricsSnapshot snapshot() const;

 private:
  std::vector<MetricPoint> scalars_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace burst
