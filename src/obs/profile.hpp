// Hot-path wall-clock profiling: RAII scopes that attribute elapsed time
// to coarse phases (scheduler dispatch vs transport vs queue discipline).
//
// A Profiler is installed per thread (thread_local pointer); ProfileScope
// reads that pointer and is a no-op — one TLS load and a predictable
// branch — when none is installed, so the scopes stay compiled into the
// per-event hot path without moving the packet-path CI gate. Attribution
// is *self time*: entering a nested scope charges the elapsed slice to
// the enclosing phase first, so dispatch = loop overhead only, not
// everything under it.
//
// Consumers: bench/packet_path's fig02 profiled row and burstcamp
// --profile (one Profiler per task, merged into per-phase totals).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace burst {

enum class ProfilePhase : std::uint8_t {
  kOther = 0,   // outside any instrumented region
  kDispatch,    // scheduler loop: heap pop + event invoke overhead
  kTransport,   // transport-agent packet handling (Node local delivery)
  kQueue,       // queue-discipline enqueue (accept/drop) decisions
};
inline constexpr std::size_t kProfilePhases = 4;

std::string_view to_string(ProfilePhase p);

class Profiler {
 public:
  Profiler() { reset(); }

  /// Installs @p p as the calling thread's active profiler (nullptr
  /// uninstalls); returns the previous one so callers can restore it.
  static Profiler* install(Profiler* p) {
    Profiler* prev = current_;
    if ((p != nullptr) != (prev != nullptr)) {
      active_count_.fetch_add(p != nullptr ? 1 : -1,
                              std::memory_order_relaxed);
    }
    current_ = p;
    if (p) p->last_ = clock_ns();
    return prev;
  }
  static Profiler* current() { return current_; }

  /// True when ANY thread has a profiler installed. ProfileScope's
  /// fast path reads this plain global before touching thread-local
  /// state, so a fully unprofiled process (the normal case, and the one
  /// the packet-path gate times) pays one predictable shared-read branch
  /// per scope and no TLS access.
  static bool any_active() {
    return active_count_.load(std::memory_order_relaxed) != 0;
  }

  void reset() {
    ns_.fill(0);
    phase_ = ProfilePhase::kOther;
    last_ = clock_ns();
  }

  /// Seconds attributed to @p p so far (self time).
  double seconds(ProfilePhase p) const {
    return static_cast<double>(ns_[static_cast<std::size_t>(p)]) * 1e-9;
  }
  double total_seconds() const {
    std::uint64_t t = 0;
    for (const std::uint64_t v : ns_) t += v;
    return static_cast<double>(t) * 1e-9;
  }

  /// Adds @p other's per-phase totals into this profiler (merge step for
  /// per-task profilers).
  void absorb(const Profiler& other) {
    for (std::size_t i = 0; i < ns_.size(); ++i) ns_[i] += other.ns_[i];
  }

  // ProfileScope internals: charge the elapsed slice to the phase that
  // was running, then switch.
  ProfilePhase enter(ProfilePhase p) {
    stamp();
    const ProfilePhase prev = phase_;
    phase_ = p;
    return prev;
  }
  void leave(ProfilePhase prev) {
    stamp();
    phase_ = prev;
  }

 private:
  static std::uint64_t clock_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  void stamp() {
    const std::uint64_t now = clock_ns();
    ns_[static_cast<std::size_t>(phase_)] += now - last_;
    last_ = now;
  }

  static thread_local Profiler* current_;
  static std::atomic<int> active_count_;  // threads with a profiler
  std::array<std::uint64_t, kProfilePhases> ns_{};
  ProfilePhase phase_ = ProfilePhase::kOther;
  std::uint64_t last_ = 0;
};

/// RAII phase scope. Free when no profiler is installed on this thread
/// (and avoids even the TLS read while no profiler exists process-wide).
class ProfileScope {
 public:
  explicit ProfileScope(ProfilePhase p)
      : prof_(Profiler::any_active() ? Profiler::current() : nullptr) {
    if (prof_) prev_ = prof_->enter(p);
  }
  ~ProfileScope() {
    if (prof_) prof_->leave(prev_);
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* prof_;
  ProfilePhase prev_ = ProfilePhase::kOther;
};

}  // namespace burst
