// Parallel-runtime timeline export: turns the per-LP window log of a
// traced parallel run into Chrome trace-event JSON with one thread track
// per LP, so barrier stalls are visible on a Perfetto timeline next to
// the packet trace (DESIGN.md §14.2).
//
// Unlike the packet trace (simulated time, bit-deterministic), this file
// plots WALL time per LP — "wait" vs "run" vs "merge" slices — and is
// inherently machine-dependent; it is written as a separate
// `<stem>.runtime.perfetto.json` artifact so the deterministic trace
// files stay byte-comparable.
#pragma once

#include <iosfwd>
#include <vector>

#include "src/core/experiment.hpp"

namespace burst {

/// Writes slices ("wait"/"run"/"barrier"/"merge") per window on each LP's
/// thread track, plus per-LP counter tracks for the safe-horizon lower
/// bound (gmin, simulated seconds) and the per-window merged-message
/// count, and one summary instant per LP carrying its LpPhase totals.
/// ts is wall microseconds from ParallelRuntime::run() entry.
bool write_runtime_trace(std::ostream& os, const std::vector<LpPhase>& phases,
                         const std::vector<LpWindowPhase>& windows);

}  // namespace burst
