#include "src/obs/flight_recorder.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "src/net/red_queue.hpp"
#include "src/transport/flow_arena.hpp"

namespace burst {

namespace {

// Same deterministic %.17g discipline as the trace exports: round-trips
// any finite double and is platform-stable (validator-checked files).
void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// log2 bin for a cwnd value: [2^i, 2^(i+1)) -> i, clamped to the last bin.
std::size_t cwnd_bin(double cwnd) {
  constexpr std::size_t kLast =
      static_cast<std::size_t>(FlightRecorder::kHistBins) - 1;
  std::size_t bin = 0;
  double edge = 2.0;
  while (cwnd >= edge && bin < kLast) {
    edge *= 2.0;
    ++bin;
  }
  return bin;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions opts)
    : opts_(opts), period_(opts.period) {
  if (!(period_ > 0.0)) period_ = 0.1;
  if (opts_.max_samples < 2) opts_.max_samples = 2;
}

void FlightRecorder::arm(Simulator& sim, Time until) {
  samples_.reserve(opts_.max_samples);
  bytes_reserved_ = opts_.max_samples * sizeof(FlightSample);
  last_events_ = sim.events_run();
  if (queue_ != nullptr) {
    last_arrivals_ = queue_->stats().arrivals;
    last_drops_ = queue_->stats().drops;
  }
  schedule_next(sim, until);
}

void FlightRecorder::schedule_next(Simulator& sim, Time until) {
  if (sim.now() + period_ > until) return;
  sim.schedule(period_, [this, &sim, until] {
    take_sample(sim);
    schedule_next(sim, until);
  });
}

void FlightRecorder::decimate() {
  // Keep every other sample (the even-indexed ones, so t=0-adjacent
  // history survives) and coarsen the cadence; the budget never grows.
  std::size_t w = 0;
  for (std::size_t r = 0; r < samples_.size(); r += 2) {
    samples_[w++] = samples_[r];
  }
  samples_.resize(w);
  period_ *= 2.0;
  ++decimations_;
  // Moments of per-interval counts are cadence-specific: restart them.
  arrival_counts_ = RunningStats();
}

void FlightRecorder::take_sample(Simulator& sim) {
  if (samples_.size() >= opts_.max_samples) decimate();
  FlightSample s;
  s.t = sim.now();
  s.interval = period_;
  const std::uint64_t events_now = sim.events_run();
  s.events = events_now - last_events_;
  last_events_ = events_now;
  if (queue_ != nullptr) {
    s.qlen = static_cast<double>(queue_->len());
    const QueueStats& qs = queue_->stats();
    s.arrivals = qs.arrivals - last_arrivals_;
    s.drops = qs.drops - last_drops_;
    last_arrivals_ = qs.arrivals;
    last_drops_ = qs.drops;
    arrival_counts_.add(static_cast<double>(s.arrivals));
    if (const auto* red = dynamic_cast<const RedQueue*>(queue_)) {
      s.red_avg = red->avg();
    }
  }
  s.cov = arrival_counts_.cov();
  if (arena_ != nullptr) {
    const std::size_t n = arena_->sender_count();
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double w = arena_->cwnd(static_cast<std::uint32_t>(i));
      sum += w;
      if (w > s.cwnd_max) s.cwnd_max = w;
      ++s.cwnd_hist[cwnd_bin(w)];
    }
    if (n > 0) s.cwnd_mean = sum / static_cast<double>(n);
  }
  samples_.push_back(s);
  ++taken_;
}

bool FlightRecorder::write_csv(std::ostream& os) const {
  std::string out;
  out +=
      "t,interval,qlen,red_avg,events,arrivals,drops,cov,cwnd_mean,"
      "cwnd_max";
  for (int b = 0; b < kHistBins; ++b) {
    out += ",cwnd_hist";
    append_u64(out, static_cast<std::uint64_t>(b));
  }
  out += '\n';
  for (const FlightSample& s : samples_) {
    append_double(out, s.t);
    out += ',';
    append_double(out, s.interval);
    out += ',';
    append_double(out, s.qlen);
    out += ',';
    append_double(out, s.red_avg);
    out += ',';
    append_u64(out, s.events);
    out += ',';
    append_u64(out, s.arrivals);
    out += ',';
    append_u64(out, s.drops);
    out += ',';
    append_double(out, s.cov);
    out += ',';
    append_double(out, s.cwnd_mean);
    out += ',';
    append_double(out, s.cwnd_max);
    for (const std::uint32_t h : s.cwnd_hist) {
      out += ',';
      append_u64(out, h);
    }
    out += '\n';
  }
  os << out;
  return static_cast<bool>(os);
}

bool FlightRecorder::write_jsonl(std::ostream& os) const {
  std::string line;
  for (const FlightSample& s : samples_) {
    line.clear();
    line += "{\"t\":";
    append_double(line, s.t);
    line += ",\"type\":\"fr_sample\",\"lp\":";
    append_u64(line, static_cast<std::uint64_t>(lp_));
    line += ",\"interval\":";
    append_double(line, s.interval);
    line += ",\"qlen\":";
    append_double(line, s.qlen);
    line += ",\"red_avg\":";
    append_double(line, s.red_avg);
    line += ",\"events\":";
    append_u64(line, s.events);
    line += ",\"arrivals\":";
    append_u64(line, s.arrivals);
    line += ",\"drops\":";
    append_u64(line, s.drops);
    line += ",\"cov\":";
    append_double(line, s.cov);
    line += ",\"cwnd_mean\":";
    append_double(line, s.cwnd_mean);
    line += ",\"cwnd_max\":";
    append_double(line, s.cwnd_max);
    line += ",\"cwnd_hist\":[";
    for (int b = 0; b < kHistBins; ++b) {
      if (b > 0) line += ',';
      append_u64(line, s.cwnd_hist[static_cast<std::size_t>(b)]);
    }
    line += "]}\n";
    os << line;
  }
  return static_cast<bool>(os);
}

}  // namespace burst
