// Flight recorder: a fixed-budget streaming sampler for runs too big for
// the per-packet TraceSink (DESIGN.md §14.3).
//
// The full trace ring costs O(packets) memory and export time — fine at
// N=60, hopeless at the mean-field scale (N=10^5 is ~10^8 packet-lifecycle
// records for 6 simulated seconds). The flight recorder inverts the deal:
// it wakes up once per sampling period, snapshots a handful of aggregates
// (measured-queue occupancy and RED average, queue arrival/drop deltas,
// scheduler event deltas, an aggregate cwnd histogram over the FlowArena,
// and an online c.o.v. of per-period arrival counts via RunningStats), and
// goes back to sleep. Cost per sample is O(1) + one O(flows) arena scan;
// total memory is a hard budget fixed at arm() time.
//
// Budget discipline: the sample vector is reserved once, at
// max_samples * sizeof(FlightSample) bytes (~200 B/sample, so the default
// 4096-sample budget is under 1 MB — two orders of magnitude below the
// N=10^5 FlowArena itself). A run that outlives the budget never grows it:
// the recorder decimates (drops every other sample, doubles the period)
// and keeps going, so any duration fits the same footprint at
// correspondingly coarser resolution.
//
// Unlike TraceSink taps, the recorder schedules real sampler events, so a
// flight-recorded run is NOT event-count-identical to a bare one (the
// packet timeline is untouched — sampling reads state, never mutates it).
// The bench gate holds its wall overhead at ≤5% of the untraced run.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/net/queue.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/time.hpp"
#include "src/stats/running_stats.hpp"

namespace burst {

class FlowArena;

struct FlightRecorderOptions {
  /// Sampling cadence in simulated seconds (doubles on each decimation).
  Time period = 0.1;
  /// Hard sample budget; the recorder decimates instead of growing.
  std::size_t max_samples = 4096;
};

/// One periodic snapshot. Counters are deltas since the previous sample;
/// gauges are instantaneous.
struct FlightSample {
  Time t = 0.0;
  Time interval = 0.0;    // cadence in force when this sample was taken
  double qlen = 0.0;      // measured-queue occupancy (packets)
  double red_avg = -1.0;  // RED's EWMA average, -1 when not a RED queue
  std::uint64_t events = 0;    // scheduler events since previous sample
  std::uint64_t arrivals = 0;  // queue arrivals since previous sample
  std::uint64_t drops = 0;     // queue drops since previous sample
  /// Online c.o.v. of the per-interval arrival counts so far (restarts
  /// after a decimation — mixing cadences would corrupt the moments).
  double cov = 0.0;
  double cwnd_mean = 0.0;  // aggregate over the observed FlowArena
  double cwnd_max = 0.0;
  /// log2-binned cwnd histogram: bin i counts senders with cwnd in
  /// [2^i, 2^(i+1)), last bin open-ended.
  std::array<std::uint32_t, 12> cwnd_hist{};
};

class FlightRecorder {
 public:
  static constexpr int kHistBins = 12;

  explicit FlightRecorder(FlightRecorderOptions opts = {});

  /// Points the recorder at the queue under study (occupancy, arrival and
  /// drop deltas, RED average). Optional; call before arm().
  void observe_queue(const Queue* q) { queue_ = q; }
  /// Points the recorder at a flow arena for the aggregate cwnd histogram.
  /// Optional — parallel runs skip it (scanning another LP's arena from
  /// the sampler thread would race). Call before arm().
  void observe_arena(const FlowArena* arena) { arena_ = arena; }
  /// LP id stamped on exported records (0 for sequential runs).
  void set_lp(int lp) { lp_ = lp; }

  /// Reserves the full sample budget and schedules the periodic sampler
  /// on @p sim until @p until. Call exactly once, before the run; @p sim
  /// must be the Simulator that drives the observed components.
  void arm(Simulator& sim, Time until);

  const std::vector<FlightSample>& samples() const { return samples_; }
  /// Current cadence (opts.period, doubled once per decimation).
  Time period() const { return period_; }
  std::uint64_t decimations() const { return decimations_; }
  /// Total snapshots ever taken, including decimated-away ones.
  std::uint64_t taken() const { return taken_; }
  /// The fixed budget reserved at arm() time, in bytes.
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  int lp() const { return lp_; }

  /// Compact time-series exports. CSV: one header plus one row per
  /// sample; JSONL: `fr_sample` records per scripts/trace_event.schema.json.
  bool write_csv(std::ostream& os) const;
  bool write_jsonl(std::ostream& os) const;

 private:
  void take_sample(Simulator& sim);
  void schedule_next(Simulator& sim, Time until);
  /// Halves the held samples (keep every other) and doubles the period.
  void decimate();

  FlightRecorderOptions opts_;
  const Queue* queue_ = nullptr;
  const FlowArena* arena_ = nullptr;
  int lp_ = 0;
  Time period_ = 0.0;
  std::vector<FlightSample> samples_;
  std::size_t bytes_reserved_ = 0;
  std::uint64_t decimations_ = 0;
  std::uint64_t taken_ = 0;
  std::uint64_t last_events_ = 0;
  std::uint64_t last_arrivals_ = 0;
  std::uint64_t last_drops_ = 0;
  RunningStats arrival_counts_;  // per-interval arrivals at this cadence
};

}  // namespace burst
