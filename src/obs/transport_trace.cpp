#include "src/obs/transport_trace.hpp"

namespace burst {

TransportTracer::TransportTracer(TraceSink& sink, const TcpSender& sender)
    : sink_(sink),
      sender_(sender),
      last_cwnd_(sender.cwnd()),
      last_ssthresh_(sender.ssthresh()),
      last_state_(sink.intern_state(sender.cc_state())),
      last_fast_retx_(sender.stats().fast_retransmits) {}

void TransportTracer::on_sender_event(const TcpSenderEvent& e) {
  TraceRecord r;
  r.time = e.time;
  r.flow = sender_.flow();

  // Fast retransmits have no dedicated event kind — they surface as a
  // stats increment inside a dup-ACK (or Vegas fine-grained) handler.
  const std::uint64_t fast_retx = sender_.stats().fast_retransmits;
  if (fast_retx != last_fast_retx_) {
    last_fast_retx_ = fast_retx;
    r.type = TraceEventType::kFastRetransmit;
    r.seq = e.seq;
    r.value = e.cwnd;
    r.aux = e.ssthresh;
    sink_.emit(r);
  }
  if (e.kind == TcpSenderEvent::Kind::kRto) {
    r.type = TraceEventType::kRto;
    r.seq = e.seq;
    r.value = e.cwnd;
    r.aux = e.ssthresh;
    sink_.emit(r);
  }
  if (e.cwnd != last_cwnd_) {
    last_cwnd_ = e.cwnd;
    r.type = TraceEventType::kCwndChange;
    r.seq = e.seq;
    r.value = e.cwnd;
    r.aux = e.ssthresh;
    sink_.emit(r);
  }
  if (e.ssthresh != last_ssthresh_) {
    last_ssthresh_ = e.ssthresh;
    r.type = TraceEventType::kSsthreshChange;
    r.seq = e.seq;
    r.value = e.ssthresh;
    r.aux = e.cwnd;
    sink_.emit(r);
  }
  const std::uint16_t state = sink_.intern_state(e.state);
  if (state != last_state_) {
    last_state_ = state;
    r.type = TraceEventType::kCcStateChange;
    r.detail = state;
    r.seq = e.seq;
    r.value = e.cwnd;
    r.aux = e.ssthresh;
    sink_.emit(r);
  }
}

}  // namespace burst
