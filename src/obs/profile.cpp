#include "src/obs/profile.hpp"

namespace burst {

thread_local Profiler* Profiler::current_ = nullptr;
std::atomic<int> Profiler::active_count_{0};

std::string_view to_string(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::kOther: return "other";
    case ProfilePhase::kDispatch: return "dispatch";
    case ProfilePhase::kTransport: return "transport";
    case ProfilePhase::kQueue: return "queue";
  }
  return "unknown";
}

}  // namespace burst
