// Adapter from the TcpSender observer protocol to TraceSink records.
//
// TcpSender already reports a post-event state snapshot at every protocol
// event (the conformance testkit consumes the same stream); this adapter
// diffs consecutive snapshots and emits only the *transitions* the paper
// cares about — cwnd/ssthresh changes, congestion-phase changes,
// fast retransmits, RTOs — so the trace stays proportional to protocol
// activity, not to packet volume.
#pragma once

#include "src/obs/trace.hpp"
#include "src/transport/tcp_sender.hpp"

namespace burst {

class TransportTracer : public TcpSenderObserver {
 public:
  /// Emits @p sender's transitions into @p sink. The tracer must outlive
  /// the sender's use of it (install with sender.set_observer(&tracer)).
  TransportTracer(TraceSink& sink, const TcpSender& sender);

  void on_sender_event(const TcpSenderEvent& e) override;

 private:
  TraceSink& sink_;
  const TcpSender& sender_;
  double last_cwnd_;
  double last_ssthresh_;
  std::uint16_t last_state_;
  std::uint64_t last_fast_retx_ = 0;
};

}  // namespace burst
