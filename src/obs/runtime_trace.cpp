#include "src/obs/runtime_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>

namespace burst {

namespace {

constexpr int kRuntimePid = 2;  // the packet trace owns pid 1
constexpr double kMicrosPerSec = 1e6;

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

bool write_runtime_trace(std::ostream& os, const std::vector<LpPhase>& phases,
                         const std::vector<LpWindowPhase>& windows) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  auto meta = [&](const char* kind, int tid, const std::string& name) {
    sep();
    out += "{\"name\":\"";
    out += kind;
    out += "\",\"ph\":\"M\",\"pid\":";
    append_i64(out, kRuntimePid);
    out += ",\"tid\":";
    append_i64(out, tid);
    out += ",\"args\":{\"name\":\"";
    out += name;
    out += "\"}}";
  };
  meta("process_name", 0, "parallel runtime");
  for (const LpPhase& p : phases) {
    meta("thread_name", p.lp, "lp " + std::to_string(p.lp));
  }

  auto slice = [&](const char* name, int tid, double t0_s, double dur_s) {
    sep();
    out += "{\"name\":\"";
    out += name;
    out += "\",\"ph\":\"X\",\"ts\":";
    append_double(out, t0_s * kMicrosPerSec);
    out += ",\"dur\":";
    append_double(out, dur_s * kMicrosPerSec);
    out += ",\"pid\":";
    append_i64(out, kRuntimePid);
    out += ",\"tid\":";
    append_i64(out, tid);
    out += ",\"args\":{}}";
  };
  auto counter = [&](const std::string& name, double t_s,
                     const char* series, double v) {
    sep();
    out += "{\"name\":\"";
    out += name;
    out += "\",\"ph\":\"C\",\"ts\":";
    append_double(out, t_s * kMicrosPerSec);
    out += ",\"pid\":";
    append_i64(out, kRuntimePid);
    out += ",\"tid\":0,\"args\":{\"";
    out += series;
    out += "\":";
    append_double(out, v);
    out += "}}";
  };

  for (const LpWindowPhase& w : windows) {
    double t = w.t0_s;
    slice("wait", w.lp, t, w.pub_wait_s);
    t += w.pub_wait_s;
    slice("run", w.lp, t, w.run_s);
    t += w.run_s;
    slice("barrier", w.lp, t, w.flush_wait_s);
    t += w.flush_wait_s;
    slice("merge", w.lp, t, w.merge_s);
    const std::string lp_tag = " lp" + std::to_string(w.lp);
    counter("gmin" + lp_tag, w.t0_s, "sim_s", w.gmin);
    counter("staged" + lp_tag, w.t0_s, "msgs",
            static_cast<double>(w.staged));
    if (out.size() >= (std::size_t{1} << 20)) {
      os << out;
      out.clear();
    }
  }

  for (const LpPhase& p : phases) {
    sep();
    out += "{\"name\":\"lp_summary\",\"ph\":\"i\",\"s\":\"t\",\"ts\":0,"
           "\"pid\":";
    append_i64(out, kRuntimePid);
    out += ",\"tid\":";
    append_i64(out, p.lp);
    out += ",\"args\":{\"events\":";
    append_i64(out, static_cast<std::int64_t>(p.events));
    out += ",\"windows\":";
    append_i64(out, static_cast<std::int64_t>(p.windows));
    out += ",\"msgs_in\":";
    append_i64(out, static_cast<std::int64_t>(p.msgs_in));
    out += ",\"msgs_out\":";
    append_i64(out, static_cast<std::int64_t>(p.msgs_out));
    out += ",\"merge_high_water\":";
    append_i64(out, static_cast<std::int64_t>(p.merge_high_water));
    out += ",\"chan_overflows\":";
    append_i64(out, static_cast<std::int64_t>(p.chan_overflows));
    out += ",\"chan_high_water\":";
    append_i64(out, static_cast<std::int64_t>(p.chan_high_water));
    out += ",\"horizon_advance_mean\":";
    append_double(out, p.horizon_advance_mean);
    out += ",\"run_s\":";
    append_double(out, p.run_s);
    out += ",\"wait_s\":";
    append_double(out, p.wait_s);
    out += "}}";
  }

  out += "\n]}\n";
  os << out;
  return static_cast<bool>(os);
}

}  // namespace burst
