#include "src/stats/binned_counter.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void BinnedCounter::record(Time t) {
  if (t < start_) return;
  const auto idx = static_cast<std::size_t>((t - start_) / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  ++bins_[idx];
}

std::size_t BinnedCounter::complete_bin_count(Time end) const {
  if (end <= start_) return bins_.size();
  // Number of *complete* bins in [start, end). When end sits on a bin
  // boundary the quotient is an integer only up to floating-point
  // rounding — e.g. the paper's default span (20.0 - 2.0) / 0.08
  // evaluates to 224.999...97, and a bare floor() silently loses the
  // final bin (or gains one when the error lands high). Snap quotients
  // within a relative epsilon of an integer before flooring.
  const double raw = (end - start_) / bin_width_;
  const double snapped = std::round(raw);
  const double n = std::abs(raw - snapped) <= 1e-9 * std::max(1.0, raw)
                       ? snapped
                       : std::floor(raw);
  return static_cast<std::size_t>(n);
}

RunningStats BinnedCounter::stats_until(Time end) const {
  RunningStats rs;
  const std::size_t total_bins = complete_bin_count(end);
  for (std::size_t i = 0; i < total_bins; ++i) {
    rs.add(i < bins_.size() ? static_cast<double>(bins_[i]) : 0.0);
  }
  return rs;
}

std::vector<std::uint64_t> BinnedCounter::complete_bins(Time end) const {
  const std::size_t total_bins = complete_bin_count(end);
  std::vector<std::uint64_t> out(total_bins, 0);
  const std::size_t have = std::min(total_bins, bins_.size());
  std::copy(bins_.begin(), bins_.begin() + static_cast<std::ptrdiff_t>(have),
            out.begin());
  return out;
}

}  // namespace burst
