#include "src/stats/binned_counter.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void BinnedCounter::record(Time t) {
  if (t < start_) return;
  const auto idx = static_cast<std::size_t>((t - start_) / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  ++bins_[idx];
}

RunningStats BinnedCounter::stats_until(Time end) const {
  RunningStats rs;
  std::size_t total_bins = bins_.size();
  if (end > start_) {
    // Number of *complete* bins in [start, end). When end sits on a bin
    // boundary the quotient is an integer only up to floating-point
    // rounding — e.g. the paper's default span (20.0 - 2.0) / 0.08
    // evaluates to 224.999...97, and a bare floor() silently loses the
    // final bin (or gains one when the error lands high). Snap quotients
    // within a relative epsilon of an integer before flooring.
    const double raw = (end - start_) / bin_width_;
    const double snapped = std::round(raw);
    const double n = std::abs(raw - snapped) <= 1e-9 * std::max(1.0, raw)
                         ? snapped
                         : std::floor(raw);
    total_bins = static_cast<std::size_t>(n);
  }
  for (std::size_t i = 0; i < total_bins; ++i) {
    rs.add(i < bins_.size() ? static_cast<double>(bins_[i]) : 0.0);
  }
  return rs;
}

}  // namespace burst
