#include "src/stats/binned_counter.hpp"

#include <cmath>

namespace burst {

void BinnedCounter::record(Time t) {
  if (t < start_) return;
  const auto idx = static_cast<std::size_t>((t - start_) / bin_width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  ++bins_[idx];
}

RunningStats BinnedCounter::stats_until(Time end) const {
  RunningStats rs;
  std::size_t total_bins = bins_.size();
  if (end > start_) {
    total_bins = static_cast<std::size_t>(std::floor((end - start_) / bin_width_));
  }
  for (std::size_t i = 0; i < total_bins; ++i) {
    rs.add(i < bins_.size() ? static_cast<double>(bins_[i]) : 0.0);
  }
  return rs;
}

}  // namespace burst
