// Analysis helpers over congestion-window trace series: loss-event
// counting and the cross-stream synchronization metric used when
// reproducing Figs 6-9 and 12.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/trace.hpp"

namespace burst {

/// Window-decrease events per series within [t0, t1). 64-bit: at
/// mean-field scale a long trace can accumulate beyond what 32 bits
/// hold, and event counters are uint64/int64 throughout the codebase.
std::vector<std::int64_t> decrease_counts(
    const std::vector<TraceSeries>& traces, Time t0, Time t1);

/// Loss-synchronization: the largest fraction of traced flows that cut
/// their window inside the same time bin of width @p bin over [t0, t1).
/// 0 for empty input; each flow counts at most once per bin.
double max_sync_fraction(const std::vector<TraceSeries>& traces, Time bin,
                         Time t0, Time t1);

/// Resamples a trace onto a regular grid [t0, t1) with step @p dt using
/// last-value-holds semantics (value_at); @p fallback before first point.
std::vector<double> resample(const TraceSeries& trace, Time t0, Time t1,
                             Time dt, double fallback = 0.0);

/// Per-bin 0/1 indicator of "this trace decreased inside the bin", over
/// [t0, t1) with bins of width @p bin. Feed into mean_pairwise_correlation
/// to measure synchronized congestion decisions.
std::vector<double> decrease_indicator(const TraceSeries& trace, Time bin,
                                       Time t0, Time t1);

}  // namespace burst
