// Counts events (gateway packet arrivals) in consecutive fixed-width time
// bins. The paper bins arrivals by the round-trip propagation delay and
// takes the c.o.v. of the per-bin counts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/time.hpp"
#include "src/stats/running_stats.hpp"

namespace burst {

class BinnedCounter {
 public:
  /// @p bin_width in seconds; events before @p start (warm-up) are ignored.
  explicit BinnedCounter(Time bin_width, Time start = 0.0)
      : bin_width_(bin_width), start_(start) {}

  /// Records one event at time @p t. Times must be non-decreasing overall
  /// (they come from a simulation clock).
  void record(Time t);

  /// Per-bin counts up to and including the last non-empty bin. The last
  /// entry may be a PARTIAL bin (the horizon rarely lands on a boundary);
  /// series analysis should use complete_bins() so a truncated final bin
  /// never drags the tail of the series down.
  const std::vector<std::uint64_t>& bins() const { return bins_; }

  /// Per-bin counts for every *complete* bin in [start, end): the partial
  /// final bin is dropped, and trailing empty complete bins are padded
  /// with zeros ("no arrivals" is real data). Boundary determination
  /// matches stats_until (epsilon-snapped), so
  /// series_stats(to_doubles(complete_bins(end))) == stats_until(end).
  std::vector<std::uint64_t> complete_bins(Time end) const;

  /// Statistics over all bins in [start, end): trailing empty bins up to
  /// @p end are included, since "no arrivals" is real data. An @p end on a
  /// bin boundary (up to floating-point rounding of (end-start)/width)
  /// counts exactly that many complete bins; a partial final bin is
  /// excluded.
  RunningStats stats_until(Time end) const;

  Time bin_width() const { return bin_width_; }

 private:
  std::size_t complete_bin_count(Time end) const;

  Time bin_width_;
  Time start_;
  std::vector<std::uint64_t> bins_;
};

}  // namespace burst
