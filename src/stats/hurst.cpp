#include "src/stats/hurst.hpp"

#include <algorithm>
#include <cmath>

#include "src/stats/running_stats.hpp"
#include "src/stats/time_series.hpp"

namespace burst {

double ols_slope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

double hurst_variance_time(const std::vector<double>& xs,
                           const std::vector<int>& ms) {
  std::vector<double> log_m, log_var;
  for (int m : ms) {
    if (m <= 0 || xs.size() / static_cast<std::size_t>(m) < 4) continue;
    // Block *means*, not sums: Var(X^(m)) ~ m^(2H-2).
    auto sums = aggregate_series(xs, m);
    for (auto& s : sums) s /= m;
    const double var = series_stats(sums).variance();
    if (var <= 0.0) continue;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(var));
  }
  const double slope = ols_slope(log_m, log_var);
  if (log_m.size() < 2) return 0.5;
  return std::clamp(1.0 + slope / 2.0, 0.0, 1.0);
}

namespace {

/// Mean R/S statistic over non-overlapping windows of length n.
double mean_rs(const std::vector<double>& xs, int n) {
  const std::size_t windows = xs.size() / static_cast<std::size_t>(n);
  if (windows == 0) return 0.0;
  double total = 0.0;
  std::size_t used = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t base = w * static_cast<std::size_t>(n);
    RunningStats rs;
    for (int i = 0; i < n; ++i) rs.add(xs[base + static_cast<std::size_t>(i)]);
    const double mean = rs.mean();
    const double sd = rs.stddev();
    if (sd <= 0.0) continue;
    double cum = 0.0, lo = 0.0, hi = 0.0;
    for (int i = 0; i < n; ++i) {
      cum += xs[base + static_cast<std::size_t>(i)] - mean;
      lo = std::min(lo, cum);
      hi = std::max(hi, cum);
    }
    total += (hi - lo) / sd;
    ++used;
  }
  return used == 0 ? 0.0 : total / static_cast<double>(used);
}

}  // namespace

double hurst_rescaled_range(const std::vector<double>& xs,
                            const std::vector<int>& ns) {
  std::vector<double> log_n, log_rs;
  for (int n : ns) {
    if (n < 8 || xs.size() / static_cast<std::size_t>(n) < 2) continue;
    const double rs = mean_rs(xs, n);
    if (rs <= 0.0) continue;
    log_n.push_back(std::log(static_cast<double>(n)));
    log_rs.push_back(std::log(rs));
  }
  if (log_n.size() < 2) return 0.5;
  return std::clamp(ols_slope(log_n, log_rs), 0.0, 1.0);
}

}  // namespace burst
