// Closed-form queueing-theory results used to validate the simulator and
// to predict the unmodulated (UDP/Poisson) baseline of the paper's plots:
//
//  * M/M/1 and M/M/1/K: exact mean queue and blocking probability.
//  * M/D/1: Pollaczek-Khinchine mean queue (the bottleneck link serves
//    fixed-size packets, so Poisson arrivals + deterministic service).
//  * Slow-start algebra: rounds/packets needed for a window to reach W.
//
// The conservation tests compare these against measured simulator output;
// agreement there is evidence the substrate's queues and clocks are right.
#pragma once

namespace burst {

/// M/M/1 mean number in system; requires rho < 1.
double mm1_mean_system(double rho);

/// M/M/1/K blocking probability (Erlang-like loss), any rho > 0.
double mm1k_blocking(double rho, int k);

/// M/M/1/K mean number in system.
double mm1k_mean_system(double rho, int k);

/// M/D/1 mean number *waiting* (Pollaczek-Khinchine); requires rho < 1.
double md1_mean_queue(double rho);

/// M/D/1 mean number in system (queue + in service).
double md1_mean_system(double rho);

/// Number of slow-start rounds (RTTs) for cwnd to grow 1 -> w with one
/// ACK per packet (doubling per round): ceil(log2(w)).
int slow_start_rounds(double w);

/// Packets transmitted while slow-starting from cwnd=1 until the window
/// first reaches w: 1+2+4+... = 2^rounds - 1.
double slow_start_packets(double w);

}  // namespace burst
