#include "src/stats/queueing_theory.hpp"

#include <cassert>
#include <cmath>

namespace burst {

double mm1_mean_system(double rho) {
  assert(rho >= 0.0 && rho < 1.0);
  return rho / (1.0 - rho);
}

double mm1k_blocking(double rho, int k) {
  assert(rho > 0.0 && k >= 1);
  if (rho == 1.0) return 1.0 / (k + 1);
  const double num = (1.0 - rho) * std::pow(rho, k);
  const double den = 1.0 - std::pow(rho, k + 1);
  return num / den;
}

double mm1k_mean_system(double rho, int k) {
  assert(rho > 0.0 && k >= 1);
  if (rho == 1.0) return k / 2.0;
  const double r_k1 = std::pow(rho, k + 1);
  return rho / (1.0 - rho) -
         (k + 1) * r_k1 / (1.0 - r_k1);
}

double md1_mean_queue(double rho) {
  assert(rho >= 0.0 && rho < 1.0);
  return rho * rho / (2.0 * (1.0 - rho));
}

double md1_mean_system(double rho) { return md1_mean_queue(rho) + rho; }

int slow_start_rounds(double w) {
  if (w <= 1.0) return 0;
  return static_cast<int>(std::ceil(std::log2(w)));
}

double slow_start_packets(double w) {
  return std::pow(2.0, slow_start_rounds(w)) - 1.0;
}

}  // namespace burst
