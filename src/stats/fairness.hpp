// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0,1], 1 = equal.
// Used to quantify the paper's Sec 3.2.2 observation that Vegas shares the
// bottleneck more fairly than Reno.
#pragma once

#include <vector>

namespace burst {

double jain_fairness(const std::vector<double>& allocations);

}  // namespace burst
