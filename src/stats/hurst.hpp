// Hurst-parameter estimators for count series.
//
// The paper argues c.o.v. beats the Hurst parameter as a burstiness metric
// for statistical multiplexing; we implement both so the ablation benches
// can show the two views side by side on the same traffic.
//
//  * Variance-time plot: Var(X^(m)) ~ m^(2H-2) for the block-mean series
//    X^(m); H is estimated from the log-log slope.
//  * Rescaled range (R/S): E[R/S](n) ~ n^H.
//
// Both estimators are crude (as they are in the literature); tests only
// assert loose bounds (H ~ 0.5 for iid data, H > 0.6 for heavy-tailed
// on/off aggregates).
#pragma once

#include <vector>

namespace burst {

/// Least-squares slope of y on x. Returns 0 for degenerate input.
double ols_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Variance-time estimator of H over block sizes @p ms (each must fit the
/// series at least 4 times). Returns 0.5 for degenerate input.
double hurst_variance_time(const std::vector<double>& xs,
                           const std::vector<int>& ms);

/// R/S estimator of H over sub-series lengths @p ns.
double hurst_rescaled_range(const std::vector<double>& xs,
                            const std::vector<int>& ns);

}  // namespace burst
