// Correlation statistics for the paper's dependency analysis:
//
//  * autocorrelation of the per-RTT gateway arrival counts — TCP
//    modulation shows up as negative/oscillatory short-lag correlation;
//  * Pearson cross-correlation between two flows' time series — the
//    paper's claim that Reno couples streams' congestion decisions is
//    "windows across flows co-move (and co-drop)".
#pragma once

#include <vector>

namespace burst {

/// Sample autocorrelation of xs at the given lag (0 <= lag < xs.size()).
/// Returns 0 for degenerate input (constant or too-short series).
double autocorrelation(const std::vector<double>& xs, int lag);

/// Pearson correlation of two equal-length series; 0 for degenerate input.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Mean pairwise Pearson correlation across a set of series (all pairs).
/// The paper's stream-dependency measure: near 0 for independent flows,
/// high for synchronized ones.
double mean_pairwise_correlation(const std::vector<std::vector<double>>& series);

}  // namespace burst
