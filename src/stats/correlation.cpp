#include "src/stats/correlation.hpp"

#include <cmath>

namespace burst {

namespace {

struct Moments {
  double mean = 0.0;
  double var = 0.0;  // population variance
};

Moments moments(const std::vector<double>& xs) {
  Moments m;
  if (xs.empty()) return m;
  for (double x : xs) m.mean += x;
  m.mean /= static_cast<double>(xs.size());
  for (double x : xs) m.var += (x - m.mean) * (x - m.mean);
  m.var /= static_cast<double>(xs.size());
  return m;
}

}  // namespace

double autocorrelation(const std::vector<double>& xs, int lag) {
  if (lag < 0 || xs.size() < static_cast<std::size_t>(lag) + 2) return 0.0;
  const Moments m = moments(xs);
  if (m.var <= 0.0) return 0.0;
  double acc = 0.0;
  const std::size_t n = xs.size() - static_cast<std::size_t>(lag);
  for (std::size_t i = 0; i < n; ++i) {
    acc += (xs[i] - m.mean) * (xs[i + static_cast<std::size_t>(lag)] - m.mean);
  }
  return acc / (static_cast<double>(xs.size()) * m.var);
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const Moments mx = moments(xs);
  const Moments my = moments(ys);
  if (mx.var <= 0.0 || my.var <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += (xs[i] - mx.mean) * (ys[i] - my.mean);
  }
  return acc / (static_cast<double>(xs.size()) * std::sqrt(mx.var * my.var));
}

double mean_pairwise_correlation(
    const std::vector<std::vector<double>>& series) {
  double acc = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = i + 1; j < series.size(); ++j) {
      acc += pearson(series[i], series[j]);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : acc / pairs;
}

}  // namespace burst
