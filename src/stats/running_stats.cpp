#include "src/stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cov() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / m;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ += delta * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::from_moments(std::uint64_t n, double mean,
                                        double m2, double min, double max) {
  RunningStats s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double poisson_aggregate_cov(int n, double lambda, double window) {
  const double mean_count = static_cast<double>(n) * lambda * window;
  return mean_count <= 0.0 ? 0.0 : 1.0 / std::sqrt(mean_count);
}

}  // namespace burst
