// Utilities over equally spaced count series: aggregation across time
// scales (the self-similar literature's "does it stay bursty when you
// zoom out?" test) and c.o.v. at each scale.
#pragma once

#include <cstdint>
#include <vector>

#include "src/stats/running_stats.hpp"

namespace burst {

/// Sums consecutive non-overlapping blocks of @p m samples. The tail
/// remainder (fewer than m samples) is discarded.
std::vector<double> aggregate_series(const std::vector<double>& xs, int m);

/// Convenience overload for count bins.
std::vector<double> to_doubles(const std::vector<std::uint64_t>& xs);

/// Stats of a plain vector.
RunningStats series_stats(const std::vector<double>& xs);

/// c.o.v. of the series aggregated at block size m, for each m in @p ms.
/// For iid (e.g. Poisson) data this falls as 1/sqrt(m); for self-similar
/// data with Hurst parameter H it falls only as m^(H-1).
std::vector<double> cov_across_scales(const std::vector<double>& xs,
                                      const std::vector<int>& ms);

}  // namespace burst
