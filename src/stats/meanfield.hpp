// Mean-field (many-flows) fixed point for TCP over a RED bottleneck.
//
// In the McDonald–Reynier limit, N synchronized-free TCP flows sharing a
// RED gateway whose capacity and thresholds scale with N behave like one
// deterministic "mean" flow: the average queue settles at the occupancy
// x* where the RED drop probability p(x*) makes the square-root TCP
// window exactly fill the pipe. Aggregate fluctuations around x* decay
// as 1/sqrt(N) — the property the fig_meanfield campaign measures.
//
// The fixed point couples three relations:
//   RTT(x)  = R0 + x / C                    (queueing delay at capacity C)
//   w(x)    = C * RTT(x) / N                (per-flow window at utilization 1)
//   p(w)    = 3 / (2 w^2)                   (inverse TCP square-root law)
//   x(p)    = min_th + p * (max_th - min_th) / max_p   (RED linear profile)
// solved by damped iteration on x. Pure arithmetic — no Scenario or
// simulator dependency — so callers pass already-scaled parameters.
#pragma once

namespace burst {

struct MeanfieldParams {
  double capacity_pps = 0.0;  ///< bottleneck service rate, data packets/s
  double base_rtt = 0.0;      ///< two-way propagation delay R0, seconds
  double num_flows = 0.0;     ///< N
  double red_min_th = 0.0;    ///< RED thresholds/probability, packets
  double red_max_th = 0.0;
  double red_max_p = 0.0;
  /// Per-flow advertised-window cap, packets (0 = uncapped). When the
  /// uncongested window C*R0/N already exceeds this cap the link cannot
  /// be filled and the fixed point degenerates to an empty queue.
  double max_window = 0.0;
};

struct MeanfieldFixedPoint {
  double queue_pkts = 0.0;   ///< x*: mean RED (average) occupancy
  double drop_prob = 0.0;    ///< p*: equilibrium drop/mark probability
  double window_pkts = 0.0;  ///< w*: per-flow congestion window
  double rtt = 0.0;          ///< R0 + x*/C
  bool converged = false;
  int iterations = 0;
};

/// Solves the fixed point above. Requires capacity_pps > 0, num_flows > 0,
/// and a valid RED profile (0 <= min_th < max_th, 0 < max_p <= 1);
/// returns converged=false otherwise or if the damped iteration fails to
/// settle (it converges in a handful of steps for any sane profile).
MeanfieldFixedPoint red_meanfield_fixed_point(const MeanfieldParams& params);

}  // namespace burst
