#include "src/stats/fairness.hpp"

namespace burst {

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace burst
