// Numerically stable single-pass moments (Welford) and the coefficient of
// variation — the paper's burstiness metric (c.o.v. = stddev / mean of
// per-RTT packet counts, Sec 2.2).
#pragma once

#include <cstdint>

namespace burst {

class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev/mean; 0 when the mean is 0.
  double cov() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel sweeps).
  void merge(const RunningStats& other);

  /// Raw sum of squared deviations (Welford's M2); exposed so the result
  /// store can serialize the accumulator bit-exactly.
  double m2() const { return m2_; }
  /// Rebuilds an accumulator from serialized moments (result store).
  static RunningStats from_moments(std::uint64_t n, double mean, double m2,
                                   double min, double max);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Analytic c.o.v. of the aggregate of @p n independent Poisson sources of
/// rate @p lambda each, counted over windows of @p window seconds:
/// counts are Poisson(n*lambda*window), so c.o.v. = 1/sqrt(n*lambda*window).
double poisson_aggregate_cov(int n, double lambda, double window);

}  // namespace burst
