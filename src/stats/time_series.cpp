#include "src/stats/time_series.hpp"

namespace burst {

std::vector<double> aggregate_series(const std::vector<double>& xs, int m) {
  std::vector<double> out;
  if (m <= 0) return out;
  out.reserve(xs.size() / static_cast<std::size_t>(m));
  double acc = 0.0;
  int k = 0;
  for (double x : xs) {
    acc += x;
    if (++k == m) {
      out.push_back(acc);
      acc = 0.0;
      k = 0;
    }
  }
  return out;
}

std::vector<double> to_doubles(const std::vector<std::uint64_t>& xs) {
  return {xs.begin(), xs.end()};
}

RunningStats series_stats(const std::vector<double>& xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs;
}

std::vector<double> cov_across_scales(const std::vector<double>& xs,
                                      const std::vector<int>& ms) {
  std::vector<double> out;
  out.reserve(ms.size());
  for (int m : ms) {
    out.push_back(series_stats(aggregate_series(xs, m)).cov());
  }
  return out;
}

}  // namespace burst
