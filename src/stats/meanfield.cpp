#include "src/stats/meanfield.hpp"

#include <cmath>

namespace burst {

MeanfieldFixedPoint red_meanfield_fixed_point(const MeanfieldParams& p) {
  MeanfieldFixedPoint fp;
  if (p.capacity_pps <= 0.0 || p.num_flows <= 0.0 || p.base_rtt < 0.0 ||
      p.red_min_th < 0.0 || p.red_max_th <= p.red_min_th ||
      p.red_max_p <= 0.0 || p.red_max_p > 1.0) {
    return fp;  // converged=false
  }

  // Window-limited regime: even with an empty queue each flow would need
  // more than its advertised window to fill the pipe. Queue stays empty.
  const double w_fill = p.capacity_pps * p.base_rtt / p.num_flows;
  if (p.max_window > 0.0 && w_fill >= p.max_window) {
    fp.queue_pkts = 0.0;
    fp.drop_prob = 0.0;
    fp.window_pkts = p.max_window;
    fp.rtt = p.base_rtt;
    fp.converged = true;
    return fp;
  }

  constexpr int kMaxIter = 10000;
  constexpr double kDamp = 0.25;
  constexpr double kRelTol = 1e-12;
  double x = 0.5 * (p.red_min_th + p.red_max_th);
  double w = 0.0, prob = 0.0;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double rtt = p.base_rtt + x / p.capacity_pps;
    w = p.capacity_pps * rtt / p.num_flows;
    // Inverse square-root law w = sqrt(3/(2p)). Clamp to the linear RED
    // region: demand beyond max_p means the true operating point sits in
    // the cliff above max_th, which this model does not chase.
    prob = 1.5 / (w * w);
    if (prob > p.red_max_p) prob = p.red_max_p;
    const double x_new =
        p.red_min_th + prob * (p.red_max_th - p.red_min_th) / p.red_max_p;
    const double step = x_new - x;
    x += kDamp * step;
    fp.iterations = i;
    if (std::abs(step) <= kRelTol * (1.0 + std::abs(x))) {
      fp.converged = true;
      break;
    }
  }
  fp.queue_pkts = x;
  fp.drop_prob = prob;
  fp.window_pkts = w;
  fp.rtt = p.base_rtt + x / p.capacity_pps;
  return fp;
}

}  // namespace burst
