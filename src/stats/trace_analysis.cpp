#include "src/stats/trace_analysis.hpp"

#include <algorithm>

namespace burst {

std::vector<std::int64_t> decrease_counts(
    const std::vector<TraceSeries>& traces, Time t0, Time t1) {
  std::vector<std::int64_t> out;
  out.reserve(traces.size());
  for (const auto& t : traces) {
    std::int64_t count = 0;
    for (std::size_t i = 1; i < t.points().size(); ++i) {
      const auto& [at, v] = t.points()[i];
      if (at < t0 || at >= t1) continue;
      if (v < t.points()[i - 1].second) ++count;
    }
    out.push_back(count);
  }
  return out;
}

double max_sync_fraction(const std::vector<TraceSeries>& traces, Time bin,
                         Time t0, Time t1) {
  if (traces.empty() || bin <= 0.0 || t1 <= t0) return 0.0;
  const auto n_bins = static_cast<std::size_t>((t1 - t0) / bin) + 1;
  std::vector<std::int64_t> flows_cutting(n_bins, 0);
  for (const auto& t : traces) {
    std::size_t last_marked = n_bins;  // avoid double-counting one flow
    for (std::size_t i = 1; i < t.points().size(); ++i) {
      const auto& [at, v] = t.points()[i];
      if (at < t0 || at >= t1) continue;
      if (v >= t.points()[i - 1].second) continue;
      const auto b = static_cast<std::size_t>((at - t0) / bin);
      if (b != last_marked && b < n_bins) {
        ++flows_cutting[b];
        last_marked = b;
      }
    }
  }
  std::int64_t max_count = 0;
  for (std::int64_t c : flows_cutting) max_count = std::max(max_count, c);
  return static_cast<double>(max_count) / static_cast<double>(traces.size());
}

std::vector<double> resample(const TraceSeries& trace, Time t0, Time t1,
                             Time dt, double fallback) {
  std::vector<double> out;
  if (dt <= 0.0) return out;
  for (Time at = t0; at < t1; at += dt) {
    out.push_back(trace.value_at(at, fallback));
  }
  return out;
}

std::vector<double> decrease_indicator(const TraceSeries& trace, Time bin,
                                       Time t0, Time t1) {
  std::vector<double> out;
  if (bin <= 0.0 || t1 <= t0) return out;
  // The epsilon keeps exact multiples (0.6/0.1) from losing their last bin
  // to floating-point truncation.
  const auto n_bins = static_cast<std::size_t>((t1 - t0) / bin + 1e-9);
  out.assign(n_bins, 0.0);
  for (std::size_t i = 1; i < trace.points().size(); ++i) {
    const auto& [at, v] = trace.points()[i];
    if (at < t0 || at >= t1 || v >= trace.points()[i - 1].second) continue;
    const auto b = static_cast<std::size_t>((at - t0) / bin);
    if (b < n_bins) out[b] = 1.0;
  }
  return out;
}

}  // namespace burst
