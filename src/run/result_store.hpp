// On-disk, content-addressed cache of ExperimentResults.
//
// Layout: one JSON-lines shard per store directory (`results.jsonl`),
// each line `{"key":"<32 hex>","schema":N,"result":{...}}`. The store is
// loaded fully at open; corrupt or truncated lines are counted and
// skipped with a warning (a crashed writer must never poison the cache),
// and entries from other schema versions are ignored, so bumping
// kResultSchemaVersion invalidates everything at once. Writes go through
// a temp file followed by an atomic rename, so readers never observe a
// half-written shard.
//
// The stored JSON covers every metric of ExperimentResult except the
// embedded Scenario — the key already binds the result to its scenario,
// and the campaign layer re-attaches the Scenario it planned with.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "src/core/experiment.hpp"
#include "src/run/scenario_key.hpp"

namespace burst {

/// Serializes every metric of @p r (not the Scenario) as one JSON object.
/// Doubles are printed with round-trip precision so a cached result is
/// bit-identical to the fresh one.
std::string result_to_json(const ExperimentResult& r);

/// Parses result_to_json output. Returns false on malformed/truncated
/// input; *out is untouched on failure.
bool result_from_json(const std::string& json, ExperimentResult* out);

class ResultStore {
 public:
  /// Opens (creating the directory and an empty shard if needed) and
  /// loads every valid entry for the current schema version.
  explicit ResultStore(std::string dir);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  std::optional<ExperimentResult> get(const ScenarioKey& key) const;
  bool contains(const ScenarioKey& key) const;

  /// Inserts/overwrites in memory; call flush() to persist.
  void put(const ScenarioKey& key, const ExperimentResult& result);

  /// Atomically rewrites the shard (tmp file + rename). Returns false on
  /// I/O failure. No-op when nothing changed since the last flush.
  bool flush();

  std::size_t size() const { return entries_.size(); }
  /// Lines skipped at load time (corrupt, truncated, or wrong schema).
  std::size_t skipped_entries() const { return skipped_; }
  const std::string& dir() const { return dir_; }
  std::string shard_path() const;

 private:
  std::string dir_;
  // Values stay serialized until asked for: cheap to load, and flush()
  // is a straight dump.
  std::unordered_map<ScenarioKey, std::string, ScenarioKeyHash> entries_;
  std::size_t skipped_ = 0;
  bool dirty_ = false;
};

}  // namespace burst
