// On-disk, content-addressed cache of ExperimentResults, safely shareable
// across processes (the campaign farm's coordination point).
//
// Layout: 16 JSON-lines segments per store directory, `shard-<x>.jsonl`
// with x = the first hex digit of the key (key.hi >> 60), each line
// `{"key":"<32 hex>","schema":N,"result":{...}}`. A pre-sharding
// `results.jsonl` is still read (last-wins, read-only) so old caches keep
// working. Segments are APPEND-ONLY under an advisory exclusive flock;
// loading takes a shared flock and tolerates a torn final line (the next
// writer heals it by prefixing a newline), so a crashed writer can never
// poison the cache. Corrupt or wrong-schema lines are counted and
// skipped; bumping kResultSchemaVersion invalidates everything at once.
// refresh() absorbs lines appended by other processes since open, by
// per-segment byte offset — cheap enough to poll.
//
// Claims: a worker that wants to simulate key K calls try_claim(K):
//   kDone     — K is already in the store (after a targeted refresh).
//   kAcquired — this worker owns K: simulate, then publish() (atomic
//               append + claim release) or abandon() on failure.
//   kBusy     — another live worker owns K; poll refresh() until its
//               result appears (or its claim goes stale).
// A claim is `claims/<32 hex>.claim`, created with O_EXCL and holding the
// owner's pid. Claims whose pid is dead — or which stayed empty longer
// than kEmptyClaimTtl — are stolen under `claims/.steal.lock`, which is
// what makes resume after a killed worker pick up exactly the unfinished
// points.
//
// The stored JSON covers every metric of ExperimentResult except the
// embedded Scenario — the key already binds the result to its scenario,
// and the campaign layer re-attaches the Scenario it planned with.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/core/experiment.hpp"
#include "src/run/scenario_key.hpp"

namespace burst {

/// Serializes every metric of @p r (not the Scenario) as one JSON object.
/// Doubles are printed with round-trip precision so a cached result is
/// bit-identical to the fresh one.
std::string result_to_json(const ExperimentResult& r);

/// Parses result_to_json output. Returns false on malformed/truncated
/// input; *out is untouched on failure.
bool result_from_json(const std::string& json, ExperimentResult* out);

/// Outcome of ResultStore::try_claim.
enum class ClaimStatus { kAcquired, kBusy, kDone };

class ResultStore {
 public:
  static constexpr int kNumSegments = 16;
  /// An empty claim file (writer died between create and write) older
  /// than this many seconds counts as stale and may be stolen.
  static constexpr double kEmptyClaimTtl = 30.0;

  /// Opens (creating the directory if needed) and loads every valid
  /// entry for the current schema version.
  explicit ResultStore(std::string dir);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  std::optional<ExperimentResult> get(const ScenarioKey& key) const;
  bool contains(const ScenarioKey& key) const;

  /// Inserts/overwrites in memory; call flush() to persist.
  void put(const ScenarioKey& key, const ExperimentResult& result);

  /// Appends every not-yet-persisted entry to its segment (exclusive
  /// flock, newline-heal, single write per segment). Absorbs concurrent
  /// appends it finds along the way. Returns false on I/O failure.
  /// No-op when nothing changed since the last flush.
  bool flush();

  /// Absorbs entries appended by other store handles (same or different
  /// process) since open or the last refresh.
  void refresh();

  /// Claim protocol — see the header comment.
  ClaimStatus try_claim(const ScenarioKey& key);
  /// put() + durable append of @p key's entry + claim release.
  void publish(const ScenarioKey& key, const ExperimentResult& result);
  /// Releases an acquired claim without publishing (simulation failed).
  void abandon(const ScenarioKey& key);

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return entries_.size();
  }
  /// Lines skipped at load time (corrupt, truncated, or wrong schema).
  std::size_t skipped_entries() const {
    std::lock_guard<std::mutex> lk(mu_);
    return skipped_;
  }
  const std::string& dir() const { return dir_; }

  static int segment_of(const ScenarioKey& key) {
    return static_cast<int>(key.hi >> 60);
  }
  /// `dir/shard-<x>.jsonl` for @p key's segment.
  std::string segment_path(const ScenarioKey& key) const;
  std::string segment_path(int segment) const;
  /// The pre-sharding single-shard path (read-only compatibility).
  std::string legacy_shard_path() const;
  std::string claim_path(const ScenarioKey& key) const;

 private:
  void load_legacy();
  /// Reads segment @p seg from its saved offset under a shared flock.
  /// @p keep_dirty: don't let absorbed lines overwrite unflushed puts.
  void refresh_segment(int seg, bool keep_dirty);
  bool flush_locked();
  bool steal_stale_claim(const std::string& path);

  /// Guards all in-memory state: campaign worker threads share one store
  /// handle (cross-process safety comes from flock + O_EXCL claims,
  /// cross-thread safety from this).
  mutable std::mutex mu_;
  std::string dir_;
  // Values stay serialized until asked for: cheap to load, and a flush
  // is a straight dump of the dirty set.
  std::unordered_map<ScenarioKey, std::string, ScenarioKeyHash> entries_;
  std::unordered_set<ScenarioKey, ScenarioKeyHash> dirty_keys_;
  std::array<std::uint64_t, kNumSegments> seg_offset_{};
  std::size_t skipped_ = 0;
};

}  // namespace burst
