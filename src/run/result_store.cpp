#include "src/run/result_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <vector>

namespace burst {
namespace {

// ---- Writing ----------------------------------------------------------

// max_digits10 digits round-trip any finite double exactly through strtod.
void append_double(std::ostringstream& os, double v) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
}

void append_field(std::ostringstream& os, const char* name, double v,
                  bool first = false) {
  if (!first) os << ',';
  os << '"' << name << "\":";
  append_double(os, v);
}

void append_field(std::ostringstream& os, const char* name, std::uint64_t v,
                  bool first = false) {
  if (!first) os << ',';
  os << '"' << name << "\":" << v;
}

// Trace names are generated labels ("client 7"); escape the JSON basics
// anyway so a hostile name cannot corrupt the shard line.
void append_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

// ---- Minimal JSON reader ----------------------------------------------
//
// Strict enough for the shard format: objects, arrays, strings, numbers.
// Numbers keep their raw token so integer fields can be re-parsed as
// uint64 without a double round-trip.

struct JsonReader {
  const char* p;
  const char* end;

  explicit JsonReader(const std::string& s)
      : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }

  bool read_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      out->push_back(*p++);
    }
    return consume('"');
  }

  bool read_number_token(std::string* out) {
    skip_ws();
    const char* start = p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                       *p == 'E' || *p == 'x' || *p == 'n' || *p == 'a' ||
                       *p == 'i' || *p == 'f')) {
      ++p;  // accepts nan/inf tokens so they fail conversion, not parsing
    }
    if (p == start) return false;
    out->assign(start, p);
    return true;
  }
};

bool token_to_double(const std::string& tok, double* out) {
  char* rest = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &rest);
  if (rest != tok.c_str() + tok.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool token_to_u64(const std::string& tok, std::uint64_t* out) {
  if (tok.empty() || tok[0] == '-') return false;
  char* rest = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(tok.c_str(), &rest, 10);
  if (rest != tok.c_str() + tok.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

// Reads `"name":<number>` with an optional leading comma.
bool read_num_field(JsonReader& r, const char* name, std::string* tok) {
  r.consume(',');
  std::string key;
  if (!r.read_string(&key) || key != name) return false;
  if (!r.consume(':')) return false;
  return r.read_number_token(tok);
}

bool read_double_field(JsonReader& r, const char* name, double* out) {
  std::string tok;
  return read_num_field(r, name, &tok) && token_to_double(tok, out);
}

bool read_u64_field(JsonReader& r, const char* name, std::uint64_t* out) {
  std::string tok;
  return read_num_field(r, name, &tok) && token_to_u64(tok, out);
}

}  // namespace
std::string result_to_json(const ExperimentResult& r) {
  std::ostringstream os;
  os << '{';
  append_field(os, "cov", r.cov, /*first=*/true);
  append_field(os, "poisson_cov", r.poisson_cov);
  append_field(os, "mean_per_bin", r.mean_per_bin);
  append_field(os, "app_generated", r.app_generated);
  append_field(os, "delivered", r.delivered);
  append_field(os, "gw_arrivals", r.gw_arrivals);
  append_field(os, "gw_drops", r.gw_drops);
  append_field(os, "loss_pct", r.loss_pct);
  append_field(os, "timeouts", r.timeouts);
  append_field(os, "fast_retransmits", r.fast_retransmits);
  append_field(os, "dupacks", r.dupacks);
  append_field(os, "retransmits", r.retransmits);
  append_field(os, "data_pkts_sent", r.data_pkts_sent);
  append_field(os, "timeout_dupack_ratio", r.timeout_dupack_ratio);
  append_field(os, "fairness", r.fairness);
  append_field(os, "routing_errors", r.routing_errors);
  // Deterministic scheduler counters; the wall-clock pair (sim_wall_s,
  // events_per_sec) is machine-dependent and deliberately not persisted.
  append_field(os, "sim_events", r.sim_events);
  append_field(os, "peak_pending", r.peak_pending);
  os << ",\"delay\":{";
  append_field(os, "n", r.delay.count(), /*first=*/true);
  append_field(os, "mean", r.delay.mean());
  append_field(os, "m2", r.delay.m2());
  append_field(os, "min", r.delay.min());
  append_field(os, "max", r.delay.max());
  os << "},\"cwnd_traces\":[";
  for (std::size_t i = 0; i < r.cwnd_traces.size(); ++i) {
    const TraceSeries& t = r.cwnd_traces[i];
    if (i) os << ',';
    os << "{\"name\":";
    append_string(os, t.name());
    os << ",\"points\":[";
    bool first = true;
    for (const auto& [time, value] : t.points()) {
      if (!first) os << ',';
      first = false;
      os << '[';
      append_double(os, time);
      os << ',';
      append_double(os, value);
      os << ']';
    }
    os << "]}";
  }
  os << "],\"metrics\":[";
  for (std::size_t i = 0; i < r.metrics.points.size(); ++i) {
    const MetricPoint& m = r.metrics.points[i];
    if (i) os << ',';
    os << "{\"name\":";
    append_string(os, m.name);
    os << ",\"kind\":" << static_cast<unsigned>(m.kind);
    append_field(os, "value", m.value);
    append_field(os, "sum", m.sum);
    os << ",\"bounds\":[";
    for (std::size_t j = 0; j < m.bounds.size(); ++j) {
      if (j) os << ',';
      append_double(os, m.bounds[j]);
    }
    os << "],\"buckets\":[";
    for (std::size_t j = 0; j < m.buckets.size(); ++j) {
      if (j) os << ',';
      os << m.buckets[j];
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

bool result_from_json(const std::string& json, ExperimentResult* out) {
  ExperimentResult r;
  JsonReader rd(json);
  if (!rd.consume('{')) return false;
  if (!read_double_field(rd, "cov", &r.cov)) return false;
  if (!read_double_field(rd, "poisson_cov", &r.poisson_cov)) return false;
  if (!read_double_field(rd, "mean_per_bin", &r.mean_per_bin)) return false;
  if (!read_u64_field(rd, "app_generated", &r.app_generated)) return false;
  if (!read_u64_field(rd, "delivered", &r.delivered)) return false;
  if (!read_u64_field(rd, "gw_arrivals", &r.gw_arrivals)) return false;
  if (!read_u64_field(rd, "gw_drops", &r.gw_drops)) return false;
  if (!read_double_field(rd, "loss_pct", &r.loss_pct)) return false;
  if (!read_u64_field(rd, "timeouts", &r.timeouts)) return false;
  if (!read_u64_field(rd, "fast_retransmits", &r.fast_retransmits)) {
    return false;
  }
  if (!read_u64_field(rd, "dupacks", &r.dupacks)) return false;
  if (!read_u64_field(rd, "retransmits", &r.retransmits)) return false;
  if (!read_u64_field(rd, "data_pkts_sent", &r.data_pkts_sent)) return false;
  if (!read_double_field(rd, "timeout_dupack_ratio", &r.timeout_dupack_ratio)) {
    return false;
  }
  if (!read_double_field(rd, "fairness", &r.fairness)) return false;
  if (!read_u64_field(rd, "routing_errors", &r.routing_errors)) return false;
  if (!read_u64_field(rd, "sim_events", &r.sim_events)) return false;
  if (!read_u64_field(rd, "peak_pending", &r.peak_pending)) return false;

  // delay accumulator.
  rd.consume(',');
  std::string key;
  if (!rd.read_string(&key) || key != "delay" || !rd.consume(':') ||
      !rd.consume('{')) {
    return false;
  }
  std::uint64_t n = 0;
  double mean = 0, m2 = 0, dmin = 0, dmax = 0;
  if (!read_u64_field(rd, "n", &n)) return false;
  if (!read_double_field(rd, "mean", &mean)) return false;
  if (!read_double_field(rd, "m2", &m2)) return false;
  if (!read_double_field(rd, "min", &dmin)) return false;
  if (!read_double_field(rd, "max", &dmax)) return false;
  if (!rd.consume('}')) return false;
  r.delay = RunningStats::from_moments(n, mean, m2, dmin, dmax);

  // cwnd traces.
  rd.consume(',');
  if (!rd.read_string(&key) || key != "cwnd_traces" || !rd.consume(':') ||
      !rd.consume('[')) {
    return false;
  }
  while (!rd.peek(']')) {
    if (!r.cwnd_traces.empty() && !rd.consume(',')) return false;
    if (!rd.consume('{')) return false;
    std::string name;
    if (!rd.read_string(&key) || key != "name" || !rd.consume(':') ||
        !rd.read_string(&name)) {
      return false;
    }
    TraceSeries trace(name);
    if (!rd.consume(',') || !rd.read_string(&key) || key != "points" ||
        !rd.consume(':') || !rd.consume('[')) {
      return false;
    }
    bool first_point = true;
    while (!rd.peek(']')) {
      if (!first_point && !rd.consume(',')) return false;
      first_point = false;
      std::string t_tok, v_tok;
      double t = 0, v = 0;
      if (!rd.consume('[') || !rd.read_number_token(&t_tok) ||
          !rd.consume(',') || !rd.read_number_token(&v_tok) ||
          !rd.consume(']') || !token_to_double(t_tok, &t) ||
          !token_to_double(v_tok, &v)) {
        return false;
      }
      trace.record(t, v);
    }
    if (!rd.consume(']') || !rd.consume('}')) return false;
    r.cwnd_traces.push_back(std::move(trace));
  }
  if (!rd.consume(']')) return false;

  // metrics snapshot (v3). Every point carries all fields; counters and
  // gauges just have empty bounds/buckets.
  rd.consume(',');
  if (!rd.read_string(&key) || key != "metrics" || !rd.consume(':') ||
      !rd.consume('[')) {
    return false;
  }
  while (!rd.peek(']')) {
    if (!r.metrics.points.empty() && !rd.consume(',')) return false;
    if (!rd.consume('{')) return false;
    MetricPoint m;
    if (!rd.read_string(&key) || key != "name" || !rd.consume(':') ||
        !rd.read_string(&m.name)) {
      return false;
    }
    std::uint64_t kind = 0;
    if (!read_u64_field(rd, "kind", &kind) || kind > 2) return false;
    m.kind = static_cast<MetricKind>(kind);
    if (!read_double_field(rd, "value", &m.value)) return false;
    if (!read_double_field(rd, "sum", &m.sum)) return false;
    rd.consume(',');
    if (!rd.read_string(&key) || key != "bounds" || !rd.consume(':') ||
        !rd.consume('[')) {
      return false;
    }
    bool first = true;
    while (!rd.peek(']')) {
      if (!first && !rd.consume(',')) return false;
      first = false;
      std::string tok;
      double v = 0;
      if (!rd.read_number_token(&tok) || !token_to_double(tok, &v)) {
        return false;
      }
      m.bounds.push_back(v);
    }
    if (!rd.consume(']')) return false;
    rd.consume(',');
    if (!rd.read_string(&key) || key != "buckets" || !rd.consume(':') ||
        !rd.consume('[')) {
      return false;
    }
    first = true;
    while (!rd.peek(']')) {
      if (!first && !rd.consume(',')) return false;
      first = false;
      std::string tok;
      std::uint64_t v = 0;
      if (!rd.read_number_token(&tok) || !token_to_u64(tok, &v)) return false;
      m.buckets.push_back(v);
    }
    if (!rd.consume(']') || !rd.consume('}')) return false;
    r.metrics.points.push_back(std::move(m));
  }
  if (!rd.consume(']') || !rd.consume('}')) return false;
  rd.skip_ws();
  if (rd.p != rd.end) return false;  // trailing garbage

  *out = std::move(r);
  return true;
}

// ---- Store ------------------------------------------------------------

namespace {

/// Splits the envelope `{"key":"<32 hex>","schema":N,"result":{...}}`.
/// We wrote it, so anything off-pattern is corruption.
bool parse_envelope(const std::string& line, ScenarioKey* key,
                    std::uint64_t* schema, std::string* payload) {
  const std::string key_prefix = "{\"key\":\"";
  if (line.rfind(key_prefix, 0) != 0 || line.size() <= 40) return false;
  if (!ScenarioKey::parse(std::string_view(line).substr(key_prefix.size(), 32),
                          key)) {
    return false;
  }
  const std::string schema_prefix = "\",\"schema\":";
  const std::size_t schema_at = key_prefix.size() + 32;
  if (line.compare(schema_at, schema_prefix.size(), schema_prefix) != 0) {
    return false;
  }
  const std::size_t num_at = schema_at + schema_prefix.size();
  const std::size_t comma = line.find(',', num_at);
  if (comma == std::string::npos ||
      !token_to_u64(line.substr(num_at, comma - num_at), schema)) {
    return false;
  }
  const std::string result_prefix = "\"result\":";
  if (line.compare(comma + 1, result_prefix.size(), result_prefix) != 0 ||
      line.back() != '}') {
    return false;
  }
  *payload = line.substr(comma + 1 + result_prefix.size(),
                         line.size() - comma - 2 - result_prefix.size());
  return true;
}

std::string render_envelope(const ScenarioKey& key, const std::string& json) {
  std::string line = "{\"key\":\"";
  line += key.hex();
  line += "\",\"schema\":";
  line += std::to_string(kResultSchemaVersion);
  line += ",\"result\":";
  line += json;
  line += "}\n";
  return line;
}

bool pread_all(int fd, char* buf, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd, buf + done, n - done,
                                static_cast<off_t>(off + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // shrank under us (should not happen)
    done += static_cast<std::size_t>(got);
  }
  return true;
}

bool pwrite_all(int fd, const char* buf, std::size_t n, std::uint64_t off) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t put = ::pwrite(fd, buf + done, n - done,
                                 static_cast<off_t>(off + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

/// RAII advisory lock on an open fd (blocking).
class FlockGuard {
 public:
  FlockGuard(int fd, int op) : fd_(fd) {
    while (::flock(fd_, op) != 0 && errno == EINTR) {
    }
  }
  ~FlockGuard() { ::flock(fd_, LOCK_UN); }
  FlockGuard(const FlockGuard&) = delete;
  FlockGuard& operator=(const FlockGuard&) = delete;

 private:
  int fd_;
};

}  // namespace

std::string ResultStore::segment_path(int segment) const {
  static const char* kHex = "0123456789abcdef";
  std::string path = dir_ + "/shard-";
  path += kHex[segment & 0xf];
  path += ".jsonl";
  return path;
}

std::string ResultStore::segment_path(const ScenarioKey& key) const {
  return segment_path(segment_of(key));
}

std::string ResultStore::legacy_shard_path() const {
  return dir_ + "/results.jsonl";
}

std::string ResultStore::claim_path(const ScenarioKey& key) const {
  return dir_ + "/claims/" + key.hex() + ".claim";
}

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    std::cerr << "result_store: cannot create " << dir_ << ": " << ec.message()
              << " (cache disabled for reads)\n";
    return;
  }
  load_legacy();
  for (int seg = 0; seg < kNumSegments; ++seg) {
    refresh_segment(seg, /*keep_dirty=*/false);
  }
  if (skipped_ > 0) {
    std::cerr << "result_store: skipped " << skipped_
              << " corrupt/stale entr" << (skipped_ == 1 ? "y" : "ies")
              << " in " << dir_ << " (will re-simulate)\n";
  }
}

ResultStore::~ResultStore() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!dirty_keys_.empty()) flush_locked();
}

void ResultStore::load_legacy() {
  std::ifstream in(legacy_shard_path());
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ScenarioKey key;
    std::uint64_t schema = 0;
    std::string payload;
    if (!parse_envelope(line, &key, &schema, &payload)) {
      ++skipped_;
      continue;
    }
    // A wrong-schema entry is not corruption, but it is unusable: skip.
    if (schema != kResultSchemaVersion) {
      ++skipped_;
      continue;
    }
    ExperimentResult parsed;
    if (!result_from_json(payload, &parsed)) {
      ++skipped_;
      continue;
    }
    entries_[key] = std::move(payload);
  }
}

void ResultStore::refresh_segment(int seg, bool keep_dirty) {
  const std::string path = segment_path(seg);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;  // segment not created yet
  std::string buf;
  {
    FlockGuard lock(fd, LOCK_SH);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return;
    }
    const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
    const std::uint64_t off = seg_offset_[static_cast<std::size_t>(seg)];
    if (size > off) {
      buf.resize(size - off);
      if (!pread_all(fd, buf.data(), buf.size(), off)) buf.clear();
    }
  }
  ::close(fd);

  // Consume whole lines only; a torn tail (crashed writer) stays pending
  // until the next writer heals it with a newline.
  const std::size_t last_nl = buf.rfind('\n');
  if (last_nl == std::string::npos) return;
  const std::size_t consumed = last_nl + 1;
  std::size_t start = 0;
  while (start < consumed) {
    const std::size_t nl = buf.find('\n', start);
    std::string line = buf.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    ScenarioKey key;
    std::uint64_t schema = 0;
    std::string payload;
    ExperimentResult parsed;
    if (!parse_envelope(line, &key, &schema, &payload) ||
        schema != kResultSchemaVersion || !result_from_json(payload, &parsed)) {
      ++skipped_;
      continue;
    }
    if (keep_dirty && dirty_keys_.count(key) > 0) continue;
    entries_[key] = std::move(payload);
  }
  seg_offset_[static_cast<std::size_t>(seg)] += consumed;
}

void ResultStore::refresh() {
  std::lock_guard<std::mutex> lk(mu_);
  for (int seg = 0; seg < kNumSegments; ++seg) {
    refresh_segment(seg, /*keep_dirty=*/true);
  }
}

std::optional<ExperimentResult> ResultStore::get(const ScenarioKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  ExperimentResult r;
  if (!result_from_json(it->second, &r)) return std::nullopt;
  return r;
}

bool ResultStore::contains(const ScenarioKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(key) > 0;
}

void ResultStore::put(const ScenarioKey& key, const ExperimentResult& result) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_[key] = result_to_json(result);
  dirty_keys_.insert(key);
}

bool ResultStore::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  return flush_locked();
}

bool ResultStore::flush_locked() {
  if (dirty_keys_.empty()) return true;
  // Group the dirty set by segment so each segment is locked once.
  std::array<std::vector<ScenarioKey>, kNumSegments> by_seg;
  for (const ScenarioKey& key : dirty_keys_) {
    by_seg[static_cast<std::size_t>(segment_of(key))].push_back(key);
  }
  bool ok = true;
  for (int seg = 0; seg < kNumSegments; ++seg) {
    auto& keys = by_seg[static_cast<std::size_t>(seg)];
    if (keys.empty()) continue;
    const std::string path = segment_path(seg);
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      std::cerr << "result_store: cannot write " << path << '\n';
      ok = false;
      continue;
    }
    {
      FlockGuard lock(fd, LOCK_EX);
      struct stat st{};
      if (::fstat(fd, &st) != 0) {
        std::cerr << "result_store: cannot stat " << path << '\n';
        ::close(fd);
        ok = false;
        continue;
      }
      const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
      // Heal a torn final line left by a crashed writer: our batch starts
      // with a newline so the torn bytes become one (skippable) garbage
      // line instead of corrupting our first entry.
      bool need_heal = false;
      if (size > 0) {
        char last = '\n';
        if (pread_all(fd, &last, 1, size - 1)) need_heal = last != '\n';
      }
      std::string batch;
      if (need_heal) batch += '\n';
      for (const ScenarioKey& key : keys) {
        batch += render_envelope(key, entries_[key]);
      }
      if (!pwrite_all(fd, batch.data(), batch.size(), size)) {
        std::cerr << "result_store: short write to " << path << '\n';
        ::close(fd);
        ok = false;
        continue;
      }
      // Skip our own bytes on the next refresh. Anything a concurrent
      // writer appended before our lock sits below `size` and is picked
      // up by the next refresh_segment pass, which stops at offsets, not
      // at our entries (offset may lag but never overtakes).
      if (seg_offset_[static_cast<std::size_t>(seg)] == size) {
        seg_offset_[static_cast<std::size_t>(seg)] = size + batch.size();
      }
    }
    ::close(fd);
    for (const ScenarioKey& key : keys) dirty_keys_.erase(key);
  }
  return ok;
}

// ---- Claims -----------------------------------------------------------

namespace {

/// True when the claim at @p path no longer protects live work: its
/// recorded pid is gone, or it stayed empty past the TTL.
bool claim_is_stale(const std::string& path, double empty_ttl) {
  std::ifstream in(path);
  if (!in) return true;  // vanished: owner released it
  std::string tag;
  long long pid = 0;
  if (in >> tag >> pid && tag == "pid" && pid > 0) {
    if (::kill(static_cast<pid_t>(pid), 0) == 0) return false;  // alive
    return errno == ESRCH;  // EPERM = alive under another uid
  }
  // Empty or garbled: the owner crashed between create and write, or is
  // about to write. Give it the TTL.
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return true;
  const double age =
      std::difftime(std::time(nullptr), static_cast<std::time_t>(st.st_mtime));
  return age > empty_ttl;
}

}  // namespace

bool ResultStore::steal_stale_claim(const std::string& path) {
  const std::string lock_path = dir_ + "/claims/.steal.lock";
  const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return false;
  bool stolen = false;
  {
    FlockGuard lock(fd, LOCK_EX);
    // Re-check under the lock: another worker may have stolen and
    // re-claimed (a live claim) in the window.
    if (claim_is_stale(path, kEmptyClaimTtl)) {
      ::unlink(path.c_str());  // ENOENT is fine — same outcome
      stolen = true;
    }
  }
  ::close(fd);
  return stolen;
}

ClaimStatus ResultStore::try_claim(const ScenarioKey& key) {
  std::lock_guard<std::mutex> lk(mu_);
  refresh_segment(segment_of(key), /*keep_dirty=*/true);
  if (entries_.count(key) > 0) return ClaimStatus::kDone;
  std::error_code ec;
  std::filesystem::create_directories(dir_ + "/claims", ec);
  if (ec) return ClaimStatus::kBusy;
  const std::string path = claim_path(key);
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string body = "pid " + std::to_string(::getpid()) + "\n";
      if (!pwrite_all(fd, body.data(), body.size(), 0)) {
        ::close(fd);
        ::unlink(path.c_str());
        return ClaimStatus::kBusy;
      }
      ::close(fd);
      return ClaimStatus::kAcquired;
    }
    if (errno != EEXIST) return ClaimStatus::kBusy;
    // Someone holds it. A fresh look at the store first: they may have
    // published and released between our refresh and the open.
    refresh_segment(segment_of(key), /*keep_dirty=*/true);
    if (entries_.count(key) > 0) return ClaimStatus::kDone;
    if (!claim_is_stale(path, kEmptyClaimTtl)) return ClaimStatus::kBusy;
    if (!steal_stale_claim(path)) return ClaimStatus::kBusy;
    // Stolen: retry the exclusive create (racing stealers converge here).
  }
  return ClaimStatus::kBusy;
}

void ResultStore::publish(const ScenarioKey& key,
                          const ExperimentResult& result) {
  std::lock_guard<std::mutex> lk(mu_);
  entries_[key] = result_to_json(result);
  dirty_keys_.insert(key);
  flush_locked();
  ::unlink(claim_path(key).c_str());
}

void ResultStore::abandon(const ScenarioKey& key) {
  ::unlink(claim_path(key).c_str());
}

}  // namespace burst
