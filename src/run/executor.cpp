#include "src/run/executor.hpp"

#include <algorithm>

namespace burst {

Executor::Executor(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::worker_loop() {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] {
      return shutdown_ || batch_generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = batch_generation_;
    lk.unlock();
    work_on_batch();
    lk.lock();
  }
}

void Executor::work_on_batch() {
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_acq_rel);
    const std::size_t total = total_.load(std::memory_order_relaxed);
    if (i >= total) return;
    if (!cancelled()) {
      try {
        (*task_)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++finished_;
    if (progress_) {
      ExecutorProgress p;
      p.done = finished_;
      p.total = total;
      p.elapsed_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - batch_start_)
                        .count();
      p.eta_s = p.done == 0
                    ? 0.0
                    : p.elapsed_s *
                          static_cast<double>(p.total - p.done) /
                          static_cast<double>(p.done);
      p.tasks_per_sec =
          p.elapsed_s > 0.0 ? static_cast<double>(p.done) / p.elapsed_s : 0.0;
      (*progress_)(p);
    }
    if (finished_ == total) done_cv_.notify_all();
  }
}

void Executor::run(std::size_t num_tasks,
                   const std::function<void(std::size_t)>& task,
                   const std::function<void(const ExecutorProgress&)>& progress) {
  if (num_tasks == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  total_.store(num_tasks, std::memory_order_relaxed);
  task_ = &task;
  progress_ = progress ? &progress : nullptr;
  finished_ = 0;
  first_error_ = nullptr;
  cancelled_.store(false, std::memory_order_relaxed);
  // Release: claims ordered after the batch fields above are visible.
  next_.store(0, std::memory_order_release);
  batch_start_ = std::chrono::steady_clock::now();
  ++batch_generation_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return finished_ == num_tasks; });
  task_ = nullptr;
  progress_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace burst
