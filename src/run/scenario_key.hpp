// Canonical, versioned fingerprints for (Scenario, ExperimentOptions)
// pairs — the cache key of the campaign subsystem.
//
// Two runs are interchangeable iff every field that can influence an
// ExperimentResult is identical; the key is a 128-bit hash of a canonical
// textual rendering of all of them. The rendering is salted with
// kResultSchemaVersion so that cache entries become unreachable (and are
// re-simulated) whenever result semantics change — bump the constant when
// touching run_experiment's metrics or the store's serialization.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/experiment.hpp"
#include "src/core/scenario.hpp"

namespace burst {

/// Bump whenever ExperimentResult's meaning or serialization changes.
/// v2: RED drop-probability off-by-one and c.o.v. bin-boundary fixes
///     changed metric values; sim_events/peak_pending joined the
///     serialized result. v1 entries are stale on all three counts.
/// v3: component metrics snapshot (counters + queue-occupancy histogram)
///     joined the serialized result; v2 entries lack the field.
inline constexpr std::uint32_t kResultSchemaVersion = 3;

/// Version of the *topology extension* of the key (the fields appended by
/// scenario_key_with_topology). Bump when the canonical topology
/// rendering changes meaning. Independent of kResultSchemaVersion: plain
/// (non-topology) keys never carry it, so existing fingerprints — and the
/// five pinned identity hashes — are untouched by bumps here.
inline constexpr std::uint32_t kTopoKeyVersion = 1;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation
/// (Steele et al., "Fast splittable pseudorandom number generators").
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a over bytes; the streaming primitive behind the fingerprint.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 14695981039346656037ULL);

/// Decorrelates per-point RNG seeds: a splitmix64 chain over (base seed,
/// series name, point value). Unlike the old affine formula
/// (base + 1000003*c + 17*p) this cannot collide on realistic grids, and
/// because it keys on the *values* (series name, client count) rather
/// than loop indices, the same scenario gets the same seed no matter
/// which figure or sweep ordering produced it — the property the result
/// cache's cross-figure dedup relies on.
std::uint64_t derive_seed(std::uint64_t base_seed, std::string_view series,
                          std::int64_t point);

/// A 128-bit fingerprint, printable as 32 lowercase hex digits.
struct ScenarioKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  std::string hex() const;
  /// Parses 32 hex digits; returns false (and leaves *out alone) otherwise.
  static bool parse(std::string_view s, ScenarioKey* out);

  friend bool operator==(const ScenarioKey&, const ScenarioKey&) = default;
};

struct ScenarioKeyHash {
  std::size_t operator()(const ScenarioKey& k) const {
    return static_cast<std::size_t>(k.hi ^ splitmix64(k.lo));
  }
};

/// The canonical rendering the key hashes: every Scenario and
/// ExperimentOptions field as `name=value;`, doubles in hexfloat so the
/// text is bit-exact. Exposed for tests and debugging.
std::string canonical_string(const Scenario& s,
                             const ExperimentOptions& opts = {});

/// Fingerprint of one experiment: hash of canonical_string, salted with
/// kResultSchemaVersion.
ScenarioKey scenario_key(const Scenario& s, const ExperimentOptions& opts = {});

/// Fingerprint of an experiment run on an explicit topology. The key
/// hashes the plain canonical string with versioned topology fields
/// appended (`topo_v=<kTopoKeyVersion>;topo=<canonical graph>;`), so a
/// topology-built scenario can never collide with — or be served from the
/// cache of — the hard-coded dumbbell path unless the caller chose the
/// plain key on purpose (see topo_key() in src/topo, which does exactly
/// that for graphs that are canonically the dumbbell).
ScenarioKey scenario_key_with_topology(const Scenario& s,
                                       std::string_view topo_canonical,
                                       const ExperimentOptions& opts = {});

}  // namespace burst
