// A reusable worker pool for embarrassingly-parallel simulation batches.
//
// Work distribution is an atomic claim counter over the task index space
// (the degenerate-but-optimal form of work stealing for a flat batch:
// every idle worker "steals" the next unclaimed index, so load imbalance
// is bounded by one task). Threads persist across run() calls, so a
// campaign of many batches pays thread start-up once.
//
// Determinism: tasks are identified by index, never by worker thread, so
// any per-task randomness must be derived from the index (see
// derive_seed in scenario_key.hpp). Results are written by index too —
// thread count and scheduling cannot change the output.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace burst {

struct ExecutorProgress {
  std::size_t done = 0;
  std::size_t total = 0;
  double elapsed_s = 0.0;
  /// Linear-extrapolation estimate of remaining wall time; 0 until the
  /// first task finishes.
  double eta_s = 0.0;
  /// Completed tasks per wall second so far; 0 until time has elapsed.
  double tasks_per_sec = 0.0;
};

class Executor {
 public:
  /// @p num_threads 0 means std::thread::hardware_concurrency().
  explicit Executor(unsigned num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs task(0..num_tasks-1) across the pool and blocks until all are
  /// finished (or cancelled). @p progress, if set, is invoked after every
  /// task completion, serialized (never concurrently with itself). If a
  /// task throws, the first exception is rethrown here after the batch
  /// drains. Not reentrant: one run() at a time.
  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& task,
           const std::function<void(const ExecutorProgress&)>& progress = {});

  /// Makes workers skip tasks not yet started; run() still returns after
  /// in-flight tasks finish. Sticky until the next run().
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();
  void work_on_batch();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new batch / shutdown
  std::condition_variable done_cv_;  // signals run(): batch drained
  std::uint64_t batch_generation_ = 0;
  bool shutdown_ = false;

  // Current batch. total_ and next_ are atomic because stale-batch
  // workers may peek at them outside mu_; publishing a batch stores
  // next_ with release ordering after the other fields are set, and the
  // workers' claim fetch_add acquires it.
  std::atomic<std::size_t> total_{0};
  const std::function<void(std::size_t)>* task_ = nullptr;
  const std::function<void(const ExecutorProgress&)>* progress_ = nullptr;
  std::chrono::steady_clock::time_point batch_start_;
  std::atomic<std::size_t> next_{0};
  std::size_t finished_ = 0;  // guarded by mu_
  std::exception_ptr first_error_;  // guarded by mu_
  std::atomic<bool> cancelled_{false};
};

}  // namespace burst
