#include "src/run/scenario_key.hpp"

#include <iomanip>
#include <sstream>

namespace burst {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::string_view series,
                          std::int64_t point) {
  std::uint64_t h = splitmix64(base_seed);
  h = splitmix64(h ^ fnv1a64(series));
  h = splitmix64(h ^ static_cast<std::uint64_t>(point));
  return h;
}

std::string ScenarioKey::hex() const {
  std::ostringstream os;
  os << std::hex << std::setfill('0') << std::setw(16) << hi << std::setw(16)
     << lo;
  return os.str();
}

bool ScenarioKey::parse(std::string_view s, ScenarioKey* out) {
  if (s.size() != 32) return false;
  std::uint64_t parts[2] = {0, 0};
  for (int half = 0; half < 2; ++half) {
    for (int i = 0; i < 16; ++i) {
      const char c = s[16 * half + i];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return false;
      }
      parts[half] = (parts[half] << 4) | digit;
    }
  }
  out->hi = parts[0];
  out->lo = parts[1];
  return true;
}

namespace {

// Appends name=value; pairs. Doubles render as hexfloat: bit-exact, so
// the canonical string (and therefore the key) never depends on locale
// or decimal rounding.
class Canon {
 public:
  Canon& field(std::string_view name, double v) {
    os_ << name << '=' << std::hexfloat << v << ';';
    return *this;
  }
  Canon& field(std::string_view name, std::int64_t v) {
    os_ << name << '=' << std::dec << v << ';';
    return *this;
  }
  Canon& field(std::string_view name, std::uint64_t v) {
    os_ << name << '=' << std::dec << v << ';';
    return *this;
  }
  Canon& field(std::string_view name, bool v) {
    os_ << name << '=' << (v ? 1 : 0) << ';';
    return *this;
  }
  Canon& field(std::string_view name, std::string_view v) {
    os_ << name << '=' << v << ';';
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace

std::string canonical_string(const Scenario& s, const ExperimentOptions& opts) {
  Canon c;
  c.field("schema", static_cast<std::uint64_t>(kResultSchemaVersion));
  // Experiment axes.
  c.field("num_clients", static_cast<std::int64_t>(s.num_clients));
  c.field("transport", to_string(s.transport));
  c.field("gateway", to_string(s.gateway));
  c.field("delayed_ack", s.delayed_ack);
  c.field("ecn", s.ecn);
  c.field("adaptive_red", s.adaptive_red);
  c.field("limited_transmit", s.limited_transmit);
  c.field("cwnd_validation", s.cwnd_validation);
  // Appended only when active so every pre-existing scenario keeps its
  // historical key (and topo fingerprint) byte-for-byte.
  if (s.meanfield_base != 0) {
    c.field("meanfield_base", static_cast<std::int64_t>(s.meanfield_base));
  }
  // Table 1.
  c.field("client_bw_bps", s.client_bw_bps);
  c.field("client_delay", s.client_delay);
  c.field("client_delay_spread", s.client_delay_spread);
  c.field("bottleneck_bw_bps", s.bottleneck_bw_bps);
  c.field("bottleneck_delay", s.bottleneck_delay);
  c.field("advertised_window", s.advertised_window);
  c.field("gateway_buffer", static_cast<std::uint64_t>(s.gateway_buffer));
  c.field("payload_bytes", static_cast<std::int64_t>(s.payload_bytes));
  c.field("mean_interarrival", s.mean_interarrival);
  c.field("duration", s.duration);
  c.field("red_min_th", s.red_min_th);
  c.field("red_max_th", s.red_max_th);
  c.field("vegas_alpha", s.vegas.alpha);
  c.field("vegas_beta", s.vegas.beta);
  c.field("vegas_gamma", s.vegas.gamma);
  // Modeling knobs.
  c.field("red_weight", s.red_weight);
  c.field("red_max_p", s.red_max_p);
  c.field("rto_granularity", s.rto.granularity);
  c.field("rto_min", s.rto.min_rto);
  c.field("rto_max", s.rto.max_rto);
  c.field("rto_initial", s.rto.initial_rto);
  c.field("warmup", s.warmup);
  c.field("client_queue_buffer",
          static_cast<std::uint64_t>(s.client_queue_buffer));
  c.field("seed", s.seed);
  // Experiment options.
  {
    std::ostringstream tc;
    for (const int i : opts.trace_clients) tc << i << ',';
    c.field("trace_clients", tc.str());
  }
  c.field("cwnd_sample_period", opts.cwnd_sample_period);
  // Parallel runs are deterministic per shard count but may order exact
  // same-instant ties differently than the sequential engine, so the
  // cache must key on the shard count. Appended only when > 1 so every
  // sequential scenario keeps its historical key byte-for-byte.
  if (opts.lp_shards > 1) {
    c.field("lp_shards", static_cast<std::int64_t>(opts.lp_shards));
  }
  return c.str();
}

namespace {

ScenarioKey key_of_canonical(const std::string& canon) {
  ScenarioKey key;
  key.hi = fnv1a64(canon);
  // Second, independent hash: different FNV offset basis, then a splitmix
  // pass so the halves never agree by construction.
  key.lo = splitmix64(fnv1a64(canon, 0xcbf29ce484222325ULL ^ key.hi));
  return key;
}

}  // namespace

ScenarioKey scenario_key(const Scenario& s, const ExperimentOptions& opts) {
  return key_of_canonical(canonical_string(s, opts));
}

ScenarioKey scenario_key_with_topology(const Scenario& s,
                                       std::string_view topo_canonical,
                                       const ExperimentOptions& opts) {
  std::string canon = canonical_string(s, opts);
  canon += "topo_v=";
  canon += std::to_string(kTopoKeyVersion);
  canon += ";topo=";
  canon += topo_canonical;
  canon += ';';
  return key_of_canonical(canon);
}

}  // namespace burst
