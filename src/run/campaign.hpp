// Campaigns: declarative batches of client-count sweeps that run once
// per *unique* scenario instead of once per figure.
//
// A campaign is planned as the union of (sweep × config × client-count)
// points; identical scenarios (same fingerprint, see scenario_key.hpp)
// are deduplicated across sweeps, looked up in an optional on-disk
// ResultStore, and only the misses are simulated — through the shared
// Executor, with per-point seeds derived from values (not loop indices)
// so the cached and uncached paths are bit-identical. Artifacts are a
// per-sweep CSV plus a manifest.json recording seeds, cache hit/miss
// counts, wall time and the build version.
#pragma once

#include <array>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/sweep.hpp"
#include "src/obs/profile.hpp"
#include "src/run/executor.hpp"

namespace burst {

/// One named sweep: base scenario × configs × client counts, plus the
/// metric its CSV artifact reports.
struct CampaignSweep {
  std::string name;         // artifact stem, e.g. "fig02_cov"
  std::string metric_name;  // human label for the metric column group
  Scenario base;
  std::vector<int> client_counts;
  std::vector<SweepConfig> configs;
  double (*metric)(const ExperimentResult&) = nullptr;
};

struct CampaignOptions {
  /// Directory holding the ResultStore shard; empty disables caching.
  std::string cache_dir;
  /// --no-cache: when false, the store is neither read nor written.
  bool use_cache = true;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Where CSVs + manifest.json go; empty disables artifacts.
  std::string artifact_dir;
  /// Progress / summary lines go here when set (e.g. &std::cerr). Each
  /// line is flushed as written so progress is visible on non-TTY
  /// stdout/stderr (pipes, CI logs).
  std::ostream* log = nullptr;
  /// Installs a per-task Profiler around every simulated scenario and
  /// reports per-phase wall shares (dispatch/transport/queue/other) in
  /// CampaignStats and the log summary. Costs two clock reads per
  /// instrumented scope; leave off for benchmark-comparable timings.
  bool profile = false;
  /// Logical processes per simulated scenario (conservative parallel
  /// engine, DESIGN.md §13). 1 = sequential. Values > 1 salt every
  /// scenario key, so parallel campaigns never share cache entries with
  /// sequential ones; combine with --threads=1 to avoid oversubscribing
  /// cores (each miss then runs lp_shards LP threads itself).
  int lp_shards = 1;
};

struct CampaignStats {
  std::size_t planned = 0;     // sweep × config × count points
  std::size_t unique = 0;      // after cross-sweep dedup
  std::size_t cache_hits = 0;  // unique scenarios served from the store
  std::size_t simulated = 0;   // unique scenarios actually run HERE
  std::size_t farmed_out = 0;  // misses another worker simulated for us
  std::size_t store_skipped = 0;  // corrupt/stale store lines at load
  double wall_s = 0.0;

  // Scheduler perf counters aggregated over the *simulated* (cache-miss)
  // scenarios of this run; all zero on a fully cached campaign.
  std::uint64_t sim_events = 0;      // total events executed
  std::uint64_t peak_pending_max = 0;  // largest heap seen in any run
  double sim_wall_s = 0.0;           // summed per-run simulation wall time
  double events_per_sec = 0.0;       // sim_events / sim_wall_s

  /// Per-phase self-time seconds summed over all simulated tasks, indexed
  /// by ProfilePhase. All zero unless CampaignOptions::profile was set.
  std::array<double, kProfilePhases> phase_seconds{};

  /// Per-LP totals (events, messages, run vs barrier-wait wall seconds)
  /// summed over the simulated tasks; one entry per logical process.
  /// Empty unless lp_shards > 1 (cache hits carry no phase data).
  std::vector<LpPhase> lp_phases;
};

struct CampaignOutput {
  /// Per-sweep results, in input order, in sweep_clients's shape.
  std::vector<std::pair<std::string, std::vector<SweepSeries>>> sweeps;
  CampaignStats stats;
};

/// Plans, runs and (optionally) persists a campaign. Blocking.
CampaignOutput run_campaign(const std::vector<CampaignSweep>& sweeps,
                            const CampaignOptions& opts = {});

/// The full paper figure set (Figs 2, 3, 4, 13) over @p base. Figures 3,
/// 4 and 13 share every simulation (same scenarios, different metric
/// column), so the campaign runs ~half the naive task count.
std::vector<CampaignSweep> paper_figure_campaign(const Scenario& base);

/// The seed a campaign (and sweep_clients) assigns to one point.
std::uint64_t campaign_point_seed(const Scenario& base,
                                  const std::string& config_name,
                                  int num_clients);

}  // namespace burst
