#include "src/run/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/core/report.hpp"
#include "src/run/result_store.hpp"

#ifndef BURST_VERSION_STRING
#define BURST_VERSION_STRING "unversioned"
#endif

namespace burst {
namespace {

struct PlannedPoint {
  std::size_t sweep = 0;
  std::size_t config = 0;
  std::size_t point = 0;
  std::size_t unique_index = 0;  // into the deduplicated task list
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  return out;
}

}  // namespace

std::uint64_t campaign_point_seed(const Scenario& base,
                                  const std::string& config_name,
                                  int num_clients) {
  return derive_seed(base.seed, config_name, num_clients);
}

CampaignOutput run_campaign(const std::vector<CampaignSweep>& sweeps,
                            const CampaignOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  CampaignOutput out;

  // Every point of a parallel campaign runs (and is keyed) with the same
  // shard count; the salted key keeps lp>1 results out of sequential
  // caches and vice versa.
  ExperimentOptions eopts;
  eopts.lp_shards = opts.lp_shards;

  // ---- Plan: expand every sweep and dedup identical scenarios. --------
  std::vector<PlannedPoint> plan;
  std::vector<Scenario> unique_scenarios;
  std::vector<ScenarioKey> unique_keys;
  std::unordered_map<ScenarioKey, std::size_t, ScenarioKeyHash> by_key;
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const CampaignSweep& sweep = sweeps[s];
    for (std::size_t c = 0; c < sweep.configs.size(); ++c) {
      for (std::size_t p = 0; p < sweep.client_counts.size(); ++p) {
        Scenario sc = sweep.base;
        sc.num_clients = sweep.client_counts[p];
        sweep.configs[c].apply(sc);
        sc.seed = campaign_point_seed(sweep.base, sweep.configs[c].name,
                                      sweep.client_counts[p]);
        const ScenarioKey key = scenario_key(sc, eopts);
        const auto [it, inserted] = by_key.emplace(key, unique_scenarios.size());
        if (inserted) {
          unique_scenarios.push_back(sc);
          unique_keys.push_back(key);
        }
        plan.push_back(PlannedPoint{s, c, p, it->second});
      }
    }
  }
  out.stats.planned = plan.size();
  out.stats.unique = unique_scenarios.size();

  // ---- Probe the cache. -----------------------------------------------
  std::unique_ptr<ResultStore> store;
  if (opts.use_cache && !opts.cache_dir.empty()) {
    store = std::make_unique<ResultStore>(opts.cache_dir);
    out.stats.store_skipped = store->skipped_entries();
  }
  std::vector<ExperimentResult> results(unique_scenarios.size());
  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < unique_scenarios.size(); ++i) {
    bool hit = false;
    if (store) {
      if (auto cached = store->get(unique_keys[i])) {
        results[i] = std::move(*cached);
        results[i].scenario = unique_scenarios[i];
        hit = true;
      }
    }
    if (hit) {
      ++out.stats.cache_hits;
    } else {
      misses.push_back(i);
    }
  }
  if (opts.log) {
    *opts.log << "campaign: " << out.stats.planned << " points, "
              << out.stats.unique << " unique scenarios, "
              << out.stats.cache_hits << " cache hits, " << misses.size()
              << " to simulate" << std::endl;
  }

  // ---- Simulate the misses. -------------------------------------------
  if (!misses.empty()) {
    unsigned threads = opts.threads;
    if (threads == 0) {
      threads = static_cast<unsigned>(
          std::min<std::size_t>(std::max(1u, std::thread::hardware_concurrency()),
                                misses.size()));
    }
    Executor executor(threads);
    // Live counters fed by completing tasks; the progress callback reads
    // them to report a running events/s (simulated events over elapsed
    // wall), which tracks throughput even when task sizes are skewed.
    std::atomic<std::uint64_t> events_done{0};
    std::atomic<std::size_t> simulated{0};
    std::atomic<std::size_t> farmed{0};
    std::mutex profile_mu;
    Profiler profile_total;
    std::vector<LpPhase> lp_totals;
    std::vector<std::uint64_t> lp_scenarios;  // contributing runs per LP
    // Log at most ~20 progress lines regardless of batch size, and flush
    // each one: on a pipe or CI log nothing shows up otherwise.
    const std::size_t stride = std::max<std::size_t>(1, misses.size() / 20);
    const auto progress = [&](const ExecutorProgress& p) {
      if (!opts.log) return;
      if (p.done % stride != 0 && p.done != p.total) return;
      const double mev_s =
          p.elapsed_s > 0.0
              ? static_cast<double>(
                    events_done.load(std::memory_order_relaxed)) /
                    p.elapsed_s / 1e6
              : 0.0;
      *opts.log << "campaign: " << p.done << "/" << p.total
                << " simulated, elapsed " << fmt(p.elapsed_s, 1) << " s, ETA "
                << fmt(p.eta_s, 1) << " s (" << fmt(p.tasks_per_sec, 2)
                << " runs/s, " << fmt(mev_s, 2) << " M events/s)"
                << std::endl;
    };
    const auto simulate_point = [&](std::size_t ui) {
      if (opts.profile) {
        Profiler prof;
        Profiler* prev = Profiler::install(&prof);
        results[ui] = run_experiment(unique_scenarios[ui], eopts);
        Profiler::install(prev);
        std::lock_guard<std::mutex> lk(profile_mu);
        profile_total.absorb(prof);
      } else {
        results[ui] = run_experiment(unique_scenarios[ui], eopts);
      }
      if (!results[ui].lp_phases.empty()) {
        std::lock_guard<std::mutex> lk(profile_mu);
        if (lp_totals.size() < results[ui].lp_phases.size()) {
          lp_totals.resize(results[ui].lp_phases.size());
          lp_scenarios.resize(results[ui].lp_phases.size(), 0);
        }
        for (std::size_t lp = 0; lp < results[ui].lp_phases.size(); ++lp) {
          const LpPhase& p = results[ui].lp_phases[lp];
          lp_totals[lp].lp = p.lp;
          lp_totals[lp].events += p.events;
          lp_totals[lp].windows += p.windows;
          lp_totals[lp].msgs_in += p.msgs_in;
          lp_totals[lp].msgs_out += p.msgs_out;
          // High-water marks take the campaign-wide max; overflows sum;
          // the mean horizon advance accumulates here and is divided by
          // lp_scenarios once the batch completes.
          lp_totals[lp].merge_high_water =
              std::max(lp_totals[lp].merge_high_water, p.merge_high_water);
          lp_totals[lp].chan_high_water =
              std::max(lp_totals[lp].chan_high_water, p.chan_high_water);
          lp_totals[lp].chan_overflows += p.chan_overflows;
          lp_totals[lp].horizon_advance_mean += p.horizon_advance_mean;
          lp_totals[lp].run_s += p.run_s;
          lp_totals[lp].wait_s += p.wait_s;
          ++lp_scenarios[lp];
        }
      }
      simulated.fetch_add(1, std::memory_order_relaxed);
    };
    executor.run(
        misses.size(),
        [&](std::size_t i) {
          const std::size_t ui = misses[i];
          if (!store) {
            simulate_point(ui);
          } else {
            // Claim protocol: exactly one worker (thread here, process in
            // the campaign farm) simulates each point; the rest wait for
            // its published result instead of duplicating the work.
            for (bool settled = false; !settled;) {
              switch (store->try_claim(unique_keys[ui])) {
                case ClaimStatus::kAcquired:
                  simulate_point(ui);
                  store->publish(unique_keys[ui], results[ui]);
                  settled = true;
                  break;
                case ClaimStatus::kDone:
                  if (auto cached = store->get(unique_keys[ui])) {
                    results[ui] = std::move(*cached);
                    results[ui].scenario = unique_scenarios[ui];
                    farmed.fetch_add(1, std::memory_order_relaxed);
                  } else {
                    // Entry vanished between claim check and get (should
                    // not happen — the store never forgets); simulate
                    // locally rather than hang.
                    simulate_point(ui);
                  }
                  settled = true;
                  break;
                case ClaimStatus::kBusy:
                  std::this_thread::sleep_for(std::chrono::milliseconds(50));
                  break;
              }
            }
          }
          events_done.fetch_add(results[ui].sim_events,
                                std::memory_order_relaxed);
        },
        opts.log ? progress : std::function<void(const ExecutorProgress&)>{});
    for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
      out.stats.phase_seconds[ph] =
          profile_total.seconds(static_cast<ProfilePhase>(ph));
    }
    for (std::size_t lp = 0; lp < lp_totals.size(); ++lp) {
      if (lp_scenarios[lp] > 0) {
        lp_totals[lp].horizon_advance_mean /=
            static_cast<double>(lp_scenarios[lp]);
      }
    }
    out.stats.lp_phases = std::move(lp_totals);
    out.stats.simulated = simulated.load();
    out.stats.farmed_out = farmed.load();
    if (opts.log && out.stats.farmed_out > 0) {
      *opts.log << "campaign: " << out.stats.farmed_out
                << " points simulated by other workers sharing "
                << store->dir() << std::endl;
    }
    // Aggregate the scheduler perf counters over what was actually run
    // (cache hits carry no fresh wall-clock data).
    for (const std::size_t ui : misses) {
      out.stats.sim_events += results[ui].sim_events;
      out.stats.peak_pending_max =
          std::max(out.stats.peak_pending_max, results[ui].peak_pending);
      out.stats.sim_wall_s += results[ui].sim_wall_s;
    }
    if (out.stats.sim_wall_s > 0.0) {
      out.stats.events_per_sec =
          static_cast<double>(out.stats.sim_events) / out.stats.sim_wall_s;
    }
    if (opts.log && out.stats.sim_events > 0) {
      *opts.log << "campaign: " << out.stats.sim_events << " events, peak heap "
                << out.stats.peak_pending_max << ", "
                << fmt(out.stats.events_per_sec / 1e6, 2) << " M events/s"
                << std::endl;
    }
    if (opts.log && opts.profile) {
      double total = 0.0;
      for (const double s : out.stats.phase_seconds) total += s;
      *opts.log << "campaign: profile";
      for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
        const double s = out.stats.phase_seconds[ph];
        *opts.log << (ph ? ", " : ": ") << to_string(static_cast<ProfilePhase>(ph))
                  << " " << fmt(s, 2) << " s ("
                  << fmt(total > 0.0 ? 100.0 * s / total : 0.0, 1) << "%)";
      }
      *opts.log << std::endl;
    }
    if (opts.log && !out.stats.lp_phases.empty()) {
      for (const LpPhase& p : out.stats.lp_phases) {
        *opts.log << "campaign: lp " << p.lp << ": " << p.events
                  << " events, " << p.msgs_in << "/" << p.msgs_out
                  << " msgs in/out, run " << fmt(p.run_s, 2)
                  << " s, barrier wait " << fmt(p.wait_s, 2) << " s"
                  << std::endl;
      }
    }
  }

  // ---- Assemble per-sweep series. -------------------------------------
  out.sweeps.reserve(sweeps.size());
  for (const CampaignSweep& sweep : sweeps) {
    std::vector<SweepSeries> series(sweep.configs.size());
    for (std::size_t c = 0; c < sweep.configs.size(); ++c) {
      series[c].name = sweep.configs[c].name;
      series[c].points.resize(sweep.client_counts.size());
      for (std::size_t p = 0; p < sweep.client_counts.size(); ++p) {
        series[c].points[p].num_clients = sweep.client_counts[p];
      }
    }
    out.sweeps.emplace_back(sweep.name, std::move(series));
  }
  for (const PlannedPoint& pt : plan) {
    out.sweeps[pt.sweep].second[pt.config].points[pt.point].result =
        results[pt.unique_index];
  }
  out.stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // ---- Artifacts. ------------------------------------------------------
  if (!opts.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.artifact_dir, ec);
    if (ec) {
      if (opts.log) {
        *opts.log << "campaign: cannot create artifact dir "
                  << opts.artifact_dir << ": " << ec.message() << std::endl;
      }
    } else {
      for (std::size_t s = 0; s < sweeps.size(); ++s) {
        if (!sweeps[s].metric) continue;
        const std::string path =
            opts.artifact_dir + "/" + sweeps[s].name + ".csv";
        if (!write_sweep_csv(path, out.sweeps[s].second, sweeps[s].metric)) {
          if (opts.log) *opts.log << "campaign: failed to write " << path << std::endl;
        } else if (opts.log) {
          *opts.log << "campaign: wrote " << path << std::endl;
        }
      }
      // Per-scenario metrics snapshot, one row per unique scenario over
      // the union of metric names (histograms flatten to .count/.sum).
      // Missing metrics render as empty cells, so mixed-transport
      // campaigns still produce a rectangular CSV.
      {
        std::map<std::string, MetricKind> columns;
        for (const ExperimentResult& r : results) {
          for (const MetricPoint& m : r.metrics.points) {
            columns.emplace(m.name, m.kind);
          }
        }
        const std::string path = opts.artifact_dir + "/metrics.csv";
        std::ofstream mcsv(path, std::ios::trunc);
        // hw_threads/lp_shards describe the execution environment, not
        // the scenario: constant per invocation, but recorded per row so
        // concatenated CSVs from different machines stay self-describing.
        const unsigned hw_threads =
            std::max(1u, std::thread::hardware_concurrency());
        mcsv << "key,num_clients,seed,hw_threads,lp_shards";
        for (const auto& [name, kind] : columns) {
          if (kind == MetricKind::kHistogram) {
            mcsv << ',' << name << ".count," << name << ".sum";
          } else {
            mcsv << ',' << name;
          }
        }
        mcsv << '\n';
        mcsv.precision(17);
        for (std::size_t i = 0; i < results.size(); ++i) {
          const ExperimentResult& r = results[i];
          mcsv << unique_keys[i].hex() << ',' << r.scenario.num_clients << ','
               << r.scenario.seed << ',' << hw_threads << ','
               << opts.lp_shards;
          for (const auto& [name, kind] : columns) {
            const MetricPoint* m = r.metrics.find(name);
            if (kind == MetricKind::kHistogram) {
              if (m) {
                mcsv << ',' << static_cast<std::uint64_t>(m->value) << ','
                     << m->sum;
              } else {
                mcsv << ",,";
              }
            } else if (m) {
              if (kind == MetricKind::kCounter) {
                mcsv << ',' << static_cast<std::uint64_t>(m->value);
              } else {
                mcsv << ',' << m->value;
              }
            } else {
              mcsv << ',';
            }
          }
          mcsv << '\n';
        }
        mcsv.flush();
        if (opts.log) {
          *opts.log << (mcsv ? "campaign: wrote " : "campaign: failed to write ")
                    << path << std::endl;
        }
      }
      const std::string manifest = opts.artifact_dir + "/manifest.json";
      std::ofstream mf(manifest, std::ios::trunc);
      mf << "{\n"
         << "  \"version\": \"" << json_escape(BURST_VERSION_STRING) << "\",\n"
         << "  \"result_schema\": " << kResultSchemaVersion << ",\n"
         << "  \"generated_unix\": " << static_cast<long long>(std::time(nullptr))
         << ",\n"
         << "  \"wall_s\": " << out.stats.wall_s << ",\n"
         << "  \"cache_dir\": \"" << json_escape(opts.cache_dir) << "\",\n"
         << "  \"cache_enabled\": " << (store ? "true" : "false") << ",\n"
         << "  \"stats\": {\"planned\": " << out.stats.planned
         << ", \"unique\": " << out.stats.unique
         << ", \"cache_hits\": " << out.stats.cache_hits
         << ", \"simulated\": " << out.stats.simulated
         << ", \"farmed_out\": " << out.stats.farmed_out
         << ", \"store_skipped\": " << out.stats.store_skipped << "},\n"
         << "  \"perf\": {\"sim_events\": " << out.stats.sim_events
         << ", \"peak_pending_max\": " << out.stats.peak_pending_max
         << ", \"sim_wall_s\": " << out.stats.sim_wall_s
         << ", \"events_per_sec\": " << out.stats.events_per_sec;
      mf << ", \"phase_seconds\": {";
      for (std::size_t ph = 0; ph < kProfilePhases; ++ph) {
        mf << (ph ? ", " : "") << "\"" << to_string(static_cast<ProfilePhase>(ph))
           << "\": " << out.stats.phase_seconds[ph];
      }
      mf << "}";
      // Parallel-engine accounting: one row per logical process, summed
      // over the scenarios simulated by this invocation (high-water marks
      // are maxima, horizon_advance_mean averages over scenarios).
      mf << ", \"hw_threads\": "
         << std::max(1u, std::thread::hardware_concurrency())
         << ", \"lp_shards\": " << opts.lp_shards << ", \"lp_phases\": [";
      for (std::size_t lp = 0; lp < out.stats.lp_phases.size(); ++lp) {
        const LpPhase& p = out.stats.lp_phases[lp];
        mf << (lp ? ", " : "") << "{\"lp\": " << p.lp
           << ", \"events\": " << p.events << ", \"windows\": " << p.windows
           << ", \"msgs_in\": " << p.msgs_in
           << ", \"msgs_out\": " << p.msgs_out
           << ", \"merge_high_water\": " << p.merge_high_water
           << ", \"chan_high_water\": " << p.chan_high_water
           << ", \"chan_overflows\": " << p.chan_overflows
           << ", \"horizon_advance_mean\": " << p.horizon_advance_mean
           << ", \"run_s\": " << p.run_s
           << ", \"wait_s\": " << p.wait_s << "}";
      }
      mf << "]},\n";
      // Campaign-wide counter totals over every unique scenario (cache
      // hits included — the store round-trips the snapshot).
      {
        std::map<std::string, std::uint64_t> totals;
        for (const ExperimentResult& r : results) {
          for (const MetricPoint& m : r.metrics.points) {
            if (m.kind == MetricKind::kCounter) {
              totals[m.name] += static_cast<std::uint64_t>(m.value);
            }
          }
        }
        mf << "  \"metrics_totals\": {";
        bool first = true;
        for (const auto& [name, total] : totals) {
          mf << (first ? "" : ", ") << "\"" << json_escape(name)
             << "\": " << total;
          first = false;
        }
        mf << "},\n";
      }
      mf << "  \"sweeps\": [\n";
      for (std::size_t s = 0; s < sweeps.size(); ++s) {
        const CampaignSweep& sweep = sweeps[s];
        mf << "    {\"name\": \"" << json_escape(sweep.name)
           << "\", \"metric\": \"" << json_escape(sweep.metric_name)
           << "\", \"base_seed\": " << sweep.base.seed << ", \"clients\": [";
        for (std::size_t p = 0; p < sweep.client_counts.size(); ++p) {
          mf << (p ? "," : "") << sweep.client_counts[p];
        }
        mf << "], \"series\": [";
        for (std::size_t c = 0; c < sweep.configs.size(); ++c) {
          mf << (c ? "," : "") << "{\"name\": \""
             << json_escape(sweep.configs[c].name) << "\", \"seeds\": [";
          for (std::size_t p = 0; p < sweep.client_counts.size(); ++p) {
            mf << (p ? "," : "")
               << campaign_point_seed(sweep.base, sweep.configs[c].name,
                                      sweep.client_counts[p]);
          }
          mf << "]}";
        }
        mf << "]}" << (s + 1 < sweeps.size() ? "," : "") << "\n";
      }
      mf << "  ]\n}\n";
      mf.flush();
      if (opts.log) {
        if (mf) {
          *opts.log << "campaign: wrote " << manifest << std::endl;
        } else {
          *opts.log << "campaign: failed to write " << manifest << std::endl;
        }
      }
    }
  }
  return out;
}

std::vector<CampaignSweep> paper_figure_campaign(const Scenario& base) {
  // The bench harnesses' client grids (bench/common.cpp mirrors these).
  std::vector<int> fig2 = range(4, 36, 4);
  for (int n : {38, 39, 40, 44, 48, 52, 56, 60}) fig2.push_back(n);
  const std::vector<int> fig34 = range(30, 60, 3);

  std::vector<CampaignSweep> sweeps;
  sweeps.push_back({"fig02_cov", "c.o.v. of per-RTT gateway arrivals", base,
                    fig2, paper_protocol_set(true),
                    [](const ExperimentResult& r) { return r.cov; }});
  sweeps.push_back({"fig03_throughput", "packets successfully transmitted",
                    base, fig34, paper_protocol_set(false),
                    [](const ExperimentResult& r) {
                      return static_cast<double>(r.delivered);
                    }});
  sweeps.push_back({"fig04_loss", "packet loss percentage", base, fig34,
                    paper_protocol_set(false),
                    [](const ExperimentResult& r) { return r.loss_pct; }});
  sweeps.push_back({"fig13_timeout_dupack", "timeouts / duplicate ACKs", base,
                    fig34, paper_protocol_set(false),
                    [](const ExperimentResult& r) {
                      return r.timeout_dupack_ratio;
                    }});
  return sweeps;
}

}  // namespace burst
