// Constant-bit-rate source: one packet every fixed interval. A degenerate
// (zero-variance) arrival process, useful in tests and as a smoothness
// extreme in the characterization examples.
#pragma once

#include "src/app/traffic_generator.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class CbrSource : public TrafficGenerator {
 public:
  CbrSource(Simulator& sim, Agent& agent, double interval);

  void start() override;
  void stop() override;
  std::uint64_t generated() const override { return generated_; }

 private:
  void schedule_next();

  Simulator& sim_;
  Agent& agent_;
  double interval_;
  bool running_ = false;
  EventId next_event_ = kInvalidEventId;
  std::uint64_t generated_ = 0;
};

}  // namespace burst
