#include "src/app/trace_source.hpp"

#include <algorithm>
#include <fstream>

namespace burst {

ArrivalTraceRecorder::ArrivalTraceRecorder(Queue& queue) {
  queue.taps().add_arrival_listener([this](const Packet& p, Time now) {
    if (p.type == PacketType::kData) times_.push_back(now);
  });
}

void ArrivalTraceRecorder::save(const std::string& path) const {
  std::ofstream f(path);
  for (Time t : times_) f << t << '\n';
}

std::vector<Time> ArrivalTraceRecorder::load(const std::string& path) {
  std::vector<Time> out;
  std::ifstream f(path);
  double t = 0.0;
  while (f >> t) out.push_back(t);
  return out;
}

TraceSource::TraceSource(Simulator& sim, Agent& agent, std::vector<Time> times)
    : sim_(sim), agent_(agent), times_(std::move(times)) {
  std::sort(times_.begin(), times_.end());
}

void TraceSource::start() {
  running_ = true;
  next_ = 0;
  schedule_next();
}

void TraceSource::stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_.cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void TraceSource::schedule_next() {
  // Skip any entries already in the past (e.g. replays started late).
  while (next_ < times_.size() && times_[next_] < sim_.now()) ++next_;
  if (next_ >= times_.size()) return;
  next_event_ = sim_.schedule_at(times_[next_], [this] {
    // This event just fired: drop its handle so a later stop() never
    // issues a cancel against a retired generation.
    next_event_ = kInvalidEventId;
    if (!running_) return;
    ++generated_;
    ++next_;
    agent_.app_send(1);
    schedule_next();
  });
}

}  // namespace burst
