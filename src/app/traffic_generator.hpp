// Application-level traffic generators. Each drives a transport agent's
// app_send() according to a stochastic arrival process; the transport
// below then modulates (or, for UDP, does not modulate) that process —
// precisely the separation the paper's methodology depends on.
#pragma once

#include <cstdint>

#include "src/transport/agent.hpp"

namespace burst {

class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Begins generating at the current simulation time.
  virtual void start() = 0;

  /// Stops generating (pending transport backlogs still drain).
  virtual void stop() = 0;

  /// Application packets generated so far.
  virtual std::uint64_t generated() const = 0;
};

}  // namespace burst
