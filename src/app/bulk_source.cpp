#include "src/app/bulk_source.hpp"

namespace burst {

namespace {
// "Greedy" stands in for an unbounded transfer; large enough that no run
// can drain it, small enough to avoid sequence-arithmetic overflow.
constexpr std::int64_t kGreedyPackets = 1'000'000'000;
}  // namespace

BulkSource::BulkSource(Simulator& sim, Agent& agent, std::int64_t packets)
    : sim_(sim), agent_(agent),
      packets_(packets <= 0 ? kGreedyPackets : packets) {}

void BulkSource::start() {
  generated_ = static_cast<std::uint64_t>(packets_);
  agent_.app_send(static_cast<int>(packets_));
}

}  // namespace burst
