#include "src/app/pareto_on_off_source.hpp"

namespace burst {

ParetoOnOffSource::ParetoOnOffSource(Simulator& sim, Agent& agent,
                                     ParetoOnOffConfig cfg, Random rng)
    : sim_(sim), agent_(agent), cfg_(cfg), rng_(rng) {}

void ParetoOnOffSource::start() {
  running_ = true;
  begin_on_period();
}

void ParetoOnOffSource::stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_.cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void ParetoOnOffSource::begin_on_period() {
  on_ = true;
  on_ends_ = sim_.now() + rng_.pareto(cfg_.shape, cfg_.mean_on);
  tick();
}

void ParetoOnOffSource::tick() {
  if (!running_) return;
  if (on_ && sim_.now() >= on_ends_) {
    on_ = false;
    const Time off = rng_.pareto(cfg_.shape, cfg_.mean_off);
    next_event_ = sim_.schedule(off, [this] { begin_on_period(); });
    return;
  }
  ++generated_;
  agent_.app_send(1);
  next_event_ =
      sim_.schedule(1.0 / cfg_.on_rate_pps, [this] { tick(); });
}

}  // namespace burst
