#include "src/app/pareto_on_off_source.hpp"

namespace burst {

ParetoOnOffSource::ParetoOnOffSource(Simulator& sim, Agent& agent,
                                     ParetoOnOffConfig cfg, Random rng)
    : sim_(sim), agent_(agent), cfg_(cfg), rng_(rng) {}

void ParetoOnOffSource::start() {
  running_ = true;
  begin_on_period();
}

void ParetoOnOffSource::stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_.cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void ParetoOnOffSource::begin_on_period() {
  next_event_ = kInvalidEventId;  // the event delivering us has fired
  if (!running_) return;
  on_ = true;
  on_began_ = sim_.now();
  on_ends_ = sim_.now() + rng_.pareto(cfg_.shape, cfg_.mean_on);
  tick();
}

void ParetoOnOffSource::begin_off_period() {
  next_event_ = kInvalidEventId;
  if (!running_) return;
  on_ = false;
  total_on_time_ += sim_.now() - on_began_;
  ++completed_on_periods_;
  const Time off = rng_.pareto(cfg_.shape, cfg_.mean_off);
  next_event_ = sim_.schedule(off, [this] { begin_on_period(); });
}

void ParetoOnOffSource::tick() {
  next_event_ = kInvalidEventId;
  if (!running_) return;
  ++generated_;
  agent_.app_send(1);
  const Time gap = 1.0 / cfg_.on_rate_pps;
  if (sim_.now() + gap < on_ends_) {
    next_event_ = sim_.schedule(gap, [this] { tick(); });
  } else {
    // The sampled ON duration ends before the next packet would go out:
    // switch OFF at on_ends_ *exactly*. (Ending at the next tick instead
    // stretched every burst by up to one inter-packet gap and started
    // the OFF period late — a systematic upward bias on ON durations.)
    next_event_ = sim_.schedule_at(on_ends_, [this] { begin_off_period(); });
  }
}

}  // namespace burst
