// Pareto on/off source: heavy-tailed burst and idle durations.
//
// The self-similarity literature the paper responds to ([14],[19]) shows
// that aggregating many such sources yields long-range-dependent traffic.
// We include it so the ablation benches can contrast "burstiness from
// heavy tails" (this source) with "burstiness from TCP modulation of
// smooth sources" (PoissonSource + TCP), which is the paper's point.
#pragma once

#include "src/app/traffic_generator.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

struct ParetoOnOffConfig {
  double shape = 1.5;           // alpha in (1,2): infinite variance
  double mean_on = 0.5;         // seconds
  double mean_off = 0.5;        // seconds
  double on_rate_pps = 20.0;    // packet rate during bursts
};

class ParetoOnOffSource : public TrafficGenerator {
 public:
  ParetoOnOffSource(Simulator& sim, Agent& agent, ParetoOnOffConfig cfg,
                    Random rng);

  void start() override;
  void stop() override;
  std::uint64_t generated() const override { return generated_; }

  /// ON periods that have run to completion (reached their sampled end).
  std::uint64_t completed_on_periods() const { return completed_on_periods_; }

  /// Mean realized ON-period duration, or 0 if none completed. The OFF
  /// transition fires at the sampled end exactly, so this converges to
  /// the Pareto mean cfg_.mean_on (regression-tested in sources_test).
  double mean_on_duration() const {
    return completed_on_periods_ == 0
               ? 0.0
               : total_on_time_ / static_cast<double>(completed_on_periods_);
  }

 private:
  void begin_on_period();
  void begin_off_period();
  void tick();

  Simulator& sim_;
  Agent& agent_;
  ParetoOnOffConfig cfg_;
  Random rng_;
  bool running_ = false;
  bool on_ = false;
  Time on_ends_ = 0.0;
  Time on_began_ = 0.0;
  double total_on_time_ = 0.0;
  std::uint64_t completed_on_periods_ = 0;
  EventId next_event_ = kInvalidEventId;
  std::uint64_t generated_ = 0;
};

}  // namespace burst
