#include "src/app/poisson_source.hpp"

namespace burst {

PoissonSource::PoissonSource(Simulator& sim, Agent& agent,
                             double mean_interarrival, Random rng)
    : sim_(sim), agent_(agent), mean_(mean_interarrival), rng_(rng) {}

void PoissonSource::start() {
  running_ = true;
  schedule_next();
}

void PoissonSource::stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_.cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void PoissonSource::schedule_next() {
  next_event_ = sim_.schedule(rng_.exponential(mean_), [this] {
    // This event just fired: drop its handle so a later stop() never
    // issues a cancel against a retired generation.
    next_event_ = kInvalidEventId;
    if (!running_) return;
    ++generated_;
    if (trace_) {
      TraceRecord r;
      r.time = sim_.now();
      r.type = TraceEventType::kSourceEmit;
      r.flow = trace_flow_;
      r.seq = static_cast<std::int64_t>(generated_);
      trace_->emit(r);
    }
    agent_.app_send(1);
    schedule_next();
  });
}

}  // namespace burst
