#include "src/app/cbr_source.hpp"

namespace burst {

CbrSource::CbrSource(Simulator& sim, Agent& agent, double interval)
    : sim_(sim), agent_(agent), interval_(interval) {}

void CbrSource::start() {
  running_ = true;
  schedule_next();
}

void CbrSource::stop() {
  running_ = false;
  if (next_event_ != kInvalidEventId) {
    sim_.cancel(next_event_);
    next_event_ = kInvalidEventId;
  }
}

void CbrSource::schedule_next() {
  next_event_ = sim_.schedule(interval_, [this] {
    // This event just fired: drop its handle so a later stop() never
    // issues a cancel against a retired generation.
    next_event_ = kInvalidEventId;
    if (!running_) return;
    ++generated_;
    agent_.app_send(1);
    schedule_next();
  });
}

}  // namespace burst
