// Trace-driven traffic: record an arrival process from a live simulation
// (or load one from disk) and replay it through any transport. This is
// the workhorse of empirical traffic characterization — the paper's
// methodology applied to measured rather than synthetic traffic.
#pragma once

#include <string>
#include <vector>

#include "src/app/traffic_generator.hpp"
#include "src/net/queue.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

/// Captures data-packet arrival times at a queue via its taps.
class ArrivalTraceRecorder {
 public:
  explicit ArrivalTraceRecorder(Queue& queue);

  const std::vector<Time>& times() const { return times_; }

  /// Writes one arrival time per line.
  void save(const std::string& path) const;
  /// Reads a trace written by save() (or any one-number-per-line file).
  static std::vector<Time> load(const std::string& path);

 private:
  std::vector<Time> times_;
};

/// Replays a list of absolute arrival times into an agent: at each time,
/// one application packet is submitted.
class TraceSource : public TrafficGenerator {
 public:
  TraceSource(Simulator& sim, Agent& agent, std::vector<Time> times);

  void start() override;
  void stop() override;
  std::uint64_t generated() const override { return generated_; }

 private:
  void schedule_next();

  Simulator& sim_;
  Agent& agent_;
  std::vector<Time> times_;
  std::size_t next_ = 0;
  bool running_ = false;
  EventId next_event_ = kInvalidEventId;
  std::uint64_t generated_ = 0;
};

}  // namespace burst
