// Poisson packet source: single packets with exponentially distributed
// inter-generation times (Table 1: mean 0.1 s). This is the paper's
// application workload; its aggregate is provably smooth, so any residual
// burstiness at the gateway is the transport's doing.
#pragma once

#include "src/app/traffic_generator.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/random.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class PoissonSource : public TrafficGenerator {
 public:
  /// @p mean_interarrival is 1/lambda in seconds.
  PoissonSource(Simulator& sim, Agent& agent, double mean_interarrival,
                Random rng);

  void start() override;
  void stop() override;
  std::uint64_t generated() const override { return generated_; }

  /// Emits a kSourceEmit record per generated packet under @p flow.
  void set_trace(TraceSink* sink, std::int32_t flow) {
    trace_ = sink;
    trace_flow_ = flow;
  }

 private:
  void schedule_next();

  TraceSink* trace_ = nullptr;
  std::int32_t trace_flow_ = -1;

  Simulator& sim_;
  Agent& agent_;
  double mean_;
  Random rng_;
  bool running_ = false;
  EventId next_event_ = kInvalidEventId;
  std::uint64_t generated_ = 0;
};

}  // namespace burst
