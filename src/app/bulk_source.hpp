// Bulk-transfer source: submits a fixed number of packets at start (a file
// transfer) or an effectively infinite backlog (a greedy flow). Used by
// the Earth-System-Grid-style example and fairness experiments.
#pragma once

#include "src/app/traffic_generator.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class BulkSource : public TrafficGenerator {
 public:
  /// @p packets <= 0 means "greedy": keep the transport saturated.
  BulkSource(Simulator& sim, Agent& agent, std::int64_t packets);

  void start() override;
  void stop() override {}
  std::uint64_t generated() const override { return generated_; }

 private:
  Simulator& sim_;
  Agent& agent_;
  std::int64_t packets_;
  std::uint64_t generated_ = 0;
};

}  // namespace burst
