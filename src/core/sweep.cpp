#include "src/core/sweep.hpp"

#include <atomic>
#include <thread>

namespace burst {

std::vector<SweepConfig> paper_protocol_set(bool include_udp) {
  std::vector<SweepConfig> configs;
  if (include_udp) {
    configs.push_back({"UDP", [](Scenario& s) { s.transport = Transport::kUdp; }});
  }
  configs.push_back({"Reno", [](Scenario& s) { s.transport = Transport::kReno; }});
  configs.push_back({"Reno/RED", [](Scenario& s) {
                       s.transport = Transport::kReno;
                       s.gateway = GatewayQueue::kRed;
                     }});
  configs.push_back({"Vegas", [](Scenario& s) { s.transport = Transport::kVegas; }});
  configs.push_back({"Vegas/RED", [](Scenario& s) {
                       s.transport = Transport::kVegas;
                       s.gateway = GatewayQueue::kRed;
                     }});
  configs.push_back({"Reno/DelayAck", [](Scenario& s) {
                       s.transport = Transport::kReno;
                       s.delayed_ack = true;
                     }});
  return configs;
}

std::vector<SweepSeries> sweep_clients(
    const Scenario& base, const std::vector<int>& client_counts,
    const std::vector<SweepConfig>& configs) {
  // Materialize the full task list, then run it on a small thread pool.
  struct Task {
    std::size_t series;
    std::size_t point;
    Scenario scenario;
  };
  std::vector<SweepSeries> out(configs.size());
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out[c].name = configs[c].name;
    out[c].points.resize(client_counts.size());
    for (std::size_t p = 0; p < client_counts.size(); ++p) {
      Scenario sc = base;
      sc.num_clients = client_counts[p];
      configs[c].apply(sc);
      // Decorrelate seeds across points while keeping determinism.
      sc.seed = base.seed + 1000003ULL * c + 17ULL * p;
      out[c].points[p].num_clients = client_counts[p];
      tasks.push_back(Task{c, p, sc});
    }
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= tasks.size()) return;
      const Task& t = tasks[i];
      out[t.series].points[t.point].result = run_experiment(t.scenario);
    }
  };
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t n_threads = std::min<std::size_t>(hw, tasks.size());
  std::vector<std::thread> pool;
  pool.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return out;
}

std::vector<int> range(int lo, int hi, int step) {
  std::vector<int> out;
  for (int v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

}  // namespace burst
