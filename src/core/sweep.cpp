#include "src/core/sweep.hpp"

#include <algorithm>
#include <thread>

#include "src/run/executor.hpp"
#include "src/run/scenario_key.hpp"

namespace burst {

std::vector<SweepConfig> paper_protocol_set(bool include_udp) {
  std::vector<SweepConfig> configs;
  if (include_udp) {
    configs.push_back({"UDP", [](Scenario& s) { s.transport = Transport::kUdp; }});
  }
  configs.push_back({"Reno", [](Scenario& s) { s.transport = Transport::kReno; }});
  configs.push_back({"Reno/RED", [](Scenario& s) {
                       s.transport = Transport::kReno;
                       s.gateway = GatewayQueue::kRed;
                     }});
  configs.push_back({"Vegas", [](Scenario& s) { s.transport = Transport::kVegas; }});
  configs.push_back({"Vegas/RED", [](Scenario& s) {
                       s.transport = Transport::kVegas;
                       s.gateway = GatewayQueue::kRed;
                     }});
  configs.push_back({"Reno/DelayAck", [](Scenario& s) {
                       s.transport = Transport::kReno;
                       s.delayed_ack = true;
                     }});
  return configs;
}

std::vector<SweepSeries> sweep_clients(
    const Scenario& base, const std::vector<int>& client_counts,
    const std::vector<SweepConfig>& configs) {
  // Materialize the full task list, then run it on a small thread pool.
  struct Task {
    std::size_t series;
    std::size_t point;
    Scenario scenario;
  };
  std::vector<SweepSeries> out(configs.size());
  std::vector<Task> tasks;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out[c].name = configs[c].name;
    out[c].points.resize(client_counts.size());
    for (std::size_t p = 0; p < client_counts.size(); ++p) {
      Scenario sc = base;
      sc.num_clients = client_counts[p];
      configs[c].apply(sc);
      // Decorrelate per-point seeds with a splitmix64 mix keyed on the
      // config *name* and client *count* (not loop indices), so the same
      // scenario gets the same seed in every sweep and in the campaign
      // runner's cached path.
      sc.seed = derive_seed(base.seed, configs[c].name, client_counts[p]);
      out[c].points[p].num_clients = client_counts[p];
      tasks.push_back(Task{c, p, sc});
    }
  }

  if (tasks.empty()) return out;
  // No point spinning up more workers than tasks.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  Executor executor(
      static_cast<unsigned>(std::min<std::size_t>(hw, tasks.size())));
  executor.run(tasks.size(), [&](std::size_t i) {
    const Task& t = tasks[i];
    out[t.series].points[t.point].result = run_experiment(t.scenario);
  });
  return out;
}

std::vector<int> range(int lo, int hi, int step) {
  std::vector<int> out;
  for (int v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

}  // namespace burst
