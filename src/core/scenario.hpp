// Scenario: the paper's Table 1 in code, plus the experiment axes
// (transport implementation, gateway discipline, delayed ACKs).
//
// Defaults are the reconstructed Table 1 values; see DESIGN.md §3 for the
// evidence behind each reconstruction.
#pragma once

#include <cstdint>
#include <string>

#include "src/net/drr_queue.hpp"
#include "src/net/red_queue.hpp"
#include "src/sim/time.hpp"
#include "src/transport/rto_estimator.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {

enum class Transport { kUdp, kTahoe, kReno, kNewReno, kVegas, kSack };
enum class GatewayQueue { kDropTail, kRed, kDrr };

std::string to_string(Transport t);
std::string to_string(GatewayQueue q);

struct Scenario {
  // --- Experiment axes -------------------------------------------------
  int num_clients = 20;
  Transport transport = Transport::kReno;
  GatewayQueue gateway = GatewayQueue::kDropTail;
  bool delayed_ack = false;
  bool ecn = false;           // ECN-capable TCP + marking RED gateway
  bool adaptive_red = false;  // self-configuring RED (the paper's ref [5])
  bool limited_transmit = false;  // RFC 3042 at the senders
  bool cwnd_validation = false;   // RFC 2861-style growth gating
  /// Mean-field scaling base N0 (0 = off). When set, the capacity-side
  /// parameters — bottleneck bandwidth, gateway buffer, RED thresholds —
  /// scale by num_clients / meanfield_base, so per-flow capacity stays
  /// fixed as N grows: the McDonald–Reynier many-flows limit in which
  /// aggregate fluctuations decay as 1/sqrt(N). The factor is exactly 1.0
  /// at num_clients == meanfield_base, so the scaled scenario at the base
  /// N is bit-identical to the unscaled one.
  int meanfield_base = 0;

  // --- Table 1 ---------------------------------------------------------
  double client_bw_bps = 10e6;        // client link bandwidth (mu_c)
  Time client_delay = ms(20);         // client link delay (tau_c)
  /// Heterogeneous-RTT extension: client i's link delay is spread linearly
  /// over client_delay * [1-spread, 1+spread]. 0 = the paper's homogeneous
  /// setup. Must stay in [0, 1).
  double client_delay_spread = 0.0;
  double bottleneck_bw_bps = 32e6;    // bottleneck bandwidth (mu_s)
  Time bottleneck_delay = ms(20);     // bottleneck delay (tau_s)
  double advertised_window = 20.0;    // TCP max advertised window (packets)
  std::size_t gateway_buffer = 50;    // gateway buffer size B (packets)
  int payload_bytes = 1000;           // packet size
  double mean_interarrival = 0.01;    // average intergeneration time (s)
  Time duration = 20.0;               // total test time
  double red_min_th = 10.0;           // RED minimum threshold
  double red_max_th = 40.0;           // RED maximum threshold
  VegasConfig vegas{};                // alpha=1, beta=3, gamma=1

  // --- Modeling knobs (DESIGN.md §3) ------------------------------------
  double red_weight = 0.002;
  double red_max_p = 0.1;
  RtoConfig rto{};
  Time warmup = 2.0;                  // discarded before c.o.v. binning
  std::size_t client_queue_buffer = 1000;  // edge/reverse-path buffers
  std::uint64_t seed = 1;

  // --- Derived quantities ----------------------------------------------
  /// Round-trip propagation delay — the paper's c.o.v. bin width.
  Time rtt_prop() const { return 2.0 * (client_delay + bottleneck_delay); }
  /// Client @p i's link delay under the heterogeneous-RTT extension.
  Time client_delay_for(int i) const;
  /// Wire size of one data packet.
  int wire_bytes() const;
  /// Bottleneck service rate in data packets per second.
  double bottleneck_pps() const;
  /// Offered application load in packets per second (all clients).
  double offered_pps() const;
  /// Offered load divided by bottleneck capacity.
  double utilization() const { return offered_pps() / bottleneck_pps(); }
  /// Number of clients at which offered load equals capacity (the paper's
  /// 38/39-client crossover).
  double saturation_clients() const;

  /// num_clients / meanfield_base, or 1.0 when mean-field scaling is off.
  double meanfield_factor() const;
  /// Capacity-side parameters after mean-field scaling. With
  /// meanfield_base == 0 these return the raw Table 1 values unchanged
  /// (same bits — no multiply happens), so every historical scenario is
  /// untouched.
  double scaled_bottleneck_bw_bps() const;
  std::size_t scaled_gateway_buffer() const;
  double scaled_red_min_th() const;
  double scaled_red_max_th() const;

  RedConfig red_config() const;
  DrrConfig drr_config() const;

  /// The configuration used throughout the paper's Section 3.
  static Scenario paper_default() { return Scenario{}; }

  /// One-line human-readable label, e.g. "Reno/RED N=40".
  std::string label() const;
};

}  // namespace burst
