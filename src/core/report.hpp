// Plain-text report formatting: aligned tables for the figure harnesses,
// so each bench binary prints rows comparable to the paper's plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/sweep.hpp"
#include "src/sim/trace.hpp"

namespace burst {

/// Prints an aligned table; every row must match the header's size.
void print_table(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 4);

/// Prints one metric (extracted by @p metric) against #clients for every
/// series: the generic Fig 2/3/4/13 layout.
void print_metric_vs_clients(
    std::ostream& os, const std::vector<SweepSeries>& series,
    const std::string& metric_name,
    double (*metric)(const ExperimentResult&), int precision = 4);

/// Prints a cwnd trace as (t, cwnd) rows resampled on a regular grid, the
/// textual equivalent of the paper's Figs 5-12.
void print_cwnd_traces(std::ostream& os,
                       const std::vector<TraceSeries>& traces, Time t_end,
                       Time sample_period, int max_rows = 60);

/// Writes a trace as CSV (t,value per line) for external plotting.
/// Returns false if the file cannot be opened or fully written.
bool write_trace_csv(const std::string& path, const TraceSeries& trace);

/// Writes sweep results as CSV: one row per client count, one column per
/// series, for a caller-chosen metric. Used by the figure benches when
/// BURST_CSV_DIR is set, so the paper's plots can be regenerated with any
/// external plotting tool. Returns false if the file cannot be opened or
/// fully written.
bool write_sweep_csv(const std::string& path,
                     const std::vector<SweepSeries>& series,
                     double (*metric)(const ExperimentResult&));

/// Serializes the headline metrics of one experiment as a JSON object
/// (flat, no dependencies) for downstream tooling.
std::string to_json(const ExperimentResult& r);

}  // namespace burst
