// Runs one scenario end to end and gathers every metric the paper reports:
// c.o.v. of per-RTT gateway arrivals (Fig 2), delivered packets (Fig 3),
// loss percentage (Fig 4), congestion-window traces (Figs 5-12) and
// timeout / duplicate-ACK counters (Fig 13), plus fairness (Sec 3.2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/scenario.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/trace.hpp"
#include "src/stats/running_stats.hpp"

namespace burst {

class FlightRecorder;

struct ExperimentOptions {
  /// Client indices whose congestion windows should be traced.
  std::vector<int> trace_clients;
  /// Sampling period for additional periodic cwnd samples (0 = only on
  /// change). The figures sample in units of 0.1 s like the paper's x-axis.
  Time cwnd_sample_period = 0.0;
  /// Structured event-trace sink. When non-null, every tap point in the
  /// dumbbell (queue, bottleneck link, TCP sinks, sources, transport
  /// transitions, drop clustering) emits into it; the simulation itself is
  /// bit-identical either way (no extra events, no RNG draws) — the
  /// result-identity pins and the differential test enforce this.
  TraceSink* trace = nullptr;
  /// Logical-process count for the conservative parallel engine
  /// (DESIGN.md §13). 1 (the default) runs today's sequential engine,
  /// bit-identical to every historical result. Values > 1 shard the
  /// topology across threads — results are then deterministic
  /// per-shard-count but may order exact same-instant ties differently
  /// than lp=1, so the scenario key is salted with this field whenever it
  /// exceeds 1 (the result cache must never mix shard counts). Requests
  /// the topology cannot honor (no cut, zero lookahead) and runs with the
  /// periodic cwnd sampler attached (trace_clients) clamp back to 1;
  /// event tracing shards fine — each LP records into a private ring and
  /// the rings merge deterministically at export (DESIGN.md §14).
  int lp_shards = 1;
  /// Optional fixed-budget streaming sampler for huge-N runs (DESIGN.md
  /// §14.3). When non-null it is wired to the measured queue, the flow
  /// arena (sequential engine only) and the driving Simulator, and armed
  /// for the scenario duration. Unlike `trace` it schedules its own
  /// periodic sampling events, so a flight-recorded run is NOT
  /// event-count-identical to a bare one (wall overhead is gated ≤5%).
  FlightRecorder* flight = nullptr;
};

/// Per-logical-process accounting from a parallel run (DESIGN.md §13's
/// profile table). Machine-dependent (wall-clock split) and therefore
/// never persisted by the result store.
struct LpPhase {
  int lp = 0;
  std::uint64_t events = 0;    // events this LP executed
  std::uint64_t windows = 0;   // conservative windows it participated in
  std::uint64_t msgs_in = 0;   // cross-LP packets received
  std::uint64_t msgs_out = 0;  // cross-LP packets sent
  /// Inbound merge high-water mark (most messages staged in one window).
  std::uint64_t merge_high_water = 0;
  /// Posts that spilled past a channel ring, and the outbound ring
  /// high-water mark (timing-dependent, profile display only).
  std::uint64_t chan_overflows = 0;
  std::uint64_t chan_high_water = 0;
  /// Mean safe-horizon advance per busy window (simulated seconds).
  Time horizon_advance_mean = 0.0;
  double run_s = 0.0;          // wall seconds processing events / merging
  double wait_s = 0.0;         // wall seconds blocked at window barriers
};

/// One conservative window as one LP saw it (flattened copy of the
/// runtime's LpWindowSample, kept core-local so this header does not pull
/// in the thread runtime). Only filled for traced parallel runs; wall
/// offsets are machine-dependent and never persisted.
struct LpWindowPhase {
  int lp = 0;
  Time gmin = 0.0;            // the window's global lower bound
  double t0_s = 0.0;          // wall offset of the window start
  double pub_wait_s = 0.0;    // blocked at the publish barrier
  double run_s = 0.0;         // executing events below the safe horizon
  double flush_wait_s = 0.0;  // blocked at the flush barrier
  double merge_s = 0.0;       // draining + inserting inbound messages
  std::uint64_t events = 0;   // cumulative events after this window
  std::uint32_t staged = 0;   // messages merged in this window
};

struct ExperimentResult {
  Scenario scenario;

  // Burstiness (Fig 2).
  double cov = 0.0;           // measured c.o.v. of per-RTT gateway arrivals
  double poisson_cov = 0.0;   // analytic c.o.v. of the aggregate Poisson
  double mean_per_bin = 0.0;  // mean arrivals per RTT bin

  // Volume (Figs 3, 4).
  std::uint64_t app_generated = 0;
  std::uint64_t delivered = 0;      // unique in-order packets at the server
  std::uint64_t gw_arrivals = 0;    // offered to the bottleneck queue
  std::uint64_t gw_drops = 0;
  double loss_pct = 0.0;            // 100 * drops / arrivals

  // Loss-recovery behavior (Fig 13).
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t dupacks = 0;        // duplicate ACKs received by senders
  std::uint64_t retransmits = 0;
  std::uint64_t data_pkts_sent = 0;
  /// The paper's Fig 13 metric: timeouts / dupacks. Degenerate-denominator
  /// convention: 0 when the run saw neither timeouts nor dupacks; when
  /// timeouts > 0 but dupacks == 0 (dup-ACK starvation — windows too small
  /// or losses too clustered to ever produce duplicates) the denominator
  /// clamps to 1, so the ratio degrades to the raw timeout count rather
  /// than reporting the same 0 as a loss-free run.
  double timeout_dupack_ratio = 0.0;

  // Sharing (Sec 3.2.2).
  double fairness = 1.0;            // Jain index over per-flow delivered

  // One-way data-path delay across all flows (propagation + queueing).
  RunningStats delay;

  // Congestion-window traces for the requested clients (Figs 5-12).
  std::vector<TraceSeries> cwnd_traces;

  // Component metrics registered at end of run (schema v3). Deterministic:
  // identical runs — traced or not — produce equal snapshots.
  MetricsSnapshot metrics;

  /// Sanity: must be zero in a correctly wired run.
  std::uint64_t routing_errors = 0;

  // --- Substrate performance counters ----------------------------------
  // sim_events and peak_pending are deterministic (they depend only on the
  // scenario) and are persisted by the result store; the wall-clock pair
  // is machine-dependent and is NOT persisted — a cache hit reports 0.
  std::uint64_t sim_events = 0;    // events executed by the scheduler
  std::uint64_t peak_pending = 0;  // high-water mark of the event heap
  double sim_wall_s = 0.0;         // wall-clock seconds inside sim.run()
  double events_per_sec = 0.0;     // sim_events / sim_wall_s

  /// Shard count the run actually used (1 when the request was clamped —
  /// see ExperimentOptions::lp_shards). For parallel runs sim_events /
  /// peak_pending / the sched.* metrics aggregate across LPs: events and
  /// scheduled counts sum (so they stay comparable with lp=1), while
  /// peak_pending takes the max over the per-LP heaps.
  int lp_shards = 1;
  /// One row per LP when lp_shards > 1 (empty otherwise). Not persisted.
  std::vector<LpPhase> lp_phases;
  /// Per-window runtime timeline, filled only for traced parallel runs
  /// (the runtime's window log is opt-in); feeds the `.runtime.perfetto`
  /// export with one thread track per LP. Not persisted.
  std::vector<LpWindowPhase> lp_windows;
};

/// Builds the dumbbell, runs for scenario.duration and collects metrics.
ExperimentResult run_experiment(const Scenario& scenario,
                                const ExperimentOptions& options = {});

}  // namespace burst
