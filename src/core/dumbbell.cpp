#include "src/core/dumbbell.hpp"

#include <cassert>

namespace burst {

Dumbbell::Dumbbell(Simulator& sim, const Scenario& scenario)
    : scenario_(scenario), net_(sim, make_dumbbell_spec(scenario)) {
  assert(scenario_.num_clients >= 1);
}

}  // namespace burst
