#include "src/core/dumbbell.hpp"

#include <cassert>

#include "src/net/drop_tail_queue.hpp"
#include "src/net/drr_queue.hpp"
#include "src/net/red_queue.hpp"
#include "src/transport/tcp_newreno.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_sack.hpp"
#include "src/transport/tcp_tahoe.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {

namespace {

std::unique_ptr<Queue> make_gateway_queue(const Scenario& sc, Random rng) {
  switch (sc.gateway) {
    case GatewayQueue::kRed:
      return std::make_unique<RedQueue>(sc.red_config(), rng);
    case GatewayQueue::kDrr:
      return std::make_unique<DrrQueue>(sc.drr_config());
    case GatewayQueue::kDropTail:
      break;
  }
  return std::make_unique<DropTailQueue>(sc.gateway_buffer);
}

TcpConfig make_tcp_config(const Scenario& sc) {
  TcpConfig cfg;
  cfg.payload_bytes = sc.payload_bytes;
  cfg.advertised_window = sc.advertised_window;
  cfg.rto = sc.rto;
  cfg.ecn = sc.ecn;
  cfg.limited_transmit = sc.limited_transmit;
  cfg.cwnd_validation = sc.cwnd_validation;
  return cfg;
}

}  // namespace

Dumbbell::Dumbbell(Simulator& sim, const Scenario& scenario)
    : sim_(sim), scenario_(scenario) {
  const int n = scenario_.num_clients;
  assert(n >= 1);
  const NodeId gw = n;
  const NodeId srv = n + 1;

  for (NodeId id = 0; id < srv + 1; ++id) {
    nodes_.push_back(std::make_unique<Node>(id));
  }
  Node& gateway_node = *nodes_[static_cast<std::size_t>(gw)];
  Node& server_node = *nodes_[static_cast<std::size_t>(srv)];

  auto add_link = [&](Node& to, std::unique_ptr<Queue> q, double bw,
                      Time delay) -> SimplexLink* {
    links_.push_back(
        std::make_unique<SimplexLink>(sim_, std::move(q), bw, delay));
    SimplexLink* link = links_.back().get();
    link->set_receiver([&to](const Packet& p) { to.receive(p); });
    return link;
  };

  // Bottleneck: gateway -> server, carrying all data traffic.
  bottleneck_ =
      add_link(server_node, make_gateway_queue(scenario_, sim_.rng().fork()),
               scenario_.bottleneck_bw_bps, scenario_.bottleneck_delay);
  gateway_node.add_route(srv, bottleneck_);

  // Reverse path: server -> gateway (ACKs; never congested by design).
  SimplexLink* srv_to_gw = add_link(
      gateway_node,
      std::make_unique<DropTailQueue>(scenario_.client_queue_buffer),
      scenario_.bottleneck_bw_bps, scenario_.bottleneck_delay);
  server_node.add_route(Node::kDefaultRoute, srv_to_gw);

  for (int i = 0; i < n; ++i) {
    Node& client_node = *nodes_[static_cast<std::size_t>(i)];
    const Time delay = scenario_.client_delay_for(i);
    // Client -> gateway (data direction).
    SimplexLink* up = add_link(
        gateway_node,
        std::make_unique<DropTailQueue>(scenario_.client_queue_buffer),
        scenario_.client_bw_bps, delay);
    client_node.add_route(Node::kDefaultRoute, up);
    // Gateway -> client (ACK direction).
    SimplexLink* down = add_link(
        client_node,
        std::make_unique<DropTailQueue>(scenario_.client_queue_buffer),
        scenario_.client_bw_bps, delay);
    gateway_node.add_route(i, down);
  }

  // Transport agents and Poisson sources.
  const TcpConfig tcp_cfg = make_tcp_config(scenario_);
  for (int i = 0; i < n; ++i) {
    Node& client_node = *nodes_[static_cast<std::size_t>(i)];
    const FlowId flow = i;
    switch (scenario_.transport) {
      case Transport::kUdp:
        senders_.push_back(std::make_unique<UdpSender>(
            sim_, client_node, flow, srv, scenario_.payload_bytes));
        sinks_.push_back(std::make_unique<UdpSink>(sim_, server_node, flow, i));
        break;
      case Transport::kTahoe:
        senders_.push_back(
            std::make_unique<TcpTahoe>(sim_, client_node, flow, srv, tcp_cfg));
        break;
      case Transport::kReno:
        senders_.push_back(
            std::make_unique<TcpReno>(sim_, client_node, flow, srv, tcp_cfg));
        break;
      case Transport::kNewReno:
        senders_.push_back(std::make_unique<TcpNewReno>(sim_, client_node, flow,
                                                        srv, tcp_cfg));
        break;
      case Transport::kVegas:
        senders_.push_back(std::make_unique<TcpVegas>(
            sim_, client_node, flow, srv, tcp_cfg, scenario_.vegas));
        break;
      case Transport::kSack:
        senders_.push_back(
            std::make_unique<TcpSack>(sim_, client_node, flow, srv, tcp_cfg));
        break;
    }
    if (scenario_.transport != Transport::kUdp) {
      TcpSinkConfig sink_cfg;
      sink_cfg.delayed_ack = scenario_.delayed_ack;
      sink_cfg.sack = scenario_.transport == Transport::kSack;
      sinks_.push_back(
          std::make_unique<TcpSink>(sim_, server_node, flow, i, sink_cfg));
    }
    sources_.push_back(std::make_unique<PoissonSource>(
        sim_, *senders_.back(), scenario_.mean_interarrival,
        sim_.rng().fork()));
  }
}

void Dumbbell::start_sources() {
  for (auto& s : sources_) s->start();
}

void Dumbbell::attach_trace(TraceSink& sink) {
  const std::uint8_t queue_site = sink.register_site("queue:gateway");
  const std::uint8_t link_site = sink.register_site("link:bottleneck");
  const std::uint8_t sink_site = sink.register_site("sink:server");

  bottleneck_->queue().set_trace(&sink, queue_site);
  bottleneck_->set_trace(&sink, link_site);

  for (auto& s : sinks_) {
    if (auto* tcp = dynamic_cast<TcpSink*>(s.get())) {
      tcp->set_trace(&sink, sink_site);
    }
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->set_trace(&sink, static_cast<std::int32_t>(i));
  }
  for (auto& a : senders_) {
    auto* tcp = dynamic_cast<TcpSender*>(a.get());
    if (!tcp) continue;
    tracers_.push_back(std::make_unique<TransportTracer>(sink, *tcp));
    tcp->set_observer(tracers_.back().get());
    if (auto* vegas = dynamic_cast<TcpVegas*>(tcp)) {
      vegas->set_vegas_trace(&sink);
    }
  }

  // Joint drop clustering at the bottleneck -> kCongestionEvent stream.
  monitor_ = std::make_unique<FlowMonitor>();
  monitor_->attach(bottleneck_->queue());
  monitor_->set_trace(&sink, queue_site);
}

void Dumbbell::register_metrics(MetricsRegistry& registry) const {
  const QueueStats& qs = bottleneck_->queue().stats();
  registry.add_counter("queue.gateway.arrivals", qs.arrivals);
  registry.add_counter("queue.gateway.drops", qs.drops);
  registry.add_counter("queue.gateway.forced_drops", qs.forced_drops);
  registry.add_counter("queue.gateway.early_drops", qs.early_drops);
  registry.add_counter("queue.gateway.departures", qs.departures);
  registry.add_counter("link.bottleneck.delivered", bottleneck_->delivered());
  registry.add_counter("link.bottleneck.bytes_delivered",
                       bottleneck_->bytes_delivered());

  TcpSenderStats tx;
  for (const auto& a : senders_) {
    if (const auto* tcp = dynamic_cast<const TcpSender*>(a.get())) {
      const TcpSenderStats& st = tcp->stats();
      tx.app_packets += st.app_packets;
      tx.data_pkts_sent += st.data_pkts_sent;
      tx.retransmits += st.retransmits;
      tx.timeouts += st.timeouts;
      tx.fast_retransmits += st.fast_retransmits;
      tx.dupacks += st.dupacks;
      tx.new_acks += st.new_acks;
      tx.rtt_samples += st.rtt_samples;
    }
  }
  registry.add_counter("tcp.app_packets", tx.app_packets);
  registry.add_counter("tcp.data_pkts_sent", tx.data_pkts_sent);
  registry.add_counter("tcp.retransmits", tx.retransmits);
  registry.add_counter("tcp.timeouts", tx.timeouts);
  registry.add_counter("tcp.fast_retransmits", tx.fast_retransmits);
  registry.add_counter("tcp.dupacks", tx.dupacks);
  registry.add_counter("tcp.new_acks", tx.new_acks);
  registry.add_counter("tcp.rtt_samples", tx.rtt_samples);

  TcpSinkStats rx;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      const TcpSinkStats& st = tcp->stats();
      rx.data_arrivals += st.data_arrivals;
      rx.unique_packets += st.unique_packets;
      rx.duplicate_packets += st.duplicate_packets;
      rx.out_of_order += st.out_of_order;
      rx.acks_sent += st.acks_sent;
      rx.dup_acks_sent += st.dup_acks_sent;
    }
  }
  registry.add_counter("sink.data_arrivals", rx.data_arrivals);
  registry.add_counter("sink.unique_packets", rx.unique_packets);
  registry.add_counter("sink.duplicate_packets", rx.duplicate_packets);
  registry.add_counter("sink.out_of_order", rx.out_of_order);
  registry.add_counter("sink.acks_sent", rx.acks_sent);
  registry.add_counter("sink.dup_acks_sent", rx.dup_acks_sent);
}

TcpSender* Dumbbell::tcp_sender(int i) {
  return dynamic_cast<TcpSender*>(senders_.at(static_cast<std::size_t>(i)).get());
}

TcpSink* Dumbbell::tcp_sink(int i) {
  return dynamic_cast<TcpSink*>(sinks_.at(static_cast<std::size_t>(i)).get());
}

UdpSink* Dumbbell::udp_sink(int i) {
  return dynamic_cast<UdpSink*>(sinks_.at(static_cast<std::size_t>(i)).get());
}

std::uint64_t Dumbbell::total_generated() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) total += s->generated();
  return total;
}

std::uint64_t Dumbbell::total_delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      total += static_cast<std::uint64_t>(tcp->rcv_nxt());
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      total += udp->packets_received();
    }
  }
  return total;
}

std::vector<double> Dumbbell::per_flow_delivered() const {
  std::vector<double> out;
  out.reserve(sinks_.size());
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      out.push_back(static_cast<double>(tcp->rcv_nxt()));
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      out.push_back(static_cast<double>(udp->packets_received()));
    }
  }
  return out;
}

RunningStats Dumbbell::pooled_delay() const {
  RunningStats out;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      out.merge(tcp->delay());
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      out.merge(udp->delay());
    }
  }
  return out;
}

std::uint64_t Dumbbell::routing_errors() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->routing_errors();
  return total;
}

}  // namespace burst
