#include "src/core/report.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace burst {

void print_table(std::ostream& os, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> width(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  for (const auto& row : rows) {
    assert(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  print_row(header);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_metric_vs_clients(std::ostream& os,
                             const std::vector<SweepSeries>& series,
                             const std::string& metric_name,
                             double (*metric)(const ExperimentResult&),
                             int precision) {
  if (series.empty()) return;
  std::vector<std::string> header{"clients"};
  for (const auto& s : series) header.push_back(s.name);
  std::vector<std::vector<std::string>> rows;
  const std::size_t n_points = series.front().points.size();
  for (std::size_t p = 0; p < n_points; ++p) {
    std::vector<std::string> row;
    row.push_back(std::to_string(series.front().points[p].num_clients));
    for (const auto& s : series) {
      row.push_back(fmt(metric(s.points[p].result), precision));
    }
    rows.push_back(std::move(row));
  }
  os << metric_name << " vs number of clients\n";
  print_table(os, header, rows);
}

void print_cwnd_traces(std::ostream& os,
                       const std::vector<TraceSeries>& traces, Time t_end,
                       Time sample_period, int max_rows) {
  if (traces.empty()) return;
  std::vector<std::string> header{"t(s)"};
  for (const auto& t : traces) header.push_back(t.name());
  std::vector<std::vector<std::string>> rows;
  // Pick a stride so at most max_rows rows are printed.
  const int total = static_cast<int>(t_end / sample_period);
  const int stride = std::max(1, total / std::max(1, max_rows));
  for (int i = 0; i <= total; i += stride) {
    const Time t = i * sample_period;
    std::vector<std::string> row{fmt(t, 1)};
    for (const auto& tr : traces) row.push_back(fmt(tr.value_at(t, 1.0), 1));
    rows.push_back(std::move(row));
  }
  print_table(os, header, rows);
}

bool write_trace_csv(const std::string& path, const TraceSeries& trace) {
  std::ofstream f(path);
  if (!f) return false;
  f << "time," << trace.name() << '\n';
  for (const auto& [t, v] : trace.points()) f << t << ',' << v << '\n';
  f.flush();
  return static_cast<bool>(f);
}

bool write_sweep_csv(const std::string& path,
                     const std::vector<SweepSeries>& series,
                     double (*metric)(const ExperimentResult&)) {
  std::ofstream f(path);
  if (!f) return false;
  f << "clients";
  for (const auto& s : series) f << ',' << s.name;
  f << '\n';
  for (std::size_t p = 0;
       !series.empty() && p < series.front().points.size(); ++p) {
    f << series.front().points[p].num_clients;
    for (const auto& s : series) f << ',' << metric(s.points[p].result);
    f << '\n';
  }
  f.flush();
  return static_cast<bool>(f);
}

std::string to_json(const ExperimentResult& r) {
  std::ostringstream os;
  os << "{"
     << "\"scenario\":\"" << r.scenario.label() << "\","
     << "\"cov\":" << r.cov << ","
     << "\"poisson_cov\":" << r.poisson_cov << ","
     << "\"app_generated\":" << r.app_generated << ","
     << "\"delivered\":" << r.delivered << ","
     << "\"gw_arrivals\":" << r.gw_arrivals << ","
     << "\"gw_drops\":" << r.gw_drops << ","
     << "\"loss_pct\":" << r.loss_pct << ","
     << "\"timeouts\":" << r.timeouts << ","
     << "\"fast_retransmits\":" << r.fast_retransmits << ","
     << "\"dupacks\":" << r.dupacks << ","
     << "\"timeout_dupack_ratio\":" << r.timeout_dupack_ratio << ","
     << "\"fairness\":" << r.fairness << ","
     << "\"mean_delay\":" << r.delay.mean() << ","
     << "\"max_delay\":" << r.delay.max() << "}";
  return os.str();
}

}  // namespace burst
