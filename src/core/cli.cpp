#include "src/core/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace burst {

namespace {

bool parse_transport(const std::string& v, Transport* out) {
  if (v == "udp") *out = Transport::kUdp;
  else if (v == "tahoe") *out = Transport::kTahoe;
  else if (v == "reno") *out = Transport::kReno;
  else if (v == "newreno") *out = Transport::kNewReno;
  else if (v == "vegas") *out = Transport::kVegas;
  else if (v == "sack") *out = Transport::kSack;
  else return false;
  return true;
}

bool parse_queue(const std::string& v, GatewayQueue* out) {
  if (v == "fifo" || v == "droptail") *out = GatewayQueue::kDropTail;
  else if (v == "red") *out = GatewayQueue::kRed;
  else if (v == "drr") *out = GatewayQueue::kDrr;
  else return false;
  return true;
}

bool parse_double(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

bool parse_int(const std::string& v, int* out) {
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  *out = static_cast<int>(parsed);
  return true;
}

bool fail(CliError* error, const std::string& msg) {
  if (error) error->message = msg;
  return false;
}

bool apply_option(const std::string& key, const std::string& value,
                  bool has_value, CliRequest* req, CliError* error) {
  auto need = [&](const char* what) {
    return has_value ? true
                     : fail(error, "--" + key + " requires a value (" +
                                       std::string(what) + ")");
  };
  Scenario& sc = req->scenario;
  if (key == "help") {
    req->show_help = true;
    return true;
  }
  if (key == "delack") {
    sc.delayed_ack = true;
    return true;
  }
  if (key == "ecn") {
    sc.ecn = true;
    return true;
  }
  if (key == "adaptive-red") {
    sc.adaptive_red = true;
    return true;
  }
  if (key == "limited-transmit") {
    sc.limited_transmit = true;
    return true;
  }
  if (key == "cwnd-validation") {
    sc.cwnd_validation = true;
    return true;
  }
  if (key == "transport") {
    if (!need("protocol name")) return false;
    if (!parse_transport(value, &sc.transport)) {
      return fail(error, "unknown transport '" + value + "'");
    }
    return true;
  }
  if (key == "queue") {
    if (!need("fifo|red|drr")) return false;
    if (!parse_queue(value, &sc.gateway)) {
      return fail(error, "unknown queue discipline '" + value + "'");
    }
    return true;
  }
  if (key == "clients") {
    int n = 0;
    if (!need("count") || !parse_int(value, &n) || n < 1) {
      return fail(error, "--clients needs a positive integer");
    }
    sc.num_clients = n;
    return true;
  }
  if (key == "seed") {
    int n = 0;
    if (!need("seed") || !parse_int(value, &n) || n < 0) {
      return fail(error, "--seed needs a non-negative integer");
    }
    sc.seed = static_cast<std::uint64_t>(n);
    return true;
  }
  if (key == "buffer") {
    int n = 0;
    if (!need("packets") || !parse_int(value, &n) || n < 1) {
      return fail(error, "--buffer needs a positive integer");
    }
    sc.gateway_buffer = static_cast<std::size_t>(n);
    return true;
  }
  double d = 0.0;
  auto need_pos_double = [&](const char* what) {
    if (!need(what)) return false;
    if (!parse_double(value, &d) || d <= 0.0) {
      return fail(error, "--" + key + " needs a positive number");
    }
    return true;
  };
  if (key == "duration") {
    if (!need_pos_double("seconds")) return false;
    sc.duration = d;
    return true;
  }
  if (key == "bottleneck-mbps") {
    if (!need_pos_double("Mbps")) return false;
    sc.bottleneck_bw_bps = d * 1e6;
    return true;
  }
  if (key == "mean-interarrival") {
    if (!need_pos_double("seconds")) return false;
    sc.mean_interarrival = d;
    return true;
  }
  if (key == "red-min") {
    if (!need_pos_double("packets")) return false;
    sc.red_min_th = d;
    return true;
  }
  if (key == "red-max") {
    if (!need_pos_double("packets")) return false;
    sc.red_max_th = d;
    return true;
  }
  if (key == "red-maxp") {
    if (!need_pos_double("probability")) return false;
    sc.red_max_p = d;
    return true;
  }
  if (key == "trace") {
    if (!need("client indices")) return false;
    std::istringstream is(value);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      int idx = 0;
      if (!parse_int(tok, &idx) || idx < 0) {
        return fail(error, "--trace needs comma-separated indices");
      }
      req->options.trace_clients.push_back(idx);
    }
    req->options.cwnd_sample_period = 0.1;
    return true;
  }
  if (key == "lp") {
    int n = 0;
    if (!need("shard count") || !parse_int(value, &n) || n < 1) {
      return fail(error, "--lp needs a positive integer");
    }
    req->options.lp_shards = n;
    return true;
  }
  if (key == "csv") {
    if (!need("path")) return false;
    req->csv_path = value;
    return true;
  }
  if (key == "trace-out") {
    if (!need("path stem")) return false;
    req->trace_path = value;
    return true;
  }
  if (key == "fr-out") {
    if (!need("path stem")) return false;
    req->fr_path = value;
    return true;
  }
  if (key == "fr-period") {
    double p = 0.0;
    if (!need("seconds") || !parse_double(value, &p) || !(p > 0.0)) {
      return fail(error, "--fr-period needs a positive number of seconds");
    }
    req->fr_period = p;
    return true;
  }
  if (key == "fr-cap") {
    int n = 0;
    if (!need("samples") || !parse_int(value, &n) || n < 2) {
      return fail(error, "--fr-cap needs an integer sample budget >= 2");
    }
    req->fr_cap = n;
    return true;
  }
  if (key == "profile") {
    req->profile = true;
    return true;
  }
  return fail(error, "unknown option --" + key);
}

}  // namespace

std::optional<CliRequest> parse_cli(const std::vector<std::string>& args,
                                    CliError* error) {
  CliRequest req;
  req.scenario = Scenario::paper_default();
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      if (error) error->message = "unexpected argument '" + arg + "'";
      return std::nullopt;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    const std::string key = body.substr(0, eq);
    const bool has_value = eq != std::string::npos;
    const std::string value = has_value ? body.substr(eq + 1) : "";
    if (!apply_option(key, value, has_value, &req, error)) {
      return std::nullopt;
    }
  }
  // Sanity constraints that individual options cannot see alone.
  if (req.scenario.red_min_th >= req.scenario.red_max_th) {
    if (error) error->message = "--red-min must be below --red-max";
    return std::nullopt;
  }
  for (int idx : req.options.trace_clients) {
    if (idx >= req.scenario.num_clients) {
      if (error) {
        error->message = "--trace index " + std::to_string(idx) +
                         " out of range for --clients=" +
                         std::to_string(req.scenario.num_clients);
      }
      return std::nullopt;
    }
  }
  return req;
}

std::string cli_usage() {
  return
      "burstsim — run one dumbbell experiment from the ICDCS 2000 TCP\n"
      "burstiness study and print its metrics.\n\n"
      "usage: burstsim [--option[=value]]...\n\n"
      "  --transport=udp|tahoe|reno|newreno|vegas|sack   (default reno)\n"
      "  --queue=fifo|red|drr                            (default fifo)\n"
      "  --clients=N            number of Poisson clients (default 20)\n"
      "  --duration=SECONDS     simulated time            (default 20)\n"
      "  --seed=N               RNG seed                  (default 1)\n"
      "  --buffer=PKTS          gateway buffer B          (default 50)\n"
      "  --bottleneck-mbps=X    bottleneck bandwidth      (default 32)\n"
      "  --mean-interarrival=S  per-client packet spacing (default 0.01)\n"
      "  --delack               delayed ACKs at the sink\n"
      "  --ecn                  ECN marking (with --queue=red)\n"
      "  --adaptive-red         self-configuring RED max_p\n"
      "  --limited-transmit     RFC 3042 limited transmit\n"
      "  --cwnd-validation      RFC 2861-style growth gating\n"
      "  --red-min=X --red-max=X --red-maxp=X   RED parameters\n"
      "  --lp=N                 logical processes for the conservative\n"
      "                         parallel engine (default 1 = sequential;\n"
      "                         --trace still clamps back to 1)\n"
      "  --trace=i,j,...        record cwnd of these clients\n"
      "  --csv=PATH             write traced cwnds as CSV\n"
      "  --trace-out=PATH       structured event trace: writes PATH.jsonl\n"
      "                         and PATH.perfetto.json (open in Perfetto);\n"
      "                         with --lp>1 each LP records its own ring,\n"
      "                         merged byte-identically to the lp=1 files,\n"
      "                         plus PATH.runtime.perfetto.json (per-LP\n"
      "                         barrier/run timeline)\n"
      "  --fr-out=PATH          flight recorder (huge-N sampler): writes\n"
      "                         PATH.csv and PATH.jsonl\n"
      "  --fr-period=S          flight-recorder cadence   (default 0.1)\n"
      "  --fr-cap=N             flight-recorder sample budget (default 4096)\n"
      "  --profile              per-LP phase table (windows=0 when lp=1)\n"
      "  --help                 this text\n";
}

}  // namespace burst
