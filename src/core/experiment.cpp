#include "src/core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/core/dumbbell.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/sim/simulator.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/fairness.hpp"
#include "src/topo/runner.hpp"
#include "src/topo/spec.hpp"

namespace burst {

ExperimentResult run_experiment(const Scenario& scenario,
                                const ExperimentOptions& options) {
  // Parallel runs go through the generic TopoNet pipeline, which knows how
  // to shard a spec across LPs — including traced runs, whose per-LP rings
  // merge deterministically at export. Only the periodic cwnd sampler
  // (trace_clients) still pins the run to this sequential path: it
  // schedules its own events on the build Simulator.
  if (options.lp_shards > 1 && options.trace_clients.empty()) {
    return run_topo_experiment(make_dumbbell_spec(scenario), options,
                               /*force_generic=*/true);
  }

  Simulator sim(scenario.seed);
  Dumbbell net(sim, scenario);
  if (options.trace != nullptr) net.attach_trace(*options.trace);
  if (options.flight != nullptr) {
    options.flight->observe_queue(&net.bottleneck_queue());
    options.flight->observe_arena(&net.flow_arena());
    options.flight->arm(sim, scenario.duration);
  }

  // Tap data-packet arrivals at the bottleneck queue into RTT-wide bins,
  // and the pre-enqueue occupancy each one sees into a metrics histogram
  // (PASTA: under Poisson arrivals this is the time-average occupancy).
  MetricsRegistry registry;
  Histogram& qlen_hist = registry.histogram(
      "queue.gateway.len_at_arrival", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  BinnedCounter arrivals(scenario.rtt_prop(), scenario.warmup);
  Queue& bottleneck = net.bottleneck_queue();
  net.bottleneck_queue().taps().add_arrival_listener(
      [&](const Packet& p, Time) {
        if (p.type != PacketType::kData) return;
        arrivals.record(sim.now());
        qlen_hist.add(static_cast<double>(bottleneck.len()));
      });

  // Congestion-window tracing.
  ExperimentResult result;
  result.scenario = scenario;
  result.cwnd_traces.reserve(options.trace_clients.size());
  for (int c : options.trace_clients) {
    result.cwnd_traces.emplace_back("client " + std::to_string(c + 1));
  }
  std::size_t ti = 0;
  for (int c : options.trace_clients) {
    if (TcpSender* s = net.tcp_sender(c)) {
      s->set_cwnd_trace(&result.cwnd_traces[ti]);
      if (options.cwnd_sample_period > 0.0) {
        // Periodic samples in addition to change-driven ones, so plots have
        // a regular grid like the paper's 0.1 s x-axis.
        struct Sampler {
          static void arm(Simulator& sim, TcpSender* s, TraceSeries* t,
                          Time period, Time until) {
            if (sim.now() + period > until) return;
            sim.schedule(period, [&sim, s, t, period, until] {
              t->record(sim.now(), s->cwnd());
              arm(sim, s, t, period, until);
            });
          }
        };
        Sampler::arm(sim, s, &result.cwnd_traces[ti], options.cwnd_sample_period,
                     scenario.duration);
      }
    }
    ++ti;
  }

  net.start_sources();
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(scenario.duration);
  result.sim_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  result.sim_events = sim.events_run();
  result.peak_pending = sim.scheduler().peak_pending();
  if (result.sim_wall_s > 0.0) {
    result.events_per_sec =
        static_cast<double>(result.sim_events) / result.sim_wall_s;
  }

  // --- Collect ----------------------------------------------------------
  const RunningStats bin_stats = arrivals.stats_until(scenario.duration);
  result.cov = bin_stats.cov();
  result.mean_per_bin = bin_stats.mean();
  result.poisson_cov = poisson_aggregate_cov(
      scenario.num_clients, 1.0 / scenario.mean_interarrival,
      scenario.rtt_prop());

  result.app_generated = net.total_generated();
  result.delivered = net.total_delivered();
  const QueueStats& qs = net.bottleneck_queue().stats();
  result.gw_arrivals = qs.arrivals;
  result.gw_drops = qs.drops;
  result.loss_pct = 100.0 * qs.loss_fraction();

  for (int i = 0; i < net.num_clients(); ++i) {
    if (const TcpSender* s = net.tcp_sender(i)) {
      const TcpSenderStats& st = s->stats();
      result.timeouts += st.timeouts;
      result.fast_retransmits += st.fast_retransmits;
      result.dupacks += st.dupacks;
      result.retransmits += st.retransmits;
      result.data_pkts_sent += st.data_pkts_sent;
    }
  }
  // Fig 13 ratio; see the convention note on ExperimentResult. A run with
  // timeouts but zero dupacks clamps the denominator to 1 so the ratio
  // degrades to the raw timeout count instead of silently reading 0.
  if (result.timeouts > 0 || result.dupacks > 0) {
    result.timeout_dupack_ratio =
        static_cast<double>(result.timeouts) /
        static_cast<double>(std::max<std::uint64_t>(result.dupacks, 1));
  }
  result.fairness = jain_fairness(net.per_flow_delivered());
  result.delay = net.pooled_delay();
  result.routing_errors = net.routing_errors();

  // Component metrics. Scheduler counters are deterministic (instrumented
  // runs execute the same event sequence); wall-clock values stay out so
  // the snapshot is reproducible and cacheable.
  net.register_metrics(registry);
  registry.add_counter("sched.events", result.sim_events);
  registry.add_counter("sched.peak_pending", result.peak_pending);
  registry.add_counter("sched.scheduled", sim.scheduler().scheduled_count());
  result.metrics = registry.snapshot();
  return result;
}

}  // namespace burst
