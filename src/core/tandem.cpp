#include "src/core/tandem.hpp"

#include "src/net/drop_tail_queue.hpp"
#include "src/net/red_queue.hpp"
#include "src/transport/tcp_newreno.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_sack.hpp"
#include "src/transport/tcp_tahoe.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {

Tandem::Tandem(Simulator& sim, const TandemConfig& cfg)
    : sim_(sim), cfg_(cfg) {
  const Scenario& sc = cfg_.base;
  const int n = sc.num_clients;
  const NodeId g1 = n, g2 = n + 1, srv = n + 2;
  for (NodeId id = 0; id <= srv; ++id) {
    nodes_.push_back(std::make_unique<Node>(id));
  }
  Node& gw1 = *nodes_[static_cast<std::size_t>(g1)];
  Node& gw2 = *nodes_[static_cast<std::size_t>(g2)];
  Node& server = *nodes_[static_cast<std::size_t>(srv)];

  auto add_link = [&](Node& to, std::unique_ptr<Queue> q, double bw,
                      Time delay) -> SimplexLink* {
    links_.push_back(
        std::make_unique<SimplexLink>(sim_, std::move(q), bw, delay));
    SimplexLink* link = links_.back().get();
    link->set_receiver([&to](const Packet& p) { to.receive(p); });
    return link;
  };
  auto gateway_queue = [&](double bw) -> std::unique_ptr<Queue> {
    if (sc.gateway == GatewayQueue::kRed) {
      RedConfig red = sc.red_config();
      red.mean_pkt_tx_time = transmission_time(sc.wire_bytes(), bw);
      return std::make_unique<RedQueue>(red, sim_.rng().fork());
    }
    return std::make_unique<DropTailQueue>(sc.gateway_buffer);
  };

  // Forward path: g1 -> g2 -> server, two bottlenecks in series.
  hop1_ = add_link(gw2, gateway_queue(sc.bottleneck_bw_bps),
                   sc.bottleneck_bw_bps, sc.bottleneck_delay);
  gw1.add_route(srv, hop1_);
  const double bw2 = sc.bottleneck_bw_bps * cfg_.second_hop_ratio;
  hop2_ = add_link(server, gateway_queue(bw2), bw2, sc.bottleneck_delay);
  gw2.add_route(srv, hop2_);

  // Reverse path: server -> g2 -> g1 (ACKs; uncongested).
  SimplexLink* srv_g2 = add_link(
      gw2, std::make_unique<DropTailQueue>(sc.client_queue_buffer), bw2,
      sc.bottleneck_delay);
  server.add_route(Node::kDefaultRoute, srv_g2);
  SimplexLink* g2_g1 = add_link(
      gw1, std::make_unique<DropTailQueue>(sc.client_queue_buffer),
      sc.bottleneck_bw_bps, sc.bottleneck_delay);
  gw2.add_route(Node::kDefaultRoute, g2_g1);

  TcpConfig tcp_cfg;
  tcp_cfg.payload_bytes = sc.payload_bytes;
  tcp_cfg.advertised_window = sc.advertised_window;
  tcp_cfg.rto = sc.rto;
  tcp_cfg.ecn = sc.ecn;
  tcp_cfg.limited_transmit = sc.limited_transmit;
  tcp_cfg.cwnd_validation = sc.cwnd_validation;

  for (int i = 0; i < n; ++i) {
    Node& client = *nodes_[static_cast<std::size_t>(i)];
    SimplexLink* up = add_link(
        gw1, std::make_unique<DropTailQueue>(sc.client_queue_buffer),
        sc.client_bw_bps, sc.client_delay_for(i));
    client.add_route(Node::kDefaultRoute, up);
    SimplexLink* down = add_link(
        client, std::make_unique<DropTailQueue>(sc.client_queue_buffer),
        sc.client_bw_bps, sc.client_delay_for(i));
    gw1.add_route(i, down);

    switch (sc.transport) {
      case Transport::kUdp:
        senders_.push_back(std::make_unique<UdpSender>(sim_, client, i, srv,
                                                       sc.payload_bytes));
        sinks_.push_back(std::make_unique<UdpSink>(sim_, server, i, i));
        break;
      case Transport::kTahoe:
        senders_.push_back(
            std::make_unique<TcpTahoe>(sim_, client, i, srv, tcp_cfg));
        break;
      case Transport::kReno:
        senders_.push_back(
            std::make_unique<TcpReno>(sim_, client, i, srv, tcp_cfg));
        break;
      case Transport::kNewReno:
        senders_.push_back(
            std::make_unique<TcpNewReno>(sim_, client, i, srv, tcp_cfg));
        break;
      case Transport::kVegas:
        senders_.push_back(std::make_unique<TcpVegas>(sim_, client, i, srv,
                                                      tcp_cfg, sc.vegas));
        break;
      case Transport::kSack:
        senders_.push_back(
            std::make_unique<TcpSack>(sim_, client, i, srv, tcp_cfg));
        break;
    }
    if (sc.transport != Transport::kUdp) {
      TcpSinkConfig sink_cfg;
      sink_cfg.delayed_ack = sc.delayed_ack;
      sink_cfg.sack = sc.transport == Transport::kSack;
      sinks_.push_back(
          std::make_unique<TcpSink>(sim_, server, i, i, sink_cfg));
    }
    sources_.push_back(std::make_unique<PoissonSource>(
        sim_, *senders_.back(), sc.mean_interarrival, sim_.rng().fork()));
  }
}

void Tandem::start_sources() {
  for (auto& s : sources_) s->start();
}

TcpSender* Tandem::tcp_sender(int i) {
  return dynamic_cast<TcpSender*>(senders_.at(static_cast<std::size_t>(i)).get());
}

std::uint64_t Tandem::total_delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      total += static_cast<std::uint64_t>(tcp->rcv_nxt());
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      total += udp->packets_received();
    }
  }
  return total;
}

std::uint64_t Tandem::routing_errors() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->routing_errors();
  return total;
}

}  // namespace burst
