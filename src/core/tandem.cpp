#include "src/core/tandem.hpp"

namespace burst {

Tandem::Tandem(Simulator& sim, const TandemConfig& cfg)
    : cfg_(cfg),
      net_(sim, make_tandem_spec(cfg.base, cfg.second_hop_ratio)) {}

}  // namespace burst
