#include "src/core/scenario.hpp"

#include <sstream>

#include "src/net/packet.hpp"

namespace burst {

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kUdp: return "UDP";
    case Transport::kTahoe: return "Tahoe";
    case Transport::kReno: return "Reno";
    case Transport::kNewReno: return "NewReno";
    case Transport::kVegas: return "Vegas";
    case Transport::kSack: return "Sack";
  }
  return "?";
}

std::string to_string(GatewayQueue q) {
  switch (q) {
    case GatewayQueue::kDropTail: return "FIFO";
    case GatewayQueue::kRed: return "RED";
    case GatewayQueue::kDrr: return "DRR";
  }
  return "?";
}

int Scenario::wire_bytes() const { return payload_bytes + kHeaderBytes; }

double Scenario::bottleneck_pps() const {
  return bottleneck_bw_bps / (8.0 * wire_bytes());
}

double Scenario::offered_pps() const {
  return static_cast<double>(num_clients) / mean_interarrival;
}

double Scenario::saturation_clients() const {
  return bottleneck_pps() * mean_interarrival;
}

Time Scenario::client_delay_for(int i) const {
  if (client_delay_spread <= 0.0 || num_clients < 2) return client_delay;
  const double position =
      2.0 * static_cast<double>(i) / static_cast<double>(num_clients - 1) -
      1.0;  // -1 .. +1 across the client population
  return client_delay * (1.0 + client_delay_spread * position);
}

RedConfig Scenario::red_config() const {
  RedConfig cfg;
  cfg.min_th = red_min_th;
  cfg.max_th = red_max_th;
  cfg.max_p = red_max_p;
  cfg.weight = red_weight;
  cfg.capacity = gateway_buffer;
  cfg.mean_pkt_tx_time = transmission_time(wire_bytes(), bottleneck_bw_bps);
  cfg.ecn = ecn;
  cfg.adaptive = adaptive_red;
  return cfg;
}

DrrConfig Scenario::drr_config() const {
  DrrConfig cfg;
  cfg.capacity = gateway_buffer;
  cfg.quantum_bytes = wire_bytes();
  return cfg;
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << to_string(transport);
  if (delayed_ack) os << "/DelAck";
  if (gateway == GatewayQueue::kRed) {
    os << (adaptive_red ? "/ARED" : "/RED");
    if (ecn) os << "+ECN";
  } else if (gateway == GatewayQueue::kDrr) {
    os << "/DRR";
  }
  os << " N=" << num_clients;
  return os.str();
}

}  // namespace burst
