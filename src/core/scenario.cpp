#include "src/core/scenario.hpp"

#include <cmath>
#include <sstream>

#include "src/net/packet.hpp"

namespace burst {

std::string to_string(Transport t) {
  switch (t) {
    case Transport::kUdp: return "UDP";
    case Transport::kTahoe: return "Tahoe";
    case Transport::kReno: return "Reno";
    case Transport::kNewReno: return "NewReno";
    case Transport::kVegas: return "Vegas";
    case Transport::kSack: return "Sack";
  }
  return "?";
}

std::string to_string(GatewayQueue q) {
  switch (q) {
    case GatewayQueue::kDropTail: return "FIFO";
    case GatewayQueue::kRed: return "RED";
    case GatewayQueue::kDrr: return "DRR";
  }
  return "?";
}

int Scenario::wire_bytes() const { return payload_bytes + kHeaderBytes; }

double Scenario::bottleneck_pps() const {
  return scaled_bottleneck_bw_bps() / (8.0 * wire_bytes());
}

double Scenario::meanfield_factor() const {
  if (meanfield_base <= 0) return 1.0;
  return static_cast<double>(num_clients) / static_cast<double>(meanfield_base);
}

double Scenario::scaled_bottleneck_bw_bps() const {
  // Early-out rather than *1.0 so base==0 is byte-for-byte the raw value
  // (multiplying by 1.0 is also exact, but the intent reads better).
  if (meanfield_base <= 0) return bottleneck_bw_bps;
  return bottleneck_bw_bps * meanfield_factor();
}

std::size_t Scenario::scaled_gateway_buffer() const {
  if (meanfield_base <= 0) return gateway_buffer;
  const double scaled =
      static_cast<double>(gateway_buffer) * meanfield_factor();
  return static_cast<std::size_t>(std::llround(scaled));
}

double Scenario::scaled_red_min_th() const {
  if (meanfield_base <= 0) return red_min_th;
  return red_min_th * meanfield_factor();
}

double Scenario::scaled_red_max_th() const {
  if (meanfield_base <= 0) return red_max_th;
  return red_max_th * meanfield_factor();
}

double Scenario::offered_pps() const {
  return static_cast<double>(num_clients) / mean_interarrival;
}

double Scenario::saturation_clients() const {
  return bottleneck_pps() * mean_interarrival;
}

Time Scenario::client_delay_for(int i) const {
  if (client_delay_spread <= 0.0 || num_clients < 2) return client_delay;
  const double position =
      2.0 * static_cast<double>(i) / static_cast<double>(num_clients - 1) -
      1.0;  // -1 .. +1 across the client population
  return client_delay * (1.0 + client_delay_spread * position);
}

RedConfig Scenario::red_config() const {
  RedConfig cfg;
  cfg.min_th = scaled_red_min_th();
  cfg.max_th = scaled_red_max_th();
  cfg.max_p = red_max_p;
  cfg.weight = red_weight;
  cfg.capacity = scaled_gateway_buffer();
  cfg.mean_pkt_tx_time =
      transmission_time(wire_bytes(), scaled_bottleneck_bw_bps());
  cfg.ecn = ecn;
  cfg.adaptive = adaptive_red;
  return cfg;
}

DrrConfig Scenario::drr_config() const {
  DrrConfig cfg;
  cfg.capacity = scaled_gateway_buffer();
  cfg.quantum_bytes = wire_bytes();
  return cfg;
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << to_string(transport);
  if (delayed_ack) os << "/DelAck";
  if (gateway == GatewayQueue::kRed) {
    os << (adaptive_red ? "/ARED" : "/RED");
    if (ecn) os << "+ECN";
  } else if (gateway == GatewayQueue::kDrr) {
    os << "/DRR";
  }
  os << " N=" << num_clients;
  return os.str();
}

}  // namespace burst
