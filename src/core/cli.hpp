// Command-line front end for running one experiment: parses `--key=value`
// options into a Scenario + ExperimentOptions. Lives in the library (not
// the tool) so the parsing rules are unit-testable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/core/scenario.hpp"

namespace burst {

struct CliRequest {
  Scenario scenario;
  ExperimentOptions options;
  std::string csv_path;    // if non-empty, write cwnd traces as CSV here
  std::string trace_path;  // if non-empty, attach a TraceSink and write
                           // <path>.jsonl + <path>.perfetto.json (and, for
                           // parallel runs, <path>.runtime.perfetto.json)
  std::string fr_path;     // if non-empty, attach a FlightRecorder and
                           // write <path>.csv + <path>.jsonl
  double fr_period = 0.1;  // flight-recorder cadence (simulated seconds)
  int fr_cap = 4096;       // flight-recorder sample budget
  bool profile = false;    // print the per-LP phase table even when lp=1
  bool show_help = false;
};

struct CliError {
  std::string message;
};

/// Parses argv (excluding argv[0]). Recognized options:
///   --transport=udp|tahoe|reno|newreno|vegas|sack
///   --queue=fifo|red|drr       --clients=N       --duration=SECONDS
///   --seed=N                   --delack          --ecn
///   --adaptive-red             --buffer=PKTS     --bottleneck-mbps=X
///   --mean-interarrival=SECS   --trace=i,j,...   --csv=PATH
///   --red-min=X --red-max=X --red-maxp=X         --trace-out=PATH
///   --help
/// Returns the parsed request, or an error describing the bad option.
std::optional<CliRequest> parse_cli(const std::vector<std::string>& args,
                                    CliError* error);

/// The --help text.
std::string cli_usage();

}  // namespace burst
