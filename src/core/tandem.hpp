// Tandem ("parking-lot") topology: the multi-gateway extension of the
// paper's Figure 1. All clients traverse two bottlenecks in series:
//
//   clients --(mu_c)--> gateway1 --(mu_s)--> gateway2 --(r*mu_s)--> server
//
// with the second hop narrowed by `second_hop_ratio` so both queues are
// exercised. Used by the multihop ablation: how does TCP-modulated
// traffic look after it has been shaped by an upstream bottleneck?
#pragma once

#include <memory>
#include <vector>

#include "src/app/poisson_source.hpp"
#include "src/core/scenario.hpp"
#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"
#include "src/transport/udp.hpp"

namespace burst {

struct TandemConfig {
  Scenario base;                 // client/bottleneck parameters, transport
  double second_hop_ratio = 0.9; // second bottleneck = ratio * mu_s
};

class Tandem {
 public:
  Tandem(Simulator& sim, const TandemConfig& cfg);

  void start_sources();

  Queue& first_queue() { return hop1_->queue(); }
  Queue& second_queue() { return hop2_->queue(); }

  int num_clients() const { return cfg_.base.num_clients; }
  Agent& sender(int i) { return *senders_.at(static_cast<std::size_t>(i)); }
  TcpSender* tcp_sender(int i);
  std::uint64_t total_delivered() const;
  std::uint64_t routing_errors() const;

 private:
  Simulator& sim_;
  TandemConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<SimplexLink>> links_;
  SimplexLink* hop1_ = nullptr;
  SimplexLink* hop2_ = nullptr;
  std::vector<std::unique_ptr<Agent>> senders_;
  std::vector<std::unique_ptr<Agent>> sinks_;
  std::vector<std::unique_ptr<PoissonSource>> sources_;
};

}  // namespace burst
