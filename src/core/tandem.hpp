// Tandem ("parking-lot") topology: the multi-gateway extension of the
// paper's Figure 1. All clients traverse two bottlenecks in series:
//
//   clients --(mu_c)--> gateway1 --(mu_s)--> gateway2 --(r*mu_s)--> server
//
// with the second hop narrowed by `second_hop_ratio` so both queues are
// exercised. Used by the multihop ablation: how does TCP-modulated
// traffic look after it has been shaped by an upstream bottleneck?
//
// A facade over TopoNet building make_tandem_spec(base, ratio); the
// declarative `.topo` route is examples/topologies/parking_lot_n30.topo.
#pragma once

#include "src/core/scenario.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/builder.hpp"
#include "src/transport/tcp_sender.hpp"

namespace burst {

struct TandemConfig {
  Scenario base;                 // client/bottleneck parameters, transport
  double second_hop_ratio = 0.9; // second bottleneck = ratio * mu_s
};

class Tandem {
 public:
  Tandem(Simulator& sim, const TandemConfig& cfg);

  void start_sources() { net_.start_sources(); }

  Queue& first_queue() { return net_.link(0).queue(); }
  Queue& second_queue() { return net_.link(1).queue(); }

  int num_clients() const { return cfg_.base.num_clients; }
  Agent& sender(int i) { return net_.sender(i); }
  TcpSender* tcp_sender(int i) { return net_.tcp_sender(i); }
  std::uint64_t total_delivered() const { return net_.total_delivered(); }
  std::uint64_t routing_errors() const { return net_.routing_errors(); }

 private:
  TandemConfig cfg_;
  TopoNet net_;
};

}  // namespace burst
