// Client-count sweeps over protocol/queue configurations: the engine
// behind Figures 2, 3, 4 and 13, which all plot a metric against the
// number of clients for each transport variant.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/core/scenario.hpp"

namespace burst {

/// A named configuration: how to derive a scenario from the paper default.
struct SweepConfig {
  std::string name;
  std::function<void(Scenario&)> apply;
};

/// The paper's Fig 2 protocol set, in plot order: UDP, Reno, Reno/RED,
/// Vegas, Vegas/RED, Reno/DelayAck.
std::vector<SweepConfig> paper_protocol_set(bool include_udp = true);

struct SweepPoint {
  int num_clients = 0;
  ExperimentResult result;
};

struct SweepSeries {
  std::string name;
  std::vector<SweepPoint> points;
};

/// Runs @p base over every n in @p client_counts for every config. Runs
/// are independent and executed in parallel across hardware threads.
std::vector<SweepSeries> sweep_clients(const Scenario& base,
                                       const std::vector<int>& client_counts,
                                       const std::vector<SweepConfig>& configs);

/// Convenience: inclusive integer range with stride.
std::vector<int> range(int lo, int hi, int step = 1);

}  // namespace burst
