// The paper's Figure 1 topology: N clients, each on its own full-duplex
// link to a common gateway, which connects to the server over a full-
// duplex bottleneck link. All data-direction queueing of interest happens
// in the gateway's bottleneck queue (DropTail or RED).
//
//   clients 0..N-1  --(mu_c, tau_c)-->  gateway  --(mu_s, tau_s)-->  server
//
// Node ids: client i = i, gateway = N, server = N+1. Flow id = client idx.
#pragma once

#include <memory>
#include <vector>

#include "src/app/poisson_source.hpp"
#include "src/core/scenario.hpp"
#include "src/net/flow_monitor.hpp"
#include "src/net/node.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/transport_trace.hpp"
#include "src/sim/simulator.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"
#include "src/transport/udp.hpp"

namespace burst {

class Dumbbell {
 public:
  Dumbbell(Simulator& sim, const Scenario& scenario);

  /// Starts every client's Poisson source.
  void start_sources();

  /// The gateway->server queue under study (tap this for c.o.v.).
  Queue& bottleneck_queue() { return bottleneck_->queue(); }
  SimplexLink& bottleneck_link() { return *bottleneck_; }
  const SimplexLink& bottleneck_link() const { return *bottleneck_; }

  /// Wires every observable component into @p sink: the bottleneck queue
  /// and link, each TCP sink, each Poisson source, a TransportTracer per
  /// TCP sender (installed as the sender's observer), a Vegas Diff tap
  /// when the transport is Vegas, and a FlowMonitor clustering bottleneck
  /// drops into kCongestionEvent records. @p sink must outlive the run.
  /// Idempotent per Dumbbell only in the sense that calling it twice
  /// double-registers — call exactly once.
  void attach_trace(TraceSink& sink);

  /// Registers the run's component counters (bottleneck queue/link,
  /// aggregate TCP sender and sink stats) into @p registry. Counter
  /// values are captured at the call, so call after run() for totals.
  void register_metrics(MetricsRegistry& registry) const;

  /// The drop-cluster monitor created by attach_trace() (null before).
  const FlowMonitor* congestion_monitor() const { return monitor_.get(); }

  int num_clients() const { return scenario_.num_clients; }

  /// Sender agent of client @p i; null-safe typed accessors below.
  Agent& sender(int i) { return *senders_.at(static_cast<std::size_t>(i)); }
  /// TCP sender of client @p i, or nullptr when transport is UDP.
  TcpSender* tcp_sender(int i);
  /// TCP sink of client @p i's flow, or nullptr when transport is UDP.
  TcpSink* tcp_sink(int i);
  UdpSink* udp_sink(int i);
  PoissonSource& source(int i) {
    return *sources_.at(static_cast<std::size_t>(i));
  }

  Node& gateway() { return *nodes_.at(static_cast<std::size_t>(num_clients())); }
  Node& server() { return *nodes_.at(static_cast<std::size_t>(num_clients()) + 1); }
  Node& client(int i) { return *nodes_.at(static_cast<std::size_t>(i)); }

  /// Application packets generated across all clients.
  std::uint64_t total_generated() const;
  /// Unique packets delivered in order to the server across all flows.
  std::uint64_t total_delivered() const;
  /// Per-flow delivered counts (fairness analysis).
  std::vector<double> per_flow_delivered() const;
  /// One-way data-path delay pooled across all sinks.
  RunningStats pooled_delay() const;
  /// Sum of routing errors across all nodes (must stay 0; tests assert).
  std::uint64_t routing_errors() const;

 private:
  Simulator& sim_;
  Scenario scenario_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<SimplexLink>> links_;
  SimplexLink* bottleneck_ = nullptr;
  std::vector<std::unique_ptr<Agent>> senders_;
  std::vector<std::unique_ptr<Agent>> sinks_;
  std::vector<std::unique_ptr<PoissonSource>> sources_;

  // Created by attach_trace(); must outlive the senders' observer use.
  std::vector<std::unique_ptr<TransportTracer>> tracers_;
  std::unique_ptr<FlowMonitor> monitor_;
};

}  // namespace burst
