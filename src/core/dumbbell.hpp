// The paper's Figure 1 topology: N clients, each on its own full-duplex
// link to a common gateway, which connects to the server over a full-
// duplex bottleneck link. All data-direction queueing of interest happens
// in the gateway's bottleneck queue (DropTail or RED).
//
//   clients 0..N-1  --(mu_c, tau_c)-->  gateway  --(mu_s, tau_s)-->  server
//
// Node ids: client i = i, gateway = N, server = N+1. Flow id = client idx.
//
// Since the topology subsystem landed this is a thin facade over TopoNet
// building make_dumbbell_spec(scenario) — the historical accessor surface
// and metric/trace names are preserved verbatim (identity tests pin them).
#pragma once

#include "src/app/poisson_source.hpp"
#include "src/core/scenario.hpp"
#include "src/net/flow_monitor.hpp"
#include "src/net/node.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/builder.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"
#include "src/transport/udp.hpp"

namespace burst {

class Dumbbell {
 public:
  Dumbbell(Simulator& sim, const Scenario& scenario);

  /// Starts every client's Poisson source.
  void start_sources() { net_.start_sources(); }

  /// The gateway->server queue under study (tap this for c.o.v.).
  Queue& bottleneck_queue() { return net_.measured_queue(); }
  SimplexLink& bottleneck_link() { return net_.measured_link(); }
  const SimplexLink& bottleneck_link() const { return net_.measured_link(); }

  /// Wires every observable component into @p sink: the bottleneck queue
  /// and link, each TCP sink, each Poisson source, a TransportTracer per
  /// TCP sender (installed as the sender's observer), a Vegas Diff tap
  /// when the transport is Vegas, and a FlowMonitor clustering bottleneck
  /// drops into kCongestionEvent records. @p sink must outlive the run.
  /// Idempotent per Dumbbell only in the sense that calling it twice
  /// double-registers — call exactly once.
  void attach_trace(TraceSink& sink) {
    net_.attach_trace(sink,
                      {"queue:gateway", "link:bottleneck", "sink:server"});
  }

  /// Registers the run's component counters (bottleneck queue/link,
  /// aggregate TCP sender and sink stats) into @p registry. Counter
  /// values are captured at the call, so call after run() for totals.
  void register_metrics(MetricsRegistry& registry) const {
    net_.register_metrics(registry, {"queue.gateway", "link.bottleneck"});
  }

  /// The drop-cluster monitor created by attach_trace() (null before).
  const FlowMonitor* congestion_monitor() const {
    return net_.congestion_monitor();
  }

  int num_clients() const { return scenario_.num_clients; }

  /// Sender agent of client @p i; null-safe typed accessors below.
  Agent& sender(int i) { return net_.sender(i); }
  /// TCP sender of client @p i, or nullptr when transport is UDP.
  TcpSender* tcp_sender(int i) { return net_.tcp_sender(i); }
  /// TCP sink of client @p i's flow, or nullptr when transport is UDP.
  TcpSink* tcp_sink(int i) { return net_.tcp_sink(i); }
  UdpSink* udp_sink(int i) { return net_.udp_sink(i); }
  PoissonSource& source(int i) { return net_.source(i); }

  Node& gateway() { return net_.node(num_clients()); }
  Node& server() { return net_.node(num_clients() + 1); }
  Node& client(int i) { return net_.node(i); }

  /// Application packets generated across all clients.
  std::uint64_t total_generated() const { return net_.total_generated(); }
  /// Unique packets delivered in order to the server across all flows.
  std::uint64_t total_delivered() const { return net_.total_delivered(); }
  /// Per-flow delivered counts (fairness analysis).
  std::vector<double> per_flow_delivered() const {
    return net_.per_flow_delivered();
  }
  /// One-way data-path delay pooled across all sinks.
  RunningStats pooled_delay() const { return net_.pooled_delay(); }
  /// The per-flow SoA state block (flight-recorder cwnd histograms).
  const FlowArena& flow_arena() const { return net_.flow_arena(); }
  /// Sum of routing errors across all nodes (must stay 0; tests assert).
  std::uint64_t routing_errors() const { return net_.routing_errors(); }

 private:
  Scenario scenario_;
  TopoNet net_;
};

}  // namespace burst
