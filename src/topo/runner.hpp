// Runs one TopoSpec end to end and collects the same ExperimentResult the
// dumbbell pipeline produces, with the spec's measured link standing in
// for the gateway bottleneck.
//
// Canonical-dumbbell fast path: a spec whose graph IS the paper dumbbell
// (see is_canonical_dumbbell) delegates to run_experiment() so the result
// — including metric names and the pinned identity hashes — is
// bit-identical to the hard-coded path. Everything else runs through the
// generic TopoNet with "queue.measured"/"link.measured" metric names.
#pragma once

#include "src/core/experiment.hpp"
#include "src/topo/spec.hpp"

namespace burst {

/// @p force_generic skips the canonical-dumbbell delegation (test hook:
/// the generic path must reproduce the delegated one's dynamics).
ExperimentResult run_topo_experiment(const TopoSpec& spec,
                                     const ExperimentOptions& options = {},
                                     bool force_generic = false);

}  // namespace burst
