// Node → logical-process assignment for the conservative parallel engine.
//
// The partitioner cuts a TopoSpec along the dumbbell's natural seams:
// traffic-source nodes on one side, the interior (gateways) and the
// sink-side nodes on the other. Every cut edge crosses a SimplexLink, so
// the minimum propagation delay over the cut links is a strictly positive
// lookahead — the YAWNS window's safety margin (DESIGN.md §13).
//
// Shapes:
//   shards == 2:  {all source nodes} | {everything else}
//   shards >= 3:  (shards - 2) contiguous source shards | interior | sinks
//
// A request the topology cannot honor — no cut at all, a zero-delay cut
// link, fewer source nodes than source shards — degrades gracefully: the
// partition clamps (down to the sequential engine when shards would reach
// 1) and records why in `note`, rather than failing the run.
#pragma once

#include <string>
#include <vector>

#include "src/sim/time.hpp"
#include "src/topo/spec.hpp"

namespace burst {

struct LpPartition {
  /// Effective LP count after clamping; 1 means "run sequentially".
  int shards = 1;
  /// Node id -> owning LP (empty when shards == 1).
  std::vector<int> node_lp;
  /// Minimum propagation delay over the cut links: the window lookahead.
  Time lookahead = 0.0;
  /// Expanded links whose endpoints land in different LPs.
  int cut_links = 0;
  /// Human-readable reason whenever shards differs from the request.
  std::string note;

  int lp_of(int node) const {
    return shards <= 1 ? 0 : node_lp[static_cast<std::size_t>(node)];
  }
};

/// Partitions @p spec into (up to) @p requested LPs. requested <= 1 — and
/// any spec the shapes above cannot cut with positive lookahead — yields
/// the sequential partition (shards == 1).
LpPartition make_lp_partition(const TopoSpec& spec, int requested);

}  // namespace burst
