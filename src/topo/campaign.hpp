// Scenario-file campaigns: a `.camp` spec sweeps fields over one or more
// `.topo` topology files and farms the points through the shared
// ResultStore claim protocol, so any number of worker processes can chew
// on the same campaign concurrently with zero duplicated simulations and
// crash-safe resume.
//
// Grammar (one statement per line, `#` comments):
//
//   campaign NAME            # optional; defaults to the file stem
//   scenario PATH            # repeatable; relative to the .camp file
//   metric NAME              # CSV metric column (default: cov)
//   set FIELD VALUE          # fixed override applied to every point
//   sweep FIELD V1 V2 ...    # cartesian axis; repeatable
//
// Points = scenario files x the cartesian product of every sweep axis.
// Each point re-parses its .topo file with `set` + sweep assignments as
// overrides, so validation and fingerprinting see exactly what will run.
// Unless `seed` itself is set or swept, each point's seed is derived from
// (file seed, "<scenario> <label>") — decorrelated across points, stable
// across runs and worker counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/experiment.hpp"
#include "src/run/scenario_key.hpp"
#include "src/topo/parser.hpp"

namespace burst {

struct TopoCampaignSweep {
  std::string field;
  std::vector<std::string> values;
};

struct TopoCampaignSpec {
  std::string name;
  std::string metric = "cov";
  std::vector<std::string> scenario_files;  // resolved against the .camp dir
  TopoOverrides sets;
  std::vector<TopoCampaignSweep> sweeps;

  /// scenario_files.size() x product of sweep axis sizes.
  std::size_t num_points() const;
};

/// Parses a `.camp` spec. Relative `scenario` paths are resolved against
/// @p base_dir. Returns false and fills *err on malformed input.
bool parse_camp(const std::string& text, const std::string& default_name,
                const std::string& base_dir, TopoCampaignSpec* out,
                TopoError* err);

/// Reads and parses @p path; campaign name defaults to the file stem.
bool load_camp_file(const std::string& path, TopoCampaignSpec* out,
                    TopoError* err);

/// Looks up a scalar ExperimentResult metric by `.camp` metric name
/// (cov, poisson_cov, loss_pct, delivered, timeouts, fairness,
/// mean_delay, ...). Returns nullptr for unknown names.
double (*topo_campaign_metric(const std::string& name))(
    const ExperimentResult&);

struct TopoCampaignPoint {
  std::string scenario;  // topo file stem
  std::string label;     // "field=v field=v" sweep assignment, "" if none
  std::vector<std::pair<std::string, std::string>> assignment;
  ScenarioKey key;
  std::uint64_t seed = 0;
  int num_clients = 0;
  ExperimentResult result;
};

struct TopoCampaignOptions {
  /// ResultStore directory shared by every worker; empty disables both
  /// caching and cross-worker claim coordination.
  std::string cache_dir;
  bool use_cache = true;
  unsigned threads = 0;  // 0 = hardware concurrency
  /// Where `<name>.csv` goes; empty disables the artifact.
  std::string artifact_dir;
  std::ostream* log = nullptr;
};

struct TopoCampaignStats {
  std::size_t planned = 0;
  std::size_t unique = 0;
  std::size_t cache_hits = 0;   // served from the store at probe time
  std::size_t simulated = 0;    // run by THIS worker
  std::size_t farmed_out = 0;   // run by a concurrent worker, absorbed
  std::size_t store_skipped = 0;
};

struct TopoCampaignOutput {
  std::string name;
  std::vector<TopoCampaignPoint> points;
  TopoCampaignStats stats;
  std::string csv_path;  // "" unless the artifact was written
};

/// Expands, validates, simulates (claim-aware when a cache_dir is set)
/// and optionally persists a campaign. Returns nullopt and fills *err on
/// any spec/topology error; the error's file context is already rendered
/// into err->message where it concerns a scenario file.
std::optional<TopoCampaignOutput> run_topo_campaign(
    const TopoCampaignSpec& spec, const TopoCampaignOptions& opts,
    TopoError* err);

}  // namespace burst
