#include "src/topo/spec.hpp"

#include <cassert>
#include <sstream>

namespace burst {

int TopoSpec::total_nodes() const {
  int total = 0;
  for (const TopoNodeSpec& n : nodes) total += n.count;
  return total;
}

int TopoSpec::node_id(int spec_index, int member) const {
  int base = 0;
  for (int i = 0; i < spec_index; ++i) {
    base += nodes[static_cast<std::size_t>(i)].count;
  }
  assert(member >= 0 &&
         member < nodes[static_cast<std::size_t>(spec_index)].count);
  return base + member;
}

std::string TopoSpec::canonical() const {
  std::ostringstream os;
  os << std::hexfloat;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << 'n' << i << '=' << std::dec << nodes[i].count << ';';
  }
  for (std::size_t i = 0; i < links.size(); ++i) {
    const TopoLinkSpec& l = links[i];
    os << 'l' << i << '=' << std::dec << l.from << '>' << l.to
       << ",rate=" << std::hexfloat << l.rate_bps << ",delay=" << l.delay
       << ",spread=" << l.delay_spread;
    switch (l.queue.kind) {
      case PortQueueSpec::Kind::kDefault:
        os << ",q=none";
        break;
      case PortQueueSpec::Kind::kDropTail:
        os << ",q=droptail,cap=" << std::dec << l.queue.capacity;
        break;
      case PortQueueSpec::Kind::kRed:
        os << ",q=red,min=" << std::hexfloat << l.queue.red_min_th
           << ",max=" << l.queue.red_max_th << ",maxp=" << l.queue.red_max_p
           << ",w=" << l.queue.red_weight << ",cap=" << std::dec
           << l.queue.capacity << ",ecn=" << (l.queue.red_ecn ? 1 : 0)
           << ",ar=" << (l.queue.red_adaptive ? 1 : 0);
        break;
      case PortQueueSpec::Kind::kDrr:
        os << ",q=drr,cap=" << std::dec << l.queue.capacity
           << ",quantum=" << l.queue.drr_quantum_bytes;
        break;
    }
    os << ';';
  }
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const TopoFlowSpec& f = flows[i];
    os << 'f' << i << '=' << std::dec << f.src << '>' << f.dst
       << ",t=" << to_string(f.transport) << ",da=" << (f.delayed_ack ? 1 : 0)
       << ",poisson=" << std::hexfloat << f.mean_interarrival << ';';
  }
  os << "measure=" << std::dec << measure_link << ';';
  return os.str();
}

/// The gateway discipline of @p sc as an explicit per-port queue spec —
/// explicit even for DropTail, because the hard-coded Dumbbell consumes
/// one RNG fork for the gateway queue unconditionally and the builder's
/// fork discipline is "one fork per explicit queue".
PortQueueSpec gateway_port_queue(const Scenario& sc) {
  PortQueueSpec q;
  switch (sc.gateway) {
    case GatewayQueue::kRed: {
      q.kind = PortQueueSpec::Kind::kRed;
      q.capacity = sc.scaled_gateway_buffer();
      q.red_min_th = sc.scaled_red_min_th();
      q.red_max_th = sc.scaled_red_max_th();
      q.red_max_p = sc.red_max_p;
      q.red_weight = sc.red_weight;
      q.red_ecn = sc.ecn;
      q.red_adaptive = sc.adaptive_red;
      break;
    }
    case GatewayQueue::kDrr:
      q.kind = PortQueueSpec::Kind::kDrr;
      q.capacity = sc.scaled_gateway_buffer();
      q.drr_quantum_bytes = sc.wire_bytes();
      break;
    case GatewayQueue::kDropTail:
      q.kind = PortQueueSpec::Kind::kDropTail;
      q.capacity = sc.scaled_gateway_buffer();
      break;
  }
  return q;
}

Time topo_member_delay(const TopoLinkSpec& l, int j, int count) {
  if (l.delay_spread <= 0.0 || count < 2) return l.delay;
  const double position =
      2.0 * static_cast<double>(j) / static_cast<double>(count - 1) - 1.0;
  return l.delay * (1.0 + l.delay_spread * position);
}

TopoSpec make_dumbbell_spec(const Scenario& sc) {
  TopoSpec spec;
  spec.name = "dumbbell";
  spec.scenario = sc;
  // Node ids: client i = i, gateway = N, server = N+1 — declaration order
  // fixes the same layout the hard-coded Dumbbell uses.
  spec.nodes.push_back({"client", sc.num_clients, 0});
  spec.nodes.push_back({"gateway", 1, 0});
  spec.nodes.push_back({"server", 1, 0});
  const int client = 0, gateway = 1, server = 2;

  // Link statement order mirrors Dumbbell's construction: bottleneck
  // first (its explicit queue takes the first RNG fork), then the ACK
  // reverse path, then the client edges.
  TopoLinkSpec bottleneck;
  bottleneck.from = gateway;
  bottleneck.to = server;
  bottleneck.rate_bps = sc.scaled_bottleneck_bw_bps();
  bottleneck.delay = sc.bottleneck_delay;
  bottleneck.queue = gateway_port_queue(sc);
  spec.links.push_back(bottleneck);

  TopoLinkSpec reverse;
  reverse.from = server;
  reverse.to = gateway;
  reverse.rate_bps = sc.scaled_bottleneck_bw_bps();
  reverse.delay = sc.bottleneck_delay;
  spec.links.push_back(reverse);

  TopoLinkSpec up;
  up.from = client;
  up.to = gateway;
  up.rate_bps = sc.client_bw_bps;
  up.delay = sc.client_delay;
  up.delay_spread = sc.client_delay_spread;
  spec.links.push_back(up);

  TopoLinkSpec down;
  down.from = gateway;
  down.to = client;
  down.rate_bps = sc.client_bw_bps;
  down.delay = sc.client_delay;
  down.delay_spread = sc.client_delay_spread;
  spec.links.push_back(down);

  TopoFlowSpec flow;
  flow.src = client;
  flow.dst = server;
  flow.transport = sc.transport;
  flow.delayed_ack = sc.delayed_ack;
  flow.mean_interarrival = sc.mean_interarrival;
  spec.flows.push_back(flow);

  spec.measure_link = 0;
  return spec;
}

TopoSpec make_tandem_spec(const Scenario& sc, double second_hop_ratio) {
  TopoSpec spec;
  spec.name = "parking_lot";
  spec.scenario = sc;
  spec.nodes.push_back({"client", sc.num_clients, 0});
  spec.nodes.push_back({"gw1", 1, 0});
  spec.nodes.push_back({"gw2", 1, 0});
  spec.nodes.push_back({"server", 1, 0});
  const int client = 0, gw1 = 1, gw2 = 2, server = 3;
  const double bw2 = sc.scaled_bottleneck_bw_bps() * second_hop_ratio;

  TopoLinkSpec hop1;
  hop1.from = gw1;
  hop1.to = gw2;
  hop1.rate_bps = sc.scaled_bottleneck_bw_bps();
  hop1.delay = sc.bottleneck_delay;
  hop1.queue = gateway_port_queue(sc);
  spec.links.push_back(hop1);

  TopoLinkSpec hop2;
  hop2.from = gw2;
  hop2.to = server;
  hop2.rate_bps = bw2;
  hop2.delay = sc.bottleneck_delay;
  hop2.queue = gateway_port_queue(sc);
  spec.links.push_back(hop2);

  TopoLinkSpec rev1;
  rev1.from = server;
  rev1.to = gw2;
  rev1.rate_bps = bw2;
  rev1.delay = sc.bottleneck_delay;
  spec.links.push_back(rev1);

  TopoLinkSpec rev2;
  rev2.from = gw2;
  rev2.to = gw1;
  rev2.rate_bps = sc.scaled_bottleneck_bw_bps();
  rev2.delay = sc.bottleneck_delay;
  spec.links.push_back(rev2);

  TopoLinkSpec up;
  up.from = client;
  up.to = gw1;
  up.rate_bps = sc.client_bw_bps;
  up.delay = sc.client_delay;
  up.delay_spread = sc.client_delay_spread;
  spec.links.push_back(up);

  TopoLinkSpec down;
  down.from = gw1;
  down.to = client;
  down.rate_bps = sc.client_bw_bps;
  down.delay = sc.client_delay;
  down.delay_spread = sc.client_delay_spread;
  spec.links.push_back(down);

  TopoFlowSpec flow;
  flow.src = client;
  flow.dst = server;
  flow.transport = sc.transport;
  flow.delayed_ack = sc.delayed_ack;
  flow.mean_interarrival = sc.mean_interarrival;
  spec.flows.push_back(flow);

  spec.measure_link = 0;
  return spec;
}

bool is_canonical_dumbbell(const TopoSpec& spec) {
  return spec.canonical() == make_dumbbell_spec(spec.scenario).canonical();
}

ScenarioKey topo_key(const TopoSpec& spec, const ExperimentOptions& opts) {
  if (is_canonical_dumbbell(spec)) return scenario_key(spec.scenario, opts);
  return scenario_key_with_topology(spec.scenario, spec.canonical(), opts);
}

}  // namespace burst
