#include "src/topo/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "src/run/executor.hpp"
#include "src/run/result_store.hpp"
#include "src/topo/runner.hpp"

namespace burst {
namespace {

struct CampToken {
  std::string text;
  int col = 0;  // 1-based
};

std::vector<CampToken> camp_tokenize(const std::string& line) {
  std::vector<CampToken> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '#') {
      ++i;
    }
    out.push_back({line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return out;
}

bool camp_fail(TopoError* err, int line, int col, std::string msg) {
  err->line = line;
  err->col = col;
  err->message = std::move(msg);
  return false;
}

}  // namespace

std::size_t TopoCampaignSpec::num_points() const {
  std::size_t n = scenario_files.size();
  for (const TopoCampaignSweep& s : sweeps) n *= s.values.size();
  return n;
}

bool parse_camp(const std::string& text, const std::string& default_name,
                const std::string& base_dir, TopoCampaignSpec* out,
                TopoError* err) {
  TopoCampaignSpec spec;
  spec.name = default_name;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::vector<CampToken> tok = camp_tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0].text;
    if (kw == "campaign") {
      if (tok.size() != 2) {
        return camp_fail(err, lineno, tok[0].col, "expected: campaign NAME");
      }
      spec.name = tok[1].text;
    } else if (kw == "scenario") {
      if (tok.size() != 2) {
        return camp_fail(err, lineno, tok[0].col, "expected: scenario PATH");
      }
      std::filesystem::path p(tok[1].text);
      if (p.is_relative() && !base_dir.empty()) {
        p = std::filesystem::path(base_dir) / p;
      }
      spec.scenario_files.push_back(p.string());
    } else if (kw == "metric") {
      if (tok.size() != 2) {
        return camp_fail(err, lineno, tok[0].col, "expected: metric NAME");
      }
      if (!topo_campaign_metric(tok[1].text)) {
        return camp_fail(err, lineno, tok[1].col,
                         "unknown metric '" + tok[1].text + "'");
      }
      spec.metric = tok[1].text;
    } else if (kw == "set") {
      if (tok.size() != 3) {
        return camp_fail(err, lineno, tok[0].col, "expected: set FIELD VALUE");
      }
      spec.sets.emplace_back(tok[1].text, tok[2].text);
    } else if (kw == "sweep") {
      if (tok.size() < 3) {
        return camp_fail(err, lineno, tok[0].col,
                         "expected: sweep FIELD V1 [V2 ...]");
      }
      TopoCampaignSweep sw;
      sw.field = tok[1].text;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        sw.values.push_back(tok[i].text);
      }
      for (const TopoCampaignSweep& prev : spec.sweeps) {
        if (prev.field == sw.field) {
          return camp_fail(err, lineno, tok[1].col,
                           "duplicate sweep axis '" + sw.field + "'");
        }
      }
      spec.sweeps.push_back(std::move(sw));
    } else {
      return camp_fail(err, lineno, tok[0].col,
                       "unknown statement '" + kw + "'");
    }
  }
  if (spec.scenario_files.empty()) {
    return camp_fail(err, 0, 0, "campaign declares no scenario files");
  }
  *out = std::move(spec);
  return true;
}

bool load_camp_file(const std::string& path, TopoCampaignSpec* out,
                    TopoError* err) {
  std::ifstream in(path);
  if (!in) return camp_fail(err, 0, 0, "cannot read file");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::filesystem::path p(path);
  return parse_camp(buf.str(), p.stem().string(), p.parent_path().string(),
                    out, err);
}

double (*topo_campaign_metric(const std::string& name))(
    const ExperimentResult&) {
  using R = const ExperimentResult&;
  if (name == "cov") return +[](R r) { return r.cov; };
  if (name == "poisson_cov") return +[](R r) { return r.poisson_cov; };
  if (name == "mean_per_bin") return +[](R r) { return r.mean_per_bin; };
  if (name == "loss_pct") return +[](R r) { return r.loss_pct; };
  if (name == "delivered") {
    return +[](R r) { return static_cast<double>(r.delivered); };
  }
  if (name == "gw_arrivals") {
    return +[](R r) { return static_cast<double>(r.gw_arrivals); };
  }
  if (name == "gw_drops") {
    return +[](R r) { return static_cast<double>(r.gw_drops); };
  }
  if (name == "timeouts") {
    return +[](R r) { return static_cast<double>(r.timeouts); };
  }
  if (name == "fast_retransmits") {
    return +[](R r) { return static_cast<double>(r.fast_retransmits); };
  }
  if (name == "retransmits") {
    return +[](R r) { return static_cast<double>(r.retransmits); };
  }
  if (name == "timeout_dupack_ratio") {
    return +[](R r) { return r.timeout_dupack_ratio; };
  }
  if (name == "fairness") return +[](R r) { return r.fairness; };
  if (name == "mean_delay") return +[](R r) { return r.delay.mean(); };
  if (name == "max_delay") return +[](R r) { return r.delay.max(); };
  return nullptr;
}

std::optional<TopoCampaignOutput> run_topo_campaign(
    const TopoCampaignSpec& spec, const TopoCampaignOptions& opts,
    TopoError* err) {
  TopoCampaignOutput out;
  out.name = spec.name;
  double (*metric)(const ExperimentResult&) = topo_campaign_metric(spec.metric);
  if (!metric) {
    camp_fail(err, 0, 0, "unknown metric '" + spec.metric + "'");
    return std::nullopt;
  }

  // Does the campaign pin the seed itself? Then honor it verbatim.
  bool seed_fixed = false;
  for (const auto& [field, value] : spec.sets) {
    if (field == "seed") seed_fixed = true;
  }
  for (const TopoCampaignSweep& s : spec.sweeps) {
    if (s.field == "seed") seed_fixed = true;
  }

  // ---- Expand: files x cartesian sweep product; re-parse per point so
  // $field substitution sees each point's overrides. ---------------------
  std::vector<TopoSpec> specs;
  for (const std::string& file : spec.scenario_files) {
    std::vector<std::size_t> idx(spec.sweeps.size(), 0);
    for (;;) {
      TopoOverrides overrides = spec.sets;
      TopoCampaignPoint pt;
      pt.scenario = std::filesystem::path(file).stem().string();
      for (std::size_t a = 0; a < spec.sweeps.size(); ++a) {
        const std::string& field = spec.sweeps[a].field;
        const std::string& value = spec.sweeps[a].values[idx[a]];
        overrides.emplace_back(field, value);
        pt.assignment.emplace_back(field, value);
        if (!pt.label.empty()) pt.label += ' ';
        pt.label += field + "=" + value;
      }
      TopoError perr;
      auto parsed = load_topo_file(file, &perr, overrides);
      if (!parsed) {
        camp_fail(err, 0, 0, perr.render(file));
        return std::nullopt;
      }
      if (!seed_fixed) {
        // Value-keyed, not index-keyed: the same (file, assignment) point
        // gets the same seed regardless of sweep ordering or worker.
        parsed->scenario.seed = derive_seed(
            parsed->scenario.seed, pt.scenario + " " + pt.label, 0);
      }
      pt.seed = parsed->scenario.seed;
      pt.num_clients = parsed->scenario.num_clients;
      pt.key = topo_key(*parsed);
      out.points.push_back(std::move(pt));
      specs.push_back(std::move(*parsed));

      std::size_t a = 0;
      for (; a < idx.size(); ++a) {
        if (++idx[a] < spec.sweeps[a].values.size()) break;
        idx[a] = 0;
      }
      if (idx.empty() || a == idx.size()) break;
    }
  }
  out.stats.planned = out.points.size();

  // ---- Dedup identical fingerprints across points. ---------------------
  std::vector<std::size_t> point_to_unique(out.points.size());
  std::vector<std::size_t> unique_points;  // representative point index
  std::unordered_map<ScenarioKey, std::size_t, ScenarioKeyHash> by_key;
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    const auto [it, inserted] =
        by_key.emplace(out.points[i].key, unique_points.size());
    if (inserted) unique_points.push_back(i);
    point_to_unique[i] = it->second;
  }
  out.stats.unique = unique_points.size();

  // ---- Probe the store, then farm the misses. --------------------------
  std::unique_ptr<ResultStore> store;
  if (opts.use_cache && !opts.cache_dir.empty()) {
    store = std::make_unique<ResultStore>(opts.cache_dir);
    out.stats.store_skipped = store->skipped_entries();
  }
  std::vector<ExperimentResult> results(unique_points.size());
  std::vector<std::size_t> misses;
  for (std::size_t u = 0; u < unique_points.size(); ++u) {
    const ScenarioKey& key = out.points[unique_points[u]].key;
    if (store) {
      if (auto cached = store->get(key)) {
        results[u] = std::move(*cached);
        results[u].scenario = specs[unique_points[u]].scenario;
        ++out.stats.cache_hits;
        continue;
      }
    }
    misses.push_back(u);
  }
  if (opts.log) {
    *opts.log << "campaign " << spec.name << ": " << out.stats.planned
              << " points, " << out.stats.unique << " unique, "
              << out.stats.cache_hits << " cache hits, " << misses.size()
              << " to simulate" << std::endl;
  }
  if (!misses.empty()) {
    unsigned threads = opts.threads;
    if (threads == 0) {
      threads = static_cast<unsigned>(std::min<std::size_t>(
          std::max(1u, std::thread::hardware_concurrency()), misses.size()));
    }
    std::atomic<std::size_t> simulated{0};
    std::atomic<std::size_t> farmed{0};
    Executor executor(threads);
    executor.run(misses.size(), [&](std::size_t i) {
      const std::size_t u = misses[i];
      const TopoSpec& ts = specs[unique_points[u]];
      const ScenarioKey& key = out.points[unique_points[u]].key;
      if (!store) {
        results[u] = run_topo_experiment(ts);
        simulated.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (bool settled = false; !settled;) {
        switch (store->try_claim(key)) {
          case ClaimStatus::kAcquired:
            results[u] = run_topo_experiment(ts);
            simulated.fetch_add(1, std::memory_order_relaxed);
            store->publish(key, results[u]);
            settled = true;
            break;
          case ClaimStatus::kDone:
            if (auto cached = store->get(key)) {
              results[u] = std::move(*cached);
              results[u].scenario = ts.scenario;
              farmed.fetch_add(1, std::memory_order_relaxed);
            } else {
              results[u] = run_topo_experiment(ts);
              simulated.fetch_add(1, std::memory_order_relaxed);
            }
            settled = true;
            break;
          case ClaimStatus::kBusy:
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            break;
        }
      }
    });
    out.stats.simulated = simulated.load();
    out.stats.farmed_out = farmed.load();
  }
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    out.points[i].result = results[point_to_unique[i]];
  }

  // ---- CSV artifact: one row per point, grouped-by-scenario friendly
  // (scripts/plot_figures.py splits series on the scenario column). ------
  if (!opts.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.artifact_dir, ec);
    const std::string path = opts.artifact_dir + "/" + spec.name + ".csv";
    std::ofstream csv(path, std::ios::trunc);
    csv << "scenario,label,key,seed,clients";
    for (const TopoCampaignSweep& s : spec.sweeps) csv << ',' << s.field;
    csv << ',' << spec.metric << '\n';
    csv.precision(17);
    for (const TopoCampaignPoint& pt : out.points) {
      csv << pt.scenario << ',' << pt.label << ',' << pt.key.hex() << ','
          << pt.seed << ',' << pt.num_clients;
      for (const auto& [field, value] : pt.assignment) csv << ',' << value;
      csv << ',' << metric(pt.result) << '\n';
    }
    csv.flush();
    if (csv) {
      out.csv_path = path;
      if (opts.log) *opts.log << "campaign: wrote " << path << std::endl;
    } else if (opts.log) {
      *opts.log << "campaign: failed to write " << path << std::endl;
    }
  }
  return out;
}

}  // namespace burst
