#include "src/topo/partition.hpp"

#include <algorithm>

namespace burst {

namespace {

LpPartition sequential(std::string why) {
  LpPartition part;
  part.note = std::move(why);
  return part;
}

}  // namespace

LpPartition make_lp_partition(const TopoSpec& spec, int requested) {
  if (requested <= 1) return LpPartition{};
  const int total = spec.total_nodes();

  // Classify nodes by the flow endpoints they host. A node that is both a
  // source and a destination cannot sit in a source shard (its sender and
  // sink populations would straddle the cut), so it counts as interior.
  std::vector<char> is_src(static_cast<std::size_t>(total), 0);
  std::vector<char> is_dst(static_cast<std::size_t>(total), 0);
  for (const TopoFlowSpec& f : spec.flows) {
    for (int j = 0; j < spec.node_count(f.src); ++j) {
      is_src[static_cast<std::size_t>(spec.node_id(f.src, j))] = 1;
    }
    is_dst[static_cast<std::size_t>(spec.node_id(f.dst, 0))] = 1;
  }
  std::vector<int> sources;
  std::vector<int> interiors;
  std::vector<int> sinks;
  for (int n = 0; n < total; ++n) {
    const auto i = static_cast<std::size_t>(n);
    if (is_src[i] && !is_dst[i]) {
      sources.push_back(n);
    } else if (is_dst[i] && !is_src[i]) {
      sinks.push_back(n);
    } else {
      interiors.push_back(n);
    }
  }
  if (sources.empty() || sources.size() == static_cast<std::size_t>(total)) {
    return sequential("lp: topology has no source/rest cut; running 1 LP");
  }

  LpPartition part;
  part.node_lp.assign(static_cast<std::size_t>(total), 0);

  // Source shards: contiguous blocks over the source nodes in id order
  // (deterministic, and it keeps a dumbbell's client i in the same shard
  // for every run at a given shard count).
  int src_shards = requested == 2 ? 1 : requested - 2;
  if (src_shards > static_cast<int>(sources.size())) {
    src_shards = static_cast<int>(sources.size());
    part.note = "lp: fewer source nodes than source shards; clamped";
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    part.node_lp[static_cast<std::size_t>(sources[i])] = static_cast<int>(
        i * static_cast<std::size_t>(src_shards) / sources.size());
  }
  int next_lp = src_shards;
  if (requested == 2) {
    // Two-way split: everything that is not a source shares one LP.
    for (const int n : interiors) part.node_lp[static_cast<std::size_t>(n)] = next_lp;
    for (const int n : sinks) part.node_lp[static_cast<std::size_t>(n)] = next_lp;
    ++next_lp;
  } else {
    if (!interiors.empty()) {
      for (const int n : interiors) {
        part.node_lp[static_cast<std::size_t>(n)] = next_lp;
      }
      ++next_lp;
    }
    if (!sinks.empty()) {
      for (const int n : sinks) part.node_lp[static_cast<std::size_t>(n)] = next_lp;
      ++next_lp;
    }
  }
  part.shards = next_lp;
  if (part.shards < requested && part.note.empty()) {
    part.note = "lp: topology shape supports only " +
                std::to_string(part.shards) + " LPs; clamped";
  }
  if (part.shards <= 1) {
    return sequential("lp: partition collapsed to 1 LP; running sequentially");
  }

  // Lookahead = min propagation delay over the cut links. The window
  // protocol is only safe (and only terminates) when it is positive.
  Time lookahead = kTimeNever;
  for (const TopoLinkSpec& l : spec.links) {
    const int fc = spec.node_count(l.from);
    const int tc = spec.node_count(l.to);
    const int count = std::max(fc, tc);
    for (int j = 0; j < count; ++j) {
      const int u = spec.node_id(l.from, fc > 1 ? j : 0);
      const int v = spec.node_id(l.to, tc > 1 ? j : 0);
      if (part.node_lp[static_cast<std::size_t>(u)] ==
          part.node_lp[static_cast<std::size_t>(v)]) {
        continue;
      }
      ++part.cut_links;
      lookahead = std::min(lookahead, topo_member_delay(l, j, count));
    }
  }
  if (part.cut_links == 0) {
    return sequential("lp: no links cross the partition; running 1 LP");
  }
  if (!(lookahead > 0.0) || lookahead == kTimeNever) {
    return sequential(
        "lp: a cut link has zero propagation delay (no lookahead); "
        "running 1 LP");
  }
  part.lookahead = lookahead;
  return part;
}

}  // namespace burst
