#include "src/topo/builder.hpp"

#include <cassert>
#include <queue>

#include "src/net/drop_tail_queue.hpp"
#include "src/net/drr_queue.hpp"
#include "src/net/red_queue.hpp"
#include "src/transport/tcp_newreno.hpp"
#include "src/transport/tcp_reno.hpp"
#include "src/transport/tcp_sack.hpp"
#include "src/transport/tcp_tahoe.hpp"
#include "src/transport/tcp_vegas.hpp"

namespace burst {

namespace {

std::unique_ptr<Queue> make_port_queue(const TopoLinkSpec& l,
                                       const Scenario& sc, Random rng) {
  const PortQueueSpec& q = l.queue;
  switch (q.kind) {
    case PortQueueSpec::Kind::kDefault:
      return std::make_unique<DropTailQueue>(sc.client_queue_buffer);
    case PortQueueSpec::Kind::kDropTail:
      return std::make_unique<DropTailQueue>(q.capacity);
    case PortQueueSpec::Kind::kRed: {
      RedConfig red;
      red.min_th = q.red_min_th;
      red.max_th = q.red_max_th;
      red.max_p = q.red_max_p;
      red.weight = q.red_weight;
      red.capacity = q.capacity;
      // Averaging clock follows THIS link's rate (the hard-coded Tandem
      // already did this per hop; for the dumbbell it equals the
      // bottleneck rate, preserving identity).
      red.mean_pkt_tx_time = transmission_time(sc.wire_bytes(), l.rate_bps);
      red.ecn = q.red_ecn;
      red.adaptive = q.red_adaptive;
      return std::make_unique<RedQueue>(red, rng);
    }
    case PortQueueSpec::Kind::kDrr: {
      DrrConfig drr;
      drr.capacity = q.capacity;
      drr.quantum_bytes = q.drr_quantum_bytes;
      return std::make_unique<DrrQueue>(drr);
    }
  }
  return std::make_unique<DropTailQueue>(sc.client_queue_buffer);
}

TcpConfig make_tcp_config(const Scenario& sc) {
  TcpConfig cfg;
  cfg.payload_bytes = sc.payload_bytes;
  cfg.advertised_window = sc.advertised_window;
  cfg.rto = sc.rto;
  cfg.ecn = sc.ecn;
  cfg.limited_transmit = sc.limited_transmit;
  cfg.cwnd_validation = sc.cwnd_validation;
  return cfg;
}

}  // namespace

TopoNet::TopoNet(Simulator& sim, const TopoSpec& spec)
    : TopoNet(&sim, nullptr, nullptr, spec) {}

TopoNet::TopoNet(ParallelRuntime& rt, const LpPartition& part,
                 const TopoSpec& spec)
    : TopoNet(nullptr, &rt, &part, spec) {}

TopoNet::TopoNet(Simulator* sim, ParallelRuntime* rt, const LpPartition* part,
                 const TopoSpec& spec)
    : sim_(sim), rt_(rt), spec_(spec) {
  assert((rt_ != nullptr) != (sim_ != nullptr));
  if (part != nullptr) {
    part_ = *part;
    assert(rt_ != nullptr && part_.shards == rt_->shards());
    assert(part_.node_lp.size() ==
           static_cast<std::size_t>(spec_.total_nodes()));
  }
  const Scenario& sc = spec_.scenario;
  const int total = spec_.total_nodes();
  assert(total >= 2);
  nodes_.reserve(static_cast<std::size_t>(total));
  for (int id = 0; id < total; ++id) {
    nodes_.push_back(std::make_unique<Node>(id));
  }

  // --- Pre-size every per-flow/per-link container (huge-N mode): the
  // expanded counts are known from the spec, so nothing regrows while
  // the graph and the flow population are built.
  std::size_t expanded_links = 0;
  for (const TopoLinkSpec& l : spec_.links) {
    expanded_links += static_cast<std::size_t>(
        std::max(spec_.node_count(l.from), spec_.node_count(l.to)));
  }
  links_.reserve(expanded_links);
  link_base_.reserve(spec_.links.size());
  link_ends_.reserve(expanded_links);

  std::size_t total_flows = 0;
  for (const TopoFlowSpec& f : spec_.flows) {
    total_flows += static_cast<std::size_t>(spec_.node_count(f.src));
  }
  senders_.reserve(total_flows);
  sinks_.reserve(total_flows);
  sources_.reserve(total_flows);
  // One contiguous struct-of-arrays block per LP for its TCP flows'
  // mutable scalars; the agents constructed below are views over its
  // slots. A sequential build has exactly one arena (bit-identical to the
  // historical single-arena layout); a sharded build gives each LP its
  // own so no per-flow container is ever written from two LP threads.
  {
    const int shards = rt_ != nullptr ? part_.shards : 1;
    std::vector<std::size_t> tcp_senders(static_cast<std::size_t>(shards), 0);
    std::vector<std::size_t> tcp_sinks(static_cast<std::size_t>(shards), 0);
    for (const TopoFlowSpec& f : spec_.flows) {
      if (f.transport == Transport::kUdp) continue;
      const auto dst_lp = static_cast<std::size_t>(
          part_.lp_of(spec_.node_id(f.dst, 0)));
      for (int j = 0; j < spec_.node_count(f.src); ++j) {
        ++tcp_senders[static_cast<std::size_t>(
            part_.lp_of(spec_.node_id(f.src, j)))];
        ++tcp_sinks[dst_lp];
      }
    }
    arenas_.reserve(static_cast<std::size_t>(shards));
    for (int k = 0; k < shards; ++k) {
      arenas_.push_back(std::make_unique<FlowArena>());
      arenas_.back()->reserve(tcp_senders[static_cast<std::size_t>(k)],
                              tcp_sinks[static_cast<std::size_t>(k)],
                              FlowArena::ring_capacity_for(
                                  sc.advertised_window));
    }
  }

  // --- Links: expand each statement in declaration order. --------------
  // Fork discipline: one sim.rng().fork() per expanded link with an
  // explicit queue, consumed here in expansion order; deterministic
  // disciplines receive (and discard) theirs so adding randomness to a
  // queue never re-keys unrelated flows.
  for (std::size_t s = 0; s < spec_.links.size(); ++s) {
    const TopoLinkSpec& l = spec_.links[s];
    const int fc = spec_.node_count(l.from);
    const int tc = spec_.node_count(l.to);
    const int count = std::max(fc, tc);
    link_base_.push_back(static_cast<int>(links_.size()));
    for (int j = 0; j < count; ++j) {
      const int u = spec_.node_id(l.from, fc > 1 ? j : 0);
      const int v = spec_.node_id(l.to, tc > 1 ? j : 0);
      std::unique_ptr<Queue> q;
      if (l.queue.kind == PortQueueSpec::Kind::kDefault) {
        q = make_port_queue(l, sc, Random(0));
      } else {
        q = make_port_queue(l, sc, build_rng().fork());
      }
      // A link lives with its SENDING node's LP: its queue and transmitter
      // are driven by that side's events. When the receiver is elsewhere,
      // the delivery hops LPs through the runtime's channel.
      links_.push_back(std::make_unique<SimplexLink>(
          nsim(u), std::move(q), l.rate_bps, topo_member_delay(l, j, count)));
      Node& to_node = *nodes_[static_cast<std::size_t>(v)];
      links_.back()->set_receiver(
          [&to_node](const Packet& p) { to_node.receive(p); });
      link_ends_.emplace_back(u, v);
      if (rt_ != nullptr && part_.lp_of(u) != part_.lp_of(v)) {
        rt_->register_cut_link(links_.back().get(), part_.lp_of(u),
                               part_.lp_of(v));
      }
    }
  }
  assert(spec_.measure_link >= 0 &&
         spec_.measure_link < static_cast<int>(spec_.links.size()));
  const auto measured_idx = static_cast<std::size_t>(
      link_base_[static_cast<std::size_t>(spec_.measure_link)]);
  measured_ = links_[measured_idx].get();
  measured_from_node_ = link_ends_[measured_idx].first;

  // --- Routing: per-node BFS over the expanded graph. -------------------
  // Out-links in expansion order + FIFO frontier = the first-declared
  // shortest path wins, deterministically.
  //
  // Huge-N fast path: when the graph is strongly connected, a node with
  // exactly one out-link reaches every destination through it, so its
  // whole BFS route table collapses to one default route — functionally
  // identical next hops (route tables never affect packet timing), and
  // the all-pairs O(N^2) BFS shrinks to one pass per multi-out-link hub
  // (the gateway, in a dumbbell). Graphs that are not strongly connected
  // keep the historical full BFS so unreachable destinations still count
  // routing_errors instead of being silently forwarded.
  {
    std::vector<std::vector<int>> out(static_cast<std::size_t>(total));
    std::vector<std::vector<int>> in(static_cast<std::size_t>(total));
    for (std::size_t e = 0; e < link_ends_.size(); ++e) {
      out[static_cast<std::size_t>(link_ends_[e].first)].push_back(
          static_cast<int>(e));
      in[static_cast<std::size_t>(link_ends_[e].second)].push_back(
          static_cast<int>(e));
    }

    std::vector<char> seen(static_cast<std::size_t>(total));
    std::queue<int> frontier;
    const auto reaches_all = [&](const std::vector<std::vector<int>>& adj,
                                 const bool forward) {
      std::fill(seen.begin(), seen.end(), 0);
      seen[0] = 1;
      int reached = 1;
      frontier.push(0);
      while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        for (const int e : adj[static_cast<std::size_t>(u)]) {
          const auto& ends = link_ends_[static_cast<std::size_t>(e)];
          const int v = forward ? ends.second : ends.first;
          if (seen[static_cast<std::size_t>(v)]) continue;
          seen[static_cast<std::size_t>(v)] = 1;
          ++reached;
          frontier.push(v);
        }
      }
      return reached == total;
    };
    const bool strongly_connected =
        reaches_all(out, true) && reaches_all(in, false);

    std::vector<SimplexLink*> first_hop(static_cast<std::size_t>(total));
    for (int src = 0; src < total; ++src) {
      Node& src_node = *nodes_[static_cast<std::size_t>(src)];
      const auto& src_out = out[static_cast<std::size_t>(src)];
      if (strongly_connected && src_out.size() == 1) {
        src_node.add_route(
            Node::kDefaultRoute,
            links_[static_cast<std::size_t>(src_out[0])].get());
        continue;
      }
      if (src_out.empty()) continue;  // BFS would install nothing
      std::fill(first_hop.begin(), first_hop.end(), nullptr);
      std::fill(seen.begin(), seen.end(), 0);
      seen[static_cast<std::size_t>(src)] = 1;
      frontier.push(src);
      while (!frontier.empty()) {
        const int u = frontier.front();
        frontier.pop();
        for (const int e : out[static_cast<std::size_t>(u)]) {
          const int v = link_ends_[static_cast<std::size_t>(e)].second;
          if (seen[static_cast<std::size_t>(v)]) continue;
          seen[static_cast<std::size_t>(v)] = 1;
          first_hop[static_cast<std::size_t>(v)] =
              u == src ? links_[static_cast<std::size_t>(e)].get()
                       : first_hop[static_cast<std::size_t>(u)];
          frontier.push(v);
        }
      }
      src_node.reserve_routes(static_cast<std::size_t>(total));
      for (int dst = 0; dst < total; ++dst) {
        if (dst == src) continue;
        if (SimplexLink* hop = first_hop[static_cast<std::size_t>(dst)]) {
          src_node.add_route(dst, hop);
        }
      }
    }
  }

  // --- Flows: one sender/sink/source triple per expanded src member. ---
  for (const TopoFlowSpec& f : spec_.flows) {
    nodes_[static_cast<std::size_t>(spec_.node_id(f.dst, 0))]
        ->reserve_handlers(static_cast<std::size_t>(spec_.node_count(f.src)));
  }
  const TcpConfig tcp_cfg = make_tcp_config(sc);
  for (const TopoFlowSpec& f : spec_.flows) {
    const int dst = spec_.node_id(f.dst, 0);
    Node& dst_node = *nodes_[static_cast<std::size_t>(dst)];
    Simulator& dsim = nsim(dst);
    FlowArena* dst_arena = arenas_[static_cast<std::size_t>(part_.lp_of(dst))]
                               .get();
    for (int j = 0; j < spec_.node_count(f.src); ++j) {
      const int src = spec_.node_id(f.src, j);
      Node& src_node = *nodes_[static_cast<std::size_t>(src)];
      Simulator& ssim = nsim(src);
      FlowArena* arena =
          arenas_[static_cast<std::size_t>(part_.lp_of(src))].get();
      const FlowId flow = static_cast<FlowId>(senders_.size());
      switch (f.transport) {
        case Transport::kUdp:
          senders_.push_back(std::make_unique<UdpSender>(
              ssim, src_node, flow, dst, sc.payload_bytes));
          sinks_.push_back(
              std::make_unique<UdpSink>(dsim, dst_node, flow, src));
          break;
        case Transport::kTahoe:
          senders_.push_back(std::make_unique<TcpTahoe>(
              ssim, src_node, flow, dst, tcp_cfg, arena));
          break;
        case Transport::kReno:
          senders_.push_back(std::make_unique<TcpReno>(
              ssim, src_node, flow, dst, tcp_cfg, arena));
          break;
        case Transport::kNewReno:
          senders_.push_back(std::make_unique<TcpNewReno>(
              ssim, src_node, flow, dst, tcp_cfg, arena));
          break;
        case Transport::kVegas:
          senders_.push_back(std::make_unique<TcpVegas>(
              ssim, src_node, flow, dst, tcp_cfg, sc.vegas, arena));
          break;
        case Transport::kSack:
          senders_.push_back(std::make_unique<TcpSack>(
              ssim, src_node, flow, dst, tcp_cfg, arena));
          break;
      }
      if (f.transport != Transport::kUdp) {
        TcpSinkConfig sink_cfg;
        sink_cfg.delayed_ack = f.delayed_ack;
        sink_cfg.sack = f.transport == Transport::kSack;
        sinks_.push_back(std::make_unique<TcpSink>(dsim, dst_node, flow, src,
                                                   sink_cfg, dst_arena));
      }
      sources_.push_back(std::make_unique<PoissonSource>(
          ssim, *senders_.back(), f.mean_interarrival, build_rng().fork()));
    }
  }
}

std::size_t TopoNet::arena_bytes_reserved() const {
  std::size_t total = 0;
  for (const auto& a : arenas_) total += a->bytes_reserved();
  return total;
}

void TopoNet::start_sources() {
  for (auto& s : sources_) s->start();
}

SimplexLink& TopoNet::link(int statement, int member) {
  const int base = link_base_.at(static_cast<std::size_t>(statement));
  return *links_.at(static_cast<std::size_t>(base + member));
}

void TopoNet::attach_trace(TraceSink& sink, const TopoTraceNames& names) {
  // Per-flow src/dst node ids in flow construction order (== senders_
  // order), so every component's tap lands on the ring of the LP whose
  // thread executes it.
  std::vector<std::pair<int, int>> flow_nodes;
  flow_nodes.reserve(senders_.size());
  for (const TopoFlowSpec& f : spec_.flows) {
    const int dst = spec_.node_id(f.dst, 0);
    for (int j = 0; j < spec_.node_count(f.src); ++j) {
      flow_nodes.emplace_back(spec_.node_id(f.src, j), dst);
    }
  }

  // A TraceSink is a single-writer ring, so a sharded build gives every
  // LP a private ring (same capacity; sites registered in the same order
  // so ids match the sequential run's) and finalize_trace() merges them
  // back into @p sink after the run. A sequential build writes straight
  // into @p sink, stamped from the build Simulator's tie clock.
  std::vector<TraceSink*> per_lp;
  if (rt_ != nullptr) {
    trace_merge_target_ = &sink;
    lp_trace_sinks_.reserve(static_cast<std::size_t>(part_.shards));
    for (int k = 0; k < part_.shards; ++k) {
      lp_trace_sinks_.push_back(std::make_unique<TraceSink>(sink.capacity()));
      lp_trace_sinks_.back()->set_stamp(rt_->sim(k).tie_clock(),
                                        static_cast<std::uint8_t>(k));
      per_lp.push_back(lp_trace_sinks_.back().get());
    }
  } else {
    sink.set_stamp(sim_->tie_clock(), 0);
    per_lp.push_back(&sink);
  }
  std::uint8_t queue_site = 0;
  std::uint8_t link_site = 0;
  std::uint8_t sink_site = 0;
  for (TraceSink* s : per_lp) {
    queue_site = s->register_site(names.queue_site);
    link_site = s->register_site(names.link_site);
    sink_site = s->register_site(names.sink_site);
  }
  const auto sink_of_node = [&](int node) -> TraceSink& {
    return *per_lp[static_cast<std::size_t>(
        rt_ != nullptr ? part_.lp_of(node) : 0)];
  };
  TraceSink& measured_sink = sink_of_node(measured_from_node_);

  measured_->queue().set_trace(&measured_sink, queue_site);
  measured_->set_trace(&measured_sink, link_site);

  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    if (auto* tcp = dynamic_cast<TcpSink*>(sinks_[i].get())) {
      tcp->set_trace(&sink_of_node(flow_nodes[i].second), sink_site);
    }
  }
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    sources_[i]->set_trace(&sink_of_node(flow_nodes[i].first),
                           static_cast<std::int32_t>(i));
  }
  for (std::size_t i = 0; i < senders_.size(); ++i) {
    auto* tcp = dynamic_cast<TcpSender*>(senders_[i].get());
    if (!tcp) continue;
    TraceSink& ssink = sink_of_node(flow_nodes[i].first);
    tracers_.push_back(std::make_unique<TransportTracer>(ssink, *tcp));
    tcp->set_observer(tracers_.back().get());
    if (auto* vegas = dynamic_cast<TcpVegas*>(tcp)) {
      vegas->set_vegas_trace(&ssink);
    }
  }

  monitor_ = std::make_unique<FlowMonitor>();
  monitor_->reserve_flows(senders_.size());
  monitor_->attach(measured_->queue());
  monitor_->set_trace(&measured_sink, queue_site);
}

void TopoNet::finalize_trace() {
  if (trace_merge_target_ == nullptr) return;
  std::vector<const TraceSink*> parts;
  parts.reserve(lp_trace_sinks_.size());
  for (const auto& s : lp_trace_sinks_) parts.push_back(s.get());
  trace_merge_target_->merge_from(parts);
  trace_merge_target_ = nullptr;
}

void TopoNet::register_metrics(MetricsRegistry& registry,
                               const TopoMetricNames& names) const {
  const std::string qp = names.queue;
  const std::string lp = names.link;
  const QueueStats& qs = measured_->queue().stats();
  registry.add_counter(qp + ".arrivals", qs.arrivals);
  registry.add_counter(qp + ".drops", qs.drops);
  registry.add_counter(qp + ".forced_drops", qs.forced_drops);
  registry.add_counter(qp + ".early_drops", qs.early_drops);
  registry.add_counter(qp + ".departures", qs.departures);
  registry.add_counter(lp + ".delivered", measured_->delivered());
  registry.add_counter(lp + ".bytes_delivered", measured_->bytes_delivered());

  TcpSenderStats tx;
  for (const auto& a : senders_) {
    if (const auto* tcp = dynamic_cast<const TcpSender*>(a.get())) {
      const TcpSenderStats& st = tcp->stats();
      tx.app_packets += st.app_packets;
      tx.data_pkts_sent += st.data_pkts_sent;
      tx.retransmits += st.retransmits;
      tx.timeouts += st.timeouts;
      tx.fast_retransmits += st.fast_retransmits;
      tx.dupacks += st.dupacks;
      tx.new_acks += st.new_acks;
      tx.rtt_samples += st.rtt_samples;
    }
  }
  registry.add_counter("tcp.app_packets", tx.app_packets);
  registry.add_counter("tcp.data_pkts_sent", tx.data_pkts_sent);
  registry.add_counter("tcp.retransmits", tx.retransmits);
  registry.add_counter("tcp.timeouts", tx.timeouts);
  registry.add_counter("tcp.fast_retransmits", tx.fast_retransmits);
  registry.add_counter("tcp.dupacks", tx.dupacks);
  registry.add_counter("tcp.new_acks", tx.new_acks);
  registry.add_counter("tcp.rtt_samples", tx.rtt_samples);

  TcpSinkStats rx;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      const TcpSinkStats& st = tcp->stats();
      rx.data_arrivals += st.data_arrivals;
      rx.unique_packets += st.unique_packets;
      rx.duplicate_packets += st.duplicate_packets;
      rx.out_of_order += st.out_of_order;
      rx.acks_sent += st.acks_sent;
      rx.dup_acks_sent += st.dup_acks_sent;
    }
  }
  registry.add_counter("sink.data_arrivals", rx.data_arrivals);
  registry.add_counter("sink.unique_packets", rx.unique_packets);
  registry.add_counter("sink.duplicate_packets", rx.duplicate_packets);
  registry.add_counter("sink.out_of_order", rx.out_of_order);
  registry.add_counter("sink.acks_sent", rx.acks_sent);
  registry.add_counter("sink.dup_acks_sent", rx.dup_acks_sent);
}

TcpSender* TopoNet::tcp_sender(int i) {
  return dynamic_cast<TcpSender*>(
      senders_.at(static_cast<std::size_t>(i)).get());
}

TcpSink* TopoNet::tcp_sink(int i) {
  return dynamic_cast<TcpSink*>(sinks_.at(static_cast<std::size_t>(i)).get());
}

UdpSink* TopoNet::udp_sink(int i) {
  return dynamic_cast<UdpSink*>(sinks_.at(static_cast<std::size_t>(i)).get());
}

std::uint64_t TopoNet::total_generated() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) total += s->generated();
  return total;
}

std::uint64_t TopoNet::total_delivered() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      total += static_cast<std::uint64_t>(tcp->rcv_nxt());
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      total += udp->packets_received();
    }
  }
  return total;
}

std::vector<double> TopoNet::per_flow_delivered() const {
  std::vector<double> out;
  out.reserve(sinks_.size());
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      out.push_back(static_cast<double>(tcp->rcv_nxt()));
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      out.push_back(static_cast<double>(udp->packets_received()));
    }
  }
  return out;
}

RunningStats TopoNet::pooled_delay() const {
  RunningStats out;
  for (const auto& s : sinks_) {
    if (const auto* tcp = dynamic_cast<const TcpSink*>(s.get())) {
      out.merge(tcp->delay());
    } else if (const auto* udp = dynamic_cast<const UdpSink*>(s.get())) {
      out.merge(udp->delay());
    }
  }
  return out;
}

std::uint64_t TopoNet::routing_errors() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->routing_errors();
  return total;
}

}  // namespace burst
