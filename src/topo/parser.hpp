// Parser + validator for the `.topo` scenario format (dependency-free,
// line-oriented). See DESIGN.md §10 for the grammar; in brief:
//
//   # comment                      (anywhere; rest of line)
//   scenario <name>                (optional, once, first)
//   set <field> <value>            (Scenario fields; must precede graph)
//   node <name> [count <N>]
//   link <from> <to> rate <R> delay <D> [spread <F>]
//        [queue gateway            (the scenario's gateway discipline)
//         | queue droptail [cap N]
//         | queue red [min X] [max X] [maxp X] [weight X] [cap N]
//                     [ecn] [adaptive]
//         | queue drr [cap N] [quantum BYTES]]
//   flow <src> <dst> [transport <t>] [delack] [nodelack]
//        [workload poisson <MEAN>]
//   measure <from> <to>
//
// Rates accept bps/kbps/Mbps/Gbps suffixes, times s/ms/us; the suffix
// arithmetic is the same expression the C++ helpers use (`20ms` is
// bit-identical to ms(20)), which is what makes a parsed dumbbell
// fingerprint-equal to the generated one. `$field` anywhere a number is
// expected substitutes the named Scenario field's current value, so
// campaign sweeps over e.g. `clients` can reshape the graph.
//
// Errors carry precise 1-based line/column positions.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/topo/spec.hpp"

namespace burst {

struct TopoError {
  int line = 0;  // 1-based; 0 = file-level (e.g. unreadable)
  int col = 0;   // 1-based column of the offending token
  std::string message;

  /// "file:line:col: message" (diagnostics format editors understand).
  std::string render(std::string_view file) const;
};

/// Scenario-field overrides applied between the file's `set` statements
/// and its first graph statement (campaign sweep axes land here).
using TopoOverrides = std::vector<std::pair<std::string, std::string>>;

/// Parses and validates @p text. @p default_name seeds TopoSpec::name
/// when the file has no `scenario` statement. On failure returns nullopt
/// with *err filled in.
std::optional<TopoSpec> parse_topo(std::string_view text,
                                   std::string_view default_name,
                                   TopoError* err,
                                   const TopoOverrides& overrides = {});

/// Reads @p path and parses it (default name = file stem).
std::optional<TopoSpec> load_topo_file(const std::string& path, TopoError* err,
                                       const TopoOverrides& overrides = {});

/// Applies one `set`-style assignment to a Scenario. Exposed for the
/// campaign layer (sweep axes) and tests. Returns false with *msg set on
/// unknown field or malformed value.
bool apply_scenario_field(Scenario* sc, const std::string& field,
                          const std::string& value, std::string* msg);

}  // namespace burst
