#include "src/topo/runner.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/stats/binned_counter.hpp"
#include "src/stats/fairness.hpp"
#include "src/topo/builder.hpp"

namespace burst {

ExperimentResult run_topo_experiment(const TopoSpec& spec,
                                     const ExperimentOptions& options,
                                     bool force_generic) {
  if (!force_generic && is_canonical_dumbbell(spec)) {
    return run_experiment(spec.scenario, options);
  }

  const Scenario& sc = spec.scenario;
  Simulator sim(sc.seed);
  TopoNet net(sim, spec);
  if (options.trace != nullptr) net.attach_trace(*options.trace);

  MetricsRegistry registry;
  Histogram& qlen_hist = registry.histogram(
      "queue.measured.len_at_arrival", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  BinnedCounter arrivals(sc.rtt_prop(), sc.warmup);
  Queue& measured = net.measured_queue();
  measured.taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type != PacketType::kData) return;
    arrivals.record(sim.now());
    qlen_hist.add(static_cast<double>(measured.len()));
  });

  ExperimentResult result;
  result.scenario = sc;
  result.cwnd_traces.reserve(options.trace_clients.size());
  for (int c : options.trace_clients) {
    result.cwnd_traces.emplace_back("client " + std::to_string(c + 1));
  }
  std::size_t ti = 0;
  for (int c : options.trace_clients) {
    if (c >= 0 && c < net.num_flows()) {
      if (TcpSender* s = net.tcp_sender(c)) {
        s->set_cwnd_trace(&result.cwnd_traces[ti]);
        if (options.cwnd_sample_period > 0.0) {
          struct Sampler {
            static void arm(Simulator& sim, TcpSender* s, TraceSeries* t,
                            Time period, Time until) {
              if (sim.now() + period > until) return;
              sim.schedule(period, [&sim, s, t, period, until] {
                t->record(sim.now(), s->cwnd());
                arm(sim, s, t, period, until);
              });
            }
          };
          Sampler::arm(sim, s, &result.cwnd_traces[ti],
                       options.cwnd_sample_period, sc.duration);
        }
      }
    }
    ++ti;
  }

  net.start_sources();
  const auto wall0 = std::chrono::steady_clock::now();
  sim.run(sc.duration);
  result.sim_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  result.sim_events = sim.events_run();
  result.peak_pending = sim.scheduler().peak_pending();
  if (result.sim_wall_s > 0.0) {
    result.events_per_sec =
        static_cast<double>(result.sim_events) / result.sim_wall_s;
  }

  const RunningStats bin_stats = arrivals.stats_until(sc.duration);
  result.cov = bin_stats.cov();
  result.mean_per_bin = bin_stats.mean();
  // Analytic reference: pool every flow's Poisson rate, as if they were n
  // identical sources at the average rate (exact when they are).
  {
    double rate_sum = 0.0;
    int n = 0;
    for (const TopoFlowSpec& f : spec.flows) {
      const int members = spec.node_count(f.src);
      rate_sum += static_cast<double>(members) / f.mean_interarrival;
      n += members;
    }
    if (n > 0) {
      result.poisson_cov =
          poisson_aggregate_cov(n, rate_sum / n, sc.rtt_prop());
    }
  }

  result.app_generated = net.total_generated();
  result.delivered = net.total_delivered();
  const QueueStats& qs = measured.stats();
  result.gw_arrivals = qs.arrivals;
  result.gw_drops = qs.drops;
  result.loss_pct = 100.0 * qs.loss_fraction();

  for (int i = 0; i < net.num_flows(); ++i) {
    if (const TcpSender* s = net.tcp_sender(i)) {
      const TcpSenderStats& st = s->stats();
      result.timeouts += st.timeouts;
      result.fast_retransmits += st.fast_retransmits;
      result.dupacks += st.dupacks;
      result.retransmits += st.retransmits;
      result.data_pkts_sent += st.data_pkts_sent;
    }
  }
  if (result.timeouts > 0 || result.dupacks > 0) {
    result.timeout_dupack_ratio =
        static_cast<double>(result.timeouts) /
        static_cast<double>(std::max<std::uint64_t>(result.dupacks, 1));
  }
  result.fairness = jain_fairness(net.per_flow_delivered());
  result.delay = net.pooled_delay();
  result.routing_errors = net.routing_errors();

  net.register_metrics(registry);
  registry.add_counter("sched.events", result.sim_events);
  registry.add_counter("sched.peak_pending", result.peak_pending);
  registry.add_counter("sched.scheduled", sim.scheduler().scheduled_count());
  result.metrics = registry.snapshot();
  return result;
}

}  // namespace burst
