#include "src/topo/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

#include "src/obs/flight_recorder.hpp"
#include "src/sim/parallel/runtime.hpp"
#include "src/stats/binned_counter.hpp"
#include "src/stats/fairness.hpp"
#include "src/topo/builder.hpp"
#include "src/topo/partition.hpp"

namespace burst {

ExperimentResult run_topo_experiment(const TopoSpec& spec,
                                     const ExperimentOptions& options,
                                     bool force_generic) {
  if (!force_generic && is_canonical_dumbbell(spec)) {
    return run_experiment(spec.scenario, options);
  }

  const Scenario& sc = spec.scenario;

  // The periodic cwnd sampler schedules its own events on the build
  // Simulator, so it pins the run to the sequential engine. Event tracing
  // does not: each LP records into a private ring, merged at export
  // (TraceSink::merge_from). Beyond that the partitioner itself may
  // decline (no cut, zero lookahead) — either way part.shards is what the
  // run actually uses.
  int requested = options.lp_shards;
  if (!options.trace_clients.empty()) {
    requested = 1;
  }
  const LpPartition part = make_lp_partition(spec, requested);

  std::unique_ptr<Simulator> seq;
  std::unique_ptr<ParallelRuntime> rt;
  std::unique_ptr<TopoNet> net;
  if (part.shards > 1) {
    rt = std::make_unique<ParallelRuntime>(part.shards, part.lookahead,
                                           sc.seed);
    net = std::make_unique<TopoNet>(*rt, part, spec);
  } else {
    seq = std::make_unique<Simulator>(sc.seed);
    net = std::make_unique<TopoNet>(*seq, spec);
  }
  if (options.trace != nullptr) {
    // Traced parallel runs also log the per-window runtime timeline for
    // the `.runtime.perfetto` export (cheap: a few stores per window).
    if (rt != nullptr) rt->enable_window_log();
    // A canonical dumbbell keeps its historical site names so the merged
    // lp>1 trace is byte-identical to the sequential Dumbbell run's.
    if (is_canonical_dumbbell(spec)) {
      net->attach_trace(*options.trace, {"queue:gateway", "link:bottleneck",
                                         "sink:server"});
    } else {
      net->attach_trace(*options.trace);
    }
  }
  if (options.flight != nullptr) {
    options.flight->observe_queue(&net->measured_queue());
    // The cwnd histogram needs the arena of the measured link's LP; a
    // sequential build has exactly one. Parallel runs skip it — scanning
    // per-flow state owned by other LP threads would race.
    if (rt == nullptr) options.flight->observe_arena(&net->flow_arena());
    options.flight->set_lp(net->measured_lp());
    options.flight->arm(net->measured_sim(), sc.duration);
  }

  MetricsRegistry registry;
  Histogram& qlen_hist = registry.histogram(
      "queue.measured.len_at_arrival", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  BinnedCounter arrivals(sc.rtt_prop(), sc.warmup);
  Queue& measured = net->measured_queue();
  // The tap runs on whichever LP drives the measured link, so it must
  // read that LP's clock (== the build Simulator when sequential).
  Simulator& msim = net->measured_sim();
  measured.taps().add_arrival_listener([&](const Packet& p, Time) {
    if (p.type != PacketType::kData) return;
    arrivals.record(msim.now());
    qlen_hist.add(static_cast<double>(measured.len()));
  });

  ExperimentResult result;
  result.scenario = sc;
  result.lp_shards = part.shards;
  result.cwnd_traces.reserve(options.trace_clients.size());
  for (int c : options.trace_clients) {
    result.cwnd_traces.emplace_back("client " + std::to_string(c + 1));
  }
  std::size_t ti = 0;
  for (int c : options.trace_clients) {
    if (c >= 0 && c < net->num_flows()) {
      if (TcpSender* s = net->tcp_sender(c)) {
        s->set_cwnd_trace(&result.cwnd_traces[ti]);
        if (options.cwnd_sample_period > 0.0) {
          Simulator& sim = *seq;  // trace_clients clamp to sequential above
          struct Sampler {
            static void arm(Simulator& sim, TcpSender* s, TraceSeries* t,
                            Time period, Time until) {
              if (sim.now() + period > until) return;
              sim.schedule(period, [&sim, s, t, period, until] {
                t->record(sim.now(), s->cwnd());
                arm(sim, s, t, period, until);
              });
            }
          };
          Sampler::arm(sim, s, &result.cwnd_traces[ti],
                       options.cwnd_sample_period, sc.duration);
        }
      }
    }
    ++ti;
  }

  net->start_sources();
  const auto wall0 = std::chrono::steady_clock::now();
  std::uint64_t scheduled = 0;
  if (rt != nullptr) {
    rt->run(sc.duration);
    result.sim_events = rt->total_events();
    result.peak_pending = rt->max_peak_pending();
    scheduled = rt->total_scheduled();
    result.lp_phases.reserve(rt->stats().size());
    int lp = 0;
    for (const LpStats& s : rt->stats()) {
      LpPhase ph;
      ph.lp = lp++;
      ph.events = s.events;
      ph.windows = s.windows;
      ph.msgs_in = s.msgs_in;
      ph.msgs_out = s.msgs_out;
      ph.merge_high_water = s.merge_high_water;
      ph.chan_overflows = s.chan_overflows;
      ph.chan_high_water = s.chan_high_water;
      ph.horizon_advance_mean =
          s.windows > 0 ? s.horizon_advance / static_cast<double>(s.windows)
                        : 0.0;
      ph.run_s = s.run_s;
      ph.wait_s = s.wait_s;
      result.lp_phases.push_back(ph);
    }
    const auto& wlog = rt->window_log();
    for (std::size_t k = 0; k < wlog.size(); ++k) {
      for (const LpWindowSample& w : wlog[k]) {
        LpWindowPhase wp;
        wp.lp = static_cast<int>(k);
        wp.gmin = w.gmin;
        wp.t0_s = w.t0_s;
        wp.pub_wait_s = w.pub_wait_s;
        wp.run_s = w.run_s;
        wp.flush_wait_s = w.flush_wait_s;
        wp.merge_s = w.merge_s;
        wp.events = w.events;
        wp.staged = w.staged;
        result.lp_windows.push_back(wp);
      }
    }
  } else {
    seq->run(sc.duration);
    result.sim_events = seq->events_run();
    result.peak_pending = seq->scheduler().peak_pending();
    scheduled = seq->scheduler().scheduled_count();
  }
  result.sim_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (result.sim_wall_s > 0.0) {
    result.events_per_sec =
        static_cast<double>(result.sim_events) / result.sim_wall_s;
  }

  const RunningStats bin_stats = arrivals.stats_until(sc.duration);
  result.cov = bin_stats.cov();
  result.mean_per_bin = bin_stats.mean();
  // Analytic reference: pool every flow's Poisson rate, as if they were n
  // identical sources at the average rate (exact when they are).
  {
    double rate_sum = 0.0;
    int n = 0;
    for (const TopoFlowSpec& f : spec.flows) {
      const int members = spec.node_count(f.src);
      rate_sum += static_cast<double>(members) / f.mean_interarrival;
      n += members;
    }
    if (n > 0) {
      result.poisson_cov =
          poisson_aggregate_cov(n, rate_sum / n, sc.rtt_prop());
    }
  }

  result.app_generated = net->total_generated();
  result.delivered = net->total_delivered();
  const QueueStats& qs = measured.stats();
  result.gw_arrivals = qs.arrivals;
  result.gw_drops = qs.drops;
  result.loss_pct = 100.0 * qs.loss_fraction();

  for (int i = 0; i < net->num_flows(); ++i) {
    if (const TcpSender* s = net->tcp_sender(i)) {
      const TcpSenderStats& st = s->stats();
      result.timeouts += st.timeouts;
      result.fast_retransmits += st.fast_retransmits;
      result.dupacks += st.dupacks;
      result.retransmits += st.retransmits;
      result.data_pkts_sent += st.data_pkts_sent;
    }
  }
  if (result.timeouts > 0 || result.dupacks > 0) {
    result.timeout_dupack_ratio =
        static_cast<double>(result.timeouts) /
        static_cast<double>(std::max<std::uint64_t>(result.dupacks, 1));
  }
  result.fairness = jain_fairness(net->per_flow_delivered());
  result.delay = net->pooled_delay();
  result.routing_errors = net->routing_errors();

  net->register_metrics(registry);
  registry.add_counter("sched.events", result.sim_events);
  registry.add_counter("sched.peak_pending", result.peak_pending);
  registry.add_counter("sched.scheduled", scheduled);
  if (rt != nullptr) {
    // Parallel-runtime telemetry — deterministic subset only. Window
    // count, horizon advance, per-LP event/message splits and the merge
    // high-water mark are pure functions of event timestamps; wall-clock
    // splits (run_s/wait_s) and ring-overflow placement depend on thread
    // timing and stay in lp_phases / the profile table, never here (the
    // registry's determinism contract backs the result cache).
    registry.add_counter("parallel.shards",
                         static_cast<std::uint64_t>(part.shards));
    registry.add_gauge("parallel.lookahead", part.lookahead);
    registry.add_counter("parallel.windows", rt->stats().front().windows);
    for (const LpPhase& ph : result.lp_phases) {
      const std::string prefix = "parallel.lp" + std::to_string(ph.lp);
      registry.add_counter(prefix + ".events", ph.events);
      registry.add_counter(prefix + ".msgs_in", ph.msgs_in);
      registry.add_counter(prefix + ".msgs_out", ph.msgs_out);
      registry.add_counter(prefix + ".merge_high_water",
                           ph.merge_high_water);
      registry.add_gauge(prefix + ".horizon_advance_mean",
                         ph.horizon_advance_mean);
    }
  }
  result.metrics = registry.snapshot();
  // Merge the per-LP trace rings into the caller's sink last, after every
  // reader above: the sequential engine's final ring state includes only
  // what ran, and the merged view must mirror it exactly.
  net->finalize_trace();
  return result;
}

}  // namespace burst
