// TopoNet: builds the live Node/SimplexLink/queue graph described by a
// TopoSpec. This is the generalized back end of the hard-coded Dumbbell
// and Tandem classes, which now delegate to it.
//
// Determinism contract (what makes a TopoNet-built dumbbell bit-identical
// to the historical hard-coded one):
//   * Nodes are created in id order 0..total_nodes()-1.
//   * Link statements expand in declaration order; a group endpoint
//     expands member-by-member within the statement.
//   * RNG fork discipline: every expanded link with an EXPLICIT queue
//     spec consumes exactly one sim.rng().fork() (in expansion order),
//     whether or not the discipline is randomized — then every flow's
//     Poisson source consumes one fork, in flow order. Default-queue
//     links fork nothing.
//   * Routing is static: per-node BFS over the expanded graph, out-links
//     in expansion order, so the first declared shortest path wins.
//     Route-table layout never affects packet timing, only next hops.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/app/poisson_source.hpp"
#include "src/net/flow_monitor.hpp"
#include "src/net/node.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/transport_trace.hpp"
#include "src/sim/parallel/runtime.hpp"
#include "src/sim/simulator.hpp"
#include "src/topo/partition.hpp"
#include "src/topo/spec.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"
#include "src/transport/udp.hpp"

namespace burst {

/// Trace-site labels used by TopoNet::attach_trace. The Dumbbell wrapper
/// passes its historical names so trace files stay stable.
struct TopoTraceNames {
  const char* queue_site = "queue:measured";
  const char* link_site = "link:measured";
  const char* sink_site = "sink:measured";
};

/// Metric-name prefixes for the measured queue/link counters.
struct TopoMetricNames {
  const char* queue = "queue.measured";
  const char* link = "link.measured";
};

class TopoNet {
 public:
  TopoNet(Simulator& sim, const TopoSpec& spec);

  /// Sharded build for the conservative parallel engine: every component
  /// lands on the Simulator of the LP that @p part assigns its node to,
  /// links whose endpoints straddle the cut register with @p rt, and each
  /// LP gets its own FlowArena (per-flow SoA state must never share
  /// mutable containers across LP threads). Component RNG forks all come
  /// from rt.build_rng() in the sequential build's global order, so every
  /// queue discipline and Poisson source sees a value-identical stream
  /// regardless of shard placement. @p part must have shards >= 2 and
  /// must outlive only this constructor (it is copied).
  TopoNet(ParallelRuntime& rt, const LpPartition& part, const TopoSpec& spec);

  /// Starts every flow's traffic source.
  void start_sources();

  /// Expanded link for member @p member of link statement @p statement.
  SimplexLink& link(int statement, int member = 0);
  /// The spec's measured link (its queue is the bottleneck under study).
  SimplexLink& measured_link() { return *measured_; }
  const SimplexLink& measured_link() const { return *measured_; }
  Queue& measured_queue() { return measured_->queue(); }

  /// Wires the measured queue/link, every TCP sink, every source, a
  /// TransportTracer per TCP sender, a Vegas Diff tap where applicable,
  /// and a drop-clustering FlowMonitor into @p sink. Call at most once;
  /// @p sink must outlive the run. In a sharded build each component taps
  /// a private per-LP ring instead; call finalize_trace() after the run
  /// to merge them into @p sink deterministically.
  void attach_trace(TraceSink& sink, const TopoTraceNames& names = {});

  /// Merges the per-LP trace rings of a sharded build into the sink given
  /// to attach_trace() (TraceSink::merge_from). Sequential builds wrote
  /// straight into the caller's sink, so this is a no-op for them. Call
  /// at most once, after the run completes.
  void finalize_trace();

  /// The per-LP trace rings of a sharded traced build (empty otherwise);
  /// exposed for the runner's telemetry counters.
  const std::vector<std::unique_ptr<TraceSink>>& lp_trace_sinks() const {
    return lp_trace_sinks_;
  }

  /// Registers measured-queue/link counters (under @p names) plus the
  /// aggregate tcp.* / sink.* counters. Values are captured at the call.
  void register_metrics(MetricsRegistry& registry,
                        const TopoMetricNames& names = {}) const;

  /// The drop-cluster monitor created by attach_trace() (null before).
  const FlowMonitor* congestion_monitor() const { return monitor_.get(); }

  int num_flows() const { return static_cast<int>(senders_.size()); }

  Agent& sender(int i) { return *senders_.at(static_cast<std::size_t>(i)); }
  TcpSender* tcp_sender(int i);
  TcpSink* tcp_sink(int i);
  UdpSink* udp_sink(int i);
  PoissonSource& source(int i) {
    return *sources_.at(static_cast<std::size_t>(i));
  }
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }

  std::uint64_t total_generated() const;
  std::uint64_t total_delivered() const;
  std::vector<double> per_flow_delivered() const;
  RunningStats pooled_delay() const;
  std::uint64_t routing_errors() const;

  const TopoSpec& spec() const { return spec_; }

  /// The first LP's per-flow state arena (the only one in a sequential
  /// build); arena_bytes_reserved() totals all shards for the huge-N
  /// memory-budget assertions.
  const FlowArena& flow_arena() const { return *arenas_.front(); }
  std::size_t arena_bytes_reserved() const;

  /// The Simulator owning the measured link's sending node — the clock
  /// that measured-queue tap callbacks must read. Sequential builds
  /// return the build Simulator.
  Simulator& measured_sim() { return nsim(measured_from_node_); }

  /// LP hosting the measured link (0 for sequential builds).
  int measured_lp() const { return part_.lp_of(measured_from_node_); }

 private:
  TopoNet(Simulator* sim, ParallelRuntime* rt, const LpPartition* part,
          const TopoSpec& spec);

  /// The Simulator hosting @p node under the partition (the build
  /// Simulator when sequential).
  Simulator& nsim(int node) {
    return rt_ != nullptr ? rt_->sim(part_.lp_of(node)) : *sim_;
  }
  /// The single generator every build-time fork draws from.
  Random& build_rng() {
    return rt_ != nullptr ? rt_->build_rng() : sim_->rng();
  }

  Simulator* sim_;             // null in a sharded build
  ParallelRuntime* rt_;        // null in a sequential build
  LpPartition part_;           // shards == 1 when sequential
  TopoSpec spec_;
  // Declared before senders_/sinks_: the agents are views over arena
  // slots and must be destroyed first (reverse declaration order).
  std::vector<std::unique_ptr<FlowArena>> arenas_;  // one per LP
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<SimplexLink>> links_;
  /// links_ index of each link statement's first expanded member.
  std::vector<int> link_base_;
  /// Expanded (from,to) node ids, parallel to links_ (routing BFS input).
  std::vector<std::pair<int, int>> link_ends_;
  SimplexLink* measured_ = nullptr;
  int measured_from_node_ = 0;
  std::vector<std::unique_ptr<Agent>> senders_;
  std::vector<std::unique_ptr<Agent>> sinks_;
  std::vector<std::unique_ptr<PoissonSource>> sources_;

  std::vector<std::unique_ptr<TransportTracer>> tracers_;
  std::unique_ptr<FlowMonitor> monitor_;
  /// Sharded traced builds only: one ring per LP, merged by
  /// finalize_trace() into trace_merge_target_ (the attach_trace sink).
  std::vector<std::unique_ptr<TraceSink>> lp_trace_sinks_;
  TraceSink* trace_merge_target_ = nullptr;
};

}  // namespace burst
