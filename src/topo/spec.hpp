// Declarative topology descriptions (the `.topo` format's in-memory
// model). A TopoSpec is pure data: named node groups, directed links with
// rate/delay/queue discipline, and transport flows with workload
// bindings, all resolved against a base Scenario. The builder
// (src/topo/builder.hpp) turns a spec into a live Node/SimplexLink/queue
// graph; the parser (src/topo/parser.hpp) reads the text format; and
// topo_key() registers a spec with the 128-bit scenario fingerprint.
//
// Identity contract: canonical() renders the *graph* (not the node
// names) deterministically, doubles in hexfloat. Two specs with equal
// canonical strings build bit-identical networks for the same Scenario.
// A spec whose canonical string equals make_dumbbell_spec(its scenario)'s
// IS the paper dumbbell, and topo_key() then returns the plain
// scenario_key() so topology-file runs share cache entries — and pinned
// identity hashes — with the hard-coded path.
#pragma once

#include <string>
#include <vector>

#include "src/core/scenario.hpp"
#include "src/run/scenario_key.hpp"

namespace burst {

/// Queue discipline bound to one link statement's transmit port.
/// kDefault is "unremarkable edge buffering": a DropTail queue of
/// scenario.client_queue_buffer packets, and — unlike every explicit
/// kind — it does NOT consume an RNG fork at build time (see the fork
/// discipline note on TopoNet).
struct PortQueueSpec {
  enum class Kind { kDefault, kDropTail, kRed, kDrr };
  Kind kind = Kind::kDefault;
  std::size_t capacity = 0;  // packets; meaningless for kDefault

  // RED (values resolved from the Scenario at parse time).
  double red_min_th = 0.0;
  double red_max_th = 0.0;
  double red_max_p = 0.0;
  double red_weight = 0.0;
  bool red_ecn = false;
  bool red_adaptive = false;

  // DRR.
  int drr_quantum_bytes = 0;
};

/// One `node` statement. count > 1 declares a group whose members expand
/// pairwise in links and per-member in flows.
struct TopoNodeSpec {
  std::string name;
  int count = 1;
  int line = 0;  // 1-based source line, 0 for generated specs
};

/// One directed `link` statement between node-spec indices. Group
/// endpoints expand: equal counts pair member j with member j; a group on
/// exactly one side fans out/in to the single node on the other.
struct TopoLinkSpec {
  int from = 0;
  int to = 0;
  double rate_bps = 0.0;
  Time delay = 0.0;
  /// Heterogeneous-delay spread across the expanded members, exactly like
  /// Scenario::client_delay_for: member j of c gets
  /// delay * (1 + spread * (2j/(c-1) - 1)).
  double delay_spread = 0.0;
  PortQueueSpec queue;
  int line = 0;
};

/// One `flow` statement: src (possibly a group: one flow per member) to a
/// single-node dst. Transport/delayed-ack/workload are resolved against
/// the Scenario at parse time.
struct TopoFlowSpec {
  int src = 0;
  int dst = 0;
  Transport transport = Transport::kReno;
  bool delayed_ack = false;
  double mean_interarrival = 0.0;  // Poisson workload mean (seconds)
  int line = 0;
};

struct TopoSpec {
  std::string name;    // scenario label for artifacts; NOT part of the key
  Scenario scenario;   // base parameters (every `set` applied)
  std::vector<TopoNodeSpec> nodes;
  std::vector<TopoLinkSpec> links;
  std::vector<TopoFlowSpec> flows;
  /// Link-statement index whose queue is the measured bottleneck (c.o.v.
  /// binning + reported gateway stats). Defaults to the first link with
  /// an explicit queue.
  int measure_link = -1;

  int total_nodes() const;
  /// NodeId of member @p member of node group @p spec_index (groups claim
  /// contiguous id ranges in declaration order).
  int node_id(int spec_index, int member = 0) const;
  int node_count(int spec_index) const { return nodes[static_cast<std::size_t>(spec_index)].count; }

  /// Deterministic rendering of the graph (doubles in hexfloat; node
  /// names excluded, so renaming nodes never re-keys a scenario).
  std::string canonical() const;
};

/// Expanded member @p j's propagation delay under @p l's delay_spread —
/// the same expression as Scenario::client_delay_for, evaluated over the
/// statement's member count. Shared by the builder (link construction)
/// and the LP partitioner (cut-lookahead computation), which must agree
/// bit-for-bit.
Time topo_member_delay(const TopoLinkSpec& l, int j, int count);

/// The paper's Figure 1 dumbbell for @p sc, as a spec. Building this
/// through TopoNet is bit-identical to the hard-coded Dumbbell class.
TopoSpec make_dumbbell_spec(const Scenario& sc);

/// @p sc's gateway discipline (DropTail/RED/DRR + its parameters) as an
/// explicit per-port queue spec — what `queue gateway` resolves to in
/// .topo files, and what the generated dumbbell/tandem bottlenecks use.
PortQueueSpec gateway_port_queue(const Scenario& sc);

/// The two-bottleneck parking-lot (Tandem) topology: hop2 rate is
/// sc.bottleneck_bw_bps * second_hop_ratio.
TopoSpec make_tandem_spec(const Scenario& sc, double second_hop_ratio);

/// True iff @p spec's graph is canonically the paper dumbbell for its own
/// scenario (same canonical rendering as make_dumbbell_spec).
bool is_canonical_dumbbell(const TopoSpec& spec);

/// Fingerprint of one topology experiment. Canonical-dumbbell specs get
/// the plain scenario_key() (bit-for-bit cache compatibility with the
/// hard-coded path); everything else gets scenario_key_with_topology()
/// with versioned topo fields appended.
ScenarioKey topo_key(const TopoSpec& spec, const ExperimentOptions& opts = {});

}  // namespace burst
