#include "src/topo/parser.hpp"

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <queue>
#include <sstream>

namespace burst {

std::string TopoError::render(std::string_view file) const {
  std::ostringstream os;
  os << file;
  if (line > 0) {
    os << ':' << line;
    if (col > 0) os << ':' << col;
  }
  os << ": " << message;
  return os.str();
}

namespace {

struct Token {
  std::string text;
  int col = 0;  // 1-based
};

// Splits on whitespace; '#' starts a comment through end of line.
std::vector<Token> tokenize(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r' && line[i] != '#') {
      ++i;
    }
    out.push_back({line.substr(start, i - start), static_cast<int>(start) + 1});
  }
  return out;
}

bool str_to_double(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* rest = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &rest);
  if (rest != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool str_to_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  char* rest = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), &rest, 10);
  if (rest != s.c_str() + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

// Unit-suffix arithmetic mirrors src/sim/time.hpp's helpers exactly
// (`20ms` -> 20 * 1e-3, the same expression as ms(20)) so parsed values
// are bit-identical to the C++-side defaults they mirror.
bool parse_time_value(const std::string& s, double* out) {
  auto with_suffix = [&](const char* suf, double scale) -> int {
    const std::size_t n = std::string_view(suf).size();
    if (s.size() <= n || s.compare(s.size() - n, n, suf) != 0) return 0;
    double v = 0.0;
    if (!str_to_double(s.substr(0, s.size() - n), &v)) return -1;
    *out = v * scale;
    return 1;
  };
  // "us" and "ms" end in 's' too: check them first.
  for (const auto& [suf, scale] :
       {std::pair<const char*, double>{"us", 1e-6}, {"ms", 1e-3}, {"s", 1.0}}) {
    const int r = with_suffix(suf, scale);
    if (r != 0) return r > 0;
  }
  return str_to_double(s, out);  // bare number: seconds
}

bool parse_rate_value(const std::string& s, double* out) {
  auto with_suffix = [&](const char* suf, double scale) -> int {
    const std::size_t n = std::string_view(suf).size();
    if (s.size() <= n || s.compare(s.size() - n, n, suf) != 0) return 0;
    double v = 0.0;
    if (!str_to_double(s.substr(0, s.size() - n), &v)) return -1;
    *out = v * scale;
    return 1;
  };
  for (const auto& [suf, scale] : {std::pair<const char*, double>{"Gbps", 1e9},
                                   {"Mbps", 1e6},
                                   {"kbps", 1e3},
                                   {"bps", 1.0}}) {
    const int r = with_suffix(suf, scale);
    if (r != 0) return r > 0;
  }
  return str_to_double(s, out);  // bare number: bits per second
}

/// Current numeric value of a Scenario field, for `$field` references.
bool scenario_field_value(const Scenario& sc, const std::string& name,
                          double* out) {
  if (name == "clients") *out = sc.num_clients;
  else if (name == "client_bw") *out = sc.client_bw_bps;
  else if (name == "bottleneck_bw") *out = sc.bottleneck_bw_bps;
  else if (name == "client_delay") *out = sc.client_delay;
  else if (name == "bottleneck_delay") *out = sc.bottleneck_delay;
  else if (name == "client_delay_spread") *out = sc.client_delay_spread;
  else if (name == "advertised_window") *out = sc.advertised_window;
  else if (name == "gateway_buffer") *out = static_cast<double>(sc.gateway_buffer);
  else if (name == "client_queue_buffer") *out = static_cast<double>(sc.client_queue_buffer);
  else if (name == "payload_bytes") *out = sc.payload_bytes;
  else if (name == "mean_interarrival") *out = sc.mean_interarrival;
  else if (name == "duration") *out = sc.duration;
  else if (name == "warmup") *out = sc.warmup;
  else if (name == "red_min") *out = sc.red_min_th;
  else if (name == "red_max") *out = sc.red_max_th;
  else if (name == "red_maxp") *out = sc.red_max_p;
  else if (name == "red_weight") *out = sc.red_weight;
  else if (name == "seed") *out = static_cast<double>(sc.seed);
  else if (name == "meanfield_base") *out = sc.meanfield_base;
  else return false;
  return true;
}

bool parse_bool(const std::string& s, bool* out) {
  if (s == "true" || s == "1" || s == "on" || s == "yes") *out = true;
  else if (s == "false" || s == "0" || s == "off" || s == "no") *out = false;
  else return false;
  return true;
}

bool parse_transport(const std::string& s, Transport* out) {
  if (s == "udp") *out = Transport::kUdp;
  else if (s == "tahoe") *out = Transport::kTahoe;
  else if (s == "reno") *out = Transport::kReno;
  else if (s == "newreno") *out = Transport::kNewReno;
  else if (s == "vegas") *out = Transport::kVegas;
  else if (s == "sack") *out = Transport::kSack;
  else return false;
  return true;
}

}  // namespace

bool apply_scenario_field(Scenario* sc, const std::string& field,
                          const std::string& value, std::string* msg) {
  auto bad_value = [&](const char* what) {
    *msg = "bad " + std::string(what) + " '" + value + "' for field '" +
           field + "'";
    return false;
  };
  double d = 0.0;
  std::uint64_t u = 0;
  bool b = false;
  if (field == "clients") {
    if (!str_to_double(value, &d) || d < 1 || d != static_cast<int>(d)) {
      return bad_value("client count");
    }
    sc->num_clients = static_cast<int>(d);
  } else if (field == "transport") {
    Transport t;
    if (!parse_transport(value, &t)) return bad_value("transport");
    sc->transport = t;
  } else if (field == "queue") {
    if (value == "fifo" || value == "droptail") {
      sc->gateway = GatewayQueue::kDropTail;
    } else if (value == "red") {
      sc->gateway = GatewayQueue::kRed;
    } else if (value == "drr") {
      sc->gateway = GatewayQueue::kDrr;
    } else {
      return bad_value("queue discipline");
    }
  } else if (field == "delayed_ack" || field == "delack") {
    if (!parse_bool(value, &b)) return bad_value("boolean");
    sc->delayed_ack = b;
  } else if (field == "ecn") {
    if (!parse_bool(value, &b)) return bad_value("boolean");
    sc->ecn = b;
  } else if (field == "adaptive_red") {
    if (!parse_bool(value, &b)) return bad_value("boolean");
    sc->adaptive_red = b;
  } else if (field == "limited_transmit") {
    if (!parse_bool(value, &b)) return bad_value("boolean");
    sc->limited_transmit = b;
  } else if (field == "cwnd_validation") {
    if (!parse_bool(value, &b)) return bad_value("boolean");
    sc->cwnd_validation = b;
  } else if (field == "client_bw") {
    if (!parse_rate_value(value, &d) || d <= 0) return bad_value("rate");
    sc->client_bw_bps = d;
  } else if (field == "bottleneck_bw") {
    if (!parse_rate_value(value, &d) || d <= 0) return bad_value("rate");
    sc->bottleneck_bw_bps = d;
  } else if (field == "client_delay") {
    if (!parse_time_value(value, &d) || d < 0) return bad_value("time");
    sc->client_delay = d;
  } else if (field == "bottleneck_delay") {
    if (!parse_time_value(value, &d) || d < 0) return bad_value("time");
    sc->bottleneck_delay = d;
  } else if (field == "client_delay_spread") {
    if (!str_to_double(value, &d) || d < 0 || d >= 1) {
      return bad_value("spread (need [0,1))");
    }
    sc->client_delay_spread = d;
  } else if (field == "advertised_window") {
    if (!str_to_double(value, &d) || d <= 0) return bad_value("window");
    sc->advertised_window = d;
  } else if (field == "gateway_buffer") {
    if (!str_to_u64(value, &u) || u == 0) return bad_value("buffer size");
    sc->gateway_buffer = static_cast<std::size_t>(u);
  } else if (field == "client_queue_buffer") {
    if (!str_to_u64(value, &u) || u == 0) return bad_value("buffer size");
    sc->client_queue_buffer = static_cast<std::size_t>(u);
  } else if (field == "payload_bytes") {
    if (!str_to_double(value, &d) || d < 1 || d != static_cast<int>(d)) {
      return bad_value("byte count");
    }
    sc->payload_bytes = static_cast<int>(d);
  } else if (field == "mean_interarrival") {
    if (!parse_time_value(value, &d) || d <= 0) return bad_value("time");
    sc->mean_interarrival = d;
  } else if (field == "duration") {
    if (!parse_time_value(value, &d) || d <= 0) return bad_value("time");
    sc->duration = d;
  } else if (field == "warmup") {
    if (!parse_time_value(value, &d) || d < 0) return bad_value("time");
    sc->warmup = d;
  } else if (field == "red_min") {
    if (!str_to_double(value, &d) || d < 0) return bad_value("threshold");
    sc->red_min_th = d;
  } else if (field == "red_max") {
    if (!str_to_double(value, &d) || d <= 0) return bad_value("threshold");
    sc->red_max_th = d;
  } else if (field == "red_maxp") {
    if (!str_to_double(value, &d) || d <= 0 || d > 1) {
      return bad_value("probability");
    }
    sc->red_max_p = d;
  } else if (field == "red_weight") {
    if (!str_to_double(value, &d) || d <= 0 || d > 1) return bad_value("weight");
    sc->red_weight = d;
  } else if (field == "vegas_alpha") {
    if (!str_to_double(value, &d)) return bad_value("number");
    sc->vegas.alpha = d;
  } else if (field == "vegas_beta") {
    if (!str_to_double(value, &d)) return bad_value("number");
    sc->vegas.beta = d;
  } else if (field == "vegas_gamma") {
    if (!str_to_double(value, &d)) return bad_value("number");
    sc->vegas.gamma = d;
  } else if (field == "rto_min") {
    if (!parse_time_value(value, &d) || d <= 0) return bad_value("time");
    sc->rto.min_rto = d;
  } else if (field == "rto_max") {
    if (!parse_time_value(value, &d) || d <= 0) return bad_value("time");
    sc->rto.max_rto = d;
  } else if (field == "rto_initial") {
    if (!parse_time_value(value, &d) || d <= 0) return bad_value("time");
    sc->rto.initial_rto = d;
  } else if (field == "rto_granularity") {
    if (!parse_time_value(value, &d) || d < 0) return bad_value("time");
    sc->rto.granularity = d;
  } else if (field == "seed") {
    if (!str_to_u64(value, &u)) return bad_value("seed");
    sc->seed = u;
  } else if (field == "meanfield_base") {
    if (!str_to_double(value, &d) || d < 0 || d != static_cast<int>(d)) {
      return bad_value("base client count");
    }
    sc->meanfield_base = static_cast<int>(d);
  } else {
    *msg = "unknown scenario field '" + field + "'";
    return false;
  }
  return true;
}

namespace {

/// Statement-level parse state shared by the helpers below.
struct Parser {
  TopoSpec spec;
  std::vector<std::string> node_names;
  TopoError* err;
  int lineno = 0;

  bool fail(int col, std::string msg) {
    err->line = lineno;
    err->col = col;
    err->message = std::move(msg);
    return false;
  }

  int find_node(const std::string& name) const {
    for (std::size_t i = 0; i < node_names.size(); ++i) {
      if (node_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool node_token(const Token& t, int* out) {
    const int idx = find_node(t.text);
    if (idx < 0) return fail(t.col, "unknown node '" + t.text + "'");
    *out = idx;
    return true;
  }

  // Numeric tokens, with `$field` substitution against the current
  // scenario. The three flavors differ only in suffix handling.
  bool number_token(const Token& t, double* out) {
    if (!t.text.empty() && t.text[0] == '$') {
      if (!scenario_field_value(spec.scenario, t.text.substr(1), out)) {
        return fail(t.col, "unknown scenario field reference '" + t.text + "'");
      }
      return true;
    }
    if (!str_to_double(t.text, out)) {
      return fail(t.col, "bad number '" + t.text + "'");
    }
    return true;
  }
  bool rate_token(const Token& t, double* out) {
    if (!t.text.empty() && t.text[0] == '$') return number_token(t, out);
    if (!parse_rate_value(t.text, out)) {
      return fail(t.col, "bad rate '" + t.text +
                             "' (want NUMBER[bps|kbps|Mbps|Gbps])");
    }
    return true;
  }
  bool time_token(const Token& t, double* out) {
    if (!t.text.empty() && t.text[0] == '$') return number_token(t, out);
    if (!parse_time_value(t.text, out)) {
      return fail(t.col, "bad time '" + t.text + "' (want NUMBER[s|ms|us])");
    }
    return true;
  }
  bool size_token(const Token& t, std::size_t* out) {
    double d = 0.0;
    if (!number_token(t, &d)) return false;
    if (d < 1 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
      return fail(t.col, "'" + t.text + "' is not a positive integer");
    }
    *out = static_cast<std::size_t>(d);
    return true;
  }
};

}  // namespace

std::optional<TopoSpec> parse_topo(std::string_view text,
                                   std::string_view default_name,
                                   TopoError* err,
                                   const TopoOverrides& overrides) {
  TopoError local;
  if (err == nullptr) err = &local;
  Parser p;
  p.err = err;
  p.spec.name = std::string(default_name);
  p.spec.scenario = Scenario::paper_default();

  bool any_statement = false;
  bool graph_started = false;
  struct PendingMeasure {
    std::string from, to;
    int line = 0, col = 0;
  };
  std::optional<PendingMeasure> measure;

  // Applies the external overrides once, before the first graph
  // statement, so they win over the file's `set` lines but still feed
  // `$field` references and queue defaults.
  auto start_graph = [&]() -> bool {
    if (graph_started) return true;
    graph_started = true;
    for (const auto& [field, value] : overrides) {
      std::string msg;
      if (!apply_scenario_field(&p.spec.scenario, field, value, &msg)) {
        err->line = 0;
        err->col = 0;
        err->message = "override " + field + "=" + value + ": " + msg;
        return false;
      }
    }
    return true;
  };

  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    ++p.lineno;
    const std::vector<Token> t = tokenize(line);
    if (t.empty()) continue;
    const std::string& kw = t[0].text;

    if (kw == "scenario") {
      if (any_statement) {
        p.fail(t[0].col, "scenario must be the first statement");
        return std::nullopt;
      }
      if (t.size() != 2) {
        p.fail(t[0].col, "usage: scenario <name>");
        return std::nullopt;
      }
      p.spec.name = t[1].text;
    } else if (kw == "set") {
      if (graph_started) {
        p.fail(t[0].col,
               "set must precede node/link/flow/measure statements");
        return std::nullopt;
      }
      if (t.size() != 3) {
        p.fail(t[0].col, "usage: set <field> <value>");
        return std::nullopt;
      }
      std::string msg;
      if (!apply_scenario_field(&p.spec.scenario, t[1].text, t[2].text,
                                &msg)) {
        p.fail(t[1].col, msg);
        return std::nullopt;
      }
    } else if (kw == "node") {
      if (!start_graph()) return std::nullopt;
      if (t.size() != 2 && t.size() != 4) {
        p.fail(t[0].col, "usage: node <name> [count <N>]");
        return std::nullopt;
      }
      if (p.find_node(t[1].text) >= 0) {
        p.fail(t[1].col, "duplicate node '" + t[1].text + "'");
        return std::nullopt;
      }
      TopoNodeSpec node;
      node.name = t[1].text;
      node.line = p.lineno;
      if (t.size() == 4) {
        if (t[2].text != "count") {
          p.fail(t[2].col, "expected 'count', got '" + t[2].text + "'");
          return std::nullopt;
        }
        std::size_t c = 0;
        if (!p.size_token(t[3], &c)) return std::nullopt;
        node.count = static_cast<int>(c);
      }
      p.node_names.push_back(node.name);
      p.spec.nodes.push_back(std::move(node));
    } else if (kw == "link") {
      if (!start_graph()) return std::nullopt;
      if (t.size() < 3) {
        p.fail(t[0].col, "usage: link <from> <to> rate <R> delay <D> ...");
        return std::nullopt;
      }
      TopoLinkSpec link;
      link.line = p.lineno;
      if (!p.node_token(t[1], &link.from) || !p.node_token(t[2], &link.to)) {
        return std::nullopt;
      }
      if (link.from == link.to) {
        p.fail(t[2].col, "link endpoints must differ");
        return std::nullopt;
      }
      const int from_count = p.spec.nodes[static_cast<std::size_t>(link.from)].count;
      const int to_count = p.spec.nodes[static_cast<std::size_t>(link.to)].count;
      if (from_count > 1 && to_count > 1 && from_count != to_count) {
        std::ostringstream os;
        os << "group link '" << t[1].text << " -> " << t[2].text
           << "' needs equal member counts (" << from_count << " vs "
           << to_count << ")";
        p.fail(t[1].col, os.str());
        return std::nullopt;
      }
      bool have_rate = false, have_delay = false;
      std::size_t i = 3;
      auto need_value = [&](const Token& key) -> const Token* {
        if (i + 1 >= t.size()) {
          p.fail(key.col, "'" + key.text + "' needs a value");
          return nullptr;
        }
        return &t[i + 1];
      };
      while (i < t.size()) {
        const Token& key = t[i];
        if (key.text == "rate") {
          const Token* v = need_value(key);
          if (!v || !p.rate_token(*v, &link.rate_bps)) return std::nullopt;
          have_rate = true;
          i += 2;
        } else if (key.text == "delay") {
          const Token* v = need_value(key);
          if (!v || !p.time_token(*v, &link.delay)) return std::nullopt;
          have_delay = true;
          i += 2;
        } else if (key.text == "spread") {
          const Token* v = need_value(key);
          if (!v || !p.number_token(*v, &link.delay_spread)) {
            return std::nullopt;
          }
          if (link.delay_spread < 0.0 || link.delay_spread >= 1.0) {
            p.fail(v->col, "spread must be in [0, 1)");
            return std::nullopt;
          }
          i += 2;
        } else if (key.text == "queue") {
          const Token* kindTok = need_value(key);
          if (!kindTok) return std::nullopt;
          PortQueueSpec& q = link.queue;
          const Scenario& sc = p.spec.scenario;
          // Unset parameters resolve from the scenario NOW (parse time),
          // so the canonical rendering carries concrete values.
          if (kindTok->text == "gateway") {
            // The scenario's gateway discipline, whatever `set queue`
            // (or a campaign sweep) chose — parameters still override.
            q = gateway_port_queue(sc);
          } else if (kindTok->text == "droptail") {
            q.kind = PortQueueSpec::Kind::kDropTail;
            q.capacity = sc.gateway_buffer;
          } else if (kindTok->text == "red") {
            q.kind = PortQueueSpec::Kind::kRed;
            q.capacity = sc.gateway_buffer;
            q.red_min_th = sc.red_min_th;
            q.red_max_th = sc.red_max_th;
            q.red_max_p = sc.red_max_p;
            q.red_weight = sc.red_weight;
            q.red_ecn = sc.ecn;
            q.red_adaptive = sc.adaptive_red;
          } else if (kindTok->text == "drr") {
            q.kind = PortQueueSpec::Kind::kDrr;
            q.capacity = sc.gateway_buffer;
            q.drr_quantum_bytes = sc.wire_bytes();
          } else {
            p.fail(kindTok->col,
                   "unknown queue type '" + kindTok->text +
                       "' (want gateway, droptail, red or drr)");
            return std::nullopt;
          }
          i += 2;
          // Queue parameters consume the rest of the line.
          while (i < t.size()) {
            const Token& pk = t[i];
            const bool is_red = q.kind == PortQueueSpec::Kind::kRed;
            const bool is_drr = q.kind == PortQueueSpec::Kind::kDrr;
            if (pk.text == "cap") {
              const Token* v = need_value(pk);
              if (!v || !p.size_token(*v, &q.capacity)) return std::nullopt;
              i += 2;
            } else if (is_red && pk.text == "min") {
              const Token* v = need_value(pk);
              if (!v || !p.number_token(*v, &q.red_min_th)) return std::nullopt;
              i += 2;
            } else if (is_red && pk.text == "max") {
              const Token* v = need_value(pk);
              if (!v || !p.number_token(*v, &q.red_max_th)) return std::nullopt;
              i += 2;
            } else if (is_red && pk.text == "maxp") {
              const Token* v = need_value(pk);
              if (!v || !p.number_token(*v, &q.red_max_p)) return std::nullopt;
              i += 2;
            } else if (is_red && pk.text == "weight") {
              const Token* v = need_value(pk);
              if (!v || !p.number_token(*v, &q.red_weight)) return std::nullopt;
              i += 2;
            } else if (is_red && pk.text == "ecn") {
              q.red_ecn = true;
              i += 1;
            } else if (is_red && pk.text == "adaptive") {
              q.red_adaptive = true;
              i += 1;
            } else if (is_drr && pk.text == "quantum") {
              const Token* v = need_value(pk);
              double d = 0.0;
              if (!v || !p.number_token(*v, &d)) return std::nullopt;
              if (d < 1) {
                p.fail(v->col, "quantum must be >= 1 byte");
                return std::nullopt;
              }
              q.drr_quantum_bytes = static_cast<int>(d);
              i += 2;
            } else {
              p.fail(pk.col, "unknown " + kindTok->text + " queue parameter '" +
                                 pk.text + "'");
              return std::nullopt;
            }
          }
          if (q.kind == PortQueueSpec::Kind::kRed &&
              q.red_min_th >= q.red_max_th) {
            std::ostringstream os;
            os << "red min threshold (" << q.red_min_th
               << ") must be below max (" << q.red_max_th << ")";
            p.fail(kindTok->col, os.str());
            return std::nullopt;
          }
        } else {
          p.fail(key.col, "unknown link attribute '" + key.text + "'");
          return std::nullopt;
        }
      }
      if (!have_rate) {
        p.fail(t[0].col, "link needs a rate");
        return std::nullopt;
      }
      if (!have_delay) {
        p.fail(t[0].col, "link needs a delay");
        return std::nullopt;
      }
      if (link.rate_bps <= 0.0) {
        p.fail(t[0].col, "link rate must be positive");
        return std::nullopt;
      }
      if (link.delay < 0.0) {
        p.fail(t[0].col, "link delay must be non-negative");
        return std::nullopt;
      }
      p.spec.links.push_back(link);
    } else if (kw == "flow") {
      if (!start_graph()) return std::nullopt;
      if (t.size() < 3) {
        p.fail(t[0].col, "usage: flow <src> <dst> [transport <t>] [delack] "
                         "[workload poisson <MEAN>]");
        return std::nullopt;
      }
      TopoFlowSpec flow;
      flow.line = p.lineno;
      if (!p.node_token(t[1], &flow.src) || !p.node_token(t[2], &flow.dst)) {
        return std::nullopt;
      }
      const int dst_count = p.spec.nodes[static_cast<std::size_t>(flow.dst)].count;
      if (dst_count != 1) {
        std::ostringstream os;
        os << "flow destination '" << t[2].text
           << "' must be a single node (group of " << dst_count << ")";
        p.fail(t[2].col, os.str());
        return std::nullopt;
      }
      const Scenario& sc = p.spec.scenario;
      flow.transport = sc.transport;
      flow.delayed_ack = sc.delayed_ack;
      flow.mean_interarrival = sc.mean_interarrival;
      std::size_t i = 3;
      while (i < t.size()) {
        const Token& key = t[i];
        if (key.text == "transport") {
          if (i + 1 >= t.size()) {
            p.fail(key.col, "'transport' needs a value");
            return std::nullopt;
          }
          if (!parse_transport(t[i + 1].text, &flow.transport)) {
            p.fail(t[i + 1].col,
                   "unknown transport '" + t[i + 1].text + "'");
            return std::nullopt;
          }
          i += 2;
        } else if (key.text == "delack") {
          flow.delayed_ack = true;
          i += 1;
        } else if (key.text == "nodelack") {
          flow.delayed_ack = false;
          i += 1;
        } else if (key.text == "workload") {
          if (i + 2 >= t.size()) {
            p.fail(key.col, "usage: workload poisson <MEAN>");
            return std::nullopt;
          }
          if (t[i + 1].text != "poisson") {
            p.fail(t[i + 1].col,
                   "unknown workload '" + t[i + 1].text + "' (want poisson)");
            return std::nullopt;
          }
          if (!p.time_token(t[i + 2], &flow.mean_interarrival)) {
            return std::nullopt;
          }
          if (flow.mean_interarrival <= 0.0) {
            p.fail(t[i + 2].col, "workload mean must be positive");
            return std::nullopt;
          }
          i += 3;
        } else {
          p.fail(key.col, "unknown flow attribute '" + key.text + "'");
          return std::nullopt;
        }
      }
      p.spec.flows.push_back(flow);
    } else if (kw == "measure") {
      if (!start_graph()) return std::nullopt;
      if (t.size() != 3) {
        p.fail(t[0].col, "usage: measure <from> <to>");
        return std::nullopt;
      }
      if (measure) {
        p.fail(t[0].col, "duplicate measure statement");
        return std::nullopt;
      }
      measure = PendingMeasure{t[1].text, t[2].text, p.lineno, t[1].col};
    } else {
      p.fail(t[0].col, "unknown statement '" + kw + "'");
      return std::nullopt;
    }
    any_statement = true;
  }

  // ---- Whole-file validation. -----------------------------------------
  auto file_fail = [&](int line, int col, std::string msg) {
    err->line = line;
    err->col = col;
    err->message = std::move(msg);
    return std::nullopt;
  };
  if (p.spec.nodes.empty()) return file_fail(0, 0, "no node statements");
  if (p.spec.links.empty()) return file_fail(0, 0, "no link statements");
  if (p.spec.flows.empty()) return file_fail(0, 0, "no flow statements");

  if (measure) {
    const int from = p.find_node(measure->from);
    const int to = p.find_node(measure->to);
    if (from < 0) {
      return file_fail(measure->line, measure->col,
                       "unknown node '" + measure->from + "'");
    }
    if (to < 0) {
      return file_fail(measure->line, measure->col,
                       "unknown node '" + measure->to + "'");
    }
    for (std::size_t i = 0; i < p.spec.links.size(); ++i) {
      if (p.spec.links[i].from == from && p.spec.links[i].to == to) {
        p.spec.measure_link = static_cast<int>(i);
        break;
      }
    }
    if (p.spec.measure_link < 0) {
      return file_fail(measure->line, measure->col,
                       "measure references undeclared link '" + measure->from +
                           " -> " + measure->to + "'");
    }
  } else {
    for (std::size_t i = 0; i < p.spec.links.size(); ++i) {
      if (p.spec.links[i].queue.kind != PortQueueSpec::Kind::kDefault) {
        p.spec.measure_link = static_cast<int>(i);
        break;
      }
    }
    if (p.spec.measure_link < 0) {
      return file_fail(0, 0,
                       "no measure statement and no link declares an explicit "
                       "queue — nothing to measure");
    }
  }

  // Reachability: every flow needs a forward route (src -> dst) and a
  // reverse route for its ACKs. Expand groups and BFS over directed links.
  {
    const int total = p.spec.total_nodes();
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(total));
    for (const TopoLinkSpec& l : p.spec.links) {
      const int fc = p.spec.node_count(l.from);
      const int tc = p.spec.node_count(l.to);
      const int c = std::max(fc, tc);
      for (int j = 0; j < c; ++j) {
        const int u = p.spec.node_id(l.from, fc > 1 ? j : 0);
        const int v = p.spec.node_id(l.to, tc > 1 ? j : 0);
        adj[static_cast<std::size_t>(u)].push_back(v);
      }
    }
    auto reaches = [&](int from, int to) {
      std::vector<char> seen(static_cast<std::size_t>(total), 0);
      std::queue<int> q;
      q.push(from);
      seen[static_cast<std::size_t>(from)] = 1;
      while (!q.empty()) {
        const int u = q.front();
        q.pop();
        if (u == to) return true;
        for (const int v : adj[static_cast<std::size_t>(u)]) {
          if (!seen[static_cast<std::size_t>(v)]) {
            seen[static_cast<std::size_t>(v)] = 1;
            q.push(v);
          }
        }
      }
      return false;
    };
    for (const TopoFlowSpec& f : p.spec.flows) {
      const int dst = p.spec.node_id(f.dst, 0);
      for (int j = 0; j < p.spec.node_count(f.src); ++j) {
        const int src = p.spec.node_id(f.src, j);
        const std::string& sname =
            p.spec.nodes[static_cast<std::size_t>(f.src)].name;
        const std::string& dname =
            p.spec.nodes[static_cast<std::size_t>(f.dst)].name;
        if (!reaches(src, dst)) {
          return file_fail(f.line, 1, "no route from '" + sname + "' to '" +
                                          dname + "'");
        }
        if (!reaches(dst, src)) {
          return file_fail(f.line, 1, "no reverse route from '" + dname +
                                          "' back to '" + sname +
                                          "' (ACK path)");
        }
      }
    }
  }
  return p.spec;
}

std::optional<TopoSpec> load_topo_file(const std::string& path, TopoError* err,
                                       const TopoOverrides& overrides) {
  std::ifstream in(path);
  if (!in) {
    if (err) {
      err->line = 0;
      err->col = 0;
      err->message = "cannot open file";
    }
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string stem = std::filesystem::path(path).stem().string();
  return parse_topo(buf.str(), stem, err, overrides);
}

}  // namespace burst
