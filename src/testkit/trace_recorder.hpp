// TraceRecorder: turns a TcpSender's event stream (and, optionally, the
// ACK packets flowing back to it) into a canonical, line-oriented text
// trace suitable for golden-file comparison.
//
// One line per event, fixed field order, fixed formatting (%.6f times,
// %.10g windows), so a trace is byte-stable across runs and platforms and
// any change to per-event window dynamics shows up as a line diff.
#pragma once

#include <string>
#include <vector>

#include "src/net/packet.hpp"
#include "src/transport/tcp_sender.hpp"

namespace burst::testkit {

class TraceRecorder : public TcpSenderObserver {
 public:
  void on_sender_event(const TcpSenderEvent& e) override;

  /// Appends an "ack-rx" line for an ACK packet observed at @p now (the
  /// harness taps the reverse channel with this). Captures ack number,
  /// echoed timestamp, Karn taint flag and SACK blocks — the fields the
  /// delayed-ACK/Karn conformance scripts pin down.
  void record_ack(Time now, const Packet& p);

  /// Appends a free-form "# ..." comment line (script phase markers).
  void note(const std::string& text);

  const std::vector<std::string>& lines() const { return lines_; }
  const std::vector<TcpSenderEvent>& events() const { return events_; }

  /// Events of one kind, in order (for structural assertions).
  std::vector<TcpSenderEvent> events_of(TcpSenderEvent::Kind kind) const;

 private:
  std::vector<std::string> lines_;
  std::vector<TcpSenderEvent> events_;
};

}  // namespace burst::testkit
