// ScriptHarness: one live TcpSender/TcpSink pair joined by two
// ScriptChannels (data forward, ACKs reverse), with a TraceRecorder
// attached to the sender and, optionally, tapping the ACK stream.
//
// With zero serialization time and fixed per-direction delays, every
// arrival instant is exact arithmetic on the script: a segment sent at t
// reaches the sink at t + fwd_delay, its ACK returns at
// t + fwd_delay + rev_delay. Conformance scenarios lean on that to place
// drops, reorderings and marks at precisely chosen protocol states.
#pragma once

#include <memory>
#include <utility>

#include "src/net/node.hpp"
#include "src/sim/simulator.hpp"
#include "src/testkit/script_channel.hpp"
#include "src/testkit/trace_recorder.hpp"
#include "src/transport/tcp_sender.hpp"
#include "src/transport/tcp_sink.hpp"

namespace burst::testkit {

struct ScriptHarnessConfig {
  Time fwd_delay = 0.05;  // data direction; RTT = fwd + rev = 100 ms
  Time rev_delay = 0.05;  // ACK direction
  bool record_acks = false;  // tap ACK arrivals into the trace
  TcpSinkConfig sink{};
};

class ScriptHarness {
 public:
  explicit ScriptHarness(ScriptHarnessConfig cfg = {})
      : cfg_(cfg),
        fwd(sim, cfg.fwd_delay),
        rev(sim, cfg.rev_delay) {
    fwd.set_receiver([this](const Packet& p) { b.receive(p); });
    rev.set_receiver([this](const Packet& p) {
      if (cfg_.record_acks) recorder.record_ack(sim.now(), p);
      a.receive(p);
    });
    a.add_route(Node::kDefaultRoute, &fwd);
    b.add_route(Node::kDefaultRoute, &rev);
    sink = std::make_unique<TcpSink>(sim, b, /*flow=*/0, /*peer=*/0,
                                     cfg.sink);
  }

  /// Creates the sender (any TcpSender subclass) with the recorder
  /// already attached, so the trace covers the very first transmission.
  template <typename T, typename... Args>
  T* make_sender(Args&&... args) {
    auto owned = std::make_unique<T>(sim, a, /*flow=*/0, /*peer=*/1,
                                     std::forward<Args>(args)...);
    T* raw = owned.get();
    raw->set_observer(&recorder);
    sender = std::move(owned);
    return raw;
  }

  /// Exact script round-trip time (no serialization component).
  Time rtt() const { return cfg_.fwd_delay + cfg_.rev_delay; }

  ScriptHarnessConfig cfg_;
  Simulator sim{1};
  Node a{0}, b{1};
  ScriptChannel fwd, rev;
  TraceRecorder recorder;
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpSink> sink;
};

}  // namespace burst::testkit
