// Golden-trace comparison for the conformance suite.
//
// A golden file is the checked-in line-for-line expected trace of one
// scripted scenario (tests/conformance/golden/<name>.trace). Policy:
//
//  * The suite fails on ANY line diff. A diff means per-event transport
//    dynamics changed — that is the point of the fence.
//  * A bugfix that legitimately changes dynamics re-generates its traces
//    with BURST_REGEN_GOLDEN=1 and justifies the diff in the PR (same
//    rule as the pinned hashes in tests/result_identity_test.cpp).
//  * On mismatch the actual trace and a unified-style diff are written to
//    $BURST_GOLDEN_DIFF_DIR (default ./conformance-diffs), which CI
//    uploads as an artifact.
//
// Environment:
//   BURST_GOLDEN_DIR       override the golden directory (default is the
//                          compiled-in source-tree path)
//   BURST_REGEN_GOLDEN=1   rewrite golden files instead of comparing
//   BURST_GOLDEN_DIFF_DIR  where mismatch artifacts go
#pragma once

#include <string>
#include <vector>

namespace burst::testkit {

struct GoldenResult {
  bool ok = false;           // matched, or regenerated on request
  bool regenerated = false;  // the golden file was (re)written
  std::string message;       // human-readable failure/diff summary
};

/// Compares @p lines against the golden file @p name (no extension).
GoldenResult check_golden(const std::string& name,
                          const std::vector<std::string>& lines);

/// The directory golden files are read from (env override applied).
std::string golden_dir();

}  // namespace burst::testkit
