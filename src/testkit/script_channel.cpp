#include "src/testkit/script_channel.hpp"

namespace burst::testkit {

ScriptChannel::ScriptChannel(Simulator& sim, Time base_delay)
    : sim_(sim), base_delay_(base_delay) {}

ScriptChannel& ScriptChannel::drop_nth(std::uint64_t nth) {
  rules_.push_back({true, nth, 0, 0, Action::kDrop});
  return *this;
}

ScriptChannel& ScriptChannel::delay_nth(std::uint64_t nth, Time extra) {
  rules_.push_back({true, nth, 0, 0, Action::kDelay, extra});
  return *this;
}

ScriptChannel& ScriptChannel::mark_nth(std::uint64_t nth) {
  rules_.push_back({true, nth, 0, 0, Action::kMark});
  return *this;
}

ScriptChannel& ScriptChannel::dup_nth(std::uint64_t nth) {
  rules_.push_back({true, nth, 0, 0, Action::kDup});
  return *this;
}

ScriptChannel& ScriptChannel::drop_seq(std::int64_t seq, int occurrence) {
  rules_.push_back({false, 0, seq, occurrence, Action::kDrop});
  return *this;
}

ScriptChannel& ScriptChannel::delay_seq(std::int64_t seq, Time extra,
                                        int occurrence) {
  rules_.push_back({false, 0, seq, occurrence, Action::kDelay, extra});
  return *this;
}

ScriptChannel& ScriptChannel::mark_seq(std::int64_t seq, int occurrence) {
  rules_.push_back({false, 0, seq, occurrence, Action::kMark});
  return *this;
}

ScriptChannel& ScriptChannel::drop_range(std::int64_t lo, std::int64_t hi) {
  for (std::int64_t s = lo; s < hi; ++s) drop_seq(s, 1);
  return *this;
}

void ScriptChannel::deliver_after(Time delay, const Packet& p) {
  sim_.schedule(delay, [this, p] {
    ++delivered_;
    if (receiver_) receiver_(p);
  });
}

void ScriptChannel::send(const Packet& p) {
  const std::uint64_t index = offered_++;
  const int occurrence = ++seen_[key_of(p)];

  Time extra = 0.0;
  bool drop = false, mark = false, dup = false;
  for (Rule& r : rules_) {
    if (r.spent) continue;
    const bool hit = r.by_index
                         ? r.index == index
                         : (r.seq == key_of(p) && r.occurrence == occurrence);
    if (!hit) continue;
    r.spent = true;
    switch (r.action) {
      case Action::kDrop: drop = true; break;
      case Action::kDelay: extra += r.extra; break;
      case Action::kMark: mark = true; break;
      case Action::kDup: dup = true; break;
    }
  }

  if (drop) {
    ++dropped_;
    return;
  }
  Packet out = p;
  if (mark) out.ecn_marked = true;
  deliver_after(base_delay_ + extra, out);
  if (dup) deliver_after(base_delay_ + extra, out);
}

}  // namespace burst::testkit
