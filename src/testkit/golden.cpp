#include "src/testkit/golden.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef BURST_GOLDEN_DEFAULT_DIR
#define BURST_GOLDEN_DEFAULT_DIR "tests/conformance/golden"
#endif

namespace burst::testkit {
namespace {

std::string env_or(const char* var, const char* fallback) {
  const char* v = std::getenv(var);
  return (v && *v) ? v : fallback;
}

bool regen_requested() {
  const char* v = std::getenv("BURST_REGEN_GOLDEN");
  return v && *v && std::string(v) != "0";
}

std::vector<std::string> read_lines(const std::string& path, bool& exists) {
  std::vector<std::string> out;
  std::ifstream in(path);
  exists = in.good();
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& l : lines) out << l << '\n';
}

/// First-divergence diff with a little context; compact enough for a
/// test failure message, complete enough to act on.
std::string render_diff(const std::vector<std::string>& expected,
                        const std::vector<std::string>& actual) {
  std::size_t i = 0;
  while (i < expected.size() && i < actual.size() && expected[i] == actual[i])
    ++i;
  std::ostringstream os;
  os << "first divergence at line " << (i + 1) << " (expected "
     << expected.size() << " lines, got " << actual.size() << ")\n";
  const std::size_t lo = i >= 2 ? i - 2 : 0;
  for (std::size_t k = lo; k < i; ++k) os << "  " << expected[k] << '\n';
  for (std::size_t k = i; k < std::min(expected.size(), i + 4); ++k)
    os << "- " << expected[k] << '\n';
  for (std::size_t k = i; k < std::min(actual.size(), i + 4); ++k)
    os << "+ " << actual[k] << '\n';
  return os.str();
}

}  // namespace

std::string golden_dir() {
  return env_or("BURST_GOLDEN_DIR", BURST_GOLDEN_DEFAULT_DIR);
}

GoldenResult check_golden(const std::string& name,
                          const std::vector<std::string>& lines) {
  namespace fs = std::filesystem;
  const std::string path = golden_dir() + "/" + name + ".trace";
  GoldenResult r;

  if (regen_requested()) {
    fs::create_directories(golden_dir());
    write_lines(path, lines);
    r.ok = true;
    r.regenerated = true;
    r.message = "regenerated " + path;
    return r;
  }

  bool exists = false;
  const std::vector<std::string> expected = read_lines(path, exists);
  if (!exists) {
    r.message = "golden file missing: " + path +
                " (run with BURST_REGEN_GOLDEN=1 to create it)";
    return r;
  }
  if (expected == lines) {
    r.ok = true;
    return r;
  }

  // Mismatch: drop artifacts for CI and point the developer at them.
  const std::string diff_dir =
      env_or("BURST_GOLDEN_DIFF_DIR", "conformance-diffs");
  std::error_code ec;
  fs::create_directories(diff_dir, ec);
  std::string note;
  if (!ec) {
    write_lines(diff_dir + "/" + name + ".actual", lines);
    std::ofstream diff(diff_dir + "/" + name + ".diff", std::ios::trunc);
    diff << render_diff(expected, lines);
    note = "artifacts in " + diff_dir + "/" + name + ".{actual,diff}\n";
  }
  r.message = "golden trace '" + name + "' diverged:\n" +
              render_diff(expected, lines) + note +
              "(intentional? regenerate with BURST_REGEN_GOLDEN=1 and "
              "justify the diff in the PR)";
  return r;
}

}  // namespace burst::testkit
