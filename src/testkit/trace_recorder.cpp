#include "src/testkit/trace_recorder.hpp"

#include <cstdio>

namespace burst::testkit {
namespace {

const char* kind_name(TcpSenderEvent::Kind k) {
  switch (k) {
    case TcpSenderEvent::Kind::kSend: return "send";
    case TcpSenderEvent::Kind::kNewAck: return "ack";
    case TcpSenderEvent::Kind::kDupAck: return "dupack";
    case TcpSenderEvent::Kind::kRto: return "rto";
    case TcpSenderEvent::Kind::kEcnEcho: return "ecn-echo";
  }
  return "?";
}

}  // namespace

void TraceRecorder::on_sender_event(const TcpSenderEvent& e) {
  events_.push_back(e);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%.6f %-8s seq=%lld rexmit=%d cwnd=%.10g ssthresh=%.10g "
                "state=%.*s una=%lld nxt=%lld flight=%lld dups=%d rtts=%llu",
                e.time, kind_name(e.kind),
                static_cast<long long>(e.seq), e.retransmit ? 1 : 0, e.cwnd,
                e.ssthresh, static_cast<int>(e.state.size()), e.state.data(),
                static_cast<long long>(e.snd_una),
                static_cast<long long>(e.snd_nxt),
                static_cast<long long>(e.flight), e.dupacks,
                static_cast<unsigned long long>(e.rtt_samples));
  lines_.emplace_back(buf);
}

void TraceRecorder::record_ack(Time now, const Packet& p) {
  char buf[256];
  int n = std::snprintf(buf, sizeof buf,
                        "%.6f ack-rx   ack=%lld ts=%.6f rexmit=%d ece=%d",
                        now, static_cast<long long>(p.ack), p.ts_echo,
                        p.retransmit ? 1 : 0, p.ece ? 1 : 0);
  for (int i = 0; i < p.sack_count && n < static_cast<int>(sizeof buf); ++i) {
    n += std::snprintf(buf + n, sizeof buf - n, " sack=[%lld,%lld)",
                       static_cast<long long>(p.sack[i].lo),
                       static_cast<long long>(p.sack[i].hi));
  }
  lines_.emplace_back(buf);
}

void TraceRecorder::note(const std::string& text) {
  lines_.push_back("# " + text);
}

std::vector<TcpSenderEvent> TraceRecorder::events_of(
    TcpSenderEvent::Kind kind) const {
  std::vector<TcpSenderEvent> out;
  for (const TcpSenderEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

}  // namespace burst::testkit
