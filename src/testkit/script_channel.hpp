// ScriptChannel: a programmable stand-in for a SimplexLink.
//
// Where a SimplexLink models bandwidth, queueing and propagation, a
// ScriptChannel delivers every packet after a fixed base delay — zero
// serialization time, so the arrival instants are exact arithmetic on the
// script — and applies per-packet *rules*: drop, extra delay (reordering),
// duplicate, or ECN-mark. Rules select packets either by offer index (the
// Nth packet handed to this channel, 0-based) or by sequence key (the Nth
// transmission of a given seq for data, of a given cumulative ack for
// ACKs). That is all a conformance script needs to steer a live
// TcpSender/TcpSink pair through any loss/reorder/marking pattern at
// exact simulated times.
//
// Delivery order for equal arrival times is the offer order (the
// simulator's scheduler is FIFO for ties), so scripts are deterministic
// by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/channel.hpp"
#include "src/net/packet.hpp"
#include "src/sim/simulator.hpp"

namespace burst::testkit {

class ScriptChannel : public PacketChannel {
 public:
  /// Packets are delivered @p base_delay seconds after send() untouched
  /// by any rule.
  ScriptChannel(Simulator& sim, Time base_delay);

  /// Sets the far-end consumer. Must be set before traffic flows.
  void set_receiver(std::function<void(const Packet&)> rx) {
    receiver_ = std::move(rx);
  }

  // --- Rules by offer index (0-based, counts every packet offered) ----
  ScriptChannel& drop_nth(std::uint64_t nth);
  ScriptChannel& delay_nth(std::uint64_t nth, Time extra);
  ScriptChannel& mark_nth(std::uint64_t nth);
  ScriptChannel& dup_nth(std::uint64_t nth);

  // --- Rules by sequence key -----------------------------------------
  // The key of a data packet is its seq; of an ACK its cumulative ack.
  // @p occurrence selects which transmission carrying that key the rule
  // applies to (1-based; the first retransmission of seq k is
  // occurrence 2).
  ScriptChannel& drop_seq(std::int64_t seq, int occurrence = 1);
  ScriptChannel& delay_seq(std::int64_t seq, Time extra, int occurrence = 1);
  ScriptChannel& mark_seq(std::int64_t seq, int occurrence = 1);

  /// Drops the first transmission of every sequence in [lo, hi).
  ScriptChannel& drop_range(std::int64_t lo, std::int64_t hi);

  void send(const Packet& p) override;

  std::uint64_t offered() const { return offered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  enum class Action : std::uint8_t { kDrop, kDelay, kMark, kDup };
  struct Rule {
    bool by_index;         // else by (seq key, occurrence)
    std::uint64_t index;   // offer index when by_index
    std::int64_t seq;      // sequence key otherwise
    int occurrence;        // 1-based transmission count for that key
    Action action;
    Time extra = 0.0;      // kDelay only
    bool spent = false;    // every rule fires at most once
  };

  static std::int64_t key_of(const Packet& p) {
    return p.type == PacketType::kData ? p.seq : p.ack;
  }
  void deliver_after(Time delay, const Packet& p);

  Simulator& sim_;
  Time base_delay_;
  std::function<void(const Packet&)> receiver_;
  std::vector<Rule> rules_;
  std::unordered_map<std::int64_t, int> seen_;  // transmissions per key
  std::uint64_t offered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace burst::testkit
