// SmallFn: a move-only `void()` callable with small-buffer optimization.
//
// The scheduler stores one callback per pending event and the hot loop
// creates/destroys millions of them per simulation, so the common case —
// a lambda capturing a few pointers — must not touch the heap the way
// std::function does. Callables up to kInlineSize bytes that are nothrow
// move constructible live inside the SmallFn object; anything bigger (or
// throwing on move) falls back to a single heap allocation.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace burst {

class SmallFn {
 public:
  /// Callables at most this large (and nothrow-move-constructible) are
  /// stored inline. 48 bytes = 6 captured pointers, which covers every
  /// timer/packet event in the simulator (links park in-flight packets in
  /// a PacketSlab and capture a 4-byte handle instead of the ~120-byte
  /// Packet, precisely so their closures stay under this limit).
  static constexpr std::size_t kInlineSize = 48;

  /// True if callables of type @p F live in the inline buffer (no heap).
  /// Hot-path call sites static_assert this so a capture-list growth that
  /// would silently reintroduce per-event allocation fails to compile.
  template <typename F>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<F>>();
  }

  SmallFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at every schedule() call site.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      // Trivially-copyable, trivially-destructible callables (every
      // hot-path lambda: captures are pointers, handles, doubles) need no
      // manager at all — moves become a plain buffer copy and destruction
      // a no-op, skipping an indirect call on each of the two moves every
      // scheduled event makes (into its slot, then out at pop).
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        manage_ = nullptr;
      } else {
        manage_ = &inline_manage<D>;
      }
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      invoke_ = &heap_invoke<D>;
      manage_ = &heap_manage<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Destroys the held callable (releasing captured resources now, not at
  /// some later heap pop — this is what makes Scheduler::cancel eager).
  void reset() noexcept {
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(Op::kDestroy, buf_, nullptr);
        manage_ = nullptr;
      }
      invoke_ = nullptr;
    }
  }

 private:
  enum class Op { kDestroy, kMove };
  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* from);

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static void inline_invoke(void* buf) {
    (*std::launder(reinterpret_cast<D*>(buf)))();
  }
  template <typename D>
  static void inline_manage(Op op, void* self, void* from) {
    if (op == Op::kDestroy) {
      std::launder(reinterpret_cast<D*>(self))->~D();
    } else {
      D* src = std::launder(reinterpret_cast<D*>(from));
      ::new (self) D(std::move(*src));
      src->~D();
    }
  }

  template <typename D>
  static void heap_invoke(void* buf) {
    (**std::launder(reinterpret_cast<D**>(buf)))();
  }
  template <typename D>
  static void heap_manage(Op op, void* self, void* from) {
    if (op == Op::kDestroy) {
      delete *std::launder(reinterpret_cast<D**>(self));
    } else {
      *reinterpret_cast<D**>(self) = *std::launder(reinterpret_cast<D**>(from));
    }
  }

  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      if (other.manage_ != nullptr) {
        other.manage_(Op::kMove, buf_, other.buf_);
        manage_ = other.manage_;
        other.manage_ = nullptr;
      } else {
        // Trivially-relocatable payload: the callable's size is unknown
        // here, but copying the whole (small, aligned) buffer is cheaper
        // than an indirect call to a type-aware mover.
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      invoke_ = other.invoke_;
      other.invoke_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

}  // namespace burst
