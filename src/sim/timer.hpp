// A restartable one-shot timer, the building block for TCP retransmit and
// delayed-ACK timers.
//
// The owner must outlive the timer's Simulator events; Timer guarantees
// that a cancelled or rescheduled timer never fires its old callback
// (generation counting guards against stale events).
#pragma once

#include <cstdint>
#include <utility>

#include "src/sim/simulator.hpp"
#include "src/sim/small_fn.hpp"

namespace burst {

class Timer {
 public:
  /// @p on_fire is invoked each time the timer expires.
  Timer(Simulator& sim, SmallFn on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  /// (Re)schedules the timer @p delay seconds from now, replacing any
  /// pending expiry.
  void schedule(Time delay);

  /// Stops the timer; a stopped timer does not fire.
  void cancel();

  /// True if an expiry is pending.
  bool pending() const { return id_ != kInvalidEventId && sim_.pending(id_); }

  /// Absolute expiry time, or kTimeNever if not pending.
  Time expiry() const { return pending() ? expiry_ : kTimeNever; }

 private:
  Simulator& sim_;
  SmallFn on_fire_;
  EventId id_ = kInvalidEventId;
  Time expiry_ = kTimeNever;
};

}  // namespace burst
