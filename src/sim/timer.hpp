// A restartable one-shot timer, the building block for TCP retransmit and
// delayed-ACK timers.
//
// The owner must outlive the timer's Simulator events; Timer guarantees
// that a cancelled or rescheduled timer never fires its old callback.
//
// Two modes (DESIGN.md §6):
//  * kExact — every schedule()/cancel() maps to a scheduler insert/cancel,
//    the classic implementation. One event per (re)schedule.
//  * kLazy — schedule() just records the new deadline. At most one
//    scheduler event is armed at a time; when it fires it compares the
//    recorded deadline against its own timestamp and either fires the
//    callback, re-arms itself at the (later) deadline, or quietly disarms
//    if the timer was cancelled meanwhile. A deadline that only ever moves
//    forward — the TCP RTO, pushed out by every ACK — costs zero scheduler
//    traffic per move instead of a cancel+insert pair. Observable firing
//    semantics are identical to kExact: the callback runs exactly at the
//    latest scheduled deadline, never after a cancel. The armed event is
//    a soft-deadline scheduler event (Simulator::schedule_soft_at), so at
//    large flow counts it parks in the timing wheel, not the heap.
#pragma once

#include <cstdint>
#include <utility>

#include "src/sim/simulator.hpp"
#include "src/sim/small_fn.hpp"

namespace burst {

class Timer {
 public:
  enum class Mode : std::uint8_t { kExact, kLazy };

  /// @p on_fire is invoked each time the timer expires.
  Timer(Simulator& sim, SmallFn on_fire, Mode mode = Mode::kExact)
      : sim_(sim), on_fire_(std::move(on_fire)), mode_(mode) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  /// Hard-cancels in either mode: no scheduler event may outlive the
  /// Timer it points back into.
  ~Timer() { disarm(); }

  /// (Re)schedules the timer @p delay seconds from now, replacing any
  /// pending expiry. In kLazy mode a deadline that moves forward (or
  /// stays put) is O(1) with no scheduler traffic.
  void schedule(Time delay);

  /// Stops the timer; a stopped timer does not fire. In kLazy mode the
  /// armed scheduler event (if any) is left to self-disarm as a no-op.
  void cancel();

  /// True if an expiry is pending.
  bool pending() const { return deadline_ != kTimeNever; }

  /// Absolute expiry time, or kTimeNever if not pending.
  Time expiry() const { return deadline_; }

  Mode mode() const { return mode_; }

 private:
  /// Arms the underlying scheduler event at absolute time @p at.
  void arm(Time at);
  /// Cancels the underlying scheduler event (deadline_ untouched).
  void disarm();
  /// Trampoline run by the scheduler event.
  void on_event();

  Simulator& sim_;
  SmallFn on_fire_;
  Mode mode_;
  EventId id_ = kInvalidEventId;
  Time armed_at_ = kTimeNever;  // when the armed scheduler event runs
  Time deadline_ = kTimeNever;  // when on_fire_ is due (kTimeNever: none)
};

}  // namespace burst
