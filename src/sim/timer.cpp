#include "src/sim/timer.hpp"

namespace burst {

void Timer::schedule(Time delay) {
  const Time at = sim_.now() + delay;
  deadline_ = at;
  if (mode_ == Mode::kLazy && id_ != kInvalidEventId && armed_at_ <= at) {
    // Soft move: the armed event runs no later than the new deadline and
    // will re-arm itself there (or fire, if they coincide).
    return;
  }
  // kExact, nothing armed, or the deadline shrank below the armed event —
  // the event must be (re)armed so the timer never fires late.
  disarm();
  arm(at);
}

void Timer::cancel() {
  deadline_ = kTimeNever;
  if (mode_ == Mode::kExact) disarm();
  // kLazy: the armed event (if any) sees deadline_ == kTimeNever when it
  // runs and disarms itself; a re-schedule before then reuses it.
}

void Timer::arm(Time at) {
  armed_at_ = at;
  auto fire = [this] { on_event(); };
  static_assert(SmallFn::stores_inline<decltype(fire)>(),
                "the timer trampoline must fit SmallFn's inline buffer");
  // kLazy timers tolerate deferred firing by construction, so their armed
  // event rides the timing wheel: O(1) to park, and the far-future RTO
  // majority stays out of the heap entirely. kExact timers keep the
  // classic heap insert.
  id_ = mode_ == Mode::kLazy ? sim_.schedule_soft_at(at, std::move(fire))
                             : sim_.schedule_at(at, std::move(fire));
}

void Timer::disarm() {
  if (id_ != kInvalidEventId) {
    sim_.cancel(id_);
    id_ = kInvalidEventId;
    armed_at_ = kTimeNever;
  }
}

void Timer::on_event() {
  id_ = kInvalidEventId;
  armed_at_ = kTimeNever;
  if (deadline_ == kTimeNever) return;  // lazily cancelled: quiet no-op
  if (deadline_ > sim_.now()) {
    // The deadline moved forward while we were armed (kLazy soft moves
    // accumulate here): chase it. One hop suffices no matter how many
    // schedule() calls happened — we jump straight to the latest value.
    arm(deadline_);
    return;
  }
  deadline_ = kTimeNever;
  on_fire_();
}

}  // namespace burst
