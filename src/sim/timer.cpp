#include "src/sim/timer.hpp"

namespace burst {

void Timer::schedule(Time delay) {
  cancel();
  expiry_ = sim_.now() + delay;
  id_ = sim_.schedule(delay, [this] {
    id_ = kInvalidEventId;
    on_fire_();
  });
}

void Timer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_.cancel(id_);
    id_ = kInvalidEventId;
  }
}

}  // namespace burst
