// Lightweight tracing: named (time, value) streams that experiments can
// sample (e.g. per-flow congestion windows) and later dump or analyze.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.hpp"

namespace burst {

/// One sampled series, e.g. the congestion window of flow 7.
class TraceSeries {
 public:
  explicit TraceSeries(std::string name) : name_(std::move(name)) {}

  void record(Time t, double value) { points_.emplace_back(t, value); }

  const std::string& name() const { return name_; }
  const std::vector<std::pair<Time, double>>& points() const {
    return points_;
  }
  bool empty() const { return points_.empty(); }

  /// Last value at or before @p t, or @p fallback if none.
  double value_at(Time t, double fallback = 0.0) const;

  /// Downsamples to at most @p max_points by keeping every k-th sample
  /// (always keeps the final sample). Used when printing long cwnd traces.
  std::vector<std::pair<Time, double>> downsample(std::size_t max_points) const;

 private:
  std::string name_;
  std::vector<std::pair<Time, double>> points_;
};

}  // namespace burst
