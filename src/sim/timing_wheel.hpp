// Hierarchical timing wheel (Varghese & Lauck): the Scheduler's second
// backend, holding the soft-deadline timer class — the kLazy RTO and
// delayed-ACK timers that dominate *pending* events at large N but are a
// vanishing fraction of *executed* events.
//
// Why a second structure at all: the indexed 4-ary heap pays O(log n) per
// insert/cancel where n is the total pending count. A mean-field run
// (10^5–10^6 flows) keeps one RTO timer per flow permanently armed, so n
// is flow-count-sized even though the near-term event horizon — the
// packets and timers actually about to fire — stays small. The wheel
// stores the far-future majority in O(1) buckets and feeds the heap only
// the events whose turn is near, so heap depth tracks the horizon, not
// the flow count (DESIGN.md §11; crossover measured in EXPERIMENTS.md).
//
// Structure: kLevels levels of 64 slots each; a level-i slot spans
// 64^i base ticks (tick = floor(at / granularity)). An entry lands on the
// lowest level whose 64-slot window, anchored at the cursor, reaches its
// tick; entries beyond the top level wait in an overflow ("far") list.
// One occupancy bitmap per level makes "next non-empty bucket" a ctz, so
// advancing across long empty gaps never walks slots one by one.
//
// Ordering contract (what makes the two-tier scheduler bit-identical):
// the wheel never fires anything itself. pop_earliest() always surrenders
// the bucket with the smallest base tick — cascading coarse buckets down
// level by level — until a level-0 bucket (a single tick) is due, and
// hands its entries, full (at, tie_time, seq) keys attached, to the
// caller to merge into the heap. Because tick = floor(at/granularity) is
// monotone in `at`, an entry still in the wheel can never sort before one
// the wheel has already surrendered; exact (at, tie_time, seq) order —
// including cross-structure ties — is restored by the heap. min_at_bound()
// gives the caller a conservative lower bound on every resident's `at`,
// so the heap can keep popping without touching the wheel until a wheel
// entry could actually be next.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/time.hpp"

namespace burst {

class TimingWheel {
 public:
  /// Sentinel node index meaning "none".
  static constexpr std::uint32_t kNil = 0xffffffffu;

  static constexpr int kLevels = 5;
  static constexpr std::uint32_t kSlotsPerLevel = 64;

  /// A resident event: the scheduler's full sort key plus the owning
  /// callback slot, carried verbatim so the heap can merge flushed
  /// entries into exact global order.
  struct Entry {
    Time at;
    Time tie_time;
    std::uint64_t seq;
    std::uint32_t sched_slot;
  };

  /// @p granularity is the level-0 tick width in seconds. The default
  /// (256 µs) keeps ms-scale delayed-ACK deadlines multiple ticks out
  /// while spanning ~4.5 simulated months before the far list engages
  /// (64^5 ticks).
  explicit TimingWheel(Time granularity = 256e-6);

  /// True if @p at is far enough out to bucket (strictly after the
  /// cursor tick). The caller routes non-accepted events to the heap —
  /// they are due within the current tick, where bucketing buys nothing.
  bool accepts(Time at) const { return tick_of(at) > cursor_; }

  /// Inserts an entry (precondition: accepts(entry.at)). Returns a node
  /// handle for remove(). O(1).
  std::uint32_t insert(const Entry& entry);

  /// Unlinks and frees a resident node (true cancel). O(1).
  void remove(std::uint32_t node);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Conservative lower bound on the `at` of every resident entry, or
  /// kTimeNever when empty. May be stale-low after removals (a removed
  /// minimum is not rediscovered), which can only make the caller flush
  /// a bucket early — never pop the heap past a resident entry.
  Time min_at_bound() const;

  /// Appends the entries of the earliest-tick bucket to @p out,
  /// cascading coarser buckets down levels as needed, and advances the
  /// cursor to that tick. Precondition: !empty(); postcondition: at
  /// least one entry appended. Amortized O(1) per entry over its
  /// lifetime (each node cascades at most kLevels times).
  void pop_earliest(std::vector<Entry>& out);

  /// Total entries ever cascaded one level down (diagnostics).
  std::uint64_t cascades() const { return cascades_; }

 private:
  struct Node {
    Entry entry;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t bucket = 0;  // level * kSlotsPerLevel + slot, or kFarBucket
  };
  static constexpr std::uint32_t kFarBucket = 0xffffffffu;
  /// Ticks at or above this are clamped far-future (guards the
  /// double->uint64 cast against kTimeNever/overflow).
  static constexpr double kMaxTick = 9.0e18;

  std::uint64_t tick_of(Time at) const {
    const double t = at * inv_granularity_;
    if (!(t < kMaxTick)) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(t);
  }

  /// Level whose cursor-anchored window holds @p tick, or kLevels if
  /// only the far list can (a level-i slot index is tick >> 6i; the
  /// window reaches 64 slot indices from the cursor's).
  int level_for(std::uint64_t tick) const;

  /// Links @p node into the bucket for @p tick at @p level (or the far
  /// list for level == kLevels).
  void link(std::uint32_t node, std::uint64_t tick, int level);
  void unlink(std::uint32_t node);

  /// Moves every far-list node back through link(); called when all
  /// levels are empty, after advancing the cursor to the far minimum.
  void refill_from_far();

  std::uint32_t alloc_node(const Entry& entry);

  Time granularity_;
  double inv_granularity_;
  std::uint64_t cursor_ = 0;  // last surrendered (or start) tick
  std::size_t size_ = 0;
  std::uint64_t cascades_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;

  // Per-level occupancy bitmap (bit = slot), bucket list heads, and a
  // conservative per-bucket minimum `at` (maintained on insert/link,
  // reset when a bucket empties; removals may leave it stale-low).
  std::uint64_t occupied_[kLevels] = {};
  std::uint32_t head_[kLevels * kSlotsPerLevel];
  Time bucket_min_[kLevels * kSlotsPerLevel];

  std::uint32_t far_head_ = kNil;
  Time far_min_ = kTimeNever;
  std::size_t far_size_ = 0;
};

}  // namespace burst
