// Simulation time types.
//
// Simulated time is a double in seconds, as in ns-2. All arithmetic on
// simulated time happens through the helpers here so units stay explicit.
#pragma once

#include <limits>

namespace burst {

/// Simulated time, in seconds since the start of the simulation.
using Time = double;

/// A sentinel meaning "never" / "unscheduled".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::infinity();

/// Converts milliseconds to simulated seconds.
constexpr Time ms(double v) { return v * 1e-3; }

/// Converts microseconds to simulated seconds.
constexpr Time us(double v) { return v * 1e-6; }

/// Serialization delay of @p bytes on a link of @p bits_per_sec.
constexpr Time transmission_time(int bytes, double bits_per_sec) {
  return static_cast<double>(bytes) * 8.0 / bits_per_sec;
}

}  // namespace burst
