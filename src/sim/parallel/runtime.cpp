#include "src/sim/parallel/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace burst {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ParallelRuntime::ParallelRuntime(int shards, Time lookahead,
                                 std::uint64_t seed)
    : lookahead_(lookahead),
      stats_(static_cast<std::size_t>(shards)),
      lower_bounds_(static_cast<std::size_t>(shards), kTimeNever),
      barrier_(shards),
      staged_(static_cast<std::size_t>(shards)) {
  assert(shards >= 2 && "one LP is just the sequential engine");
  assert(lookahead_ > 0.0 && "conservative windows need positive lookahead");
  lps_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    lps_.push_back(std::make_unique<Lp>(seed));
  }
}

ParallelRuntime::~ParallelRuntime() = default;

void ParallelRuntime::register_cut_link(SimplexLink* link, int from_lp,
                                        int to_lp) {
  assert(from_lp != to_lp && "a cut link must cross LPs");
  SpscChannel* chan = nullptr;
  for (const auto& c : channels_) {
    if (c->from_lp() == from_lp && c->to_lp() == to_lp) {
      chan = c.get();
      break;
    }
  }
  if (chan == nullptr) {
    channels_.push_back(std::make_unique<SpscChannel>(
        static_cast<int>(channels_.size()), from_lp, to_lp));
    chan = channels_.back().get();
    lps_[static_cast<std::size_t>(to_lp)]->in.push_back(chan);
    lps_[static_cast<std::size_t>(from_lp)]->out.push_back(chan);
  }
  link->set_remote_egress(chan);
}

std::size_t ParallelRuntime::merge_inbound(int id) {
  Lp& lp = *lps_[static_cast<std::size_t>(id)];
  std::vector<Staged>& staged = staged_[static_cast<std::size_t>(id)];
  staged.clear();
  for (SpscChannel* chan : lp.in) {
    const int cid = chan->id();
    chan->drain([&staged, cid](const RemoteEvent& e) {
      staged.push_back(Staged{e, cid});
    });
  }
  if (staged.empty()) return 0;
  // Canonical merge order: the scheduler key, then the producer-side
  // causality stamps that reproduce the sequential engine's same-instant
  // FIFO order across producer LPs (see RemoteKey in link.hpp), then the
  // channel id, then the producer's execution order. Insertion below
  // assigns local FIFO sequence numbers in exactly this order, so the
  // local heap state is a pure function of the message keys.
  std::sort(staged.begin(), staged.end(),
            [](const Staged& a, const Staged& b) {
              const RemoteKey& ka = a.e.key;
              const RemoteKey& kb = b.e.key;
              if (ka.at != kb.at) return ka.at < kb.at;
              if (ka.tie_time != kb.tie_time) {
                return ka.tie_time < kb.tie_time;
              }
              // Sequentially, colliding deliveries order by the FIFO rank
              // reserved at transmission start: an earlier start reserved
              // earlier; same-instant starts order by their parent
              // events' tie-break instants (cause).
              if (ka.tx_start != kb.tx_start) {
                return ka.tx_start < kb.tx_start;
              }
              if (ka.cause != kb.cause) return ka.cause < kb.cause;
              if (ka.chain_start != kb.chain_start) {
                // Phase-locked burst chains (equal parent ties, both
                // drains): rank inherits from the younger chain's genesis
                // instant, where its parent (tie chain_cause) raced the
                // older chain's drain (tie = chain_start minus one tx
                // time). tie_time - tx_start is that tx time, identical
                // for both within this equivalence class, so the test is
                // the same against every older chain — which is what
                // keeps this branch a strict weak ordering.
                const bool a_young = ka.chain_start > kb.chain_start;
                const RemoteKey& young = a_young ? ka : kb;
                const Time tx = ka.tie_time - ka.tx_start;
                const Time lhs = young.chain_cause + tx;
                if (lhs != young.chain_start) {
                  return a_young == (lhs < young.chain_start);
                }
                return !a_young;  // coincident ties: older rank first
              }
              if (ka.chain_cause != kb.chain_cause) {
                return ka.chain_cause < kb.chain_cause;
              }
              if (a.chan != b.chan) return a.chan < b.chan;
              return a.e.seq < b.e.seq;
            });
  LpStats& st = stats_[static_cast<std::size_t>(id)];
  st.msgs_in += staged.size();
  st.merge_high_water = std::max(st.merge_high_water,
                                 static_cast<std::uint64_t>(staged.size()));
  Simulator* sim = &lp.sim;
  PacketSlab* slab = &lp.slab;
  for (const Staged& s : staged) {
    const PacketSlab::Handle h = slab->put(s.e.pkt);
    SimplexLink* link = s.e.link;
    auto deliver = [link, slab, h, sim] {
      link->deliver_remote(slab->take(h), sim->now());
    };
    static_assert(SmallFn::stores_inline<decltype(deliver)>(),
                  "the remote-delivery closure must fit SmallFn's inline "
                  "buffer (park the packet in the LP's slab, not captures)");
    sim->schedule_at_as_of(s.e.key.at, s.e.key.tie_time, std::move(deliver));
  }
  return staged.size();
}

void ParallelRuntime::lp_main(int id, Time until) {
  Lp& lp = *lps_[static_cast<std::size_t>(id)];
  LpStats& st = stats_[static_cast<std::size_t>(id)];
  std::vector<LpWindowSample>* log =
      log_windows_ ? &window_log_[static_cast<std::size_t>(id)] : nullptr;
  Time prev_gmin = kTimeNever;
  for (;;) {
    const double w0 = now_s();
    lower_bounds_[static_cast<std::size_t>(id)] = lp.sim.next_event_time();
    const double pub_wait = barrier_.arrive_and_wait();  // publish barrier
    st.wait_s += pub_wait;
    Time gmin = kTimeNever;
    for (const Time lb : lower_bounds_) gmin = std::min(gmin, lb);
    // Horizon reached (or every LP drained): exit together — every LP
    // computes the same gmin, so nobody is left behind at a barrier.
    if (gmin > until) break;
    if (prev_gmin != kTimeNever) st.horizon_advance += gmin - prev_gmin;
    prev_gmin = gmin;
    const Time safe = gmin + lookahead_;
    const double t0 = now_s();
    lp.sim.run_window(safe, until);
    const double run_dur = now_s() - t0;
    st.run_s += run_dur;
    const double flush_wait = barrier_.arrive_and_wait();  // flush barrier
    st.wait_s += flush_wait;
    const double t1 = now_s();
    const std::size_t staged = merge_inbound(id);
    const double merge_dur = now_s() - t1;
    st.run_s += merge_dur;
    ++st.windows;
    if (log != nullptr) {
      LpWindowSample s;
      s.gmin = gmin;
      s.t0_s = w0 - run_epoch_s_;
      s.pub_wait_s = pub_wait;
      s.run_s = run_dur;
      s.flush_wait_s = flush_wait;
      s.merge_s = merge_dur;
      s.events = lp.sim.events_run();
      s.staged = static_cast<std::uint32_t>(staged);
      log->push_back(s);
    }
  }
  lp.sim.finish_at(until);
  st.events = lp.sim.events_run();
  st.peak_pending = lp.sim.scheduler().peak_pending();
  st.scheduled = lp.sim.scheduler().scheduled_count();
  for (const SpscChannel* chan : lp.out) {
    st.msgs_out += chan->posted();
    st.chan_overflows += chan->overflowed();
    st.chan_high_water = std::max(st.chan_high_water,
                                  chan->ring_high_water());
  }
}

void ParallelRuntime::run(Time until) {
  assert(until != kTimeNever && "parallel runs need a finite horizon");
  run_epoch_s_ = now_s();
  if (log_windows_) window_log_.resize(lps_.size());
  std::vector<std::thread> workers;
  workers.reserve(lps_.size() - 1);
  for (int i = 1; i < shards(); ++i) {
    workers.emplace_back([this, i, until] { lp_main(i, until); });
  }
  lp_main(0, until);
  for (std::thread& w : workers) w.join();
}

std::uint64_t ParallelRuntime::total_events() const {
  std::uint64_t total = 0;
  for (const LpStats& s : stats_) total += s.events;
  return total;
}

std::uint64_t ParallelRuntime::total_scheduled() const {
  std::uint64_t total = 0;
  for (const LpStats& s : stats_) total += s.scheduled;
  return total;
}

std::uint64_t ParallelRuntime::max_peak_pending() const {
  std::uint64_t peak = 0;
  for (const LpStats& s : stats_) peak = std::max(peak, s.peak_pending);
  return peak;
}

}  // namespace burst
