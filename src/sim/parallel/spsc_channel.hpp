// Cross-LP packet channel: a bounded single-producer/single-consumer ring
// with a barrier-synchronized overflow lane.
//
// One channel carries every cut link between an ordered pair of LPs, so
// the channel count is O(LP pairs), not O(cut links) — a sharded dumbbell
// has 10^5 cut links but only a handful of LP pairs. Each posted handoff
// is stamped with the full RemoteKey (scheduler sort key plus the
// producer-side causality stamps — see link.hpp) and a per-channel
// sequence number assigned in the producer's (deterministic,
// single-threaded) execution order. The consumer merges messages from all
// of its inbound channels in (RemoteKey, channel id, seq) order, which
// makes the merged insertion order a pure function of the keys: no thread
// timing, no ring-vs-overflow placement, no arrival interleaving can
// change it. That is the whole deterministic-merge argument — see
// DESIGN.md §13.
//
// Concurrency contract (enforced by the window protocol in runtime.cpp):
//   * post() is called only by the producer LP's thread, inside its event
//     window (between the two barriers).
//   * drain() is called only by the consumer LP's thread, in the merge
//     phase — after the flush barrier, before the next publish barrier.
//   * The ring's atomics order the fast path; the overflow vector and the
//     sequence counter are single-side-at-a-time by the above phasing,
//     with the barrier's lock providing the happens-before edge.
//
// The ring is deliberately NOT a blocking queue: a producer that fills it
// while the consumer is parked at a barrier must never spin or wait (that
// is a deadlock on one core and wasted wall time on many), so excess
// messages simply spill to the overflow vector until the merge phase.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/net/link.hpp"
#include "src/net/packet.hpp"
#include "src/sim/time.hpp"

namespace burst {

/// One cross-LP packet handoff, carrying the exact scheduler key (and
/// causality stamps) the delivery event would have had if the link's
/// endpoints shared an LP. See RemoteKey in link.hpp.
struct RemoteEvent {
  RemoteKey key{};
  std::uint64_t seq = 0;  // producer execution order within the channel
  SimplexLink* link = nullptr;
  Packet pkt;
};

class SpscChannel final : public LinkRemoteEgress {
 public:
  /// @p id is the channel's global creation index — the deterministic
  /// tie-break between messages from different producers that carry an
  /// exactly equal (at, tie_time).
  SpscChannel(int id, int from_lp, int to_lp)
      : id_(id), from_lp_(from_lp), to_lp_(to_lp) {
    ring_.resize(kCapacity);
  }

  int id() const { return id_; }
  int from_lp() const { return from_lp_; }
  int to_lp() const { return to_lp_; }

  /// Total messages ever posted (producer-side; read in the merge phase
  /// and after the run for the per-LP profile table).
  std::uint64_t posted() const { return posted_; }

  /// Messages that took the overflow lane because the ring was full
  /// (producer-side). Timing-dependent — the count varies with how fast
  /// the consumer drains — so it feeds the profile table only, never the
  /// deterministic MetricsRegistry.
  std::uint64_t overflowed() const { return overflowed_; }

  /// Producer-side high-water mark of ring occupancy observed at post().
  std::uint64_t ring_high_water() const { return ring_high_water_; }

  /// Producer-side: true when the next post() would take the overflow
  /// lane. The LP runtime never needs this (it must not block); tests of
  /// the lock-free path use it to stay within the ring.
  bool ring_full() const {
    return tail_.load(std::memory_order_relaxed) -
               head_.load(std::memory_order_acquire) >=
           kCapacity;
  }

  /// Producer side (the cut link's owning LP, mid-window).
  void post(SimplexLink& link, const RemoteKey& key,
            const Packet& p) override {
    RemoteEvent e;
    e.key = key;
    e.seq = next_seq_++;
    e.link = &link;
    e.pkt = p;
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t occupied = t - head_.load(std::memory_order_acquire);
    if (occupied < kCapacity) {
      ring_[t & kMask] = e;
      tail_.store(t + 1, std::memory_order_release);
      ring_high_water_ = std::max(ring_high_water_, occupied + 1);
    } else {
      overflow_.push_back(e);
      ++overflowed_;
    }
    ++posted_;
  }

  /// Consumer side (merge phase only). Invokes @p fn on every pending
  /// message; order within the channel is ring-then-overflow, which the
  /// caller's key sort canonicalizes anyway.
  template <typename Fn>
  void drain(Fn&& fn) {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    for (; h != t; ++h) fn(ring_[h & kMask]);
    head_.store(h, std::memory_order_release);
    for (const RemoteEvent& e : overflow_) fn(e);
    overflow_.clear();
  }

  /// Ring capacity (messages); the lock-free fast path's bound. A window
  /// that produces more than this simply spills to the overflow lane.
  static constexpr std::uint64_t kCapacity = 1024;

 private:
  static constexpr std::uint64_t kMask = kCapacity - 1;
  static_assert((kCapacity & kMask) == 0, "ring capacity must be 2^k");

  const int id_;
  const int from_lp_;
  const int to_lp_;
  std::vector<RemoteEvent> ring_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  // Producer-written, consumer-cleared; never touched concurrently (the
  // window barriers separate the phases).
  std::vector<RemoteEvent> overflow_;
  std::uint64_t next_seq_ = 0;         // producer-only
  std::uint64_t posted_ = 0;           // producer-only
  std::uint64_t overflowed_ = 0;       // producer-only
  std::uint64_t ring_high_water_ = 0;  // producer-only
};

}  // namespace burst
