// Conservative parallel DES runtime: one Simulator per logical process,
// synchronized by a YAWNS-style window barrier (DESIGN.md §13).
//
// Window protocol (every LP thread runs this loop in lockstep):
//
//   1. publish  lb[i] = my earliest pending event time
//      -- barrier --
//   2. gmin = min over all lb; if gmin > horizon, stop.
//      safe = gmin + lookahead            (lookahead = min cut-link prop)
//   3. run local events with time < safe (and <= horizon)
//      -- barrier --
//   4. drain my inbound channels, sort the messages by
//      (at, tie_time, channel, seq), insert them as local events
//
// Safety: every cross-LP message a window generates carries
// deliver_at = (dequeue + tx) + prop >= gmin + prop >= gmin + lookahead
// = safe (IEEE addition is monotone, so the inequality survives floating
// point), and step 3 runs strictly BELOW safe — so no LP can ever receive
// a message in its past. Progress: the event at gmin itself satisfies
// gmin < safe, so at least one LP advances every window; simulated time
// advances by at least `lookahead` per busy window, bounding the barrier
// count by duration / lookahead (hundreds, for the 20 ms dumbbell cuts).
//
// Determinism: all three inputs to the merge order — the window edges
// (pure function of event timestamps), the per-channel sequence numbers
// (producer execution order, single-threaded), and the channel ids
// (construction order) — are independent of thread scheduling, so a
// given (scenario, shard count) replays bit-identically. shards == 1
// never constructs this class at all: the sequential engine is untouched.
//
// RNG fork discipline per LP: every LP's Simulator owns a Random seeded
// with the scenario seed, but ONLY LP 0's is drawn from — the topology
// builder forks all per-component streams (queue disciplines, Poisson
// sources) from build_rng() in the same global declaration order the
// sequential build uses, so every component receives a value-identical
// stream regardless of which LP hosts it. The other LPs' generators stay
// untouched so seeds remain value-keyed: nothing about thread placement
// ever feeds a random stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/link.hpp"
#include "src/net/packet_slab.hpp"
#include "src/sim/parallel/barrier.hpp"
#include "src/sim/parallel/spsc_channel.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

/// Per-LP execution profile, for the --profile phase table: a large
/// wait_s/run_s ratio on one LP means its neighbours starve it of
/// lookahead (or it simply owns too little of the event load).
struct LpStats {
  std::uint64_t events = 0;        // events this LP executed
  std::uint64_t windows = 0;       // synchronization windows
  std::uint64_t msgs_in = 0;       // cross-LP packets merged in
  std::uint64_t msgs_out = 0;      // cross-LP packets posted
  std::uint64_t peak_pending = 0;  // local scheduler high-water mark
  std::uint64_t scheduled = 0;     // local events ever scheduled
  /// Most messages staged in one merge phase (inbound high-water mark).
  /// Deterministic: the window edges and message counts are pure
  /// functions of event timestamps.
  std::uint64_t merge_high_water = 0;
  /// Cross-LP posts that spilled to a channel's overflow lane, and the
  /// outbound ring high-water mark. Timing-dependent (they depend on how
  /// fast the consumer drains), so profile-table only — never metrics.
  std::uint64_t chan_overflows = 0;
  std::uint64_t chan_high_water = 0;
  /// Sum of gmin increments over busy windows: horizon_advance / windows
  /// is the mean safe-horizon advance per window (deterministic).
  Time horizon_advance = 0.0;
  double run_s = 0.0;              // wall seconds processing events
  double wait_s = 0.0;             // wall seconds blocked at barriers
};

/// One synchronization window as one LP saw it, for the runtime timeline
/// export (--trace-out writes these as a Perfetto track per LP). Wall
/// offsets are relative to ParallelRuntime::run() entry.
struct LpWindowSample {
  Time gmin = 0.0;          // the window's global lower bound
  double t0_s = 0.0;        // wall offset when the publish wait began
  double pub_wait_s = 0.0;  // blocked at the publish barrier
  double run_s = 0.0;       // executing events below the safe horizon
  double flush_wait_s = 0.0;  // blocked at the flush barrier
  double merge_s = 0.0;       // draining + inserting inbound messages
  std::uint64_t events = 0;   // cumulative events after this window
  std::uint32_t staged = 0;   // messages merged in this window
};

class ParallelRuntime {
 public:
  /// @p shards >= 2 LPs, each with a Simulator seeded @p seed; @p
  /// lookahead must be the minimum propagation delay over all cut links
  /// (see make_lp_partition).
  ParallelRuntime(int shards, Time lookahead, std::uint64_t seed);
  ParallelRuntime(const ParallelRuntime&) = delete;
  ParallelRuntime& operator=(const ParallelRuntime&) = delete;
  ~ParallelRuntime();

  int shards() const { return static_cast<int>(lps_.size()); }
  Time lookahead() const { return lookahead_; }

  Simulator& sim(int lp) { return lps_[static_cast<std::size_t>(lp)]->sim; }

  /// The generator every build-time fork must come from (LP 0's), so the
  /// fork order — and with it every component's stream — matches the
  /// sequential build exactly.
  Random& build_rng() { return sim(0).rng(); }

  /// Wires @p link as a cut edge from @p from_lp to @p to_lp. Build-time
  /// (single-threaded) only; channels are created per ordered LP pair in
  /// first-registration order.
  void register_cut_link(SimplexLink* link, int from_lp, int to_lp);

  /// Runs all LPs to the horizon (inclusive, like Simulator::run). The
  /// calling thread drives LP 0; shards-1 worker threads are spawned for
  /// the rest and joined before returning. Call at most once.
  void run(Time until);

  const std::vector<LpStats>& stats() const { return stats_; }
  std::uint64_t total_events() const;
  std::uint64_t total_scheduled() const;
  std::uint64_t max_peak_pending() const;

  /// Opt-in per-window timeline (one LpWindowSample per window per LP).
  /// Costs a few stores per window, so it is off unless a run wants the
  /// runtime Perfetto track. Call before run().
  void enable_window_log() { log_windows_ = true; }
  const std::vector<std::vector<LpWindowSample>>& window_log() const {
    return window_log_;
  }

 private:
  struct Lp {
    explicit Lp(std::uint64_t seed) : sim(seed) {}
    Simulator sim;
    PacketSlab slab;                 // storage for merged-in packets
    std::vector<SpscChannel*> in;    // inbound channels (consumer side)
    std::vector<SpscChannel*> out;   // outbound channels (stats only)
  };
  /// One drained message plus its channel id — the full merge sort key.
  struct Staged {
    RemoteEvent e;
    int chan;
  };

  void lp_main(int id, Time until);
  /// Returns the number of messages staged (merged in) this window.
  std::size_t merge_inbound(int id);

  const Time lookahead_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<std::unique_ptr<SpscChannel>> channels_;
  std::vector<LpStats> stats_;
  /// Published lower bounds, one slot per LP. Written by the owner before
  /// the publish barrier, read by everyone after it; the barrier provides
  /// the happens-before edges, so plain Time is race-free here.
  std::vector<Time> lower_bounds_;
  PhaseBarrier barrier_;
  std::vector<std::vector<Staged>> staged_;  // per-LP merge scratch
  bool log_windows_ = false;
  double run_epoch_s_ = 0.0;  // wall clock at run() entry (window offsets)
  std::vector<std::vector<LpWindowSample>> window_log_;  // per LP
};

}  // namespace burst
