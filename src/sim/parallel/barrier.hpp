// A reusable generation barrier for the LP window protocol.
//
// std::barrier exists in C++20, but the LP runtime wants two properties
// the standard one does not give us together: (a) a measured wait — the
// per-LP profile table reports barrier time separately from event
// processing, so arrive_and_wait() returns the seconds this thread spent
// blocked — and (b) a plain mutex/condvar implementation whose
// happens-before edges ThreadSanitizer reasons about exactly. The
// runtime's channels exploit (b): overflow vectors and per-channel
// sequence counters are accessed by one side at a time, with ownership
// handed across at barrier crossings, so the barrier's lock is the only
// synchronization they need.
//
// Window counts are small (one window per lookahead interval of simulated
// time — hundreds per run, not millions), so a blocking barrier costs
// nothing measurable; there is deliberately no spin phase to burn a core
// that a neighbour LP could be using.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace burst {

class PhaseBarrier {
 public:
  explicit PhaseBarrier(int parties) : parties_(parties) {}
  PhaseBarrier(const PhaseBarrier&) = delete;
  PhaseBarrier& operator=(const PhaseBarrier&) = delete;

  /// Blocks until all parties have arrived; returns the wall seconds this
  /// thread spent waiting (0 for the last arriver, who releases the rest).
  double arrive_and_wait() {
    std::unique_lock<std::mutex> lk(mu_);
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return 0.0;
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t gen = generation_;
    cv_.wait(lk, [&] { return generation_ != gen; });
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }

  int parties() const { return parties_; }

 private:
  const int parties_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace burst
