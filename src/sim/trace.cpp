#include "src/sim/trace.hpp"

#include <algorithm>

namespace burst {

double TraceSeries::value_at(Time t, double fallback) const {
  // points_ is time-ordered by construction (record() is called with a
  // monotonically non-decreasing clock).
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const std::pair<Time, double>& rhs) { return lhs < rhs.first; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->second;
}

std::vector<std::pair<Time, double>> TraceSeries::downsample(
    std::size_t max_points) const {
  std::vector<std::pair<Time, double>> out;
  if (points_.empty() || max_points == 0) return out;
  const std::size_t stride = std::max<std::size_t>(1, points_.size() / max_points);
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    out.push_back(points_[i]);
  }
  if (out.back() != points_.back()) out.push_back(points_.back());
  return out;
}

}  // namespace burst
