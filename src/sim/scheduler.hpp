// Event scheduler: a binary heap of (time, sequence) ordered events.
//
// Two events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break), which keeps runs bit-for-bit deterministic.
// Cancellation is lazy: cancelled ids are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.hpp"

namespace burst {

/// Opaque handle identifying a scheduled event; usable for cancellation.
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules @p fn to run at absolute time @p at. Returns a handle that
  /// can be passed to cancel().
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired, already-
  /// cancelled, or invalid id is a harmless no-op.
  void cancel(EventId id);

  /// True iff the given event is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return pending_.contains(id); }

  /// True if no runnable (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  /// Number of runnable events currently pending.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest runnable event, or kTimeNever if none.
  Time next_time();

  /// A popped event, ready to invoke. The caller advances its clock to
  /// `at` *before* invoking `fn`, so callbacks observe the correct time.
  struct Ready {
    Time at;
    std::function<void()> fn;
  };

  /// Pops the earliest runnable event without invoking it.
  /// Precondition: !empty().
  Ready take_next();

  /// Total events ever scheduled (for diagnostics / benchmarks).
  std::uint64_t scheduled_count() const { return next_seq_ - 1; }

 private:
  struct Item {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal-time events
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_seq_ = 1;
};

}  // namespace burst
