// Event scheduler: an indexed 4-ary min-heap of (time, tie-time, sequence)
// ordered events with generation-tagged handles.
//
// Two events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a monotone sequence number), which keeps
// runs bit-for-bit deterministic. A caller that *fuses* several logical
// events into one insert (see SimplexLink) can pass an explicit tie-break
// time: events with the same `at` order by (tie_time, seq), so a fused
// event inserted early can still claim the heap position its unfused
// ancestor would have had. Since seq is monotone in insertion (and hence
// in simulated time), tie_time == insertion time reproduces plain FIFO
// exactly — which is what Simulator passes by default. The heap stores
// slot indices and every slot knows its heap position, so:
//
//  * pending() is an O(1) generation check (no shadow hash set),
//  * cancel() is a true O(log n) removal that frees the callback
//    immediately (no tombstones to skip at pop time),
//  * callbacks live in SmallFn's inline buffer, so the common
//    timer/packet-arrival event never heap-allocates.
//
// The 4-ary layout halves the tree depth of a binary heap; sort keys and
// slot indices live in separate parallel arrays so the child scan reads
// nothing but contiguous 24-byte keys, and the root is removed with
// Floyd's bottom-up deletion (sift the hole to a leaf, then sift the
// displaced last element up). Measurably faster than the old
// std::priority_queue<Item> (which sifted 80-byte items holding
// std::functions) for the schedule/pop mix that dominates runs (see
// bench/sched_events and bench/packet_path).
//
// Two-tier storage (DESIGN.md §11): exact-order packet events live on
// the heap; the *soft-deadline* timer class — schedule_soft_at(), used by
// Timer::Mode::kLazy for RTO/delayed-ACK deadlines — is parked in a
// hierarchical timing wheel when far enough out, and flushed into the
// heap (full sort key attached) before any pop that could reach it.
// Every pop still leaves the heap, in exact (at, tie_time, seq) order,
// so runs are bit-identical whichever structure held an event; what
// changes is cost: heap depth tracks the near-term horizon instead of
// the total armed-timer count, which is what keeps 10^5–10^6 pending
// RTO timers from turning every packet event into a deep sift.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/small_fn.hpp"
#include "src/sim/time.hpp"
#include "src/sim/timing_wheel.hpp"

namespace burst {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Encodes (slot generation << 32 | slot index + 1); a handle is valid
/// until its event fires or is cancelled, after which the slot's bumped
/// generation retires it. (A stale handle could only alias after the same
/// slot is reused 2^32 times while the handle is still held.)
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules @p fn to run at absolute time @p at. Returns a handle that
  /// can be passed to cancel(). Among events with equal @p at, order is
  /// (tie_time, insertion order); pass the simulated insertion instant as
  /// @p tie_time (Simulator does) for plain FIFO, or an explicit virtual
  /// instant to splice a fused event into the order an unfused event
  /// inserted at that instant would have had.
  EventId schedule_at(Time at, SmallFn fn, Time tie_time = 0.0);

  /// Reserves the FIFO position the next schedule_at call would receive,
  /// without inserting anything. A fused caller burns one of these at the
  /// instant its unfused ancestor *would* have scheduled (SimplexLink does
  /// at every transmission start) and redeems it later via
  /// schedule_at_reserved() — the event then sorts exactly where the
  /// ancestor's would have, even though it was inserted later.
  std::uint64_t reserve_order() { return next_seq_++; }

  /// Schedules @p fn at @p at with an explicit (tie_time, order) rank from
  /// reserve_order(). Events with equal @p at order by (tie_time, order).
  EventId schedule_at_reserved(Time at, Time tie_time, std::uint64_t order,
                               SmallFn fn);

  /// Schedules a *soft-deadline* event: identical observable semantics to
  /// schedule_at() — same FIFO rank consumption, same firing order, full
  /// cancel/pending support — but far-future events are parked in the
  /// timing wheel (O(1)) instead of the heap (O(log n)). For the lazy
  /// RTO/delayed-ACK timers that keep one event armed per flow, this is
  /// what holds heap depth at the near-term horizon when 10^5+ flows are
  /// idle-armed. Events due within the current wheel tick go straight to
  /// the heap.
  EventId schedule_soft_at(Time at, SmallFn fn, Time tie_time = 0.0);

  /// Cancels a pending event, releasing its callback immediately.
  /// Cancelling an already-fired, already-cancelled, or invalid id is a
  /// harmless no-op (counted in stale_cancels() so tests can assert that
  /// well-behaved callers never rely on it).
  void cancel(EventId id);

  /// True iff the given event is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const {
    const std::uint32_t idx = slot_of(id);
    return idx < slots_.size() && slots_[idx].generation == generation_of(id) &&
           slots_[idx].heap_pos != kFreePos;
  }

  /// True if no events remain (heap and wheel).
  bool empty() const { return keys_.empty() && wheel_.empty(); }

  /// Number of events currently pending (heap and wheel).
  std::size_t size() const { return keys_.size() + wheel_.size(); }

  /// Time of the earliest event, or kTimeNever if none. Settles the
  /// wheel first, so the answer is exact across both structures.
  Time next_time() {
    settle();
    return keys_.empty() ? kTimeNever : keys_[0].at;
  }

  /// A popped event, ready to invoke. The caller advances its clock to
  /// `at` *before* invoking `fn`, so callbacks observe the correct time.
  struct Ready {
    Time at;
    SmallFn fn;
  };

  /// Pops the earliest event without invoking it. Precondition: !empty().
  Ready take_next();

  /// The tie-break instant of the most recently popped event (see
  /// schedule_at). Valid after take_next(); Simulator snapshots it as the
  /// executing event's causality stamp for cross-LP handoffs.
  Time popped_tie() const { return popped_tie_; }

  /// Total events ever scheduled (for diagnostics / benchmarks).
  std::uint64_t scheduled_count() const { return scheduled_count_; }

  /// High-water mark of simultaneously pending events (heap + wheel).
  std::uint64_t peak_pending() const { return peak_pending_; }

  /// Cancels issued against already-retired (fired or cancelled) handles.
  /// Always a safe no-op thanks to generation tagging, but a caller that
  /// relies on it is holding stale state; tests pin this to zero for the
  /// traffic sources (see sources_test / scheduler_fuzz_test).
  std::uint64_t stale_cancels() const { return stale_cancels_; }

  /// Events currently parked in the timing wheel (diagnostics).
  std::size_t wheel_size() const { return wheel_.size(); }

 private:
  /// heap_pos is the slot's location tag: kFreePos when free, a heap
  /// index for heap-resident events, or (kWheelBit | wheel node index)
  /// for events parked in the timing wheel.
  struct Slot {
    SmallFn fn;
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kFreePos;
  };
  /// The full (time, tie-time, seq) sort key. Keys live in their own
  /// contiguous array, separate from the slot indices, so the sift-down
  /// child scan — the single hottest loop in a simulation — reads pure
  /// 24-byte keys: a 4-child scan touches 96 bytes instead of the 160 a
  /// combined key+slot entry would.
  struct Key {
    Time at;
    Time tie_time;           // virtual insertion instant (see schedule_at)
    std::uint64_t seq;       // FIFO tie-break among equal-(at, tie_time)
  };
  static constexpr std::uint32_t kFreePos = 0xffffffffu;
  /// High bit of heap_pos marks a wheel resident; the low 31 bits then
  /// hold the TimingWheel node handle. kFreePos also has the high bit
  /// set, so "free" must be checked before "wheel".
  static constexpr std::uint32_t kWheelBit = 0x80000000u;

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(idx) + 1);
  }

  static bool earlier(const Key& a, const Key& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.tie_time != b.tie_time) return a.tie_time < b.tie_time;
    return a.seq < b.seq;
  }

  void place(std::uint32_t pos, const Key& k, std::uint32_t slot) {
    keys_[pos] = k;
    heap_slot_[pos] = slot;
    slots_[slot].heap_pos = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Removes the root: sifts the hole down along the min-child path to a
  /// leaf, then sifts the displaced last element up from there (Floyd's
  /// bottom-up deletion — the last element almost always belongs near the
  /// bottom, so this skips the per-level compare against it that a plain
  /// top-down sift pays).
  void remove_root();
  /// Removes the heap entry at @p pos (the slot itself is freed by the
  /// caller) and restores the heap property.
  void remove_heap_entry(std::uint32_t pos);
  void free_slot(std::uint32_t idx);
  /// Inserts an already-ranked key for @p slot into the heap (shared by
  /// schedule_at_reserved and the wheel flush; does not touch counters).
  void heap_insert(const Key& k, std::uint32_t slot);
  /// Flushes wheel buckets into the heap until the heap top is a safe
  /// global minimum (heap top earlier than every wheel resident's bound).
  void settle();

  std::vector<Slot> slots_;   // stable storage for pending callbacks
  // 4-ary min-heap on (at, tie_time, seq); keys_ and heap_slot_ are
  // parallel arrays (see Key).
  std::vector<Key> keys_;
  std::vector<std::uint32_t> heap_slot_;
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::uint64_t next_seq_ = 1;
  Time popped_tie_ = 0.0;
  std::uint64_t scheduled_count_ = 0;
  std::uint64_t peak_pending_ = 0;
  std::uint64_t stale_cancels_ = 0;

  TimingWheel wheel_;                          // soft-deadline far events
  std::vector<TimingWheel::Entry> flush_buf_;  // settle() scratch
};

}  // namespace burst
