// Event scheduler: an indexed 4-ary min-heap of (time, sequence) ordered
// events with generation-tagged handles.
//
// Two events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-break via a monotone sequence number), which keeps
// runs bit-for-bit deterministic. The heap stores slot indices and every
// slot knows its heap position, so:
//
//  * pending() is an O(1) generation check (no shadow hash set),
//  * cancel() is a true O(log n) removal that frees the callback
//    immediately (no tombstones to skip at pop time),
//  * callbacks live in SmallFn's inline buffer, so the common
//    timer/packet-arrival event never heap-allocates.
//
// The 4-ary layout halves the tree depth of a binary heap and keeps the
// child scan inside one cache line of 4-byte indices — measurably faster
// than both the old std::priority_queue<Item> (which sifted 80-byte items
// holding std::functions) for the schedule/pop mix that dominates runs
// (see bench/sched_events).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/small_fn.hpp"
#include "src/sim/time.hpp"

namespace burst {

/// Opaque handle identifying a scheduled event; usable for cancellation.
/// Encodes (slot generation << 32 | slot index + 1); a handle is valid
/// until its event fires or is cancelled, after which the slot's bumped
/// generation retires it. (A stale handle could only alias after the same
/// slot is reused 2^32 times while the handle is still held.)
using EventId = std::uint64_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules @p fn to run at absolute time @p at. Returns a handle that
  /// can be passed to cancel().
  EventId schedule_at(Time at, SmallFn fn);

  /// Cancels a pending event, releasing its callback immediately.
  /// Cancelling an already-fired, already-cancelled, or invalid id is a
  /// harmless no-op.
  void cancel(EventId id);

  /// True iff the given event is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const {
    const std::uint32_t idx = slot_of(id);
    return idx < slots_.size() && slots_[idx].generation == generation_of(id) &&
           slots_[idx].heap_pos != kFreePos;
  }

  /// True if no events remain.
  bool empty() const { return heap_.empty(); }

  /// Number of events currently pending.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event, or kTimeNever if none.
  Time next_time() const { return heap_.empty() ? kTimeNever : heap_[0].at; }

  /// A popped event, ready to invoke. The caller advances its clock to
  /// `at` *before* invoking `fn`, so callbacks observe the correct time.
  struct Ready {
    Time at;
    SmallFn fn;
  };

  /// Pops the earliest event without invoking it. Precondition: !empty().
  Ready take_next();

  /// Total events ever scheduled (for diagnostics / benchmarks).
  std::uint64_t scheduled_count() const { return scheduled_count_; }

  /// High-water mark of simultaneously pending events.
  std::uint64_t peak_pending() const { return peak_pending_; }

 private:
  struct Slot {
    SmallFn fn;
    std::uint32_t generation = 0;
    std::uint32_t heap_pos = kFreePos;
  };
  /// A heap entry carries the full (time, seq) sort key, so sifting never
  /// dereferences slots_ for comparisons — the child scan stays inside the
  /// contiguous heap array.
  struct Entry {
    Time at;
    std::uint64_t seq;       // FIFO tie-break among equal-time events
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kFreePos = 0xffffffffu;

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(idx) + 1);
  }

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void place(std::uint32_t pos, const Entry& e) {
    heap_[pos] = e;
    slots_[e.slot].heap_pos = pos;
  }
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  /// Removes the heap entry at @p pos (the slot itself is freed by the
  /// caller) and restores the heap property.
  void remove_heap_entry(std::uint32_t pos);
  void free_slot(std::uint32_t idx);

  std::vector<Slot> slots_;   // stable storage for pending callbacks
  std::vector<Entry> heap_;   // 4-ary min-heap keyed on (at, seq)
  std::vector<std::uint32_t> free_;  // recycled slot indices
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_count_ = 0;
  std::uint64_t peak_pending_ = 0;
};

}  // namespace burst
