#include "src/sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace burst {

// 4-ary heap layout: children of pos are 4*pos+1 .. 4*pos+4, parent is
// (pos-1)/4. Entries carry their own (time, seq) key, so a sift touches
// only the contiguous heap array plus one heap_pos write per move; the
// Slot bodies (callbacks) never move.

void Scheduler::sift_up(std::uint32_t pos) {
  const Entry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Scheduler::sift_down(std::uint32_t pos) {
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  const Entry e = heap_[pos];
  while (true) {
    const std::uint32_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < n - 1 ? first_child + 3 : n - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

void Scheduler::remove_heap_entry(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    place(pos, heap_[last]);
    heap_.pop_back();
    // The displaced entry may need to move either direction.
    if (pos > 0 && earlier(heap_[pos], heap_[(pos - 1) / 4])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

void Scheduler::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  ++s.generation;  // retire every outstanding handle to this slot
  s.heap_pos = kFreePos;
  free_.push_back(idx);
}

EventId Scheduler::schedule_at(Time at, SmallFn fn) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  const std::uint32_t pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(Entry{at, next_seq_++, idx});
  s.heap_pos = pos;
  sift_up(pos);
  ++scheduled_count_;
  if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  return make_id(idx, s.generation);
}

void Scheduler::cancel(EventId id) {
  if (!pending(id)) return;
  const std::uint32_t idx = slot_of(id);
  slots_[idx].fn.reset();  // release captures now, not at pop time
  remove_heap_entry(slots_[idx].heap_pos);
  free_slot(idx);
}

Scheduler::Ready Scheduler::take_next() {
  assert(!heap_.empty() && "take_next on empty scheduler");
  const std::uint32_t idx = heap_[0].slot;
  // Move the callback out before touching the heap: the caller invokes it
  // after we return, and it may schedule freely (growing slots_/heap_).
  Ready ready{heap_[0].at, std::move(slots_[idx].fn)};
  remove_heap_entry(0);
  free_slot(idx);
  return ready;
}

}  // namespace burst
