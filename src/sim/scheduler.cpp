#include "src/sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace burst {

// 4-ary heap layout: children of pos are 4*pos+1 .. 4*pos+4, parent is
// (pos-1)/4. The (time, tie-time, seq) keys live in keys_, the owning slot
// index in the parallel heap_slot_ array, so a sift's comparisons touch
// only the contiguous key array plus one heap_pos write per move; the Slot
// bodies (callbacks) never move.

void Scheduler::sift_up(std::uint32_t pos) {
  const Key k = keys_[pos];
  const std::uint32_t slot = heap_slot_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!earlier(k, keys_[parent])) break;
    place(pos, keys_[parent], heap_slot_[parent]);
    pos = parent;
  }
  place(pos, k, slot);
}

void Scheduler::sift_down(std::uint32_t pos) {
  const std::uint32_t n = static_cast<std::uint32_t>(keys_.size());
  const Key k = keys_[pos];
  const std::uint32_t slot = heap_slot_[pos];
  while (true) {
    const std::uint32_t first_child = 4 * pos + 1;
    if (first_child >= n) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < n - 1 ? first_child + 3 : n - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (earlier(keys_[c], keys_[best])) best = c;
    }
    if (!earlier(keys_[best], k)) break;
    place(pos, keys_[best], heap_slot_[best]);
    pos = best;
  }
  place(pos, k, slot);
}

void Scheduler::remove_root() {
  const std::uint32_t n = static_cast<std::uint32_t>(keys_.size());
  if (n == 1) {
    keys_.pop_back();
    heap_slot_.pop_back();
    return;
  }
  // Floyd's bottom-up deletion: walk the hole down the min-child path all
  // the way to a leaf — promoting children without comparing against the
  // displaced element — then drop the last element into the hole and sift
  // it up. The last element came from the deepest layer, so the sift-up
  // nearly always stops immediately; this trades the sift-down's
  // per-level fourth comparison for one or two at the end.
  const std::uint32_t last = n - 1;
  std::uint32_t hole = 0;
  while (true) {
    const std::uint32_t first_child = 4 * hole + 1;
    if (first_child >= last) break;  // the hole reached leaf territory
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        first_child + 3 < last - 1 ? first_child + 3 : last - 1;
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (earlier(keys_[c], keys_[best])) best = c;
    }
    place(hole, keys_[best], heap_slot_[best]);
    hole = best;
  }
  place(hole, keys_[last], heap_slot_[last]);
  keys_.pop_back();
  heap_slot_.pop_back();
  sift_up(hole);
}

void Scheduler::remove_heap_entry(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(keys_.size()) - 1;
  if (pos != last) {
    place(pos, keys_[last], heap_slot_[last]);
    keys_.pop_back();
    heap_slot_.pop_back();
    // The displaced entry may need to move either direction.
    if (pos > 0 && earlier(keys_[pos], keys_[(pos - 1) / 4])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    keys_.pop_back();
    heap_slot_.pop_back();
  }
}

void Scheduler::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  ++s.generation;  // retire every outstanding handle to this slot
  s.heap_pos = kFreePos;
  free_.push_back(idx);
}

EventId Scheduler::schedule_at(Time at, SmallFn fn, Time tie_time) {
  return schedule_at_reserved(at, tie_time, next_seq_++, std::move(fn));
}

void Scheduler::heap_insert(const Key& k, std::uint32_t slot) {
  const std::uint32_t pos = static_cast<std::uint32_t>(keys_.size());
  keys_.push_back(k);
  heap_slot_.push_back(slot);
  slots_[slot].heap_pos = pos;
  sift_up(pos);
}

EventId Scheduler::schedule_at_reserved(Time at, Time tie_time,
                                        std::uint64_t order, SmallFn fn) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  heap_insert(Key{at, tie_time, order}, idx);
  ++scheduled_count_;
  if (size() > peak_pending_) peak_pending_ = size();
  return make_id(idx, s.generation);
}

EventId Scheduler::schedule_soft_at(Time at, SmallFn fn, Time tie_time) {
  // Consume the same FIFO rank a schedule_at at this instant would have:
  // the full (at, tie_time, seq) key rides along through the wheel, so
  // the eventual pop order is identical whichever structure held it.
  const std::uint64_t order = next_seq_++;
  if (!wheel_.accepts(at)) {
    return schedule_at_reserved(at, tie_time, order, std::move(fn));
  }
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.fn = std::move(fn);
  const std::uint32_t node = wheel_.insert({at, tie_time, order, idx});
  assert((node & kWheelBit) == 0 && "wheel node handle overflow");
  s.heap_pos = kWheelBit | node;
  ++scheduled_count_;
  if (size() > peak_pending_) peak_pending_ = size();
  return make_id(idx, s.generation);
}

void Scheduler::settle() {
  // Flush wheel buckets until the heap's top (if any) is strictly earlier
  // than every wheel resident's conservative bound; only then is popping
  // from the heap alone guaranteed to follow global (at, tie_time, seq)
  // order. Each flushed bucket is a single wheel tick, and ticks are
  // monotone in `at`, so a flush can never leapfrog a remaining resident.
  while (!wheel_.empty()) {
    if (!keys_.empty() && keys_[0].at < wheel_.min_at_bound()) break;
    flush_buf_.clear();
    wheel_.pop_earliest(flush_buf_);
    for (const TimingWheel::Entry& e : flush_buf_) {
      heap_insert(Key{e.at, e.tie_time, e.seq}, e.sched_slot);
    }
  }
}

void Scheduler::cancel(EventId id) {
  if (!pending(id)) {
    if (id != kInvalidEventId) ++stale_cancels_;
    return;
  }
  const std::uint32_t idx = slot_of(id);
  slots_[idx].fn.reset();  // release captures now, not at pop time
  const std::uint32_t pos = slots_[idx].heap_pos;
  if (pos & kWheelBit) {  // pending() ruled out kFreePos
    wheel_.remove(pos & ~kWheelBit);
  } else {
    remove_heap_entry(pos);
  }
  free_slot(idx);
}

Scheduler::Ready Scheduler::take_next() {
  settle();
  assert(!keys_.empty() && "take_next on empty scheduler");
  const std::uint32_t idx = heap_slot_[0];
  // Move the callback out before touching the heap: the caller invokes it
  // after we return, and it may schedule freely (growing slots_/keys_).
  popped_tie_ = keys_[0].tie_time;
  Ready ready{keys_[0].at, std::move(slots_[idx].fn)};
  remove_root();
  free_slot(idx);
  return ready;
}

}  // namespace burst
