#include "src/sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace burst {

EventId Scheduler::schedule_at(Time at, std::function<void()> fn) {
  const EventId id = next_seq_++;
  heap_.push(Item{at, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

void Scheduler::cancel(EventId id) {
  // Erasing from pending_ is the cancellation; the heap entry is skipped
  // lazily when it reaches the top.
  pending_.erase(id);
}

void Scheduler::drop_cancelled_head() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

Time Scheduler::next_time() {
  drop_cancelled_head();
  return heap_.empty() ? kTimeNever : heap_.top().at;
}

Scheduler::Ready Scheduler::take_next() {
  drop_cancelled_head();
  assert(!heap_.empty() && "take_next on empty scheduler");
  Item item = heap_.top();  // copy out so callbacks may schedule freely
  heap_.pop();
  pending_.erase(item.id);
  return Ready{item.at, std::move(item.fn)};
}

}  // namespace burst
