#include "src/sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "src/obs/profile.hpp"

namespace burst {

EventId Simulator::schedule(Time delay, SmallFn fn) {
  assert(delay >= 0.0 && "cannot schedule into the past");
  return scheduler_.schedule_at(now_ + delay, std::move(fn), now_);
}

EventId Simulator::schedule_at(Time at, SmallFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  return scheduler_.schedule_at(at, std::move(fn), now_);
}

EventId Simulator::schedule_soft_at(Time at, SmallFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  return scheduler_.schedule_soft_at(at, std::move(fn), now_);
}

EventId Simulator::schedule_at_as_of(Time at, Time tie_time, SmallFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(tie_time <= at && "tie-break instant must not trail the event");
  return scheduler_.schedule_at(at, std::move(fn), tie_time);
}

EventId Simulator::schedule_at_reserved(Time at, Time tie_time,
                                        std::uint64_t order, SmallFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  assert(tie_time <= at && "tie-break instant must not trail the event");
  return scheduler_.schedule_at_reserved(at, tie_time, order, std::move(fn));
}

void Simulator::run(Time until) {
  // Everything inside the loop defaults to the dispatch phase; nested
  // scopes (transport handlers, queue disciplines) claim their own self
  // time. No-op unless a Profiler is installed on this thread.
  ProfileScope prof(ProfilePhase::kDispatch);
  stopped_ = false;
  while (!stopped_ && !scheduler_.empty()) {
    const Time next = scheduler_.next_time();
    if (next > until) {
      now_ = until;
      return;
    }
    // Advance the clock before invoking, so the callback (and anything it
    // schedules) observes the event's own timestamp as "now".
    auto ready = scheduler_.take_next();
    now_ = ready.at;
    current_tie_ = scheduler_.popped_tie();
    ready.fn();
    ++events_run_;
  }
  if (until != kTimeNever && now_ < until) now_ = until;
}

void Simulator::run_window(Time bound, Time cap) {
  ProfileScope prof(ProfilePhase::kDispatch);
  stopped_ = false;
  while (!stopped_ && !scheduler_.empty()) {
    const Time next = scheduler_.next_time();
    // Strictly below the safe bound (events AT the bound may still be
    // preceded by a cross-LP arrival carrying the same timestamp), and no
    // later than the horizon, which run() executes inclusively.
    if (next >= bound || next > cap) return;
    auto ready = scheduler_.take_next();
    now_ = ready.at;
    current_tie_ = scheduler_.popped_tie();
    ready.fn();
    ++events_run_;
  }
}

}  // namespace burst
