#include "src/sim/random.hpp"

#include <cassert>
#include <cmath>

namespace burst {

double Random::uniform() {
  // 53-bit mantissa-exact uniform in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Random::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Random::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Rejection-free modulo is fine here: span is tiny relative to 2^64, the
  // bias is below 2^-50 and irrelevant for simulation workloads.
  return lo + static_cast<std::int64_t>(engine_() % span);
}

double Random::exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

double Random::pareto(double alpha, double mean) {
  assert(alpha > 1.0 && mean > 0.0);
  const double scale = mean * (alpha - 1.0) / alpha;  // x_m of the Pareto
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / alpha);
}

bool Random::bernoulli(double p_true) { return uniform() < p_true; }

Random Random::fork() { return Random(engine_()); }

}  // namespace burst
