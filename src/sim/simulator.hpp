// The simulation context: clock + scheduler + RNG.
//
// Components hold a reference to their Simulator; there is no global
// state, so several simulations can run in one process (the sweep runner
// relies on this).
#pragma once

#include <cstdint>

#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/small_fn.hpp"
#include "src/sim/time.hpp"

namespace burst {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  Time now() const { return now_; }

  /// Schedules @p fn to run @p delay seconds from now (delay >= 0).
  EventId schedule(Time delay, SmallFn fn);

  /// Schedules @p fn at absolute time @p at (>= now()).
  EventId schedule_at(Time at, SmallFn fn);

  /// Cancels a pending event; no-op for fired/invalid ids.
  void cancel(EventId id) { scheduler_.cancel(id); }

  /// True iff @p id is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return scheduler_.pending(id); }

  /// Runs events until the event queue drains, @p until is reached, or
  /// stop() is called. The clock is left at the time of the last event run
  /// (or @p until, if that is earlier than the next event).
  void run(Time until = kTimeNever);

  /// Requests that run() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for diagnostics / benchmarks).
  std::uint64_t events_run() const { return events_run_; }

  Random& rng() { return rng_; }
  Scheduler& scheduler() { return scheduler_; }

 private:
  Scheduler scheduler_;
  Random rng_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_run_ = 0;
};

}  // namespace burst
