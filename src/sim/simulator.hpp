// The simulation context: clock + scheduler + RNG.
//
// Components hold a reference to their Simulator; there is no global
// state, so several simulations can run in one process (the sweep runner
// relies on this).
#pragma once

#include <cstdint>

#include "src/sim/random.hpp"
#include "src/sim/scheduler.hpp"
#include "src/sim/small_fn.hpp"
#include "src/sim/time.hpp"

namespace burst {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  Time now() const { return now_; }

  /// Schedules @p fn to run @p delay seconds from now (delay >= 0).
  EventId schedule(Time delay, SmallFn fn);

  /// Schedules @p fn at absolute time @p at (>= now()).
  EventId schedule_at(Time at, SmallFn fn);

  /// Schedules a soft-deadline event at absolute time @p at (>= now()):
  /// same observable ordering as schedule_at(), but far-future events are
  /// parked in the scheduler's timing wheel (O(1)) instead of the heap.
  /// Used by Timer::Mode::kLazy — the per-flow RTO/delayed-ACK deadlines
  /// whose pending count scales with the flow count.
  EventId schedule_soft_at(Time at, SmallFn fn);

  /// Schedules @p fn at absolute time @p at, ordered among same-time
  /// events *as if* it had been inserted at instant @p tie_time
  /// (<= @p at). This is how a fused event (one insert standing in for a
  /// chain of two, see SimplexLink) lands in exactly the heap position
  /// the unfused chain's final event would have had, keeping runs
  /// bit-identical across the fusion. Plain schedule_at() is the
  /// tie_time == now() special case.
  EventId schedule_at_as_of(Time at, Time tie_time, SmallFn fn);

  /// Reserves the same-instant FIFO rank the next scheduled event would
  /// receive, without inserting one. Redeem it with
  /// schedule_at_reserved(): the event sorts among same-time peers as the
  /// event that *would* have been scheduled at reservation point — this
  /// is how a lazily-armed fused event (SimplexLink's queue drain) keeps
  /// the heap position of the eager event it replaces.
  std::uint64_t reserve_order() { return scheduler_.reserve_order(); }

  /// Schedules @p fn at @p at ranked by (@p tie_time, @p order) among
  /// same-time events, where @p order came from reserve_order().
  EventId schedule_at_reserved(Time at, Time tie_time, std::uint64_t order,
                               SmallFn fn);

  /// Cancels a pending event; no-op for fired/invalid ids.
  void cancel(EventId id) { scheduler_.cancel(id); }

  /// True iff @p id is scheduled and not yet fired or cancelled.
  bool pending(EventId id) const { return scheduler_.pending(id); }

  /// Runs events until the event queue drains, @p until is reached, or
  /// stop() is called. The clock is left at the time of the last event run
  /// (or @p until, if that is earlier than the next event).
  void run(Time until = kTimeNever);

  /// One LP window of the conservative parallel protocol: runs events
  /// strictly BEFORE @p bound and no later than @p cap (the horizon, which
  /// run() treats inclusively), then returns with the clock at the last
  /// executed event — NOT advanced to the window edge, because the next
  /// window's safe bound is still unknown and cross-LP merges must insert
  /// events after now(). Only the LP runtime calls this.
  void run_window(Time bound, Time cap);

  /// Finalizes an LP clock at the horizon, mirroring what run(until) does
  /// when the queue outlives the horizon. Called once, after the last
  /// window.
  void finish_at(Time t) {
    if (now_ < t) now_ = t;
  }

  /// Earliest pending event's time (kTimeNever if none): the lower bound
  /// this LP publishes to the window barrier. Settles the timing wheel,
  /// so the bound is exact across both storage tiers.
  Time next_event_time() { return scheduler_.next_time(); }

  /// Requests that run() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for diagnostics / benchmarks).
  std::uint64_t events_run() const { return events_run_; }

  /// The tie-break instant of the event currently executing (0 outside a
  /// callback — e.g. during topology build). For a default-scheduled
  /// event this is the instant it was scheduled, which is exactly the
  /// discriminator same-instant events execute in: among equal `at`, the
  /// scheduler orders by (tie_time, insertion seq). Cross-LP handoffs
  /// carry it as a causality stamp so the consumer's merge can reproduce
  /// the sequential engine's same-instant order without a global
  /// insertion counter (DESIGN.md §13.3).
  Time current_tie() const { return current_tie_; }

  /// Stable address of current_tie(), for observers (TraceSink) that must
  /// stamp each record with the executing event's full scheduler key
  /// without a per-record virtual call. Valid for this Simulator's life.
  const Time* tie_clock() const { return &current_tie_; }

  Random& rng() { return rng_; }
  Scheduler& scheduler() { return scheduler_; }

 private:
  Scheduler scheduler_;
  Random rng_;
  Time now_ = 0.0;
  Time current_tie_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_run_ = 0;
};

}  // namespace burst
