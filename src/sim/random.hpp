// Seeded random-number generation for deterministic simulations.
//
// Every experiment takes an explicit 64-bit seed; the same seed always
// produces the same packet trace. Distributions are implemented by hand on
// top of a canonical uniform so results do not depend on the standard
// library's unspecified distribution algorithms.
#pragma once

#include <cstdint>
#include <random>

namespace burst {

class Random {
 public:
  explicit Random(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean = 1/rate). Used for Poisson
  /// inter-arrival times.
  double exponential(double mean);

  /// Pareto with shape @p alpha and given mean; requires alpha > 1 so the
  /// mean exists. Heavy-tailed for alpha < 2 (infinite variance).
  double pareto(double alpha, double mean);

  /// Fair coin / biased coin.
  bool bernoulli(double p_true);

  /// Forks an independent stream, derived deterministically from this one.
  Random fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace burst
