#include "src/sim/timing_wheel.hpp"

#include <algorithm>
#include <cassert>

namespace burst {

namespace {

inline std::uint64_t rotr64(std::uint64_t x, std::uint32_t r) {
  return r == 0 ? x : (x >> r) | (x << (64u - r));
}

}  // namespace

TimingWheel::TimingWheel(Time granularity)
    : granularity_(granularity), inv_granularity_(1.0 / granularity) {
  assert(granularity > 0.0);
  std::fill(std::begin(head_), std::end(head_), kNil);
}

int TimingWheel::level_for(std::uint64_t tick) const {
  assert(tick >= cursor_);
  for (int i = 0; i < kLevels; ++i) {
    const std::uint32_t shift = 6u * static_cast<std::uint32_t>(i);
    // The level-i window reaches 64 slot indices from the cursor's slot;
    // comparing slot indices (not tick deltas) keeps a slot unambiguous —
    // no two residents of one slot can come from different revolutions.
    if ((tick >> shift) - (cursor_ >> shift) < kSlotsPerLevel) return i;
  }
  return kLevels;
}

std::uint32_t TimingWheel::alloc_node(const Entry& entry) {
  std::uint32_t n;
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  } else {
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[n];
  node.entry = entry;
  node.prev = kNil;
  node.next = kNil;
  return n;
}

void TimingWheel::link(std::uint32_t n, std::uint64_t tick, int level) {
  Node& node = nodes_[n];
  if (level >= kLevels) {
    node.bucket = kFarBucket;
    node.next = far_head_;
    if (far_head_ != kNil) nodes_[far_head_].prev = n;
    far_head_ = n;
    ++far_size_;
    far_min_ = std::min(far_min_, node.entry.at);
    return;
  }
  const std::uint32_t shift = 6u * static_cast<std::uint32_t>(level);
  const std::uint32_t slot =
      static_cast<std::uint32_t>(tick >> shift) & (kSlotsPerLevel - 1);
  const std::uint32_t b =
      static_cast<std::uint32_t>(level) * kSlotsPerLevel + slot;
  node.bucket = b;
  node.next = head_[b];
  if (head_[b] != kNil) nodes_[head_[b]].prev = n;
  head_[b] = n;
  const std::uint64_t bit = std::uint64_t{1} << slot;
  if (occupied_[level] & bit) {
    bucket_min_[b] = std::min(bucket_min_[b], node.entry.at);
  } else {
    occupied_[level] |= bit;
    bucket_min_[b] = node.entry.at;
  }
}

void TimingWheel::unlink(std::uint32_t n) {
  Node& node = nodes_[n];
  if (node.prev != kNil) {
    nodes_[node.prev].next = node.next;
  } else if (node.bucket == kFarBucket) {
    far_head_ = node.next;
  } else {
    head_[node.bucket] = node.next;
  }
  if (node.next != kNil) nodes_[node.next].prev = node.prev;
  if (node.bucket == kFarBucket) {
    --far_size_;
    if (far_head_ == kNil) far_min_ = kTimeNever;
  } else if (head_[node.bucket] == kNil) {
    occupied_[node.bucket / kSlotsPerLevel] &=
        ~(std::uint64_t{1} << (node.bucket % kSlotsPerLevel));
  }
  node.prev = kNil;
  node.next = kNil;
}

std::uint32_t TimingWheel::insert(const Entry& entry) {
  const std::uint64_t tick = tick_of(entry.at);
  assert(tick > cursor_ && "insert requires accepts(at)");
  const std::uint32_t n = alloc_node(entry);
  link(n, tick, level_for(tick));
  ++size_;
  return n;
}

void TimingWheel::remove(std::uint32_t n) {
  unlink(n);
  free_.push_back(n);
  --size_;
}

Time TimingWheel::min_at_bound() const {
  Time m = far_min_;
  for (int i = 0; i < kLevels; ++i) {
    if (!occupied_[i]) continue;
    const std::uint32_t shift = 6u * static_cast<std::uint32_t>(i);
    const std::uint32_t p =
        static_cast<std::uint32_t>(cursor_ >> shift) & (kSlotsPerLevel - 1);
    // First occupied slot cyclically from the cursor's = the level's
    // earliest-tick bucket (all residents sit within one revolution).
    const std::uint32_t d = static_cast<std::uint32_t>(
        __builtin_ctzll(rotr64(occupied_[i], p)));
    const std::uint32_t slot = (p + d) & (kSlotsPerLevel - 1);
    m = std::min(m,
                 bucket_min_[static_cast<std::uint32_t>(i) * kSlotsPerLevel +
                             slot]);
  }
  return m;
}

void TimingWheel::refill_from_far() {
  assert(far_head_ != kNil);
  std::uint64_t min_tick = ~std::uint64_t{0};
  for (std::uint32_t n = far_head_; n != kNil; n = nodes_[n].next) {
    min_tick = std::min(min_tick, tick_of(nodes_[n].entry.at));
  }
  if (cursor_ < min_tick) cursor_ = min_tick;
  std::uint32_t n = far_head_;
  far_head_ = kNil;
  far_size_ = 0;
  far_min_ = kTimeNever;
  while (n != kNil) {
    const std::uint32_t next = nodes_[n].next;
    nodes_[n].prev = kNil;
    nodes_[n].next = kNil;
    const std::uint64_t tick = tick_of(nodes_[n].entry.at);
    link(n, tick, level_for(tick));
    n = next;
  }
}

void TimingWheel::pop_earliest(std::vector<Entry>& out) {
  assert(size_ > 0 && "pop_earliest on empty wheel");
  for (;;) {
    int best_level = -1;
    std::uint64_t best_base = 0;
    std::uint32_t best_bucket = 0;
    for (int i = 0; i < kLevels; ++i) {
      if (!occupied_[i]) continue;
      const std::uint32_t shift = 6u * static_cast<std::uint32_t>(i);
      const std::uint64_t cur_index = cursor_ >> shift;
      const std::uint32_t p =
          static_cast<std::uint32_t>(cur_index) & (kSlotsPerLevel - 1);
      const std::uint32_t d = static_cast<std::uint32_t>(
          __builtin_ctzll(rotr64(occupied_[i], p)));
      const std::uint64_t base = (cur_index + d) << shift;
      if (best_level < 0 || base < best_base) {
        best_level = i;
        best_base = base;
        best_bucket = static_cast<std::uint32_t>(i) * kSlotsPerLevel +
                      ((p + d) & (kSlotsPerLevel - 1));
      }
    }
    if (best_level < 0) {
      // Every level is empty; only the far list holds entries. Jump the
      // cursor to their minimum tick and re-bucket them.
      refill_from_far();
      continue;
    }
    // Surrender (or cascade) strictly in base-tick order; the cursor
    // never retreats, so tick >= cursor_ stays invariant for residents.
    if (cursor_ < best_base) cursor_ = best_base;
    std::uint32_t n = head_[best_bucket];
    head_[best_bucket] = kNil;
    occupied_[best_level] &=
        ~(std::uint64_t{1} << (best_bucket % kSlotsPerLevel));
    if (best_level == 0) {
      // A level-0 bucket is a single tick: hand its entries to the heap,
      // which restores exact (at, tie_time, seq) order among them.
      while (n != kNil) {
        const std::uint32_t next = nodes_[n].next;
        out.push_back(nodes_[n].entry);
        free_.push_back(n);
        --size_;
        n = next;
      }
      return;
    }
    // Coarse bucket: redistribute one level (or more) down. Each entry's
    // slot-index distance from the new cursor is < 64 at the level below,
    // so the cascade strictly descends and terminates.
    while (n != kNil) {
      const std::uint32_t next = nodes_[n].next;
      nodes_[n].prev = kNil;
      nodes_[n].next = kNil;
      const std::uint64_t tick = tick_of(nodes_[n].entry.at);
      const int level = level_for(tick);
      assert(level < best_level);
      link(n, tick, level);
      ++cascades_;
      n = next;
    }
  }
}

}  // namespace burst
