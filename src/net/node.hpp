// Nodes: packet endpoints and forwarders with static routing.
//
// A node delivers packets addressed to it to the local agent registered
// for the packet's flow, and forwards everything else along its static
// route table (dest node -> outgoing channel). Routes point at the
// PacketChannel abstraction, so a simulated SimplexLink and the testkit's
// scripted channel are interchangeable. The dumbbell topology of the
// paper needs nothing fancier, and static routes keep runs deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/channel.hpp"
#include "src/net/link.hpp"
#include "src/net/packet.hpp"

namespace burst {

/// Anything that can consume packets delivered to a node (transport agents
/// implement this).
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(const Packet& p) = 0;
};

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  /// Installs "to reach @p dst, transmit on @p channel". A default route
  /// can be installed with dst = kDefaultRoute.
  void add_route(NodeId dst, PacketChannel* channel);

  /// Registers the local consumer for packets of @p flow addressed here.
  void attach(FlowId flow, PacketHandler* handler);

  /// Entry point for packets arriving from a link (or injected locally).
  void receive(const Packet& p);

  /// Entry point for locally generated packets: routes and transmits.
  void send(const Packet& p);

  /// Packets that had no route or no local handler (should stay zero in a
  /// correctly wired topology; tests assert on it).
  std::uint64_t routing_errors() const { return routing_errors_; }

  /// Capacity hints from the topology builder (huge-N mode: avoids
  /// regrowth while the tables fill during construction).
  void reserve_routes(std::size_t n) { routes_.slots.reserve(n); }
  void reserve_handlers(std::size_t n) { handlers_.slots.reserve(n); }

  static constexpr NodeId kDefaultRoute = -1;

 private:
  // Direct-indexed table with a base offset: node and flow ids are small
  // dense non-negative ints assigned by the topology builders, so a
  // route/handler lookup — once per packet per hop — is a single
  // bounds-checked load instead of a hash or search. The base makes the
  // footprint proportional to the id *range actually installed* rather
  // than the absolute ids: client i of an N-client dumbbell holds one
  // handler at flow i, not an i+1-entry vector, which is what keeps
  // total table memory O(N) instead of O(N^2) at mean-field scale.
  template <typename V>
  struct DenseTable {
    int base = 0;
    std::vector<V*> slots;

    void upsert(int key, V* value);
    V* lookup(int key) const {
      // A single unsigned compare also rejects keys below base.
      const auto idx = static_cast<std::size_t>(key - base);
      return idx < slots.size() ? slots[idx] : nullptr;
    }
  };

  NodeId id_;
  DenseTable<PacketChannel> routes_;    // keyed by destination NodeId
  DenseTable<PacketHandler> handlers_;  // keyed by FlowId
  // The default route is hoisted out of the table.
  PacketChannel* default_route_ = nullptr;
  std::uint64_t routing_errors_ = 0;
};

}  // namespace burst
