// FIFO drop-tail queue: the paper's baseline gateway discipline.
#pragma once

#include <deque>

#include "src/net/queue.hpp"

namespace burst {

class DropTailQueue : public Queue {
 public:
  /// @p capacity_packets is the hard buffer limit B (Table 1: 50 packets).
  explicit DropTailQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  std::optional<Packet> dequeue(Time now) override;
  std::size_t len() const override { return q_.size(); }
  std::size_t capacity() const { return capacity_; }

 protected:
  bool do_enqueue(Packet& p, Time now) override;

 private:
  std::size_t capacity_;
  std::deque<Packet> q_;
};

}  // namespace burst
