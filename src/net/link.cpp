#include "src/net/link.hpp"

#include <cassert>
#include <optional>
#include <utility>

#include "src/sim/time.hpp"

namespace burst {

SimplexLink::SimplexLink(Simulator& sim, std::unique_ptr<Queue> queue,
                         double bandwidth_bps, Time prop_delay)
    : sim_(sim),
      queue_(std::move(queue)),
      bandwidth_bps_(bandwidth_bps),
      prop_delay_(prop_delay) {
  assert(queue_ && bandwidth_bps_ > 0.0 && prop_delay_ >= 0.0);
}

void SimplexLink::send(const Packet& p) {
  queue_->enqueue(p, sim_.now());
  try_transmit();
}

void SimplexLink::try_transmit(bool chained) {
  const Time now = sim_.now();
  if (now < free_at_ || (now == free_at_ && tx_open_)) {
    // Transmitter occupied — or we are AT the completion instant but the
    // transmission's place in the event order (the old tx-complete event,
    // now the drain) has not been reached yet. Deferring the dequeue to
    // the drain keeps it at exactly the old tx-complete's rank: an arrival
    // landing at precisely free_at_ must not jump ahead of other
    // same-instant arrivals whose events sort before that rank. Whatever
    // just arrived waits in the queue; a single drain at free_at_ picks
    // it up.
    if (!drain_pending_ && !queue_->queue_empty()) schedule_drain();
    return;
  }
  // No ProfileScope here: head-of-line pops are trivial and this is the
  // hottest per-hop site — dequeue time reads as dispatch, while the
  // kQueue phase captures the discipline's accept/drop decisions.
  std::optional<Packet> next = queue_->dequeue(now);
  if (!next) return;
  queue_->trace_dequeue(*next, now);
  if (!chained) {
    // A transmission not continued by the drain roots a new back-to-back
    // burst: remember where (and under which parent event) the chain
    // began — the genesis half of the cross-LP merge key (see RemoteKey).
    chain_start_ = now;
    chain_cause_ = sim_.current_tie();
  }
  const Time tx = transmission_time(next->size_bytes, bandwidth_bps_);
  // Last bit leaves at now+tx; it arrives prop_delay later. Evaluated as
  // (now + tx) + prop_delay — the same association as the old tx-complete
  // -> propagate event pair — so delivery timestamps are bit-identical.
  tx_start_ = now;
  free_at_ = now + tx;
  tx_open_ = true;
  // Reserve the drain's same-instant rank now: the unfused design's
  // tx-complete event was always inserted here, so a drain armed later
  // (by a mid-transmission arrival) must still sort as if inserted here
  // or same-instant drains on sibling links fire in a different order.
  drain_order_ = sim_.reserve_order();
  if (remote_ != nullptr) {
    // Cut link: the receiver lives in another LP. Hand the packet off with
    // the exact key the fused delivery event below would have carried; the
    // consumer LP inserts the equivalent event at its next window merge.
    // The drain machinery stays local — the transmitter and its queue
    // belong to this side of the cut.
    remote_->post(*this,
                  RemoteKey{free_at_ + prop_delay_, free_at_, tx_start_,
                            sim_.current_tie(), chain_start_, chain_cause_},
                  *next);
    if (!queue_->queue_empty()) schedule_drain();
    return;
  }
  const PacketSlab::Handle h = slab_.put(*next);
  auto deliver = [this, h] {
    const Packet pkt = slab_.take(h);
    ++delivered_;
    bytes_delivered_ += static_cast<std::uint64_t>(pkt.size_bytes);
    if (trace_) {
      // The trace pointer is a link member, not a capture, so the traced
      // and untraced closures are the same size (SmallFn-inline).
      TraceRecord r;
      r.time = sim_.now();
      r.type = TraceEventType::kLinkDeliver;
      r.site = trace_site_;
      r.flow = pkt.flow;
      r.seq = pkt.type == PacketType::kAck ? pkt.ack : pkt.seq;
      r.value = static_cast<double>(pkt.size_bytes);
      r.detail = pkt.type == PacketType::kAck ? kTraceDetailAck : 0;
      trace_->emit(r);
    }
    assert(receiver_ && "SimplexLink has no receiver attached");
    receiver_(pkt);
  };
  static_assert(SmallFn::stores_inline<decltype(deliver)>(),
                "the per-hop delivery closure must fit SmallFn's inline "
                "buffer (park bulky state in the PacketSlab, not captures)");
  // Tie-break as of free_at_: the unfused design inserted the delivery
  // from a tx-complete event at free_at_, so among same-instant arrivals
  // (ubiquitous with uniform packet sizes) the fused event must sort as
  // if inserted there, not at transmission start.
  sim_.schedule_at_as_of(free_at_ + prop_delay_, free_at_,
                         std::move(deliver));
  // A backlog at transmission start needs a drain event at tx end. (An
  // arrival during the transmission arms it from the busy branch above.)
  if (!queue_->queue_empty()) schedule_drain();
}

void SimplexLink::deliver_remote(const Packet& p, Time now) {
  ++delivered_;
  bytes_delivered_ += static_cast<std::uint64_t>(p.size_bytes);
  if (trace_) {
    TraceRecord r;
    r.time = now;
    r.type = TraceEventType::kLinkDeliver;
    r.site = trace_site_;
    r.flow = p.flow;
    r.seq = p.type == PacketType::kAck ? p.ack : p.seq;
    r.value = static_cast<double>(p.size_bytes);
    r.detail = p.type == PacketType::kAck ? kTraceDetailAck : 0;
    trace_->emit(r);
  }
  assert(receiver_ && "SimplexLink has no receiver attached");
  receiver_(p);
}

void SimplexLink::schedule_drain() {
  drain_pending_ = true;
  auto drain = [this] {
    // This event IS the transmission's tx-complete position: past it the
    // transmitter is genuinely free, so a later same-instant arrival may
    // dequeue inline (as it did in the unfused design once tx-complete
    // had run).
    drain_pending_ = false;
    tx_open_ = false;
    try_transmit(/*chained=*/true);
  };
  static_assert(SmallFn::stores_inline<decltype(drain)>(),
                "the drain closure must fit SmallFn's inline buffer");
  // Rank as of (tx_start_, drain_order_): the unfused tx-complete event
  // this drain replaces was always inserted at transmission start, even
  // when the drain is only armed by a mid-transmission arrival.
  sim_.schedule_at_reserved(free_at_, tx_start_, drain_order_,
                            std::move(drain));
}

}  // namespace burst
