#include "src/net/link.hpp"

#include <cassert>
#include <utility>

#include "src/sim/time.hpp"

namespace burst {

SimplexLink::SimplexLink(Simulator& sim, std::unique_ptr<Queue> queue,
                         double bandwidth_bps, Time prop_delay)
    : sim_(sim),
      queue_(std::move(queue)),
      bandwidth_bps_(bandwidth_bps),
      prop_delay_(prop_delay) {
  assert(queue_ && bandwidth_bps_ > 0.0 && prop_delay_ >= 0.0);
}

void SimplexLink::send(const Packet& p) {
  queue_->enqueue(p, sim_.now());
  try_transmit();
}

void SimplexLink::try_transmit() {
  if (busy_) return;
  auto next = queue_->dequeue(sim_.now());
  if (!next) return;
  busy_ = true;
  const Packet pkt = *next;
  const Time tx = transmission_time(pkt.size_bytes, bandwidth_bps_);
  // Last bit leaves at now+tx; it arrives prop_delay later.
  sim_.schedule(tx, [this, pkt] {
    busy_ = false;
    sim_.schedule(prop_delay_, [this, pkt] {
      ++delivered_;
      bytes_delivered_ += static_cast<std::uint64_t>(pkt.size_bytes);
      assert(receiver_ && "SimplexLink has no receiver attached");
      receiver_(pkt);
    });
    try_transmit();
  });
}

}  // namespace burst
