#include "src/net/queue.hpp"

#include "src/obs/profile.hpp"

namespace burst {

bool Queue::enqueue(const Packet& p, Time now) {
  ProfileScope prof(ProfilePhase::kQueue);
  ++stats_.arrivals;
  taps_.notify_arrival(p, now);
  Packet mutable_copy = p;  // disciplines may mark ECN before storing
  // One branch keeps every traced-only load (the early-drop snapshot,
  // the record build) off the untraced per-packet path.
  if (trace_ != nullptr) return enqueue_traced(mutable_copy, p, now);
  const bool accepted = do_enqueue(mutable_copy, now);
  if (!accepted) {
    ++stats_.drops;
    taps_.notify_drop(p, now);
  }
  return accepted;
}

bool Queue::enqueue_traced(Packet& stored, const Packet& p, Time now) {
  const std::uint64_t early_before = stats_.early_drops;
  const bool accepted = do_enqueue(stored, now);
  if (!accepted) {
    ++stats_.drops;
    taps_.notify_drop(p, now);
    emit_trace(TraceEventType::kQueueDrop, p, now,
               stats_.early_drops > early_before ? kTraceDropEarly
                                                 : kTraceDropForced);
  } else {
    emit_trace(TraceEventType::kQueueEnqueue, p, now, 0);
  }
  return accepted;
}

void Queue::emit_trace(TraceEventType type, const Packet& p, Time now,
                       std::uint16_t detail) {
  TraceRecord r;
  r.time = now;
  r.type = type;
  r.site = trace_site_;
  r.flow = p.flow;
  r.seq = p.type == PacketType::kAck ? p.ack : p.seq;
  r.value = static_cast<double>(len());
  r.detail = static_cast<std::uint16_t>(
      detail | (p.type == PacketType::kAck ? kTraceDetailAck : 0));
  trace_->emit(r);
}

}  // namespace burst
