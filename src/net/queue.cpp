#include "src/net/queue.hpp"

namespace burst {

bool Queue::enqueue(const Packet& p, Time now) {
  ++stats_.arrivals;
  taps_.notify_arrival(p, now);
  Packet mutable_copy = p;  // disciplines may mark ECN before storing
  const bool accepted = do_enqueue(mutable_copy, now);
  if (!accepted) {
    ++stats_.drops;
    taps_.notify_drop(p, now);
  }
  return accepted;
}

}  // namespace burst
