#include "src/net/node.hpp"

#include <cassert>

namespace burst {

void Node::add_route(NodeId dst, PacketChannel* channel) {
  assert(channel != nullptr);
  routes_[dst] = channel;
}

void Node::attach(FlowId flow, PacketHandler* handler) {
  assert(handler != nullptr);
  handlers_[flow] = handler;
}

void Node::receive(const Packet& p) {
  if (p.dst == id_) {
    auto it = handlers_.find(p.flow);
    if (it == handlers_.end()) {
      ++routing_errors_;
      return;
    }
    it->second->handle(p);
    return;
  }
  send(p);  // transit traffic: forward
}

void Node::send(const Packet& p) {
  auto it = routes_.find(p.dst);
  if (it == routes_.end()) it = routes_.find(kDefaultRoute);
  if (it == routes_.end()) {
    ++routing_errors_;
    return;
  }
  it->second->send(p);
}

}  // namespace burst
