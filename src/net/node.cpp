#include "src/net/node.hpp"

#include <cassert>
#include <cstddef>

#include "src/obs/profile.hpp"

namespace burst {

template <typename V>
void Node::DenseTable<V>::upsert(int key, V* value) {
  assert(key >= 0);
  if (slots.empty()) {
    base = key;
    slots.push_back(value);
    return;
  }
  if (key < base) {
    // Rare (builders install ascending ids): shift the window down.
    slots.insert(slots.begin(), static_cast<std::size_t>(base - key),
                 nullptr);
    base = key;
    slots.front() = value;
    return;
  }
  const auto idx = static_cast<std::size_t>(key - base);
  if (idx >= slots.size()) slots.resize(idx + 1, nullptr);
  slots[idx] = value;
}

void Node::add_route(NodeId dst, PacketChannel* channel) {
  assert(channel != nullptr);
  if (dst == kDefaultRoute) {
    default_route_ = channel;
    return;
  }
  routes_.upsert(dst, channel);
}

void Node::attach(FlowId flow, PacketHandler* handler) {
  assert(handler != nullptr);
  handlers_.upsert(flow, handler);
}

void Node::receive(const Packet& p) {
  if (p.dst == id_) {
    PacketHandler* h = handlers_.lookup(p.flow);
    if (h == nullptr) {
      ++routing_errors_;
      return;
    }
    // Local delivery enters the transport layer: everything under
    // handle() (ACK processing, window updates, retransmissions) is
    // attributed to the transport phase when a profiler is installed.
    ProfileScope prof(ProfilePhase::kTransport);
    h->handle(p);
    return;
  }
  send(p);  // transit traffic: forward
}

void Node::send(const Packet& p) {
  PacketChannel* ch = routes_.lookup(p.dst);
  if (ch == nullptr) ch = default_route_;
  if (ch == nullptr) {
    ++routing_errors_;
    return;
  }
  ch->send(p);
}

}  // namespace burst
