#include "src/net/node.hpp"

#include <cassert>
#include <cstddef>

#include "src/obs/profile.hpp"

namespace burst {

namespace {

// Direct-indexed upsert / lookup shared by both tables. Ids come from the
// topology builders and are small (clients + gateways + servers), so a
// vector indexed by id is both the fastest and the simplest table.
template <typename V>
void upsert(std::vector<V*>& table, int key, V* value) {
  assert(key >= 0);
  if (static_cast<std::size_t>(key) >= table.size()) {
    table.resize(static_cast<std::size_t>(key) + 1, nullptr);
  }
  table[static_cast<std::size_t>(key)] = value;
}

template <typename V>
V* lookup(const std::vector<V*>& table, int key) {
  const auto idx = static_cast<std::size_t>(key);
  // A single unsigned compare also rejects negative keys.
  return idx < table.size() ? table[idx] : nullptr;
}

}  // namespace

void Node::add_route(NodeId dst, PacketChannel* channel) {
  assert(channel != nullptr);
  if (dst == kDefaultRoute) {
    default_route_ = channel;
    return;
  }
  upsert(routes_, dst, channel);
}

void Node::attach(FlowId flow, PacketHandler* handler) {
  assert(handler != nullptr);
  upsert(handlers_, flow, handler);
}

void Node::receive(const Packet& p) {
  if (p.dst == id_) {
    PacketHandler* h = lookup(handlers_, p.flow);
    if (h == nullptr) {
      ++routing_errors_;
      return;
    }
    // Local delivery enters the transport layer: everything under
    // handle() (ACK processing, window updates, retransmissions) is
    // attributed to the transport phase when a profiler is installed.
    ProfileScope prof(ProfilePhase::kTransport);
    h->handle(p);
    return;
  }
  send(p);  // transit traffic: forward
}

void Node::send(const Packet& p) {
  PacketChannel* ch = lookup(routes_, p.dst);
  if (ch == nullptr) ch = default_route_;
  if (ch == nullptr) {
    ++routing_errors_;
    return;
  }
  ch->send(p);
}

}  // namespace burst
