#include "src/net/packet.hpp"

#include <cstdio>

namespace burst {

int Packet::describe_to(char* buf, std::size_t size) const {
  return std::snprintf(
      buf, size, "%s uid=%llu flow=%d %d->%d seq=%lld ack=%lld size=%d%s",
      type == PacketType::kData ? "DATA" : "ACK",
      static_cast<unsigned long long>(uid), flow, src, dst,
      static_cast<long long>(seq), static_cast<long long>(ack), size_bytes,
      retransmit ? " rexmt" : "");
}

std::string Packet::describe() const {
  char buf[kDescribeBufSize];
  describe_to(buf, sizeof buf);
  return buf;
}

}  // namespace burst
