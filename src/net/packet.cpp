#include "src/net/packet.hpp"

#include <sstream>

namespace burst {

std::string Packet::describe() const {
  std::ostringstream os;
  os << (type == PacketType::kData ? "DATA" : "ACK") << " uid=" << uid
     << " flow=" << flow << " " << src << "->" << dst << " seq=" << seq
     << " ack=" << ack << " size=" << size_bytes
     << (retransmit ? " rexmt" : "");
  return os.str();
}

}  // namespace burst
