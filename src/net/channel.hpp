// PacketChannel: the routing-layer abstraction a Node transmits into.
//
// A channel accepts packets and (eventually) delivers them somewhere —
// usually a SimplexLink that models bandwidth, propagation and queueing,
// but the testkit substitutes a scripted channel that delivers, delays,
// drops, reorders or ECN-marks individual segments at exact simulated
// times. Nodes route to channels, so the two are interchangeable without
// the transport layer noticing.
#pragma once

namespace burst {

struct Packet;

class PacketChannel {
 public:
  virtual ~PacketChannel() = default;

  /// Offers a packet for transmission. The channel may drop it.
  virtual void send(const Packet& p) = 0;
};

}  // namespace burst
