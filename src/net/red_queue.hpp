// Random Early Detection gateway queue (Floyd & Jacobson, 1993), the
// variant the paper evaluates: non-gentle, packet-count mode.
//
//  * An EWMA `avg` of the instantaneous queue length is updated on every
//    arrival; when the queue is idle the average decays as if `m` small
//    packets had been transmitted (idle-time compensation).
//  * avg < min_th          : enqueue.
//  * min_th <= avg < max_th: drop with probability pa, where
//        pb = max_p * (avg - min_th) / (max_th - min_th)
//        pa = pb / (1 - count * pb)
//    and `count` is the number of packets enqueued since the last drop,
//    *excluding* the arriving packet itself: the first candidate after a
//    drop sees pa = pb, and for fixed avg the gap between drops is
//    uniform on {1, ..., 1/pb} — the de-clustering property RED's
//    uniformization is for.
//  * avg >= max_th         : drop every arrival (non-gentle RED).
//  * The physical buffer bound still applies (forced drop when full).
#pragma once

#include <deque>

#include "src/net/queue.hpp"
#include "src/sim/random.hpp"

namespace burst {

struct RedConfig {
  double min_th = 10.0;          // packets
  double max_th = 40.0;          // packets
  double max_p = 0.1;            // drop probability at max_th
  double weight = 0.002;         // EWMA gain w_q
  std::size_t capacity = 50;     // physical buffer bound B
  double mean_pkt_tx_time = 0.0; // seconds; enables idle-time compensation

  // ECN (RFC 2481): mark ECN-capable packets instead of early-dropping
  // them while avg < max_th. Forced (buffer-full) and max_th drops still
  // drop — marking cannot create space.
  bool ecn = false;

  // Self-configuring RED (Feng, Kandlur, Saha & Shin — the paper's [5]):
  // periodically scale max_p so the average queue settles between the
  // thresholds. Off by default (the paper's RED is static).
  bool adaptive = false;
  Time adapt_interval = 0.5;
  double adapt_factor = 2.0;     // multiplicative max_p adjustment
  double min_max_p = 0.01;
  double max_max_p = 0.5;
};

class RedQueue : public Queue {
 public:
  RedQueue(RedConfig cfg, Random rng)
      : cfg_(cfg), rng_(rng), max_p_(cfg.max_p) {}

  std::optional<Packet> dequeue(Time now) override;
  std::size_t len() const override { return q_.size(); }

  /// Current EWMA of the queue length (exposed for tests/analysis).
  double avg() const { return avg_; }
  const RedConfig& config() const { return cfg_; }
  /// Current max_p (changes over time in adaptive mode).
  double max_p() const { return max_p_; }
  /// Packets ECN-marked (instead of dropped) so far.
  std::uint64_t marks() const { return marks_; }

  /// The uniformized drop probability pa = pb / (1 - count * pb) for an
  /// arrival seen while the EWMA is @p avg, with @p count packets enqueued
  /// since the last drop (the arriving packet itself excluded; negative
  /// values clamp to 0). Exposed so tests can pin the Floyd–Jacobson
  /// sequence against hand-computed values.
  double drop_probability(double avg, std::int64_t count) const;

 protected:
  bool do_enqueue(Packet& p, Time now) override;

 private:
  void update_avg(Time now);
  void maybe_adapt(Time now);

  RedConfig cfg_;
  Random rng_;
  std::deque<Packet> q_;
  double avg_ = 0.0;
  double max_p_;             // live value; cfg_.max_p is the initial one
  std::uint64_t marks_ = 0;
  std::int64_t count_ = -1;  // packets since last drop; -1 = fresh phase
  Time idle_since_ = 0.0;    // when the queue last went empty
  bool idle_ = true;
  Time last_adapt_ = 0.0;
};

}  // namespace burst
