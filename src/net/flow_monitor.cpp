#include "src/net/flow_monitor.hpp"

#include <algorithm>

namespace burst {

void FlowMonitor::attach(Queue& queue) {
  // The arrival lambda captures its own queue so len() reads the right
  // buffer when several queues share this monitor.
  Queue* q = &queue;
  queue.taps().add_arrival_listener(
      [this, q](const Packet& p, Time now) { on_arrival(*q, p, now); });
  queue.taps().add_drop_listener(
      [this](const Packet& p, Time now) { on_drop(p, now); });
}

void FlowMonitor::reserve_flows(std::size_t n) {
  if (n > flows_.size()) {
    flows_.resize(n);
    event_mark_.resize(n, 0);
  }
}

FlowMonitor::FlowCounters& FlowMonitor::counters(FlowId flow) {
  const auto idx = static_cast<std::size_t>(flow);
  if (idx >= flows_.size()) {
    flows_.resize(idx + 1);
    event_mark_.resize(idx + 1, 0);
  }
  FlowCounters& c = flows_[idx];
  if (c.arrivals == 0 && c.drops == 0) ++flows_seen_;
  return c;
}

void FlowMonitor::on_arrival(const Queue& q, const Packet& p, Time /*now*/) {
  if (p.type != PacketType::kData) return;
  ++counters(p.flow).arrivals;
  queue_at_arrival_.add(static_cast<double>(q.len()));
}

void FlowMonitor::on_drop(const Packet& p, Time now) {
  if (p.type != PacketType::kData) return;
  ++counters(p.flow).drops;
  if (last_drop_ >= 0.0 && now - last_drop_ > event_gap_) close_event();
  last_drop_ = now;
  if (open_event_start_ < 0.0) {
    open_event_start_ = now;
    ++event_epoch_;
  }
  ++open_event_drops_;
  const auto idx = static_cast<std::size_t>(p.flow);
  if (event_mark_[idx] != event_epoch_) {
    event_mark_[idx] = event_epoch_;
    open_event_flows_.push_back(p.flow);
  }
}

void FlowMonitor::close_event() const {
  if (!open_event_flows_.empty()) {
    flows_hit_.push_back(static_cast<int>(open_event_flows_.size()));
    if (trace_) {
      TraceRecord r;
      r.time = open_event_start_;  // the event "happened" at its first drop
      r.type = TraceEventType::kCongestionEvent;
      r.site = trace_site_;
      r.value = static_cast<double>(open_event_flows_.size());
      r.aux = last_drop_ - open_event_start_;  // cluster duration
      r.seq = static_cast<std::int64_t>(open_event_drops_);
      // Emitted after the fact (at cluster close), so it must carry the
      // aggregate stamp for the multi-LP merge to place it correctly.
      trace_->emit_aggregate(r);
    }
    open_event_flows_.clear();
  }
  open_event_start_ = -1.0;
  open_event_drops_ = 0;
}

std::size_t FlowMonitor::drop_events() const {
  close_event();
  return flows_hit_.size();
}

const std::vector<int>& FlowMonitor::flows_hit_per_event() const {
  close_event();
  return flows_hit_;
}

double FlowMonitor::mean_flows_hit() const {
  close_event();
  if (flows_hit_.empty()) return 0.0;
  double sum = 0.0;
  for (int f : flows_hit_) sum += f;
  return sum / static_cast<double>(flows_hit_.size());
}

int FlowMonitor::max_flows_hit() const {
  close_event();
  int best = 0;
  for (int f : flows_hit_) best = std::max(best, f);
  return best;
}

double FlowMonitor::loss_fraction_spread(std::uint64_t min_arrivals) const {
  double lo = 1.0, hi = 0.0;
  int counted = 0;
  for (const FlowCounters& c : flows_) {
    if (c.arrivals < min_arrivals) continue;
    const double frac = static_cast<double>(c.drops) /
                        static_cast<double>(c.arrivals);
    lo = std::min(lo, frac);
    hi = std::max(hi, frac);
    ++counted;
  }
  return counted < 2 ? 0.0 : hi - lo;
}

}  // namespace burst
