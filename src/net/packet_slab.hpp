// PacketSlab: recycled storage for packets that are "on the wire".
//
// A SimplexLink's delivery closure used to capture the whole ~120-byte
// Packet by value, which overflowed SmallFn's 48-byte inline buffer and
// heap-allocated on every hop. Instead the link parks the packet here and
// captures a 4-byte handle; the slab reaches steady state after the first
// few packets (its high-water mark is the number of deliveries in flight
// on the link, roughly prop_delay / tx_time), after which the packet path
// performs no allocations at all.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/net/packet.hpp"

namespace burst {

class PacketSlab {
 public:
  using Handle = std::uint32_t;

  /// Stores a copy of @p p; the returned handle stays valid until take().
  Handle put(const Packet& p) {
    if (free_.empty()) {
      store_.push_back(p);
      return static_cast<Handle>(store_.size() - 1);
    }
    const Handle h = free_.back();
    free_.pop_back();
    store_[h] = p;
    return h;
  }

  /// Copies the packet out and recycles its slot. Returns by value: the
  /// caller may trigger further sends (and hence put()s) while holding
  /// the result, so handing out a reference into store_ would dangle on
  /// reallocation.
  Packet take(Handle h) {
    assert(h < store_.size());
    const Packet p = store_[h];
    free_.push_back(h);
    return p;
  }

  /// Packets currently parked (in-flight deliveries).
  std::size_t in_flight() const { return store_.size() - free_.size(); }

  /// Slots ever allocated (the high-water mark of in_flight()).
  std::size_t capacity() const { return store_.size(); }

 private:
  std::vector<Packet> store_;
  std::vector<Handle> free_;
};

}  // namespace burst
