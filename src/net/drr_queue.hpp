// Deficit Round Robin fair queueing (Shreedhar & Varghese, 1995), with
// McKenney-style longest-queue drop when the shared buffer fills.
//
// Included as the scheduling counterfactual to the paper's FIFO/RED
// results: per-flow isolation at the gateway removes the shared-tail-drop
// coupling that synchronizes Reno streams, so the dependency the paper
// identifies should weaken. The ablation bench measures exactly that.
#pragma once

#include <deque>
#include <list>
#include <unordered_map>

#include "src/net/queue.hpp"

namespace burst {

struct DrrConfig {
  std::size_t capacity = 50;   // total buffered packets across all flows
  int quantum_bytes = 1040;    // per-round service quantum (one packet)
};

class DrrQueue : public Queue {
 public:
  explicit DrrQueue(DrrConfig cfg) : cfg_(cfg) {}

  std::optional<Packet> dequeue(Time now) override;
  std::size_t len() const override { return total_; }

  /// Number of flows currently backlogged.
  std::size_t active_flows() const { return active_.size(); }

 protected:
  bool do_enqueue(Packet& p, Time now) override;

 private:
  struct FlowState {
    std::deque<Packet> q;
    long deficit = 0;
    bool needs_quantum = true;  // one quantum credit per round-robin visit
    bool in_active = false;
    std::list<FlowId>::iterator active_pos{};
  };

  /// Removes and returns the tail packet of the longest per-flow queue.
  Packet drop_from_longest();
  void deactivate(FlowState& f, FlowId id);

  DrrConfig cfg_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::list<FlowId> active_;  // round-robin order
  std::size_t total_ = 0;
};

}  // namespace burst
