#include "src/net/red_queue.hpp"

#include <algorithm>
#include <cmath>

namespace burst {

void RedQueue::update_avg(Time now) {
  if (idle_) {
    idle_ = false;
    if (cfg_.mean_pkt_tx_time > 0.0) {
      // Floyd–Jacobson wake-from-idle: decay the average as if m packets
      // had departed during the idle gap — avg ← (1-w)^m · avg — and
      // nothing else. The regular EWMA step below is for non-idle
      // arrivals only; stacking it on top of the decay double-counted
      // the arrival and biased avg low after every idle period.
      const double m = (now - idle_since_) / cfg_.mean_pkt_tx_time;
      if (m > 0.0) avg_ *= std::pow(1.0 - cfg_.weight, m);
      return;
    }
    // No idle-time estimate configured: fall through to the plain EWMA
    // (the queue is empty, so this samples q = 0, the pre-fix behavior).
  }
  avg_ = (1.0 - cfg_.weight) * avg_ +
         cfg_.weight * static_cast<double>(q_.size());
}

void RedQueue::maybe_adapt(Time now) {
  if (!cfg_.adaptive || now - last_adapt_ < cfg_.adapt_interval) return;
  last_adapt_ = now;
  // Self-configuring RED: too empty -> drop less aggressively; pinned at
  // or above max_th -> drop more aggressively.
  if (avg_ < cfg_.min_th) {
    max_p_ = std::max(cfg_.min_max_p, max_p_ / cfg_.adapt_factor);
  } else if (avg_ > cfg_.max_th) {
    max_p_ = std::min(cfg_.max_max_p, max_p_ * cfg_.adapt_factor);
  }
}

double RedQueue::drop_probability(double avg, std::int64_t count) const {
  const double pb =
      max_p_ * (avg - cfg_.min_th) / (cfg_.max_th - cfg_.min_th);
  const double denom =
      1.0 - static_cast<double>(std::max<std::int64_t>(count, 0)) * pb;
  return denom <= 0.0 ? 1.0 : std::min(1.0, pb / denom);
}

bool RedQueue::do_enqueue(Packet& p, Time now) {
  update_avg(now);
  maybe_adapt(now);

  if (q_.size() >= cfg_.capacity) {
    ++stats_.forced_drops;
    count_ = 0;
    return false;
  }
  if (avg_ >= cfg_.max_th) {
    // Above max_th RED sheds load unconditionally, even for ECN flows
    // (marking cannot relieve a queue this persistent).
    ++stats_.early_drops;
    count_ = 0;
    return false;
  }
  if (avg_ >= cfg_.min_th) {
    // Floyd–Jacobson: `count` is the number of packets enqueued since the
    // last drop, *excluding* the arriving one — the first candidate after
    // a drop sees pa = pb, the n-th pa = pb / (1 - (n-1)·pb), making the
    // inter-drop gap uniform on {1, ..., 1/pb}. Sampling pa *after* the
    // increment (the old off-by-one) skewed every gap one packet short.
    const double pa = drop_probability(avg_, count_);
    ++count_;
    if (rng_.bernoulli(pa)) {
      if (cfg_.ecn && p.ecn_capable) {
        p.ecn_marked = true;  // mark-instead-of-drop
        ++marks_;
        count_ = 0;
      } else {
        ++stats_.early_drops;
        count_ = 0;
        return false;
      }
    }
  } else {
    count_ = -1;
  }
  q_.push_back(p);
  return true;
}

std::optional<Packet> RedQueue::dequeue(Time now) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  count_departure();
  if (q_.empty()) {
    idle_ = true;
    idle_since_ = now;
  }
  return p;
}

}  // namespace burst
