// Per-flow gateway instrumentation, attached to any number of queues'
// taps:
//
//  * per-flow arrival and drop counts (loss fairness);
//  * queue length observed at data-packet arrivals (by PASTA this equals
//    the time-average queue length under Poisson arrivals, which lets the
//    validation tests compare the simulator against M/D/1 theory);
//  * drop-event clustering: consecutive drops separated by less than a
//    gap threshold form one congestion event, and the number of distinct
//    flows hit per event quantifies the loss synchronization the paper
//    blames for Reno's aggregate burstiness (Sec 3.2.1, Fig 9).
//
// A monitor can observe several queues at once (attach() each one): a
// tandem/multihop gateway's drop stream is clustered jointly, which is
// the quantity that matters for synchronization — flows don't care which
// hop dropped them. With a TraceSink attached, each closed congestion
// event is emitted as a kCongestionEvent record.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/net/queue.hpp"
#include "src/stats/running_stats.hpp"

namespace burst {

class FlowMonitor {
 public:
  struct FlowCounters {
    std::uint64_t arrivals = 0;
    std::uint64_t drops = 0;
  };

  /// @p event_gap is the silence that closes a drop event (default: one
  /// bottleneck RTT's worth of drops cluster). Call attach() to observe.
  explicit FlowMonitor(Time event_gap = 0.01) : event_gap_(event_gap) {}

  /// Convenience: constructs and attaches to @p queue in one step.
  explicit FlowMonitor(Queue& queue, Time event_gap = 0.01)
      : FlowMonitor(event_gap) {
    attach(queue);
  }

  /// Taps @p queue's arrival/drop listeners. May be called for several
  /// queues; their drop streams feed one joint clustering. The monitor
  /// must outlive every attached queue's tap invocations.
  void attach(Queue& queue);

  /// Emits a kCongestionEvent record (against @p site) into @p sink each
  /// time a drop cluster closes.
  void set_trace(TraceSink* sink, std::uint8_t site = 0) {
    trace_ = sink;
    trace_site_ = site;
  }

  const std::unordered_map<FlowId, FlowCounters>& flows() const {
    return flows_;
  }

  /// Queue occupancy seen by arriving data packets (PASTA sampler),
  /// pooled over all attached queues.
  const RunningStats& queue_at_arrival() const { return queue_at_arrival_; }

  /// Number of distinct congestion (drop-burst) events observed.
  std::size_t drop_events() const;

  /// Distinct flows losing packets in each event, in event order.
  const std::vector<int>& flows_hit_per_event() const;

  /// Mean of flows_hit_per_event (0 when lossless).
  double mean_flows_hit() const;
  /// Max of flows_hit_per_event (0 when lossless).
  int max_flows_hit() const;

  /// Per-flow drop fraction spread: max loss fraction - min loss fraction
  /// over flows with >= min_arrivals (loss fairness; 0 if < 2 such flows).
  double loss_fraction_spread(std::uint64_t min_arrivals = 100) const;

 private:
  void on_arrival(const Queue& q, const Packet& p, Time now);
  void on_drop(const Packet& p, Time now);
  void close_event() const;

  Time event_gap_;
  std::unordered_map<FlowId, FlowCounters> flows_;
  RunningStats queue_at_arrival_;

  // Current (possibly open) drop event. Mutable: readers close it lazily.
  mutable std::vector<int> flows_hit_;
  mutable std::vector<FlowId> open_event_flows_;
  mutable Time open_event_start_ = -1.0;  // first drop of the open event
  mutable std::uint64_t open_event_drops_ = 0;
  Time last_drop_ = -1.0;
  TraceSink* trace_ = nullptr;
  std::uint8_t trace_site_ = 0;
};

}  // namespace burst
