// Per-flow gateway instrumentation, attached to any number of queues'
// taps:
//
//  * per-flow arrival and drop counts (loss fairness);
//  * queue length observed at data-packet arrivals (by PASTA this equals
//    the time-average queue length under Poisson arrivals, which lets the
//    validation tests compare the simulator against M/D/1 theory);
//  * drop-event clustering: consecutive drops separated by less than a
//    gap threshold form one congestion event, and the number of distinct
//    flows hit per event quantifies the loss synchronization the paper
//    blames for Reno's aggregate burstiness (Sec 3.2.1, Fig 9).
//
// A monitor can observe several queues at once (attach() each one): a
// tandem/multihop gateway's drop stream is clustered jointly, which is
// the quantity that matters for synchronization — flows don't care which
// hop dropped them. With a TraceSink attached, each closed congestion
// event is emitted as a kCongestionEvent record.
//
// Flow counters live in a dense vector indexed by FlowId (builders assign
// ids 0..N-1), not a hash map: at mean-field scale (10^5+ flows) the
// table is touched on every gateway arrival, and the dense layout keeps
// that hot path a single indexed load. reserve_flows() pre-sizes it.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/queue.hpp"
#include "src/stats/running_stats.hpp"

namespace burst {

class FlowMonitor {
 public:
  struct FlowCounters {
    std::uint64_t arrivals = 0;
    std::uint64_t drops = 0;
  };

  /// @p event_gap is the silence that closes a drop event (default: one
  /// bottleneck RTT's worth of drops cluster). Call attach() to observe.
  explicit FlowMonitor(Time event_gap = 0.01) : event_gap_(event_gap) {}

  /// Convenience: constructs and attaches to @p queue in one step.
  explicit FlowMonitor(Queue& queue, Time event_gap = 0.01)
      : FlowMonitor(event_gap) {
    attach(queue);
  }

  /// Taps @p queue's arrival/drop listeners. May be called for several
  /// queues; their drop streams feed one joint clustering. The monitor
  /// must outlive every attached queue's tap invocations.
  void attach(Queue& queue);

  /// Pre-sizes the per-flow table for ids [0, n) so the arrival path
  /// never reallocates mid-run.
  void reserve_flows(std::size_t n);

  /// Emits a kCongestionEvent record (against @p site) into @p sink each
  /// time a drop cluster closes.
  void set_trace(TraceSink* sink, std::uint8_t site = 0) {
    trace_ = sink;
    trace_site_ = site;
  }

  /// Dense per-flow counter table, indexed by FlowId. Entries for flows
  /// never seen are zero; the table extends to the highest id observed
  /// (or reserved).
  const std::vector<FlowCounters>& flow_table() const { return flows_; }

  /// Number of distinct flows with at least one arrival or drop.
  std::size_t flows_seen() const { return flows_seen_; }

  /// Counters for @p flow (zeros if the id was never observed).
  FlowCounters flow(FlowId flow) const {
    const auto idx = static_cast<std::size_t>(flow);
    return flow >= 0 && idx < flows_.size() ? flows_[idx] : FlowCounters{};
  }

  /// Queue occupancy seen by arriving data packets (PASTA sampler),
  /// pooled over all attached queues.
  const RunningStats& queue_at_arrival() const { return queue_at_arrival_; }

  /// Number of distinct congestion (drop-burst) events observed.
  std::size_t drop_events() const;

  /// Distinct flows losing packets in each event, in event order.
  const std::vector<int>& flows_hit_per_event() const;

  /// Mean of flows_hit_per_event (0 when lossless).
  double mean_flows_hit() const;
  /// Max of flows_hit_per_event (0 when lossless).
  int max_flows_hit() const;

  /// Per-flow drop fraction spread: max loss fraction - min loss fraction
  /// over flows with >= min_arrivals (loss fairness; 0 if < 2 such flows).
  double loss_fraction_spread(std::uint64_t min_arrivals = 100) const;

 private:
  void on_arrival(const Queue& q, const Packet& p, Time now);
  void on_drop(const Packet& p, Time now);
  void close_event() const;
  FlowCounters& counters(FlowId flow);

  Time event_gap_;
  std::vector<FlowCounters> flows_;
  /// Event-epoch stamp per flow, parallel to flows_: dedups the flows hit
  /// by the open event in O(1) per drop (a linear membership scan would
  /// go quadratic when one synchronized event clips 10^5 flows).
  mutable std::vector<std::uint64_t> event_mark_;
  std::size_t flows_seen_ = 0;
  RunningStats queue_at_arrival_;

  // Current (possibly open) drop event. Mutable: readers close it lazily.
  mutable std::vector<int> flows_hit_;
  mutable std::vector<FlowId> open_event_flows_;
  mutable std::uint64_t event_epoch_ = 0;  // 0 = "no event yet" mark value
  mutable Time open_event_start_ = -1.0;   // first drop of the open event
  mutable std::uint64_t open_event_drops_ = 0;
  Time last_drop_ = -1.0;
  TraceSink* trace_ = nullptr;
  std::uint8_t trace_site_ = 0;
};

}  // namespace burst
