// The unit of transmission.
//
// Packets are small value types copied by value through the network, as in
// a packet-level simulator: there is no payload, only headers relevant to
// the protocols under study. Sequence/ack numbers are in units of packets
// (ns-2 style), which is what the paper's simulations used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/sim/time.hpp"

namespace burst {

enum class PacketType : std::uint8_t {
  kData,  // transport payload segment
  kAck,   // transport acknowledgment
};

/// Node identifier within a simulation.
using NodeId = int;

/// Flow identifier; a (sender agent, sink agent) pair shares one flow id.
using FlowId = int;

struct Packet {
  std::uint64_t uid = 0;      // unique per simulation, for tracing
  FlowId flow = -1;           // demultiplexing key at the destination node
  NodeId src = -1;
  NodeId dst = -1;
  PacketType type = PacketType::kData;
  int size_bytes = 0;         // wire size including headers

  std::int64_t seq = -1;      // packet-granularity sequence number
  std::int64_t ack = -1;      // cumulative ack: next expected seq
  Time ts_echo = 0.0;         // sender timestamp, echoed by the sink (RTTM)
  bool retransmit = false;    // marked on retransmissions (Karn's rule)

  // Explicit congestion notification (RFC 2481 era).
  bool ecn_capable = false;   // ECT: the flow understands marks
  bool ecn_marked = false;    // CE: an ECN gateway marked this packet
  bool ece = false;           // on ACKs: echo of a congestion mark

  // Selective acknowledgment (on ACKs): up to kMaxSackBlocks [lo, hi)
  // ranges of out-of-order data held by the receiver.
  static constexpr int kMaxSackBlocks = 3;
  struct SackBlock {
    std::int64_t lo = 0;
    std::int64_t hi = 0;  // exclusive
  };
  SackBlock sack[kMaxSackBlocks] = {};
  int sack_count = 0;

  /// Formats a one-line human-readable summary into @p buf (snprintf
  /// semantics: always NUL-terminated, returns the would-be length).
  /// Allocation-free, so tracing hooks can call it per packet without
  /// perturbing the heap; kDescribeBufSize never truncates.
  static constexpr std::size_t kDescribeBufSize = 160;
  int describe_to(char* buf, std::size_t size) const;

  /// Convenience wrapper for describe_to(). Builds a std::string — only
  /// for diagnostics/tests, never on the packet hot path.
  std::string describe() const;
};

/// Default wire sizes used throughout the reproduction (see DESIGN.md §3).
inline constexpr int kHeaderBytes = 40;       // TCP/IP header
inline constexpr int kDefaultPayloadBytes = 1000;
inline constexpr int kAckBytes = kHeaderBytes;

}  // namespace burst
