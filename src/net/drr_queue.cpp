#include "src/net/drr_queue.hpp"

#include <cassert>

namespace burst {

void DrrQueue::deactivate(FlowState& f, FlowId /*id*/) {
  if (!f.in_active) return;
  active_.erase(f.active_pos);
  f.in_active = false;
  f.deficit = 0;  // an idling flow must not bank credit
  f.needs_quantum = true;
}

Packet DrrQueue::drop_from_longest() {
  FlowId victim = -1;
  std::size_t longest = 0;
  for (const auto& [id, f] : flows_) {
    if (f.q.size() > longest) {
      longest = f.q.size();
      victim = id;
    }
  }
  assert(victim != -1 && "drop_from_longest on empty DRR queue");
  FlowState& f = flows_[victim];
  Packet dropped = f.q.back();
  f.q.pop_back();
  --total_;
  if (f.q.empty()) deactivate(f, victim);
  return dropped;
}

bool DrrQueue::do_enqueue(Packet& p, Time now) {
  if (total_ >= cfg_.capacity) {
    // Longest-queue drop: penalize the most backlogged flow. If the
    // arriving flow would itself be (one of) the longest, reject the
    // arrival; otherwise displace the tail of the longest queue.
    FlowState& mine = flows_[p.flow];
    std::size_t longest = 0;
    for (const auto& [id, f] : flows_) longest = std::max(longest, f.q.size());
    if (mine.q.size() + 1 > longest) {
      ++stats_.forced_drops;
      return false;
    }
    count_displaced_drop(drop_from_longest(), now);
  }
  FlowState& f = flows_[p.flow];
  f.q.push_back(p);
  ++total_;
  if (!f.in_active) {
    active_.push_back(p.flow);
    f.active_pos = std::prev(active_.end());
    f.in_active = true;
    f.needs_quantum = true;
  }
  return true;
}

std::optional<Packet> DrrQueue::dequeue(Time /*now*/) {
  while (!active_.empty()) {
    const FlowId id = active_.front();
    FlowState& f = flows_[id];
    assert(!f.q.empty());
    if (f.needs_quantum) {
      f.deficit += cfg_.quantum_bytes;  // exactly once per round visit
      f.needs_quantum = false;
    }
    if (f.deficit >= f.q.front().size_bytes) {
      Packet p = f.q.front();
      f.q.pop_front();
      f.deficit -= p.size_bytes;
      --total_;
      if (f.q.empty()) {
        deactivate(f, id);
      }
      count_departure();
      return p;
    }
    // This round's credit is spent: move to the back of the round, keeping
    // the residual deficit (large packets accumulate credit over rounds).
    f.needs_quantum = true;
    active_.splice(active_.end(), active_, f.active_pos);
    f.active_pos = std::prev(active_.end());
  }
  return std::nullopt;
}

}  // namespace burst
