// Queueing-discipline interface for gateway/link buffers, plus shared
// bookkeeping (arrival/drop counters and observer taps used by the
// burstiness experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/net/packet.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/time.hpp"

namespace burst {

/// Counters every queue maintains; the loss-percentage figures read these.
struct QueueStats {
  std::uint64_t arrivals = 0;       // packets offered to the queue
  std::uint64_t drops = 0;          // packets rejected (any reason)
  std::uint64_t forced_drops = 0;   // rejected because the buffer was full
  std::uint64_t early_drops = 0;    // rejected probabilistically (RED)
  std::uint64_t departures = 0;     // packets handed to the transmitter

  double loss_fraction() const {
    return arrivals == 0 ? 0.0
                         : static_cast<double>(drops) / static_cast<double>(arrivals);
  }
};

/// Observers invoked on every arrival (before any drop decision) and every
/// drop, with the arrival timestamp. Multiple listeners may be attached;
/// the c.o.v. measurement and the FlowMonitor both tap the bottleneck.
class QueueTaps {
 public:
  using Listener = std::function<void(const Packet&, Time)>;

  void add_arrival_listener(Listener l) { arrival_.push_back(std::move(l)); }
  void add_drop_listener(Listener l) { drop_.push_back(std::move(l)); }

  void notify_arrival(const Packet& p, Time now) const {
    for (const auto& l : arrival_) l(p, now);
  }
  void notify_drop(const Packet& p, Time now) const {
    for (const auto& l : drop_) l(p, now);
  }

 private:
  std::vector<Listener> arrival_;
  std::vector<Listener> drop_;
};

class Queue {
 public:
  virtual ~Queue() = default;

  /// Offers a packet. Returns true if accepted, false if dropped.
  bool enqueue(const Packet& p, Time now);

  /// Removes the head-of-line packet, or nullopt if empty.
  virtual std::optional<Packet> dequeue(Time now) = 0;

  /// Packets currently buffered.
  virtual std::size_t len() const = 0;
  bool queue_empty() const { return len() == 0; }

  const QueueStats& stats() const { return stats_; }
  QueueTaps& taps() { return taps_; }

  /// Attaches a structured-trace sink under the given site id (see
  /// TraceSink::register_site). Null detaches. The untraced hot path pays
  /// one null check per enqueue/dequeue.
  void set_trace(TraceSink* sink, std::uint8_t site = 0) {
    trace_ = sink;
    trace_site_ = site;
  }

  /// Called by the transmitter right after a successful dequeue (the
  /// queue itself cannot see dequeues of its subclasses' storage without
  /// a virtual hook, and the link already knows the instant).
  void trace_dequeue(const Packet& p, Time now) {
    if (trace_) emit_trace(TraceEventType::kQueueDequeue, p, now, 0);
  }

 protected:
  /// Discipline-specific accept/reject decision. Implementations must
  /// store the packet themselves when accepting, and may mutate it first
  /// (ECN-capable gateways mark instead of dropping).
  virtual bool do_enqueue(Packet& p, Time now) = 0;

  void count_departure() { ++stats_.departures; }

  /// Counts and reports the drop of an *already-buffered* packet, for
  /// disciplines that displace stored packets (longest-queue drop).
  void count_displaced_drop(const Packet& p, Time now) {
    ++stats_.drops;
    ++stats_.forced_drops;
    taps_.notify_drop(p, now);
    if (trace_) {
      emit_trace(TraceEventType::kQueueDrop, p, now, kTraceDropDisplaced);
    }
  }

  QueueStats stats_;

 private:
  /// The trace-enabled tail of enqueue(): runs the discipline decision
  /// with the drop-reason snapshot and record emission that the untraced
  /// path must not pay for.
  bool enqueue_traced(Packet& stored, const Packet& p, Time now);

  /// Shared slow-path emission (out of line; callers have already null-
  /// checked trace_).
  void emit_trace(TraceEventType type, const Packet& p, Time now,
                  std::uint16_t detail);

  QueueTaps taps_;
  TraceSink* trace_ = nullptr;
  std::uint8_t trace_site_ = 0;
};

}  // namespace burst
