#include "src/net/drop_tail_queue.hpp"

namespace burst {

bool DropTailQueue::do_enqueue(Packet& p, Time /*now*/) {
  if (q_.size() >= capacity_) {
    ++stats_.forced_drops;
    return false;
  }
  q_.push_back(p);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(Time /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = q_.front();
  q_.pop_front();
  count_departure();
  return p;
}

}  // namespace burst
