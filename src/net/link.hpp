// A simplex point-to-point link: buffer queue + transmitter + propagation.
//
// Packets offered while the transmitter is busy wait in the queue (or are
// dropped by its discipline). A full-duplex link is simply two simplex
// links. Delivery order on a link is FIFO by construction.
//
// Hot-path design (DESIGN.md §6): each transmitted packet costs ONE fused
// scheduler event — delivery at (dequeue + tx) + prop — instead of the
// classic tx-complete + propagate pair. Transmitter occupancy is a lazy
// `free_at_` timestamp checked in try_transmit(); a separate drain event
// at tx end exists only while the queue is backlogged, so an idle-queue
// link (the whole ACK direction of the dumbbell) runs 1 event/packet and
// a saturated one 2. In-flight packets are parked in a PacketSlab so the
// delivery closure is 16 bytes and never heap-allocates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/net/channel.hpp"
#include "src/net/packet_slab.hpp"
#include "src/net/queue.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class SimplexLink;

/// The deterministic-merge key for one cross-LP packet handoff. `at` and
/// `tie_time` are the exact scheduler key the fused delivery event would
/// have carried had the link's endpoints shared an LP; the remaining
/// fields reconstruct the sequential engine's FIFO order among handoffs
/// whose (at, tie_time) collide exactly (DESIGN.md §13.3):
///
///  * Sequentially, a colliding pair orders by the global rank reserved at
///    each transmission's start — so an earlier `tx_start` wins outright.
///  * Equal tx_start means both ranks were reserved at the same instant,
///    in the execution order of the two reserving parent events, which
///    order by their own tie-break instants: `cause` (the producer-side
///    parent's tie, Simulator::current_tie()).
///  * Equal cause is the phase-locked case — both parents are drain
///    events of back-to-back burst chains transmitting in lockstep. FIFO
///    rank then inherits, generation by generation, from the instant the
///    younger chain STARTED: its genesis parent (tie `chain_cause`, a
///    distinct instant such as an ACK arrival) raced the older chain's
///    drain (tie = chain_start − one transmission time). `chain_start` /
///    `chain_cause` let the consumer's merge replay that race.
struct RemoteKey {
  Time at;           // delivery instant: (dequeue + tx) + prop
  Time tie_time;     // same-instant rank: transmitter free_at
  Time tx_start;     // when the transmission began (rank reservation)
  Time cause;        // tie of the producer event that started the tx
  Time chain_start;  // first tx_start of this back-to-back burst chain
  Time chain_cause;  // `cause` as of the chain's first transmission
};

/// Egress hook for links whose endpoints live in different logical
/// processes (src/sim/parallel). When installed, the link posts each
/// transmitted packet — stamped with the full RemoteKey above — instead
/// of scheduling the delivery locally; the receiving LP inserts an
/// equivalent event at its next window merge, so the parallel run
/// executes the same total event count in the same key order as the
/// sequential one.
class LinkRemoteEgress {
 public:
  virtual ~LinkRemoteEgress() = default;
  virtual void post(SimplexLink& link, const RemoteKey& key,
                    const Packet& p) = 0;
};

class SimplexLink : public PacketChannel {
 public:
  /// @p queue buffers packets awaiting transmission; @p bandwidth_bps and
  /// @p prop_delay describe the wire.
  SimplexLink(Simulator& sim, std::unique_ptr<Queue> queue,
              double bandwidth_bps, Time prop_delay);

  SimplexLink(const SimplexLink&) = delete;
  SimplexLink& operator=(const SimplexLink&) = delete;

  /// Sets the far-end packet handler. Must be called before send().
  void set_receiver(std::function<void(const Packet&)> rx) {
    receiver_ = std::move(rx);
  }

  /// Offers a packet for transmission (may be dropped by the queue).
  void send(const Packet& p) override;

  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  Time prop_delay() const { return prop_delay_; }
  /// True while a transmission is in progress (the transmitter is
  /// occupied until free_at_; there is no unconditional tx-complete
  /// event). At exactly free_at_ the transmitter still counts as busy
  /// until the drain event holding the tx-complete's rank has run.
  bool busy() const {
    return sim_.now() < free_at_ || (sim_.now() == free_at_ && tx_open_);
  }

  /// Packets handed to the receiver so far.
  std::uint64_t delivered() const { return delivered_; }
  /// Payload-inclusive bytes delivered.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  /// Attaches a structured-trace sink: dequeues are reported against the
  /// queue's site (set there by the caller), deliveries against @p site.
  /// The trace pointer lives on the link, NOT in the delivery closure, so
  /// the closure stays within SmallFn's inline buffer (see static_assert
  /// in link.cpp).
  void set_trace(TraceSink* sink, std::uint8_t site = 0) {
    trace_ = sink;
    trace_site_ = site;
  }

  /// Marks this link as a cut edge whose receiver lives in another LP:
  /// every delivery is handed to @p egress instead of being scheduled on
  /// this link's (producer-side) simulator. Build-time only.
  void set_remote_egress(LinkRemoteEgress* egress) { remote_ = egress; }

  /// Runs the delivery half of a cut link on the CONSUMER LP's thread at
  /// simulated instant @p now (the consumer's clock — this link's own
  /// sim_.now() belongs to the producer and must not be read here). With
  /// a remote egress installed, the delivery counters below are touched
  /// only by this method, i.e. only by the consumer thread.
  void deliver_remote(const Packet& p, Time now);

 private:
  /// Starts transmitting the head-of-line packet if the transmitter is
  /// free; otherwise makes sure a drain event is armed for tx end.
  /// @p chained is true only when called from the drain event continuing
  /// a back-to-back burst — it keeps the chain-genesis stamp (see
  /// RemoteKey) instead of re-rooting it at the current event.
  void try_transmit(bool chained = false);
  /// Schedules the (single) queue-drain event at free_at_.
  void schedule_drain();

  Simulator& sim_;
  std::unique_ptr<Queue> queue_;
  double bandwidth_bps_;
  Time prop_delay_;
  std::function<void(const Packet&)> receiver_;
  PacketSlab slab_;            // packets between dequeue and delivery
  Time tx_start_ = 0.0;        // when the current transmission began
  Time free_at_ = 0.0;         // transmitter is busy until this instant
  Time chain_start_ = 0.0;     // tx_start_ of the current burst's first tx
  Time chain_cause_ = 0.0;     // parent-event tie at the burst's start
  std::uint64_t drain_order_ = 0;  // FIFO rank reserved at tx start
  bool drain_pending_ = false; // a drain event is armed at free_at_
  bool tx_open_ = false;       // current tx's completion rank not yet run;
                               // only consulted when now == free_at_
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  TraceSink* trace_ = nullptr;
  std::uint8_t trace_site_ = 0;
  LinkRemoteEgress* remote_ = nullptr;  // non-null iff this is a cut link
};

}  // namespace burst
