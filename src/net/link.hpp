// A simplex point-to-point link: buffer queue + transmitter + propagation.
//
// Packets offered while the transmitter is busy wait in the queue (or are
// dropped by its discipline). A full-duplex link is simply two simplex
// links. Delivery order on a link is FIFO by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/net/channel.hpp"
#include "src/net/queue.hpp"
#include "src/sim/simulator.hpp"

namespace burst {

class SimplexLink : public PacketChannel {
 public:
  /// @p queue buffers packets awaiting transmission; @p bandwidth_bps and
  /// @p prop_delay describe the wire.
  SimplexLink(Simulator& sim, std::unique_ptr<Queue> queue,
              double bandwidth_bps, Time prop_delay);

  SimplexLink(const SimplexLink&) = delete;
  SimplexLink& operator=(const SimplexLink&) = delete;

  /// Sets the far-end packet handler. Must be called before send().
  void set_receiver(std::function<void(const Packet&)> rx) {
    receiver_ = std::move(rx);
  }

  /// Offers a packet for transmission (may be dropped by the queue).
  void send(const Packet& p) override;

  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }
  double bandwidth_bps() const { return bandwidth_bps_; }
  Time prop_delay() const { return prop_delay_; }
  bool busy() const { return busy_; }

  /// Packets handed to the receiver so far.
  std::uint64_t delivered() const { return delivered_; }
  /// Payload-inclusive bytes delivered.
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  void try_transmit();

  Simulator& sim_;
  std::unique_ptr<Queue> queue_;
  double bandwidth_bps_;
  Time prop_delay_;
  std::function<void(const Packet&)> receiver_;
  bool busy_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace burst
