#!/usr/bin/env python3
"""Gate the huge-N mean-field benchmark against a committed baseline.

Usage: check_meanfield.py CURRENT.json [--baseline PATH] [--threshold F]

Checks, following the check_sched_events.py model:

* Wall time (``ns_per_op``) per N row, normalized by the
  ``calib_sched_pop_d64`` calibration row, budget --threshold (default
  25%) over the baseline's normalized ratio. This is the perf gate: the
  struct-of-arrays flow arena exists so per-event cost stays flat as N
  grows, and a regression here means per-flow state got hot again.

* Machine-independent physics checks on the current run alone:

  - c.o.v. decay: stochastic fluctuations die out as 1/sqrt(N) but the
    TCP/RED mean-field limit is a deterministic *limit cycle* (the
    synchronized RED oscillation the paper's burstiness theme is
    about), so the measured c.o.v. falls and then saturates at the
    cycle's amplitude (~0.10 here) instead of decaying forever. Gates:
    the first decade's log-log slope must sit in [-0.90, -0.15]
    (measured -0.33; a pure-noise -0.5 minus the emerging floor), the
    overall cov(N_max)/cov(N_min) ratio must be <= 0.6 (measured
    ~0.44), and no grid step may *rise* by more than 10% (the floor is
    flat, not resurgent).
  - RED occupancy: measured mean queue (PASTA) within a factor band
    [0.35, 1.9] of the closed-form fixed point at every N >= 1000. The
    square-root law behind the fixed point ignores timeouts and slow
    start, so it over-predicts by a stable ~2.3x (measured ratio 0.44
    at every N — the N-invariance is the mean-field prediction, the
    offset is the model error); catching a queue pinned at empty/full
    is the point.
  - bytes_per_flow must not exceed the budget recorded in the file.

The baseline is full-mode; CI runs --smoke. Normalized ns/op and the
physics checks are workload-size invariant, which is what makes the
comparison meaningful across modes.

Exit code 0 = within budget, 1 = regression, 2 = bad invocation/input.
"""

import argparse
import json
import math
import sys

CALIB_ROW = "calib_sched_pop_d64"
FIRST_DECADE_SLOPE_BAND = (-0.90, -0.15)
DECAY_MAX_RATIO = 0.6       # cov(N_max) / cov(N_min)
RESURGENCE_TOLERANCE = 1.10  # max allowed per-step cov increase
OCCUPANCY_BAND = (0.35, 1.9)
OCCUPANCY_MIN_CLIENTS = 1000


def load_doc(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_meanfield: cannot read {path}: {e}")
    if doc.get("bench") != "fig_meanfield":
        sys.exit(f"check_meanfield: {path} is not a fig_meanfield result")
    return doc


def rows_by_name(doc):
    return {row["name"]: row for row in doc.get("results", [])}


def fit_slope(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    num = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    den = sum((x - mx) ** 2 for x in xs)
    return num / den


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current", help="freshly measured BENCH_meanfield.json")
    ap.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_meanfield.json",
        help="committed reference run (default: %(default)s)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression in normalized wall time "
        "(default: %(default)s)",
    )
    args = ap.parse_args()

    cur_doc = load_doc(args.current)
    base_doc = load_doc(args.baseline)
    cur = rows_by_name(cur_doc)
    base = rows_by_name(base_doc)
    for rows, path in ((cur, args.current), (base, args.baseline)):
        if CALIB_ROW not in rows:
            sys.exit(f"check_meanfield: {path} lacks the {CALIB_ROW} row")

    cur_calib = cur[CALIB_ROW]["ns_per_op"]
    base_calib = base[CALIB_ROW]["ns_per_op"]
    print(
        f"calibration: current {cur_calib:.1f} ns/op, "
        f"baseline {base_calib:.1f} ns/op "
        f"(machine factor {cur_calib / base_calib:.2f}x)"
    )

    failures = []

    # Perf gate: normalized per-event cost per shared N row.
    for name, cur_row in sorted(cur.items()):
        base_row = base.get(name)
        if base_row is None or name == CALIB_ROW:
            continue
        c_ratio = cur_row["ns_per_op"] / cur_calib
        b_ratio = base_row["ns_per_op"] / base_calib
        ok = c_ratio <= b_ratio * (1 + args.threshold)
        print(
            f"  {name}: normalized {c_ratio:.3f} vs baseline {b_ratio:.3f}"
            f" ({(c_ratio / b_ratio - 1) * 100:+.1f}%)"
            f" {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"{name}: normalized wall {c_ratio:.3f} exceeds baseline "
                f"{b_ratio:.3f} by more than {args.threshold * 100:.0f}%"
            )

    # Physics checks on the current run alone.
    sweep = sorted(
        (r for r in cur.values() if r.get("clients", 0) > 0),
        key=lambda r: r["clients"],
    )
    if len(sweep) < 3:
        failures.append(f"only {len(sweep)} sweep rows: need >= 3 for decay")
    else:
        first, second, last = sweep[0], sweep[1], sweep[-1]
        slope = fit_slope(
            [math.log(first["clients"]), math.log(second["clients"])],
            [math.log(first["cov"]), math.log(second["cov"])],
        )
        ok = FIRST_DECADE_SLOPE_BAND[0] <= slope <= FIRST_DECADE_SLOPE_BAND[1]
        print(
            f"  cov first-decade slope: {slope:.3f} over "
            f"N={first['clients']}..{second['clients']} "
            f"(band {FIRST_DECADE_SLOPE_BAND}) {'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"first-decade cov slope {slope:.3f} outside "
                f"{FIRST_DECADE_SLOPE_BAND}: aggregate fluctuations no "
                "longer decay toward the mean-field limit"
            )
        decay = last["cov"] / first["cov"]
        ok = decay <= DECAY_MAX_RATIO
        print(
            f"  cov decay: {first['cov']:.4f} -> {last['cov']:.4f} "
            f"(ratio {decay:.2f}, max {DECAY_MAX_RATIO}) "
            f"{'ok' if ok else 'REGRESSION'}"
        )
        if not ok:
            failures.append(
                f"cov(N={last['clients']})/cov(N={first['clients']}) = "
                f"{decay:.2f} exceeds {DECAY_MAX_RATIO}: population "
                "averaging is not quieting the aggregate"
            )
        for prev, row in zip(sweep, sweep[1:]):
            if row["cov"] > prev["cov"] * RESURGENCE_TOLERANCE:
                failures.append(
                    f"cov resurges: N={row['clients']} cov "
                    f"{row['cov']:.4f} is more than "
                    f"{(RESURGENCE_TOLERANCE - 1) * 100:.0f}% above "
                    f"N={prev['clients']} cov {prev['cov']:.4f}"
                )

    budget = cur_doc.get("budget_bytes_per_flow")
    for row in sweep:
        fp = row.get("queue_fixed_point", -1.0)
        qm = row.get("queue_mean", 0.0)
        if row["clients"] >= OCCUPANCY_MIN_CLIENTS:
            if fp <= 0:
                failures.append(
                    f"{row['name']}: mean-field fixed point did not converge"
                )
            else:
                ratio = qm / fp
                ok = OCCUPANCY_BAND[0] <= ratio <= OCCUPANCY_BAND[1]
                print(
                    f"  {row['name']}: queue {qm:.1f} vs fixed point "
                    f"{fp:.1f} (ratio {ratio:.2f}) {'ok' if ok else 'REGRESSION'}"
                )
                if not ok:
                    failures.append(
                        f"{row['name']}: measured/analytic occupancy ratio "
                        f"{ratio:.2f} outside {OCCUPANCY_BAND}"
                    )
        if budget is not None and row.get("bytes_per_flow", 0) > budget:
            failures.append(
                f"{row['name']}: {row['bytes_per_flow']:.0f} bytes/flow "
                f"exceeds the {budget} budget"
            )

    if failures:
        print("\nmean-field gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("mean-field gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
