#!/usr/bin/env python3
"""Plot the paper's figures from bench CSV exports.

Usage:
    BURST_CSV_DIR=out mkdir -p out && ./build/bench/fig02_cov \
        && ./build/bench/fig03_throughput && ./build/bench/fig04_loss \
        && ./build/bench/fig13_timeout_dupack
    python3 scripts/plot_figures.py out

Each fig*.csv written by the benches is rendered to fig*.png. Requires
matplotlib; everything else in the repository is dependency-free C++.
"""
import csv
import pathlib
import sys


# Columns that identify a row rather than measure it: never plotted even
# when numeric (a seed is a number, not a series).
IDENTITY_COLUMNS = {"scenario", "label", "key", "seed"}


def numeric_columns(header, data):
    """Indices of columns where every non-empty cell parses as a float.

    Campaign artifact dirs mix figure CSVs with other schema versions'
    exports (metrics.csv has a hex scenario key first, and later schemas
    may append columns), so plotting selects numeric columns instead of
    assuming positions.
    """
    cols = []
    for col in range(len(header)):
        if header[col] in IDENTITY_COLUMNS:
            continue
        cells = [r[col] for r in data if col < len(r) and r[col] != ""]
        if not cells:
            continue
        try:
            for cell in cells:
                float(cell)
        except ValueError:
            continue
        cols.append(col)
    return cols


def scenario_groups(header, data):
    """Rows grouped by the `scenario` column, insertion-ordered.

    Topology campaigns (`burstcamp --campaign=...`) mix rows from several
    .topo files in one CSV; each scenario becomes its own plotted series.
    Returns [(name, rows)]; a single ("", all-rows) group when there is no
    scenario column.
    """
    if "scenario" not in header:
        return [("", data)]
    col = header.index("scenario")
    groups = {}
    for row in data:
        name = row[col] if col < len(row) else ""
        groups.setdefault(name, []).append(row)
    return list(groups.items())


def plot_file(path: pathlib.Path, out: pathlib.Path) -> bool:
    try:
        import matplotlib
    except ModuleNotFoundError:
        raise SystemExit(
            "matplotlib is required for plotting: pip install matplotlib")

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with path.open() as f:
        rows = list(csv.reader(f))
    if len(rows) < 2:
        print(f"skipping {path}: no data rows", file=sys.stderr)
        return False
    header, data = rows[0], rows[1:]
    cols = numeric_columns(header, data)
    if len(cols) < 2:
        print(f"skipping {path}: fewer than two numeric columns",
              file=sys.stderr)
        return False
    xcol, ycols = cols[0], cols[1:]
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, group in scenario_groups(header, data):
        xs = [float(r[xcol]) for r in group]
        for col in ycols:
            label = f"{name}: {header[col]}" if name else header[col]
            ax.plot(xs, [float(r[col]) for r in group], marker="o", ms=3,
                    label=label)
    ax.set_xlabel(header[xcol] if header[xcol] else "number of clients")
    ax.set_ylabel(path.stem.replace("_", " "))
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out)
    print(f"wrote {out}")
    return True


def main() -> int:
    directory = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    # metrics.csv is the campaign's wide per-run metrics table, not a
    # figure series.
    csvs = [p for p in sorted(directory.glob("*.csv"))
            if p.name != "metrics.csv"]
    if not csvs:
        print(f"no CSV files in {directory}; run the benches with "
              "BURST_CSV_DIR set first", file=sys.stderr)
        return 1
    plotted = sum(plot_file(path, path.with_suffix(".png")) for path in csvs)
    return 0 if plotted else 1


if __name__ == "__main__":
    raise SystemExit(main())
